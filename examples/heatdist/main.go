// Heatdist runs the paper's evaluation application end to end on the
// simulated cluster: the Heat Distribution 2-D stencil executes on the
// mpisim message-passing runtime, protects its state with the FTI-style
// multilevel checkpoint toolkit, suffers injected failures of different
// classes, and recovers from the cheapest surviving level — including real
// Reed-Solomon reconstruction when adjacent nodes die.
//
// Run with: go run ./examples/heatdist
package main

import (
	"fmt"
	"log"

	"mlckpt/internal/experiments"
	"mlckpt/internal/failure"
	"mlckpt/internal/fti"
	"mlckpt/internal/heat"
	"mlckpt/internal/mpisim"
)

func main() {
	log.SetFlags(0)

	const ranks = 32
	hcfg := heat.Config{GridX: 256, GridY: 256, Iterations: 300, CellTime: 4e-5, TopTemp: 100}
	fcfg := fti.DefaultConfig()
	fcfg.GroupSize = 8
	fcfg.Parity = 2

	fmt.Printf("Heat Distribution: %dx%d grid on %d ranks, %d iterations\n",
		hcfg.GridX, hcfg.GridY, ranks, hcfg.Iterations)

	// Reference run: no failures, no checkpoints.
	baseWall, err := mpisim.Run(ranks, mpisim.DefaultCostModel(), func(r *mpisim.Rank) {
		s, err := heat.NewSolver(r, hcfg)
		if err != nil {
			panic(err)
		}
		s.Run(nil)
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("failure-free wall clock: %.1f s (speedup %.1f on %d ranks)\n\n",
		baseWall, hcfg.SerialTime()/baseWall, ranks)

	// Protected run: checkpoints at all 4 levels. The whole virtual run
	// lasts under a minute, so failures are injected at an accelerated
	// clip (one every few virtual seconds across the four classes) to
	// showcase multilevel recovery end to end.
	res, err := experiments.RunReal(experiments.RealConfig{
		Ranks:     ranks,
		Heat:      hcfg,
		FTI:       fcfg,
		Intervals: [fti.Levels]int{24, 12, 6, 3},
		Rates:     failure.MustParseRates("20000-10000-5000-2500", float64(ranks)),
		Alloc:     0.5,
		Cost:      mpisim.DefaultCostModel(),
		Seed:      7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("protected run with injected failures:")
	fmt.Printf("  wall clock: %.1f s (%.1fx the failure-free run)\n",
		res.WallClock, res.WallClock/baseWall)
	fmt.Printf("  completed:  %v\n", res.Completed)
	for i, c := range res.Failures {
		fmt.Printf("  class-%d failures: %d\n", i+1, c)
	}
	for i, c := range res.Recoveries {
		if c > 0 {
			fmt.Printf("  recoveries from level %d: %d\n", i+1, c)
		}
	}
	if res.FromScratch > 0 {
		fmt.Printf("  restarts from scratch: %d\n", res.FromScratch)
	}
	fmt.Printf("  last observed checkpoint costs per level: %.3gs %.3gs %.3gs %.3gs\n",
		res.CkptDuration[0], res.CkptDuration[1], res.CkptDuration[2], res.CkptDuration[3])
}
