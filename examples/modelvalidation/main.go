// Modelvalidation walks through the repository's three layers of evidence
// that the optimizer can be trusted:
//
//  1. The analytic model (Formula 21) agrees with the stochastic simulator
//     portion by portion at the optimized plan.
//  2. An independent derivative-free search (Nelder–Mead over all five
//     variables) lands on the same optimum as the paper's fixed-point
//     solver.
//  3. The failure streams the simulator consumes have the statistics they
//     are supposed to have (rates, exponential interarrivals).
//
// Run with: go run ./examples/modelvalidation
package main

import (
	"fmt"
	"log"
	"math"

	"mlckpt/internal/core"
	"mlckpt/internal/experiments"
	"mlckpt/internal/failure"
	"mlckpt/internal/numopt"
	"mlckpt/internal/sim"
	"mlckpt/internal/trace"

	"mlckpt/internal/stats"
)

func main() {
	log.SetFlags(0)
	sc := experiments.EvalScenario(3e6, "8-6-4-2")
	p := sc.Params()
	day := failure.SecondsPerDay

	fmt.Println("=== 1. Analytic portions vs simulated portions ===")
	sol, err := core.Optimize(p, core.Options{OuterTol: 1e-12})
	if err != nil {
		log.Fatal(err)
	}
	mu := p.MuOfN(sol.N, sol.WallClock)
	analytic := p.WallClockPortions(sol.X, sol.N, mu)
	agg, err := sim.Simulate(sim.Config{Params: p, N: sol.N, X: sol.X, JitterRatio: 0.3}, 200, 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s %12s %12s\n", "portion", "model (d)", "sim (d)")
	rows := []struct {
		name       string
		model, sim float64
	}{
		{"productive", analytic.Productive, agg.Productive.Mean},
		{"checkpoint", analytic.Checkpoint, agg.Checkpoint.Mean},
		{"restart", analytic.Restart, agg.Restart.Mean},
		{"rollback", analytic.Rollback, agg.Rollback.Mean},
		{"total", analytic.Total(), agg.WallClock.Mean},
	}
	for _, r := range rows {
		fmt.Printf("%-12s %12.2f %12.2f\n", r.name, r.model/day, r.sim/day)
	}
	fmt.Println("(the simulator runs above the first-order model: it compounds",
		"\n failures during overheads and repeated strikes per interval)")

	fmt.Println("\n=== 2. Fixed-point optimum vs independent Nelder–Mead search ===")
	b := p.BOfT(sol.WallClock)
	objective := func(v []float64) float64 {
		n := v[4]
		if n <= 1 || n > p.Speedup.IdealScale() {
			return math.Inf(1)
		}
		for _, xi := range v[:4] {
			if xi < 1 {
				return math.Inf(1)
			}
		}
		m := make([]float64, 4)
		for i := range m {
			m[i] = b[i] * n
		}
		return p.WallClock(v[:4], n, m)
	}
	_, best, err := numopt.NelderMead(objective, []float64{500, 200, 100, 10, 3e5},
		numopt.NelderMeadOptions{MaxIter: 60000, Tol: 1e-13, Scale: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fixed point: N=%.0f x=%v  E(Tw)=%.3f d\n",
		sol.N, sol.Intervals(), objective(append(append([]float64(nil), sol.X...), sol.N))/day)
	fmt.Printf("simplex:     N=%.0f x=[%.0f %.0f %.0f %.0f]  E(Tw)=%.3f d\n",
		best[4], best[0], best[1], best[2], best[3], objective(best)/day)

	fmt.Println("\n=== 3. Failure-stream statistics ===")
	horizon := 200 * day
	events := failure.Trace(p.Rates, sol.N, horizon, failure.Exponential, 0, stats.NewRNG(5))
	st, err := trace.Analyze(events, 4, horizon)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range st {
		want := p.Rates.PerDay[s.Level-1] * sol.N / 1e6
		fmt.Printf("level %d: %.2f failures/day (want %.2f at N=%.0f), CV=%.2f exponential=%v\n",
			s.Level, s.RatePerDay, want, sol.N, s.CV, s.LooksExponential(0.2))
	}
}
