// Quickstart: optimize a multilevel checkpoint configuration for an
// exascale application and validate the plan with the stochastic
// simulator.
//
// The application processes 3 million core-days, scales like the paper's
// Heat Distribution program (quadratic speedup, ideal at 10^6 cores), and
// is protected by four FTI-style checkpoint levels whose costs were
// characterized in the paper's Table II. Failures arrive at 16/12/8/4
// events per day (levels 1-4) when using all 10^6 cores, growing
// proportionally with the allocation.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mlckpt"
)

func main() {
	log.SetFlags(0)

	spec := mlckpt.Spec{
		TeCoreDays: 3e6,
		Speedup: mlckpt.SpeedupSpec{
			Kind:       "quadratic",
			Kappa:      0.46, // slope near the origin, estimable from one small run
			IdealScale: 1e6,  // N^(*): where the raw speedup peaks
		},
		Levels: []mlckpt.LevelSpec{
			{CheckpointConst: 0.866}, // L1: local storage
			{CheckpointConst: 2.586}, // L2: partner copy
			{CheckpointConst: 3.886}, // L3: Reed-Solomon
			{CheckpointConst: 5.5, CheckpointSlope: 0.0212, SaturationCap: 262144}, // L4: PFS
		},
		AllocSeconds:   60,
		FailuresPerDay: []float64{16, 12, 8, 4},
	}

	fmt.Println("=== Joint interval + scale optimization (the paper's ML(opt-scale)) ===")
	plan, err := mlckpt.Optimize(spec, mlckpt.MLOptScale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run on %d of the available 1,000,000 cores\n", plan.Scale)
	for i, x := range plan.Intervals {
		fmt.Printf("  level %d: %d checkpoint intervals\n", i+1, x)
	}
	fmt.Printf("expected wall clock: %.1f days (Algorithm 1 converged in %d iterations)\n\n",
		plan.ExpectedWallClockDays, plan.OuterIterations)

	fmt.Println("=== Stochastic validation (100 simulated executions) ===")
	rep, err := mlckpt.Simulate(spec, plan, mlckpt.SimOptions{Runs: 100, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wall clock:  %.1f ± %.1f days (model said %.1f)\n",
		rep.MeanWallClockDays, rep.CI95Days, plan.ExpectedWallClockDays)
	fmt.Printf("breakdown:   productive %.1f | checkpoint %.1f | restart %.1f | rollback %.1f days\n",
		rep.ProductiveDays, rep.CheckpointDays, rep.RestartDays, rep.RollbackDays)
	fmt.Printf("failures:    %.0f per execution on average\n", rep.MeanFailures)
	fmt.Printf("efficiency:  %.3f\n\n", rep.Efficiency)

	fmt.Println("=== Why not just use every core? (the ML(ori-scale) baseline) ===")
	oriPlan, err := mlckpt.Optimize(spec, mlckpt.MLOriScale)
	if err != nil {
		log.Fatal(err)
	}
	oriRep, err := mlckpt.Simulate(spec, oriPlan, mlckpt.SimOptions{Runs: 100, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	gain := 1 - rep.MeanWallClockDays/oriRep.MeanWallClockDays
	fmt.Printf("at the full 1,000,000 cores: %.1f days; optimized scale saves %.1f%%\n",
		oriRep.MeanWallClockDays, gain*100)
}
