// Erasurerecovery demonstrates FTI's level-3 checkpoint surviving multiple
// simultaneous node crashes through real Reed-Solomon reconstruction: 16
// nodes checkpoint their state into two 8+2 encoding groups, three nodes
// die, and the lost shards are rebuilt from the survivors over GF(256).
//
// Run with: go run ./examples/erasurerecovery
package main

import (
	"bytes"
	"fmt"
	"log"

	"mlckpt/internal/fti"
	"mlckpt/internal/mpisim"
)

func main() {
	log.SetFlags(0)

	const nodes = 16
	cfg := fti.DefaultConfig()
	cfg.GroupSize = 8
	cfg.Parity = 2

	cluster, err := fti.NewCluster(nodes, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Every rank checkpoints 4 KiB of distinctive state at level 3.
	payload := func(rank int) []byte {
		out := make([]byte, 4096)
		for i := range out {
			out[i] = byte(rank*31 + i)
		}
		return out
	}
	var dur float64
	if _, err := mpisim.Run(nodes, mpisim.DefaultCostModel(), func(r *mpisim.Rank) {
		agent := cluster.Attach(r)
		d, err := agent.Checkpoint(3, payload(r.ID()))
		if err != nil {
			panic(err)
		}
		if r.ID() == 0 {
			dur = d
		}
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("level-3 checkpoint on %d nodes (8+2 Reed-Solomon groups): %.3f s per node\n", nodes, dur)

	// Kill two nodes in group 0 and one in group 1.
	dead := []int{1, 5, 12}
	fmt.Printf("crashing nodes %v\n", dead)
	if err := cluster.Crash(dead); err != nil {
		log.Fatal(err)
	}

	for _, st := range cluster.Survey() {
		fmt.Printf("  level %d recoverable: %v\n", st.Level, st.Available)
	}
	lvl, _, ok := cluster.BestRecovery()
	if !ok {
		log.Fatal("nothing recoverable — unexpected")
	}
	fmt.Printf("best recovery: level %d\n", lvl)

	restored, err := cluster.Restore(lvl)
	if err != nil {
		log.Fatal(err)
	}
	for rank := 0; rank < nodes; rank++ {
		if !bytes.Equal(restored[rank], payload(rank)) {
			log.Fatalf("rank %d state corrupted after reconstruction", rank)
		}
	}
	fmt.Println("all 16 states reconstructed bit-exactly, including the 3 lost shards")

	// One more crash in group 0 exceeds the parity budget.
	if err := cluster.Crash([]int{2, 3}); err != nil {
		log.Fatal(err)
	}
	if _, _, ok := cluster.BestRecovery(); !ok {
		fmt.Println("after two more crashes in group 0 (4 > parity 2): level 3 lost, as expected")
	}
}
