// Scalesweep explores how the optimal execution scale responds to failure
// rates and workload size — the tradeoff at the heart of the paper: more
// cores mean more speedup but also more failures, so the optimum sits
// below the application's ideal scale, and moves further down as the
// machine gets less reliable.
//
// Run with: go run ./examples/scalesweep
package main

import (
	"fmt"
	"log"

	"mlckpt"
)

func main() {
	log.SetFlags(0)

	fmt.Println("Optimal scale vs failure intensity (Te = 3M core-days, ideal scale 1,000,000):")
	fmt.Printf("%-14s %14s %14s %16s\n", "failures/day", "N* (cores)", "% of ideal", "E(Tw) (days)")
	for _, mult := range []float64{0.25, 0.5, 1, 2, 4} {
		rates := []float64{16 * mult, 12 * mult, 8 * mult, 4 * mult}
		spec := mlckpt.PaperSpec(3e6, rates)
		plan, err := mlckpt.Optimize(spec, mlckpt.MLOptScale)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %14d %13.1f%% %16.1f\n",
			fmt.Sprintf("%.0f-%.0f-%.0f-%.0f", rates[0], rates[1], rates[2], rates[3]),
			plan.Scale, float64(plan.Scale)/1e4, plan.ExpectedWallClockDays)
	}

	fmt.Println("\nOptimal scale vs workload (failures 16-12-8-4/day):")
	fmt.Printf("%-18s %14s %16s %12s\n", "Te (core-days)", "N* (cores)", "E(Tw) (days)", "efficiency")
	for _, te := range []float64{1e6, 3e6, 10e6, 30e6} {
		spec := mlckpt.PaperSpec(te, []float64{16, 12, 8, 4})
		plan, err := mlckpt.Optimize(spec, mlckpt.MLOptScale)
		if err != nil {
			log.Fatal(err)
		}
		eff := te / plan.ExpectedWallClockDays / float64(plan.Scale)
		fmt.Printf("%-18.3g %14d %16.1f %12.3f\n", te, plan.Scale, plan.ExpectedWallClockDays, eff)
	}

	fmt.Println("\nWeak scaling (Gustafson speedup, serial fraction 5%):")
	fmt.Println("the paper's model covers weak scaling through the speedup function;")
	fmt.Println("with near-linear scaled speedup the failure tradeoff alone picks N*:")
	fmt.Printf("%-14s %14s %16s\n", "failures/day", "N* (cores)", "E(Tw) (days)")
	for _, mult := range []float64{1, 4, 16} {
		spec := mlckpt.PaperSpec(3e6, []float64{16 * mult, 12 * mult, 8 * mult, 4 * mult})
		spec.Speedup = mlckpt.SpeedupSpec{Kind: "gustafson", SerialFraction: 0.05, IdealScale: 1e6}
		plan, err := mlckpt.Optimize(spec, mlckpt.MLOptScale)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %14d %16.1f\n",
			fmt.Sprintf("%.0fx base", mult), plan.Scale, plan.ExpectedWallClockDays)
	}

	fmt.Println("\nPolicy comparison at 16-12-8-4 (model estimates):")
	spec := mlckpt.PaperSpec(3e6, []float64{16, 12, 8, 4})
	for _, pol := range mlckpt.Policies {
		plan, err := mlckpt.Optimize(spec, pol)
		if err != nil {
			log.Fatal(err)
		}
		note := ""
		if pol == mlckpt.SLOriScale {
			note = "  (first-order estimate; simulation is far worse — see cmd/experiments tab4)"
		}
		fmt.Printf("  %-13s N=%7d  E(Tw)=%7.1f days%s\n", pol, plan.Scale, plan.ExpectedWallClockDays, note)
	}
}
