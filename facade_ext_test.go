package mlckpt

import (
	"errors"
	"math"
	"testing"
)

func TestTableSpeedupKind(t *testing.T) {
	spec := PaperSpec(1e5, []float64{4, 2})
	spec.Levels = spec.Levels[:2]
	spec.Speedup = SpeedupSpec{
		Kind: "table",
		Points: [][2]float64{
			{1000, 900}, {10000, 7000}, {50000, 22000}, {100000, 30000}, {150000, 28000},
		},
	}
	spec.BaselineScale = 1e5
	p, err := spec.Params()
	if err != nil {
		t.Fatalf("table spec rejected: %v", err)
	}
	// Peak sample decides the ideal scale.
	if got := p.Speedup.IdealScale(); got != 100000 {
		t.Errorf("IdealScale = %g, want 100000", got)
	}
	plan, err := Optimize(spec, MLOptScale)
	if err != nil {
		t.Fatalf("Optimize on table speedup: %v", err)
	}
	if plan.Scale <= 0 || plan.Scale > 100000 {
		t.Errorf("scale = %d", plan.Scale)
	}
}

func TestTableSpeedupInvalid(t *testing.T) {
	spec := PaperSpec(1e5, []float64{4, 2})
	spec.Speedup = SpeedupSpec{Kind: "table", Points: [][2]float64{{1, 1}}}
	if _, err := spec.Params(); !errors.Is(err, ErrSpec) {
		t.Errorf("single-point table accepted: %v", err)
	}
}

func TestOptimizeWithSelectionKeepsUsefulLevels(t *testing.T) {
	spec := PaperSpec(3e6, []float64{16, 12, 8, 4})
	sel, err := OptimizeWithSelection(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.EnabledLevels) != 4 {
		t.Fatalf("enabled = %v", sel.EnabledLevels)
	}
	if !sel.EnabledLevels[3] {
		t.Error("top level disabled")
	}
	// Must be at least as good as the all-levels plan.
	plain, err := Optimize(spec, MLOptScale)
	if err != nil {
		t.Fatal(err)
	}
	if sel.ExpectedWallClockDays > plain.ExpectedWallClockDays*1.0001 {
		t.Errorf("selection %g worse than plain %g days",
			sel.ExpectedWallClockDays, plain.ExpectedWallClockDays)
	}
	// The selection plan is simulatable as-is.
	rep, err := Simulate(spec, sel.Plan, SimOptions{Runs: 5})
	if err != nil {
		t.Fatalf("Simulate(selection): %v", err)
	}
	if rep.MeanWallClockDays <= 0 {
		t.Error("empty report")
	}
}

func TestOptimizeWithSelectionDropsWastefulLevel(t *testing.T) {
	// Level 3 absurdly expensive and failure-free: selection must drop it.
	spec := PaperSpec(1e6, []float64{16, 12, 0, 4})
	spec.Levels[2].CheckpointConst = 2000
	sel, err := OptimizeWithSelection(spec)
	if err != nil {
		t.Fatal(err)
	}
	if sel.EnabledLevels[2] {
		t.Errorf("wasteful level kept: %v", sel.EnabledLevels)
	}
	if sel.Intervals[2] != 1 {
		t.Errorf("disabled level has intervals %d", sel.Intervals[2])
	}
}

func TestOptimizeWithSelectionInvalidSpec(t *testing.T) {
	spec := PaperSpec(0, []float64{1})
	if _, err := OptimizeWithSelection(spec); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestTableSpeedupAgreesWithQuadraticOnSampledCurve(t *testing.T) {
	// Sampling the paper's quadratic densely and optimizing on the table
	// should land near the quadratic's own optimum.
	quadSpec := PaperSpec(3e6, []float64{16, 12, 8, 4})
	quadPlan, err := Optimize(quadSpec, MLOptScale)
	if err != nil {
		t.Fatal(err)
	}
	q, err := quadSpec.Speedup.Model()
	if err != nil {
		t.Fatal(err)
	}
	tableSpec := quadSpec
	var pts [][2]float64
	for n := 25000.0; n <= 1e6; n += 25000 {
		pts = append(pts, [2]float64{n, q.Speedup(n)})
	}
	tableSpec.Speedup = SpeedupSpec{Kind: "table", Points: pts}
	tableSpec.BaselineScale = 1e6
	tablePlan, err := Optimize(tableSpec, MLOptScale)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(tablePlan.Scale-quadPlan.Scale))/float64(quadPlan.Scale) > 0.1 {
		t.Errorf("table optimum %d vs quadratic optimum %d", tablePlan.Scale, quadPlan.Scale)
	}
	if math.Abs(tablePlan.ExpectedWallClockDays-quadPlan.ExpectedWallClockDays)/quadPlan.ExpectedWallClockDays > 0.05 {
		t.Errorf("table WCT %g vs quadratic %g days",
			tablePlan.ExpectedWallClockDays, quadPlan.ExpectedWallClockDays)
	}
}
