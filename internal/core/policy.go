package core

import (
	"fmt"

	"mlckpt/internal/model"
)

// Policy selects one of the four strategies evaluated in Section IV.
type Policy int

// The four evaluated solutions (Section IV-A).
const (
	// MLOptScale is the paper's contribution: multilevel checkpoints with
	// jointly optimized intervals and scale.
	MLOptScale Policy = iota
	// SLOptScale is the improved-Young single-level model with optimized
	// scale, after Jin et al. [23].
	SLOptScale
	// MLOriScale is the authors' prior work [22]: multilevel intervals
	// optimized at the original ideal scale N^(*).
	MLOriScale
	// SLOriScale is classic Young [3]: single level (PFS), ideal scale.
	SLOriScale
)

// Policies lists all four in the paper's presentation order.
var Policies = []Policy{MLOptScale, SLOptScale, MLOriScale, SLOriScale}

func (p Policy) String() string {
	switch p {
	case MLOptScale:
		return "ML(opt-scale)"
	case SLOptScale:
		return "SL(opt-scale)"
	case MLOriScale:
		return "ML(ori-scale)"
	case SLOriScale:
		return "SL(ori-scale)"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Multilevel reports whether the policy checkpoints at all levels.
func (p Policy) Multilevel() bool { return p == MLOptScale || p == MLOriScale }

// OptimizesScale reports whether the policy tunes N.
func (p Policy) OptimizesScale() bool { return p == MLOptScale || p == SLOptScale }

// Solve runs the policy on the given multilevel problem. Single-level
// policies internally collapse the problem with SingleLevelParams; the
// returned Solution's X then has length 1 (the PFS level).
func (p Policy) Solve(prm *model.Params, opts Options) (Solution, error) {
	prob, err := p.BatchProblem(prm, opts)
	if err != nil {
		return Solution{}, err
	}
	return Optimize(prob.Params, prob.Opts)
}

// BatchProblem maps (params, policy, options) onto the exact Optimize lane
// that Solve would run — the single-level collapse, the scale pinning, and
// the single-pass flag — so grid drivers can gather many policy cells into
// one OptimizeBatch call. Solve is equivalent to Optimize on the returned
// problem.
func (p Policy) BatchProblem(prm *model.Params, opts Options) (Problem, error) {
	if err := prm.Validate(); err != nil {
		return Problem{}, err
	}
	work := prm
	if !p.Multilevel() {
		work = SingleLevelParams(prm)
	}
	if !p.OptimizesScale() {
		opts.FixedN = prm.Speedup.IdealScale()
	} else {
		opts.FixedN = 0
	}
	if p == SLOriScale {
		// Classic Young's formula does not iterate the failure estimate.
		opts.SinglePass = true
	}
	return Problem{Params: work, Opts: opts}, nil
}

// ExpandX maps a policy solution's interval counts onto the full L-level
// schedule expected by the simulator: multilevel solutions pass through;
// single-level solutions checkpoint only at the top level (x_i = 1, i.e.
// no checkpoints, for all lower levels).
func (p Policy) ExpandX(prm *model.Params, sol Solution) []float64 {
	L := prm.L()
	if p.Multilevel() {
		return append([]float64(nil), sol.X...)
	}
	x := make([]float64, L)
	for i := range x {
		x[i] = 1
	}
	x[L-1] = sol.X[0]
	return x
}
