package core

import (
	"math"
	"testing"

	"mlckpt/internal/failure"
	"mlckpt/internal/model"
	"mlckpt/internal/overhead"
	"mlckpt/internal/speedup"
)

func TestReduceLevelsFoldsRates(t *testing.T) {
	p := paperParams(3e6, "16-12-8-4")
	// Disable levels 2 and 3: classes 2 and 3 escalate to level 4.
	reduced, err := ReduceLevels(p, []bool{true, false, false, true})
	if err != nil {
		t.Fatal(err)
	}
	if reduced.L() != 2 {
		t.Fatalf("levels = %d", reduced.L())
	}
	if reduced.Rates.PerDay[0] != 16 {
		t.Errorf("class 1 rate = %g", reduced.Rates.PerDay[0])
	}
	if reduced.Rates.PerDay[1] != 12+8+4 {
		t.Errorf("folded top rate = %g, want 24", reduced.Rates.PerDay[1])
	}
	// Cost models carried over from the enabled levels.
	if reduced.Levels[0].Checkpoint.At(1e5) != p.Levels[0].Checkpoint.At(1e5) {
		t.Error("level-1 cost lost")
	}
	if reduced.Levels[1].Checkpoint.At(1e5) != p.Levels[3].Checkpoint.At(1e5) {
		t.Error("level-4 cost lost")
	}
	// Original untouched.
	if p.L() != 4 || p.Rates.PerDay[3] != 4 {
		t.Error("caller's params mutated")
	}
}

func TestReduceLevelsDisableFirst(t *testing.T) {
	p := paperParams(3e6, "16-12-8-4")
	// Disabling level 1 escalates transient failures to level 2.
	reduced, err := ReduceLevels(p, []bool{false, true, true, true})
	if err != nil {
		t.Fatal(err)
	}
	if reduced.L() != 3 {
		t.Fatalf("levels = %d", reduced.L())
	}
	if reduced.Rates.PerDay[0] != 16+12 {
		t.Errorf("level-2 rate = %g, want 28", reduced.Rates.PerDay[0])
	}
}

func TestReduceLevelsErrors(t *testing.T) {
	p := paperParams(3e6, "16-12-8-4")
	if _, err := ReduceLevels(p, []bool{true, true}); err == nil {
		t.Error("wrong flag count accepted")
	}
	if _, err := ReduceLevels(p, []bool{true, true, true, false}); err == nil {
		t.Error("disabling the top level accepted")
	}
}

func TestSelectLevelsKeepsAllWhenAllPayOff(t *testing.T) {
	// With the paper's cost structure every level earns its keep: the
	// full subset should win (or tie within numeric noise).
	p := paperParams(3e6, "16-12-8-4")
	sel, err := SelectLevels(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Evaluated) != 8 {
		t.Fatalf("evaluated %d subsets, want 8", len(sel.Evaluated))
	}
	full, err := Optimize(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Solution.WallClock > full.WallClock*1.0001 {
		t.Errorf("selection %g worse than the full subset %g", sel.Solution.WallClock, full.WallClock)
	}
	if len(sel.X) != 4 {
		t.Fatalf("X = %v", sel.X)
	}
}

func TestSelectLevelsDropsUselessLevel(t *testing.T) {
	// A level with zero failures of its own class and a non-trivial cost
	// is pure overhead... unless it still shelters higher-class rollback.
	// Make level 2 expensive AND failure-free: selection must disable it.
	p := &model.Params{
		Te:      1e5 * failure.SecondsPerDay,
		Speedup: speedup.Quadratic{Kappa: 0.5, NStar: 1e5},
		Levels: overhead.SymmetricLevels([]overhead.Cost{
			overhead.Constant(1),
			overhead.Constant(500), // absurdly expensive
			overhead.Constant(8),
			overhead.Constant(30),
		}, 0.5),
		Alloc: 60,
		Rates: failure.MustParseRates("8-0-2-1", 1e5),
	}
	sel, err := SelectLevels(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Enabled[1] {
		t.Errorf("expensive failure-free level kept: %v", sel.Enabled)
	}
	if sel.X[1] != 1 {
		t.Errorf("disabled level has x = %g", sel.X[1])
	}
	// And it must beat the all-levels solution.
	full, err := Optimize(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Solution.WallClock >= full.WallClock {
		t.Errorf("selection %g not better than full %g", sel.Solution.WallClock, full.WallClock)
	}
}

func TestSelectLevelsTopAlwaysEnabled(t *testing.T) {
	p := paperParams(3e6, "8-6-4-2")
	sel, err := SelectLevels(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, out := range sel.Evaluated {
		if !out.Enabled[3] {
			t.Fatal("a subset without the top level was evaluated")
		}
	}
	if !sel.Enabled[3] {
		t.Error("top level not enabled in the winner")
	}
}

func TestAccelerateMatchesPlainIteration(t *testing.T) {
	p := paperParams(3e6, "16-12-8-4")
	plain, err := Optimize(p, Options{OuterTol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Optimize(p, Options{OuterTol: 1e-12, Accelerate: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plain.WallClock-fast.WallClock)/plain.WallClock > 1e-6 {
		t.Errorf("accelerated answer drifted: %g vs %g", fast.WallClock, plain.WallClock)
	}
	if math.Abs(plain.N-fast.N)/plain.N > 1e-4 {
		t.Errorf("accelerated scale drifted: %g vs %g", fast.N, plain.N)
	}
	if fast.OuterIterations >= plain.OuterIterations {
		t.Errorf("Aitken did not help: %d vs %d iterations", fast.OuterIterations, plain.OuterIterations)
	}
	t.Logf("outer iterations: plain %d, accelerated %d", plain.OuterIterations, fast.OuterIterations)
}

func TestAccelerateAcrossScenarios(t *testing.T) {
	for _, spec := range []string{"8-6-4-2", "4-3-2-1", "32-24-16-8"} {
		p := paperParams(3e6, spec)
		plain, err := Optimize(p, Options{OuterTol: 1e-12})
		if err != nil {
			t.Fatalf("%s plain: %v", spec, err)
		}
		fast, err := Optimize(p, Options{OuterTol: 1e-12, Accelerate: true})
		if err != nil {
			t.Fatalf("%s accelerated: %v", spec, err)
		}
		if math.Abs(plain.WallClock-fast.WallClock)/plain.WallClock > 1e-6 {
			t.Errorf("%s: answers differ: %g vs %g", spec, plain.WallClock, fast.WallClock)
		}
	}
}
