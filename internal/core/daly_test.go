package core

import (
	"math"
	"testing"
	"testing/quick"

	"mlckpt/internal/stats"

	"mlckpt/internal/failure"
	"mlckpt/internal/model"
	"mlckpt/internal/overhead"
	"mlckpt/internal/sim"
	"mlckpt/internal/speedup"
)

func TestYoungInterval(t *testing.T) {
	// τ = sqrt(2·C·M): C=2000, M=2160 -> 2939.4.
	if got := YoungInterval(2000, 2160); math.Abs(got-math.Sqrt(2*2000*2160)) > 1e-9 {
		t.Errorf("Young = %g", got)
	}
	if !math.IsNaN(YoungInterval(0, 100)) || !math.IsNaN(YoungInterval(100, 0)) {
		t.Error("degenerate inputs should be NaN")
	}
}

func TestDalyReducesToYoungForCheapCheckpoints(t *testing.T) {
	// For C << M, Daly ≈ Young − C.
	c, m := 1.0, 1e6
	young := YoungInterval(c, m)
	daly := DalyInterval(c, m)
	if math.Abs(daly-(young-c)) > 0.01*young {
		t.Errorf("Daly %g vs Young-C %g", daly, young-c)
	}
}

func TestDalyCapsAtMTBF(t *testing.T) {
	if got := DalyInterval(5000, 2000); got != 2000 {
		t.Errorf("C >= 2M should return M, got %g", got)
	}
	if !math.IsNaN(DalyInterval(-1, 10)) {
		t.Error("negative C should be NaN")
	}
}

func TestDalyBeatsYoungInExpensiveRegime(t *testing.T) {
	// Simulate a single-level execution where C is a large fraction of
	// MTBF: the Daly interval should yield a wall clock no worse than
	// Young's (this is the regime Daly's correction exists for).
	te := 50.0 * failure.SecondsPerDay
	n := 1000.0
	p := &model.Params{
		Te:      te,
		Speedup: speedup.Linear{Kappa: 1, MaxScale: n},
		Levels:  overhead.SymmetricLevels([]overhead.Cost{overhead.Constant(600)}, 0.5),
		Alloc:   10,
		Rates:   failure.MustParseRates("30", n), // MTBF = 2880 s
	}
	prodTime := p.ProductiveTime(n)
	mtbf := 1 / p.Rates.TotalPerSecondAt(n)
	runWith := func(x float64) float64 {
		agg, err := sim.Simulate(sim.Config{Params: p, N: n, X: []float64{x}}, 400, 9)
		if err != nil {
			t.Fatal(err)
		}
		return agg.WallClock.Mean
	}
	youngX := IntervalsFromPeriod(prodTime, YoungInterval(600, mtbf))
	dalyX := IntervalsFromPeriod(prodTime, DalyInterval(600, mtbf))
	wy := runWith(youngX)
	wd := runWith(dalyX)
	if wd > wy*1.05 {
		t.Errorf("Daly interval (x=%.0f, %g) clearly worse than Young (x=%.0f, %g)", dalyX, wd, youngX, wy)
	}
	t.Logf("Young x=%.0f -> %.3g s; Daly x=%.0f -> %.3g s", youngX, wy, dalyX, wd)
}

func TestIntervalsFromPeriod(t *testing.T) {
	if x := IntervalsFromPeriod(1000, 100); x != 10 {
		t.Errorf("x = %g", x)
	}
	if x := IntervalsFromPeriod(50, 100); x != 1 {
		t.Errorf("short run should clamp to 1, got %g", x)
	}
	if x := IntervalsFromPeriod(100, math.NaN()); x != 1 {
		t.Errorf("NaN period should clamp, got %g", x)
	}
}

// Property: Daly's interval never exceeds the MTBF and is positive for
// valid inputs.
func TestDalyBoundsProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		c := rng.Uniform(1, 5000)
		m := rng.Uniform(10, 1e5)
		d := DalyInterval(c, m)
		return d > 0 && d <= m*1.51 // Daly can slightly exceed M only via the series; cap check
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
