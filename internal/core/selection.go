package core

import (
	"fmt"
	"math"

	"mlckpt/internal/failure"
	"mlckpt/internal/model"
	"mlckpt/internal/overhead"
)

// SubsetOutcome records the evaluation of one level subset during
// selection.
type SubsetOutcome struct {
	Enabled   []bool
	WallClock float64 // expected wall clock, seconds (+Inf if diverged)
	Solution  Solution
	Err       error
}

// LevelSelection is the result of SelectLevels.
type LevelSelection struct {
	// Enabled marks the chosen levels of the ORIGINAL problem.
	Enabled []bool
	// Solution is the optimum of the reduced problem (its X indexes only
	// the enabled levels, lowest first).
	Solution Solution
	// X maps the reduced solution back onto the original levels (disabled
	// levels get x = 1, i.e. no checkpoints).
	X []float64
	// Evaluated holds every candidate subset for diagnostics.
	Evaluated []SubsetOutcome
}

// SelectLevels extends the interval+scale optimization with the level
// selection of the authors' prior work ([22] in the paper): it searches
// all subsets of checkpoint levels that include the top (PFS) level —
// the only one able to recover its own failure class — optimizes each
// reduced problem with Algorithm 1, and returns the subset with the
// smallest expected wall clock.
//
// When a level is disabled, its failure class does not disappear: those
// failures must be recovered from the next enabled level above, so the
// reduced problem folds each disabled class's rate into that level.
func SelectLevels(p *model.Params, opts Options) (LevelSelection, error) {
	if err := p.Validate(); err != nil {
		return LevelSelection{}, err
	}
	L := p.L()
	if L > 16 {
		return LevelSelection{}, fmt.Errorf("%w: %d levels is beyond the exhaustive search", model.ErrParams, L)
	}
	best := LevelSelection{}
	bestWCT := math.Inf(1)
	// Enumerate subsets of the lower L-1 levels; the top level is pinned.
	for mask := 0; mask < 1<<(L-1); mask++ {
		enabled := make([]bool, L)
		enabled[L-1] = true
		for i := 0; i < L-1; i++ {
			enabled[i] = mask&(1<<i) != 0
		}
		reduced, err := ReduceLevels(p, enabled)
		if err != nil {
			return LevelSelection{}, err
		}
		out := SubsetOutcome{Enabled: append([]bool(nil), enabled...)}
		sol, err := Optimize(reduced, opts)
		if err != nil {
			out.WallClock = math.Inf(1)
			out.Err = err
		} else {
			out.WallClock = sol.WallClock
			out.Solution = sol
		}
		best.Evaluated = append(best.Evaluated, out)
		if out.WallClock < bestWCT {
			bestWCT = out.WallClock
			best.Enabled = out.Enabled
			best.Solution = out.Solution
		}
	}
	if math.IsInf(bestWCT, 1) {
		return best, fmt.Errorf("%w: no level subset converged", ErrDiverged)
	}
	// Map the reduced schedule back to the original levels.
	best.X = make([]float64, L)
	for i := range best.X {
		best.X[i] = 1
	}
	xi := 0
	for i, on := range best.Enabled {
		if on {
			best.X[i] = best.Solution.X[xi]
			xi++
		}
	}
	return best, nil
}

// ReduceLevels builds the reduced problem for an enabled-level subset:
// only the enabled levels' cost models remain, and each disabled class's
// failure rate is folded into the lowest enabled level at or above it.
// The top level must be enabled.
func ReduceLevels(p *model.Params, enabled []bool) (*model.Params, error) {
	L := p.L()
	if len(enabled) != L {
		return nil, fmt.Errorf("%w: %d flags for %d levels", model.ErrParams, len(enabled), L)
	}
	if !enabled[L-1] {
		return nil, fmt.Errorf("%w: the top level cannot be disabled", model.ErrParams)
	}
	var levels []overhead.Level
	var rates []float64
	// escalate[i]: index in the reduced problem that absorbs class i.
	for i := 0; i < L; i++ {
		if enabled[i] {
			levels = append(levels, p.Levels[i])
			rates = append(rates, 0)
		}
	}
	ri := -1
	reducedIdx := make([]int, L)
	for i := 0; i < L; i++ {
		if enabled[i] {
			ri++
		}
		reducedIdx[i] = ri
	}
	// A class lands at the lowest enabled level >= it: scan upward.
	for i := 0; i < L; i++ {
		target := -1
		for j := i; j < L; j++ {
			if enabled[j] {
				target = reducedIdx[j]
				break
			}
		}
		rates[target] += p.Rates.PerDay[i]
	}
	out := *p
	out.Levels = levels
	out.Rates = failure.Rates{PerDay: rates, Baseline: p.Rates.Baseline}
	return &out, nil
}
