package core

import (
	"testing"

	"mlckpt/internal/obs"
)

func TestOptimizeTelemetry(t *testing.T) {
	p := paperParams(3e6, "16-12-8-4")
	col := obs.NewCollector()
	sol, err := Optimize(p, Options{OuterTol: 1e-12, Obs: col, ObsLabel: "opt/test"})
	if err != nil {
		t.Fatal(err)
	}
	snap := col.Registry.Snapshot()
	if n, _ := snap.Counter("core.optimize.solves"); n != 1 {
		t.Errorf("core.optimize.solves = %d, want 1", n)
	}
	if n, _ := snap.Counter("core.optimize.converged"); n != 1 {
		t.Errorf("core.optimize.converged = %d, want 1", n)
	}
	if n, _ := snap.Counter("core.bisect.calls"); n <= 0 {
		t.Error("core.bisect.calls missing; inner solver not instrumented")
	}
	// The timeline carries one span per outer iteration plus the terminal
	// "done" instant, all on the labeled track.
	if got, want := col.Trace.Len(), sol.OuterIterations+1; got != want {
		t.Errorf("trace has %d events, want %d (outer iterations + done)", got, want)
	}
	if tracks := col.Trace.Tracks(); len(tracks) != 1 || tracks[0] != "opt/test" {
		t.Errorf("tracks = %v, want [opt/test]", tracks)
	}
}

func TestOptimizeEmptyLabelDefaultsTrack(t *testing.T) {
	p := paperParams(3e6, "16-12-8-4")
	col := obs.NewCollector()
	if _, err := Optimize(p, Options{OuterTol: 1e-12, Obs: col}); err != nil {
		t.Fatal(err)
	}
	if n, _ := col.Registry.Snapshot().Counter("core.optimize.solves"); n != 1 {
		t.Errorf("core.optimize.solves = %d, want 1", n)
	}
	if tracks := col.Trace.Tracks(); len(tracks) != 1 || tracks[0] != "optimize" {
		t.Errorf("tracks = %v, want the default [optimize]", tracks)
	}
}

func TestOptimizeNilRecorderUnchanged(t *testing.T) {
	p := paperParams(3e6, "16-12-8-4")
	plain, err := Optimize(p, Options{OuterTol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	observed, err := Optimize(p, Options{OuterTol: 1e-12, Obs: obs.NewCollector(), ObsLabel: "opt/x"})
	if err != nil {
		t.Fatal(err)
	}
	if plain.N != observed.N || plain.WallClock != observed.WallClock ||
		plain.OuterIterations != observed.OuterIterations {
		t.Error("solution changes when a Recorder is attached")
	}
}
