package core

import (
	"fmt"
	"math"

	"mlckpt/internal/model"
	"mlckpt/internal/obs"
)

// optRun is one resumable Algorithm 1 execution: init validates and seeds
// the μ estimate, outerStepBegin starts an inner solve, and
// outerStepFinish performs the wall-clock/μ refresh and convergence test.
// Optimize drives one run to completion; OptimizeBatch interleaves many,
// so every lane's inner solves advance in lockstep.
type optRun struct {
	p     *model.Params
	opts  Options
	rec   obs.Recorder
	track string

	st  *innerState
	run innerRun

	n, tEst          float64
	mu, muStar, muNu []float64

	aitken  [3]float64 // trailing wall-clock estimates for Δ² extrapolation
	nAitken int

	sol   Solution
	outer int
	done  bool
	err   error
}

// init validates the problem and seeds Algorithm 1 lines 1–3: μ_i from the
// failure-free productive time at the starting scale (the ideal scale,
// capped by the machine size, or the pinned one). vecs, when non-nil,
// provides arena backing for the solver scratch (7·L floats).
func (o *optRun) init(p *model.Params, opts Options, vecs []float64) error {
	if err := p.Validate(); err != nil {
		return err
	}
	o.p = p
	o.opts = opts.withDefaults()
	// Telemetry: the track's time axis is cumulative inner iterations —
	// a virtual clock measuring solver effort, deterministic across runs.
	o.rec = obs.OrNop(o.opts.Obs)
	o.track = o.opts.ObsLabel
	if o.track == "" {
		o.track = "optimize"
	}
	o.rec.Count("core.optimize.solves", 1)

	L := p.L()
	if vecs == nil {
		vecs = make([]float64, optRunVecs*L)
	}
	o.st = newInnerState(p, vecs[:4*L])
	o.mu = vecs[4*L : 5*L]
	o.muStar = vecs[5*L : 6*L]
	o.muNu = vecs[6*L : 7*L]

	n := p.Speedup.IdealScale()
	if o.opts.MaxScale > 0 && o.opts.MaxScale < n {
		n = o.opts.MaxScale
	}
	if o.opts.FixedN > 0 {
		n = o.opts.FixedN
	}
	o.n = n
	o.tEst = p.ProductiveTime(n)
	if math.IsInf(o.tEst, 0) || o.tEst <= 0 {
		return fmt.Errorf("%w: productive time %g at N=%g", ErrDiverged, o.tEst, n)
	}
	p.MuOfNInto(o.mu, n, o.tEst)
	return nil
}

// optRunVecs is the per-level float count of an optRun's arena: four inner
// iterate vectors plus the three μ buffers.
const optRunVecs = 7

// outerStepBegin starts the inner convex solve of the next outer step
// (line 5) under μ_i(N) = b_i·N.
func (o *optRun) outerStepBegin() {
	o.outer++
	o.run.start(o.st, o.tEst, o.n, o.opts)
}

// outerStepFinish consumes a finished inner run: the expected-wall-clock
// evaluation (line 6), the μ refresh (lines 7–10), and the convergence
// test (line 11). It sets done (and err) when the run terminates.
func (o *optRun) outerStepFinish() {
	p := o.p
	innerIters := o.run.iter
	o.sol.InnerIterations += innerIters
	if o.run.err != nil {
		o.err = o.run.err
		o.done = true
		return
	}
	o.n = o.run.n
	n := o.n
	x := o.st.x

	// Line 6: expected wall clock under the solved (x, N).
	p.MuOfNInto(o.muStar, n, o.tEst)
	wct := p.WallClock(x, n, o.muStar)
	if math.IsNaN(wct) || math.IsInf(wct, 0) || wct <= 0 {
		o.rec.Count("core.optimize.diverged", 1)
		o.err = fmt.Errorf("%w: wall clock %g at outer step %d", ErrDiverged, wct, o.outer)
		o.done = true
		return
	}
	if o.opts.Damping > 0 {
		wct = (1-o.opts.Damping)*wct + o.opts.Damping*o.tEst
	}
	if o.opts.Accelerate {
		o.aitken[o.nAitken] = wct
		o.nAitken++
		if o.nAitken == 3 {
			d0 := o.aitken[1] - o.aitken[0]
			d1 := o.aitken[2] - o.aitken[1]
			den := d1 - d0
			if math.Abs(den) > 1e-12*math.Abs(o.aitken[2]) {
				if acc := o.aitken[2] - d1*d1/den; acc > 0 && !math.IsNaN(acc) && !math.IsInf(acc, 0) {
					wct = acc
				}
			}
			o.nAitken = 0
		}
	}

	// Lines 7–10: refresh μ from the new wall clock.
	p.MuOfNInto(o.muNu, n, wct)
	delta := 0.0
	for i := range o.mu {
		if d := math.Abs(o.muNu[i] - o.mu[i]); d > delta {
			delta = d
		}
	}
	o.sol.History = append(o.sol.History, OuterStep{
		Mu: append([]float64(nil), o.mu...), N: n, WallClock: wct, MuDelta: delta,
	})
	if o.rec != obs.Nop() {
		args := map[string]float64{
			"n": n, "wct_s": wct, "mu_delta": delta, "inner_iters": float64(innerIters),
		}
		for i := range o.muNu {
			args[fmt.Sprintf("mu_%d", i+1)] = o.muNu[i]
			args[fmt.Sprintf("x_%d", i+1)] = x[i]
		}
		o.rec.Span(o.track, fmt.Sprintf("outer-%d", o.outer),
			float64(o.sol.InnerIterations-innerIters), float64(innerIters), args)
	}
	o.mu, o.muNu = o.muNu, o.mu
	o.tEst = wct
	o.sol.X = append(o.sol.X[:0], x...)
	o.sol.N, o.sol.WallClock = n, wct
	o.sol.Mu = append(o.sol.Mu[:0], o.mu...)
	o.sol.OuterIterations = o.outer

	// Divergence guard: μ exploding beyond any physical regime means
	// the failure rates outpace progress (Section III-D's caveat).
	if delta > 1e12 {
		o.rec.Count("core.optimize.diverged", 1)
		o.err = fmt.Errorf("%w: μ delta %g at outer step %d", ErrDiverged, delta, o.outer)
		o.done = true
		return
	}
	// Line 11: convergence on the failure counts.
	if delta <= o.opts.OuterTol {
		o.sol.Converged = true
		finishOptimizeObs(o.rec, o.track, o.sol, true)
		o.done = true
		return
	}
	if o.opts.SinglePass {
		// Classic Young: no refresh loop; keep the first-pass answer.
		finishOptimizeObs(o.rec, o.track, o.sol, false)
		o.done = true
		return
	}
	if o.outer >= o.opts.OuterMaxIter {
		o.rec.Count("core.optimize.no_converge", 1)
		o.err = fmt.Errorf("%w: Algorithm 1 after %d outer iterations", ErrNoConverge, o.opts.OuterMaxIter)
		o.done = true
	}
}

// Optimize runs Algorithm 1: it initializes the expected failure counts
// from the failure-free productive time (lines 1–3), then alternates the
// inner convex solve with a refresh of the expected failure counts from
// the new expected wall-clock length (lines 4–11) until
// max_i |μ'_i − μ_i| ≤ δ.
func Optimize(p *model.Params, opts Options) (Solution, error) {
	var o optRun
	if err := o.init(p, opts, nil); err != nil {
		return Solution{}, err
	}
	for !o.done {
		o.outerStepBegin()
		for !o.run.step() {
		}
		o.outerStepFinish()
	}
	return o.sol, o.err
}

// finishOptimizeObs records the end-of-solve telemetry: iteration-count
// histograms (the paper reports 7–15 outer iterations at δ = 1e-12) and a
// terminal instant on the solve's track.
func finishOptimizeObs(rec obs.Recorder, track string, sol Solution, converged bool) {
	if converged {
		rec.Count("core.optimize.converged", 1)
	}
	rec.Observe("core.optimize.outer_iters", float64(sol.OuterIterations))
	rec.Observe("core.optimize.inner_iters", float64(sol.InnerIterations))
	rec.Observe("core.optimize.wct_days", sol.WallClock/86400)
	rec.Instant(track, "done", float64(sol.InnerIterations), map[string]float64{
		"outer_iters": float64(sol.OuterIterations),
		"wct_s":       sol.WallClock,
	})
}
