package core

import (
	"fmt"
	"math"

	"mlckpt/internal/model"
	"mlckpt/internal/obs"
)

// Optimize runs Algorithm 1: it initializes the expected failure counts
// from the failure-free productive time (lines 1–3), then alternates the
// inner convex solve with a refresh of the expected failure counts from
// the new expected wall-clock length (lines 4–11) until
// max_i |μ'_i − μ_i| ≤ δ.
func Optimize(p *model.Params, opts Options) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	opts = opts.withDefaults()
	// Telemetry: the track's time axis is cumulative inner iterations —
	// a virtual clock measuring solver effort, deterministic across runs.
	rec := obs.OrNop(opts.Obs)
	track := opts.ObsLabel
	if track == "" {
		track = "optimize"
	}
	rec.Count("core.optimize.solves", 1)

	// Lines 1–3: μ_i from the failure-free productive time at the starting
	// scale (the ideal scale, capped by the machine size, or the pinned
	// one).
	n := p.Speedup.IdealScale()
	if opts.MaxScale > 0 && opts.MaxScale < n {
		n = opts.MaxScale
	}
	if opts.FixedN > 0 {
		n = opts.FixedN
	}
	tEst := p.ProductiveTime(n)
	if math.IsInf(tEst, 0) || tEst <= 0 {
		return Solution{}, fmt.Errorf("%w: productive time %g at N=%g", ErrDiverged, tEst, n)
	}
	mu := p.MuOfN(n, tEst)

	sol := Solution{}
	var aitken []float64 // trailing wall-clock estimates for Δ² extrapolation
	for outer := 1; outer <= opts.OuterMaxIter; outer++ {
		// Line 5: inner convex solve under μ_i(N) = b_i·N.
		x, nStar, innerIters, err := SolveInner(p, tEst, n, opts)
		sol.InnerIterations += innerIters
		if err != nil {
			return sol, err
		}
		n = nStar

		// Line 6: expected wall clock under the solved (x, N).
		muStar := p.MuOfN(n, tEst)
		wct := p.WallClock(x, n, muStar)
		if math.IsNaN(wct) || math.IsInf(wct, 0) || wct <= 0 {
			rec.Count("core.optimize.diverged", 1)
			return sol, fmt.Errorf("%w: wall clock %g at outer step %d", ErrDiverged, wct, outer)
		}
		if opts.Damping > 0 {
			wct = (1-opts.Damping)*wct + opts.Damping*tEst
		}
		if opts.Accelerate {
			aitken = append(aitken, wct)
			if len(aitken) == 3 {
				d0 := aitken[1] - aitken[0]
				d1 := aitken[2] - aitken[1]
				den := d1 - d0
				if math.Abs(den) > 1e-12*math.Abs(aitken[2]) {
					if acc := aitken[2] - d1*d1/den; acc > 0 && !math.IsNaN(acc) && !math.IsInf(acc, 0) {
						wct = acc
					}
				}
				aitken = aitken[:0]
			}
		}

		// Lines 7–10: refresh μ from the new wall clock.
		newMu := p.MuOfN(n, wct)
		delta := 0.0
		for i := range mu {
			if d := math.Abs(newMu[i] - mu[i]); d > delta {
				delta = d
			}
		}
		sol.History = append(sol.History, OuterStep{
			Mu: append([]float64(nil), mu...), N: n, WallClock: wct, MuDelta: delta,
		})
		args := map[string]float64{
			"n": n, "wct_s": wct, "mu_delta": delta, "inner_iters": float64(innerIters),
		}
		for i := range newMu {
			args[fmt.Sprintf("mu_%d", i+1)] = newMu[i]
			args[fmt.Sprintf("x_%d", i+1)] = x[i]
		}
		rec.Span(track, fmt.Sprintf("outer-%d", outer),
			float64(sol.InnerIterations-innerIters), float64(innerIters), args)
		mu, tEst = newMu, wct
		sol.X, sol.N, sol.WallClock, sol.Mu = x, n, wct, newMu
		sol.OuterIterations = outer

		// Divergence guard: μ exploding beyond any physical regime means
		// the failure rates outpace progress (Section III-D's caveat).
		if delta > 1e12 {
			rec.Count("core.optimize.diverged", 1)
			return sol, fmt.Errorf("%w: μ delta %g at outer step %d", ErrDiverged, delta, outer)
		}
		// Line 11: convergence on the failure counts.
		if delta <= opts.OuterTol {
			sol.Converged = true
			finishOptimizeObs(rec, track, sol, true)
			return sol, nil
		}
		if opts.SinglePass {
			// Classic Young: no refresh loop; keep the first-pass answer.
			finishOptimizeObs(rec, track, sol, false)
			return sol, nil
		}
	}
	rec.Count("core.optimize.no_converge", 1)
	return sol, fmt.Errorf("%w: Algorithm 1 after %d outer iterations", ErrNoConverge, opts.OuterMaxIter)
}

// finishOptimizeObs records the end-of-solve telemetry: iteration-count
// histograms (the paper reports 7–15 outer iterations at δ = 1e-12) and a
// terminal instant on the solve's track.
func finishOptimizeObs(rec obs.Recorder, track string, sol Solution, converged bool) {
	if converged {
		rec.Count("core.optimize.converged", 1)
	}
	rec.Observe("core.optimize.outer_iters", float64(sol.OuterIterations))
	rec.Observe("core.optimize.inner_iters", float64(sol.InnerIterations))
	rec.Observe("core.optimize.wct_days", sol.WallClock/86400)
	rec.Instant(track, "done", float64(sol.InnerIterations), map[string]float64{
		"outer_iters": float64(sol.OuterIterations),
		"wct_s":       sol.WallClock,
	})
}
