package core

import (
	"fmt"
	"math"

	"mlckpt/internal/model"
)

// Optimize runs Algorithm 1: it initializes the expected failure counts
// from the failure-free productive time (lines 1–3), then alternates the
// inner convex solve with a refresh of the expected failure counts from
// the new expected wall-clock length (lines 4–11) until
// max_i |μ'_i − μ_i| ≤ δ.
func Optimize(p *model.Params, opts Options) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	opts = opts.withDefaults()

	// Lines 1–3: μ_i from the failure-free productive time at the starting
	// scale (the ideal scale, capped by the machine size, or the pinned
	// one).
	n := p.Speedup.IdealScale()
	if opts.MaxScale > 0 && opts.MaxScale < n {
		n = opts.MaxScale
	}
	if opts.FixedN > 0 {
		n = opts.FixedN
	}
	tEst := p.ProductiveTime(n)
	if math.IsInf(tEst, 0) || tEst <= 0 {
		return Solution{}, fmt.Errorf("%w: productive time %g at N=%g", ErrDiverged, tEst, n)
	}
	mu := p.MuOfN(n, tEst)

	sol := Solution{}
	var aitken []float64 // trailing wall-clock estimates for Δ² extrapolation
	for outer := 1; outer <= opts.OuterMaxIter; outer++ {
		// Line 5: inner convex solve under μ_i(N) = b_i·N.
		x, nStar, innerIters, err := SolveInner(p, tEst, n, opts)
		sol.InnerIterations += innerIters
		if err != nil {
			return sol, err
		}
		n = nStar

		// Line 6: expected wall clock under the solved (x, N).
		muStar := p.MuOfN(n, tEst)
		wct := p.WallClock(x, n, muStar)
		if math.IsNaN(wct) || math.IsInf(wct, 0) || wct <= 0 {
			return sol, fmt.Errorf("%w: wall clock %g at outer step %d", ErrDiverged, wct, outer)
		}
		if opts.Damping > 0 {
			wct = (1-opts.Damping)*wct + opts.Damping*tEst
		}
		if opts.Accelerate {
			aitken = append(aitken, wct)
			if len(aitken) == 3 {
				d0 := aitken[1] - aitken[0]
				d1 := aitken[2] - aitken[1]
				den := d1 - d0
				if math.Abs(den) > 1e-12*math.Abs(aitken[2]) {
					if acc := aitken[2] - d1*d1/den; acc > 0 && !math.IsNaN(acc) && !math.IsInf(acc, 0) {
						wct = acc
					}
				}
				aitken = aitken[:0]
			}
		}

		// Lines 7–10: refresh μ from the new wall clock.
		newMu := p.MuOfN(n, wct)
		delta := 0.0
		for i := range mu {
			if d := math.Abs(newMu[i] - mu[i]); d > delta {
				delta = d
			}
		}
		sol.History = append(sol.History, OuterStep{
			Mu: append([]float64(nil), mu...), N: n, WallClock: wct, MuDelta: delta,
		})
		mu, tEst = newMu, wct
		sol.X, sol.N, sol.WallClock, sol.Mu = x, n, wct, newMu
		sol.OuterIterations = outer

		// Divergence guard: μ exploding beyond any physical regime means
		// the failure rates outpace progress (Section III-D's caveat).
		if delta > 1e12 {
			return sol, fmt.Errorf("%w: μ delta %g at outer step %d", ErrDiverged, delta, outer)
		}
		// Line 11: convergence on the failure counts.
		if delta <= opts.OuterTol {
			sol.Converged = true
			return sol, nil
		}
		if opts.SinglePass {
			// Classic Young: no refresh loop; keep the first-pass answer.
			return sol, nil
		}
	}
	return sol, fmt.Errorf("%w: Algorithm 1 after %d outer iterations", ErrNoConverge, opts.OuterMaxIter)
}
