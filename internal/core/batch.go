package core

import (
	"mlckpt/internal/model"
)

// Problem is one lane of a batched solve: a parameter set plus the solver
// options (including per-lane telemetry via Options.Obs/ObsLabel).
// Params must be non-nil.
type Problem struct {
	Params *model.Params
	Opts   Options
}

// Outcome is one lane's result of OptimizeBatch, mirroring the
// (Solution, error) pair of Optimize.
type Outcome struct {
	Solution Solution
	Err      error
}

// OptimizeBatch runs Algorithm 1 for many independent problem instances in
// lockstep: every active lane advances one inner fixed-point iteration per
// round, and the outer μ-refreshes of a round happen together once every
// lane's inner solve of that round has terminated. Per-lane convergence
// masks retire finished lanes; the per-level iterate vectors of all lanes
// live in one shared scratch arena, and each lane's scale search runs on
// its precomputed model.Slab grid (see SolveInner).
//
// Every lane computes exactly what a sequential Optimize call would — same
// floating-point operations in the same per-lane order — so the outcomes
// are bit-identical to looping over Optimize; the batch form exists to
// amortize scratch, keep slabs cache-hot, and give grid drivers a single
// call per sweep.
func OptimizeBatch(problems []Problem) []Outcome {
	out := make([]Outcome, len(problems))
	if len(problems) == 0 {
		return out
	}
	total := 0
	for i := range problems {
		total += optRunVecs * problems[i].Params.L()
	}
	arena := make([]float64, total)
	runs := make([]*optRun, len(problems))
	off := 0
	for i := range problems {
		L := problems[i].Params.L()
		o := &optRun{}
		err := o.init(problems[i].Params, problems[i].Opts, arena[off:off+optRunVecs*L])
		off += optRunVecs * L
		if err != nil {
			out[i].Err = err
			continue
		}
		runs[i] = o
	}
	for {
		active := false
		for _, o := range runs {
			if o != nil && !o.done {
				active = true
				o.outerStepBegin()
			}
		}
		if !active {
			break
		}
		// Lockstep inner phase: one fixed-point iteration per lane per
		// pass until every lane's inner solve of this outer round is done.
		for {
			pending := false
			for _, o := range runs {
				if o == nil || o.done || o.run.done {
					continue
				}
				if !o.run.step() {
					pending = true
				}
			}
			if !pending {
				break
			}
		}
		for _, o := range runs {
			if o != nil && !o.done {
				o.outerStepFinish()
			}
		}
	}
	for i, o := range runs {
		if o != nil {
			out[i] = Outcome{Solution: o.sol, Err: o.err}
		}
	}
	return out
}

// InnerSolution is one lane's result of SolveInnerBatch, mirroring the
// return values of SolveInner.
type InnerSolution struct {
	X          []float64
	N          float64
	Iterations int
	Err        error
}

// SolveInnerBatch runs the inner convex solve for many independent problem
// instances in lockstep: each round advances every still-unconverged lane
// by one fixed-point iteration (interval sweep + batched scale search).
// tEst and nInit give each lane's frozen wall-clock estimate and starting
// scale; all three slices must have equal length. Lane results are
// bit-identical to calling SolveInner per lane.
func SolveInnerBatch(problems []Problem, tEst, nInit []float64) []InnerSolution {
	if len(tEst) != len(problems) || len(nInit) != len(problems) {
		panic("core: SolveInnerBatch argument lengths differ")
	}
	out := make([]InnerSolution, len(problems))
	if len(problems) == 0 {
		return out
	}
	total := 0
	for i := range problems {
		total += 4 * problems[i].Params.L()
	}
	arena := make([]float64, total)
	runs := make([]innerRun, len(problems))
	off := 0
	for i := range problems {
		L := problems[i].Params.L()
		st := newInnerState(problems[i].Params, arena[off:off+4*L])
		off += 4 * L
		runs[i].start(st, tEst[i], nInit[i], problems[i].Opts)
	}
	for {
		pending := false
		for i := range runs {
			if runs[i].done {
				continue
			}
			if !runs[i].step() {
				pending = true
			}
		}
		if !pending {
			break
		}
	}
	for i := range runs {
		out[i] = InnerSolution{
			X:          append([]float64(nil), runs[i].st.x...),
			N:          runs[i].n,
			Iterations: runs[i].iter,
			Err:        runs[i].err,
		}
	}
	return out
}
