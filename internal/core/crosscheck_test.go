package core

import (
	"math"
	"testing"

	"mlckpt/internal/numopt"
	"mlckpt/internal/overhead"
)

// TestMultilevelOptimumCrossCheckedByNelderMead verifies the paper's
// fixed-point solution against an entirely independent method: a
// derivative-free Nelder–Mead search over (x_1..x_4, N) on the same frozen
// objective. The two share no code, so agreement is strong evidence that
// both the first-order conditions (Formulas 23/24) and their fixed-point
// solver are implemented correctly.
func TestMultilevelOptimumCrossCheckedByNelderMead(t *testing.T) {
	p := paperParams(3e6, "16-12-8-4")
	sol, err := Optimize(p, Options{OuterTol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	// Freeze the failure model at the converged wall clock (the inner
	// convex problem both methods must agree on).
	b := p.BOfT(sol.WallClock)
	objective := func(v []float64) float64 {
		x := v[:4]
		n := v[4]
		if n <= 1 || n > p.Speedup.IdealScale() {
			return math.Inf(1)
		}
		for _, xi := range x {
			if xi < 1 {
				return math.Inf(1)
			}
		}
		mu := make([]float64, 4)
		for i := range mu {
			mu[i] = b[i] * n
		}
		return p.WallClock(x, n, mu)
	}

	// Start Nelder–Mead from a deliberately wrong point.
	start := []float64{500, 200, 100, 10, 3e5}
	_, best, err := numopt.NelderMead(objective, start, numopt.NelderMeadOptions{
		MaxIter: 60000, Tol: 1e-13, Scale: 0.5,
	})
	if err != nil {
		t.Fatalf("NelderMead: %v", err)
	}

	fixedPoint := objective(append(append([]float64(nil), sol.X...), sol.N))
	simplex := objective(best)

	// The fixed-point solution must be at least as good as what the
	// simplex found (within numerical slack), and the located scales must
	// agree.
	if fixedPoint > simplex*(1+1e-4) {
		t.Errorf("fixed-point objective %.8g worse than Nelder-Mead %.8g", fixedPoint, simplex)
	}
	if math.Abs(best[4]-sol.N)/sol.N > 0.05 {
		t.Errorf("scales disagree: fixed point %g vs simplex %g", sol.N, best[4])
	}
	for i := 0; i < 4; i++ {
		if math.Abs(best[i]-sol.X[i])/sol.X[i] > 0.1 {
			t.Errorf("x_%d disagrees: fixed point %g vs simplex %g", i+1, sol.X[i], best[i])
		}
	}
}

// TestSingleLevelOptimumCrossCheckedByGrid verifies the Figure 3 solution
// against a dense 2-D grid scan of the objective.
func TestSingleLevelOptimumCrossCheckedByGrid(t *testing.T) {
	s, err := SolveSingleLevelFixedB(fig3Te, fig3Speedup(),
		overhead.Constant(5), overhead.Constant(5), 0, fig3B, 100000, 1e-8, 10000)
	if err != nil {
		t.Fatal(err)
	}
	g := fig3Speedup()
	obj := func(x, n float64) float64 {
		pt := fig3Te / g.Speedup(n)
		return pt + 5*(x-1) + fig3B*n*(pt/(2*x)+5)
	}
	base := obj(s.X, s.N)
	bestX, bestN, bestV := s.X, s.N, base
	for xi := 0.5; xi <= 2.0; xi += 0.01 {
		for ni := 0.5; ni <= 1.2; ni += 0.01 {
			n := s.N * ni
			if n > 1e5 {
				continue
			}
			if v := obj(s.X*xi, n); v < bestV {
				bestX, bestN, bestV = s.X*xi, n, v
			}
		}
	}
	if bestV < base*(1-1e-6) {
		t.Errorf("grid found better point (%g, %g): %g < %g", bestX, bestN, bestV, base)
	}
}
