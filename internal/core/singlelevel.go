package core

import (
	"fmt"
	"math"

	"mlckpt/internal/failure"
	"mlckpt/internal/model"
	"mlckpt/internal/numopt"
	"mlckpt/internal/overhead"
	"mlckpt/internal/speedup"
)

// LinearSolution is the closed-form result of the linear-speedup
// single-level model.
type LinearSolution struct {
	X float64 // optimal number of checkpoint intervals (Formula 10)
	N float64 // optimal scale (Formula 11)
}

// SolveSingleLevelLinear computes the closed forms of Section III-C.1 for a
// linear-speedup application with constant checkpoint cost eps0, constant
// recovery cost eta0, allocation period alloc, failure coefficient b
// (μ(N) = b·N) and slope kappa:
//
//	x* = sqrt( b·T_e / (2·κ·ε₀) )        (Formula 10)
//	N* = sqrt( T_e / (κ·b·(η₀ + A)) )    (Formula 11)
//
// The scale is capped at maxScale (linear speedup has no interior optimum of
// its own). te is in seconds.
func SolveSingleLevelLinear(te, kappa, eps0, eta0, alloc, b, maxScale float64) (LinearSolution, error) {
	if te <= 0 || kappa <= 0 || eps0 <= 0 || b <= 0 {
		return LinearSolution{}, fmt.Errorf("%w: need positive te, κ, ε₀, b", model.ErrParams)
	}
	if eta0+alloc <= 0 {
		return LinearSolution{}, fmt.Errorf("%w: η₀ + A must be positive", model.ErrParams)
	}
	s := LinearSolution{
		X: math.Sqrt(b * te / (2 * kappa * eps0)),
		N: math.Sqrt(te / (kappa * b * (eta0 + alloc))),
	}
	if maxScale > 0 && s.N > maxScale {
		s.N = maxScale
	}
	if s.X < 1 {
		s.X = 1
	}
	return s, nil
}

// FixedBSolution is the result of the single-level nonlinear solve at a
// fixed failure coefficient.
type FixedBSolution struct {
	X          float64
	N          float64
	WallClock  float64 // E(T_w) per the single-level objective, seconds
	Iterations int
}

// SolveSingleLevelFixedB reproduces the paper's Figure 3 study: the
// single-level model with nonlinear speedup g, cost models c and r
// (possibly scale-dependent), allocation alloc, and a FIXED failure
// coefficient b (μ(N) = b·N with no outer refresh). It alternates the
// closed-form interval update (Formula 16, generalized to non-constant
// C(N)) with a bisection solve of the scale equation (Formula 17,
// generalized):
//
//	∂E/∂N = −T_e·g'/g² − b·N·T_e·g'/(2x·g²) + b·T_e/(2x·g)
//	        + C'(N)(x−1) + b(R(N)+A) + b·N·R'(N) = 0
//
// starting from xInit (the paper uses 100,000) until |x⁽ᵏ⁺¹⁾−x⁽ᵏ⁾| < tol.
func SolveSingleLevelFixedB(te float64, g speedup.Model, c, r overhead.Cost, alloc, b, xInit, tol float64, maxIter int) (FixedBSolution, error) {
	if tol <= 0 {
		tol = 1e-6
	}
	if maxIter <= 0 {
		maxIter = 10000
	}
	if xInit <= 0 {
		xInit = 100000
	}
	ceiling := g.IdealScale()
	x := xInit
	n := ceiling

	gradN := func(n, x float64) float64 {
		gv := g.Speedup(n)
		gp := g.Derivative(n)
		return -te*gp/(gv*gv) - b*n*te*gp/(2*x*gv*gv) + b*te/(2*x*gv) +
			c.DerivativeAt(n)*(x-1) + b*(r.At(n)+alloc) + b*n*r.DerivativeAt(n)
	}

	var iters int
	for iters = 1; iters <= maxIter; iters++ {
		// Formula (16): x⁽ᵏ⁺¹⁾ from the current scale.
		gv := g.Speedup(n)
		xNew := math.Sqrt(b * n * te / (2 * c.At(n) * gv))
		if xNew < 1 || math.IsNaN(xNew) {
			xNew = 1
		}
		// Formula (17): N⁽ᵏ⁺¹⁾ by bisection on [1, N^(*)].
		h := func(v float64) float64 { return gradN(v, xNew) }
		var nNew float64
		if h(ceiling) <= 0 {
			nNew = ceiling // no interior root: use the ideal scale
		} else if h(1) >= 0 {
			nNew = 1
		} else {
			res, err := numopt.Bisect(h, 1, ceiling, 0.25, 200)
			if err != nil {
				return FixedBSolution{X: x, N: n, Iterations: iters},
					fmt.Errorf("%w: scale bisection: %v", ErrDiverged, err)
			}
			nNew = res.Root
		}
		done := math.Abs(xNew-x) < tol && math.Abs(nNew-n) < 0.5
		x, n = xNew, nNew
		if done {
			wct := model.SingleLevelWallClock(te, g, c, r, alloc, b, x, n)
			return FixedBSolution{X: x, N: n, WallClock: wct, Iterations: iters}, nil
		}
	}
	return FixedBSolution{X: x, N: n, Iterations: maxIter},
		fmt.Errorf("%w: single-level fixed-b solve", ErrNoConverge)
}

// SingleLevelParams collapses a multilevel Params into the equivalent
// single-level (PFS-only) problem: the top level's cost models, and ALL
// failure classes folded into one rate — in a single-level deployment every
// failure, whatever its class, forces a restart from the PFS checkpoint.
func SingleLevelParams(p *model.Params) *model.Params {
	top := p.Levels[len(p.Levels)-1]
	total := 0.0
	for _, v := range p.Rates.PerDay {
		total += v
	}
	sl := *p
	sl.Levels = []overhead.Level{top}
	sl.Rates = failure.Rates{PerDay: []float64{total}, Baseline: p.Rates.Baseline}
	return &sl
}
