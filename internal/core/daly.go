package core

import (
	"math"
)

// YoungInterval returns Young's first-order optimal checkpoint period [3]:
//
//	τ = sqrt(2·C·MTBF)
//
// with C the checkpoint cost and mtbf the mean time between failures, both
// in seconds. This is the classical single-level rule the SL(ori-scale)
// baseline embodies.
func YoungInterval(c, mtbf float64) float64 {
	if c <= 0 || mtbf <= 0 {
		return math.NaN()
	}
	return math.Sqrt(2 * c * mtbf)
}

// DalyInterval returns Daly's higher-order estimate of the optimum
// checkpoint period [4]:
//
//	τ = sqrt(2·C·M)·[1 + (1/3)·sqrt(C/(2M)) + (1/9)·(C/(2M))] − C   for C < 2M
//	τ = M                                                            otherwise
//
// Daly's correction matters exactly where this repository's simulator
// diverges most from the first-order model: when the checkpoint cost is a
// non-trivial fraction of the MTBF. It is provided as an additional
// baseline for interval selection at a fixed level and scale.
func DalyInterval(c, mtbf float64) float64 {
	if c <= 0 || mtbf <= 0 {
		return math.NaN()
	}
	if c >= 2*mtbf {
		return mtbf
	}
	r := math.Sqrt(c / (2 * mtbf))
	return math.Sqrt(2*c*mtbf)*(1+r/3+c/(2*mtbf)/9) - c
}

// IntervalsFromPeriod converts a checkpoint period (seconds) into the
// paper's interval-count variable x for a productive time of p seconds,
// clamped to at least one interval.
func IntervalsFromPeriod(p, period float64) float64 {
	if p <= 0 || period <= 0 || math.IsNaN(period) {
		return 1
	}
	x := p / period
	if x < 1 {
		return 1
	}
	return x
}
