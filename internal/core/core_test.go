package core

import (
	"errors"
	"math"
	"testing"

	"mlckpt/internal/failure"
	"mlckpt/internal/model"
	"mlckpt/internal/numopt"
	"mlckpt/internal/overhead"
	"mlckpt/internal/speedup"
)

// fig3Model is the Figure 3 setup: Heat Distribution speedup (κ=0.46,
// N^(*)=1e5), 4,000 core-days, b=0.005, A=0.
func fig3Speedup() speedup.Quadratic { return speedup.Quadratic{Kappa: 0.46, NStar: 1e5} }

const (
	fig3Te = 4000.0 * failure.SecondsPerDay
	fig3B  = 0.005
)

func TestSolveSingleLevelLinearClosedForm(t *testing.T) {
	te := 1000.0 * failure.SecondsPerDay
	kappa, eps0, eta0, alloc, b := 0.5, 10.0, 20.0, 60.0, 1e-4
	s, err := SolveSingleLevelLinear(te, kappa, eps0, eta0, alloc, b, 1e7)
	if err != nil {
		t.Fatalf("SolveSingleLevelLinear: %v", err)
	}
	wantX := math.Sqrt(b * te / (2 * kappa * eps0))
	wantN := math.Sqrt(te / (kappa * b * (eta0 + alloc)))
	if math.Abs(s.X-wantX) > 1e-9 || math.Abs(s.N-wantN) > 1e-9 {
		t.Errorf("got (%g, %g), want (%g, %g)", s.X, s.N, wantX, wantN)
	}
}

func TestSolveSingleLevelLinearIsTrueMinimum(t *testing.T) {
	// The closed form must coincide with a brute-force 2-D grid minimum of
	// Formula (7).
	te := 1000.0 * failure.SecondsPerDay
	kappa, eps0, eta0, alloc, b := 0.5, 10.0, 20.0, 60.0, 1e-4
	s, err := SolveSingleLevelLinear(te, kappa, eps0, eta0, alloc, b, 1e7)
	if err != nil {
		t.Fatal(err)
	}
	obj := func(x, n float64) float64 {
		return te/(kappa*n) + eps0*(x-1) + b*n*(te/(kappa*n)/(2*x)+eta0+alloc)
	}
	base := obj(s.X, s.N)
	for _, dx := range []float64{0.9, 0.95, 1.05, 1.1} {
		for _, dn := range []float64{0.9, 0.95, 1.05, 1.1} {
			if obj(s.X*dx, s.N*dn) < base-1e-9 {
				t.Errorf("grid point (%g·x*, %g·N*) beats the closed form", dx, dn)
			}
		}
	}
}

func TestSolveSingleLevelLinearCapsAtMaxScale(t *testing.T) {
	s, err := SolveSingleLevelLinear(1e9, 0.5, 10, 20, 0, 1e-9, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 5000 {
		t.Errorf("N = %g, want capped 5000", s.N)
	}
}

func TestSolveSingleLevelLinearRejectsBadInput(t *testing.T) {
	if _, err := SolveSingleLevelLinear(0, 1, 1, 1, 1, 1, 0); !errors.Is(err, model.ErrParams) {
		t.Errorf("err = %v", err)
	}
	if _, err := SolveSingleLevelLinear(1, 1, 1, 0, 0, 1, 0); !errors.Is(err, model.ErrParams) {
		t.Errorf("η₀+A=0 err = %v", err)
	}
}

// TestFigure3ConstantCost reproduces the paper's numerical confirmation:
// with C(N)=R(N)=5 s the optimal solution is x*=797, N*=81,746
// (Section III-C.2).
func TestFigure3ConstantCost(t *testing.T) {
	s, err := SolveSingleLevelFixedB(fig3Te, fig3Speedup(),
		overhead.Constant(5), overhead.Constant(5), 0, fig3B, 100000, 1e-6, 10000)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if math.Abs(s.X-797) > 2 {
		t.Errorf("x* = %.1f, want ≈797", s.X)
	}
	if math.Abs(s.N-81746) > 120 {
		t.Errorf("N* = %.0f, want ≈81,746", s.N)
	}
}

// TestFigure3LinearCost reproduces the linear-increasing-cost case:
// C(N)=R(N)=5+0.005N gives x*=140, N*=20,215.
func TestFigure3LinearCost(t *testing.T) {
	c := overhead.LinearCost(5, 0.005)
	s, err := SolveSingleLevelFixedB(fig3Te, fig3Speedup(), c, c, 0, fig3B, 100000, 1e-6, 10000)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if math.Abs(s.X-140) > 2 {
		t.Errorf("x* = %.1f, want ≈140", s.X)
	}
	if math.Abs(s.N-20215) > 120 {
		t.Errorf("N* = %.0f, want ≈20,215", s.N)
	}
}

// TestFigure3IsMinimum sweeps the single-level objective around the solved
// point, confirming it is the 2-D minimum (what Figure 3 shows graphically).
func TestFigure3IsMinimum(t *testing.T) {
	g := fig3Speedup()
	c := overhead.Constant(5)
	s, err := SolveSingleLevelFixedB(fig3Te, g, c, c, 0, fig3B, 100000, 1e-6, 10000)
	if err != nil {
		t.Fatal(err)
	}
	base := model.SingleLevelWallClock(fig3Te, g, c, c, 0, fig3B, s.X, s.N)
	for _, fx := range []float64{0.5, 0.8, 1.25, 2} {
		v := model.SingleLevelWallClock(fig3Te, g, c, c, 0, fig3B, s.X*fx, s.N)
		if v < base {
			t.Errorf("x sweep %gx beats optimum: %g < %g", fx, v, base)
		}
	}
	for _, fn := range []float64{0.5, 0.8, 1.2, 1.22} {
		n := s.N * fn
		if n > g.IdealScale() {
			continue
		}
		v := model.SingleLevelWallClock(fig3Te, g, c, c, 0, fig3B, s.X, n)
		if v < base {
			t.Errorf("N sweep %gx beats optimum: %g < %g", fn, v, base)
		}
	}
}

func TestSolveSingleLevelFixedBFastConvergence(t *testing.T) {
	// The paper reports 30–40 iterations from x⁰=100,000 at threshold 1e-6.
	s, err := SolveSingleLevelFixedB(fig3Te, fig3Speedup(),
		overhead.Constant(5), overhead.Constant(5), 0, fig3B, 100000, 1e-6, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if s.Iterations > 100 {
		t.Errorf("converged in %d iterations; paper reports 30–40", s.Iterations)
	}
}

func TestSolveSingleLevelFixedBNoFailuresUsesIdealScale(t *testing.T) {
	// Tiny b: no interior root of Formula (17); the solver must return
	// N^(*) (the "very few failures" case discussed after Formula 17).
	s, err := SolveSingleLevelFixedB(fig3Te, fig3Speedup(),
		overhead.Constant(5), overhead.Constant(5), 0, 1e-12, 100000, 1e-6, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if s.N < 0.999e5 {
		t.Errorf("N* = %g, want ≈ the ideal scale 1e5", s.N)
	}
}

// paperParams builds the Section IV evaluation problem: exascale Table II
// costs (level-4 saturating; see overhead.ExascaleCosts), recovery at half
// the checkpoint cost, allocation period 60 s.
func paperParams(teCoreDays float64, spec string) *model.Params {
	return &model.Params{
		Te:      teCoreDays * failure.SecondsPerDay,
		Speedup: speedup.Quadratic{Kappa: 0.46, NStar: 1e6},
		Levels:  overhead.SymmetricLevels(overhead.ExascaleCosts(), 0.5),
		Alloc:   60,
		Rates:   failure.MustParseRates(spec, 1e6),
	}
}

func TestOptimizeConvergesQuickly(t *testing.T) {
	p := paperParams(3e6, "16-12-8-4")
	sol, err := Optimize(p, Options{OuterTol: 1e-12})
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if !sol.Converged {
		t.Fatal("not converged")
	}
	// Paper: 7–15 outer iterations at δ=1e-12.
	if sol.OuterIterations > 40 {
		t.Errorf("outer iterations = %d, expected < 40", sol.OuterIterations)
	}
	if len(sol.X) != 4 || sol.N <= 0 {
		t.Fatalf("malformed solution: %+v", sol)
	}
}

func TestOptimizeStationarity(t *testing.T) {
	// At the converged solution, the analytic gradients must vanish (or N
	// must sit at the boundary).
	p := paperParams(3e6, "16-12-8-4")
	sol, err := Optimize(p, Options{OuterTol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	b := p.BOfT(sol.WallClock)
	mu := make([]float64, len(b))
	for i := range b {
		mu[i] = b[i] * sol.N
	}
	for i := range sol.X {
		g := p.GradX(sol.X, sol.N, mu, i)
		// Scale-free check: gradient times x_i relative to wall clock.
		rel := math.Abs(g) * sol.X[i] / sol.WallClock
		if rel > 1e-3 {
			t.Errorf("∂E/∂x_%d = %g (relative %g) at optimum", i+1, g, rel)
		}
	}
	if sol.N < p.Speedup.IdealScale()-1 {
		gn := p.GradN(sol.X, sol.N, b)
		rel := math.Abs(gn) * sol.N / sol.WallClock
		if rel > 1e-2 {
			t.Errorf("∂E/∂N = %g (relative %g) at interior optimum", gn, rel)
		}
	}
}

func TestOptimizeBeatsNeighborhood(t *testing.T) {
	// The converged (x, N) must beat perturbed schedules under the
	// self-consistent wall-clock evaluation.
	p := paperParams(3e6, "16-12-8-4")
	sol, err := Optimize(p, Options{OuterTol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	eval := func(x []float64, n float64) float64 {
		// Self-consistent wall clock: iterate T = WallClock(x, n, λ(n)·T).
		tEst := p.ProductiveTime(n)
		for k := 0; k < 200; k++ {
			next := p.WallClock(x, n, p.MuOfN(n, tEst))
			if math.Abs(next-tEst) < 1e-9*tEst {
				return next
			}
			tEst = next
		}
		return tEst
	}
	base := eval(sol.X, sol.N)
	if math.Abs(base-sol.WallClock)/base > 0.01 {
		t.Errorf("reported wall clock %g vs self-consistent %g", sol.WallClock, base)
	}
	for _, scale := range []float64{0.7, 0.9, 1.1, 1.3} {
		xx := append([]float64(nil), sol.X...)
		for i := range xx {
			xx[i] *= scale
		}
		if v := eval(xx, sol.N); v < base-1e-6*base {
			t.Errorf("interval perturbation %gx wins: %g < %g", scale, v, base)
		}
		n2 := sol.N * scale
		if n2 <= p.Speedup.IdealScale() {
			if v := eval(sol.X, n2); v < base-1e-6*base {
				t.Errorf("scale perturbation %gx wins: %g < %g", scale, v, base)
			}
		}
	}
}

func TestOptimizedScaleBelowIdeal(t *testing.T) {
	// Key paper finding: the optimized scale is 40–95% below N^(*) under
	// the Table II costs (Table III).
	for _, spec := range []string{"16-12-8-4", "8-6-4-2", "4-3-2-1", "16-8-4-2", "8-4-2-1", "4-2-1-0.5"} {
		p := paperParams(3e6, spec)
		sol, err := Optimize(p, Options{})
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		frac := sol.N / 1e6
		if frac >= 1 {
			t.Errorf("%s: optimized scale %g not below N^(*)", spec, sol.N)
		}
		if frac < 0.05 {
			t.Errorf("%s: optimized scale %g implausibly small", spec, sol.N)
		}
	}
}

func TestOptimizeScaleMonotoneInFailureRate(t *testing.T) {
	// Higher failure rates should push the optimum to smaller scales
	// (Table III: 472k for 16-12-8-4 vs 734k for 4-2-1-0.5).
	pHigh := paperParams(3e6, "16-12-8-4")
	pLow := paperParams(3e6, "4-2-1-0.5")
	sHigh, err := Optimize(pHigh, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sLow, err := Optimize(pLow, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sHigh.N >= sLow.N {
		t.Errorf("scale not monotone: high-rate N=%g >= low-rate N=%g", sHigh.N, sLow.N)
	}
}

func TestOptimizeFixedN(t *testing.T) {
	p := paperParams(3e6, "16-12-8-4")
	sol, err := Optimize(p, Options{FixedN: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	if sol.N != 1e6 {
		t.Errorf("FixedN ignored: N = %g", sol.N)
	}
	// Joint optimization must beat the pinned-scale variant.
	opt, err := Optimize(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if opt.WallClock >= sol.WallClock {
		t.Errorf("ML(opt-scale) %g not better than ML(ori-scale) %g", opt.WallClock, sol.WallClock)
	}
}

func TestOptimizeIntervalOrdering(t *testing.T) {
	// Cheaper levels with higher failure rates should checkpoint more
	// often: x_1 >= x_2 >= x_3 >= x_4 for the paper's scenarios.
	p := paperParams(3e6, "16-12-8-4")
	sol, err := Optimize(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(sol.X); i++ {
		if sol.X[i] > sol.X[i-1]*1.001 {
			t.Errorf("interval counts not decreasing: x=%v", sol.X)
		}
	}
}

func TestOptimizeNumericGradNAblation(t *testing.T) {
	p := paperParams(3e6, "16-12-8-4")
	analytic, err := Optimize(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	numeric, err := Optimize(p, Options{NumericGradN: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(analytic.N-numeric.N)/analytic.N > 0.01 {
		t.Errorf("analytic N=%g vs numeric N=%g", analytic.N, numeric.N)
	}
	if math.Abs(analytic.WallClock-numeric.WallClock)/analytic.WallClock > 0.01 {
		t.Errorf("analytic WCT=%g vs numeric WCT=%g", analytic.WallClock, numeric.WallClock)
	}
}

func TestOptimizeExtremeRatesStillConverges(t *testing.T) {
	// The paper notes 40 failures/day is "already very high" and still
	// converges. Push to 80/day total.
	p := paperParams(3e6, "32-24-16-8")
	sol, err := Optimize(p, Options{})
	if err != nil {
		t.Fatalf("extreme rates: %v", err)
	}
	if !sol.Converged {
		t.Error("not converged at high rates")
	}
}

func TestOptimizeInvalidParams(t *testing.T) {
	p := paperParams(3e6, "16-12-8-4")
	p.Te = -1
	if _, err := Optimize(p, Options{}); !errors.Is(err, model.ErrParams) {
		t.Errorf("err = %v", err)
	}
}

func TestSingleLevelParams(t *testing.T) {
	p := paperParams(3e6, "16-12-8-4")
	sl := SingleLevelParams(p)
	if sl.L() != 1 {
		t.Fatalf("levels = %d", sl.L())
	}
	if sl.Rates.PerDay[0] != 40 {
		t.Errorf("folded rate = %g, want 40", sl.Rates.PerDay[0])
	}
	// Top-level (PFS) cost models carried over.
	if sl.Levels[0].Checkpoint.At(1e6) != p.Levels[3].Checkpoint.At(1e6) {
		t.Error("top-level cost not preserved")
	}
	// Original params untouched.
	if p.L() != 4 {
		t.Error("caller's params mutated")
	}
}

func TestPolicySolveOrdering(t *testing.T) {
	// Figure 5's headline on the analytic model: ML(opt-scale) beats both
	// ML(ori-scale) and SL(opt-scale). SL(ori-scale) is excluded here: its
	// classic-Young estimate is first-order (no failure-count refresh) and
	// not comparable analytically — the simulator comparison in
	// internal/experiments covers it.
	p := paperParams(3e6, "16-12-8-4")
	wct := map[Policy]float64{}
	for _, pol := range Policies {
		sol, err := pol.Solve(p, Options{})
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		wct[pol] = sol.WallClock
	}
	if !(wct[MLOptScale] < wct[MLOriScale]) {
		t.Errorf("ML(opt) %g !< ML(ori) %g", wct[MLOptScale], wct[MLOriScale])
	}
	if !(wct[MLOptScale] < wct[SLOptScale]) {
		t.Errorf("ML(opt) %g !< SL(opt) %g", wct[MLOptScale], wct[SLOptScale])
	}
}

func TestSLOriScaleIsClassicYoung(t *testing.T) {
	// The SL(ori-scale) baseline must pin N at N^(*) and produce the
	// Young interval count computed from the failure-free productive time.
	p := paperParams(3e6, "16-12-8-4")
	sol, err := SLOriScale.Solve(p, Options{})
	if err != nil {
		t.Fatalf("SLOriScale: %v", err)
	}
	if sol.N != 1e6 {
		t.Errorf("N = %g, want pinned 1e6", sol.N)
	}
	sl := SingleLevelParams(p)
	pt := sl.ProductiveTime(1e6)
	mu := sl.MuOfN(1e6, pt)
	want := sl.YoungX(1e6, mu, 0)
	if math.Abs(sol.X[0]-want)/want > 0.01 {
		t.Errorf("x = %g, want Young %g", sol.X[0], want)
	}
}

func TestPolicyExpandX(t *testing.T) {
	p := paperParams(3e6, "16-12-8-4")
	slSol, err := SLOptScale.Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	x := SLOptScale.ExpandX(p, slSol)
	if len(x) != 4 {
		t.Fatalf("expanded length %d", len(x))
	}
	if x[0] != 1 || x[1] != 1 || x[2] != 1 {
		t.Errorf("lower levels should have x=1 (no checkpoints): %v", x)
	}
	if x[3] != slSol.X[0] {
		t.Errorf("top level x = %g, want %g", x[3], slSol.X[0])
	}
	mlSol, err := MLOptScale.Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mx := MLOptScale.ExpandX(p, mlSol)
	if len(mx) != 4 {
		t.Errorf("multilevel expand length %d", len(mx))
	}
}

func TestPolicyStrings(t *testing.T) {
	names := map[Policy]string{
		MLOptScale: "ML(opt-scale)",
		SLOptScale: "SL(opt-scale)",
		MLOriScale: "ML(ori-scale)",
		SLOriScale: "SL(ori-scale)",
	}
	for pol, want := range names {
		if pol.String() != want {
			t.Errorf("%d.String() = %q, want %q", pol, pol.String(), want)
		}
	}
}

func TestSolutionRounding(t *testing.T) {
	s := Solution{X: []float64{796.6, 0.2}, N: 81745.7}
	iv := s.Intervals()
	if iv[0] != 797 || iv[1] != 1 {
		t.Errorf("Intervals = %v", iv)
	}
	if s.Scale() != 81746 {
		t.Errorf("Scale = %d", s.Scale())
	}
}

func TestGradNConsistencyAtSolution(t *testing.T) {
	// The analytic and numeric scale gradients agree along the solve path.
	p := paperParams(3e6, "8-6-4-2")
	sol, err := Optimize(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := p.BOfT(sol.WallClock)
	f := func(n float64) float64 {
		mu := make([]float64, len(b))
		for i := range b {
			mu[i] = b[i] * n
		}
		return p.WallClock(sol.X, n, mu)
	}
	for _, n := range []float64{sol.N * 0.5, sol.N, sol.N * 1.2} {
		if n >= p.Speedup.IdealScale() {
			continue
		}
		an := p.GradN(sol.X, n, b)
		nu := numopt.DerivativeStep(f, n, 1.0)
		if math.Abs(an-nu) > 1e-3*(1+math.Abs(an)) {
			t.Errorf("gradient mismatch at N=%g: %g vs %g", n, an, nu)
		}
	}
}

func TestOptimizeMaxScaleConstraint(t *testing.T) {
	p := paperParams(3e6, "16-12-8-4")
	free, err := Optimize(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Constrain below the unconstrained optimum: the solution must sit at
	// the cap.
	cap := free.N * 0.6
	capped, err := Optimize(p, Options{MaxScale: cap})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(capped.N-cap) > 1 {
		t.Errorf("capped N = %g, want the cap %g", capped.N, cap)
	}
	if capped.WallClock <= free.WallClock {
		t.Errorf("constrained solution %g not worse than free %g", capped.WallClock, free.WallClock)
	}
	// A cap above the optimum must not bind.
	loose, err := Optimize(p, Options{MaxScale: free.N * 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(loose.N-free.N)/free.N > 0.01 {
		t.Errorf("non-binding cap moved the optimum: %g vs %g", loose.N, free.N)
	}
}
