// Package core implements the paper's primary contribution: joint
// optimization of the multilevel checkpoint intervals x_1..x_L and the
// execution scale N (Section III).
//
// The entry points are:
//
//   - Optimize: Algorithm 1 — the outer loop that alternates between a
//     convex inner solve (with expected failure counts frozen as μ_i(N) =
//     b_i·N) and a refresh of those counts from the new expected wall
//     clock, until the μ_i converge.
//   - SolveInner: the inner convex solve — fixed-point iteration on the
//     first-order conditions (Formulas 23/24), initialized by Young's
//     formula (Formula 25), with N found by bisection on [1, N^(*)].
//   - SolveSingleLevelLinear: the closed forms (Formulas 10/11).
//   - SolveSingleLevelFixedB: the single-level nonlinear iteration
//     (Formulas 16/17) at a fixed failure coefficient b, used to reproduce
//     the Figure 3 confirmation study.
//   - Policy: the four evaluated strategies — ML(opt-scale) (this paper),
//     SL(opt-scale) ([23]), ML(ori-scale) ([22]), SL(ori-scale) (Young [3]).
package core

import (
	"errors"

	"mlckpt/internal/obs"
)

// Errors reported by the solvers.
var (
	// ErrDiverged is returned when an iteration produces non-finite or
	// runaway values. Algorithm 1 diverges only when failure rates are
	// extreme enough that each wall-clock refresh inflates μ faster than
	// the inner solve can compensate (Section III-D's convergence remark).
	ErrDiverged = errors.New("core: iteration diverged")
	// ErrNoConverge is returned when the iteration cap is hit first.
	ErrNoConverge = errors.New("core: iteration did not converge")
)

// Options tunes the solvers. The zero value picks the paper's settings.
type Options struct {
	// InnerTol is the convergence threshold of the inner fixed-point
	// iteration on (x, N). The paper uses 1e-6 (Section III-C.2).
	InnerTol float64
	// InnerMaxIter caps inner iterations (paper observes 30–40; default 500).
	InnerMaxIter int
	// OuterTol is δ in Algorithm 1: the threshold on max_i |μ'_i − μ_i|.
	// The convergence study in Section IV-B uses 1e-12; default 1e-9.
	OuterTol float64
	// OuterMaxIter caps outer iterations (paper observes 7–15; default 200).
	OuterMaxIter int
	// Damping blends each new outer estimate with the previous one:
	// T ← (1−d)·T_new + d·T_old. 0 (the paper's choice) is fine for all
	// realistic failure rates; the ablation bench explores d > 0.
	Damping float64
	// FixedN, when positive, pins the execution scale (the "ori-scale"
	// baselines) and optimizes only the interval counts.
	FixedN float64
	// ScaleFloor is the smallest admissible N (default 1).
	ScaleFloor float64
	// MaxScale, when positive, caps the admissible N below the speedup
	// model's ideal scale — the machine simply doesn't have N^(*) cores.
	// The optimum then sits at min(unconstrained optimum, MaxScale).
	MaxScale float64
	// NumericGradN switches the scale search from the analytic Formula (24)
	// to a finite-difference gradient — the ablation path.
	NumericGradN bool
	// Accelerate applies Aitken Δ² extrapolation to the wall-clock
	// fixed point every three outer steps. The outer loop contracts
	// geometrically with the failure-feedback coefficient; Aitken jumps
	// along the geometric tail, typically cutting the iteration count by
	// 2-4x without changing the answer. Off by default (the paper's
	// plain iteration).
	Accelerate bool
	// Obs receives solver telemetry: per-outer-iteration spans on a
	// virtual timeline (cumulative inner iterations), convergence deltas,
	// and bisection counters. Nil disables instrumentation entirely; the
	// solvers never read the wall clock, so the recorded values are pure
	// functions of the problem.
	Obs obs.Recorder
	// ObsLabel names the trace track of this solve. It must be derived
	// from the problem content (a cache key, a scenario label), never
	// from scheduling; empty defaults to "optimize".
	ObsLabel string
	// SinglePass stops after one outer step: μ stays pinned to the
	// failure-free productive time. This is classic Young's formula [3] —
	// the SL(ori-scale) baseline — which does not refresh the expected
	// failure count from the wall clock. Its reported WallClock is the
	// first-order estimate and can badly underestimate regimes where the
	// self-consistent model diverges (checkpoint cost ≳ MTBF); the
	// simulator reports the real cost there.
	SinglePass bool
}

func (o Options) withDefaults() Options {
	if o.InnerTol <= 0 {
		o.InnerTol = 1e-6
	}
	if o.InnerMaxIter <= 0 {
		o.InnerMaxIter = 500
	}
	if o.OuterTol <= 0 {
		o.OuterTol = 1e-9
	}
	if o.OuterMaxIter <= 0 {
		o.OuterMaxIter = 200
	}
	if o.ScaleFloor <= 0 {
		o.ScaleFloor = 1
	}
	return o
}

// OuterStep records one iteration of Algorithm 1 for diagnostics.
type OuterStep struct {
	Mu        []float64 // μ_i at the start of the step
	N         float64   // scale chosen by the inner solve
	WallClock float64   // E(T_w) after the inner solve, seconds
	MuDelta   float64   // max_i |μ'_i − μ_i| after the refresh
}

// Solution is the outcome of an optimization.
type Solution struct {
	X               []float64 // optimal interval counts per level (≥ 1)
	N               float64   // optimal execution scale, cores
	WallClock       float64   // expected wall-clock time, seconds
	Mu              []float64 // converged expected failures per level
	OuterIterations int       // Algorithm 1 iterations
	InnerIterations int       // total inner fixed-point iterations
	Converged       bool
	History         []OuterStep // per-outer-step diagnostics
}

// Intervals returns the rounded interval counts (the paper reports integral
// x_i, e.g. 797 and 140 in Figure 3).
func (s Solution) Intervals() []int {
	out := make([]int, len(s.X))
	for i, x := range s.X {
		r := int(x + 0.5)
		if r < 1 {
			r = 1
		}
		out[i] = r
	}
	return out
}

// Scale returns the rounded optimal core count.
func (s Solution) Scale() int {
	n := int(s.N + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}
