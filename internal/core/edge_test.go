package core

import (
	"math"
	"testing"

	"mlckpt/internal/failure"
	"mlckpt/internal/model"
	"mlckpt/internal/overhead"
	"mlckpt/internal/speedup"
)

// TestOptimizeSingleLevelDegenerate checks that the multilevel machinery
// at L=1 agrees with the dedicated single-level solver on the same frozen
// problem.
func TestOptimizeSingleLevelDegenerate(t *testing.T) {
	te := 4000.0 * failure.SecondsPerDay
	g := speedup.Quadratic{Kappa: 0.46, NStar: 1e5}
	p := &model.Params{
		Te:      te,
		Speedup: g,
		Levels:  overhead.SymmetricLevels([]overhead.Cost{overhead.Constant(5)}, 1.0),
		Alloc:   0,
		Rates:   failure.MustParseRates("20", 1e5),
	}
	sol, err := Optimize(p, Options{OuterTol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	// Solve the same frozen problem with the single-level fixed-b solver:
	// b = λ(1 core)·T at the converged wall clock.
	b := p.Rates.PerSecondAt(0, 1) * sol.WallClock
	single, err := SolveSingleLevelFixedB(te, g, overhead.Constant(5), overhead.Constant(5), 0, b, 1e5, 1e-8, 10000)
	if err != nil {
		t.Fatal(err)
	}
	// The multilevel Formula (18) includes the C/2 self-term the
	// single-level derivation omits; at C=5 s that shifts the optimum only
	// marginally.
	if math.Abs(sol.N-single.N)/single.N > 0.02 {
		t.Errorf("L=1 multilevel N=%g vs single-level N=%g", sol.N, single.N)
	}
	if math.Abs(sol.X[0]-single.X)/single.X > 0.05 {
		t.Errorf("L=1 multilevel x=%g vs single-level x=%g", sol.X[0], single.X)
	}
}

// TestOptimizeEightLevels exercises the solver well beyond FTI's four
// levels: a deep hierarchy must still converge with ordered intervals.
func TestOptimizeEightLevels(t *testing.T) {
	costs := make([]overhead.Cost, 8)
	rates := make([]float64, 8)
	for i := range costs {
		costs[i] = overhead.Constant(float64(int(1) << i)) // 1,2,4,...,128 s
		rates[i] = 64 / float64(int(1)<<i)                 // 64,32,...,0.5 /day
	}
	p := &model.Params{
		Te:      1e6 * failure.SecondsPerDay,
		Speedup: speedup.Quadratic{Kappa: 0.46, NStar: 1e6},
		Levels:  overhead.SymmetricLevels(costs, 0.5),
		Alloc:   60,
		Rates:   failure.Rates{PerDay: rates, Baseline: 1e6},
	}
	sol, err := Optimize(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Converged || len(sol.X) != 8 {
		t.Fatalf("solution: %+v", sol)
	}
	for i := 1; i < 8; i++ {
		if sol.X[i] > sol.X[i-1]*1.01 {
			t.Errorf("interval counts not ordered at level %d: %v", i+1, sol.X)
		}
	}
	// Stationarity across all eight levels.
	mu := p.MuOfN(sol.N, sol.WallClock)
	for i := range sol.X {
		if rel := math.Abs(p.GradX(sol.X, sol.N, mu, i)) * sol.X[i] / sol.WallClock; rel > 1e-3 {
			t.Errorf("∂E/∂x_%d relative %g", i+1, rel)
		}
	}
}

// TestOptimizeZeroRateLevel checks a level whose failure class never
// fires: its interval count must collapse to 1 (no checkpoints).
func TestOptimizeZeroRateLevel(t *testing.T) {
	p := paperParams(3e6, "16-12-0-4")
	sol, err := Optimize(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.X[2] != 1 {
		t.Errorf("zero-rate level has x = %g, want 1", sol.X[2])
	}
	// Other levels still optimized.
	if sol.X[0] <= 1 || sol.X[3] <= 1 {
		t.Errorf("active levels collapsed: %v", sol.X)
	}
}

// TestOptimizeTinyWorkload exercises the x >= 1 clamps: a workload so
// small that checkpointing is pointless.
func TestOptimizeTinyWorkload(t *testing.T) {
	p := paperParams(3e6, "16-12-8-4")
	p.Te = 10 * failure.SecondsPerDay // 10 core-days: seconds of parallel work
	sol, err := Optimize(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range sol.X {
		if x < 1 {
			t.Errorf("x_%d = %g < 1", i+1, x)
		}
	}
	if sol.WallClock <= 0 {
		t.Errorf("wall clock %g", sol.WallClock)
	}
}

// TestOptimizeLinearSpeedupBoundary: with linear speedup and mild failure
// rates the optimum can sit at the scale ceiling.
func TestOptimizeLinearSpeedupBoundary(t *testing.T) {
	p := paperParams(3e6, "0.1-0.1-0.1-0.1")
	p.Speedup = speedup.Linear{Kappa: 0.46, MaxScale: 2e5}
	sol, err := Optimize(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.N < 1.9e5 {
		t.Errorf("mild failures with linear speedup should use the whole machine: N=%g", sol.N)
	}
}
