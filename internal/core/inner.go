package core

import (
	"errors"
	"fmt"
	"math"

	"mlckpt/internal/model"
	"mlckpt/internal/numopt"
	"mlckpt/internal/obs"
)

// scaleGridN is the scan resolution of the scale search: the gradient is
// evaluated on scaleGridN+1 equispaced points of [ScaleFloor, ceiling] and
// every sign change is bisected.
const scaleGridN = 64

// innerState is the reusable workspace of one inner solver instance: the
// per-level iterate vectors, the precomputed gradient-scan slab (the scan
// grid depends only on [ScaleFloor, ceiling], so its cost/speedup slabs are
// filled once and reused across every inner iteration and outer step), and
// the bisection/argmin scratch. One instance serves one Params value; it is
// not safe for concurrent use.
type innerState struct {
	p *model.Params
	L int

	b, x, prevX, mu []float64

	grid           *model.Slab // bound to the fixed scan grid
	gridNs, gridG  []float64
	loBits, hiBits uint64
	gridOK         bool

	pts  *model.Slab // midpoint/candidate evaluation slab
	ptNs []float64
	ptV  []float64

	cand  []float64
	lanes []bisectBracket
}

// newInnerState builds a workspace for p. vecs, when non-nil, provides the
// backing for the four per-level vectors (len >= 4·L) so batched solvers
// can arena-allocate the scratch of many lanes in one slab.
func newInnerState(p *model.Params, vecs []float64) *innerState {
	L := p.L()
	if vecs == nil {
		vecs = make([]float64, 4*L)
	}
	return &innerState{
		p: p, L: L,
		b:      vecs[0*L : 1*L],
		x:      vecs[1*L : 2*L],
		prevX:  vecs[2*L : 3*L],
		mu:     vecs[3*L : 4*L],
		grid:   p.NewSlab(scaleGridN + 1),
		gridNs: make([]float64, scaleGridN+1),
		gridG:  make([]float64, scaleGridN+1),
		pts:    p.NewSlab(8),
	}
}

// innerRun is one resumable inner solve over an innerState: start seeds the
// iterate, step advances exactly one fixed-point iteration. SolveInner runs
// one to completion; the batched solvers advance many in lockstep.
type innerRun struct {
	st      *innerState
	opts    Options
	ceiling float64
	n       float64
	iter    int
	done    bool
	err     error
}

// start seeds the run: the μ_i(N) = b_i·N coefficients from the wall-clock
// estimate, the starting scale, and the Young initialization (Formula 25).
func (r *innerRun) start(st *innerState, tEst, nInit float64, opts Options) {
	r.st = st
	r.opts = opts.withDefaults()
	r.iter = 0
	r.done = false
	r.err = nil
	p := st.p
	p.BOfTInto(st.b, tEst)

	n := nInit
	ceiling := p.Speedup.IdealScale()
	if r.opts.MaxScale > 0 && r.opts.MaxScale < ceiling {
		ceiling = r.opts.MaxScale
	}
	if r.opts.FixedN > 0 {
		n = r.opts.FixedN
	}
	if n <= 0 || n > ceiling {
		n = ceiling
	}
	r.ceiling = ceiling
	r.n = n

	muInto(st.mu, st.b, n)
	for i := range st.x {
		st.x[i] = p.YoungX(n, st.mu, i)
	}
}

// step advances one fixed-point iteration: the Gauss–Seidel interval sweep
// and the scale update, with the convergence test against the previous
// iterate. It reports whether the run finished (converged, errored, or hit
// the iteration cap).
func (r *innerRun) step() bool {
	if r.done {
		return true
	}
	st := r.st
	p, L := st.p, st.L
	r.iter++
	iter := r.iter

	copy(st.prevX, st.x)
	prevN := r.n
	// High failure rates couple x and N strongly enough that the bare
	// alternation can contract very slowly; once it has clearly not
	// converged quickly, blend each update with the previous iterate.
	damp := 0.0
	if iter > 50 {
		damp = 0.5
	}

	n := r.n
	muInto(st.mu, st.b, n)
	x, mu := st.x, st.mu
	pt := p.ProductiveTime(n)
	// Interval sweep, lowest level first so the Σ_{j<i}C_j·x_j prefix
	// uses current-iteration values (Gauss–Seidel style, which
	// converges in fewer sweeps than Jacobi here).
	for i := 0; i < L; i++ {
		ci := p.Levels[i].Checkpoint.At(n)
		if ci <= 0 || mu[i] <= 0 {
			x[i] = 1
			continue
		}
		prefix := pt
		for j := 0; j < i; j++ {
			prefix += p.Levels[j].Checkpoint.At(n) * x[j]
		}
		suffix := 0.0
		for j := i + 1; j < L; j++ {
			suffix += mu[j] / x[j]
		}
		v := math.Sqrt(mu[i] * prefix / (2 * ci * (1 + suffix/2)))
		if v < 1 || math.IsNaN(v) {
			v = 1
		}
		x[i] = (1-damp)*v + damp*x[i]
	}

	if r.opts.FixedN <= 0 {
		nNew, err := st.solveScale(r.opts, r.ceiling)
		if err != nil {
			r.err = err
			r.done = true
			return true
		}
		r.n = (1-damp)*nNew + damp*r.n
	}

	worst := math.Abs(r.n-prevN) / (1 + math.Abs(prevN))
	for i := range x {
		if d := math.Abs(x[i]-st.prevX[i]) / (1 + math.Abs(st.prevX[i])); d > worst {
			worst = d
		}
	}
	if worst <= r.opts.InnerTol {
		r.done = true
		return true
	}
	if iter >= r.opts.InnerMaxIter {
		r.err = fmt.Errorf("%w: inner solve after %d iterations", ErrNoConverge, r.opts.InnerMaxIter)
		r.done = true
		return true
	}
	return false
}

// SolveInner performs the inner convex solve of Algorithm 1 (line 5): with
// the expected failure counts frozen as μ_i(N) = b_i·N (b_i derived from
// the wall-clock estimate tEst), it alternates
//
//   - per-level interval updates from the stationarity condition of
//     Formula (23):
//     x_i = sqrt( μ_i·(T_e/g + Σ_{j<i}C_j·x_j) / (2·C_i·(1 + ½Σ_{j>i}μ_j/x_j)) )
//   - a scale update solving ∂E(T_w)/∂N = 0 (Formula 24) by bisecting every
//     sign change on [ScaleFloor, N^(*)] and taking the argmin over the
//     stationary points, the endpoints, and any cost-saturation caps. On
//     cap-free problems the derivative is monotone and this reduces to the
//     paper's single bisection; if the derivative is still negative at
//     N^(*), the optimum is N^(*) itself (the "very few failures" case).
//
// until both stabilize. It returns the interval counts, the scale, and the
// iterations used.
//
// The scale search runs on the batch kernels of model.Slab (bit-identical
// to the scalar formulas; see internal/model/batch.go); pass
// Options.NumericGradN for the scalar finite-difference ablation path.
func SolveInner(p *model.Params, tEst, nInit float64, opts Options) ([]float64, float64, int, error) {
	st := newInnerState(p, nil)
	var r innerRun
	r.start(st, tEst, nInit, opts)
	for !r.step() {
	}
	return append([]float64(nil), st.x...), r.n, r.iter, r.err
}

// solveScale finds the root of ∂E/∂N on [floor, ceiling] for the current
// iterate: a gradient scan over the precomputed grid slab, a lockstep
// bisection of every sign change, and a batched argmin over the candidate
// optima. Results are bit-identical to the scalar scan this replaces (the
// kernels reproduce Formula 24/21 exactly, and the bisection replicates
// numopt.Bisect including its early-return and error semantics).
func (st *innerState) solveScale(opts Options, ceiling float64) (float64, error) {
	if opts.NumericGradN {
		return solveScaleScalar(st.p, st.x, st.b, opts, ceiling)
	}
	rec := obs.OrNop(opts.Obs)
	lo := opts.ScaleFloor
	hi := ceiling
	st.ensureGrid(lo, hi)
	st.grid.GradNFixedX(st.gridG, st.x, st.b)

	// Candidate optima: the interval endpoints, every stationary point of
	// the gradient, and any cost-saturation caps. A saturation kink can
	// split the objective into two convex branches, each with its own
	// stationary point, so a single bisection is not enough: scan a grid
	// for every sign change and bisect each bracket, then take the argmin.
	st.cand = append(st.cand[:0], lo, hi)
	for _, lv := range st.p.Levels {
		for _, cap := range [2]float64{lv.Checkpoint.Cap, lv.Recovery.Cap} {
			if cap > lo && cap < hi {
				st.cand = append(st.cand, cap)
			}
		}
	}

	st.lanes = st.lanes[:0]
	gPrev := st.gridG[0]
	if math.IsNaN(gPrev) || math.IsInf(gPrev, -1) {
		// The gradient blew up at the floor where the objective is
		// infinite; the objective always falls away from N = 0, so treat
		// the floor gradient as negative.
		gPrev = -1
	}
	for k := 1; k <= scaleGridN; k++ {
		gCur := st.gridG[k]
		if gPrev < 0 && gCur >= 0 {
			st.lanes = append(st.lanes, bisectBracket{
				a: st.gridNs[k-1], b: st.gridNs[k],
				fa: st.gridG[k-1], fb: st.gridG[k],
			})
		}
		gPrev = gCur
	}
	if len(st.lanes) > 0 {
		st.bisectBrackets()
	}
	for i := range st.lanes {
		br := &st.lanes[i]
		if br.skip {
			continue
		}
		if br.failed {
			return 0, fmt.Errorf("%w: scale bisection: %v", ErrDiverged, numopt.ErrMaxIterations)
		}
		rec.Count("core.bisect.calls", 1)
		rec.Count("core.bisect.iters", int64(br.iters))
		st.cand = append(st.cand, br.root)
	}

	st.pts.SetScales(st.cand)
	st.ptV = growFloats(st.ptV, len(st.cand))
	e := st.ptV[:len(st.cand)]
	st.pts.WallClockFixedX(e, st.x, st.b)
	best, bestE := st.cand[0], math.Inf(1)
	for i, n := range st.cand {
		if e[i] < bestE {
			best, bestE = n, e[i]
		}
	}
	return best, nil
}

// ensureGrid (re)builds the scan grid for [lo, hi]. The grid is a pure
// function of the interval, so in the common case (ScaleFloor and the
// ceiling fixed for the life of a solve) the cost/speedup slabs are filled
// exactly once per optimization.
func (st *innerState) ensureGrid(lo, hi float64) {
	lb, hb := math.Float64bits(lo), math.Float64bits(hi)
	if st.gridOK && lb == st.loBits && hb == st.hiBits {
		return
	}
	st.loBits, st.hiBits, st.gridOK = lb, hb, true
	st.gridNs[0] = lo
	for k := 1; k <= scaleGridN; k++ {
		st.gridNs[k] = lo + (hi-lo)*float64(k)/scaleGridN
	}
	st.grid.SetScales(st.gridNs)
}

// bisectBracket is one sign-change bracket advanced by the lockstep
// bisection: the live interval [a, b] with f(a), f(b), and the terminal
// state mirroring numopt.RootResult.
type bisectBracket struct {
	a, b, fa, fb float64
	mid          float64
	root, froot  float64
	iters        int
	done         bool
	skip         bool // endpoints do not bracket a sign change
	failed       bool // iteration cap exceeded
}

// bisectBrackets drives every bracket to termination in lockstep,
// replicating numopt.Bisect exactly: the same early returns on exact-zero
// endpoints, the same sign-bit interval updates, and the same stopping
// rule — but with each round's midpoint gradients evaluated in one batched
// kernel call across all still-active brackets.
func (st *innerState) bisectBrackets() {
	const (
		tol     = 1e-4
		maxIter = 200
	)
	active := 0
	for i := range st.lanes {
		br := &st.lanes[i]
		//lint:allow floateq replicates numopt.Bisect's exact-zero endpoint early-returns bit for bit
		switch {
		case br.fa == 0:
			br.root, br.froot, br.done = br.a, 0, true
		case br.fb == 0:
			br.root, br.froot, br.done = br.b, 0, true
		case math.Signbit(br.fa) == math.Signbit(br.fb):
			br.skip, br.done = true, true
		default:
			active++
		}
	}
	st.ptNs = growFloats(st.ptNs, len(st.lanes))
	st.ptV = growFloats(st.ptV, len(st.lanes))
	for i := 0; i < maxIter && active > 0; i++ {
		mids := st.ptNs[:0]
		for li := range st.lanes {
			br := &st.lanes[li]
			if br.done {
				continue
			}
			br.mid = br.a + (br.b-br.a)/2
			mids = append(mids, br.mid)
		}
		st.pts.SetScales(mids)
		fms := st.ptV[:len(mids)]
		st.pts.GradNFixedX(fms, st.x, st.b)
		j := 0
		for li := range st.lanes {
			br := &st.lanes[li]
			if br.done {
				continue
			}
			fm := fms[j]
			j++
			//lint:allow floateq replicates numopt.Bisect's exact-zero midpoint stop bit for bit
			if fm == 0 || (br.b-br.a)/2 < tol {
				br.root, br.froot, br.iters, br.done = br.mid, fm, i+1, true
				active--
				continue
			}
			if math.Signbit(fm) == math.Signbit(br.fa) {
				br.a, br.fa = br.mid, fm
			} else {
				br.b = br.mid
			}
		}
	}
	for li := range st.lanes {
		if br := &st.lanes[li]; !br.done {
			br.failed, br.done = true, true
		}
	}
}

// solveScaleScalar is the original scalar scan, kept for the
// finite-difference ablation (Options.NumericGradN) and as the reference
// the batched solveScale is differentially tested against.
func solveScaleScalar(p *model.Params, x, b []float64, opts Options, ceiling float64) (float64, error) {
	rec := obs.OrNop(opts.Obs)
	grad := func(n float64) float64 {
		if opts.NumericGradN {
			f := func(v float64) float64 {
				return p.WallClock(x, v, muAt(b, v))
			}
			return numopt.DerivativeStep(f, n, math.Max(1, n*1e-6))
		}
		return p.GradN(x, n, b)
	}
	lo := opts.ScaleFloor
	hi := ceiling
	candidates := []float64{lo, hi}
	for _, lv := range p.Levels {
		for _, cap := range []float64{lv.Checkpoint.Cap, lv.Recovery.Cap} {
			if cap > lo && cap < hi {
				candidates = append(candidates, cap)
			}
		}
	}
	prev := lo
	gPrev := grad(lo)
	if math.IsNaN(gPrev) || math.IsInf(gPrev, -1) {
		// The finite-difference stencil stepped below the floor where the
		// objective is infinite; the objective always falls away from
		// N = 0, so treat the floor gradient as negative.
		gPrev = -1
	}
	for k := 1; k <= scaleGridN; k++ {
		cur := lo + (hi-lo)*float64(k)/scaleGridN
		gCur := grad(cur)
		if gPrev < 0 && gCur >= 0 {
			// Bisection well below the fixed-point tolerance (the paper
			// stops at error < 0.5 for integral N and rounds; a coarser
			// tolerance would jitter successive iterates and stall the
			// outer fixed point at small scales).
			res, err := numopt.Bisect(grad, prev, cur, 1e-4, 200)
			if err == nil {
				rec.Count("core.bisect.calls", 1)
				rec.Count("core.bisect.iters", int64(res.Iterations))
				candidates = append(candidates, res.Root)
			} else if !errors.Is(err, numopt.ErrNoBracket) {
				return 0, fmt.Errorf("%w: scale bisection: %v", ErrDiverged, err)
			}
		}
		prev, gPrev = cur, gCur
	}
	best, bestE := candidates[0], math.Inf(1)
	for _, n := range candidates {
		if e := p.WallClock(x, n, muAt(b, n)); e < bestE {
			best, bestE = n, e
		}
	}
	return best, nil
}

func muAt(b []float64, n float64) []float64 {
	mu := make([]float64, len(b))
	muInto(mu, b, n)
	return mu
}

// muInto fills mu_i = b_i·N without allocating.
//
//mlckpt:hotpath
func muInto(dst, b []float64, n float64) {
	for i := range b {
		dst[i] = b[i] * n
	}
}

// growFloats returns buf with capacity for at least n elements, preserving
// nothing (pure scratch).
func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}
