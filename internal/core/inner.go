package core

import (
	"errors"
	"fmt"
	"math"

	"mlckpt/internal/model"
	"mlckpt/internal/numopt"
	"mlckpt/internal/obs"
)

// SolveInner performs the inner convex solve of Algorithm 1 (line 5): with
// the expected failure counts frozen as μ_i(N) = b_i·N (b_i derived from
// the wall-clock estimate tEst), it alternates
//
//   - per-level interval updates from the stationarity condition of
//     Formula (23):
//     x_i = sqrt( μ_i·(T_e/g + Σ_{j<i}C_j·x_j) / (2·C_i·(1 + ½Σ_{j>i}μ_j/x_j)) )
//   - a scale update solving ∂E(T_w)/∂N = 0 (Formula 24) by bisecting every
//     sign change on [ScaleFloor, N^(*)] and taking the argmin over the
//     stationary points, the endpoints, and any cost-saturation caps. On
//     cap-free problems the derivative is monotone and this reduces to the
//     paper's single bisection; if the derivative is still negative at
//     N^(*), the optimum is N^(*) itself (the "very few failures" case).
//
// until both stabilize. It returns the interval counts, the scale, and the
// iterations used.
func SolveInner(p *model.Params, tEst, nInit float64, opts Options) ([]float64, float64, int, error) {
	opts = opts.withDefaults()
	L := p.L()
	b := p.BOfT(tEst)

	n := nInit
	ceiling := p.Speedup.IdealScale()
	if opts.MaxScale > 0 && opts.MaxScale < ceiling {
		ceiling = opts.MaxScale
	}
	if opts.FixedN > 0 {
		n = opts.FixedN
	}
	if n <= 0 || n > ceiling {
		n = ceiling
	}

	// Young initialization (Formula 25).
	x := make([]float64, L)
	mu := muAt(b, n)
	for i := range x {
		x[i] = p.YoungX(n, mu, i)
	}

	for iter := 1; iter <= opts.InnerMaxIter; iter++ {
		prevX := append([]float64(nil), x...)
		prevN := n
		// High failure rates couple x and N strongly enough that the bare
		// alternation can contract very slowly; once it has clearly not
		// converged quickly, blend each update with the previous iterate.
		damp := 0.0
		if iter > 50 {
			damp = 0.5
		}

		mu = muAt(b, n)
		pt := p.ProductiveTime(n)
		// Interval sweep, lowest level first so the Σ_{j<i}C_j·x_j prefix
		// uses current-iteration values (Gauss–Seidel style, which
		// converges in fewer sweeps than Jacobi here).
		for i := 0; i < L; i++ {
			ci := p.Levels[i].Checkpoint.At(n)
			if ci <= 0 || mu[i] <= 0 {
				x[i] = 1
				continue
			}
			prefix := pt
			for j := 0; j < i; j++ {
				prefix += p.Levels[j].Checkpoint.At(n) * x[j]
			}
			suffix := 0.0
			for j := i + 1; j < L; j++ {
				suffix += mu[j] / x[j]
			}
			v := math.Sqrt(mu[i] * prefix / (2 * ci * (1 + suffix/2)))
			if v < 1 || math.IsNaN(v) {
				v = 1
			}
			x[i] = (1-damp)*v + damp*x[i]
		}

		if opts.FixedN <= 0 {
			nNew, err := solveScale(p, x, b, opts, ceiling)
			if err != nil {
				return x, n, iter, err
			}
			n = (1-damp)*nNew + damp*n
		}

		worst := math.Abs(n-prevN) / (1 + math.Abs(prevN))
		for i := range x {
			if d := math.Abs(x[i]-prevX[i]) / (1 + math.Abs(prevX[i])); d > worst {
				worst = d
			}
		}
		if worst <= opts.InnerTol {
			return x, n, iter, nil
		}
	}
	return x, n, opts.InnerMaxIter, fmt.Errorf("%w: inner solve after %d iterations", ErrNoConverge, opts.InnerMaxIter)
}

// solveScale finds the root of ∂E/∂N on [floor, ceiling] for fixed x.
func solveScale(p *model.Params, x, b []float64, opts Options, ceiling float64) (float64, error) {
	rec := obs.OrNop(opts.Obs)
	grad := func(n float64) float64 {
		if opts.NumericGradN {
			f := func(v float64) float64 {
				return p.WallClock(x, v, muAt(b, v))
			}
			return numopt.DerivativeStep(f, n, math.Max(1, n*1e-6))
		}
		return p.GradN(x, n, b)
	}
	lo := opts.ScaleFloor
	hi := ceiling
	// Candidate optima: the interval endpoints, every stationary point of
	// the gradient, and any cost-saturation caps. A saturation kink can
	// split the objective into two convex branches, each with its own
	// stationary point, so a single bisection is not enough: scan a grid
	// for every sign change and bisect each bracket, then take the argmin.
	candidates := []float64{lo, hi}
	for _, lv := range p.Levels {
		for _, cap := range []float64{lv.Checkpoint.Cap, lv.Recovery.Cap} {
			if cap > lo && cap < hi {
				candidates = append(candidates, cap)
			}
		}
	}
	const gridN = 64
	prev := lo
	gPrev := grad(lo)
	if math.IsNaN(gPrev) || math.IsInf(gPrev, -1) {
		// The finite-difference stencil stepped below the floor where the
		// objective is infinite; the objective always falls away from
		// N = 0, so treat the floor gradient as negative.
		gPrev = -1
	}
	for k := 1; k <= gridN; k++ {
		cur := lo + (hi-lo)*float64(k)/gridN
		gCur := grad(cur)
		if gPrev < 0 && gCur >= 0 {
			// Bisection well below the fixed-point tolerance (the paper
			// stops at error < 0.5 for integral N and rounds; a coarser
			// tolerance would jitter successive iterates and stall the
			// outer fixed point at small scales).
			res, err := numopt.Bisect(grad, prev, cur, 1e-4, 200)
			if err == nil {
				rec.Count("core.bisect.calls", 1)
				rec.Count("core.bisect.iters", int64(res.Iterations))
				candidates = append(candidates, res.Root)
			} else if !errors.Is(err, numopt.ErrNoBracket) {
				return 0, fmt.Errorf("%w: scale bisection: %v", ErrDiverged, err)
			}
		}
		prev, gPrev = cur, gCur
	}
	best, bestE := candidates[0], math.Inf(1)
	for _, n := range candidates {
		if e := p.WallClock(x, n, muAt(b, n)); e < bestE {
			best, bestE = n, e
		}
	}
	return best, nil
}

func muAt(b []float64, n float64) []float64 {
	mu := make([]float64, len(b))
	for i := range b {
		mu[i] = b[i] * n
	}
	return mu
}
