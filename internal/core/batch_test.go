package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"mlckpt/internal/failure"
	"mlckpt/internal/model"
	"mlckpt/internal/obs"
	"mlckpt/internal/overhead"
	"mlckpt/internal/speedup"
)

// batchSpecs builds a spread of problem instances across failure regimes,
// level counts, speedup kinds, and option variants — wide enough that the
// lockstep path exercises damping, caps, FixedN, SinglePass, and both
// convergent and hard instances.
func batchSpecs() []Problem {
	rng := rand.New(rand.NewSource(11))
	var out []Problem
	for _, spec := range []string{"16-12-8-4", "160-120-80-40", "1-1-1-1", "320-240-160-80"} {
		out = append(out, Problem{
			Params: &model.Params{
				Te:      3e6 * failure.SecondsPerDay,
				Speedup: speedup.Quadratic{Kappa: 0.46, NStar: 1e6},
				Levels:  overhead.SymmetricLevels(overhead.ExascaleCosts(), 0.5),
				Alloc:   60,
				Rates:   failure.MustParseRates(spec, 1e6),
			},
			Opts: Options{OuterTol: 1e-12},
		})
	}
	// Option variants on the paper problem.
	base := out[0].Params
	out = append(out,
		Problem{Params: base, Opts: Options{FixedN: 5e5}},
		Problem{Params: base, Opts: Options{SinglePass: true}},
		Problem{Params: base, Opts: Options{Accelerate: true, OuterTol: 1e-12}},
		Problem{Params: base, Opts: Options{MaxScale: 2e5}},
		Problem{Params: base, Opts: Options{Damping: 0.3}},
	)
	// Randomized smaller problems.
	for i := 0; i < 8; i++ {
		L := 1 + rng.Intn(4)
		costs := make([]overhead.Cost, L)
		for j := range costs {
			costs[j] = overhead.Cost{Const: 0.5 + rng.Float64()*5*float64(j+1), Coeff: rng.Float64() * 0.01, H: overhead.LinearN}
			if rng.Intn(2) == 0 {
				costs[j].Cap = 1e4 + rng.Float64()*4e5
			}
		}
		perDay := make([]float64, L)
		for j := range perDay {
			perDay[j] = 1 + rng.Float64()*30
		}
		out = append(out, Problem{
			Params: &model.Params{
				Te:      (1e5 + rng.Float64()*3e6) * failure.SecondsPerDay,
				Speedup: speedup.Quadratic{Kappa: 0.2 + rng.Float64(), NStar: 1e5 + rng.Float64()*9e5},
				Levels:  overhead.SymmetricLevels(costs, 0.5+rng.Float64()),
				Alloc:   rng.Float64() * 120,
				Rates:   failure.Rates{PerDay: perDay, Baseline: 1e6},
			},
			Opts: Options{},
		})
	}
	// An invalid lane: the batch must report the error without poisoning
	// its neighbors.
	out = append(out, Problem{Params: &model.Params{}, Opts: Options{}})
	return out
}

func solutionsEqual(t *testing.T, lane int, got, want Solution) {
	t.Helper()
	bits := math.Float64bits
	if len(got.X) != len(want.X) {
		t.Fatalf("lane %d: X length %d vs %d", lane, len(got.X), len(want.X))
	}
	for i := range want.X {
		if bits(got.X[i]) != bits(want.X[i]) {
			t.Fatalf("lane %d: X[%d] = %v, want %v", lane, i, got.X[i], want.X[i])
		}
	}
	if bits(got.N) != bits(want.N) || bits(got.WallClock) != bits(want.WallClock) {
		t.Fatalf("lane %d: (N, WallClock) = (%v, %v), want (%v, %v)", lane, got.N, got.WallClock, want.N, want.WallClock)
	}
	for i := range want.Mu {
		if bits(got.Mu[i]) != bits(want.Mu[i]) {
			t.Fatalf("lane %d: Mu[%d] = %v, want %v", lane, i, got.Mu[i], want.Mu[i])
		}
	}
	if got.OuterIterations != want.OuterIterations || got.InnerIterations != want.InnerIterations || got.Converged != want.Converged {
		t.Fatalf("lane %d: iterations/converged (%d, %d, %v), want (%d, %d, %v)",
			lane, got.OuterIterations, got.InnerIterations, got.Converged,
			want.OuterIterations, want.InnerIterations, want.Converged)
	}
	if len(got.History) != len(want.History) {
		t.Fatalf("lane %d: history length %d vs %d", lane, len(got.History), len(want.History))
	}
	for i := range want.History {
		g, w := got.History[i], want.History[i]
		if bits(g.N) != bits(w.N) || bits(g.WallClock) != bits(w.WallClock) || bits(g.MuDelta) != bits(w.MuDelta) {
			t.Fatalf("lane %d: history[%d] (%v, %v, %v), want (%v, %v, %v)",
				lane, i, g.N, g.WallClock, g.MuDelta, w.N, w.WallClock, w.MuDelta)
		}
		for j := range w.Mu {
			if bits(g.Mu[j]) != bits(w.Mu[j]) {
				t.Fatalf("lane %d: history[%d].Mu[%d] = %v, want %v", lane, i, j, g.Mu[j], w.Mu[j])
			}
		}
	}
}

// TestOptimizeBatchMatchesSequential is the batched-solver oracle contract:
// OptimizeBatch must reproduce a sequential Optimize loop bit for bit —
// solutions, histories, iteration counts, and errors alike.
func TestOptimizeBatchMatchesSequential(t *testing.T) {
	problems := batchSpecs()
	got := OptimizeBatch(problems)
	if len(got) != len(problems) {
		t.Fatalf("%d outcomes for %d problems", len(got), len(problems))
	}
	for i, pr := range problems {
		want, wantErr := Optimize(pr.Params, pr.Opts)
		if (got[i].Err == nil) != (wantErr == nil) {
			t.Fatalf("lane %d: err %v, want %v", i, got[i].Err, wantErr)
		}
		if wantErr != nil {
			if got[i].Err.Error() != wantErr.Error() {
				t.Fatalf("lane %d: err %q, want %q", i, got[i].Err, wantErr)
			}
			continue
		}
		solutionsEqual(t, i, got[i].Solution, want)
	}
}

// TestOptimizeBatchObsMatchesSequential pins the telemetry contract: a
// batched solve must emit exactly the counters a sequential loop emits.
func TestOptimizeBatchObsMatchesSequential(t *testing.T) {
	problems := batchSpecs()
	run := func(batch bool) *obs.Collector {
		col := obs.NewCollector()
		prs := make([]Problem, len(problems))
		for i, pr := range problems {
			pr.Opts.Obs = col
			pr.Opts.ObsLabel = fmt.Sprintf("lane-%d", i)
			prs[i] = pr
		}
		if batch {
			OptimizeBatch(prs)
		} else {
			for _, pr := range prs {
				Optimize(pr.Params, pr.Opts) //nolint:errcheck
			}
		}
		return col
	}
	export := func(col *obs.Collector) string {
		m, err := col.Registry.Snapshot().MarshalIndent()
		if err != nil {
			t.Fatal(err)
		}
		tr, err := col.Trace.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		return string(m) + string(tr)
	}
	seq := export(run(false))
	bat := export(run(true))
	if seq != bat {
		t.Fatalf("telemetry diverged between sequential and batched solves:\nsequential: %s\nbatched: %s", seq, bat)
	}
}

// TestSolveInnerBatchMatchesSequential pins the lockstep inner solver
// against per-lane SolveInner calls.
func TestSolveInnerBatchMatchesSequential(t *testing.T) {
	problems := batchSpecs()
	problems = problems[:len(problems)-1] // drop the invalid lane: SolveInner assumes valid params
	tEst := make([]float64, len(problems))
	nInit := make([]float64, len(problems))
	for i, pr := range problems {
		n := pr.Params.Speedup.IdealScale()
		tEst[i] = pr.Params.ProductiveTime(n) * (1 + 0.1*float64(i%3))
		nInit[i] = n
	}
	got := SolveInnerBatch(problems, tEst, nInit)
	for i, pr := range problems {
		x, n, iters, err := SolveInner(pr.Params, tEst[i], nInit[i], pr.Opts)
		if (got[i].Err == nil) != (err == nil) {
			t.Fatalf("lane %d: err %v, want %v", i, got[i].Err, err)
		}
		if got[i].Iterations != iters || math.Float64bits(got[i].N) != math.Float64bits(n) {
			t.Fatalf("lane %d: (N, iters) = (%v, %d), want (%v, %d)", i, got[i].N, got[i].Iterations, n, iters)
		}
		for j := range x {
			if math.Float64bits(got[i].X[j]) != math.Float64bits(x[j]) {
				t.Fatalf("lane %d: X[%d] = %v, want %v", i, j, got[i].X[j], x[j])
			}
		}
	}
}

// TestSolveScaleMatchesScalarReference differentially tests the batched
// scale search against the retained scalar implementation on randomized
// iterates: same root, bit for bit.
func TestSolveScaleMatchesScalarReference(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		spec := []string{"16-12-8-4", "160-120-80-40", "1-0-0-2"}[trial%3]
		p := paperParams(1e5+rng.Float64()*5e6, spec)
		opts := Options{}.withDefaults()
		ceiling := p.Speedup.IdealScale()
		st := newInnerState(p, nil)
		L := p.L()
		x := make([]float64, L)
		b := make([]float64, L)
		for i := range x {
			x[i] = 1 + rng.Float64()*500
			b[i] = rng.Float64() * 2e-6
		}
		copy(st.x, x)
		copy(st.b, b)
		nBatch, errBatch := st.solveScale(opts, ceiling)
		nScalar, errScalar := solveScaleScalar(p, x, b, opts, ceiling)
		if (errBatch == nil) != (errScalar == nil) {
			t.Fatalf("trial %d: err %v vs %v", trial, errBatch, errScalar)
		}
		if math.Float64bits(nBatch) != math.Float64bits(nScalar) {
			t.Fatalf("trial %d: batched scale %v, scalar %v", trial, nBatch, nScalar)
		}
	}
}

// TestOptimizeSteadyStateAllocs pins the allocation profile of the scalar
// entry point after the scratch-hoisting pass: the 1,675 allocs/op of the
// seed implementation must not creep back.
func TestOptimizeSteadyStateAllocs(t *testing.T) {
	p := paperParams(3e6, "16-12-8-4")
	if _, err := Optimize(p, Options{}); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(10, func() {
		if _, err := Optimize(p, Options{}); err != nil {
			t.Fatal(err)
		}
	})
	// Slab + arena construction, Solution buffers, and per-outer History
	// records remain; the per-inner-iteration allocations are gone.
	if avg > 200 {
		t.Errorf("Optimize allocates %.0f times per solve; want ≤ 200 (seed was 1675)", avg)
	}
}
