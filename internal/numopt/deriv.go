package numopt

import "math"

// Derivative estimates f'(x) by central differences with a step scaled to
// the magnitude of x. It backs the finite-difference cross-checks of the
// paper's analytic gradients (Formulas 23/24) and the ablation solver that
// locates N* without the analytic derivative.
func Derivative(f Func, x float64) float64 {
	h := 1e-6 * (1 + math.Abs(x))
	return (f(x+h) - f(x-h)) / (2 * h)
}

// DerivativeStep is Derivative with an explicit step size.
func DerivativeStep(f Func, x, h float64) float64 {
	return (f(x+h) - f(x-h)) / (2 * h)
}

// SecondDerivative estimates f”(x) by central differences. Tests use it to
// probe the sign of ∂²E(T_w)/∂x² and ∂²E(T_w)/∂N² (the convexity claims in
// Sections III-A and III-C).
func SecondDerivative(f Func, x float64) float64 {
	h := 1e-4 * (1 + math.Abs(x))
	return (f(x+h) - 2*f(x) + f(x-h)) / (h * h)
}

// PartialDerivative estimates ∂f/∂x_i of a multivariate function at point x.
func PartialDerivative(f func([]float64) float64, x []float64, i int) float64 {
	h := 1e-6 * (1 + math.Abs(x[i]))
	xp := append([]float64(nil), x...)
	xm := append([]float64(nil), x...)
	xp[i] += h
	xm[i] -= h
	return (f(xp) - f(xm)) / (2 * h)
}

// Gradient estimates the full gradient of f at x by central differences.
func Gradient(f func([]float64) float64, x []float64) []float64 {
	g := make([]float64, len(x))
	for i := range x {
		g[i] = PartialDerivative(f, x, i)
	}
	return g
}
