package numopt

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveLinear2x2(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 3)
	x, err := SolveLinear(a, []float64{5, 10})
	if err != nil {
		t.Fatalf("SolveLinear: %v", err)
	}
	// 2x+y=5, x+3y=10 -> x=1, y=3
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("x = %v, want (1, 3)", x)
	}
}

func TestSolveLinearNeedsPivoting(t *testing.T) {
	// Zero on the diagonal forces a row swap.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 0)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 0)
	x, err := SolveLinear(a, []float64{7, 9})
	if err != nil {
		t.Fatalf("SolveLinear: %v", err)
	}
	if math.Abs(x[0]-9) > 1e-12 || math.Abs(x[1]-7) > 1e-12 {
		t.Errorf("x = %v, want (9, 7)", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := SolveLinear(a, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestSolveLinearDimensionErrors(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := SolveLinear(a, []float64{1, 2}); err == nil {
		t.Error("non-square matrix accepted")
	}
	b := NewMatrix(2, 2)
	if _, err := SolveLinear(b, []float64{1}); err == nil {
		t.Error("mismatched rhs accepted")
	}
}

func TestInvertIdentityRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 5
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
		a.Set(i, i, a.At(i, i)+float64(n)) // diagonal dominance
	}
	inv, err := Invert(a)
	if err != nil {
		t.Fatalf("Invert: %v", err)
	}
	prod, err := a.Mul(inv)
	if err != nil {
		t.Fatalf("Mul: %v", err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(prod.At(i, j)-want) > 1e-9 {
				t.Fatalf("A·A⁻¹ (%d,%d) = %g, want %g", i, j, prod.At(i, j), want)
			}
		}
	}
}

func TestMatrixMulVecMismatch(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := a.MulVec([]float64{1, 2}); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestTranspose(t *testing.T) {
	a := NewMatrix(2, 3)
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			a.Set(i, j, float64(10*i+j))
		}
	}
	tr := a.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("transpose shape %dx%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if tr.At(j, i) != a.At(i, j) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

// Property: for random well-conditioned systems, solving then multiplying
// back reproduces the right-hand side.
func TestSolveLinearProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + int(seed%4+4)%4 // 3..6
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.Float64()*2-1)
			}
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.Float64()*10 - 5
		}
		x, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		back, err := a.MulVec(x)
		if err != nil {
			return false
		}
		for i := range b {
			if math.Abs(back[i]-b[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
