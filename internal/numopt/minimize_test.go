package numopt

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGoldenSectionParabola(t *testing.T) {
	f := func(x float64) float64 { return (x - 3) * (x - 3) }
	r, err := GoldenSection(f, -10, 10, 1e-9, 500)
	if err != nil {
		t.Fatalf("GoldenSection: %v", err)
	}
	if math.Abs(r.X-3) > 1e-6 {
		t.Errorf("X = %g, want 3", r.X)
	}
}

func TestGoldenSectionAsymmetric(t *testing.T) {
	// Checkpoint-like objective: a/x + b*x has its minimum at sqrt(a/b).
	f := func(x float64) float64 { return 100/x + 4*x }
	r, err := GoldenSection(f, 0.01, 1000, 1e-9, 500)
	if err != nil {
		t.Fatalf("GoldenSection: %v", err)
	}
	want := math.Sqrt(100.0 / 4.0)
	if math.Abs(r.X-want) > 1e-5 {
		t.Errorf("X = %g, want %g", r.X, want)
	}
}

func TestGoldenSectionInvalid(t *testing.T) {
	f := func(x float64) float64 { return x }
	if _, err := GoldenSection(f, 5, 1, 1e-9, 100); err == nil {
		t.Error("expected invalid-interval error")
	}
}

func TestMinimizeGrid(t *testing.T) {
	f := func(x float64) float64 { return math.Abs(x - 7.25) }
	r := MinimizeGrid(f, 0, 10, 1000)
	if math.Abs(r.X-7.25) > 0.011 {
		t.Errorf("X = %g, want ~7.25", r.X)
	}
}

func TestMinimizeIntGrid(t *testing.T) {
	f := func(n int) float64 { return float64((n - 42) * (n - 42)) }
	n, v := MinimizeIntGrid(f, 0, 100)
	if n != 42 || v != 0 {
		t.Errorf("got (%d, %g), want (42, 0)", n, v)
	}
}

func TestMinimizeIntGridSinglePoint(t *testing.T) {
	f := func(n int) float64 { return float64(n) }
	n, v := MinimizeIntGrid(f, 5, 5)
	if n != 5 || v != 5 {
		t.Errorf("got (%d, %g), want (5, 5)", n, v)
	}
}

func TestIsConvexOn(t *testing.T) {
	convex := func(x float64) float64 { return x * x }
	if ok, a, b := IsConvexOn(convex, -5, 5, 41, 1e-9); !ok {
		t.Errorf("x² flagged nonconvex at [%g, %g]", a, b)
	}
	nonconvex := func(x float64) float64 { return math.Sin(x) }
	if ok, _, _ := IsConvexOn(nonconvex, 0, 2*math.Pi, 41, 1e-9); ok {
		t.Error("sin flagged convex on a full period")
	}
}

// Property: golden-section finds the vertex of randomized parabolas.
func TestGoldenSectionPropertyParabola(t *testing.T) {
	prop := func(vertex, scale float64) bool {
		v := math.Mod(vertex, 50)
		s := 0.1 + math.Mod(math.Abs(scale), 10)
		f := func(x float64) float64 { return s * (x - v) * (x - v) }
		r, err := GoldenSection(f, v-60, v+61, 1e-9, 500)
		if err != nil {
			return false
		}
		return math.Abs(r.X-v) < 1e-5
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the integer grid minimum is never worse than the value at any
// scanned point.
func TestMinimizeIntGridProperty(t *testing.T) {
	prop := func(seed int64) bool {
		f := func(n int) float64 {
			x := float64(n) + float64(seed%17)
			return math.Sin(x) + x*x/1000
		}
		n, v := MinimizeIntGrid(f, -50, 50)
		for k := -50; k <= 50; k++ {
			if f(k) < v {
				return false
			}
		}
		return n >= -50 && n <= 50
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
