package numopt

import (
	"errors"
	"math"
	"testing"
)

func TestFixedPointCosine(t *testing.T) {
	// x = cos(x) converges to the Dottie number from any start.
	x, iters, err := FixedPoint1D(math.Cos, 1.0, FixedPointOptions{Tol: 1e-10, MaxIter: 1000})
	if err != nil {
		t.Fatalf("FixedPoint1D: %v", err)
	}
	if math.Abs(x-0.7390851332151607) > 1e-8 {
		t.Errorf("x = %.12f, want Dottie number", x)
	}
	if iters <= 0 {
		t.Error("iterations not reported")
	}
}

func TestFixedPointVector(t *testing.T) {
	// Contraction toward (2, 3): F(x) = (x + target)/2 componentwise.
	target := []float64{2, 3}
	f := func(x []float64) []float64 {
		return []float64{(x[0] + target[0]) / 2, (x[1] + target[1]) / 2}
	}
	r, err := FixedPoint(f, []float64{100, -50}, FixedPointOptions{Tol: 1e-12, MaxIter: 200})
	if err != nil {
		t.Fatalf("FixedPoint: %v", err)
	}
	if math.Abs(r.X[0]-2) > 1e-9 || math.Abs(r.X[1]-3) > 1e-9 {
		t.Errorf("X = %v, want (2, 3)", r.X)
	}
	if !r.Converged {
		t.Error("expected convergence")
	}
}

func TestFixedPointDampingStabilizes(t *testing.T) {
	// F(x) = -1.5x + 5 diverges undamped (|slope| > 1) but converges with
	// damping 0.9: the damped map has slope (1-0.9)(-1.5)+0.9 = 0.65.
	f := func(x []float64) []float64 { return []float64{-1.5*x[0] + 5} }
	if _, err := FixedPoint(f, []float64{0}, FixedPointOptions{Tol: 1e-9, MaxIter: 100}); err == nil {
		t.Fatal("undamped iteration unexpectedly converged")
	}
	r, err := FixedPoint(f, []float64{0}, FixedPointOptions{Tol: 1e-9, MaxIter: 2000, Damping: 0.9})
	if err != nil {
		t.Fatalf("damped FixedPoint: %v", err)
	}
	want := 2.0 // x = -1.5x+5 -> x = 2
	if math.Abs(r.X[0]-want) > 1e-6 {
		t.Errorf("X = %g, want %g", r.X[0], want)
	}
}

func TestFixedPointDivergenceDetection(t *testing.T) {
	f := func(x []float64) []float64 { return []float64{x[0]*x[0] + 1e30} }
	_, err := FixedPoint(f, []float64{1}, FixedPointOptions{Tol: 1e-9, MaxIter: 100})
	if err == nil {
		t.Fatal("expected divergence error")
	}
	if errors.Is(err, ErrMaxIterations) {
		t.Error("divergence should be reported as a distinct error, not ErrMaxIterations")
	}
}

func TestFixedPointDimensionMismatch(t *testing.T) {
	f := func(x []float64) []float64 { return []float64{1, 2} }
	if _, err := FixedPoint(f, []float64{0}, DefaultFixedPointOptions()); err == nil {
		t.Fatal("expected dimension-mismatch error")
	}
}

func TestFixedPointHistory(t *testing.T) {
	f := func(x []float64) []float64 { return []float64{x[0] / 2} }
	r, err := FixedPoint(f, []float64{64}, FixedPointOptions{Tol: 1e-6, MaxIter: 100, Record: true})
	if err != nil {
		t.Fatalf("FixedPoint: %v", err)
	}
	if len(r.History) != r.Iterations {
		t.Errorf("history length %d != iterations %d", len(r.History), r.Iterations)
	}
	for i := 1; i < len(r.History); i++ {
		if r.History[i] > r.History[i-1] {
			t.Errorf("residuals not monotone for a linear contraction: %v", r.History)
			break
		}
	}
}

func TestFixedPointRelativeTolerance(t *testing.T) {
	// Around a huge fixed point, absolute tolerance 1e-6 would need ~50
	// extra iterations; relative tolerance converges sooner.
	f := func(x []float64) []float64 { return []float64{x[0]/2 + 5e11} }
	abs, errA := FixedPoint(f, []float64{0}, FixedPointOptions{Tol: 1e-6, MaxIter: 100})
	rel, errR := FixedPoint(f, []float64{0}, FixedPointOptions{Tol: 1e-6, MaxIter: 100, Relative: true})
	if errA != nil || errR != nil {
		t.Fatalf("errors: %v, %v", errA, errR)
	}
	if rel.Iterations >= abs.Iterations {
		t.Errorf("relative (%d iters) should converge before absolute (%d iters)", rel.Iterations, abs.Iterations)
	}
}
