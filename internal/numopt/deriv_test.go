package numopt

import (
	"math"
	"testing"
)

func TestDerivative(t *testing.T) {
	cases := []struct {
		name string
		f    Func
		df   Func
		x    float64
	}{
		{"square", func(x float64) float64 { return x * x }, func(x float64) float64 { return 2 * x }, 3},
		{"exp", math.Exp, math.Exp, 1},
		{"recip", func(x float64) float64 { return 1 / x }, func(x float64) float64 { return -1 / (x * x) }, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Derivative(tc.f, tc.x)
			want := tc.df(tc.x)
			if math.Abs(got-want) > 1e-5*(1+math.Abs(want)) {
				t.Errorf("Derivative = %g, want %g", got, want)
			}
		})
	}
}

func TestSecondDerivative(t *testing.T) {
	f := func(x float64) float64 { return x * x * x }
	got := SecondDerivative(f, 2) // f'' = 6x = 12
	if math.Abs(got-12) > 1e-3 {
		t.Errorf("SecondDerivative = %g, want 12", got)
	}
}

func TestSecondDerivativeSignConvexity(t *testing.T) {
	// Checkpoint-style objective a/x + b·x is convex for x > 0.
	f := func(x float64) float64 { return 100/x + 3*x }
	for _, x := range []float64{0.5, 1, 5, 20} {
		if SecondDerivative(f, x) <= 0 {
			t.Errorf("f''(%g) <= 0 on a convex function", x)
		}
	}
}

func TestPartialDerivativeAndGradient(t *testing.T) {
	f := func(x []float64) float64 { return x[0]*x[0] + 3*x[0]*x[1] + x[1]*x[1]*x[1] }
	p := []float64{2, 1}
	// ∂f/∂x0 = 2x0+3x1 = 7; ∂f/∂x1 = 3x0+3x1² = 9.
	if g := PartialDerivative(f, p, 0); math.Abs(g-7) > 1e-4 {
		t.Errorf("∂f/∂x0 = %g, want 7", g)
	}
	if g := PartialDerivative(f, p, 1); math.Abs(g-9) > 1e-4 {
		t.Errorf("∂f/∂x1 = %g, want 9", g)
	}
	grad := Gradient(f, p)
	if len(grad) != 2 || math.Abs(grad[0]-7) > 1e-4 || math.Abs(grad[1]-9) > 1e-4 {
		t.Errorf("Gradient = %v, want ≈(7, 9)", grad)
	}
}

func TestDerivativeStep(t *testing.T) {
	f := func(x float64) float64 { return math.Sin(x) }
	got := DerivativeStep(f, 0, 1e-5)
	if math.Abs(got-1) > 1e-8 {
		t.Errorf("DerivativeStep = %g, want 1", got)
	}
}
