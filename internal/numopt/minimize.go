package numopt

import (
	"fmt"
	"math"
)

// MinResult reports the outcome of a 1-D minimization.
type MinResult struct {
	X          float64 // abscissa of the located minimum
	F          float64 // function value at X
	Iterations int
	Converged  bool
}

const invPhi = 0.6180339887498949 // 1/golden ratio

// GoldenSection minimizes a unimodal function on [a, b] by golden-section
// search. It is derivative-free and therefore safe on the simulated (noisy
// or piecewise) objectives where Newton steps would be meaningless.
func GoldenSection(f Func, a, b, tol float64, maxIter int) (MinResult, error) {
	if math.IsNaN(a) || math.IsNaN(b) || a >= b {
		return MinResult{}, fmt.Errorf("%w: [%g, %g]", ErrInvalidInterval, a, b)
	}
	if tol <= 0 {
		tol = 1e-8
	}
	c := b - invPhi*(b-a)
	d := a + invPhi*(b-a)
	fc, fd := f(c), f(d)
	for i := 0; i < maxIter; i++ {
		if b-a < tol {
			x := (a + b) / 2
			return MinResult{X: x, F: f(x), Iterations: i, Converged: true}, nil
		}
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - invPhi*(b-a)
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + invPhi*(b-a)
			fd = f(d)
		}
	}
	x := (a + b) / 2
	return MinResult{X: x, F: f(x), Iterations: maxIter}, ErrMaxIterations
}

// MinimizeGrid scans n+1 equally spaced points on [a, b] and returns the
// best point. It is used to seed golden-section search on objectives that
// are unimodal only locally, and by the experiment harness to draw the
// curves in Figure 3.
func MinimizeGrid(f Func, a, b float64, n int) MinResult {
	if n < 1 {
		n = 1
	}
	best := MinResult{X: a, F: f(a), Converged: true}
	for i := 1; i <= n; i++ {
		x := a + (b-a)*float64(i)/float64(n)
		if v := f(x); v < best.F {
			best.X, best.F = x, v
		}
	}
	best.Iterations = n + 1
	return best
}

// MinimizeIntGrid minimizes f over the integers in [lo, hi] by exhaustive
// scan. Execution scales and interval counts are integral in the end, and
// the final solutions are snapped with this helper when the ranges are
// small.
func MinimizeIntGrid(f func(n int) float64, lo, hi int) (int, float64) {
	bestN, bestF := lo, f(lo)
	for n := lo + 1; n <= hi; n++ {
		if v := f(n); v < bestF {
			bestN, bestF = n, v
		}
	}
	return bestN, bestF
}

// IsConvexOn probes convexity of f on [a, b] by checking the discrete
// midpoint inequality f((x+y)/2) <= (f(x)+f(y))/2 + tol on a grid of n
// points. It returns false with the first violating pair if the probe
// fails. The paper leans on convexity of E(T_w) under the fixed-μ
// condition; tests use this probe to confirm it, and to exhibit the
// nonconvexity of the unconditioned objective (Section III-A).
func IsConvexOn(f Func, a, b float64, n int, tol float64) (bool, float64, float64) {
	if n < 3 {
		n = 3
	}
	xs := make([]float64, n)
	fs := make([]float64, n)
	for i := range xs {
		xs[i] = a + (b-a)*float64(i)/float64(n-1)
		fs[i] = f(xs[i])
	}
	for i := 0; i < n; i++ {
		for j := i + 2; j < n; j += (j - i) { // midpoints at power-of-two spans
			mid := (xs[i] + xs[j]) / 2
			if f(mid) > (fs[i]+fs[j])/2+tol {
				return false, xs[i], xs[j]
			}
		}
	}
	// Also check consecutive triples via second differences.
	for i := 1; i < n-1; i++ {
		if fs[i] > (fs[i-1]+fs[i+1])/2+tol {
			return false, xs[i-1], xs[i+1]
		}
	}
	return true, 0, 0
}
