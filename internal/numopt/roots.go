// Package numopt provides the numerical-optimization substrate used by the
// checkpoint-model solvers: root finding, fixed-point iteration, 1-D
// minimization, dense linear algebra, least-squares fitting, and
// finite-difference derivatives.
//
// Go's standard library has no numerical-optimization facilities, so every
// routine here is implemented from scratch on top of package math. The
// routines favor robustness over raw speed: the solvers in internal/core
// call them a few hundred times per optimization, never in tight loops.
package numopt

import (
	"errors"
	"fmt"
	"math"
)

// ErrMaxIterations is returned when an iterative routine fails to reach its
// tolerance within the allowed number of iterations.
var ErrMaxIterations = errors.New("numopt: maximum iterations exceeded")

// ErrNoBracket is returned when a root-finding routine is given an interval
// that does not bracket a sign change.
var ErrNoBracket = errors.New("numopt: interval does not bracket a root")

// ErrInvalidInterval is returned when an interval's bounds are not ordered
// or not finite.
var ErrInvalidInterval = errors.New("numopt: invalid interval")

// Func is a scalar function of one variable.
type Func func(x float64) float64

// RootResult reports the outcome of a root-finding run.
type RootResult struct {
	Root       float64 // abscissa of the located root
	FRoot      float64 // function value at Root
	Iterations int     // iterations consumed
	Converged  bool    // whether the tolerance was met
}

// Bisect finds a root of f in [a, b] by bisection. f(a) and f(b) must have
// opposite signs (an endpoint that is exactly zero is returned immediately).
// The iteration stops when the interval width falls below tol or after
// maxIter halvings. Bisection is the workhorse for the scale equation
// (Formula 17 / 24 in the paper) because the first derivative of E(T_w) with
// respect to N is monotone on [0, N^(*)], guaranteeing a unique bracketed
// root when one exists.
func Bisect(f Func, a, b, tol float64, maxIter int) (RootResult, error) {
	if math.IsNaN(a) || math.IsNaN(b) || a >= b {
		return RootResult{}, fmt.Errorf("%w: [%g, %g]", ErrInvalidInterval, a, b)
	}
	fa, fb := f(a), f(b)
	if fa == 0 {
		return RootResult{Root: a, FRoot: 0, Converged: true}, nil
	}
	if fb == 0 {
		return RootResult{Root: b, FRoot: 0, Converged: true}, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return RootResult{}, fmt.Errorf("%w: f(%g)=%g, f(%g)=%g", ErrNoBracket, a, fa, b, fb)
	}
	var mid, fm float64
	for i := 0; i < maxIter; i++ {
		mid = a + (b-a)/2
		fm = f(mid)
		if fm == 0 || (b-a)/2 < tol {
			return RootResult{Root: mid, FRoot: fm, Iterations: i + 1, Converged: true}, nil
		}
		if math.Signbit(fm) == math.Signbit(fa) {
			a, fa = mid, fm
		} else {
			b = mid
		}
	}
	return RootResult{Root: mid, FRoot: fm, Iterations: maxIter}, ErrMaxIterations
}

// Brent finds a root of f in a bracketing interval [a, b] using Brent's
// method (inverse quadratic interpolation guarded by bisection). It
// converges superlinearly on smooth functions while retaining bisection's
// robustness.
func Brent(f Func, a, b, tol float64, maxIter int) (RootResult, error) {
	if math.IsNaN(a) || math.IsNaN(b) || a >= b {
		return RootResult{}, fmt.Errorf("%w: [%g, %g]", ErrInvalidInterval, a, b)
	}
	fa, fb := f(a), f(b)
	if fa == 0 {
		return RootResult{Root: a, Converged: true}, nil
	}
	if fb == 0 {
		return RootResult{Root: b, Converged: true}, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return RootResult{}, fmt.Errorf("%w: f(%g)=%g, f(%g)=%g", ErrNoBracket, a, fa, b, fb)
	}
	// Ensure |f(b)| <= |f(a)|: b is the best guess.
	if math.Abs(fa) < math.Abs(fb) {
		a, b = b, a
		fa, fb = fb, fa
	}
	c, fc := a, fa
	mflag := true
	var d float64
	for i := 0; i < maxIter; i++ {
		if fb == 0 || math.Abs(b-a) < tol {
			return RootResult{Root: b, FRoot: fb, Iterations: i, Converged: true}, nil
		}
		var s float64
		//lint:allow floateq exact distinctness guards the (fa-fc)/(fb-fc) divisions below; a tolerance would reintroduce the division-by-near-zero it prevents
		if fa != fc && fb != fc {
			// Inverse quadratic interpolation.
			s = a*fb*fc/((fa-fb)*(fa-fc)) +
				b*fa*fc/((fb-fa)*(fb-fc)) +
				c*fa*fb/((fc-fa)*(fc-fb))
		} else {
			// Secant step.
			s = b - fb*(b-a)/(fb-fa)
		}
		lo, hi := (3*a+b)/4, b
		if lo > hi {
			lo, hi = hi, lo
		}
		cond := s < lo || s > hi ||
			(mflag && math.Abs(s-b) >= math.Abs(b-c)/2) ||
			(!mflag && math.Abs(s-b) >= math.Abs(c-d)/2) ||
			(mflag && math.Abs(b-c) < tol) ||
			(!mflag && math.Abs(c-d) < tol)
		if cond {
			s = a + (b-a)/2
			mflag = true
		} else {
			mflag = false
		}
		fs := f(s)
		d = c
		c, fc = b, fb
		if math.Signbit(fa) != math.Signbit(fs) {
			b, fb = s, fs
		} else {
			a, fa = s, fs
		}
		if math.Abs(fa) < math.Abs(fb) {
			a, b = b, a
			fa, fb = fb, fa
		}
	}
	return RootResult{Root: b, FRoot: fb, Iterations: maxIter}, ErrMaxIterations
}

// Newton finds a root of f starting from x0 using Newton-Raphson with the
// supplied derivative df. It falls back on halving the step when an iterate
// leaves the finite domain. Newton is used in tests to cross-check the
// bisection-based solvers.
func Newton(f, df Func, x0, tol float64, maxIter int) (RootResult, error) {
	x := x0
	for i := 0; i < maxIter; i++ {
		fx := f(x)
		if math.Abs(fx) < tol {
			return RootResult{Root: x, FRoot: fx, Iterations: i, Converged: true}, nil
		}
		d := df(x)
		if d == 0 || math.IsNaN(d) || math.IsInf(d, 0) {
			return RootResult{Root: x, FRoot: fx, Iterations: i}, fmt.Errorf("numopt: Newton derivative degenerate at x=%g", x)
		}
		step := fx / d
		next := x - step
		for j := 0; j < 60 && (math.IsNaN(f(next)) || math.IsInf(f(next), 0)); j++ {
			step /= 2
			next = x - step
		}
		if math.Abs(next-x) < tol*(1+math.Abs(x)) {
			return RootResult{Root: next, FRoot: f(next), Iterations: i + 1, Converged: true}, nil
		}
		x = next
	}
	return RootResult{Root: x, FRoot: f(x), Iterations: maxIter}, ErrMaxIterations
}

// BracketRoot expands outward from [a, b] by the given growth factor until
// f changes sign across the interval or maxExpand expansions have been
// tried. It returns the bracketing interval.
func BracketRoot(f Func, a, b, factor float64, maxExpand int) (float64, float64, error) {
	if a >= b {
		return 0, 0, fmt.Errorf("%w: [%g, %g]", ErrInvalidInterval, a, b)
	}
	if factor <= 1 {
		factor = 1.6
	}
	fa, fb := f(a), f(b)
	for i := 0; i < maxExpand; i++ {
		if math.Signbit(fa) != math.Signbit(fb) {
			return a, b, nil
		}
		if math.Abs(fa) < math.Abs(fb) {
			a -= factor * (b - a)
			fa = f(a)
		} else {
			b += factor * (b - a)
			fb = f(b)
		}
	}
	return 0, 0, ErrNoBracket
}
