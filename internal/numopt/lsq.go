package numopt

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadFit is returned when a least-squares problem is underdetermined or
// its inputs are inconsistent.
var ErrBadFit = errors.New("numopt: least-squares fit failed")

// LeastSquares solves min ‖A·c − y‖₂ via the normal equations AᵀA·c = Aᵀy.
// The design matrices in this repository are tiny (a handful of basis
// functions over at most a few dozen characterization points), so normal
// equations with partial-pivot elimination are numerically adequate.
func LeastSquares(a *Matrix, y []float64) ([]float64, error) {
	if a.Rows != len(y) {
		return nil, fmt.Errorf("%w: %d rows vs %d observations", ErrBadFit, a.Rows, len(y))
	}
	if a.Rows < a.Cols {
		return nil, fmt.Errorf("%w: underdetermined (%d rows, %d unknowns)", ErrBadFit, a.Rows, a.Cols)
	}
	at := a.Transpose()
	ata, err := at.Mul(a)
	if err != nil {
		return nil, err
	}
	aty, err := at.MulVec(y)
	if err != nil {
		return nil, err
	}
	c, err := SolveLinear(ata, aty)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFit, err)
	}
	return c, nil
}

// FitBasis fits y ≈ Σ c_j · basis_j(x) over sample points (xs, ys).
func FitBasis(xs, ys []float64, basis []Func) ([]float64, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("%w: %d xs vs %d ys", ErrBadFit, len(xs), len(ys))
	}
	a := NewMatrix(len(xs), len(basis))
	for i, x := range xs {
		for j, b := range basis {
			a.Set(i, j, b(x))
		}
	}
	return LeastSquares(a, ys)
}

// FitLine fits y ≈ intercept + slope·x and returns (intercept, slope).
// It is the fitting rule for the per-level overhead models
// C_i(N) = ε_i + α_i·H_c(N) in Formula (19): callers pass H_c(N) as x.
func FitLine(xs, ys []float64) (intercept, slope float64, err error) {
	c, err := FitBasis(xs, ys, []Func{
		func(float64) float64 { return 1 },
		func(x float64) float64 { return x },
	})
	if err != nil {
		return 0, 0, err
	}
	return c[0], c[1], nil
}

// FitPoly fits a degree-d polynomial c0 + c1·x + … + cd·x^d and returns the
// coefficients in ascending order.
func FitPoly(xs, ys []float64, degree int) ([]float64, error) {
	if degree < 0 {
		return nil, fmt.Errorf("%w: negative degree", ErrBadFit)
	}
	basis := make([]Func, degree+1)
	for j := range basis {
		p := j
		basis[j] = func(x float64) float64 { return math.Pow(x, float64(p)) }
	}
	return FitBasis(xs, ys, basis)
}

// FitQuadraticThroughOrigin fits y ≈ a·x² + b·x (no constant term), the form
// of the paper's speedup curve g(N) = −κ/(2N^(*))·N² + κN (Formula 12),
// which must pass through the origin. It returns (a, b).
func FitQuadraticThroughOrigin(xs, ys []float64) (a, b float64, err error) {
	c, err := FitBasis(xs, ys, []Func{
		func(x float64) float64 { return x * x },
		func(x float64) float64 { return x },
	})
	if err != nil {
		return 0, 0, err
	}
	return c[0], c[1], nil
}

// RSquared computes the coefficient of determination of predictions pred
// against observations ys.
func RSquared(ys, pred []float64) float64 {
	if len(ys) != len(pred) || len(ys) == 0 {
		return math.NaN()
	}
	mean := 0.0
	for _, v := range ys {
		mean += v
	}
	mean /= float64(len(ys))
	ssTot, ssRes := 0.0, 0.0
	for i := range ys {
		ssTot += (ys[i] - mean) * (ys[i] - mean)
		ssRes += (ys[i] - pred[i]) * (ys[i] - pred[i])
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return math.NaN()
	}
	return 1 - ssRes/ssTot
}

// EvalPoly evaluates a polynomial with ascending coefficients at x.
func EvalPoly(coeffs []float64, x float64) float64 {
	v := 0.0
	for i := len(coeffs) - 1; i >= 0; i-- {
		v = v*x + coeffs[i]
	}
	return v
}
