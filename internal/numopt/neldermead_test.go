package numopt

import (
	"math"
	"testing"
)

func TestNelderMeadQuadraticBowl(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-3)*(x[0]-3) + 2*(x[1]+1)*(x[1]+1)
	}
	res, x, err := NelderMead(f, []float64{0, 0}, NelderMeadOptions{})
	if err != nil {
		t.Fatalf("NelderMead: %v", err)
	}
	if math.Abs(x[0]-3) > 1e-4 || math.Abs(x[1]+1) > 1e-4 {
		t.Errorf("x = %v, want (3, -1)", x)
	}
	if res.F > 1e-8 {
		t.Errorf("f = %g", res.F)
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	_, x, err := NelderMead(f, []float64{-1.2, 1}, NelderMeadOptions{MaxIter: 5000, Tol: 1e-14})
	if err != nil {
		t.Fatalf("NelderMead: %v", err)
	}
	if math.Abs(x[0]-1) > 1e-3 || math.Abs(x[1]-1) > 1e-3 {
		t.Errorf("x = %v, want (1, 1)", x)
	}
}

func TestNelderMeadHigherDimension(t *testing.T) {
	// 5-D shifted sphere.
	target := []float64{1, -2, 3, -4, 5}
	f := func(x []float64) float64 {
		s := 0.0
		for i := range x {
			d := x[i] - target[i]
			s += d * d
		}
		return s
	}
	_, x, err := NelderMead(f, make([]float64, 5), NelderMeadOptions{MaxIter: 20000, Tol: 1e-14})
	if err != nil {
		t.Fatalf("NelderMead: %v", err)
	}
	for i := range target {
		if math.Abs(x[i]-target[i]) > 1e-3 {
			t.Errorf("x[%d] = %g, want %g", i, x[i], target[i])
		}
	}
}

func TestNelderMeadEmptyStart(t *testing.T) {
	if _, _, err := NelderMead(func([]float64) float64 { return 0 }, nil, NelderMeadOptions{}); err == nil {
		t.Error("empty start accepted")
	}
}

func TestNelderMeadMaxIter(t *testing.T) {
	f := func(x []float64) float64 { return x[0] } // unbounded below
	_, _, err := NelderMead(f, []float64{0}, NelderMeadOptions{MaxIter: 10})
	if err == nil {
		t.Error("unbounded problem converged")
	}
}
