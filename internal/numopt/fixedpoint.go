package numopt

import (
	"fmt"
	"math"
)

// VecFunc maps a vector to a vector of the same length. It is the update map
// of a multi-variable fixed-point iteration: x_{k+1} = F(x_k).
type VecFunc func(x []float64) []float64

// FixedPointResult reports the outcome of a fixed-point iteration.
type FixedPointResult struct {
	X          []float64 // final iterate
	Iterations int       // iterations consumed
	Residual   float64   // max |x_{k+1}-x_k| at termination
	Converged  bool
	History    []float64 // residual per iteration (diagnostic)
}

// FixedPointOptions tunes FixedPoint.
type FixedPointOptions struct {
	Tol      float64 // convergence threshold on max component change
	MaxIter  int     // iteration cap
	Damping  float64 // 0 = undamped; otherwise x <- (1-d)*F(x) + d*x
	Relative bool    // measure residual relative to |x| instead of absolute
	Record   bool    // record per-iteration residuals in History
}

// DefaultFixedPointOptions mirror the paper's solver settings: the error
// threshold used in Section III-C is 1e-6 and convergence is reported in
// well under 100 iterations.
func DefaultFixedPointOptions() FixedPointOptions {
	return FixedPointOptions{Tol: 1e-6, MaxIter: 10000}
}

// FixedPoint iterates x_{k+1} = F(x_k) from x0 until the largest component
// change falls below opts.Tol. The paper's inner solver (Formulas 16/17 and
// 23/24) and outer μ-refresh loop (Algorithm 1) are both instances of this
// driver.
func FixedPoint(f VecFunc, x0 []float64, opts FixedPointOptions) (FixedPointResult, error) {
	if opts.Tol <= 0 {
		opts.Tol = 1e-6
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 10000
	}
	x := append([]float64(nil), x0...)
	res := FixedPointResult{}
	for k := 0; k < opts.MaxIter; k++ {
		next := f(x)
		if len(next) != len(x) {
			return res, fmt.Errorf("numopt: fixed-point map changed dimension %d -> %d", len(x), len(next))
		}
		if opts.Damping > 0 {
			for i := range next {
				next[i] = (1-opts.Damping)*next[i] + opts.Damping*x[i]
			}
		}
		worst := 0.0
		for i := range next {
			if math.IsNaN(next[i]) || math.IsInf(next[i], 0) {
				res.X = x
				res.Iterations = k + 1
				return res, fmt.Errorf("numopt: fixed-point iterate diverged at component %d (value %g)", i, next[i])
			}
			d := math.Abs(next[i] - x[i])
			if opts.Relative {
				d /= 1 + math.Abs(x[i])
			}
			if d > worst {
				worst = d
			}
		}
		if opts.Record {
			res.History = append(res.History, worst)
		}
		x = next
		if worst <= opts.Tol {
			res.X = x
			res.Iterations = k + 1
			res.Residual = worst
			res.Converged = true
			return res, nil
		}
		res.Residual = worst
	}
	res.X = x
	res.Iterations = opts.MaxIter
	return res, ErrMaxIterations
}

// FixedPoint1D is the scalar convenience form of FixedPoint.
func FixedPoint1D(f Func, x0 float64, opts FixedPointOptions) (float64, int, error) {
	r, err := FixedPoint(func(x []float64) []float64 {
		return []float64{f(x[0])}
	}, []float64{x0}, opts)
	if len(r.X) == 0 {
		return x0, r.Iterations, err
	}
	return r.X[0], r.Iterations, err
}
