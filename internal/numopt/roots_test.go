package numopt

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestBisectQuadratic(t *testing.T) {
	f := func(x float64) float64 { return x*x - 4 }
	r, err := Bisect(f, 0, 10, 1e-10, 200)
	if err != nil {
		t.Fatalf("Bisect: %v", err)
	}
	if math.Abs(r.Root-2) > 1e-9 {
		t.Errorf("root = %g, want 2", r.Root)
	}
	if !r.Converged {
		t.Error("expected convergence")
	}
}

func TestBisectEndpointRoot(t *testing.T) {
	f := func(x float64) float64 { return x - 3 }
	r, err := Bisect(f, 3, 10, 1e-10, 100)
	if err != nil {
		t.Fatalf("Bisect: %v", err)
	}
	if r.Root != 3 {
		t.Errorf("root = %g, want exactly 3", r.Root)
	}
}

func TestBisectNoBracket(t *testing.T) {
	f := func(x float64) float64 { return x*x + 1 }
	_, err := Bisect(f, -1, 1, 1e-10, 100)
	if !errors.Is(err, ErrNoBracket) {
		t.Errorf("err = %v, want ErrNoBracket", err)
	}
}

func TestBisectInvalidInterval(t *testing.T) {
	f := func(x float64) float64 { return x }
	if _, err := Bisect(f, 2, 1, 1e-10, 100); !errors.Is(err, ErrInvalidInterval) {
		t.Errorf("err = %v, want ErrInvalidInterval", err)
	}
	if _, err := Bisect(f, math.NaN(), 1, 1e-10, 100); !errors.Is(err, ErrInvalidInterval) {
		t.Errorf("NaN bound: err = %v, want ErrInvalidInterval", err)
	}
}

func TestBisectMaxIterations(t *testing.T) {
	f := func(x float64) float64 { return x - math.Pi }
	_, err := Bisect(f, -1e18, 1e18, 1e-300, 3)
	if !errors.Is(err, ErrMaxIterations) {
		t.Errorf("err = %v, want ErrMaxIterations", err)
	}
}

func TestBrentTranscendental(t *testing.T) {
	// cos(x) = x has its root near 0.7390851332151607.
	f := func(x float64) float64 { return math.Cos(x) - x }
	r, err := Brent(f, 0, 1, 1e-12, 200)
	if err != nil {
		t.Fatalf("Brent: %v", err)
	}
	if math.Abs(r.Root-0.7390851332151607) > 1e-9 {
		t.Errorf("root = %.12f, want 0.739085133215", r.Root)
	}
}

func TestBrentMatchesBisect(t *testing.T) {
	cases := []struct {
		name string
		f    Func
		a, b float64
	}{
		{"cubic", func(x float64) float64 { return x*x*x - 2*x - 5 }, 1, 3},
		{"exp", func(x float64) float64 { return math.Exp(x) - 10 }, 0, 5},
		{"log", func(x float64) float64 { return math.Log(x) - 1 }, 1, 10},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rb, err := Bisect(tc.f, tc.a, tc.b, 1e-12, 400)
			if err != nil {
				t.Fatalf("Bisect: %v", err)
			}
			rr, err := Brent(tc.f, tc.a, tc.b, 1e-12, 400)
			if err != nil {
				t.Fatalf("Brent: %v", err)
			}
			if math.Abs(rb.Root-rr.Root) > 1e-8 {
				t.Errorf("Bisect %g vs Brent %g", rb.Root, rr.Root)
			}
			if rr.Iterations > rb.Iterations {
				t.Logf("note: Brent used %d iters vs bisect %d", rr.Iterations, rb.Iterations)
			}
		})
	}
}

func TestNewtonSqrt(t *testing.T) {
	f := func(x float64) float64 { return x*x - 612 }
	df := func(x float64) float64 { return 2 * x }
	r, err := Newton(f, df, 10, 1e-12, 100)
	if err != nil {
		t.Fatalf("Newton: %v", err)
	}
	if math.Abs(r.Root-math.Sqrt(612)) > 1e-6 {
		t.Errorf("root = %g, want %g", r.Root, math.Sqrt(612))
	}
}

func TestNewtonDegenerateDerivative(t *testing.T) {
	f := func(x float64) float64 { return x*x + 1 } // no real root
	df := func(x float64) float64 { return 2 * x }
	if _, err := Newton(f, df, 0, 1e-12, 50); err == nil {
		t.Error("expected an error for zero derivative at start")
	}
}

func TestBracketRoot(t *testing.T) {
	f := func(x float64) float64 { return x - 100 }
	a, b, err := BracketRoot(f, 0, 1, 2, 60)
	if err != nil {
		t.Fatalf("BracketRoot: %v", err)
	}
	if !(f(a) < 0 && f(b) > 0) {
		t.Errorf("not a bracket: f(%g)=%g, f(%g)=%g", a, f(a), b, f(b))
	}
}

func TestBracketRootFailure(t *testing.T) {
	f := func(x float64) float64 { return 1 + x*x }
	if _, _, err := BracketRoot(f, -1, 1, 2, 10); !errors.Is(err, ErrNoBracket) {
		t.Errorf("err = %v, want ErrNoBracket", err)
	}
}

// Property: for any monotone linear function with a root inside the
// interval, bisection locates it to tolerance.
func TestBisectPropertyLinear(t *testing.T) {
	prop := func(slope, root float64) bool {
		s := 0.5 + math.Mod(math.Abs(slope), 10) // slope in [0.5, 10.5)
		r := math.Mod(root, 100)                 // root in (-100, 100)
		f := func(x float64) float64 { return s * (x - r) }
		res, err := Bisect(f, r-150, r+151, 1e-9, 300)
		if err != nil {
			return false
		}
		return math.Abs(res.Root-r) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Brent agrees with bisection on randomized cubics that bracket.
func TestBrentPropertyCubic(t *testing.T) {
	prop := func(shift float64) bool {
		c := math.Mod(math.Abs(shift), 50)
		f := func(x float64) float64 { return x*x*x - c }
		want := math.Cbrt(c)
		res, err := Brent(f, -1, c+2, 1e-10, 500)
		if err != nil {
			return false
		}
		return math.Abs(res.Root-want) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
