package numopt

import (
	"fmt"
	"math"
	"sort"
)

// NelderMeadOptions tunes the simplex search.
type NelderMeadOptions struct {
	Tol     float64 // stop when the simplex's value spread falls below Tol (relative)
	MaxIter int
	Scale   float64 // initial simplex size relative to |x0| (default 0.05)
}

// NelderMead minimizes f over R^n by the derivative-free Nelder–Mead
// simplex method. It exists as an independent cross-check of the paper's
// fixed-point solvers: the two approaches share no code, so their
// agreement on the multilevel optimum is strong evidence for both.
func NelderMead(f func([]float64) float64, x0 []float64, opts NelderMeadOptions) (MinResult, []float64, error) {
	n := len(x0)
	if n == 0 {
		return MinResult{}, nil, fmt.Errorf("%w: empty start point", ErrInvalidInterval)
	}
	if opts.Tol <= 0 {
		opts.Tol = 1e-10
	}
	if opts.MaxIter <= 0 {
		opts.MaxIter = 200 * n
	}
	if opts.Scale <= 0 {
		opts.Scale = 0.05
	}

	// Initial simplex: x0 plus one perturbed vertex per dimension.
	simplex := make([][]float64, n+1)
	values := make([]float64, n+1)
	simplex[0] = append([]float64(nil), x0...)
	for i := 1; i <= n; i++ {
		v := append([]float64(nil), x0...)
		step := opts.Scale * (1 + math.Abs(v[i-1]))
		v[i-1] += step
		simplex[i] = v
	}
	for i := range simplex {
		values[i] = f(simplex[i])
	}

	const (
		alpha = 1.0 // reflection
		gamma = 2.0 // expansion
		rho   = 0.5 // contraction
		sigma = 0.5 // shrink
	)
	order := make([]int, n+1)
	for iter := 0; iter < opts.MaxIter; iter++ {
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return values[order[a]] < values[order[b]] })
		best, worst := order[0], order[n]
		spread := math.Abs(values[worst]-values[best]) / (1 + math.Abs(values[best]))
		if spread < opts.Tol {
			return MinResult{X: math.NaN(), F: values[best], Iterations: iter, Converged: true},
				append([]float64(nil), simplex[best]...), nil
		}

		// Centroid of all but the worst.
		centroid := make([]float64, n)
		for _, idx := range order[:n] {
			for j := range centroid {
				centroid[j] += simplex[idx][j]
			}
		}
		for j := range centroid {
			centroid[j] /= float64(n)
		}
		point := func(coef float64) []float64 {
			out := make([]float64, n)
			for j := range out {
				out[j] = centroid[j] + coef*(centroid[j]-simplex[worst][j])
			}
			return out
		}

		refl := point(alpha)
		fRefl := f(refl)
		switch {
		case fRefl < values[order[0]]:
			// Try expanding.
			exp := point(alpha * gamma)
			if fExp := f(exp); fExp < fRefl {
				simplex[worst], values[worst] = exp, fExp
			} else {
				simplex[worst], values[worst] = refl, fRefl
			}
		case fRefl < values[order[n-1]]:
			simplex[worst], values[worst] = refl, fRefl
		default:
			// Contract.
			con := point(-rho)
			if fCon := f(con); fCon < values[worst] {
				simplex[worst], values[worst] = con, fCon
			} else {
				// Shrink toward the best vertex.
				bestV := simplex[best]
				for _, idx := range order[1:] {
					for j := range simplex[idx] {
						simplex[idx][j] = bestV[j] + sigma*(simplex[idx][j]-bestV[j])
					}
					values[idx] = f(simplex[idx])
				}
			}
		}
	}
	bi := 0
	for i := range values {
		if values[i] < values[bi] {
			bi = i
		}
	}
	return MinResult{F: values[bi], Iterations: opts.MaxIter},
		append([]float64(nil), simplex[bi]...), ErrMaxIterations
}
