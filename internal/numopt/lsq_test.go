package numopt

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFitLineExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2.5 + 1.75*x
	}
	b0, b1, err := FitLine(xs, ys)
	if err != nil {
		t.Fatalf("FitLine: %v", err)
	}
	if math.Abs(b0-2.5) > 1e-10 || math.Abs(b1-1.75) > 1e-10 {
		t.Errorf("fit (%g, %g), want (2.5, 1.75)", b0, b1)
	}
}

func TestFitLineNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var xs, ys []float64
	for i := 0; i < 200; i++ {
		x := float64(i)
		xs = append(xs, x)
		ys = append(ys, 10+0.5*x+rng.NormFloat64()*0.1)
	}
	b0, b1, err := FitLine(xs, ys)
	if err != nil {
		t.Fatalf("FitLine: %v", err)
	}
	if math.Abs(b0-10) > 0.1 || math.Abs(b1-0.5) > 0.01 {
		t.Errorf("fit (%g, %g), want ≈(10, 0.5)", b0, b1)
	}
}

func TestFitPolyCubic(t *testing.T) {
	coeffs := []float64{1, -2, 0.5, 0.25}
	var xs, ys []float64
	for x := -3.0; x <= 3.0; x += 0.25 {
		xs = append(xs, x)
		ys = append(ys, EvalPoly(coeffs, x))
	}
	got, err := FitPoly(xs, ys, 3)
	if err != nil {
		t.Fatalf("FitPoly: %v", err)
	}
	for i := range coeffs {
		if math.Abs(got[i]-coeffs[i]) > 1e-8 {
			t.Errorf("coeff %d = %g, want %g", i, got[i], coeffs[i])
		}
	}
}

func TestFitQuadraticThroughOrigin(t *testing.T) {
	// The paper's speedup form: g(N) = -κ/(2N*)·N² + κ·N, κ=0.46, N*=1e5.
	kappa, nstar := 0.46, 1e5
	var xs, ys []float64
	for n := 1000.0; n <= 100000; n += 1000 {
		xs = append(xs, n)
		ys = append(ys, -kappa/(2*nstar)*n*n+kappa*n)
	}
	a, b, err := FitQuadraticThroughOrigin(xs, ys)
	if err != nil {
		t.Fatalf("fit: %v", err)
	}
	if math.Abs(a-(-kappa/(2*nstar))) > 1e-12 {
		t.Errorf("a = %g, want %g", a, -kappa/(2*nstar))
	}
	if math.Abs(b-kappa) > 1e-9 {
		t.Errorf("b = %g, want %g", b, kappa)
	}
	// Implied curve parameters recover κ and N*.
	gotNstar := -b / (2 * a)
	if math.Abs(gotNstar-nstar) > 1 {
		t.Errorf("implied N* = %g, want %g", gotNstar, nstar)
	}
}

func TestLeastSquaresUnderdetermined(t *testing.T) {
	a := NewMatrix(1, 2)
	if _, err := LeastSquares(a, []float64{1}); !errors.Is(err, ErrBadFit) {
		t.Errorf("err = %v, want ErrBadFit", err)
	}
}

func TestFitBasisLengthMismatch(t *testing.T) {
	_, err := FitBasis([]float64{1, 2}, []float64{1}, []Func{func(x float64) float64 { return x }})
	if !errors.Is(err, ErrBadFit) {
		t.Errorf("err = %v, want ErrBadFit", err)
	}
}

func TestRSquared(t *testing.T) {
	ys := []float64{1, 2, 3, 4}
	if r := RSquared(ys, ys); math.Abs(r-1) > 1e-12 {
		t.Errorf("perfect fit R² = %g, want 1", r)
	}
	mean := []float64{2.5, 2.5, 2.5, 2.5}
	if r := RSquared(ys, mean); math.Abs(r) > 1e-12 {
		t.Errorf("mean predictor R² = %g, want 0", r)
	}
	if r := RSquared(ys, []float64{1}); !math.IsNaN(r) {
		t.Errorf("length mismatch R² = %g, want NaN", r)
	}
}

func TestEvalPoly(t *testing.T) {
	// 3 + 2x + x² at x=4 -> 3+8+16 = 27.
	if v := EvalPoly([]float64{3, 2, 1}, 4); v != 27 {
		t.Errorf("EvalPoly = %g, want 27", v)
	}
	if v := EvalPoly(nil, 5); v != 0 {
		t.Errorf("empty poly = %g, want 0", v)
	}
}

// Property: fitting noise-free lines recovers the coefficients regardless of
// slope and intercept.
func TestFitLineProperty(t *testing.T) {
	prop := func(b0, b1 float64) bool {
		b0 = math.Mod(b0, 1e6)
		b1 = math.Mod(b1, 1e3)
		xs := []float64{0, 1, 2, 5, 10, 20}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = b0 + b1*x
		}
		g0, g1, err := FitLine(xs, ys)
		if err != nil {
			return false
		}
		return math.Abs(g0-b0) < 1e-6*(1+math.Abs(b0)) && math.Abs(g1-b1) < 1e-6*(1+math.Abs(b1))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
