package numopt

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a linear system has no unique solution.
var ErrSingular = errors.New("numopt: singular matrix")

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, row-major
}

// NewMatrix allocates a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MulVec computes m·x.
func (m *Matrix) MulVec(x []float64) ([]float64, error) {
	if len(x) != m.Cols {
		return nil, fmt.Errorf("numopt: dimension mismatch %dx%d · %d", m.Rows, m.Cols, len(x))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul computes m·b.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.Cols != b.Rows {
		return nil, fmt.Errorf("numopt: dimension mismatch %dx%d · %dx%d", m.Rows, m.Cols, b.Rows, b.Cols)
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Data[i*out.Cols+j] += a * b.At(k, j)
			}
		}
	}
	return out, nil
}

// SolveLinear solves A·x = b by Gaussian elimination with partial pivoting.
// A is not modified.
func SolveLinear(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("numopt: SolveLinear needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if len(b) != n {
		return nil, fmt.Errorf("numopt: rhs length %d != %d", len(b), n)
	}
	// Augmented working copy.
	m := a.Clone()
	rhs := append([]float64(nil), b...)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot, pmax := col, math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m.At(r, col)); v > pmax {
				pivot, pmax = r, v
			}
		}
		if pmax < 1e-300 {
			return nil, ErrSingular
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				vi, vp := m.At(col, j), m.At(pivot, j)
				m.Set(col, j, vp)
				m.Set(pivot, j, vi)
			}
			rhs[col], rhs[pivot] = rhs[pivot], rhs[col]
		}
		inv := 1 / m.At(col, col)
		for r := col + 1; r < n; r++ {
			factor := m.At(r, col) * inv
			if factor == 0 {
				continue
			}
			m.Set(r, col, 0)
			for j := col + 1; j < n; j++ {
				m.Set(r, j, m.At(r, j)-factor*m.At(col, j))
			}
			rhs[r] -= factor * rhs[col]
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := rhs[i]
		for j := i + 1; j < n; j++ {
			s -= m.At(i, j) * x[j]
		}
		x[i] = s / m.At(i, i)
	}
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, ErrSingular
		}
	}
	return x, nil
}

// Invert returns A⁻¹ by solving against the identity columns.
func Invert(a *Matrix) (*Matrix, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("numopt: Invert needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	inv := NewMatrix(n, n)
	e := make([]float64, n)
	for c := 0; c < n; c++ {
		for i := range e {
			e[i] = 0
		}
		e[c] = 1
		col, err := SolveLinear(a, e)
		if err != nil {
			return nil, err
		}
		for r := 0; r < n; r++ {
			inv.Set(r, c, col[r])
		}
	}
	return inv, nil
}
