// Package storage models the timing of the storage hierarchy an FTI-style
// multilevel checkpoint toolkit writes to: node-local devices (level 1),
// partner-node copies over the interconnect (level 2), encoded groups
// (level 3), and a shared parallel file system (level 4).
//
// The PFS model is the load-bearing piece: its aggregate bandwidth is
// shared by all concurrent writers and every file carries a metadata cost
// that grows with the client count — which is what makes the measured
// level-4 checkpoint overhead climb with the execution scale in Table II
// while levels 1–3 stay flat.
package storage

import (
	"errors"
	"fmt"
)

// ErrStorage is returned for invalid operations or parameters.
var ErrStorage = errors.New("storage: invalid operation")

// Hierarchy bundles the device parameters. All bandwidths in bytes/second,
// latencies in seconds.
type Hierarchy struct {
	// Local device (SSD / NVDIMM) per node.
	LocalBandwidth float64
	LocalLatency   float64
	// Interconnect used for partner copies and RS exchanges.
	NetBandwidth float64
	NetLatency   float64
	// RS encoding throughput per node (XOR/GF multiply streams).
	EncodeBandwidth float64
	// Shared parallel file system.
	PFSBandwidth   float64 // aggregate across all clients
	PFSMetaPerFile float64 // per-file metadata/open cost, seconds
	PFSMetaScaling float64 // extra metadata serialization cost per client, seconds
}

// DefaultHierarchy approximates the paper-era Fusion cluster: ~200 MB/s
// local disks, ~3 GB/s links, ~4 GB/s aggregate GPFS.
func DefaultHierarchy() Hierarchy {
	return Hierarchy{
		LocalBandwidth:  200e6,
		LocalLatency:    1e-3,
		NetBandwidth:    3e9,
		NetLatency:      2e-6,
		EncodeBandwidth: 1e9,
		PFSBandwidth:    4e9,
		PFSMetaPerFile:  5e-3,
		PFSMetaScaling:  2e-5,
	}
}

// Validate checks the parameters.
func (h Hierarchy) Validate() error {
	if h.LocalBandwidth <= 0 || h.NetBandwidth <= 0 || h.EncodeBandwidth <= 0 || h.PFSBandwidth <= 0 {
		return fmt.Errorf("%w: non-positive bandwidth", ErrStorage)
	}
	if h.LocalLatency < 0 || h.NetLatency < 0 || h.PFSMetaPerFile < 0 || h.PFSMetaScaling < 0 {
		return fmt.Errorf("%w: negative latency", ErrStorage)
	}
	return nil
}

// LocalWrite returns the time for one node to write bytes to its local
// device.
func (h Hierarchy) LocalWrite(bytes int) float64 {
	return h.LocalLatency + float64(bytes)/h.LocalBandwidth
}

// LocalRead returns the time for one node to read bytes from its local
// device (modelled symmetric to writes).
func (h Hierarchy) LocalRead(bytes int) float64 {
	return h.LocalWrite(bytes)
}

// PartnerCopy returns the time for a node to ship bytes to its partner and
// for the partner to persist them locally; both happen on the critical
// path of a level-2 checkpoint (after the local write of the node's own
// data).
func (h Hierarchy) PartnerCopy(bytes int) float64 {
	return h.NetLatency + float64(bytes)/h.NetBandwidth + h.LocalWrite(bytes)
}

// Encode returns the time for a node to RS-encode bytes (level 3): the
// group exchange of data plus the GF arithmetic plus the local write of
// the parity shard.
func (h Hierarchy) Encode(bytes, groupSize int) float64 {
	if groupSize < 1 {
		groupSize = 1
	}
	exchange := float64(groupSize-1) * (h.NetLatency + float64(bytes)/h.NetBandwidth)
	return exchange + float64(bytes)/h.EncodeBandwidth + h.LocalWrite(bytes)
}

// PFSWrite returns the per-client time for `clients` nodes concurrently
// writing `bytesPerClient` each to the shared file system: every client
// pays the metadata cost (which grows with the client count as the
// metadata server serializes opens) and the aggregate bandwidth is split
// across clients.
func (h Hierarchy) PFSWrite(bytesPerClient, clients int) float64 {
	if clients < 1 {
		clients = 1
	}
	meta := h.PFSMetaPerFile + h.PFSMetaScaling*float64(clients)
	total := float64(bytesPerClient) * float64(clients)
	return meta + total/h.PFSBandwidth
}

// PFSRead returns the per-client recovery read time (modelled symmetric).
func (h Hierarchy) PFSRead(bytesPerClient, clients int) float64 {
	return h.PFSWrite(bytesPerClient, clients)
}

// CheckpointTime returns the per-node duration of a checkpoint at the given
// level (1-based), for perNode bytes on each of `nodes` nodes with RS group
// size `groupSize`. It reproduces the Table II structure: levels 1–3
// roughly independent of the node count, level 4 growing with it.
func (h Hierarchy) CheckpointTime(level int, perNode, nodes, groupSize int) (float64, error) {
	switch level {
	case 1:
		return h.LocalWrite(perNode), nil
	case 2:
		return h.LocalWrite(perNode) + h.PartnerCopy(perNode), nil
	case 3:
		return h.LocalWrite(perNode) + h.Encode(perNode, groupSize), nil
	case 4:
		return h.PFSWrite(perNode, nodes), nil
	default:
		return 0, fmt.Errorf("%w: level %d", ErrStorage, level)
	}
}

// RetryPolicy bounds retry-with-deterministic-backoff on transient PFS
// faults. Delays are fixed by the policy (exponential, not jittered), so
// the virtual-time cost of a faulty operation is a pure function of the
// fault plan — retries show up in wall-clock results identically at any
// worker count.
type RetryPolicy struct {
	MaxRetries int     // retries after the first attempt; 0 disables retrying
	Base       float64 // delay before the first retry, seconds
	Factor     float64 // multiplier applied to each subsequent delay
}

// DefaultRetryPolicy retries three times with 0.5s/1s/2s backoff —
// enough to ride out the transient PFS hiccups the fault plans inject
// without hiding a persistently failing file system.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxRetries: 3, Base: 0.5, Factor: 2}
}

// Validate checks the policy parameters.
func (p RetryPolicy) Validate() error {
	if p.MaxRetries < 0 {
		return fmt.Errorf("%w: %d retries", ErrStorage, p.MaxRetries)
	}
	if p.Base < 0 || (p.MaxRetries > 0 && p.Factor < 1 && p.Factor != 0) {
		return fmt.Errorf("%w: backoff base %g factor %g", ErrStorage, p.Base, p.Factor)
	}
	return nil
}

// Backoff returns the delay in seconds before retry `retry` (0-based).
func (p RetryPolicy) Backoff(retry int) float64 {
	if retry < 0 {
		return 0
	}
	d := p.Base
	factor := p.Factor
	if factor == 0 {
		factor = 1
	}
	for i := 0; i < retry; i++ {
		d *= factor
	}
	return d
}

// Retry prices a faulty operation on the virtual clock: the operation
// costs attemptCost seconds per try, and shouldFail(attempt) decides
// (deterministically, from the fault plan) whether try `attempt` fails
// transiently. It returns the total elapsed virtual time (every attempt's
// cost plus the backoff delays between them), the number of attempts
// made, and whether the operation ultimately succeeded within the retry
// budget. The elapsed time of a failed operation still counts — the
// caller charged the wall clock for work the PFS threw away.
func (p RetryPolicy) Retry(attemptCost float64, shouldFail func(attempt int) bool) (elapsed float64, attempts int, ok bool) {
	for attempt := 0; ; attempt++ {
		attempts++
		elapsed += attemptCost
		if !shouldFail(attempt) {
			return elapsed, attempts, true
		}
		if attempt >= p.MaxRetries {
			return elapsed, attempts, false
		}
		elapsed += p.Backoff(attempt)
	}
}

// RecoveryTime returns the per-node duration of restoring a checkpoint of
// the given level.
func (h Hierarchy) RecoveryTime(level int, perNode, nodes, groupSize int) (float64, error) {
	switch level {
	case 1:
		return h.LocalRead(perNode), nil
	case 2:
		// Fetch the copy back from the partner.
		return h.NetLatency + float64(perNode)/h.NetBandwidth + h.LocalRead(perNode), nil
	case 3:
		// Rebuild lost shards: group exchange + decode.
		return h.Encode(perNode, groupSize), nil
	case 4:
		return h.PFSRead(perNode, nodes), nil
	default:
		return 0, fmt.Errorf("%w: level %d", ErrStorage, level)
	}
}
