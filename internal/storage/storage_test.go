package storage

import (
	"errors"
	"testing"
)

func TestValidate(t *testing.T) {
	if err := DefaultHierarchy().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	bad := DefaultHierarchy()
	bad.PFSBandwidth = 0
	if err := bad.Validate(); !errors.Is(err, ErrStorage) {
		t.Errorf("zero bandwidth: %v", err)
	}
	neg := DefaultHierarchy()
	neg.LocalLatency = -1
	if err := neg.Validate(); !errors.Is(err, ErrStorage) {
		t.Errorf("negative latency: %v", err)
	}
}

func TestLevelCostOrdering(t *testing.T) {
	// At any realistic configuration, C1 <= C2 and C1 <= C3; at scale,
	// C4 dominates everything (the paper's C_1 <= ... <= C_L assumption).
	h := DefaultHierarchy()
	perNode := 64 << 20 // 64 MiB per node
	nodes := 512
	c := make([]float64, 5)
	for lvl := 1; lvl <= 4; lvl++ {
		v, err := h.CheckpointTime(lvl, perNode, nodes, 8)
		if err != nil {
			t.Fatal(err)
		}
		c[lvl] = v
	}
	if !(c[1] < c[2] && c[2] < c[3] && c[3] < c[4]) {
		t.Errorf("costs not increasing with level: %v", c[1:])
	}
}

func TestTableIIShape(t *testing.T) {
	// Levels 1–3 must be (nearly) flat in the node count; level 4 must
	// grow — the qualitative shape of Table II.
	h := DefaultHierarchy()
	perNode := 32 << 20
	at := func(lvl, nodes int) float64 {
		v, err := h.CheckpointTime(lvl, perNode, nodes, 8)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	for lvl := 1; lvl <= 3; lvl++ {
		small, large := at(lvl, 128), at(lvl, 1024)
		if small != large {
			t.Errorf("level %d varies with node count: %g vs %g", lvl, small, large)
		}
	}
	if !(at(4, 1024) > at(4, 128)*1.5) {
		t.Errorf("level 4 does not grow with scale: %g vs %g", at(4, 128), at(4, 1024))
	}
}

func TestPFSStrongScalingSaturation(t *testing.T) {
	// Under strong scaling the per-node data shrinks as 1/nodes, so the
	// bandwidth term is constant and only metadata grows — the rationale
	// for overhead.ExascaleCosts' saturating level-4 model.
	h := DefaultHierarchy()
	total := 1 << 36 // 64 GiB problem
	t128 := h.PFSWrite(total/128, 128)
	t1024 := h.PFSWrite(total/1024, 1024)
	bwTerm := float64(total) / h.PFSBandwidth
	if t128 < bwTerm || t1024 < bwTerm {
		t.Errorf("PFS write below bandwidth floor: %g, %g < %g", t128, t1024, bwTerm)
	}
	if t1024 <= t128 {
		t.Errorf("metadata growth missing: %g <= %g", t1024, t128)
	}
	if (t1024-t128)/t128 > 0.2 {
		t.Errorf("strong-scaling PFS cost grew too fast: %g -> %g", t128, t1024)
	}
}

func TestCheckpointTimeInvalidLevel(t *testing.T) {
	h := DefaultHierarchy()
	if _, err := h.CheckpointTime(0, 1024, 4, 2); !errors.Is(err, ErrStorage) {
		t.Errorf("level 0: %v", err)
	}
	if _, err := h.CheckpointTime(5, 1024, 4, 2); !errors.Is(err, ErrStorage) {
		t.Errorf("level 5: %v", err)
	}
	if _, err := h.RecoveryTime(9, 1024, 4, 2); !errors.Is(err, ErrStorage) {
		t.Errorf("recovery level 9: %v", err)
	}
}

func TestRecoveryCheaperThanOrComparableToCheckpoint(t *testing.T) {
	h := DefaultHierarchy()
	perNode := 16 << 20
	for lvl := 1; lvl <= 4; lvl++ {
		c, err := h.CheckpointTime(lvl, perNode, 256, 8)
		if err != nil {
			t.Fatal(err)
		}
		r, err := h.RecoveryTime(lvl, perNode, 256, 8)
		if err != nil {
			t.Fatal(err)
		}
		if r > c*1.01 {
			t.Errorf("level %d recovery %g > checkpoint %g", lvl, r, c)
		}
	}
}

func TestMonotoneInSize(t *testing.T) {
	h := DefaultHierarchy()
	for lvl := 1; lvl <= 4; lvl++ {
		small, err := h.CheckpointTime(lvl, 1<<20, 64, 8)
		if err != nil {
			t.Fatal(err)
		}
		large, err := h.CheckpointTime(lvl, 1<<24, 64, 8)
		if err != nil {
			t.Fatal(err)
		}
		if large <= small {
			t.Errorf("level %d not monotone in bytes: %g <= %g", lvl, large, small)
		}
	}
}

func TestEncodeGroupSizeEffect(t *testing.T) {
	h := DefaultHierarchy()
	e2 := h.Encode(1<<24, 2)
	e16 := h.Encode(1<<24, 16)
	if e16 <= e2 {
		t.Errorf("larger RS group should cost more exchange: %g <= %g", e16, e2)
	}
	// Degenerate group of 1 is accepted.
	if h.Encode(1<<20, 0) <= 0 {
		t.Error("degenerate group mishandled")
	}
}

func TestRetryPolicyValidate(t *testing.T) {
	if err := DefaultRetryPolicy().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	if err := (RetryPolicy{}).Validate(); err != nil {
		t.Fatalf("zero policy invalid: %v", err)
	}
	if err := (RetryPolicy{MaxRetries: -1}).Validate(); !errors.Is(err, ErrStorage) {
		t.Errorf("negative retries: %v", err)
	}
	if err := (RetryPolicy{MaxRetries: 2, Base: -1}).Validate(); !errors.Is(err, ErrStorage) {
		t.Errorf("negative base: %v", err)
	}
	if err := (RetryPolicy{MaxRetries: 2, Base: 1, Factor: 0.5}).Validate(); !errors.Is(err, ErrStorage) {
		t.Errorf("shrinking factor: %v", err)
	}
}

func TestRetryBackoffSchedule(t *testing.T) {
	p := RetryPolicy{MaxRetries: 3, Base: 0.5, Factor: 2}
	want := []float64{0.5, 1, 2}
	for i, w := range want {
		if got := p.Backoff(i); got != w {
			t.Errorf("Backoff(%d) = %g, want %g", i, got, w)
		}
	}
	if got := p.Backoff(-1); got != 0 {
		t.Errorf("Backoff(-1) = %g", got)
	}
}

func TestRetryPricing(t *testing.T) {
	p := RetryPolicy{MaxRetries: 3, Base: 0.5, Factor: 2}

	// Immediate success: one attempt, no backoff.
	elapsed, attempts, ok := p.Retry(2, func(int) bool { return false })
	if !ok || attempts != 1 || elapsed != 2 {
		t.Fatalf("clean op: elapsed=%g attempts=%d ok=%v", elapsed, attempts, ok)
	}

	// Two transient failures: 3 attempts, backoffs 0.5 + 1.
	fails := 2
	elapsed, attempts, ok = p.Retry(2, func(a int) bool { return a < fails })
	if !ok || attempts != 3 || elapsed != 3*2+0.5+1 {
		t.Fatalf("2 transients: elapsed=%g attempts=%d ok=%v", elapsed, attempts, ok)
	}

	// Persistent failure: budget exhausted, all attempts + interior
	// backoffs charged, ok=false.
	elapsed, attempts, ok = p.Retry(2, func(int) bool { return true })
	if ok || attempts != 4 || elapsed != 4*2+0.5+1+2 {
		t.Fatalf("persistent: elapsed=%g attempts=%d ok=%v", elapsed, attempts, ok)
	}

	// Zero-retry policy gives up after the first failure.
	elapsed, attempts, ok = (RetryPolicy{}).Retry(1, func(int) bool { return true })
	if ok || attempts != 1 || elapsed != 1 {
		t.Fatalf("no-retry: elapsed=%g attempts=%d ok=%v", elapsed, attempts, ok)
	}
}
