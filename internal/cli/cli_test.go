package cli

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"mlckpt"
)

func writeSpec(t *testing.T, spec mlckpt.Spec) string {
	t.Helper()
	blob, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadSpecRoundTrip(t *testing.T) {
	want := mlckpt.PaperSpec(3e6, []float64{16, 12, 8, 4})
	got, err := LoadSpec(writeSpec(t, want))
	if err != nil {
		t.Fatalf("LoadSpec: %v", err)
	}
	if got.TeCoreDays != want.TeCoreDays || len(got.Levels) != len(want.Levels) {
		t.Errorf("round trip changed the spec: %+v", got)
	}
}

func TestLoadSpecMissingFile(t *testing.T) {
	if _, err := LoadSpec(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestLoadSpecBadJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSpec(path); !errors.Is(err, ErrCLI) {
		t.Errorf("err = %v", err)
	}
}

func TestLoadSpecInvalidProblem(t *testing.T) {
	bad := mlckpt.PaperSpec(3e6, []float64{16, 12, 8, 4})
	bad.TeCoreDays = -1
	if _, err := LoadSpec(writeSpec(t, bad)); !errors.Is(err, ErrCLI) {
		t.Errorf("err = %v", err)
	}
}

func TestPaperSpecFromFlags(t *testing.T) {
	spec, err := PaperSpecFromFlags(3e6, "16-12-8-4")
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.FailuresPerDay) != 4 || spec.FailuresPerDay[0] != 16 {
		t.Errorf("rates = %v", spec.FailuresPerDay)
	}
	if _, err := PaperSpecFromFlags(0, "16-12-8-4"); !errors.Is(err, ErrCLI) {
		t.Errorf("zero te: %v", err)
	}
	if _, err := PaperSpecFromFlags(1e6, "garbage"); !errors.Is(err, ErrCLI) {
		t.Errorf("bad rates: %v", err)
	}
	if _, err := PaperSpecFromFlags(1e6, "1-2-3"); !errors.Is(err, ErrCLI) {
		t.Errorf("3 levels: %v", err)
	}
}

func TestResolveSpec(t *testing.T) {
	if _, err := ResolveSpec(false, "", 0, ""); !errors.Is(err, ErrCLI) {
		t.Errorf("no source: %v", err)
	}
	spec, err := ResolveSpec(true, "", 2e6, "8-6-4-2")
	if err != nil {
		t.Fatal(err)
	}
	if spec.TeCoreDays != 2e6 {
		t.Errorf("te = %g", spec.TeCoreDays)
	}
	path := writeSpec(t, mlckpt.PaperSpec(1e6, []float64{4, 3, 2, 1}))
	spec, err = ResolveSpec(false, path, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if spec.TeCoreDays != 1e6 {
		t.Errorf("file spec te = %g", spec.TeCoreDays)
	}
	// End-to-end: the resolved spec optimizes.
	if _, err := mlckpt.Optimize(spec, mlckpt.MLOptScale); err != nil {
		t.Errorf("resolved spec does not optimize: %v", err)
	}
}
