package cli

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"

	"mlckpt/internal/obs"
)

// This file is the live-telemetry serving layer behind the CLIs' -serve
// flag: an HTTP mux exposing the current registry as OpenMetrics, a
// health probe, the pprof handlers, and (when a flight recorder is
// attached) a server-sent-events stream of recorder calls.
//
// Serving is strictly read-only over the deterministic state: handlers
// snapshot the registry and render; the only mutation is a volatile
// request counter, so a served run's -metrics-out/-trace-out artifacts
// are byte-identical to an unserved run's after Snapshot.StripVolatile
// (pinned by TestServeComposesWithArtifacts in cmd/experiments).

// ObsMux builds the telemetry mux for one CLI process:
//
//	/metrics      OpenMetrics rendering of the collector's registry
//	/healthz      liveness probe ("ok")
//	/events       server-sent events off the flight recorder (404 when
//	              stream is nil); ?replay=0 skips the ring history
//	/debug/pprof  the standard runtime profiles
//
// Every handled request increments the volatile counter
// "obs.http.requests" — volatile because request arrival is wall-clock
// territory, never part of the deterministic section.
func ObsMux(col *obs.Collector, stream *obs.Stream) *http.ServeMux {
	mux := http.NewServeMux()
	handle := func(pattern string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
			col.CountVolatile("obs.http.requests", 1)
			h(w, r)
		})
	}
	handle("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", obs.OpenMetricsContentType())
		w.Write(col.Registry.Snapshot().OpenMetrics())
	})
	handle("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	handle("/events", func(w http.ResponseWriter, r *http.Request) {
		if stream == nil {
			http.Error(w, "no flight recorder attached", http.StatusNotFound)
			return
		}
		serveSSE(w, r, stream)
	})
	// The pprof handlers are attached by name: this mux must work without
	// the DefaultServeMux side-effect registration.
	handle("/debug/pprof/", pprof.Index)
	handle("/debug/pprof/cmdline", pprof.Cmdline)
	handle("/debug/pprof/profile", pprof.Profile)
	handle("/debug/pprof/symbol", pprof.Symbol)
	handle("/debug/pprof/trace", pprof.Trace)
	return mux
}

// serveSSE streams flight-recorder events to one client until it
// disconnects. Each event is one `data:` line of JSON; lost events appear
// as the stream's own loud "dropped" markers, so a slow client sees the
// gap instead of silently missing it.
func serveSSE(w http.ResponseWriter, r *http.Request, stream *obs.Stream) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	sub := stream.Subscribe(0, r.URL.Query().Get("replay") != "0")
	defer stream.Unsubscribe(sub)
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, open := <-sub.Events():
			if !open {
				return
			}
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "data: %s\n\n", data)
			fl.Flush()
		}
	}
}

// Serve binds addr and serves mux in the background, returning the bound
// listener so callers (and tests, via addr ":0") learn the actual port.
// The server lives until the process exits or the listener is closed.
func Serve(addr string, mux http.Handler) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	return ln, nil
}
