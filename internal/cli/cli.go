// Package cli holds the shared plumbing of the command-line tools:
// loading problem specifications from JSON files and building the paper's
// canonical evaluation problem from flags.
package cli

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"mlckpt"
	"mlckpt/internal/failure"
)

// ErrCLI is returned for unusable inputs.
var ErrCLI = errors.New("cli: invalid input")

// LoadSpec reads a JSON-encoded mlckpt.Spec and validates it.
func LoadSpec(path string) (mlckpt.Spec, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return mlckpt.Spec{}, err
	}
	var spec mlckpt.Spec
	if err := json.Unmarshal(blob, &spec); err != nil {
		return mlckpt.Spec{}, fmt.Errorf("%w: parsing %s: %v", ErrCLI, path, err)
	}
	if _, err := spec.Params(); err != nil {
		return mlckpt.Spec{}, fmt.Errorf("%w: %s: %v", ErrCLI, path, err)
	}
	return spec, nil
}

// PaperSpecFromFlags builds the paper's Section IV problem from the
// -te/-rates flag values.
func PaperSpecFromFlags(teCoreDays float64, ratesSpec string) (mlckpt.Spec, error) {
	if teCoreDays <= 0 {
		return mlckpt.Spec{}, fmt.Errorf("%w: -te must be positive, got %g", ErrCLI, teCoreDays)
	}
	r, err := failure.ParseRates(ratesSpec, 1e6)
	if err != nil {
		return mlckpt.Spec{}, fmt.Errorf("%w: -rates: %v", ErrCLI, err)
	}
	if r.Levels() != 4 {
		return mlckpt.Spec{}, fmt.Errorf("%w: the paper problem has 4 levels, -rates has %d", ErrCLI, r.Levels())
	}
	return mlckpt.PaperSpec(teCoreDays, r.PerDay), nil
}

// ResolveSpec dispatches between -paper and -spec inputs.
func ResolveSpec(paper bool, specPath string, teCoreDays float64, ratesSpec string) (mlckpt.Spec, error) {
	switch {
	case paper:
		return PaperSpecFromFlags(teCoreDays, ratesSpec)
	case specPath != "":
		return LoadSpec(specPath)
	default:
		return mlckpt.Spec{}, fmt.Errorf("%w: need -paper or -spec", ErrCLI)
	}
}
