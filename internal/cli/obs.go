package cli

import (
	"encoding/json"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof handlers for -pprof <addr>
	"os"
	"path/filepath"
	"runtime"
	rtpprof "runtime/pprof"
	"strings"
	"time"

	"mlckpt/internal/obs"
)

// This file is the CLIs' bridge between the deterministic observability
// core (internal/obs) and the nondeterministic outside world: terminals,
// wall clocks, the filesystem, and the pprof runtime. It lives here — not
// in a model package — because everything in it may read real time; the
// model packages are lint-gated against that (see docs/OBSERVABILITY.md).

// IsTerminal reports whether f is an interactive terminal (character
// device). It decides whether progress lines may use carriage returns and
// erase sequences; redirected logs get plain lines instead.
func IsTerminal(f *os.File) bool {
	st, err := f.Stat()
	return err == nil && st.Mode()&os.ModeCharDevice != 0
}

// Progress returns a per-job progress callback writing to w (normally
// os.Stderr). On a terminal it rewrites one status line in place with
// \r/erase sequences; when w is redirected to a file or pipe it degrades
// to a single final "label: N jobs done" line, so logs are not littered
// with escape codes. label prefixes every line; empty labels print bare
// counts.
func Progress(w *os.File, label string) func(done, total int, name string) {
	prefix := label
	if prefix != "" {
		prefix += ": "
	}
	if !IsTerminal(w) {
		return func(done, total int, name string) {
			if done == total {
				fmt.Fprintf(w, "%s%d jobs done\n", prefix, total)
			}
		}
	}
	return func(done, total int, name string) {
		fmt.Fprintf(w, "\r\033[K%s%d/%d %s", prefix, done, total, name)
		if done == total {
			fmt.Fprintf(w, "\r\033[K%s%d jobs done\n", prefix, total)
		}
	}
}

// WriteFileAtomic writes data to path via a temporary file and rename, so
// a crashed or interrupted process never leaves a half-written artifact
// for a consumer (CI validation, trace viewers) to trip over.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}

// WriteMetrics exports the registry's snapshot to path as indented JSON,
// stamping the capture time. The stamp is the snapshot's only wall-clock
// field; comparisons across runs strip it (Snapshot.StripVolatile).
func WriteMetrics(reg *obs.Registry, path string) error {
	snap := reg.Snapshot()
	snap.CapturedUnixNS = time.Now().UnixNano()
	data, err := snap.MarshalIndent()
	if err != nil {
		return err
	}
	return WriteFileAtomic(path, append(data, '\n'))
}

// WriteTrace exports the trace timeline to path as Chrome trace-event
// JSON (open with chrome://tracing or https://ui.perfetto.dev). The bytes
// are a pure function of the recorded events — no wall-clock stamp — so
// equal workloads produce byte-identical files. Compact encoding: traces
// are for viewers and validators, not eyeballs, and can reach thousands
// of events.
func WriteTrace(tr *obs.Trace, path string) error {
	data, err := json.Marshal(tr)
	if err != nil {
		return err
	}
	return WriteFileAtomic(path, append(data, '\n'))
}

// StartPprof enables profiling per the -pprof flag value and returns a
// stop function to defer:
//
//   - target containing ":" (e.g. "localhost:6060"): serves net/http/pprof
//     on that address for live inspection; stop is a no-op (the server
//     dies with the process).
//   - otherwise: treats target as a directory, writes cpu.pprof while the
//     process runs, and heap.pprof at stop.
func StartPprof(target string) (stop func(), err error) {
	if strings.Contains(target, ":") {
		srv := &http.Server{Addr: target}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "pprof server: %v\n", err)
			}
		}()
		return func() {}, nil
	}
	if err := os.MkdirAll(target, 0o755); err != nil {
		return nil, err
	}
	cpu, err := os.Create(filepath.Join(target, "cpu.pprof"))
	if err != nil {
		return nil, err
	}
	if err := rtpprof.StartCPUProfile(cpu); err != nil {
		cpu.Close()
		return nil, err
	}
	return func() {
		rtpprof.StopCPUProfile()
		cpu.Close()
		heap, err := os.Create(filepath.Join(target, "heap.pprof"))
		if err != nil {
			fmt.Fprintf(os.Stderr, "pprof heap: %v\n", err)
			return
		}
		runtime.GC() // publish up-to-date allocation stats before the dump
		if err := rtpprof.WriteHeapProfile(heap); err != nil {
			fmt.Fprintf(os.Stderr, "pprof heap: %v\n", err)
		}
		heap.Close()
	}, nil
}
