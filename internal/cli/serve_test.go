package cli

import (
	"bufio"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"mlckpt/internal/obs"
)

func testCollector() *obs.Collector {
	col := obs.NewCollector()
	col.Count("sim.runs", 7)
	col.Observe("sim.wallclock_days", 12.5)
	col.CountVolatile("sweep.cache.coalesced", 2)
	col.Span("sim/t", "checkpoint", 1, 2, map[string]float64{"level": 1})
	return col
}

func get(t *testing.T, mux http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec
}

func TestObsMuxMetricsIsValidOpenMetrics(t *testing.T) {
	mux := ObsMux(testCollector(), nil)
	rec := get(t, mux, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != obs.OpenMetricsContentType() {
		t.Errorf("content type %q", ct)
	}
	body := rec.Body.Bytes()
	if err := obs.ValidateOpenMetrics(body); err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, body)
	}
	for _, want := range []string{"mlckpt_sim_runs_total 7", "mlckpt_volatile_sweep_cache_coalesced_total 2"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}
}

// TestServingPerturbsOnlyVolatile: handling requests must never change the
// deterministic section — a served run's artifacts stay byte-identical to
// an unserved run's after StripVolatile.
func TestServingPerturbsOnlyVolatile(t *testing.T) {
	col := testCollector()
	before := col.Registry.Snapshot()
	mux := ObsMux(col, obs.NewStream(0))
	for _, path := range []string{"/metrics", "/healthz", "/metrics"} {
		get(t, mux, path)
	}
	after := col.Registry.Snapshot()
	if !reflect.DeepEqual(before.Metrics, after.Metrics) {
		t.Errorf("deterministic section changed by serving:\nbefore %v\nafter  %v", before.Metrics, after.Metrics)
	}
	v, ok := after.VolatileCounter("obs.http.requests")
	if !ok || v != 3 {
		t.Errorf("obs.http.requests = %d, %v (want 3 requests counted)", v, ok)
	}
}

func TestHealthzAndPprof(t *testing.T) {
	mux := ObsMux(testCollector(), nil)
	if rec := get(t, mux, "/healthz"); rec.Code != http.StatusOK || strings.TrimSpace(rec.Body.String()) != "ok" {
		t.Errorf("/healthz: %d %q", rec.Code, rec.Body.String())
	}
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline"} {
		if rec := get(t, mux, path); rec.Code != http.StatusOK {
			t.Errorf("%s: status %d", path, rec.Code)
		}
	}
}

func TestEventsWithoutStreamIs404(t *testing.T) {
	if rec := get(t, ObsMux(testCollector(), nil), "/events"); rec.Code != http.StatusNotFound {
		t.Errorf("/events without a stream: status %d, want 404", rec.Code)
	}
}

// TestEventsStreamsRecorderCalls drives the SSE endpoint over a real
// server: events published before the request arrive via ring replay.
func TestEventsStreamsRecorderCalls(t *testing.T) {
	col := testCollector()
	stream := obs.NewStream(0)
	stream.Count("sim.runs", 1)
	stream.Span("sim/t", "checkpoint", 3, 1, nil)
	srv := httptest.NewServer(ObsMux(col, stream))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var data []string
	for sc.Scan() && len(data) < 2 {
		if line := sc.Text(); strings.HasPrefix(line, "data: ") {
			data = append(data, strings.TrimPrefix(line, "data: "))
		}
	}
	if len(data) < 2 {
		t.Fatalf("got %d SSE events, want 2: %v", len(data), data)
	}
	if !strings.Contains(data[0], `"kind":"count"`) || !strings.Contains(data[1], `"kind":"span"`) {
		t.Errorf("unexpected replayed events: %v", data)
	}
}

func TestServeBindsEphemeralPort(t *testing.T) {
	ln, err := Serve("127.0.0.1:0", ObsMux(testCollector(), nil))
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	resp, err := http.Get(fmt.Sprintf("http://%s/healthz", ln.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz over Serve listener: status %d", resp.StatusCode)
	}
}
