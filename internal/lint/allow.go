package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowSpan is the source extent a directive governs: the outermost
// statement that starts on the directive's line (end-of-line form) or
// on the next line (standalone comment form). Attaching to the full
// statement span — not just a line — is what makes a directive on a
// multi-line wrapped statement, or on a case clause inside a
// switch/select, suppress findings anywhere inside it.
type allowSpan struct {
	check      string
	start, end int // line range, inclusive
}

// allowSet indexes //lint:allow directives for suppression lookups.
type allowSet struct {
	// lines: file -> directive line -> checks. The primitive form: a
	// directive always covers its own line and the line directly below,
	// even where no statement is found (declarations, struct fields).
	lines map[string]map[int][]string
	// spans: file -> statement extents adopted by directives.
	spans map[string][]allowSpan
}

func newAllowSet() *allowSet {
	return &allowSet{
		lines: map[string]map[int][]string{},
		spans: map[string][]allowSpan{},
	}
}

// suppresses reports whether any collected directive covers the finding.
func (s *allowSet) suppresses(f Finding) bool {
	if byLine := s.lines[f.Pos.Filename]; byLine != nil {
		for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
			for _, check := range byLine[line] {
				if check == f.Check {
					return true
				}
			}
		}
	}
	for _, sp := range s.spans[f.Pos.Filename] {
		if sp.check == f.Check && f.Pos.Line >= sp.start && f.Pos.Line <= sp.end {
			return true
		}
	}
	return false
}

// collect parses every //lint:allow directive in the unit into the set.
// Directives must name a known check and carry a non-empty reason;
// violations are returned as findings under the "lintdirective"
// pseudo-check so the escape hatch cannot silently rot.
func (s *allowSet) collect(u *Unit, known map[string]bool) []Finding {
	var bad []Finding
	for _, file := range u.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:allow")
				if !ok {
					continue
				}
				pos := u.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				switch {
				case len(fields) == 0:
					bad = append(bad, directiveFinding(pos, "//lint:allow needs a check name and a reason"))
					continue
				case !known[fields[0]]:
					bad = append(bad, directiveFinding(pos, "//lint:allow names unknown check "+fields[0]))
					continue
				case len(fields) < 2:
					bad = append(bad, directiveFinding(pos, "//lint:allow "+fields[0]+" needs a justification after the check name"))
					continue
				}
				byLine := s.lines[pos.Filename]
				if byLine == nil {
					byLine = map[int][]string{}
					s.lines[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], fields[0])
			}
		}
		s.adoptSpans(u, file)
	}
	return bad
}

// adoptSpans resolves each directive in the file to the outermost
// statement starting on its line or the line below, and records that
// statement's full line extent. Visiting in preorder guarantees the
// outermost of several same-line statements wins.
func (s *allowSet) adoptSpans(u *Unit, file *ast.File) {
	name := u.Fset.Position(file.Pos()).Filename
	byLine := s.lines[name]
	if len(byLine) == 0 {
		return
	}
	claimed := map[int]bool{} // directive line -> statement already adopted
	ast.Inspect(file, func(n ast.Node) bool {
		stmt, ok := n.(ast.Stmt)
		if !ok {
			return true
		}
		start := u.Fset.Position(stmt.Pos()).Line
		end := u.Fset.Position(stmt.End()).Line
		for _, dirLine := range []int{start, start - 1} {
			if claimed[dirLine] {
				continue
			}
			checks, ok := byLine[dirLine]
			if !ok {
				continue
			}
			claimed[dirLine] = true
			for _, check := range checks {
				s.spans[name] = append(s.spans[name], allowSpan{check: check, start: start, end: end})
			}
		}
		return true
	})
}

func directiveFinding(pos token.Position, msg string) Finding {
	return Finding{Check: "lintdirective", Pos: pos, Message: msg}
}
