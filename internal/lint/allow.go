package lint

import (
	"go/token"
	"strings"
)

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	check string
	file  string
	line  int
}

// allowSet indexes directives by file and line for suppression lookups.
type allowSet map[string]map[int][]string // file -> line -> checks allowed

// suppresses reports whether a directive covers the finding. A directive
// applies to findings on its own line (end-of-line form) and on the line
// directly below it (standalone comment form).
func (s allowSet) suppresses(f Finding) bool {
	lines := s[f.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{f.Pos.Line, f.Pos.Line - 1} {
		for _, check := range lines[line] {
			if check == f.Check {
				return true
			}
		}
	}
	return false
}

// collectAllows parses every //lint:allow directive in the unit. Directives
// must name a known check and carry a non-empty reason; violations are
// returned as findings under the "lintdirective" pseudo-check so the
// escape hatch cannot silently rot.
func collectAllows(u *Unit, known map[string]bool) (allowSet, []Finding) {
	set := allowSet{}
	var bad []Finding
	for _, file := range u.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:allow")
				if !ok {
					continue
				}
				pos := u.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				switch {
				case len(fields) == 0:
					bad = append(bad, directiveFinding(pos, "//lint:allow needs a check name and a reason"))
					continue
				case !known[fields[0]]:
					bad = append(bad, directiveFinding(pos, "//lint:allow names unknown check "+fields[0]))
					continue
				case len(fields) < 2:
					bad = append(bad, directiveFinding(pos, "//lint:allow "+fields[0]+" needs a justification after the check name"))
					continue
				}
				byLine := set[pos.Filename]
				if byLine == nil {
					byLine = map[int][]string{}
					set[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], fields[0])
			}
		}
	}
	return set, bad
}

func directiveFinding(pos token.Position, msg string) Finding {
	return Finding{Check: "lintdirective", Pos: pos, Message: msg}
}
