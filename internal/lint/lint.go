// Package lint is mlckpt's project-specific static-analysis suite. The
// paper reproduction is only trustworthy if every simulated run is
// bit-identical regardless of worker count or goroutine scheduling
// (Formulas 21/23/24 and Algorithm 1 are exact model evaluations; the
// golden regression compares rendered output token by token). PR 2 found
// two scheduling-dependence bugs by hand — a shared-variable race in the
// heat test and mpisim collectives priced off the last-arriving rank.
// This package turns that class of defect into machine-checked invariants:
//
//   - nondeterminism: model-bearing packages must not consult wall-clock
//     time, the global math/rand source, or the environment. All
//     randomness flows through the seeded internal/stats RNG and all
//     time through the simulator clock.
//   - maporder: iterating a Go map in an order-sensitive way (float
//     accumulation, building a result slice, emitting output) silently
//     makes results run-dependent; keys must be sorted first.
//   - floateq: ==/!= between floats outside tests defeats the tolerance
//     discipline the golden comparisons rely on.
//   - goroutine-capture: a goroutine launched in a loop that writes a
//     captured shared variable without synchronization is the exact
//     shape of the PR-2 heat-test race.
//
// Everything here is stdlib-only (go/ast, go/parser, go/types, go/build)
// so the linter runs in the tier-1 gate with no module downloads. Findings
// can be suppressed case by case with a justified
//
//	//lint:allow <check> <reason>
//
// comment on the offending line or the line directly above it; directives
// without a reason are themselves findings.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by an analyzer.
type Finding struct {
	Check   string         // analyzer name, e.g. "maporder"
	Pos     token.Position // resolved file:line:col
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Check, f.Message)
}

// Unit is one type-checked compilation unit: a package's files (with its
// in-package tests) or an external _test package.
type Unit struct {
	Fset *token.FileSet
	// Path is the unit's import path relative to the module root, e.g.
	// "internal/sim" ("" for the module root package itself). External
	// test packages carry the suffix "_test".
	Path  string
	Files []*ast.File
	Info  *types.Info
	Pkg   *types.Package
}

// filename returns the file name a node was parsed from.
func (u *Unit) filename(n ast.Node) string {
	return u.Fset.Position(n.Pos()).Filename
}

// isTestFile reports whether the node lives in a _test.go file.
func (u *Unit) isTestFile(n ast.Node) bool {
	return strings.HasSuffix(u.filename(n), "_test.go")
}

// Analyzer is one named check. Per-unit analyzers set Run and see one
// type-checked unit at a time; module-wide analyzers set RunModule and
// receive the intra-module call graph built over every loaded unit
// (callgraph.go). An analyzer sets exactly one of the two.
type Analyzer struct {
	Name      string
	Doc       string
	Run       func(*Unit) []Finding
	RunModule func(*Graph, []*Unit) []Finding
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NondeterminismAnalyzer(),
		MapOrderAnalyzer(),
		FloatEqAnalyzer(),
		GoroutineCaptureAnalyzer(),
		SeedFlowAnalyzer(),
		BatonBlockAnalyzer(),
		HotPathAnalyzer(),
	}
}

// AnalyzerNames returns the names of every registered analyzer.
func AnalyzerNames() []string {
	var names []string
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	return names
}

// Run executes the given analyzers over the units, applies //lint:allow
// suppression, and returns the surviving findings sorted by position.
// Malformed or reasonless allow directives are reported under the
// "lintdirective" pseudo-check. When any module-wide analyzer is
// selected, the call graph is built once and shared.
func Run(units []*Unit, analyzers []*Analyzer) []Finding {
	// Directives are validated against the full registry, not just the
	// analyzers selected for this run, so `-checks floateq` does not
	// misreport a valid //lint:allow maporder as unknown.
	known := map[string]bool{}
	for _, name := range AnalyzerNames() {
		known[name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
	}

	// Allow directives are collected module-wide up front: a module
	// analyzer may report into any file, so suppression cannot be
	// unit-scoped. File names are unique across units, so merging per-
	// unit collections is lossless.
	allows := newAllowSet()
	var out []Finding
	for _, u := range units {
		out = append(out, allows.collect(u, known)...)
	}

	var g *Graph
	for _, a := range analyzers {
		if a.RunModule != nil {
			g = BuildGraph(units)
			// Malformed //mlckpt: markers surface exactly once, like
			// malformed //lint:allow directives.
			out = append(out, g.directiveFindings...)
			break
		}
	}

	for _, a := range analyzers {
		var found []Finding
		switch {
		case a.RunModule != nil:
			found = a.RunModule(g, units)
		default:
			for _, u := range units {
				found = append(found, a.Run(u)...)
			}
		}
		for _, f := range found {
			if allows.suppresses(f) {
				continue
			}
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return out
}
