package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"sort"
	"testing"
)

// fixtureUnit type-checks one in-memory source fixture into a Unit, the
// way the analyzer tests exercise each check without touching disk. The
// fixture file is named fixture.go unless testFile is set (floateq skips
// _test.go files, so that case needs the test name).
func fixtureUnit(t *testing.T, unitPath, src string, testFile bool) *Unit {
	t.Helper()
	name := "fixture.go"
	if testFile {
		name = "fixture_test.go"
	}
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	std := importer.ForCompiler(fset, "gc", nil)
	stdSrc := importer.ForCompiler(fset, "source", nil)
	conf := types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) {
			pkg, err := std.Import(path)
			if err != nil {
				pkg, err = stdSrc.Import(path)
			}
			return pkg, err
		}),
		Error: func(error) {},
	}
	pkg, _ := conf.Check(unitPath, fset, []*ast.File{f}, info)
	return &Unit{Fset: fset, Path: unitPath, Files: []*ast.File{f}, Info: info, Pkg: pkg}
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// checkLines runs the analyzer (through Run, so //lint:allow directives
// apply) and asserts the reported "check:line" pairs.
func checkLines(t *testing.T, u *Unit, a *Analyzer, want map[int][]string) {
	t.Helper()
	got := map[int][]string{}
	for _, f := range Run([]*Unit{u}, []*Analyzer{a}) {
		got[f.Pos.Line] = append(got[f.Pos.Line], f.Check)
	}
	for _, checks := range got {
		sort.Strings(checks)
	}
	for _, checks := range want {
		sort.Strings(checks)
	}
	if len(got) != len(want) {
		t.Fatalf("findings per line: got %v, want %v", got, want)
	}
	for line, checks := range want {
		gotChecks := got[line]
		if len(gotChecks) != len(checks) {
			t.Fatalf("line %d: got %v, want %v (all: %v)", line, gotChecks, checks, got)
		}
		for i := range checks {
			if gotChecks[i] != checks[i] {
				t.Fatalf("line %d: got %v, want %v", line, gotChecks, checks)
			}
		}
	}
}

// TestModuleIsClean is the dogfood gate: the full analyzer suite over the
// whole module must report nothing — every real finding has been fixed or
// carries a justified //lint:allow. This is the same pass `make test` runs.
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	mod, err := FindModule(cwd)
	if err != nil {
		t.Fatal(err)
	}
	units, err := mod.Load([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(units) == 0 {
		t.Fatal("loaded no units")
	}
	findings := Run(units, Analyzers())
	for _, f := range findings {
		t.Errorf("unexpected finding: %s", f)
	}
}

// TestRunSortsFindings pins the deterministic ordering of the report
// itself (the linter must not be a source of run-dependent output).
func TestRunSortsFindings(t *testing.T) {
	const src = `package fixture

import "time"

func a() int64 { return time.Now().Unix() }
func b() int64 { return time.Now().Unix() }
`
	u := fixtureUnit(t, "internal/sim", src, false)
	findings := Run([]*Unit{u}, []*Analyzer{NondeterminismAnalyzer()})
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2", len(findings))
	}
	if findings[0].Pos.Line >= findings[1].Pos.Line {
		t.Fatalf("findings not sorted by line: %v", findings)
	}
}

func TestAnalyzerNames(t *testing.T) {
	want := []string{"nondeterminism", "maporder", "floateq", "goroutine-capture", "seedflow", "batonblock", "hotpath"}
	got := AnalyzerNames()
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}
