package lint

import "testing"

func TestFloatEq(t *testing.T) {
	cases := []struct {
		name     string
		src      string
		testFile bool
		want     map[int][]string
	}{
		{
			name: "equality and inequality between floats",
			src: `package fixture

func bad(a, b float64) (bool, bool) {
	return a == b, a != b
}
`,
			want: map[int][]string{4: {"floateq", "floateq"}},
		},
		{
			name: "float32 operands are covered",
			src: `package fixture

func bad(a, b float32) bool { return a == b }
`,
			want: map[int][]string{3: {"floateq"}},
		},
		{
			name: "mixed untyped constant comparison",
			src: `package fixture

func bad(a float64) bool { return a == 0.25 }
`,
			want: map[int][]string{3: {"floateq"}},
		},
		{
			name: "comparison with exact zero is the sanctioned sentinel",
			src: `package fixture

func ok(a float64) (bool, bool) { return a == 0, a != 0.0 }
`,
			want: map[int][]string{},
		},
		{
			name: "compile-time constant comparison is exact",
			src: `package fixture

const eps = 1e-9

func ok() bool { return eps == 1e-9 }
`,
			want: map[int][]string{},
		},
		{
			name: "integer and string comparisons are not flagged",
			src: `package fixture

func ok(a, b int, s string) bool { return a == b && s != "x" }
`,
			want: map[int][]string{},
		},
		{
			name: "ordered comparisons are not equality",
			src: `package fixture

func ok(a, b float64) bool { return a < b || a >= b }
`,
			want: map[int][]string{},
		},
		{
			name: "test files are exempt (golden asserts use tolerances already)",
			src: `package fixture

func helper(a, b float64) bool { return a == b }
`,
			testFile: true,
			want:     map[int][]string{},
		},
		{
			name: "allow directive with justification suppresses",
			src: `package fixture

func annotated(a, b float64) bool {
	//lint:allow floateq both sides are copies of one assigned value, identity is intended
	return a == b
}
`,
			want: map[int][]string{},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			u := fixtureUnit(t, "internal/model", tc.src, tc.testFile)
			checkLines(t, u, FloatEqAnalyzer(), tc.want)
		})
	}
}
