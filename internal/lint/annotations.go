package lint

import (
	"go/ast"
	"strings"
)

// Machine-checked source annotations. The linter's module-wide analyzers
// are driven by three //mlckpt: markers placed in a function's doc
// comment (see docs/LINT.md for the full contract):
//
//	//mlckpt:hotpath
//	    The function is a proven zero-steady-state-allocation surface.
//	    The hotpath analyzer checks its body for allocation idioms and
//	    cmd/allocgate pins its compiler escape diagnostics to
//	    allocgate.baseline.
//
//	//mlckpt:fiber
//	    The function runs as a cooperative continuation (an event-engine
//	    fiber or an event-queue callback). The batonblock analyzer
//	    proves no blocking operation is reachable from it.
//
//	//mlckpt:baton <reason>
//	    The function is a sanctioned scheduler blocking primitive — the
//	    baton handoff itself. batonblock does not descend into it. The
//	    reason is mandatory, like //lint:allow.
//
// Unknown //mlckpt: markers and reasonless baton markers are reported
// under the "lintdirective" pseudo-check so a typo cannot silently
// disable a gate.

const (
	markerHotpath = "hotpath"
	markerFiber   = "fiber"
	markerBaton   = "baton"
)

// funcMarks is the parsed annotation state of one function declaration.
type funcMarks struct {
	hotpath     bool
	fiber       bool
	baton       bool
	batonReason string
}

// parseFuncMarks reads the //mlckpt: markers from a declaration's doc
// comment. Malformed markers are reported as lintdirective findings.
func parseFuncMarks(u *Unit, decl *ast.FuncDecl) (funcMarks, []Finding) {
	var marks funcMarks
	var bad []Finding
	if decl.Doc == nil {
		return marks, nil
	}
	for _, c := range decl.Doc.List {
		rest, ok := strings.CutPrefix(c.Text, "//mlckpt:")
		if !ok {
			continue
		}
		pos := u.Fset.Position(c.Pos())
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			bad = append(bad, directiveFinding(pos, "//mlckpt: needs a marker name (hotpath, fiber, or baton)"))
			continue
		}
		switch fields[0] {
		case markerHotpath:
			marks.hotpath = true
		case markerFiber:
			marks.fiber = true
		case markerBaton:
			if len(fields) < 2 {
				bad = append(bad, directiveFinding(pos, "//mlckpt:baton needs a justification after the marker"))
				continue
			}
			marks.baton = true
			marks.batonReason = strings.Join(fields[1:], " ")
		default:
			bad = append(bad, directiveFinding(pos, "//mlckpt: names unknown marker "+fields[0]+" (have hotpath, fiber, baton)"))
		}
	}
	return marks, bad
}
