package lint

import (
	"strings"
	"testing"
)

func TestBatonBlock(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want map[int][]string
	}{
		{
			name: "direct blocking ops in a fiber",
			src: `package fixture

import "time"

//mlckpt:fiber
func Step(ch chan int) {
	time.Sleep(1)
	ch <- 1
	<-ch
}
`,
			want: map[int][]string{7: {"batonblock"}, 8: {"batonblock"}, 9: {"batonblock"}},
		},
		{
			name: "blocking reached through a call chain",
			src: `package fixture

//mlckpt:fiber
func Step(ch chan int) {
	helper(ch)
}

func helper(ch chan int) {
	inner(ch)
}

func inner(ch chan int) {
	<-ch
}
`,
			want: map[int][]string{13: {"batonblock"}},
		},
		{
			name: "baton-marked callee is the traversal boundary",
			src: `package fixture

//mlckpt:fiber
func Step(ch chan struct{}) {
	park(ch)
}

//mlckpt:baton sanctioned hand-off of this fixture
func park(ch chan struct{}) {
	<-ch
}
`,
			want: map[int][]string{},
		},
		{
			name: "select and sync primitives count as blocking",
			src: `package fixture

import "sync"

//mlckpt:fiber
func Step(ch chan int, mu *sync.Mutex, wg *sync.WaitGroup) {
	select {
	case <-ch:
	}
	mu.Lock()
	wg.Wait()
}
`,
			want: map[int][]string{7: {"batonblock"}, 10: {"batonblock"}, 11: {"batonblock"}},
		},
		{
			name: "fork-join worker pool is structurally exempt",
			src: `package fixture

import "sync"

//mlckpt:fiber
func Step(items []int) {
	var wg sync.WaitGroup
	ch := make(chan int, len(items))
	for range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-ch
		}()
		ch <- 1
	}
	wg.Wait()
}
`,
			want: map[int][]string{},
		},
		{
			name: "bounded critical section is structurally exempt",
			src: `package fixture

import "sync"

//mlckpt:fiber
func Step(mu *sync.Mutex) int {
	mu.Lock()
	defer mu.Unlock()
	return 1
}
`,
			want: map[int][]string{},
		},
		{
			name: "function literal passed through the caller is walked",
			src: `package fixture

//mlckpt:fiber
func Step(ch chan int) {
	run(func() {
		<-ch
	})
}

func run(f func()) { f() }
`,
			want: map[int][]string{6: {"batonblock"}},
		},
		{
			name: "unmarked functions are not roots",
			src: `package fixture

func NotAFiber(ch chan int) {
	<-ch
}
`,
			want: map[int][]string{},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			u := fixtureUnit(t, "internal/mpisim", tc.src, false)
			checkLines(t, u, BatonBlockAnalyzer(), tc.want)
		})
	}
}

// TestBatonBlockPathInDiagnostic pins that the message names the root and
// the call chain that reaches the blocking op.
func TestBatonBlockPathInDiagnostic(t *testing.T) {
	src := `package fixture

//mlckpt:fiber
func Entry(ch chan int) {
	mid(ch)
}

func mid(ch chan int) { leaf(ch) }

func leaf(ch chan int) { <-ch }
`
	u := fixtureUnit(t, "internal/mpisim", src, false)
	findings := Run([]*Unit{u}, []*Analyzer{BatonBlockAnalyzer()})
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(findings), findings)
	}
	msg := findings[0].Message
	for _, needle := range []string{"Entry", "Entry -> mid -> leaf", "//mlckpt:baton"} {
		if !strings.Contains(msg, needle) {
			t.Errorf("message %q does not mention %q", msg, needle)
		}
	}
}
