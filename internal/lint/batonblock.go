package lint

import (
	"fmt"
	"strings"
)

// batonblock proves the event scheduler's core liveness invariant: a
// fiber continuation must never block. The cooperative engine in
// internal/mpisim/event.go runs every rank on ONE goroutine, handing a
// baton between fibers — if any code reachable from a fiber performs a
// channel operation, takes a lock, or sleeps, the whole scheduler (and
// with it the simulated machine) wedges. PR 7 documented this as prose;
// this analyzer checks it.
//
// Roots are functions annotated //mlckpt:fiber (the event-engine
// continuations and eventq callbacks). From each root the analyzer
// walks the module call graph — through static calls, function
// literals, and structural interface fan-out — and reports every
// blocking operation it can reach, with the call path that reaches it.
//
// Two escapes keep the check precise:
//
//   - //mlckpt:baton <reason> marks a sanctioned scheduler primitive
//     (the baton hand-off itself, or a goroutine-oracle rendezvous).
//     Traversal does not descend into it.
//   - The graph's structural exemptions (fork-join worker pools whose
//     channels drain unconditionally, Lock/Unlock bounded critical
//     sections) already remove blocking operations that cannot park a
//     fiber; see effectiveBlocking in callgraph.go.

const batonPathMax = 6 // call-path hops shown in a diagnostic

// BatonBlockAnalyzer returns the module-wide fiber-blocking check.
func BatonBlockAnalyzer() *Analyzer {
	return &Analyzer{
		Name:      "batonblock",
		Doc:       "blocking operation (chan/select/lock/sleep) reachable from an //mlckpt:fiber entry point of the single-goroutine event scheduler",
		RunModule: runBatonBlock,
	}
}

func runBatonBlock(g *Graph, units []*Unit) []Finding {
	var roots []*FuncNode
	for _, n := range g.Nodes() { // sorted: deterministic root order
		if n.marks.fiber {
			roots = append(roots, n)
		}
	}
	var out []Finding
	reported := map[string]bool{} // file:line:col -> already reported (first root wins)
	for _, root := range roots {
		visited := map[string]bool{}
		walkFromFiber(g, root, []*FuncNode{root}, visited, reported, &out)
	}
	return out
}

// walkFromFiber DFS-walks the call graph from a fiber root, reporting
// blocking operations. path holds the nodes from the root to cur,
// inclusive.
func walkFromFiber(g *Graph, cur *FuncNode, path []*FuncNode, visited, reported map[string]bool, out *[]Finding) {
	if visited[cur.Symbol] {
		return
	}
	visited[cur.Symbol] = true

	root := path[0]
	for _, op := range cur.Blocking {
		pos := cur.Unit.Fset.Position(op.Pos)
		key := pos.String()
		if reported[key] {
			continue
		}
		reported[key] = true
		*out = append(*out, Finding{
			Check: "batonblock",
			Pos:   pos,
			Message: fmt.Sprintf(
				"%s is reachable from fiber entry point %s (%s); a fiber blocking here parks the scheduler's only goroutine — restructure as an event, or mark a sanctioned primitive //mlckpt:baton <reason>",
				op.Desc, root.Name, pathString(path)),
		})
	}

	for _, cs := range cur.Calls {
		for _, callee := range g.Callees(cs) {
			if callee.marks.baton {
				continue // sanctioned hand-off primitive: the boundary of the check
			}
			// Copy the path: siblings must not alias one growing slice.
			next := append(append([]*FuncNode(nil), path...), callee)
			walkFromFiber(g, callee, next, visited, reported, out)
		}
	}
}

// pathString renders a call path for a diagnostic, eliding the middle of
// long chains.
func pathString(path []*FuncNode) string {
	names := make([]string, 0, len(path))
	for _, n := range path {
		names = append(names, n.Name)
	}
	if len(names) > batonPathMax {
		head := names[:batonPathMax-2]
		names = append(append(head, "..."), names[len(names)-1])
	}
	return strings.Join(names, " -> ")
}
