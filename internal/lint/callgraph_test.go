package lint

import (
	"sort"
	"strings"
	"testing"
)

// calleeNames resolves a node's call sites through the graph and returns
// the sorted set of callee symbols.
func calleeNames(g *Graph, sym string) []string {
	n := g.Node(sym)
	if n == nil {
		return nil
	}
	set := map[string]bool{}
	for _, cs := range n.Calls {
		for _, c := range g.Callees(cs) {
			set[c.Symbol] = true
		}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func TestCallGraphStaticEdges(t *testing.T) {
	src := `package fixture

func top() { mid() }
func mid() { leaf() }
func leaf() {}
`
	u := fixtureUnit(t, "internal/sim", src, false)
	g := BuildGraph([]*Unit{u})
	got := calleeNames(g, "internal/sim.top")
	if len(got) != 1 || got[0] != "internal/sim.mid" {
		t.Fatalf("top callees = %v, want [internal/sim.mid]", got)
	}
	if n := g.Node("internal/sim.leaf"); n == nil {
		t.Fatal("leaf not in graph")
	}
}

func TestCallGraphInterfaceFanOut(t *testing.T) {
	src := `package fixture

type runner interface{ Go(x int) }

type a struct{}
type b struct{}
type other struct{}

func (a) Go(x int)        {}
func (b) Go(x int)        {}
func (other) Go(x, y int) {} // different arity: not a candidate

func dispatch(r runner) { r.Go(1) }
`
	u := fixtureUnit(t, "internal/sim", src, false)
	g := BuildGraph([]*Unit{u})
	got := calleeNames(g, "internal/sim.dispatch")
	want := []string{"internal/sim.a.Go", "internal/sim.b.Go"}
	if len(got) != len(want) {
		t.Fatalf("dispatch callees = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch callees = %v, want %v", got, want)
		}
	}
}

func TestCallGraphFuncLitOwnerAndGoExclusion(t *testing.T) {
	src := `package fixture

func host(ch chan int) {
	called := func() { <-ch }
	called()
	go func() { <-ch }()
}
`
	u := fixtureUnit(t, "internal/sim", src, false)
	g := BuildGraph([]*Unit{u})
	host := g.Node("internal/sim.host")
	if host == nil {
		t.Fatal("host not in graph")
	}
	if !host.hasGo {
		t.Error("go statement not recorded on host")
	}
	var lits []*FuncNode
	for _, n := range g.Nodes() {
		if n.Lit != nil {
			lits = append(lits, n)
			if n.owner != host {
				t.Errorf("literal %s has owner %v, want host", n.Symbol, n.owner)
			}
		}
	}
	// The invoked literal gets a node and a call edge; the go-launched
	// one runs on its own goroutine — it gets neither, so it cannot
	// contribute to fiber reachability.
	if len(lits) != 1 {
		t.Fatalf("got %d literal nodes, want 1 (go-launched literal excluded)", len(lits))
	}
	callees := calleeNames(g, "internal/sim.host")
	if len(callees) != 1 || !strings.Contains(callees[0], "lit") {
		t.Fatalf("host callees = %v, want exactly the invoked literal", callees)
	}
}

func TestCallGraphNodesDeterministic(t *testing.T) {
	src := `package fixture

func c() {}
func a() {}
func b() {}
`
	u := fixtureUnit(t, "internal/sim", src, false)
	g := BuildGraph([]*Unit{u})
	nodes := g.Nodes()
	for i := 1; i < len(nodes); i++ {
		if nodes[i-1].Symbol >= nodes[i].Symbol {
			t.Fatalf("Nodes() not sorted: %q before %q", nodes[i-1].Symbol, nodes[i].Symbol)
		}
	}
}
