package lint

import "testing"

func TestNondeterminism(t *testing.T) {
	cases := []struct {
		name string
		path string // unit path the fixture pretends to live in
		src  string
		want map[int][]string
	}{
		{
			name: "wall clock and environment in a model package",
			path: "internal/sim",
			src: `package fixture

import (
	"os"
	"time"
)

func bad() {
	start := time.Now()
	_ = time.Since(start)
	_ = os.Getenv("SEED")
}
`,
			want: map[int][]string{
				9:  {"nondeterminism"},
				10: {"nondeterminism"},
				11: {"nondeterminism"},
			},
		},
		{
			name: "global rand source banned, seeded constructor allowed",
			path: "internal/experiments",
			src: `package fixture

import "math/rand"

func bad() int {
	r := rand.New(rand.NewSource(7))
	rand.Shuffle(3, func(i, j int) {})
	return r.Intn(10) + rand.Intn(10)
}
`,
			want: map[int][]string{
				7: {"nondeterminism"},
				8: {"nondeterminism"},
			},
		},
		{
			name: "same calls outside model packages are fine",
			path: "internal/render",
			src: `package fixture

import "time"

func ok() int64 { return time.Now().Unix() }
`,
			want: map[int][]string{},
		},
		{
			name: "subpackage of a model package is covered",
			path: "internal/sim/deep",
			src: `package fixture

import "time"

func bad() int64 { return time.Now().Unix() }
`,
			want: map[int][]string{5: {"nondeterminism"}},
		},
		{
			name: "external test package of a model package is covered",
			path: "internal/mpisim_test",
			src: `package fixture

import "time"

func bad() int64 { return time.Now().Unix() }
`,
			want: map[int][]string{5: {"nondeterminism"}},
		},
		{
			name: "allow directive on the line above suppresses",
			path: "internal/sim",
			src: `package fixture

import "time"

func annotated() int64 {
	//lint:allow nondeterminism progress logging only, never feeds the model
	return time.Now().Unix()
}
`,
			want: map[int][]string{},
		},
		{
			name: "end-of-line allow directive suppresses",
			path: "internal/sim",
			src: `package fixture

import "time"

func annotated() int64 {
	return time.Now().Unix() //lint:allow nondeterminism progress logging only, never feeds the model
}
`,
			want: map[int][]string{},
		},
		{
			name: "allow naming the wrong check does not suppress",
			path: "internal/sim",
			src: `package fixture

import "time"

func annotated() int64 {
	//lint:allow floateq wrong check name
	return time.Now().Unix()
}
`,
			want: map[int][]string{7: {"nondeterminism"}},
		},
		{
			name: "allow without a reason is itself a finding",
			path: "internal/sim",
			src: `package fixture

import "time"

func annotated() int64 {
	//lint:allow nondeterminism
	return time.Now().Unix()
}
`,
			want: map[int][]string{6: {"lintdirective"}, 7: {"nondeterminism"}},
		},
		{
			name: "allow naming an unknown check is itself a finding",
			path: "internal/sim",
			src: `package fixture

func fine() {} //lint:allow nosuchcheck because reasons
`,
			want: map[int][]string{3: {"lintdirective"}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			u := fixtureUnit(t, tc.path, tc.src, false)
			checkLines(t, u, NondeterminismAnalyzer(), tc.want)
		})
	}
}
