package lint

import "testing"

func TestMapOrder(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want map[int][]string
	}{
		{
			name: "append to a result slice in map order",
			src: `package fixture

func bad(m map[string]float64) []float64 {
	var out []float64
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
`,
			want: map[int][]string{5: {"maporder"}},
		},
		{
			name: "collect keys then sort is the sanctioned idiom",
			src: `package fixture

import "sort"

func ok(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
`,
			want: map[int][]string{},
		},
		{
			name: "collect keys then slices.Sort also passes",
			src: `package fixture

import "slices"

func ok(m map[string]float64) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}
`,
			want: map[int][]string{},
		},
		{
			name: "float accumulation is order-dependent",
			src: `package fixture

func bad(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}
`,
			want: map[int][]string{5: {"maporder"}},
		},
		{
			name: "self-referential float update is order-dependent",
			src: `package fixture

func bad(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum = sum + v
	}
	return sum
}
`,
			want: map[int][]string{5: {"maporder"}},
		},
		{
			name: "integer accumulation is associative and fine",
			src: `package fixture

func ok(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
`,
			want: map[int][]string{},
		},
		{
			name: "string concatenation is order-dependent",
			src: `package fixture

func bad(m map[string]string) string {
	var s string
	for _, v := range m {
		s += v
	}
	return s
}
`,
			want: map[int][]string{5: {"maporder"}},
		},
		{
			name: "printing from the loop emits in map order",
			src: `package fixture

import "fmt"

func bad(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v)
	}
}
`,
			want: map[int][]string{6: {"maporder"}},
		},
		{
			name: "writer methods count as output",
			src: `package fixture

import "strings"

func bad(m map[string]string) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k)
	}
	return b.String()
}
`,
			want: map[int][]string{7: {"maporder"}},
		},
		{
			name: "channel send leaks map order",
			src: `package fixture

func bad(m map[string]int, ch chan int) {
	for _, v := range m {
		ch <- v
	}
}
`,
			want: map[int][]string{4: {"maporder"}},
		},
		{
			name: "map-keyed writes are order-independent",
			src: `package fixture

func ok(m map[string]float64) map[string]float64 {
	out := map[string]float64{}
	for k, v := range m {
		out[k] = 2 * v
	}
	return out
}
`,
			want: map[int][]string{},
		},
		{
			name: "range over a slice is never flagged",
			src: `package fixture

func ok(xs []float64) float64 {
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return sum
}
`,
			want: map[int][]string{},
		},
		{
			name: "max and min scans are order-independent reads",
			src: `package fixture

func ok(m map[string]float64) float64 {
	best := -1.0
	var name string
	for k, v := range m {
		if v > best {
			best, name = v, k
		}
	}
	_ = name
	return best
}
`,
			want: map[int][]string{},
		},
		{
			name: "allow on the range line suppresses the loop",
			src: `package fixture

import "fmt"

func annotated(m map[string]int) {
	for k := range m { //lint:allow maporder debug dump, order is irrelevant to the reader
		fmt.Println(k)
	}
}
`,
			want: map[int][]string{},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			u := fixtureUnit(t, "internal/experiments", tc.src, false)
			checkLines(t, u, MapOrderAnalyzer(), tc.want)
		})
	}
}
