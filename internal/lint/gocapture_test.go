package lint

import "testing"

func TestGoroutineCapture(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want map[int][]string
	}{
		{
			name: "captured scalar written from loop goroutines (the heat-test race shape)",
			src: `package fixture

func bad(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		go func() {
			sum += x
		}()
	}
	return sum
}
`,
			want: map[int][]string{7: {"goroutine-capture"}},
		},
		{
			name: "captured error variable written from goroutines",
			src: `package fixture

import "fmt"

func bad(n int) error {
	var firstErr error
	for i := 0; i < n; i++ {
		go func() {
			firstErr = fmt.Errorf("boom %d", i)
		}()
	}
	return firstErr
}
`,
			want: map[int][]string{9: {"goroutine-capture"}},
		},
		{
			name: "per-index slice writes are the sanctioned worker-pool idiom",
			src: `package fixture

func ok(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		go func() {
			out[i] = 2 * x
		}()
	}
	return out
}
`,
			want: map[int][]string{},
		},
		{
			name: "captured map writes crash under concurrency",
			src: `package fixture

func bad(xs []string) map[string]int {
	out := map[string]int{}
	for _, x := range xs {
		go func() {
			out[x] = len(x)
		}()
	}
	return out
}
`,
			want: map[int][]string{7: {"goroutine-capture"}},
		},
		{
			name: "mutex-guarded writes are not flagged",
			src: `package fixture

import "sync"

func ok(xs []float64) float64 {
	var mu sync.Mutex
	var sum float64
	for _, x := range xs {
		go func() {
			mu.Lock()
			sum += x
			mu.Unlock()
		}()
	}
	return sum
}
`,
			want: map[int][]string{},
		},
		{
			name: "channel results are not flagged",
			src: `package fixture

func ok(xs []float64, ch chan float64) {
	for _, x := range xs {
		go func() {
			ch <- 2 * x
		}()
	}
}
`,
			want: map[int][]string{},
		},
		{
			name: "goroutine outside any loop is not this defect class",
			src: `package fixture

func ok() int {
	x := 0
	go func() {
		x = 1
	}()
	return x
}
`,
			want: map[int][]string{},
		},
		{
			name: "per-iteration locals belong to one goroutine each",
			src: `package fixture

func ok(xs []float64) {
	for range xs {
		local := 0.0
		go func() {
			local = 1
			_ = local
		}()
	}
}
`,
			want: map[int][]string{},
		},
		{
			name: "writes through a captured pointer are shared state",
			src: `package fixture

func bad(xs []float64, total *float64) {
	for _, x := range xs {
		go func() {
			*total += x
		}()
	}
}
`,
			want: map[int][]string{6: {"goroutine-capture"}},
		},
		{
			// The erasure encoder's striped-chunk worker pattern
			// (internal/erasure.(*Code).mulRows): a fixed pool of goroutines
			// pulls chunk indexes from a channel and writes disjoint [lo, hi)
			// ranges of shared slices. Element writes computed from the pulled
			// index are the per-range sibling of the per-slot idiom and must
			// stay silent.
			name: "striped-chunk workers writing disjoint index ranges are sanctioned",
			src: `package fixture

func ok(src, dst []byte, chunk, workers int) {
	next := make(chan int)
	for w := 0; w < workers; w++ {
		go func() {
			for ci := range next {
				for i := ci * chunk; i < (ci+1)*chunk && i < len(dst); i++ {
					dst[i] = src[i] + 1
				}
			}
		}()
	}
	for ci := 0; ci*chunk < len(dst); ci++ {
		next <- ci
	}
	close(next)
}
`,
			want: map[int][]string{},
		},
		{
			name: "striped-chunk workers delegating writes to a kernel call are sanctioned",
			src: `package fixture

func kernel(dst []byte, lo, hi int) {
	for i := lo; i < hi; i++ {
		dst[i] = 0
	}
}

func ok(dst []byte, chunk, workers int) {
	next := make(chan int)
	for w := 0; w < workers; w++ {
		go func() {
			for ci := range next {
				kernel(dst, ci*chunk, (ci+1)*chunk)
			}
		}()
	}
	close(next)
}
`,
			want: map[int][]string{},
		},
		{
			name: "striped workers still flagged when they write a captured scalar",
			src: `package fixture

func bad(dst []byte, chunk, workers int) int {
	done := 0
	next := make(chan int)
	for w := 0; w < workers; w++ {
		go func() {
			for ci := range next {
				_ = ci
				done++
			}
		}()
	}
	close(next)
	return done
}
`,
			want: map[int][]string{10: {"goroutine-capture"}},
		},
		{
			name: "allow directive keeps a justified exception",
			src: `package fixture

func annotated(xs []float64) float64 {
	var last float64
	for _, x := range xs {
		go func() {
			last = x //lint:allow goroutine-capture deliberate racy sampling for a progress gauge, never feeds results
		}()
	}
	return last
}
`,
			want: map[int][]string{},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			u := fixtureUnit(t, "internal/sweep", tc.src, false)
			checkLines(t, u, GoroutineCaptureAnalyzer(), tc.want)
		})
	}
}
