package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// parents records every node's parent within a file so analyzers can walk
// outward (to the enclosing loop, function, or file) from a match.
type parents map[ast.Node]ast.Node

func newParents(file *ast.File) parents {
	return newParentsOf(file)
}

// newParentsOf builds the parent map for an arbitrary subtree (used by
// hotpath, which only needs one function body at a time).
func newParentsOf(root ast.Node) parents {
	p := parents{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			p[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return p
}

// enclosingFunc returns the innermost FuncDecl or FuncLit containing n,
// or nil when n is at file scope.
func (p parents) enclosingFunc(n ast.Node) ast.Node {
	for cur := p[n]; cur != nil; cur = p[cur] {
		switch cur.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return cur
		}
	}
	return nil
}

// enclosingLoop returns the innermost for/range statement containing n
// without crossing a function boundary, or nil.
func (p parents) enclosingLoop(n ast.Node) ast.Node {
	for cur := p[n]; cur != nil; cur = p[cur] {
		switch cur.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return cur
		case *ast.FuncDecl, *ast.FuncLit:
			return nil
		}
	}
	return nil
}

// pkgPathOfIdent resolves an identifier to the import path of the package
// it names, or "" when it is not a package qualifier. It consults type
// information first and falls back to the file's import table so the
// check still works in files whose type checking degraded.
func pkgPathOfIdent(u *Unit, file *ast.File, id *ast.Ident) string {
	if obj, ok := u.Info.Uses[id]; ok {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn.Imported().Path()
		}
		return "" // a real object shadows any import name
	}
	// Fallback: match against the file's imports by explicit local name
	// or by the path's last element.
	for _, imp := range file.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := path[strings.LastIndex(path, "/")+1:]
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == id.Name {
			return path
		}
	}
	return ""
}

// isFloat reports whether t's underlying type is a floating-point basic
// type (float32/float64 or an untyped float constant).
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isString reports whether t's underlying type is a string type.
func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isMap reports whether t's underlying type is a map.
func isMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// declaredOutside reports whether the object bound to id was declared
// outside the [lo, hi) node span. Unresolved identifiers (degraded type
// info) are treated as declared outside, which errs toward reporting.
func declaredOutside(u *Unit, id *ast.Ident, span ast.Node) bool {
	obj := u.Info.Uses[id]
	if obj == nil {
		obj = u.Info.Defs[id]
	}
	if obj == nil {
		return true
	}
	pos := obj.Pos()
	return pos < span.Pos() || pos >= span.End()
}

// rootIdent walks to the base identifier of an lvalue chain like
// a.b[i].c, returning nil for expressions not rooted in an identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}
