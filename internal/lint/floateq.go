package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
)

// FloatEqAnalyzer flags == and != between floating-point operands outside
// test files. The golden regression compares every reproduced number with
// relative tolerance for a reason: exact float equality either works by
// accident or breaks the moment an optimization reorders an expression.
// Comparisons where one side is the exact constant zero are allowed —
// zero is exactly representable and `x == 0` is the idiomatic sentinel /
// division guard in the numeric code.
func FloatEqAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "floateq",
		Doc:  "flag ==/!= between floating-point operands outside test files",
		Run:  runFloatEq,
	}
}

func runFloatEq(u *Unit) []Finding {
	var out []Finding
	for _, file := range u.Files {
		if u.isTestFile(file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xt, yt := u.Info.Types[be.X], u.Info.Types[be.Y]
			if !isFloat(xt.Type) && !isFloat(yt.Type) {
				return true
			}
			if xt.Value != nil && yt.Value != nil {
				return true // compile-time constant comparison is exact
			}
			if isExactZero(xt.Value) || isExactZero(yt.Value) {
				return true
			}
			out = append(out, Finding{
				Check: "floateq",
				Pos:   u.Fset.Position(be.OpPos),
				Message: "floating-point " + be.Op.String() +
					" comparison; use a relative-tolerance check (the golden comparisons use 1e-9) or //lint:allow with the exactness argument",
			})
			return true
		})
	}
	return out
}

// isExactZero reports whether v is a known constant equal to zero.
func isExactZero(v constant.Value) bool {
	if v == nil || v.Kind() == constant.Unknown {
		return false
	}
	switch v.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(v) == 0
	}
	return false
}
