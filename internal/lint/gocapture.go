package lint

import (
	"fmt"
	"go/ast"
)

// GoroutineCaptureAnalyzer flags goroutines launched inside a loop whose
// closures write a variable captured from outside the loop without an
// obvious synchronization primitive — the exact shape of the data race
// PR 2 found by hand in the heat test. The safe idioms stay silent:
// writing a distinct slice element per goroutine (results[i] = ...),
// passing values as closure parameters, sending on a channel, or locking
// a mutex inside the closure. The slice-element exemption also covers the
// striped-chunk worker pattern (internal/erasure.(*Code).mulRows), where
// pool workers pull chunk indexes from a channel and write disjoint
// [lo, hi) ranges of shared shards — per-range rather than per-slot, but
// the same ownership discipline; the workers=1 vs workers=N determinism
// tests and the race gate keep that discipline honest.
func GoroutineCaptureAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "goroutine-capture",
		Doc:  "flag loop-launched goroutines writing captured shared variables without synchronization",
		Run:  runGoroutineCapture,
	}
}

func runGoroutineCapture(u *Unit) []Finding {
	var out []Finding
	for _, file := range u.Files {
		par := newParents(file)
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			loop := par.enclosingLoop(gs)
			if loop == nil {
				return true
			}
			lit, ok := gs.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true // named function: its body is checked where it is defined
			}
			if locksInside(lit) {
				return true
			}
			out = append(out, capturedWrites(u, loop, lit)...)
			return true
		})
	}
	return out
}

// locksInside reports whether the closure acquires a lock anywhere —
// a deliberately coarse signal that the writes are synchronized; the
// race detector gate remains the ground truth.
func locksInside(lit *ast.FuncLit) bool {
	locked := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock" {
					locked = true
				}
			}
		}
		return !locked
	})
	return locked
}

// capturedWrites reports writes inside the go-closure whose targets are
// declared outside the enclosing loop statement.
func capturedWrites(u *Unit, loop ast.Node, lit *ast.FuncLit) []Finding {
	var out []Finding
	check := func(n ast.Node, lhs ast.Expr) {
		if f, ok := sharedWrite(u, loop, lit, lhs); ok {
			out = append(out, Finding{
				Check:   "goroutine-capture",
				Pos:     u.Fset.Position(n.Pos()),
				Message: f,
			})
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range stmt.Lhs {
				check(stmt, lhs)
			}
		case *ast.IncDecStmt:
			check(stmt, stmt.X)
		}
		return true
	})
	return out
}

// sharedWrite classifies one lvalue written inside the closure. Slice and
// array element writes are exempt (the coordinated per-index idiom used
// by the sweep and simulator worker pools); everything else rooted in an
// identifier declared outside the loop is a shared write.
func sharedWrite(u *Unit, loop ast.Node, lit *ast.FuncLit, lhs ast.Expr) (string, bool) {
	id := rootIdent(lhs)
	if id == nil || id.Name == "_" {
		return "", false
	}
	if !declaredOutside(u, id, loop) {
		return "", false // per-iteration variable: each goroutine has its own
	}
	if ix, ok := lhs.(*ast.IndexExpr); ok {
		t := u.Info.TypeOf(ix.X)
		if t != nil && !isMap(t) {
			return "", false // distinct-slice-slot idiom: safe by construction
		}
		if isMap(t) {
			return fmt.Sprintf("goroutine launched in a loop writes captured map %q: concurrent map writes crash; send results on a channel or lock a mutex", id.Name), true
		}
	}
	return fmt.Sprintf("goroutine launched in a loop writes captured variable %q without synchronization (the PR-2 heat-test race shape); write to a per-iteration slot, send on a channel, or guard with a mutex", id.Name), true
}
