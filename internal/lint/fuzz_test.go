package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// FuzzLintNeverPanics drives the full analyzer suite — per-unit checks,
// graph construction, and the three module-wide analyzers — over
// arbitrary parseable Go source. The contract under test: whatever the
// type checker manages or fails to infer (fuzzed inputs routinely carry
// type errors, unresolved imports, and half-formed markers), Run must
// return findings or nothing, never panic. This is the same degraded-
// typing tolerance the loader promises for real trees mid-refactor.
func FuzzLintNeverPanics(f *testing.F) {
	seeds := []string{
		// One of everything the analyzers look at.
		`package sim

import (
	"math/rand"
	"time"
)

func a() int64 { return time.Now().Unix() }
func b() *rand.Rand { return rand.New(rand.NewSource(42)) }
`,
		// Markers, directives, and blocking ops.
		`package mpisim

import "sync"

//mlckpt:fiber
func Step(ch chan int, mu *sync.Mutex) {
	mu.Lock()
	<-ch
	select {
	case ch <- 1:
	}
}

//mlckpt:baton reason
func park(ch chan int) { <-ch }

//mlckpt:baton
func malformed() {}

//mlckpt:unknown
func unknown() {}
`,
		// Hot-path idioms, closures, go statements.
		`package erasure

//mlckpt:hotpath
func Hot(n int, xs []int) {
	for i := 0; i < n; i++ {
		buf := make([]int, 1)
		xs = append(xs, buf[0])
		go func() { _ = i }()
	}
	//lint:allow hotpath reason
	_ = map[int]int{}
}
`,
		// Seed conduits, helpers, index tracing.
		`package sim

import "math/rand"

type Config struct{ Seed int64 }

func helper(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func run(cfg Config, n int) {
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = cfg.Seed + int64(i)
	}
	_ = helper(seeds[0])
	_ = helper(7)
}
`,
		// Degenerate shapes: empty bodies, recursion, self-reference.
		`package sim

func loop() { loop() }
func empty()
var x = func() { x := 1; _ = x }
`,
		// Unresolvable imports force degraded type info everywhere.
		`package sim

import "no/such/package"

//mlckpt:fiber
func f() { nosuch.Call() }
`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.ParseComments)
		if err != nil {
			t.Skip()
		}
		info := &types.Info{
			Types: map[ast.Expr]types.TypeAndValue{},
			Defs:  map[*ast.Ident]types.Object{},
			Uses:  map[*ast.Ident]types.Object{},
		}
		std := importer.ForCompiler(fset, "gc", nil)
		conf := types.Config{
			Importer: importerFunc(func(path string) (*types.Package, error) {
				return std.Import(path)
			}),
			Error: func(error) {},
		}
		// Errors are expected and ignored: the point is surviving them.
		pkg, _ := conf.Check("internal/sim", fset, []*ast.File{file}, info)
		u := &Unit{Fset: fset, Path: "internal/sim", Files: []*ast.File{file}, Info: info, Pkg: pkg}
		_ = Run([]*Unit{u}, Analyzers())
	})
}
