package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Module locates and loads packages of one Go module for analysis. It is
// deliberately self-contained: packages are parsed with go/parser, build
// constraints honored via go/build.MatchFile, module-internal imports
// type-checked from source by the loader itself, and standard-library
// imports resolved through go/importer — no module downloads, no
// golang.org/x/tools dependency.
type Module struct {
	Root string // absolute directory containing go.mod
	Path string // module path declared in go.mod
	Fset *token.FileSet

	std    types.Importer            // gc export data for the standard library
	stdSrc types.Importer            // source fallback when export data is absent
	cache  map[string]*types.Package // import path -> checked base package
	active map[string]bool           // import cycle guard
}

// FindModule walks up from dir to the enclosing go.mod and returns the
// module handle.
func FindModule(dir string) (*Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			path := modulePath(string(data))
			if path == "" {
				return nil, fmt.Errorf("lint: no module line in %s", filepath.Join(d, "go.mod"))
			}
			fset := token.NewFileSet()
			return &Module{
				Root:   d,
				Path:   path,
				Fset:   fset,
				std:    importer.ForCompiler(fset, "gc", nil),
				stdSrc: importer.ForCompiler(fset, "source", nil),
				cache:  map[string]*types.Package{},
				active: map[string]bool{},
			}, nil
		}
		if parent := filepath.Dir(d); parent == d {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
	}
}

// modulePath extracts the module path from go.mod content.
func modulePath(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// Load resolves the given patterns ("./...", "dir/...", or plain package
// directories, relative to the module root) and returns one analysis Unit
// per compilation unit found: the package with its in-package test files,
// plus a separate unit for an external _test package when present.
func (m *Module) Load(patterns []string) ([]*Unit, error) {
	dirs, err := m.expand(patterns)
	if err != nil {
		return nil, err
	}
	var units []*Unit
	for _, dir := range dirs {
		us, err := m.loadDir(dir)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %w", dir, err)
		}
		units = append(units, us...)
	}
	return units, nil
}

// expand turns patterns into a sorted list of package directories.
func (m *Module) expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] && hasGoFiles(dir) {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = "."
			}
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(m.Root, base)
		}
		if !recursive {
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// goFiles lists the buildable .go files of dir under the default build
// context (so //go:build race twins and the like do not collide), split
// into non-test and test files.
func (m *Module) goFiles(dir string) (src, test []string, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	ctx := build.Default
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		match, err := ctx.MatchFile(dir, name)
		if err != nil {
			return nil, nil, err
		}
		if !match {
			continue
		}
		if strings.HasSuffix(name, "_test.go") {
			test = append(test, filepath.Join(dir, name))
		} else {
			src = append(src, filepath.Join(dir, name))
		}
	}
	sort.Strings(src)
	sort.Strings(test)
	return src, test, nil
}

func (m *Module) parse(paths []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, p := range paths {
		f, err := parser.ParseFile(m.Fset, p, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// relPath maps a package directory to its module-relative import path
// ("" for the root package).
func (m *Module) relPath(dir string) string {
	rel, err := filepath.Rel(m.Root, dir)
	if err != nil || rel == "." {
		return ""
	}
	return filepath.ToSlash(rel)
}

// loadDir type-checks one package directory into analysis units.
func (m *Module) loadDir(dir string) ([]*Unit, error) {
	src, test, err := m.goFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(src)+len(test) == 0 {
		return nil, nil
	}
	srcFiles, err := m.parse(src)
	if err != nil {
		return nil, err
	}
	testFiles, err := m.parse(test)
	if err != nil {
		return nil, err
	}
	pkgName := ""
	if len(srcFiles) > 0 {
		pkgName = srcFiles[0].Name.Name
	} else if len(testFiles) > 0 {
		// Test-only directory: the in-package name is whatever the first
		// non _test-suffixed file declares.
		pkgName = strings.TrimSuffix(testFiles[0].Name.Name, "_test")
	}
	var inPkg, external []*ast.File
	for _, f := range testFiles {
		if f.Name.Name == pkgName {
			inPkg = append(inPkg, f)
		} else {
			external = append(external, f)
		}
	}
	rel := m.relPath(dir)
	importPath := m.Path
	if rel != "" {
		importPath = m.Path + "/" + rel
	}

	var units []*Unit
	if len(srcFiles)+len(inPkg) > 0 {
		u, err := m.check(importPath, rel, append(append([]*ast.File{}, srcFiles...), inPkg...))
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	if len(external) > 0 {
		u, err := m.check(importPath+"_test", rel+"_test", external)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	return units, nil
}

// check runs go/types over one set of files. Type errors are tolerated
// (the tier-1 gate builds the tree before linting it, so real breakage
// surfaces there); the best-effort Info is enough for the analyzers.
func (m *Module) check(importPath, rel string, files []*ast.File) (*Unit, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: (*moduleImporter)(m),
		Error:    func(error) {}, // collect nothing: best-effort typing
	}
	pkg, _ := conf.Check(importPath, m.Fset, files, info)
	return &Unit{Fset: m.Fset, Path: rel, Files: files, Info: info, Pkg: pkg}, nil
}

// moduleImporter resolves imports during type checking: module-internal
// paths are type-checked from source (non-test files only, as the language
// defines), everything else is assumed to be standard library and loaded
// from gc export data with a source-importer fallback.
type moduleImporter Module

func (imp *moduleImporter) Import(path string) (*types.Package, error) {
	m := (*Module)(imp)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := m.cache[path]; ok {
		return pkg, nil
	}
	if path == m.Path || strings.HasPrefix(path, m.Path+"/") {
		if m.active[path] {
			return nil, fmt.Errorf("import cycle through %s", path)
		}
		m.active[path] = true
		defer delete(m.active, path)
		dir := filepath.Join(m.Root, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, m.Path), "/")))
		src, _, err := m.goFiles(dir)
		if err != nil {
			return nil, err
		}
		files, err := m.parse(src)
		if err != nil {
			return nil, err
		}
		conf := types.Config{Importer: imp, Error: func(error) {}}
		pkg, err := conf.Check(path, m.Fset, files, nil)
		if pkg == nil {
			return nil, err
		}
		m.cache[path] = pkg
		return pkg, nil
	}
	pkg, err := m.std.Import(path)
	if err != nil {
		pkg, err = m.stdSrc.Import(path)
	}
	if err == nil {
		m.cache[path] = pkg
	}
	return pkg, err
}
