package lint

import "testing"

func TestHotPath(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want map[int][]string
	}{
		{
			name: "unannotated functions are out of contract",
			src: `package fixture

func Free() []int {
	out := make([]int, 0)
	for i := 0; i < 4; i++ {
		out = append(out, i)
	}
	return out
}
`,
			want: map[int][]string{},
		},
		{
			name: "make and new in a loop",
			src: `package fixture

//mlckpt:hotpath
func Hot(n int) {
	buf := make([]int, n) // hoisted: fine
	for i := 0; i < n; i++ {
		tmp := make([]int, 1)
		p := new(int)
		buf[i], *p = tmp[0], i
	}
	_ = buf
}
`,
			want: map[int][]string{7: {"hotpath"}, 8: {"hotpath"}},
		},
		{
			name: "self-append is exempt, cross-append is not",
			src: `package fixture

//mlckpt:hotpath
func Hot(dst, src []int) []int {
	dst = append(dst, 1)
	other := append(src, 2)
	_ = other
	return dst
}
`,
			want: map[int][]string{6: {"hotpath"}},
		},
		{
			name: "string concatenation anywhere",
			src: `package fixture

//mlckpt:hotpath
func Hot(a, b string) int {
	s := a + b
	return len(s)
}
`,
			want: map[int][]string{5: {"hotpath"}},
		},
		{
			name: "interface boxing at a call site",
			src: `package fixture

func sink(v any) {}

//mlckpt:hotpath
func Hot(x int, p *int) {
	sink(x)
	sink(p)
	sink(nil)
}
`,
			// Only the non-pointer-shaped value boxes.
			want: map[int][]string{7: {"hotpath"}},
		},
		{
			name: "cold exits may allocate",
			src: `package fixture

import "fmt"

//mlckpt:hotpath
func Hot(xs []int) int {
	if len(xs) == 0 {
		panic(fmt.Sprintf("empty: %d", len(xs)))
	}
	if len(xs) == 1 {
		return len(fmt.Sprintf("%d", xs[0]))
	}
	return xs[0]
}
`,
			want: map[int][]string{},
		},
		{
			name: "capturing closure in a loop",
			src: `package fixture

//mlckpt:hotpath
func Hot(xs []int, apply func(func())) {
	total := 0
	for _, x := range xs {
		x := x
		apply(func() { total += x })
	}
	_ = total
}
`,
			want: map[int][]string{8: {"hotpath"}},
		},
		{
			name: "map literal anywhere, composite literal only in loops",
			src: `package fixture

type pt struct{ x, y int }

//mlckpt:hotpath
func Hot(n int) {
	base := pt{1, 2} // value literal outside a loop: stack, fine
	m := map[int]int{}
	for i := 0; i < n; i++ {
		q := pt{i, i}
		_ = q
	}
	_, _ = base, m
}
`,
			want: map[int][]string{8: {"hotpath"}, 10: {"hotpath"}},
		},
		{
			name: "string byte conversion in a loop",
			src: `package fixture

//mlckpt:hotpath
func Hot(keys []string) int {
	n := 0
	for _, k := range keys {
		n += len([]byte(k))
	}
	return n
}
`,
			want: map[int][]string{7: {"hotpath"}},
		},
		{
			name: "allow directive with a reason suppresses",
			src: `package fixture

//mlckpt:hotpath
func Hot(n int) {
	for i := 0; i < n; i++ {
		//lint:allow hotpath per-call setup, amortized across the striped pass below
		tmp := make([]int, 1)
		_ = tmp
	}
}
`,
			want: map[int][]string{},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			u := fixtureUnit(t, "internal/erasure", tc.src, false)
			checkLines(t, u, HotPathAnalyzer(), tc.want)
		})
	}
}

// TestMarkerParsing pins the //mlckpt: marker grammar: unknown markers and
// a reasonless baton are lintdirective findings, valid markers are silent.
func TestMarkerParsing(t *testing.T) {
	src := `package fixture

//mlckpt:hotpath
func a() {}

//mlckpt:baton justified reason here
func b(ch chan int) { <-ch }

//mlckpt:baton
func c() {}

//mlckpt:frobnicate
func d() {}
`
	u := fixtureUnit(t, "internal/mpisim", src, false)
	findings := Run([]*Unit{u}, []*Analyzer{BatonBlockAnalyzer()})
	got := map[int]string{}
	for _, f := range findings {
		got[f.Pos.Line] = f.Check
	}
	want := map[int]string{9: "lintdirective", 12: "lintdirective"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for line, check := range want {
		if got[line] != check {
			t.Fatalf("line %d: got %q, want %q (all: %v)", line, got[line], check, got)
		}
	}
}
