package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// hotpath checks functions annotated //mlckpt:hotpath for allocation
// idioms. These are the proven zero-steady-state-allocation surfaces —
// the erasure encode/reconstruct kernels, the mpisim event-loop step and
// Allreduce, the eventq heap, the sim.Run slab path — whose benchmark
// wins (PR 5/7) were previously guarded only by a 900% bench-smoke
// tripwire. The annotation makes the contract explicit, this analyzer
// rejects the idioms that allocate by construction, and cmd/allocgate
// pins the compiler's actual escape analysis (see docs/LINT.md).
//
// Rules, tuned to the difference between setup cost and per-element
// cost:
//
//	anywhere in the body       append that can grow a different slice
//	                           than it reads, string concatenation,
//	                           map literals, interface boxing of a
//	                           non-pointer-shaped value
//	only inside loops          make/new, composite-literal values,
//	                           &T{} pointers, string<->[]byte
//	                           conversions, variable-capturing closures
//
// Exemptions:
//
//	self-append                x = append(x, ...) is amortized-O(1) and
//	                           reuses capacity in steady state;
//	                           allocgate watches actual growth
//	cold exits                 anything inside a return statement or a
//	                           panic(...) argument — error paths are
//	                           allowed to allocate, that is what makes
//	                           the happy path cheap to keep clean
//
// A justified //lint:allow hotpath <reason> suppresses a finding, as
// with every other check.
func HotPathAnalyzer() *Analyzer {
	return &Analyzer{
		Name:      "hotpath",
		Doc:       "allocation idioms in functions annotated //mlckpt:hotpath (zero-steady-state-allocation contract)",
		RunModule: runHotPath,
	}
}

func runHotPath(g *Graph, units []*Unit) []Finding {
	var out []Finding
	for _, n := range g.Nodes() {
		if n.Decl == nil || !n.marks.hotpath || n.Decl.Body == nil {
			continue
		}
		out = append(out, checkHotBody(n)...)
	}
	return out
}

func checkHotBody(n *FuncNode) []Finding {
	u := n.Unit
	body := n.Decl.Body
	par := newParentsOf(body)
	var out []Finding

	flag := func(pos token.Pos, msg string) {
		out = append(out, Finding{
			Check:   "hotpath",
			Pos:     u.Fset.Position(pos),
			Message: fmt.Sprintf("in //mlckpt:hotpath function %s: %s", n.Name, msg),
		})
	}
	// coldExit: error/panic paths may allocate. The walk tests each node
	// on the ancestor chain itself (not just its parent), so an allocation
	// that IS a panic call's direct argument is cold too.
	cold := func(node ast.Node) bool {
		for cur := ast.Node(node); cur != nil && cur != body; cur = par[cur] {
			switch c := cur.(type) {
			case *ast.ReturnStmt:
				return true
			case *ast.CallExpr:
				if id, ok := ast.Unparen(c.Fun).(*ast.Ident); ok && id.Name == "panic" {
					return true
				}
			}
		}
		return false
	}
	inLoop := func(node ast.Node) bool {
		for cur := par[node]; cur != nil && cur != body; cur = par[cur] {
			switch cur.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				return true
			case *ast.FuncLit:
				return false
			}
		}
		return false
	}

	ast.Inspect(body, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isString(u.Info.TypeOf(x.X)) && !cold(x) {
				flag(x.Pos(), "string concatenation allocates; format into a reusable buffer")
			}

		case *ast.CompositeLit:
			t := u.Info.TypeOf(x)
			switch {
			case isMap(t):
				if !cold(x) {
					flag(x.Pos(), "map literal allocates a new map; hoist it out of the hot path")
				}
			case inLoop(x) && !cold(x) && !insideColdParentLit(par, x):
				flag(x.Pos(), "composite literal inside a loop allocates per iteration; hoist or reuse")
			}

		case *ast.FuncLit:
			if inLoop(x) && !cold(x) && capturesOutside(u, x) {
				flag(x.Pos(), "variable-capturing closure inside a loop allocates per iteration; hoist the closure or pass state as parameters")
			}

		case *ast.CallExpr:
			out = append(out, checkHotCall(n, u, par, x, cold, inLoop)...)
		}
		return true
	})
	return out
}

// insideColdParentLit suppresses the nested literals of an already-
// flagged composite literal so one []T{{...}, {...}} reports once.
func insideColdParentLit(par parents, lit *ast.CompositeLit) bool {
	for cur := par[lit]; cur != nil; cur = par[cur] {
		if _, ok := cur.(*ast.CompositeLit); ok {
			return true
		}
		if _, ok := cur.(ast.Stmt); ok {
			return false
		}
	}
	return false
}

// capturesOutside reports whether the literal references a variable
// declared outside itself (the allocation-forcing shape; a capture-free
// closure compiles to a static function value).
func capturesOutside(u *Unit, lit *ast.FuncLit) bool {
	captures := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captures {
			return !captures
		}
		if obj, ok := u.Info.Uses[id].(*types.Var); ok && !obj.IsField() && obj.Pkg() != nil {
			// Package-level variables are addressed directly and force
			// no closure environment; only enclosing-function locals do.
			atPkgScope := obj.Parent() == obj.Pkg().Scope()
			if obj.Parent() != nil && !atPkgScope && declaredOutside(u, id, lit) {
				captures = true
			}
		}
		return true
	})
	return captures
}

func checkHotCall(n *FuncNode, u *Unit, par parents, call *ast.CallExpr, cold, inLoop func(ast.Node) bool) []Finding {
	var out []Finding
	flag := func(pos token.Pos, msg string) {
		out = append(out, Finding{
			Check:   "hotpath",
			Pos:     u.Fset.Position(pos),
			Message: fmt.Sprintf("in //mlckpt:hotpath function %s: %s", n.Name, msg),
		})
	}

	// Builtins and conversions first.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		switch id.Name {
		case "append":
			if u.Info.Uses[id] == nil || isBuiltin(u, id) {
				if !selfAppend(u, par, call) && !cold(call) {
					flag(call.Pos(), "append into a different slice than it reads can allocate on every call; use the x = append(x, ...) self-append form or a preallocated buffer")
				}
				return out
			}
		case "make", "new":
			if (u.Info.Uses[id] == nil || isBuiltin(u, id)) && inLoop(call) && !cold(call) {
				flag(call.Pos(), id.Name+" inside a loop allocates per iteration; hoist the buffer and reuse it")
				return out
			}
		}
	}

	// Conversion: string<->[]byte copies; conversion to interface boxes.
	if tv, ok := u.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		target := tv.Type
		argT := u.Info.TypeOf(call.Args[0])
		switch {
		case isStringByteConv(target, argT):
			if inLoop(call) && !cold(call) {
				flag(call.Pos(), "string<->[]byte conversion inside a loop copies per iteration; keep one representation")
			}
		case isInterfaceType(target):
			if !pointerShaped(argT) && !cold(call) {
				flag(call.Pos(), fmt.Sprintf("converting %s to %s boxes the value on the heap", types.TypeString(argT, nil), types.TypeString(target, nil)))
			}
		}
		return out
	}

	// &T{...} is handled by the CompositeLit case; here: implicit
	// interface boxing at ordinary call sites.
	sig, _ := u.Info.TypeOf(ast.Unparen(call.Fun)).(*types.Signature)
	if sig == nil {
		return out
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... passes the slice through, no boxing
			}
			last := sig.Params().At(sig.Params().Len() - 1).Type()
			if sl, ok := last.Underlying().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < sig.Params().Len():
			pt = sig.Params().At(i).Type()
		}
		if pt == nil || !isInterfaceType(pt) {
			continue
		}
		at := u.Info.TypeOf(arg)
		if at == nil || isUntypedNil(at) || pointerShaped(at) {
			continue
		}
		if cold(call) {
			continue
		}
		flag(arg.Pos(), fmt.Sprintf("passing %s as %s boxes the value on the heap; take a concrete parameter or pass a pointer", types.TypeString(at, nil), types.TypeString(pt, nil)))
	}
	return out
}

// selfAppend recognizes x = append(x, ...) (including s.buf / s[i]
// targets) by textual identity of the destination and the first
// argument.
func selfAppend(u *Unit, par parents, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	src := types.ExprString(ast.Unparen(call.Args[0]))
	for cur := par[call]; cur != nil; cur = par[cur] {
		if asn, ok := cur.(*ast.AssignStmt); ok {
			for _, lhs := range asn.Lhs {
				if types.ExprString(ast.Unparen(lhs)) == src {
					return true
				}
			}
			return false
		}
		if _, ok := cur.(ast.Stmt); ok {
			return false
		}
	}
	return false
}

func isBuiltin(u *Unit, id *ast.Ident) bool {
	_, ok := u.Info.Uses[id].(*types.Builtin)
	return ok
}

func isInterfaceType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// pointerShaped reports whether values of t fit in a pointer word and
// therefore box without a fresh heap object (pointers, channels, maps,
// funcs, unsafe.Pointer) or are already interfaces.
func pointerShaped(t types.Type) bool {
	if t == nil {
		return true // unresolvable: do not guess
	}
	switch ut := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return true
	case *types.Basic:
		return ut.Kind() == types.UnsafePointer
	}
	return false
}

// isStringByteConv matches string([]byte) and []byte(string) shapes.
func isStringByteConv(target, arg types.Type) bool {
	if target == nil || arg == nil {
		return false
	}
	toString := isString(target) && isByteSlice(arg)
	toBytes := isByteSlice(target) && isString(arg)
	return toString || toBytes
}

func isByteSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Uint8
}
