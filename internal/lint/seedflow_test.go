package lint

import "testing"

func TestSeedFlow(t *testing.T) {
	cases := []struct {
		name string
		path string
		test bool
		src  string
		want map[int][]string
	}{
		{
			name: "literal seed at the sink",
			path: "internal/sim",
			src: `package fixture

import "math/rand"

func bad() *rand.Rand {
	return rand.New(rand.NewSource(42))
}
`,
			want: map[int][]string{6: {"seedflow"}},
		},
		{
			name: "seed from a config field is approved",
			path: "internal/sim",
			src: `package fixture

import "math/rand"

type Config struct{ Seed int64 }

func ok(cfg Config) *rand.Rand {
	return rand.New(rand.NewSource(cfg.Seed))
}
`,
			want: map[int][]string{},
		},
		{
			name: "seed-named constant is approved, other literals are not",
			path: "internal/sim",
			src: `package fixture

import "math/rand"

const rootSeed int64 = 20140816
const answer int64 = 42

func ok() *rand.Rand  { return rand.New(rand.NewSource(rootSeed)) }
func bad() *rand.Rand { return rand.New(rand.NewSource(answer)) }
`,
			want: map[int][]string{9: {"seedflow"}},
		},
		{
			name: "arithmetic over an approved seed stays approved",
			path: "internal/sim",
			src: `package fixture

import "math/rand"

type Config struct{ Seed int64 }

func ok(cfg Config, i int64) *rand.Rand {
	return rand.New(rand.NewSource(cfg.Seed ^ (i + 1)))
}
`,
			want: map[int][]string{},
		},
		{
			name: "range variable as a seed is flagged",
			path: "internal/sim",
			src: `package fixture

import "math/rand"

func bad(n int) {
	for i := int64(0); i < int64(n); i++ {
		seed := i
		_ = seed
	}
	for _, w := range []int64{1, 2} {
		_ = rand.New(rand.NewSource(w))
	}
}
`,
			// Anchored at the provenance (the range binding), not the sink.
			want: map[int][]string{10: {"seedflow"}},
		},
		{
			name: "approved root offset by a loop index stays approved",
			path: "internal/sim",
			src: `package fixture

import "math/rand"

type Config struct{ Seed int64 }

func ok(cfg Config, n int) {
	for i := 0; i < n; i++ {
		_ = rand.New(rand.NewSource(cfg.Seed + int64(i)))
	}
}
`,
			want: map[int][]string{},
		},
		{
			name: "interprocedural: a literal reaches the sink through a conduit param",
			path: "internal/sim",
			src: `package fixture

import "math/rand"

func worker(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func launch() *rand.Rand {
	return worker(7)
}
`,
			want: map[int][]string{10: {"seedflow"}},
		},
		{
			name: "interprocedural: an approved value through the same conduit is silent",
			path: "internal/sim",
			src: `package fixture

import "math/rand"

type Config struct{ Seed int64 }

func worker(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func launch(cfg Config) *rand.Rand {
	return worker(cfg.Seed)
}
`,
			want: map[int][]string{},
		},
		{
			name: "helper return value is summarized",
			path: "internal/sim",
			src: `package fixture

import "math/rand"

type Config struct{ Seed int64 }

func derived(cfg Config) int64 { return cfg.Seed * 3 }
func pinned() int64            { return 1234 }

func ok(cfg Config) *rand.Rand { return rand.New(rand.NewSource(derived(cfg))) }
func bad() *rand.Rand          { return rand.New(rand.NewSource(pinned())) }
`,
			want: map[int][]string{11: {"seedflow"}},
		},
		{
			name: "element assignments through an indexed slice are traced",
			path: "internal/sim",
			src: `package fixture

import "math/rand"

type Config struct{ Seed int64 }

func ok(cfg Config, n int) {
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = cfg.Seed + int64(i)
	}
	for i := range seeds {
		_ = rand.New(rand.NewSource(seeds[i]))
	}
}
`,
			want: map[int][]string{},
		},
		{
			name: "test files are out of contract",
			path: "internal/sim",
			test: true,
			src: `package fixture

import "math/rand"

func helperForTests() *rand.Rand {
	return rand.New(rand.NewSource(42))
}
`,
			want: map[int][]string{},
		},
		{
			name: "non-gated packages are out of contract",
			path: "internal/render",
			src: `package fixture

import "math/rand"

func fine() *rand.Rand {
	return rand.New(rand.NewSource(42))
}
`,
			want: map[int][]string{},
		},
		{
			name: "allow directive suppresses with a reason",
			path: "internal/sim",
			src: `package fixture

import "math/rand"

func pinned() *rand.Rand {
	//lint:allow seedflow historical pin: this value reproduces the PR-3 reference tables
	return rand.New(rand.NewSource(42))
}
`,
			want: map[int][]string{},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			u := fixtureUnit(t, tc.path, tc.src, tc.test)
			checkLines(t, u, SeedFlowAnalyzer(), tc.want)
		})
	}
}
