package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrderAnalyzer flags `range` loops over maps whose bodies are
// order-sensitive: accumulating into a float (addition is not
// associative), appending to a result slice, emitting output, or sending
// on a channel. Go randomizes map iteration order per run, so any of
// these silently makes results depend on the run — the canonical way
// scheduling-independent code becomes nondeterministic. The fix is to
// collect the keys, sort them, and range over the sorted slice; the
// analyzer recognizes that idiom (an appended key slice that is sorted
// later in the same function) and does not flag it.
func MapOrderAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "maporder",
		Doc:  "flag order-sensitive bodies of range-over-map loops (float accumulation, result append, output)",
		Run:  runMapOrder,
	}
}

func runMapOrder(u *Unit) []Finding {
	var out []Finding
	for _, file := range u.Files {
		par := newParents(file)
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !isMap(u.Info.TypeOf(rs.X)) {
				return true
			}
			out = append(out, mapRangeFindings(u, file, par, rs)...)
			return true
		})
	}
	return out
}

func mapRangeFindings(u *Unit, file *ast.File, par parents, rs *ast.RangeStmt) []Finding {
	var out []Finding
	report := func(format string, args ...any) {
		out = append(out, Finding{
			Check: "maporder",
			Pos:   u.Fset.Position(rs.Pos()),
			Message: fmt.Sprintf("map iteration order is nondeterministic; sort the keys first: %s",
				fmt.Sprintf(format, args...)),
		})
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.FuncLit:
			return false // executes elsewhere; judged at its own call sites
		case *ast.RangeStmt:
			if isMap(u.Info.TypeOf(stmt.X)) {
				return false // the nested map range gets its own findings
			}
		case *ast.SendStmt:
			if id := rootIdent(stmt.Chan); id != nil && declaredOutside(u, id, rs) {
				report("line %d sends on channel %q from inside the loop", u.Fset.Position(stmt.Pos()).Line, id.Name)
			}
		case *ast.AssignStmt:
			mapRangeAssign(u, file, par, rs, stmt, report)
		case *ast.CallExpr:
			if name, ok := outputCall(u, file, stmt); ok {
				report("line %d emits output via %s inside the loop", u.Fset.Position(stmt.Pos()).Line, name)
			}
		}
		return true
	})
	return out
}

// mapRangeAssign inspects one assignment inside a map-range body and
// reports order-sensitive updates; sorted-key-collection appends are
// recognized and skipped.
func mapRangeAssign(u *Unit, file *ast.File, par parents, rs *ast.RangeStmt, as *ast.AssignStmt, report func(string, ...any)) {
	line := u.Fset.Position(as.Pos()).Line
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		lhs := as.Lhs[0]
		id := rootIdent(lhs)
		if id == nil || !declaredOutside(u, id, rs) {
			return
		}
		t := u.Info.TypeOf(lhs)
		if isFloat(t) {
			report("line %d accumulates into float %q, and float addition is not associative", line, id.Name)
		} else if isString(t) {
			report("line %d concatenates into string %q in iteration order", line, id.Name)
		}
	case token.ASSIGN, token.DEFINE:
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			id := rootIdent(as.Lhs[i])
			if id == nil || !declaredOutside(u, id, rs) {
				continue
			}
			if call, ok := rhs.(*ast.CallExpr); ok && isAppendCall(u, call) {
				if sortedAfterLoop(u, file, par, rs, id) {
					continue // the collect-keys-then-sort idiom
				}
				report("line %d appends to slice %q in iteration order", line, id.Name)
				continue
			}
			// Self-referential update (x = x + v) of a float or string.
			t := u.Info.TypeOf(as.Lhs[i])
			if (isFloat(t) || isString(t)) && mentionsObject(u, rhs, id) {
				report("line %d accumulates into %q in iteration order", line, id.Name)
			}
		}
	}
}

func isAppendCall(u *Unit, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if obj, resolved := u.Info.Uses[id]; resolved {
		_, isBuiltin := obj.(*types.Builtin)
		return isBuiltin
	}
	return true
}

// mentionsObject reports whether expr references the same object id is
// bound to.
func mentionsObject(u *Unit, expr ast.Expr, id *ast.Ident) bool {
	target := u.Info.ObjectOf(id)
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if other, ok := n.(*ast.Ident); ok {
			if target != nil && u.Info.ObjectOf(other) == target {
				found = true
			} else if target == nil && other.Name == id.Name {
				found = true // degraded typing: fall back to names
			}
		}
		return !found
	})
	return found
}

// sortedAfterLoop reports whether the slice bound to id is passed to a
// sort.* / slices.Sort* call after the range loop within the enclosing
// function — the canonical deterministic-iteration idiom.
func sortedAfterLoop(u *Unit, file *ast.File, par parents, rs *ast.RangeStmt, id *ast.Ident) bool {
	fn := par.enclosingFunc(rs)
	if fn == nil {
		return false
	}
	target := u.Info.ObjectOf(id)
	sorted := false
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || sorted {
			return !sorted
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		switch pkgPathOfIdent(u, file, pkgID) {
		case "sort", "slices":
		default:
			return true
		}
		if !strings.HasPrefix(sel.Sel.Name, "Sort") && !strings.Contains(sel.Sel.Name, "Sorted") &&
			!strings.HasPrefix(sel.Sel.Name, "Strings") && !strings.HasPrefix(sel.Sel.Name, "Ints") &&
			!strings.HasPrefix(sel.Sel.Name, "Float64s") && !strings.HasPrefix(sel.Sel.Name, "Stable") {
			return true
		}
		for _, arg := range call.Args {
			root := rootIdent(arg)
			if root == nil {
				continue
			}
			if obj := u.Info.ObjectOf(root); (obj != nil && obj == target) || (target == nil && root.Name == id.Name) {
				sorted = true
			}
		}
		return !sorted
	})
	return sorted
}

// outputCall reports whether the call writes program output: the fmt
// print family, a Write*/print method on an external writer, or the
// experiment Table builder's Add.
func outputCall(u *Unit, file *ast.File, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if id, ok := sel.X.(*ast.Ident); ok {
		switch pkgPathOfIdent(u, file, id) {
		case "fmt":
			if strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") || strings.HasPrefix(name, "Sprint") {
				return "fmt." + name, true
			}
			return "", false
		case "log":
			if strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fatal") || strings.HasPrefix(name, "Panic") {
				return "log." + name, true
			}
			return "", false
		}
	}
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		return "(writer)." + name, true
	case "Add":
		// Project-specific: experiments.Table.Add emits a result row.
		if t := u.Info.TypeOf(sel.X); t != nil {
			if named, ok := deref(t).(*types.Named); ok && named.Obj().Name() == "Table" {
				return "Table.Add", true
			}
		}
	}
	return "", false
}

func deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}
