package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// seedflow is a whitelist taint analysis over RNG seeds. The paper
// reproduction's determinism contract (docs/FAULTS.md) is that every
// random decision is a pure function of (root seed, identity key): seeds
// reach rand sources only via stats.DeriveSeed, a configuration seed
// field, or a literal in a test. A seed minted from the wall clock, a
// pointer, or a worker index silently varies run to run (or worse,
// collides across workers), which breaks the byte-identical golden and
// chaos comparisons without failing any test.
//
// Sinks are the seed arguments of stats.NewRNG and rand.NewSource (v1
// and v2). An expression is approved when it is built from:
//
//   - a stats.DeriveSeed call,
//   - a field whose name contains "seed" (the Config convention),
//   - a method call on the stats RNG (Uint64, Split, ...),
//   - a literal — in a _test.go file (elsewhere a bare literal seed is
//     flagged: it belongs in a Config field or a test),
//   - arithmetic/conversions over approved values,
//   - a local variable every assignment of which is approved,
//   - a call to a module helper whose returns are approved (checked
//     recursively through the call graph), or
//   - a parameter of the enclosing function — which makes that function
//     a seed *conduit*: every module call site in a gated package is
//     then checked against the same rules, transitively.
//
// Anything else is reported: time.Now().UnixNano(), uintptr-of-pointer
// hashes, loop indices, and unresolvable values all fall out of the
// whitelist automatically.
type seedStatus uint8

const (
	seedBad      seedStatus = iota
	seedLiteral             // constant-only: fine in tests, flagged at a sink elsewhere
	seedApproved            // derived from an approved source
)

// SeedFlowAnalyzer returns the module-wide seed-taint check.
func SeedFlowAnalyzer() *Analyzer {
	return &Analyzer{
		Name:      "seedflow",
		Doc:       "RNG seeds in model packages must flow from stats.DeriveSeed, a seed config field, or a test literal",
		RunModule: runSeedFlow,
	}
}

// seedResult is one taint evaluation: the status, the enclosing-function
// parameter indices the value depends on (meaningful when approved), and
// the first offending sub-expression when bad.
type seedResult struct {
	status seedStatus
	deps   []int
	badPos token.Pos
	badWhy string
}

func bad(pos token.Pos, why string) seedResult {
	return seedResult{status: seedBad, badPos: pos, badWhy: why}
}

// seedEval evaluates expressions in the context of one function node.
type seedEval struct {
	g    *Graph
	node *FuncNode
	// helpers guards the return-summary recursion against cycles; a
	// cycle resolves to approved-no-deps (recursion among seed helpers
	// is vanishingly rare, and resolving to bad would make every
	// mutually recursive helper a false positive).
	helpers map[string]bool
}

// runSeedFlow checks every sink in the gated packages, then chases seed
// conduits (functions whose parameters flow into a sink) to their call
// sites until the frontier is empty.
func runSeedFlow(g *Graph, units []*Unit) []Finding {
	var out []Finding

	type conduit struct {
		node  *FuncNode
		param int
		chain string // human-readable sink path for diagnostics
	}
	var work []conduit
	seen := map[string]bool{} // "symbol#param" -> queued

	enqueue := func(n *FuncNode, deps []int, chain string) {
		for _, p := range deps {
			key := fmt.Sprintf("%s#%d", n.Symbol, p)
			if seen[key] {
				continue
			}
			seen[key] = true
			work = append(work, conduit{node: n, param: p, chain: chain})
		}
	}

	// Phase 1: direct sinks. Only declarations are walked (a walk covers
	// its nested literals); evaluation context is always the enclosing
	// declaration, whose scope holds a literal's free variables. Test
	// files are out of contract entirely: tests pick seeds deliberately
	// (literals, seed matrices, loop sweeps), and wall-clock seeding
	// there is already caught by the nondeterminism analyzer.
	for _, n := range g.Nodes() {
		if n.Decl == nil || !gatedForSeeds(n.Unit) || n.body() == nil || n.Unit.isTestFile(n.Decl) {
			continue
		}
		node := n
		ast.Inspect(n.body(), func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			sink := sinkName(node.Unit, call)
			if sink == "" || len(call.Args) == 0 {
				return true
			}
			ev := &seedEval{g: g, node: node, helpers: map[string]bool{}}
			res := ev.expr(call.Args[0])
			switch {
			case res.status == seedBad:
				out = append(out, seedFinding(node.Unit, res, sink))
			case res.status == seedLiteral:
				out = append(out, Finding{
					Check: "seedflow",
					Pos:   node.Unit.Fset.Position(call.Args[0].Pos()),
					Message: fmt.Sprintf(
						"literal seed for %s outside a test: hoist it into a Config seed field or a *Seed* constant, or derive it with stats.DeriveSeed", sink),
				})
			case res.status == seedApproved:
				enqueue(node, res.deps, sink+" in "+node.Name)
			}
			return true
		})
	}

	// Phase 2: conduit call sites, to a fixpoint.
	for len(work) > 0 {
		c := work[0]
		work = work[1:]
		paramName := paramNameAt(c.node, c.param)
		for _, caller := range g.Nodes() {
			ctx := caller.owner
			if ctx == nil {
				ctx = caller
			}
			for _, cs := range caller.Calls {
				if cs.Callee != c.node.Symbol || cs.Call == nil || c.param >= len(cs.Call.Args) {
					continue
				}
				if !gatedForSeeds(caller.Unit) {
					continue // cmd/ wiring and the like: out of contract
				}
				arg := cs.Call.Args[c.param]
				if caller.Unit.isTestFile(arg) {
					continue // tests pick their seeds deliberately
				}
				ev := &seedEval{g: g, node: ctx, helpers: map[string]bool{}}
				res := ev.expr(arg)
				switch {
				case res.status == seedBad:
					out = append(out, seedFinding(caller.Unit, res,
						fmt.Sprintf("seed parameter %q of %s (reaching %s)", paramName, c.node.Name, c.chain)))
				case res.status == seedLiteral:
					out = append(out, Finding{
						Check: "seedflow",
						Pos:   caller.Unit.Fset.Position(arg.Pos()),
						Message: fmt.Sprintf(
							"literal seed for parameter %q of %s (reaching %s) outside a test: hoist it into a Config seed field or a *Seed* constant, or derive it with stats.DeriveSeed",
							paramName, c.node.Name, c.chain),
					})
				case res.status == seedApproved:
					enqueue(ctx, res.deps, c.chain)
				}
			}
		}
	}
	return out
}

func seedFinding(u *Unit, res seedResult, sink string) Finding {
	return Finding{
		Check: "seedflow",
		Pos:   u.Fset.Position(res.badPos),
		Message: fmt.Sprintf(
			"seed for %s does not flow from stats.DeriveSeed, a seed config field, or a test literal: %s", sink, res.badWhy),
	}
}

// gatedForSeeds: the seed contract applies to the model-bearing packages
// except internal/stats itself, which implements the RNG.
func gatedForSeeds(u *Unit) bool {
	if !inModelPackage(u) {
		return false
	}
	path := strings.TrimSuffix(u.Path, "_test")
	return path != "internal/stats" && !strings.HasPrefix(path, "internal/stats/")
}

// body returns the function's body node regardless of declaration form.
func (n *FuncNode) body() ast.Node {
	switch {
	case n.Decl != nil && n.Decl.Body != nil:
		return n.Decl.Body
	case n.Lit != nil:
		return n.Lit.Body
	}
	return nil
}

// sinkName identifies a seed sink call: "stats.NewRNG" or
// "rand.NewSource" (either rand version), else "".
func sinkName(u *Unit, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	f, ok := u.Info.Uses[sel.Sel].(*types.Func)
	if !ok || f.Pkg() == nil {
		return ""
	}
	path := f.Pkg().Path()
	switch {
	case isStatsPath(path) && f.Name() == "NewRNG":
		return "stats.NewRNG"
	case (path == "math/rand" || path == "math/rand/v2") && f.Name() == "NewSource":
		return "rand.NewSource"
	}
	return ""
}

// isStatsPath matches the module's stats package by path tail so the
// check works identically inside test fixture modules.
func isStatsPath(path string) bool {
	return path == "stats" || strings.HasSuffix(path, "/stats")
}

func isStatsRNG(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == "RNG" && isStatsPath(n.Obj().Pkg().Path())
}

// paramObjects resolves the declared parameter objects of a node, in
// order.
func paramObjects(n *FuncNode) []types.Object {
	var fields *ast.FieldList
	switch {
	case n.Decl != nil:
		fields = n.Decl.Type.Params
	case n.Lit != nil:
		fields = n.Lit.Type.Params
	}
	if fields == nil {
		return nil
	}
	var objs []types.Object
	for _, f := range fields.List {
		for _, name := range f.Names {
			objs = append(objs, n.Unit.Info.Defs[name])
		}
		if len(f.Names) == 0 {
			objs = append(objs, nil) // unnamed: cannot flow anywhere
		}
	}
	return objs
}

func paramNameAt(n *FuncNode, idx int) string {
	objs := paramObjects(n)
	if idx < len(objs) && objs[idx] != nil {
		return objs[idx].Name()
	}
	return fmt.Sprintf("#%d", idx)
}

// expr is the taint evaluator.
func (e *seedEval) expr(x ast.Expr) seedResult {
	u := e.node.Unit
	switch v := x.(type) {
	case *ast.ParenExpr:
		return e.expr(v.X)

	case *ast.BasicLit:
		if u.isTestFile(v) {
			return seedResult{status: seedApproved}
		}
		return seedResult{status: seedLiteral}

	case *ast.UnaryExpr:
		switch v.Op {
		case token.ADD, token.SUB, token.XOR:
			return e.expr(v.X)
		}
		return bad(v.Pos(), "operator "+v.Op.String()+" is not seed arithmetic")

	case *ast.BinaryExpr:
		l, r := e.expr(v.X), e.expr(v.Y)
		return combine(l, r)

	case *ast.Ident:
		return e.ident(v)

	case *ast.IndexExpr:
		return e.index(v)

	case *ast.SelectorExpr:
		// A field (or package-level value) whose name carries the seed
		// convention is an approved source by contract.
		if strings.Contains(strings.ToLower(v.Sel.Name), "seed") {
			return seedResult{status: seedApproved}
		}
		return bad(v.Pos(), fmt.Sprintf("%s is not a seed field (name the field *Seed* or derive with stats.DeriveSeed)", types.ExprString(v)))

	case *ast.CallExpr:
		return e.call(v)
	}
	return bad(x.Pos(), fmt.Sprintf("expression %s cannot be proven seed-safe", types.ExprString(x)))
}

// combine merges two operand results of an arithmetic expression.
func combine(l, r seedResult) seedResult {
	// Approved is the top of the lattice: mixing an approved source into
	// any expression yields a value derived from it (rootSeed+i is the
	// standard distinct-per-worker derivation). Without an approved
	// operand, a bad source poisons the result (workerIndex+42 is still
	// just the worker index), and two literals stay a literal.
	out := seedResult{deps: append(append([]int(nil), l.deps...), r.deps...)}
	switch {
	case l.status == seedApproved || r.status == seedApproved:
		out.status = seedApproved
	case l.status == seedBad:
		return l
	case r.status == seedBad:
		return r
	default:
		out.status = seedLiteral
	}
	return out
}

// ident resolves a name: constants behave like literals, enclosing-
// function parameters become dependencies, and local variables are
// traced through every assignment that targets them.
func (e *seedEval) ident(id *ast.Ident) seedResult {
	u := e.node.Unit
	obj := u.Info.Uses[id]
	if obj == nil {
		obj = u.Info.Defs[id]
	}
	switch o := obj.(type) {
	case *types.Const:
		// A named constant carrying the seed convention is a deliberate
		// pin, the named form of a test literal (chaosRootSeed and
		// friends); an anonymous constant stays a literal.
		if u.isTestFile(id) || strings.Contains(strings.ToLower(o.Name()), "seed") {
			return seedResult{status: seedApproved}
		}
		return seedResult{status: seedLiteral}
	case *types.Var:
		for i, p := range paramObjects(e.node) {
			if p != nil && p == o {
				return seedResult{status: seedApproved, deps: []int{i}}
			}
		}
		if isLitParam(e.node, o) {
			// Parameters of nested literals have no statically
			// enumerable call sites; accept them rather than flag every
			// closure. The declaration's own parameters still chain.
			return seedResult{status: seedApproved}
		}
		return e.traceVar(id, o)
	case nil:
		return bad(id.Pos(), id.Name+" does not resolve (type information degraded)")
	}
	return bad(id.Pos(), id.Name+" is not a constant, parameter, or traceable variable")
}

// isLitParam reports whether obj is a parameter of a function literal
// nested anywhere in the node's body.
func isLitParam(n *FuncNode, obj *types.Var) bool {
	body := n.body()
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(x ast.Node) bool {
		lit, ok := x.(*ast.FuncLit)
		if !ok || found {
			return !found
		}
		if lit.Type.Params == nil {
			return true
		}
		for _, f := range lit.Type.Params.List {
			for _, name := range f.Names {
				if n.Unit.Info.Defs[name] == types.Object(obj) {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// index traces base[i] (and base[i][j], by index depth) through every
// element assignment in the function: simSeeds[pi] is approved when
// every `simSeeds[k] = ...` right-hand side is. The allocation
// (`simSeeds = make(...)`, depth 0) does not count as an element write.
func (e *seedEval) index(ix *ast.IndexExpr) seedResult {
	root := rootIdent(ix)
	if root == nil {
		return bad(ix.Pos(), types.ExprString(ix)+" is not rooted in a variable")
	}
	u := e.node.Unit
	obj, _ := u.Info.Uses[root].(*types.Var)
	if obj == nil {
		obj, _ = u.Info.Defs[root].(*types.Var)
	}
	if obj == nil {
		return bad(ix.Pos(), root.Name+" does not resolve (type information degraded)")
	}
	body := e.node.body()
	if body == nil {
		return bad(ix.Pos(), root.Name+" has no traceable definition")
	}
	depth := indexDepth(ix)
	var acc *seedResult
	ast.Inspect(body, func(n ast.Node) bool {
		asn, ok := n.(*ast.AssignStmt)
		if !ok || len(asn.Lhs) != len(asn.Rhs) {
			return true
		}
		for i, lhs := range asn.Lhs {
			lix, ok := ast.Unparen(lhs).(*ast.IndexExpr)
			if !ok || indexDepth(lix) != depth {
				continue
			}
			lroot := rootIdent(lix)
			if lroot == nil {
				continue
			}
			lobj := u.Info.Uses[lroot]
			if lobj == nil {
				lobj = u.Info.Defs[lroot]
			}
			if lobj != types.Object(obj) {
				continue
			}
			r := e.expr(asn.Rhs[i])
			if acc == nil {
				acc = &r
			} else {
				c := combine(*acc, r)
				if r.status < c.status {
					c.status = r.status
					c.badPos, c.badWhy = r.badPos, r.badWhy
				}
				acc = &c
			}
		}
		return true
	})
	if acc == nil {
		return bad(ix.Pos(), fmt.Sprintf("no element assignment to %s is traceable in this function", root.Name))
	}
	return *acc
}

// indexDepth counts the chained index levels of an expression:
// a[i] -> 1, a[i][j] -> 2.
func indexDepth(ix *ast.IndexExpr) int {
	depth := 0
	var cur ast.Expr = ix
	for {
		nx, ok := ast.Unparen(cur).(*ast.IndexExpr)
		if !ok {
			return depth
		}
		depth++
		cur = nx.X
	}
}

// traceVar collects every assignment to the object inside the current
// function body and requires each right-hand side to be approved.
func (e *seedEval) traceVar(id *ast.Ident, obj *types.Var) seedResult {
	body := e.node.body()
	if body == nil {
		return bad(id.Pos(), id.Name+" has no traceable definition")
	}
	u := e.node.Unit
	resolves := func(lhs ast.Expr) bool {
		lid, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return false
		}
		o := u.Info.Uses[lid]
		if o == nil {
			o = u.Info.Defs[lid]
		}
		return o == obj
	}
	var acc *seedResult
	merge := func(r seedResult) {
		if acc == nil {
			acc = &r
			return
		}
		c := combine(*acc, r)
		// A variable is only as trustworthy as its weakest assignment.
		if r.status < c.status {
			c.status = r.status
			c.badPos, c.badWhy = r.badPos, r.badWhy
		}
		acc = &c
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				if !resolves(lhs) {
					continue
				}
				if len(st.Rhs) == len(st.Lhs) {
					merge(e.expr(st.Rhs[i]))
				} else if len(st.Rhs) == 1 {
					// Tuple assignment: judge the producing call itself.
					merge(e.expr(st.Rhs[0]))
				}
			}
		case *ast.ValueSpec:
			for i, name := range st.Names {
				if u.Info.Defs[name] == types.Object(obj) && i < len(st.Values) {
					merge(e.expr(st.Values[i]))
				}
			}
		case *ast.RangeStmt:
			if st.Key != nil && resolves(st.Key) || st.Value != nil && resolves(st.Value) {
				r := bad(st.Pos(), id.Name+" is a range variable (a worker/loop index is not a seed; use stats.DeriveSeed(root, key))")
				merge(r)
			}
		}
		return true
	})
	if acc == nil {
		return bad(id.Pos(), id.Name+" has no assignment the analyzer can trace in this function")
	}
	return *acc
}

// call judges a call expression: conversions pass through, approved
// producers succeed, module helpers are summarized recursively, and
// everything else (wall clock, pointers, hashes of ambient state) fails.
func (e *seedEval) call(call *ast.CallExpr) seedResult {
	u := e.node.Unit

	// Type conversion uint64(x), int64(x), ...
	if tv, ok := u.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return e.expr(call.Args[0])
	}

	fun := ast.Unparen(call.Fun)
	var callee *types.Func
	switch f := fun.(type) {
	case *ast.Ident:
		callee, _ = u.Info.Uses[f].(*types.Func)
	case *ast.SelectorExpr:
		callee, _ = u.Info.Uses[f.Sel].(*types.Func)
		// Any method on the stats RNG (Uint64, Split, ...) yields an
		// approved stream: the RNG itself was seed-checked at its
		// construction site.
		if callee != nil {
			if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil && isStatsRNG(sig.Recv().Type()) {
				return seedResult{status: seedApproved}
			}
		}
	}
	if callee == nil {
		return bad(call.Pos(), types.ExprString(call.Fun)+" cannot be resolved to a seed-safe producer")
	}
	if isStatsPath(pkgPathOf(callee)) && (callee.Name() == "DeriveSeed" || callee.Name() == "NewRNG") {
		return seedResult{status: seedApproved}
	}

	// Module helper: summarize its returns through the call graph.
	if helper := e.g.Node(funcSymbol(callee)); helper != nil {
		return e.helperCall(helper, call)
	}
	return bad(call.Pos(), types.ExprString(call.Fun)+" is not an approved seed producer")
}

func pkgPathOf(f *types.Func) string {
	if f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}

// helperCall evaluates "the helper's returns, with its parameters
// substituted by this call's arguments".
func (e *seedEval) helperCall(helper *FuncNode, call *ast.CallExpr) seedResult {
	if e.helpers[helper.Symbol] {
		return seedResult{status: seedApproved} // cycle: resolve optimistically
	}
	e.helpers[helper.Symbol] = true
	defer delete(e.helpers, helper.Symbol)

	sum := e.returnSummary(helper)
	if sum.status == seedBad {
		return seedResult{status: seedBad, badPos: call.Pos(),
			badWhy: fmt.Sprintf("%s does not return an approved seed (%s)", helper.Name, sum.badWhy)}
	}
	out := seedResult{status: sum.status}
	for _, p := range sum.deps {
		if p >= len(call.Args) {
			continue
		}
		argRes := e.expr(call.Args[p])
		if argRes.status == seedBad {
			return argRes
		}
		out = combine(out, argRes)
		if argRes.status < out.status {
			out.status = argRes.status
		}
	}
	return out
}

// returnSummary judges every return of a single-result helper in its own
// context; deps are the helper's parameter indices.
func (e *seedEval) returnSummary(helper *FuncNode) seedResult {
	body := helper.body()
	if body == nil {
		return bad(helper.Pos, helper.Name+" has no body to analyze")
	}
	if resultCount(helper) != 1 {
		return bad(helper.Pos, helper.Name+" does not return exactly one value")
	}
	inner := &seedEval{g: e.g, node: helper, helpers: e.helpers}
	var acc *seedResult
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested literals return from themselves
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		var r seedResult
		if len(ret.Results) == 1 {
			r = inner.expr(ret.Results[0])
		} else {
			r = bad(ret.Pos(), "bare return cannot be traced")
		}
		if acc == nil {
			acc = &r
		} else {
			c := combine(*acc, r)
			if r.status < c.status {
				c.status = r.status
				c.badPos, c.badWhy = r.badPos, r.badWhy
			}
			acc = &c
		}
		return true
	})
	if acc == nil {
		return bad(helper.Pos, helper.Name+" has no return statement")
	}
	return *acc
}

func resultCount(n *FuncNode) int {
	var ft *ast.FuncType
	if n.Decl != nil {
		ft = n.Decl.Type
	} else {
		ft = n.Lit.Type
	}
	if ft.Results == nil {
		return 0
	}
	count := 0
	for _, f := range ft.Results.List {
		if len(f.Names) == 0 {
			count++
		} else {
			count += len(f.Names)
		}
	}
	return count
}
