package lint

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// writeTree materializes a file tree under a temp dir.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, content := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// TestLoadAndRunOnDefectiveModule is the end-to-end acceptance check: a
// module seeded with one instance of each defect class must produce
// exactly those diagnostics, each at the right file:line, through the
// same FindModule/Load/Run path the CLI driver uses.
func TestLoadAndRunOnDefectiveModule(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod": "module example.com/defective\n\ngo 1.22\n",
		// Defect 1: wall-clock time in a model-bearing package.
		"internal/sim/clock.go": `package sim

import "time"

func Stamp() int64 { return time.Now().Unix() }
`,
		// Defect 2: unsorted map-range feeding a result slice.
		"internal/experiments/table.go": `package experiments

func Rows(m map[string]float64) []float64 {
	var out []float64
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
`,
		// Defect 3: exact float equality outside tests.
		"internal/model/eq.go": `package model

func Same(a, b float64) bool { return a == b }
`,
		// Defect 4: loop goroutines racing on a captured accumulator.
		"internal/sweep/pool.go": `package sweep

func Total(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		go func() {
			sum += x
		}()
	}
	return sum
}
`,
		// Defect 5: a literal seed at an RNG construction site in a model
		// package. The sibling function shows the exempt idiom — a seed
		// drawn from a Config field flows through untouched.
		"internal/sim/seed.go": `package sim

import "math/rand"

type Config struct {
	Seed int64
}

func Fresh() *rand.Rand {
	return rand.New(rand.NewSource(99))
}

func FromConfig(cfg Config) *rand.Rand {
	return rand.New(rand.NewSource(cfg.Seed))
}
`,
		// Defect 6: a blocking call (time.Sleep, behind one hop) reachable
		// from an //mlckpt:fiber entry point. The sibling entry point only
		// blocks through a //mlckpt:baton-marked primitive — exempt.
		"internal/mpisim/fiber.go": `package mpisim

import "time"

//mlckpt:fiber
func Step() {
	helper()
}

func helper() {
	time.Sleep(1)
}

//mlckpt:baton the sanctioned hand-off primitive of this fixture
func park(ch chan struct{}) {
	<-ch
}

//mlckpt:fiber
func Await(ch chan struct{}) {
	park(ch)
}
`,
		// Defect 7: a per-iteration allocation inside an //mlckpt:hotpath
		// function. The sibling shows the exempt idiom — boxing on a
		// cold panic exit does not count against the hot path.
		"internal/heat/hot.go": `package heat

import "fmt"

//mlckpt:hotpath
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		buf := make([]float64, 1)
		buf[0] = x
		s += buf[0]
	}
	return s
}

//mlckpt:hotpath
func First(xs []float64) float64 {
	if len(xs) == 0 {
		panic(fmt.Sprintf("empty input of width %d", len(xs)))
	}
	return xs[0]
}
`,
		// Regression (span-scoped //lint:allow): the directive sits on a
		// wrapped statement whose second comparison lands two lines below
		// it — line-based matching missed that; span adoption must not.
		"internal/model/span.go": `package model

func Sentinel(a, b float64) bool {
	//lint:allow floateq sentinel comparison: both operands are exact stored values, and the wrapped second clause must be covered too
	if a == b ||
		b == 0 {
		return true
	}
	return false
}
`,
		// A clean package plus an external test package, to exercise the
		// loader's unit splitting without adding findings.
		"internal/stats/ok.go": `package stats

func Mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
`,
		"internal/stats/ok_ext_test.go": `package stats_test

import (
	"testing"

	"example.com/defective/internal/stats"
)

func TestMean(t *testing.T) {
	if stats.Mean([]float64{2, 4}) != 3 {
		t.Fatal("mean")
	}
}
`,
		// A build-constrained twin pair: only the !race file may load, or
		// type checking would see duplicate declarations.
		"internal/stats/race_off.go": "//go:build !race\n\npackage stats\n\nconst raceEnabled = false\n",
		"internal/stats/race_on.go":  "//go:build race\n\npackage stats\n\nconst raceEnabled = true\n",
	})

	mod, err := FindModule(filepath.Join(root, "internal", "sim"))
	if err != nil {
		t.Fatal(err)
	}
	if mod.Root != root || mod.Path != "example.com/defective" {
		t.Fatalf("module resolved to %q %q", mod.Root, mod.Path)
	}
	units, err := mod.Load([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}

	findings := Run(units, Analyzers())
	want := map[string]string{
		"nondeterminism":    "internal/sim/clock.go:5",
		"maporder":          "internal/experiments/table.go:5",
		"floateq":           "internal/model/eq.go:3",
		"goroutine-capture": "internal/sweep/pool.go:7",
		"seedflow":          "internal/sim/seed.go:10",
		"batonblock":        "internal/mpisim/fiber.go:11",
		"hotpath":           "internal/heat/hot.go:9",
	}
	if len(findings) != len(want) {
		t.Fatalf("got %d findings, want %d: %v", len(findings), len(want), findings)
	}
	for _, f := range findings {
		loc, ok := want[f.Check]
		if !ok {
			t.Errorf("unexpected check %q: %s", f.Check, f)
			continue
		}
		rel, err := filepath.Rel(root, f.Pos.Filename)
		if err != nil {
			t.Fatal(err)
		}
		if got := filepath.ToSlash(rel) + ":" + strconv.Itoa(f.Pos.Line); got != loc {
			t.Errorf("%s reported at %s, want %s", f.Check, got, loc)
		}
		delete(want, f.Check)
	}
	for check := range want {
		t.Errorf("defect class %s was not detected", check)
	}
}

// TestLoadSinglePackagePattern pins non-recursive pattern handling.
func TestLoadSinglePackagePattern(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod": "module example.com/single\n\ngo 1.22\n",
		"internal/sim/clock.go": `package sim

import "time"

func Stamp() int64 { return time.Now().Unix() }
`,
		"internal/model/eq.go": `package model

func Same(a, b float64) bool { return a == b }
`,
	})
	mod, err := FindModule(root)
	if err != nil {
		t.Fatal(err)
	}
	units, err := mod.Load([]string{"internal/sim"})
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(units, Analyzers())
	if len(findings) != 1 || findings[0].Check != "nondeterminism" {
		t.Fatalf("want exactly the internal/sim finding, got %v", findings)
	}
}

func TestFindModuleFailsOutsideModules(t *testing.T) {
	dir := t.TempDir()
	if _, err := FindModule(dir); err == nil || !strings.Contains(err.Error(), "no go.mod") {
		t.Fatalf("want a no-go.mod error, got %v", err)
	}
}
