package lint

import (
	"go/ast"
	"strings"
)

// ModelPackages are the module-relative package prefixes that carry the
// paper's model, the simulators, and the experiment harness. Inside them
// every source of nondeterminism must be explicit: randomness comes from
// the seeded internal/stats RNG, time from the simulator clock, and
// configuration from parameters — never from the process environment.
var ModelPackages = []string{
	"internal/sim",
	"internal/mpisim",
	"internal/sweep",
	"internal/experiments",
	"internal/model",
	"internal/stats",
	// The fault-injection plan must be a pure function of (seed, identity
	// key): any ambient randomness or clock would break the byte-level
	// reproducibility the chaos grid asserts (docs/FAULTS.md).
	"internal/inject",
	// Widened net (ISSUE 8): everything the real-run pipeline touches is
	// model-bearing — checkpoint storage and FTI recovery feed the digests
	// the chaos grid compares, eventq orders every simulated event, the
	// application kernels (heat, jacobi) produce the checkpointed bytes,
	// and the erasure kernels must be bit-stable across worker counts.
	"internal/fti",
	"internal/storage",
	"internal/eventq",
	"internal/heat",
	"internal/jacobi",
	"internal/erasure",
}

// bannedCalls maps import path -> function name -> remedy note. An empty
// map bans every exported function of the package except those listed in
// allowedCalls.
var bannedCalls = map[string]map[string]string{
	"time": {
		"Now":   "virtual time must come from the simulator clock, not the wall clock",
		"Since": "virtual time must come from the simulator clock, not the wall clock",
		"Until": "virtual time must come from the simulator clock, not the wall clock",
	},
	"os": {
		"Getenv":    "model configuration must be an explicit parameter, not ambient environment",
		"LookupEnv": "model configuration must be an explicit parameter, not ambient environment",
		"Environ":   "model configuration must be an explicit parameter, not ambient environment",
	},
	"math/rand":    nil, // global source: everything banned except constructors
	"math/rand/v2": nil,
}

// allowedRandCalls are the math/rand identifiers that do not touch the
// global source (constructors and types); only these escape the ban.
var allowedRandCalls = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
	"Source":     true,
	"Rand":       true,
	"Zipf":       true,
	"PCG":        true,
	"ChaCha8":    true,
	"Source64":   true,
}

// NondeterminismAnalyzer forbids ambient-nondeterminism entry points
// (wall-clock time, the global math/rand source, the environment) in
// model-bearing packages, where a single stray call silently breaks the
// bit-for-bit reproducibility the golden regression asserts.
func NondeterminismAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "nondeterminism",
		Doc:  "forbid time.Now/time.Since, the global math/rand source, and os.Getenv in model-bearing packages",
		Run:  runNondeterminism,
	}
}

// inModelPackage reports whether the unit is one of the model-bearing
// packages (or a subpackage / external test package of one).
func inModelPackage(u *Unit) bool {
	path := strings.TrimSuffix(u.Path, "_test")
	for _, p := range ModelPackages {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func runNondeterminism(u *Unit) []Finding {
	if !inModelPackage(u) {
		return nil
	}
	var out []Finding
	for _, file := range u.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			path := pkgPathOfIdent(u, file, id)
			remedies, banned := bannedCalls[path]
			if !banned {
				return true
			}
			name := sel.Sel.Name
			var msg string
			switch {
			case remedies != nil:
				remedy, hit := remedies[name]
				if !hit {
					return true
				}
				msg = path + "." + name + " in model package " + u.Path + ": " + remedy
			case allowedRandCalls[name]:
				return true
			default:
				msg = path + "." + name + " uses the global rand source in model package " + u.Path +
					": all randomness must flow through the seeded internal/stats RNG"
			}
			out = append(out, Finding{
				Check:   "nondeterminism",
				Pos:     u.Fset.Position(sel.Pos()),
				Message: msg,
			})
			return true
		})
	}
	return out
}
