package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the module-wide analysis substrate: a lightweight
// intra-module call graph plus one summary per function, built on the
// same stdlib-only go/types loader the per-unit analyzers use. The
// interprocedural analyzers (batonblock, seedflow) and the hotpath
// annotation contract all consume it.
//
// Two properties shape the design:
//
//   - Units are type-checked independently (a package with its tests is
//     re-checked even though its import-path twin sits in the loader
//     cache), so *types.Object identities do NOT agree across units.
//     Every function is therefore keyed by a stable symbol string —
//     "pkg/path.Recv.Name" — which is identical however the package was
//     reached.
//   - Dynamic dispatch is resolved structurally, not nominally: an
//     interface method call fans out to every module type that declares
//     a method with the same name and parameter count (class-hierarchy
//     style). Nominal types.Implements cannot be used across separately
//     checked units, and over-approximating edges errs toward reporting,
//     which is the right direction for a linter.

// blockKind classifies one potentially fiber-blocking operation.
type blockKind uint8

const (
	blockChanSend blockKind = iota
	blockChanRecv
	blockSelect
	blockChanRange
	blockSleep
	blockLock
	blockWait // sync.WaitGroup.Wait / sync.Cond.Wait
)

// BlockOp is one blocking operation found in a function body.
type BlockOp struct {
	Pos  token.Pos
	Kind blockKind
	Desc string
}

// CallSite is one outgoing edge of a function: either a statically
// resolved callee symbol, or an interface dispatch recorded by method
// name for structural fan-out at query time.
type CallSite struct {
	Pos    token.Pos
	Callee string // symbol of the static callee ("" for interface calls)

	// Interface dispatch: method name and parameter count, matched
	// structurally against every module method at resolution time.
	IfaceMethod string
	IfaceParams int

	// Call is the source call expression (nil for the implicit edge a
	// parent keeps to a nested function literal). seedflow uses it to
	// examine the arguments flowing into a seed-conduit parameter.
	Call *ast.CallExpr
}

// FuncNode is one function (declaration or literal) with its summary.
type FuncNode struct {
	Symbol string
	Name   string // human-readable: pkg-relative receiver+name or literal site
	Unit   *Unit
	Decl   *ast.FuncDecl // nil for literals
	Lit    *ast.FuncLit  // nil for declarations
	Pos    token.Pos

	Calls    []CallSite
	Blocking []BlockOp // effective: fork-join and bounded-lock exemptions applied

	// owner is the top-level declaration a literal is nested in (self
	// for declarations). Data-flow analyzers evaluate expressions in
	// the owner's context, because a literal's free variables live in
	// the owner's scope.
	owner *FuncNode

	hasGo     bool // body launches a goroutine (fork-join coordinator)
	hasUnlock bool // body releases a lock (bounded critical section)

	marks funcMarks
}

// Graph is the module call graph over every loaded unit.
type Graph struct {
	nodes map[string]*FuncNode

	// methodIndex maps a method name to the symbols of every module
	// function with that name and a receiver, for structural interface
	// fan-out.
	methodIndex map[string][]string

	// directiveFindings are malformed //mlckpt: markers discovered while
	// building the graph.
	directiveFindings []Finding
}

// Node returns the function node for a symbol, or nil.
func (g *Graph) Node(symbol string) *FuncNode { return g.nodes[symbol] }

// Nodes returns every node sorted by symbol (deterministic iteration).
func (g *Graph) Nodes() []*FuncNode {
	out := make([]*FuncNode, 0, len(g.nodes))
	for _, n := range g.nodes { //lint:allow maporder sorted by symbol immediately below
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Symbol < out[j].Symbol })
	return out
}

// Callees resolves one call site to its possible targets inside the
// module: the static callee when known, otherwise every method whose
// name and parameter count match the interface call.
func (g *Graph) Callees(cs CallSite) []*FuncNode {
	if cs.Callee != "" {
		if n := g.nodes[cs.Callee]; n != nil {
			return []*FuncNode{n}
		}
		return nil
	}
	var out []*FuncNode
	for _, sym := range g.methodIndex[cs.IfaceMethod] {
		n := g.nodes[sym]
		if n == nil {
			continue
		}
		if paramCount(n) == cs.IfaceParams {
			out = append(out, n)
		}
	}
	return out
}

func paramCount(n *FuncNode) int {
	var ft *ast.FuncType
	if n.Decl != nil {
		ft = n.Decl.Type
	} else {
		ft = n.Lit.Type
	}
	count := 0
	if ft.Params != nil {
		for _, f := range ft.Params.List {
			if len(f.Names) == 0 {
				count++
			} else {
				count += len(f.Names)
			}
		}
	}
	return count
}

// funcSymbol builds the stable cross-unit key for a function object:
// "pkg/path.Name" for package functions, "pkg/path.Recv.Name" for
// methods. Returns "" for objects without a package (builtins).
func funcSymbol(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	sym := f.Pkg().Path() + "."
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		if name := recvTypeName(sig.Recv().Type()); name != "" {
			sym += name + "."
		}
	}
	return sym + f.Name()
}

// recvTypeName names a receiver type, dereferencing one pointer.
func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	switch n := t.(type) {
	case *types.Named:
		return n.Obj().Name()
	case *types.Alias:
		return n.Obj().Name()
	}
	return ""
}

// BuildGraph walks every unit and produces the module call graph.
func BuildGraph(units []*Unit) *Graph {
	g := &Graph{
		nodes:       map[string]*FuncNode{},
		methodIndex: map[string][]string{},
	}
	for _, u := range units {
		for _, file := range u.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				g.addDecl(u, fd)
			}
		}
	}
	return g
}

// addDecl registers one function declaration and the literals nested in
// it.
func (g *Graph) addDecl(u *Unit, fd *ast.FuncDecl) {
	obj, _ := u.Info.Defs[fd.Name].(*types.Func)
	sym := funcSymbol(obj)
	if sym == "" {
		// Degraded type info: synthesize a unit-local symbol so the
		// function still participates in the graph.
		sym = fmt.Sprintf("%s.%s@%d", u.Path, fd.Name.Name, u.Fset.Position(fd.Pos()).Line)
	}
	// Re-checked twins (a package unit and its external-test sibling
	// both see the base package) can collide on a symbol; first writer
	// wins, which keeps iteration deterministic because units arrive in
	// sorted directory order.
	if _, exists := g.nodes[sym]; exists {
		return
	}

	marks, bad := parseFuncMarks(u, fd)
	g.directiveFindings = append(g.directiveFindings, bad...)

	node := &FuncNode{
		Symbol: sym,
		Name:   displayName(u, fd),
		Unit:   u,
		Decl:   fd,
		Pos:    fd.Pos(),
		marks:  marks,
	}
	node.owner = node
	g.nodes[sym] = node
	if fd.Recv != nil {
		g.methodIndex[fd.Name.Name] = append(g.methodIndex[fd.Name.Name], sym)
	}
	if fd.Body == nil {
		return // assembly or external declaration
	}
	g.walkBody(u, node, fd.Body)
}

// displayName renders a function for diagnostics: "(*Code).EncodeInto",
// "runEvent", or "func literal at file:line".
func displayName(u *Unit, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	recv := types.ExprString(fd.Recv.List[0].Type)
	return "(" + recv + ")." + fd.Name.Name
}

// litSymbol gives a nested function literal a deterministic unit-local
// key.
func litSymbol(u *Unit, lit *ast.FuncLit) string {
	pos := u.Fset.Position(lit.Pos())
	return fmt.Sprintf("%s.literal@%s:%d:%d", u.Path, shortFile(pos.Filename), pos.Line, pos.Column)
}

func shortFile(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// walkBody scans one function body: call edges, blocking operations,
// goroutine launches, and nested literals. Literals get their own nodes;
// the parent keeps an edge to every literal except those launched with
// `go` (which run on another goroutine, not on this one's continuation).
func (g *Graph) walkBody(u *Unit, node *FuncNode, body ast.Node) {
	var raw []BlockOp
	// Comm statements of a select are part of the select's single block
	// point, not independent channel operations.
	inSelect := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			lit := g.addLit(u, x, node.owner)
			if !launchedByGo(u, body, x) {
				node.Calls = append(node.Calls, CallSite{Pos: x.Pos(), Callee: lit.Symbol})
			}
			return false // the literal's body belongs to its own node
		case *ast.GoStmt:
			node.hasGo = true
			// The spawned call runs on a fresh goroutine: no edge. Its
			// arguments are still evaluated here, so keep inspecting
			// them, but skip the call expression's function position.
			for _, arg := range x.Call.Args {
				g.inspectExpr(u, node, arg, &raw)
			}
			return false
		case *ast.SendStmt:
			if !inSelect[x] {
				raw = append(raw, BlockOp{Pos: x.Pos(), Kind: blockChanSend, Desc: "channel send"})
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && !inSelect[x] {
				raw = append(raw, BlockOp{Pos: x.Pos(), Kind: blockChanRecv, Desc: "channel receive"})
			}
		case *ast.SelectStmt:
			raw = append(raw, BlockOp{Pos: x.Pos(), Kind: blockSelect, Desc: "select"})
			for _, clause := range x.Body.List {
				cc, ok := clause.(*ast.CommClause)
				if !ok || cc.Comm == nil {
					continue
				}
				inSelect[cc.Comm] = true
				switch comm := cc.Comm.(type) {
				case *ast.ExprStmt:
					inSelect[ast.Unparen(comm.X)] = true
				case *ast.AssignStmt:
					for _, rhs := range comm.Rhs {
						inSelect[ast.Unparen(rhs)] = true
					}
				}
			}
		case *ast.RangeStmt:
			if t := u.Info.TypeOf(x.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					raw = append(raw, BlockOp{Pos: x.Pos(), Kind: blockChanRange, Desc: "range over channel"})
				}
			}
		case *ast.CallExpr:
			g.recordCall(u, node, x, &raw)
		}
		return true
	})
	node.Blocking = effectiveBlocking(node, raw)
}

// inspectExpr scans a sub-expression (used for go-statement arguments)
// with the same rules as walkBody.
func (g *Graph) inspectExpr(u *Unit, node *FuncNode, expr ast.Expr, raw *[]BlockOp) {
	ast.Inspect(expr, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			lit := g.addLit(u, x, node.owner)
			node.Calls = append(node.Calls, CallSite{Pos: x.Pos(), Callee: lit.Symbol})
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				*raw = append(*raw, BlockOp{Pos: x.Pos(), Kind: blockChanRecv, Desc: "channel receive"})
			}
		case *ast.CallExpr:
			g.recordCall(u, node, x, raw)
		}
		return true
	})
}

// addLit registers one function literal node (idempotent per position).
func (g *Graph) addLit(u *Unit, lit *ast.FuncLit, owner *FuncNode) *FuncNode {
	sym := litSymbol(u, lit)
	if n, ok := g.nodes[sym]; ok {
		return n
	}
	pos := u.Fset.Position(lit.Pos())
	node := &FuncNode{
		Symbol: sym,
		Name:   fmt.Sprintf("func literal at %s:%d", shortFile(pos.Filename), pos.Line),
		Unit:   u,
		Lit:    lit,
		Pos:    lit.Pos(),
		owner:  owner,
	}
	g.nodes[sym] = node
	g.walkBody(u, node, lit.Body)
	return node
}

// launchedByGo reports whether the literal is the immediate callee of a
// go statement within body.
func launchedByGo(u *Unit, body ast.Node, lit *ast.FuncLit) bool {
	launched := false
	ast.Inspect(body, func(n ast.Node) bool {
		if gs, ok := n.(*ast.GoStmt); ok && gs.Call.Fun == lit {
			launched = true
		}
		return !launched
	})
	return launched
}

// recordCall classifies one call expression: a static edge, an interface
// dispatch, a blocking stdlib call, or an unlock marker.
func (g *Graph) recordCall(u *Unit, node *FuncNode, call *ast.CallExpr, raw *[]BlockOp) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := u.Info.Uses[fun].(*types.Func); ok {
			if sym := funcSymbol(f); sym != "" {
				node.Calls = append(node.Calls, CallSite{Pos: call.Pos(), Callee: sym, Call: call})
			}
		}
	case *ast.SelectorExpr:
		g.recordSelectorCall(u, node, call, fun, raw)
	case *ast.FuncLit:
		// Immediately-invoked literal: the edge was added when the
		// literal node was created.
	}
}

func (g *Graph) recordSelectorCall(u *Unit, node *FuncNode, call *ast.CallExpr, sel *ast.SelectorExpr, raw *[]BlockOp) {
	name := sel.Sel.Name

	// Package-qualified call (time.Sleep, stats.DeriveSeed, ...).
	if id, ok := sel.X.(*ast.Ident); ok {
		if pkgPath := pkgPathOfIdent2(u, id); pkgPath != "" {
			if pkgPath == "time" && name == "Sleep" {
				*raw = append(*raw, BlockOp{Pos: call.Pos(), Kind: blockSleep, Desc: "time.Sleep"})
				return
			}
			if f, ok := u.Info.Uses[sel.Sel].(*types.Func); ok {
				if sym := funcSymbol(f); sym != "" {
					node.Calls = append(node.Calls, CallSite{Pos: call.Pos(), Callee: sym, Call: call})
				}
			}
			return
		}
	}

	// Method call: blocking sync primitives first.
	recv := u.Info.TypeOf(sel.X)
	if isSyncType(recv) {
		switch name {
		case "Lock", "RLock":
			*raw = append(*raw, BlockOp{Pos: call.Pos(), Kind: blockLock, Desc: "sync " + name})
			return
		case "Wait":
			*raw = append(*raw, BlockOp{Pos: call.Pos(), Kind: blockWait, Desc: "sync " + name})
			return
		case "Unlock", "RUnlock":
			node.hasUnlock = true
			return
		}
	}

	if f, ok := u.Info.Uses[sel.Sel].(*types.Func); ok {
		sig, _ := f.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil {
			if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
				node.Calls = append(node.Calls, CallSite{
					Pos:         call.Pos(),
					IfaceMethod: name,
					IfaceParams: sig.Params().Len(),
					Call:        call,
				})
				return
			}
		}
		if sym := funcSymbol(f); sym != "" {
			node.Calls = append(node.Calls, CallSite{Pos: call.Pos(), Callee: sym, Call: call})
		}
		return
	}

	// Degraded typing: record an interface-style edge by name so the
	// traversal still sees a conservative superset.
	node.Calls = append(node.Calls, CallSite{
		Pos:         call.Pos(),
		IfaceMethod: name,
		IfaceParams: len(call.Args),
		Call:        call,
	})
}

// pkgPathOfIdent2 resolves an identifier to an import path using type
// info only (no file-import fallback: callers handle degraded typing
// separately).
func pkgPathOfIdent2(u *Unit, id *ast.Ident) string {
	if pn, ok := u.Info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// isSyncType reports whether t is (a pointer to) a type declared in
// package sync.
func isSyncType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync"
}

// effectiveBlocking applies the two structural exemptions to a
// function's raw blocking operations:
//
//   - Fork-join: a function that launches its own goroutines and then
//     communicates with them (channel operations, WaitGroup.Wait) is a
//     self-contained coordinator — its workers are plain goroutines that
//     drain unconditionally, not fibers another continuation must
//     resume. The striped erasure kernels and sim.RunMany are this
//     shape.
//   - Bounded critical section: a Lock paired with an Unlock in a
//     function with no other blocking operations cannot be held across
//     a fiber park, so it cannot wedge the scheduler (the obs registry
//     counters are this shape). A Lock without a visible Unlock, or one
//     sharing the body with a channel operation, stays reportable.
func effectiveBlocking(node *FuncNode, raw []BlockOp) []BlockOp {
	var out []BlockOp
	for _, op := range raw {
		if node.hasGo {
			switch op.Kind {
			case blockChanSend, blockChanRecv, blockSelect, blockChanRange, blockWait:
				continue
			}
		}
		out = append(out, op)
	}
	if node.hasUnlock {
		onlyLocks := true
		for _, op := range out {
			if op.Kind != blockLock {
				onlyLocks = false
				break
			}
		}
		if onlyLocks {
			return nil
		}
	}
	return out
}
