// Package fti is a multilevel checkpoint toolkit in the style of FTI [13]:
// level 1 writes each rank's protected data to its node-local device,
// level 2 additionally copies it to a partner node, level 3 Reed–Solomon
// encodes it across an encoding group (internal/erasure does the real GF
// arithmetic), and level 4 writes to the shared parallel file system.
//
// It runs on the mpisim runtime: checkpoint and recovery calls advance the
// calling rank's virtual clock by the storage model's durations, while the
// checkpoint *contents* are real bytes held by a Cluster object that
// survives across mpisim runs. Failure injection works segment-wise: run
// the application to a failure point, call Cluster.Crash with the dead
// node set (which destroys exactly the storage a real crash would), ask
// BestRecovery which level can restore, and restart the application from
// the recovered bytes — the same usage pattern as FTI on a real machine.
//
// Which failures each level survives (Section II of the paper):
//
//	level 1: transient/software faults only — any node loss destroys it
//	level 2: node losses with no two partner-adjacent nodes lost
//	level 3: up to Parity node losses per encoding group
//	level 4: anything (the PFS is off-cluster)
package fti

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"mlckpt/internal/erasure"
	"mlckpt/internal/inject"
	"mlckpt/internal/mpisim"
	"mlckpt/internal/storage"
)

// Levels is the number of checkpoint levels, as in FTI.
const Levels = 4

// ErrFTI is returned for invalid configurations and unrecoverable states.
var ErrFTI = errors.New("fti: error")

// ErrCorrupt is returned when a snapshot fails its checksum on restore.
var ErrCorrupt = errors.New("fti: snapshot corrupt")

// ErrExhausted is returned by RestoreEscalating when every recovery rung
// failed; the error text names the last rung tried.
var ErrExhausted = errors.New("fti: recovery exhausted")

// crcTable is the Castagnoli polynomial (hardware-accelerated on amd64),
// used for every snapshot checksum.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Faulter is the injection hook consulted at commit time: it decides
// whether the snapshot just committed is silently corrupted at rest. A
// compiled inject.Plan satisfies it; nil disables injection. Identities
// passed for level-2 partner copies are the owner rank offset by the node
// count, so a rank's own copy and its partner copy corrupt independently.
type Faulter interface {
	SnapshotFault(level, rank, version, size int) (inject.Fault, bool)
	ParityFault(group, shard, version, size int) (inject.Fault, bool)
}

// Config parameterizes a Cluster.
type Config struct {
	GroupSize int               // RS data shards per encoding group (k)
	Parity    int               // RS parity shards per group (m)
	Hierarchy storage.Hierarchy // timing model
}

// DefaultConfig uses FTI-typical grouping: 8 data + 2 parity.
func DefaultConfig() Config {
	return Config{GroupSize: 8, Parity: 2, Hierarchy: storage.DefaultHierarchy()}
}

type snapshot struct {
	version int
	data    []byte
	sum     uint32 // CRC-32C of data at commit time, before any injected corruption
}

// ok reports whether the snapshot's bytes still match their commit-time
// checksum — the verify-on-restore primitive.
func (s snapshot) ok() bool {
	return crc32.Checksum(s.data, crcTable) == s.sum
}

// Cluster holds the persistent checkpoint state of a simulated machine: it
// outlives individual mpisim runs, so an application can be restarted
// against it after an injected failure.
type Cluster struct {
	mu    sync.Mutex
	nodes int
	cfg   Config
	code  *erasure.Code

	version int // last assigned checkpoint version

	local   []map[int]snapshot // level-1: [rank] -> version snapshot (own device)
	partner []map[int]snapshot // level-2 partner copy: [rank holding the copy] -> owner's snapshot
	rsData  []map[int]snapshot // level-3 data shard per rank (on local device)
	rsPar   map[int][]snapshot // level-3 parity shards per group (on group nodes)
	rsSizes map[int]int        // level-3 padded shard size per group
	rsLens  map[int][]int      // level-3 original data lengths per group member
	rsSums  map[int][]uint32   // level-3 content CRCs per group member (replicated metadata)
	pfs     map[int]snapshot   // level-4: [rank] -> snapshot (off-cluster)

	// injector, when set, corrupts committed snapshots in place (the
	// checksum keeps the pre-corruption value, so the damage is silent
	// until a restore verifies). injected counts applied faults.
	injector Faulter
	injected int

	// pending gathers one collective checkpoint's per-rank bytes until all
	// ranks have contributed. The per-rank buffers are reused across
	// checkpoints (commit copies out of them into slot-owned storage), so
	// the steady-state checkpoint path allocates nothing.
	pending      [][]byte
	pendingHave  []bool
	pendingN     int
	pendingLevel int

	// encode scratch, guarded by mu: padded data shards and the parity
	// slice handed to erasure.(*Code).EncodeInto.
	encShards [][]byte
	encParity [][]byte
}

// reuseSnapshot copies src into the snapshot's existing buffer when it is
// large enough (allocating otherwise) and stamps the new version. Every
// snapshot slot owns its buffer exclusively, which is what makes the
// recycling safe: a slot's buffer is only ever rewritten when that same
// slot is replaced.
func reuseSnapshot(old snapshot, v int, src []byte) snapshot {
	b := old.data
	if cap(b) < len(src) {
		b = make([]byte, len(src))
	} else {
		b = b[:len(src)]
	}
	copy(b, src)
	return snapshot{version: v, data: b, sum: crc32.Checksum(b, crcTable)}
}

// stealSnapshot takes ownership of *src instead of copying it, handing the
// slot's previous buffer back through *src for the donor to recycle. Only
// legal when *src is consumed exactly once by the commit (levels 1 and 4,
// and the last use of a level-2 payload): the donor — the pending scratch —
// truncates its buffer before refilling it, so receiving a stale buffer of
// the right capacity is exactly as good as keeping its own.
func stealSnapshot(old snapshot, v int, src *[]byte) snapshot {
	b := *src
	*src = old.data
	return snapshot{version: v, data: b, sum: crc32.Checksum(b, crcTable)}
}

// NewCluster creates a machine of `nodes` nodes (one rank per node).
func NewCluster(nodes int, cfg Config) (*Cluster, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("%w: %d nodes", ErrFTI, nodes)
	}
	if cfg.GroupSize <= 0 || cfg.Parity < 0 {
		return nil, fmt.Errorf("%w: group %d parity %d", ErrFTI, cfg.GroupSize, cfg.Parity)
	}
	if err := cfg.Hierarchy.Validate(); err != nil {
		return nil, err
	}
	code, err := erasure.New(cfg.GroupSize, cfg.Parity)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		nodes:   nodes,
		cfg:     cfg,
		code:    code,
		local:   make([]map[int]snapshot, 1),
		partner: make([]map[int]snapshot, 1),
		rsData:  make([]map[int]snapshot, 1),
		rsPar:   make(map[int][]snapshot),
		rsSizes: make(map[int]int),
		rsLens:  make(map[int][]int),
		rsSums:  make(map[int][]uint32),
		pfs:     make(map[int]snapshot),
	}
	c.local[0] = make(map[int]snapshot)
	c.partner[0] = make(map[int]snapshot)
	c.rsData[0] = make(map[int]snapshot)
	return c, nil
}

// Nodes returns the machine size.
func (c *Cluster) Nodes() int { return c.nodes }

// SetInjector installs (or, with nil, removes) the fault-injection hook
// consulted after every commit. Injection must be configured before the
// run for plans to be reproducible; the hook itself must be deterministic
// in the (level, rank, version) identity (see inject.Plan).
func (c *Cluster) SetInjector(f Faulter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.injector = f
}

// InjectedFaults returns the number of snapshot corruptions applied so far.
func (c *Cluster) InjectedFaults() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.injected
}

// corruptLocked consults the injector for the slot committed at (level,
// identity, version) and applies any fault to the stored bytes — without
// touching the checksum, which is what makes the corruption silent until
// a restore verifies the slot.
func (c *Cluster) corruptLocked(level, identity int, s snapshot) snapshot {
	if c.injector == nil {
		return s
	}
	if f, ok := c.injector.SnapshotFault(level, identity, s.version, len(s.data)); ok {
		s.data = f.Apply(s.data)
		c.injected++
	}
	return s
}

// PartnerOf returns the partner node of rank i (the next node, wrapping).
func (c *Cluster) PartnerOf(i int) int { return (i + 1) % c.nodes }

// groupOf returns the encoding-group index of rank i.
func (c *Cluster) groupOf(i int) int { return i / c.cfg.GroupSize }

// numGroups returns the number of encoding groups.
func (c *Cluster) numGroups() int {
	return (c.nodes + c.cfg.GroupSize - 1) / c.cfg.GroupSize
}

// parityHolder returns the node storing parity shard i of group g: the
// parity of a group lives round-robin on the NEXT group's nodes, so that
// losing up to Parity nodes inside one group erases only that group's data
// shards, never its parity — the property that makes "≤ m losses per
// group" recoverable. (With a single group the parity necessarily falls on
// the same nodes and the guarantee degrades, as on a real machine.)
func (c *Cluster) parityHolder(g, i int) int {
	host := c.groupRanks((g + 1) % c.numGroups())
	return host[i%len(host)]
}

// ParityHolderOf exposes the parity placement to fault injectors: the node
// storing parity shard i of rank r's encoding group. Correlated crash
// patterns use it to kill a rank together with the node backing its
// redundancy.
func (c *Cluster) ParityHolderOf(r, i int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.parityHolder(c.groupOf(r), i)
}

// groupRanks returns the ranks in group g, clipped to the machine size.
func (c *Cluster) groupRanks(g int) []int {
	lo := g * c.cfg.GroupSize
	hi := lo + c.cfg.GroupSize
	if hi > c.nodes {
		hi = c.nodes
	}
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}

// Agent is the per-rank handle used inside an mpisim run.
type Agent struct {
	c *Cluster
	r *mpisim.Rank
}

// Attach binds a rank to the cluster for the duration of an mpisim run.
func (c *Cluster) Attach(r *mpisim.Rank) *Agent {
	return &Agent{c: c, r: r}
}

// Checkpoint performs a collective checkpoint of each rank's data at the
// given level (1–4) and returns the per-rank duration in virtual seconds.
// All ranks must call it with the same level (SPMD). The payload is
// copied before the call returns; the caller keeps its buffer.
func (a *Agent) Checkpoint(level int, data []byte) (float64, error) {
	_, dur, err := a.checkpoint(level, data, false)
	return dur, err
}

// CheckpointOwned is Checkpoint for callers that hand the payload buffer
// over instead of lending it: data is stored without the defensive copy,
// and a recycled buffer (length 0, capacity from an earlier round — nil
// on the first) is returned for the caller to build the next snapshot
// in. The caller must not touch data after the call.
func (a *Agent) CheckpointOwned(level int, data []byte) ([]byte, float64, error) {
	return a.checkpoint(level, data, true)
}

func (a *Agent) checkpoint(level int, data []byte, owned bool) ([]byte, float64, error) {
	if level < 1 || level > Levels {
		return nil, 0, fmt.Errorf("%w: level %d", ErrFTI, level)
	}
	dur, err := a.c.cfg.Hierarchy.CheckpointTime(level, len(data), a.r.Size(), a.c.cfg.GroupSize)
	if err != nil {
		return nil, 0, err
	}
	a.r.Compute(dur)

	// Stash this rank's bytes; the last arriver commits the version.
	a.c.mu.Lock()
	id := a.r.ID()
	size := a.r.Size()
	if len(a.c.pending) < size {
		a.c.pending = append(a.c.pending, make([][]byte, size-len(a.c.pending))...)
		a.c.pendingHave = append(a.c.pendingHave, make([]bool, size-len(a.c.pendingHave))...)
	}
	if a.c.pendingN == 0 {
		a.c.pendingLevel = level
	}
	if a.c.pendingLevel != level {
		a.c.mu.Unlock()
		return nil, 0, fmt.Errorf("%w: mismatched checkpoint levels (%d vs %d)", ErrFTI, level, a.c.pendingLevel)
	}
	var recycled []byte
	if owned {
		recycled = a.c.pending[id][:0]
		a.c.pending[id] = data
	} else {
		a.c.pending[id] = append(a.c.pending[id][:0], data...)
	}
	if !a.c.pendingHave[id] {
		a.c.pendingHave[id] = true
		a.c.pendingN++
	}
	complete := a.c.pendingN == size
	var commitErr error
	if complete {
		commitErr = a.c.commitLocked(level, a.c.pending[:size])
		a.c.resetPendingLocked()
	}
	a.c.mu.Unlock()
	if commitErr != nil {
		return nil, 0, commitErr
	}

	// FTI synchronizes the application after a checkpoint.
	a.r.Barrier()
	return recycled, dur, nil
}

// resetPendingLocked abandons or completes the in-flight collective: the
// per-rank buffers stay allocated for the next checkpoint round.
func (c *Cluster) resetPendingLocked() {
	for i := range c.pendingHave {
		c.pendingHave[i] = false
	}
	c.pendingN = 0
}

// rankData returns rank r's contribution to the collective (nil for ranks
// beyond the run size).
func rankData(data [][]byte, r int) []byte {
	if r < 0 || r >= len(data) {
		return nil
	}
	return data[r]
}

// commitLocked persists a complete collective checkpoint. data is indexed
// by rank; the buffers belong to the pending scratch, so a snapshot either
// copies into its own (recycled) storage or — at a payload's last use —
// swaps buffers with the scratch (stealSnapshot).
func (c *Cluster) commitLocked(level int, data [][]byte) error {
	c.version++
	v := c.version
	switch level {
	case 1:
		for rank := range data {
			c.local[0][rank] = c.corruptLocked(1, rank, stealSnapshot(c.local[0][rank], v, &data[rank]))
		}
	case 2:
		for rank, d := range data {
			c.local[0][rank] = c.corruptLocked(2, rank, reuseSnapshot(c.local[0][rank], v, d))
			p := c.PartnerOf(rank)
			// The partner copy corrupts independently of the owner's own
			// copy: its injection identity is the owner rank + node count.
			// This is the payload's last use, so it is stolen, not copied.
			c.partner[0][p] = c.corruptLocked(2, rank+c.nodes, stealSnapshot(c.partner[0][p], v, &data[rank]))
		}
	case 3:
		for rank, d := range data {
			c.rsData[0][rank] = c.corruptLocked(3, rank, reuseSnapshot(c.rsData[0][rank], v, d))
		}
		// Encode each group with real Reed–Solomon parity, reusing the
		// cluster's padded-shard scratch and each group's previous parity
		// buffers as the EncodeInto destinations.
		groups := (c.nodes + c.cfg.GroupSize - 1) / c.cfg.GroupSize
		if c.encShards == nil {
			c.encShards = make([][]byte, c.cfg.GroupSize)
			c.encParity = make([][]byte, c.cfg.Parity)
		}
		for g := 0; g < groups; g++ {
			ranks := c.groupRanks(g)
			size := 0
			for _, r := range ranks {
				if len(rankData(data, r)) > size {
					size = len(rankData(data, r))
				}
			}
			shards := c.encShards
			for idx := range shards {
				if cap(shards[idx]) < size {
					shards[idx] = make([]byte, size)
				} else {
					shards[idx] = shards[idx][:size]
				}
				var d []byte
				if idx < len(ranks) {
					d = rankData(data, ranks[idx])
				}
				n := copy(shards[idx], d)
				clear(shards[idx][n:]) // zero padding (and clears stale scratch)
			}
			par := c.rsPar[g]
			if len(par) != c.cfg.Parity {
				par = make([]snapshot, c.cfg.Parity)
			}
			parity := c.encParity
			for i := range parity {
				if cap(par[i].data) < size {
					par[i].data = make([]byte, size)
				}
				parity[i] = par[i].data[:size]
			}
			if err := c.code.EncodeInto(shards, parity); err != nil {
				return err
			}
			for i := range par {
				par[i] = snapshot{version: v, data: parity[i], sum: crc32.Checksum(parity[i], crcTable)}
				if c.injector != nil {
					if f, ok := c.injector.ParityFault(g, i, v, len(par[i].data)); ok {
						par[i].data = f.Apply(par[i].data)
						c.injected++
					}
				}
			}
			c.rsPar[g] = par
			c.rsSizes[g] = size
			lens := c.rsLens[g]
			if len(lens) != len(ranks) {
				lens = make([]int, len(ranks))
			}
			sums := c.rsSums[g]
			if len(sums) != len(ranks) {
				sums = make([]uint32, len(ranks))
			}
			// Content CRCs per member live in the group's replicated
			// metadata (small, mirrored like FTI's topology files), so a
			// reconstructed shard can be verified even though the original
			// holder — and its checksum — died with the crash.
			for idx, r := range ranks {
				lens[idx] = len(rankData(data, r))
				sums[idx] = crc32.Checksum(rankData(data, r), crcTable)
			}
			c.rsLens[g] = lens
			c.rsSums[g] = sums
		}
	case 4:
		for rank := range data {
			c.pfs[rank] = c.corruptLocked(4, rank, stealSnapshot(c.pfs[rank], v, &data[rank]))
		}
	}
	return nil
}

// Crash marks the given nodes dead and destroys the storage a real crash
// would: their local devices (level-1 files, level-2 copies they held,
// level-3 shards and parity stored on them). Level-4 (PFS) data is
// untouched. Dead nodes are assumed replaced by spares immediately (the
// paper's allocation period A covers the delay), so the node count is
// unchanged and `alive` is reset after accounting for the storage damage.
func (c *Cluster) Crash(nodeSet []int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.resetPendingLocked() // abandon any checkpoint that was mid-flight
	crashed := make(map[int]bool, len(nodeSet))
	for _, n := range nodeSet {
		if n < 0 || n >= c.nodes {
			return fmt.Errorf("%w: crash of invalid node %d", ErrFTI, n)
		}
		crashed[n] = true
	}
	for n := range crashed {
		delete(c.local[0], n)
		delete(c.partner[0], n)
		delete(c.rsData[0], n)
	}
	// Destroy parity shards whose holder nodes crashed.
	for g := 0; g < c.numGroups(); g++ {
		par := c.rsPar[g]
		for i := range par {
			if crashed[c.parityHolder(g, i)] {
				par[i] = snapshot{}
			}
		}
	}
	return nil
}

// RecoveryState reports, per level, whether the latest checkpoint at that
// level is fully restorable and its version.
type RecoveryState struct {
	Level     int
	Version   int
	Available bool
}

// Committed reports whether any checkpoint has ever committed at any
// level. The version counter is monotone — crashes and corruption never
// roll it back — so this distinguishes "nothing to protect yet" from
// "the hierarchy lost everything it held".
func (c *Cluster) Committed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.version > 0
}

// Survey reports recoverability of each level's newest checkpoint.
func (c *Cluster) Survey() []RecoveryState {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]RecoveryState, Levels)
	for lvl := 1; lvl <= Levels; lvl++ {
		v, ok := c.recoverableLocked(lvl)
		out[lvl-1] = RecoveryState{Level: lvl, Version: v, Available: ok}
	}
	return out
}

// BestRecovery returns the cheapest (lowest) level whose newest checkpoint
// is fully restorable, preferring the most recent version on ties at
// different levels. It returns ok=false when nothing survives (restart
// from scratch).
func (c *Cluster) BestRecovery() (level, version int, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	bestV := -1
	bestL := 0
	for lvl := 1; lvl <= Levels; lvl++ {
		if v, avail := c.recoverableLocked(lvl); avail && v > bestV {
			bestV, bestL = v, lvl
		}
	}
	if bestL == 0 {
		return 0, 0, false
	}
	return bestL, bestV, true
}

func (c *Cluster) recoverableLocked(level int) (int, bool) {
	switch level {
	case 1:
		return c.completeVersion(c.local[0])
	case 2:
		// Every rank's data must exist either on its own device or as the
		// partner copy, all at one version.
		v := -1
		for rank := 0; rank < c.nodes; rank++ {
			own, okOwn := c.local[0][rank]
			cp, okCp := c.partner[0][c.PartnerOf(rank)]
			var sv int
			switch {
			case okOwn && okCp:
				sv = maxInt(own.version, cp.version)
			case okOwn:
				sv = own.version
			case okCp:
				sv = cp.version
			default:
				return 0, false
			}
			if v == -1 {
				v = sv
			} else if sv != v {
				return 0, false
			}
		}
		return v, v > 0
	case 3:
		// Each group must have ≥ k shards (data present or parity alive).
		groups := (c.nodes + c.cfg.GroupSize - 1) / c.cfg.GroupSize
		v := -1
		for g := 0; g < groups; g++ {
			ranks := c.groupRanks(g)
			have := 0
			gv := -1
			for _, r := range ranks {
				if s, ok := c.rsData[0][r]; ok {
					have++
					gv = s.version
				}
			}
			for _, p := range c.rsPar[g] {
				if p.data != nil {
					have++
					gv = p.version
				}
			}
			// A short tail group has implicit zero-padding shards that are
			// always available; decoding needs k shards in total.
			if len(ranks) < c.cfg.GroupSize {
				have += c.cfg.GroupSize - len(ranks)
			}
			if have < c.cfg.GroupSize {
				return 0, false
			}
			if v == -1 {
				v = gv
			} else if gv != v {
				return 0, false
			}
		}
		return v, v > 0
	case 4:
		return c.completeVersion(c.pfs)
	}
	return 0, false
}

func (c *Cluster) completeVersion(m map[int]snapshot) (int, bool) {
	if len(m) != c.nodes {
		return 0, false
	}
	v := -1
	for _, s := range m {
		if v == -1 {
			v = s.version
		} else if s.version != v {
			return 0, false
		}
	}
	return v, v > 0
}

// Restore reconstructs every rank's protected bytes from the newest
// checkpoint at the given level, verifying every snapshot read against
// its commit-time checksum. For level 3 it performs real Reed–Solomon
// reconstruction of any missing or corrupt shards. The returned slice is
// indexed by rank. A checksum mismatch that cannot be healed within the
// level returns an error wrapping ErrCorrupt; callers wanting automatic
// fall-through to the next rung use RestoreEscalating.
func (c *Cluster) Restore(level int) ([][]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.restoreLocked(level)
}

func (c *Cluster) restoreLocked(level int) ([][]byte, error) {
	v, ok := c.recoverableLocked(level)
	if !ok {
		return nil, fmt.Errorf("%w: level %d not recoverable", ErrFTI, level)
	}
	out := make([][]byte, c.nodes)
	switch level {
	case 1:
		for rank := 0; rank < c.nodes; rank++ {
			s := c.local[0][rank]
			if !s.ok() {
				return nil, fmt.Errorf("%w: level 1 rank %d (version %d)", ErrCorrupt, rank, s.version)
			}
			out[rank] = append([]byte(nil), s.data...)
		}
	case 2:
		// Within-level escalation: a rank's own copy falls through to the
		// partner copy when missing, stale, or corrupt. Both copies must be
		// at the rung's single complete version v — restoring whatever each
		// rank happens to hold would resume ranks at different iterations,
		// which desynchronizes every subsequent collective.
		for rank := 0; rank < c.nodes; rank++ {
			own, okOwn := c.local[0][rank]
			cp, okCp := c.partner[0][c.PartnerOf(rank)]
			switch {
			case okOwn && own.version == v && own.ok():
				out[rank] = append([]byte(nil), own.data...)
			case okCp && cp.version == v && cp.ok():
				out[rank] = append([]byte(nil), cp.data...)
			default:
				return nil, fmt.Errorf("%w: level 2 rank %d (no intact copy at version %d)", ErrCorrupt, rank, v)
			}
		}
	case 3:
		groups := (c.nodes + c.cfg.GroupSize - 1) / c.cfg.GroupSize
		for g := 0; g < groups; g++ {
			ranks := c.groupRanks(g)
			size := c.rsSizes[g]
			shards := make([][]byte, c.cfg.GroupSize+c.cfg.Parity)
			present := 0
			for idx := 0; idx < c.cfg.GroupSize; idx++ {
				if idx < len(ranks) {
					// A shard that fails its checksum is treated as an
					// erasure: Reed–Solomon can rebuild it as long as the
					// group still holds k intact shards.
					if s, ok := c.rsData[0][ranks[idx]]; ok && s.ok() {
						padded := make([]byte, size)
						copy(padded, s.data)
						shards[idx] = padded
						present++
					}
				} else {
					shards[idx] = make([]byte, size) // implicit zero padding shard
					present++
				}
			}
			for i, p := range c.rsPar[g] {
				if p.data != nil && p.ok() {
					// Present shards are read-only inputs to Reconstruct, so
					// the stored parity can be passed without a copy; only
					// rebuilt (nil) slots get fresh buffers, and Restore
					// returns none of the parity slots.
					shards[c.cfg.GroupSize+i] = p.data
					present++
				}
			}
			if present < c.cfg.GroupSize {
				return nil, fmt.Errorf("%w: level 3 group %d holds %d of %d intact shards",
					ErrCorrupt, g, present, c.cfg.GroupSize)
			}
			if err := c.code.Reconstruct(shards); err != nil {
				return nil, err
			}
			lens := c.rsLens[g]
			sums := c.rsSums[g]
			for idx, r := range ranks {
				data := shards[idx][:lens[idx]]
				if idx < len(sums) && crc32.Checksum(data, crcTable) != sums[idx] {
					return nil, fmt.Errorf("%w: level 3 rank %d failed post-reconstruction verify", ErrCorrupt, r)
				}
				out[r] = data
			}
		}
	case 4:
		for rank := 0; rank < c.nodes; rank++ {
			s := c.pfs[rank]
			if !s.ok() {
				return nil, fmt.Errorf("%w: level 4 rank %d (version %d)", ErrCorrupt, rank, s.version)
			}
			out[rank] = append([]byte(nil), s.data...)
		}
	}
	return out, nil
}

// RecoveryAttempt records one rung tried during an escalating restore.
type RecoveryAttempt struct {
	Level   int    // rung tried (1–4)
	Version int    // checkpoint version the rung held
	OK      bool   // whether the rung restored and verified
	Reason  string // failure detail when !OK
}

// RecoveryOutcome describes how an escalating restore resolved: every
// rung attempted in order, and the rung/version that finally held (Level
// 0 when nothing did).
type RecoveryOutcome struct {
	Attempts []RecoveryAttempt
	Level    int // rung that held; 0 = recovery exhausted
	Version  int
}

// Escalated reports whether at least one rung failed before one held.
func (o RecoveryOutcome) Escalated() bool {
	return len(o.Attempts) > 1 && o.Level != 0
}

// RestoreEscalating walks the recovery hierarchy until a rung restores
// and verifies: candidates are every structurally available level,
// preferred by newest version first and cheapest level on ties — the same
// preference BestRecovery encodes — and a rung that fails verification
// (corrupted or incomplete snapshots) falls through to the next instead
// of trusting the survey. The outcome records each attempt, which is what
// prices detection latency: the caller charges every failed rung's
// recovery cost before the one that held. When all rungs fail the error
// wraps ErrExhausted and names the last rung tried; the caller decides
// whether a from-scratch restart is acceptable.
func (c *Cluster) RestoreEscalating() ([][]byte, RecoveryOutcome, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	type candidate struct{ level, version int }
	var cands []candidate
	for lvl := 1; lvl <= Levels; lvl++ {
		if v, ok := c.recoverableLocked(lvl); ok {
			cands = append(cands, candidate{lvl, v})
		}
	}
	// Newest version first; cheapest (lowest) level on equal versions.
	// Insertion sort: Levels is 4.
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0; j-- {
			a, b := cands[j-1], cands[j]
			if b.version > a.version || (b.version == a.version && b.level < a.level) {
				cands[j-1], cands[j] = b, a
			} else {
				break
			}
		}
	}
	var out RecoveryOutcome
	for _, cand := range cands {
		data, err := c.restoreLocked(cand.level)
		if err == nil {
			out.Attempts = append(out.Attempts, RecoveryAttempt{Level: cand.level, Version: cand.version, OK: true})
			out.Level, out.Version = cand.level, cand.version
			return data, out, nil
		}
		out.Attempts = append(out.Attempts, RecoveryAttempt{
			Level: cand.level, Version: cand.version, Reason: err.Error(),
		})
	}
	last := 0
	if n := len(out.Attempts); n > 0 {
		last = out.Attempts[n-1].Level
	}
	return nil, out, fmt.Errorf("%w: %d rungs tried, last rung %d", ErrExhausted, len(out.Attempts), last)
}

// RecoveryCost returns the per-node virtual-time cost of restoring from
// the given level with perNode bytes.
func (c *Cluster) RecoveryCost(level, perNode int) (float64, error) {
	return c.cfg.Hierarchy.RecoveryTime(level, perNode, c.nodes, c.cfg.GroupSize)
}

// CheckpointCost returns the per-node virtual-time cost of a checkpoint at
// the given level with perNode bytes — what an aborted write wastes pro
// rata when a failure lands inside the checkpoint window.
func (c *Cluster) CheckpointCost(level, perNode int) (float64, error) {
	return c.cfg.Hierarchy.CheckpointTime(level, perNode, c.nodes, c.cfg.GroupSize)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
