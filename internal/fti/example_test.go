package fti_test

import (
	"fmt"

	"mlckpt/internal/fti"
	"mlckpt/internal/mpisim"
)

// Example checkpoints eight ranks at level 2 (partner copy), loses a node,
// and restores from the partner copies.
func Example() {
	cluster, err := fti.NewCluster(8, fti.DefaultConfig())
	if err != nil {
		panic(err)
	}
	if _, err := mpisim.Run(8, mpisim.DefaultCostModel(), func(r *mpisim.Rank) {
		agent := cluster.Attach(r)
		if _, err := agent.Checkpoint(2, []byte{byte(r.ID())}); err != nil {
			panic(err)
		}
	}); err != nil {
		panic(err)
	}

	if err := cluster.Crash([]int{4}); err != nil {
		panic(err)
	}
	level, _, ok := cluster.BestRecovery()
	fmt.Printf("recoverable: %v from level %d\n", ok, level)

	data, err := cluster.Restore(level)
	if err != nil {
		panic(err)
	}
	fmt.Printf("rank 4 state recovered: %v\n", data[4][0] == 4)
	// Output:
	// recoverable: true from level 2
	// rank 4 state recovered: true
}
