package fti

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"mlckpt/internal/mpisim"
	"mlckpt/internal/storage"
)

// runCheckpoint executes one SPMD program where every rank checkpoints its
// payload at the given level.
func runCheckpoint(t *testing.T, c *Cluster, level int, payload func(rank int) []byte) float64 {
	t.Helper()
	var dur float64
	_, err := mpisim.Run(c.Nodes(), mpisim.DefaultCostModel(), func(r *mpisim.Rank) {
		a := c.Attach(r)
		d, err := a.Checkpoint(level, payload(r.ID()))
		if err != nil {
			panic(err)
		}
		if r.ID() == 0 {
			dur = d
		}
	})
	if err != nil {
		t.Fatalf("checkpoint run: %v", err)
	}
	return dur
}

func rankPayload(rank int) []byte {
	return []byte(fmt.Sprintf("rank-%03d-state-%d", rank, rank*rank))
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(0, DefaultConfig()); !errors.Is(err, ErrFTI) {
		t.Errorf("0 nodes: %v", err)
	}
	bad := DefaultConfig()
	bad.GroupSize = 0
	if _, err := NewCluster(8, bad); !errors.Is(err, ErrFTI) {
		t.Errorf("0 group: %v", err)
	}
	badH := DefaultConfig()
	badH.Hierarchy.LocalBandwidth = 0
	if _, err := NewCluster(8, badH); !errors.Is(err, storage.ErrStorage) {
		t.Errorf("bad hierarchy: %v", err)
	}
}

func TestLevel1RoundTrip(t *testing.T) {
	c, err := NewCluster(8, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	runCheckpoint(t, c, 1, rankPayload)
	lvl, v, ok := c.BestRecovery()
	if !ok || lvl != 1 || v != 1 {
		t.Fatalf("BestRecovery = (%d, %d, %v)", lvl, v, ok)
	}
	data, err := c.Restore(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if !bytes.Equal(data[i], rankPayload(i)) {
			t.Errorf("rank %d data corrupted", i)
		}
	}
}

func TestLevel1DiesOnAnyCrash(t *testing.T) {
	c, _ := NewCluster(8, DefaultConfig())
	runCheckpoint(t, c, 1, rankPayload)
	if err := c.Crash([]int{3}); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.BestRecovery(); ok {
		t.Error("level-1-only checkpoint survived a node crash")
	}
	if _, err := c.Restore(1); !errors.Is(err, ErrFTI) {
		t.Errorf("Restore after crash: %v", err)
	}
}

func TestLevel2SurvivesNonAdjacentCrashes(t *testing.T) {
	c, _ := NewCluster(8, DefaultConfig())
	runCheckpoint(t, c, 2, rankPayload)
	// Nodes 1 and 4 are not partners of each other (partner(i) = i+1).
	if err := c.Crash([]int{1, 4}); err != nil {
		t.Fatal(err)
	}
	lvl, _, ok := c.BestRecovery()
	if !ok || lvl != 2 {
		t.Fatalf("BestRecovery = (%d, _, %v), want level 2", lvl, ok)
	}
	data, err := c.Restore(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if !bytes.Equal(data[i], rankPayload(i)) {
			t.Errorf("rank %d data corrupted after partner recovery", i)
		}
	}
}

func TestLevel2FailsOnAdjacentCrashes(t *testing.T) {
	c, _ := NewCluster(8, DefaultConfig())
	runCheckpoint(t, c, 2, rankPayload)
	// 2 and 3 are adjacent: node 2's data lived on 2 (dead) and on its
	// partner 3 (dead) -> unrecoverable at level 2.
	if err := c.Crash([]int{2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.BestRecovery(); ok {
		t.Error("level 2 survived adjacent crashes")
	}
}

func TestLevel3SurvivesUpToParityPerGroup(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GroupSize = 4
	cfg.Parity = 2
	c, _ := NewCluster(8, cfg) // groups {0..3}, {4..7}
	runCheckpoint(t, c, 3, rankPayload)
	// Two data losses in group 0 (its parity lives on group 1) and one in
	// group 1 that also destroys one of group 1's parity shards hosted on
	// node 0 — both groups stay within the two-erasure budget.
	if err := c.Crash([]int{0, 2, 6}); err != nil {
		t.Fatal(err)
	}
	lvl, _, ok := c.BestRecovery()
	if !ok || lvl != 3 {
		t.Fatalf("BestRecovery = (%d, _, %v), want level 3", lvl, ok)
	}
	data, err := c.Restore(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if !bytes.Equal(data[i], rankPayload(i)) {
			t.Errorf("rank %d data wrong after RS reconstruction", i)
		}
	}
}

func TestLevel3FailsBeyondParity(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GroupSize = 4
	cfg.Parity = 1
	c, _ := NewCluster(8, cfg)
	runCheckpoint(t, c, 3, rankPayload)
	// Two data losses in one group with parity 1: unrecoverable.
	if err := c.Crash([]int{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.BestRecovery(); ok {
		t.Error("level 3 survived more losses than parity")
	}
}

func TestLevel4SurvivesEverything(t *testing.T) {
	c, _ := NewCluster(8, DefaultConfig())
	runCheckpoint(t, c, 4, rankPayload)
	if err := c.Crash([]int{0, 1, 2, 3, 4, 5, 6, 7}); err != nil {
		t.Fatal(err)
	}
	lvl, _, ok := c.BestRecovery()
	if !ok || lvl != 4 {
		t.Fatalf("BestRecovery = (%d, _, %v), want level 4", lvl, ok)
	}
	data, err := c.Restore(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if !bytes.Equal(data[i], rankPayload(i)) {
			t.Errorf("rank %d PFS data corrupted", i)
		}
	}
}

func TestBestRecoveryPrefersNewestThenCheapest(t *testing.T) {
	c, _ := NewCluster(8, DefaultConfig())
	runCheckpoint(t, c, 4, rankPayload)                                         // version 1
	runCheckpoint(t, c, 1, func(r int) []byte { return []byte{byte(r), 0xFF} }) // version 2
	lvl, v, ok := c.BestRecovery()
	if !ok || lvl != 1 || v != 2 {
		t.Fatalf("BestRecovery = (%d, %d, %v), want newest level-1 v2", lvl, v, ok)
	}
	// After a crash, the L1 v2 checkpoint dies; fall back to PFS v1.
	if err := c.Crash([]int{6}); err != nil {
		t.Fatal(err)
	}
	lvl, v, ok = c.BestRecovery()
	if !ok || lvl != 4 || v != 1 {
		t.Fatalf("after crash BestRecovery = (%d, %d, %v), want PFS v1", lvl, v, ok)
	}
}

func TestCheckpointDurationsFollowTableIIShape(t *testing.T) {
	// Per-level durations at a fixed payload: levels must be ordered, and
	// the level-4 (PFS) duration must grow with the node count while
	// levels 1-3 stay flat — Table II's shape.
	payload := func(int) []byte { return make([]byte, 1<<16) }
	durAt := func(nodes, level int) float64 {
		c, err := NewCluster(nodes, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return runCheckpoint(t, c, level, payload)
	}
	var d128 [5]float64
	for lvl := 1; lvl <= 4; lvl++ {
		d128[lvl] = durAt(128, lvl)
	}
	if !(d128[1] < d128[2] && d128[2] < d128[3] && d128[3] < d128[4]) {
		t.Errorf("level durations not increasing: %v", d128[1:])
	}
	for lvl := 1; lvl <= 3; lvl++ {
		if durAt(512, lvl) != d128[lvl] {
			t.Errorf("level %d duration varies with scale", lvl)
		}
	}
	if durAt(512, 4) <= d128[4] {
		t.Error("PFS duration did not grow with scale")
	}
}

func TestCheckpointInvalidLevel(t *testing.T) {
	c, _ := NewCluster(2, DefaultConfig())
	_, err := mpisim.Run(2, mpisim.DefaultCostModel(), func(r *mpisim.Rank) {
		a := c.Attach(r)
		if _, err := a.Checkpoint(0, nil); err == nil {
			panic("level 0 accepted")
		}
		if _, err := a.Checkpoint(5, nil); err == nil {
			panic("level 5 accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCrashInvalidNode(t *testing.T) {
	c, _ := NewCluster(4, DefaultConfig())
	if err := c.Crash([]int{9}); !errors.Is(err, ErrFTI) {
		t.Errorf("invalid node: %v", err)
	}
}

func TestSurvey(t *testing.T) {
	c, _ := NewCluster(8, DefaultConfig())
	runCheckpoint(t, c, 2, rankPayload)
	states := c.Survey()
	if len(states) != 4 {
		t.Fatalf("survey length %d", len(states))
	}
	// A level-2 checkpoint also populates the local level-1 files.
	if !states[0].Available || !states[1].Available {
		t.Errorf("levels 1-2 should be available: %+v", states)
	}
	if states[2].Available || states[3].Available {
		t.Errorf("levels 3-4 should be empty: %+v", states)
	}
}

func TestRecoveryCost(t *testing.T) {
	c, _ := NewCluster(64, DefaultConfig())
	prev := 0.0
	for lvl := 1; lvl <= 4; lvl++ {
		cost, err := c.RecoveryCost(lvl, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		if cost <= 0 {
			t.Errorf("level %d recovery cost %g", lvl, cost)
		}
		_ = prev
		prev = cost
	}
	if _, err := c.RecoveryCost(7, 1); err == nil {
		t.Error("invalid level accepted")
	}
}

func TestUnevenPayloadSizesThroughRS(t *testing.T) {
	// Ranks with different state sizes must round-trip through the padded
	// RS encoding.
	cfg := DefaultConfig()
	cfg.GroupSize = 4
	cfg.Parity = 2
	c, _ := NewCluster(8, cfg)
	payload := func(r int) []byte {
		out := make([]byte, 100+r*37)
		for i := range out {
			out[i] = byte(r ^ i)
		}
		return out
	}
	runCheckpoint(t, c, 3, payload)
	if err := c.Crash([]int{0, 7}); err != nil {
		t.Fatal(err)
	}
	data, err := c.Restore(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if !bytes.Equal(data[i], payload(i)) {
			t.Errorf("rank %d: got %d bytes, want %d", i, len(data[i]), len(payload(i)))
		}
	}
}

func TestShortTailGroup(t *testing.T) {
	// 10 nodes with group size 4: the last group has only 2 members and
	// relies on implicit zero padding shards.
	cfg := DefaultConfig()
	cfg.GroupSize = 4
	cfg.Parity = 2
	c, _ := NewCluster(10, cfg)
	runCheckpoint(t, c, 3, rankPayload)
	if err := c.Crash([]int{8, 9}); err != nil {
		t.Fatal(err)
	}
	lvl, _, ok := c.BestRecovery()
	if !ok || lvl != 3 {
		t.Fatalf("tail group not recoverable: (%d, %v)", lvl, ok)
	}
	data, err := c.Restore(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if !bytes.Equal(data[i], rankPayload(i)) {
			t.Errorf("rank %d corrupted", i)
		}
	}
}
