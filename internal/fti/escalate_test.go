package fti

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"mlckpt/internal/inject"
	"mlckpt/internal/stats"
)

// checkpointAll writes one checkpoint at each level 1..4 (versions 1..4),
// all with the same per-rank payload.
func checkpointAll(t *testing.T, c *Cluster, payload func(rank int) []byte) {
	t.Helper()
	for lvl := 1; lvl <= Levels; lvl++ {
		runCheckpoint(t, c, lvl, payload)
	}
}

func wantPayloads(t *testing.T, data [][]byte, payload func(rank int) []byte) {
	t.Helper()
	for i := range data {
		if !bytes.Equal(data[i], payload(i)) {
			t.Fatalf("rank %d restored %q, want %q", i, data[i], payload(i))
		}
	}
}

// corruptAll returns a Faulter that corrupts every snapshot committed at
// the given levels (probability 1), bit-flip only.
func corruptAll(levels ...int) Faulter {
	rate := make([]float64, Levels)
	for _, l := range levels {
		rate[l-1] = 1
	}
	return inject.MustCompile(inject.Spec{CorruptRate: rate}, 1, "corrupt-all")
}

func TestRestoreDetectsCorruption(t *testing.T) {
	for lvl := 1; lvl <= Levels; lvl++ {
		c, err := NewCluster(8, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		c.SetInjector(corruptAll(lvl))
		runCheckpoint(t, c, lvl, rankPayload)
		if c.InjectedFaults() == 0 {
			t.Fatalf("level %d: no faults injected", lvl)
		}
		// The survey is structural, so the level still reports available —
		// exactly the trap verify-on-restore exists to catch.
		if _, ok := survey(c, lvl); !ok {
			t.Fatalf("level %d: survey lost the checkpoint", lvl)
		}
		if lvl == 2 || lvl == 3 {
			// Levels with internal redundancy heal total same-level
			// corruption only if enough replicas/shards verify; with every
			// copy corrupted, restore must fail, not fabricate data.
			if _, err := c.Restore(lvl); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("level %d: Restore err = %v, want ErrCorrupt", lvl, err)
			}
			continue
		}
		if _, err := c.Restore(lvl); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("level %d: Restore err = %v, want ErrCorrupt", lvl, err)
		}
	}
}

func survey(c *Cluster, level int) (int, bool) {
	for _, st := range c.Survey() {
		if st.Level == level {
			return st.Version, st.Available
		}
	}
	return 0, false
}

func TestLevel2FallsThroughToPartnerCopy(t *testing.T) {
	c, _ := NewCluster(8, DefaultConfig())
	// Corrupt only own copies (identity < nodes); partner copies
	// (identity >= nodes) stay clean — within-level escalation must heal.
	c.SetInjector(faulterFunc(func(level, rank, version, size int) (inject.Fault, bool) {
		if level == 2 && rank < c.Nodes() {
			return inject.Fault{Kind: inject.BitFlip, Offset: 0, Bit: 1}, true
		}
		return inject.Fault{}, false
	}))
	runCheckpoint(t, c, 2, rankPayload)
	data, err := c.Restore(2)
	if err != nil {
		t.Fatal(err)
	}
	wantPayloads(t, data, rankPayload)
}

// faulterFunc adapts a function to the Faulter interface (snapshot only).
type faulterFunc func(level, rank, version, size int) (inject.Fault, bool)

func (f faulterFunc) SnapshotFault(level, rank, version, size int) (inject.Fault, bool) {
	return f(level, rank, version, size)
}
func (f faulterFunc) ParityFault(group, shard, version, size int) (inject.Fault, bool) {
	return inject.Fault{}, false
}

func TestLevel3HealsCorruptShardAsErasure(t *testing.T) {
	c, _ := NewCluster(8, DefaultConfig()) // one group of 8, parity 2
	c.SetInjector(faulterFunc(func(level, rank, version, size int) (inject.Fault, bool) {
		if level == 3 && (rank == 2 || rank == 5) { // two corrupt shards = parity budget
			return inject.Fault{Kind: inject.Truncate, Len: size / 2}, true
		}
		return inject.Fault{}, false
	}))
	runCheckpoint(t, c, 3, rankPayload)
	data, err := c.Restore(3)
	if err != nil {
		t.Fatal(err)
	}
	wantPayloads(t, data, rankPayload)

	// Three corrupt shards exceed the parity budget: must fail loudly.
	c2, _ := NewCluster(8, DefaultConfig())
	c2.SetInjector(faulterFunc(func(level, rank, version, size int) (inject.Fault, bool) {
		if level == 3 && rank <= 2 {
			return inject.Fault{Kind: inject.BitFlip, Offset: 0, Bit: 4}, true
		}
		return inject.Fault{}, false
	}))
	runCheckpoint(t, c2, 3, rankPayload)
	if _, err := c2.Restore(3); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("3 corrupt shards: err = %v, want ErrCorrupt", err)
	}
}

func TestEscalationFallsThroughHierarchy(t *testing.T) {
	// Checkpoints at all four levels (versions 1..4: level 4 newest), with
	// levels 3 and 4 silently corrupted everywhere. The escalating restore
	// must try 4 (newest), then 3, then land on the surviving local copies
	// (level 1, which the level-2 checkpoint refreshed to version 2).
	c, _ := NewCluster(8, DefaultConfig())
	c.SetInjector(corruptAll(3, 4))
	checkpointAll(t, c, rankPayload)
	data, outcome, err := c.RestoreEscalating()
	if err != nil {
		t.Fatal(err)
	}
	wantPayloads(t, data, rankPayload)
	if outcome.Level != 1 {
		t.Fatalf("held rung %d, want 1 (attempts: %+v)", outcome.Level, outcome.Attempts)
	}
	if !outcome.Escalated() {
		t.Fatal("outcome not marked escalated")
	}
	wantLevels := []int{4, 3, 1}
	if len(outcome.Attempts) != len(wantLevels) {
		t.Fatalf("attempts = %+v, want rungs %v", outcome.Attempts, wantLevels)
	}
	for i, a := range outcome.Attempts {
		if a.Level != wantLevels[i] {
			t.Fatalf("attempt %d at rung %d, want %d", i, a.Level, wantLevels[i])
		}
		if a.OK != (i == len(wantLevels)-1) {
			t.Fatalf("attempt %d OK=%v", i, a.OK)
		}
		if !a.OK && a.Reason == "" {
			t.Fatalf("failed attempt %d carries no reason", i)
		}
	}
}

func TestEscalationExhaustedNamesLastRung(t *testing.T) {
	c, _ := NewCluster(8, DefaultConfig())
	c.SetInjector(corruptAll(1, 2, 3, 4))
	checkpointAll(t, c, rankPayload)
	_, outcome, err := c.RestoreEscalating()
	if !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted", err)
	}
	if outcome.Level != 0 {
		t.Fatalf("exhausted outcome held rung %d", outcome.Level)
	}
	if len(outcome.Attempts) == 0 {
		t.Fatal("no attempts recorded")
	}
	for _, a := range outcome.Attempts {
		if a.OK {
			t.Fatalf("exhausted outcome has OK attempt %+v", a)
		}
	}
}

func TestEscalationPrefersNewestVersion(t *testing.T) {
	// L4 at version 1, L1 at version 2: clean data everywhere — the newer
	// (cheaper-to-lose-less) L1 checkpoint must win, matching BestRecovery.
	c, _ := NewCluster(8, DefaultConfig())
	runCheckpoint(t, c, 4, rankPayload)
	newer := func(r int) []byte { return []byte(fmt.Sprintf("v2-rank-%d", r)) }
	runCheckpoint(t, c, 1, newer)
	data, outcome, err := c.RestoreEscalating()
	if err != nil {
		t.Fatal(err)
	}
	if outcome.Level != 1 || outcome.Version != 2 {
		t.Fatalf("held (%d, v%d), want (1, v2)", outcome.Level, outcome.Version)
	}
	wantPayloads(t, data, newer)

	lvl, v, ok := c.BestRecovery()
	if !ok || lvl != outcome.Level || v != outcome.Version {
		t.Fatalf("BestRecovery (%d,%d,%v) disagrees with escalation (%d,%d)",
			lvl, v, ok, outcome.Level, outcome.Version)
	}
}

// TestWorstCaseCrashSets covers the crash patterns the satellite names:
// simultaneous loss of a rank, its level-2 partner, and its group's
// parity holder.
func TestWorstCaseCrashSets(t *testing.T) {
	// 16 nodes, two groups of 8: group 0's parity lives on group 1's nodes.
	c, _ := NewCluster(16, DefaultConfig())
	checkpointAll(t, c, rankPayload)

	victim := 3
	partner := c.PartnerOf(victim)       // 4
	parityHolder := c.parityHolder(0, 0) // group 0's first parity host (in group 1)
	crash := []int{victim, partner, parityHolder}
	if err := c.Crash(crash); err != nil {
		t.Fatal(err)
	}

	// Level 1 dead (node losses), level 2 dead (partner-adjacent pair).
	if _, ok := survey(c, 1); ok {
		t.Error("level 1 survived node loss")
	}
	if _, ok := survey(c, 2); ok {
		t.Error("level 2 survived adjacent-pair loss")
	}
	// Level 3: group 0 lost ranks 3,4 (2 data shards <= parity 2) and one
	// of its parity shards is gone with the holder — but the two losses
	// inside the group are still within budget only if the parity that
	// remains suffices: 6 data + 1 parity = 7 < 8 -> NOT recoverable.
	if _, ok := survey(c, 3); ok {
		t.Error("level 3 survived data+parity loss beyond budget")
	}
	// Level 4 always survives; escalation must land there.
	data, outcome, err := c.RestoreEscalating()
	if err != nil {
		t.Fatal(err)
	}
	if outcome.Level != 4 {
		t.Fatalf("held rung %d, want 4", outcome.Level)
	}
	wantPayloads(t, data, rankPayload)
}

func TestCrashDuringPendingCheckpoint(t *testing.T) {
	c, _ := NewCluster(8, DefaultConfig())
	runCheckpoint(t, c, 2, rankPayload)

	// White-box: stage a half-complete collective checkpoint at level 1,
	// then crash a node before the last ranks contribute. The pending
	// buffers must be abandoned and the committed version-1 state remain
	// the recovery point.
	c.mu.Lock()
	c.pending = make([][]byte, c.nodes)
	c.pendingHave = make([]bool, c.nodes)
	for r := 0; r < c.nodes/2; r++ {
		c.pending[r] = []byte("half-written")
		c.pendingHave[r] = true
		c.pendingN++
	}
	c.pendingLevel = 1
	c.mu.Unlock()

	if err := c.Crash([]int{2}); err != nil {
		t.Fatal(err)
	}
	if v, ok := survey(c, 2); !ok || v != 1 {
		t.Fatalf("level 2 after crash: (v%d, %v), want (v1, true)", v, ok)
	}
	data, outcome, err := c.RestoreEscalating()
	if err != nil {
		t.Fatal(err)
	}
	if outcome.Level != 2 || outcome.Version != 1 {
		t.Fatalf("held (%d, v%d), want (2, v1)", outcome.Level, outcome.Version)
	}
	wantPayloads(t, data, rankPayload)

	// The abandoned pending state must not poison the next checkpoint.
	next := func(r int) []byte { return []byte(fmt.Sprintf("post-crash-%d", r)) }
	runCheckpoint(t, c, 1, next)
	data, err = c.Restore(1)
	if err != nil {
		t.Fatal(err)
	}
	wantPayloads(t, data, next)
}

// TestSurveyNeverLies is the property the satellite demands: for random
// crash sets, any level Survey or BestRecovery reports available must
// Restore without error (no corruption in play — structural availability
// must be truthful).
func TestSurveyNeverLies(t *testing.T) {
	rng := stats.NewRNG(stats.DeriveSeed(17, "fti/survey-never-lies"))
	for trial := 0; trial < 120; trial++ {
		nodes := 8 * (1 + rng.Intn(3)) // 8, 16, 24
		c, err := NewCluster(nodes, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		// Checkpoint a random subset of levels in random order.
		for _, lvl := range []int{1, 2, 3, 4} {
			if rng.Float64() < 0.8 {
				runCheckpoint(t, c, lvl, rankPayload)
			}
		}
		// Crash a random node set (possibly empty, possibly large).
		var crash []int
		for n := 0; n < nodes; n++ {
			if rng.Float64() < 0.25 {
				crash = append(crash, n)
			}
		}
		if err := c.Crash(crash); err != nil {
			t.Fatal(err)
		}
		for _, st := range c.Survey() {
			if !st.Available {
				continue
			}
			if _, err := c.Restore(st.Level); err != nil {
				t.Fatalf("trial %d (nodes=%d, crash=%v): Survey reported level %d available but Restore failed: %v",
					trial, nodes, crash, st.Level, err)
			}
		}
		if lvl, _, ok := c.BestRecovery(); ok {
			data, err := c.Restore(lvl)
			if err != nil {
				t.Fatalf("trial %d: BestRecovery level %d failed Restore: %v", trial, lvl, err)
			}
			wantPayloads(t, data, rankPayload)
		}
	}
}
