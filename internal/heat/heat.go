// Package heat implements the paper's evaluation application: Heat
// Distribution, a 2-D Jacobi stencil that computes the steady-state heat
// distribution of a room given boundary heat sources (Section IV-A). It
// runs on the mpisim runtime with the same communication structure as the
// MPI original — ghost-row exchange via nonblocking send/receive pairs
// plus a residual Allreduce every iteration — and exposes
// serialize/restore hooks for the FTI-style checkpoint toolkit.
//
// The domain is decomposed by rows: rank r owns a contiguous band of rows
// and exchanges one ghost row with each neighbor per iteration. Compute
// time is charged to the virtual clock per cell update, so speedup curves
// (Figure 2a) emerge from the interplay of the per-rank work shrinking
// with scale and the communication costs growing.
package heat

import (
	"encoding/binary"
	"errors"
	"fmt"

	"mlckpt/internal/enc"
	"mlckpt/internal/mpisim"
	"mlckpt/internal/obs"
)

// ErrHeat is returned for invalid configurations or corrupt snapshots.
var ErrHeat = errors.New("heat: error")

// Config describes the global problem.
type Config struct {
	GridX, GridY int     // global grid size (columns, rows)
	Iterations   int     // Jacobi iterations to run
	CellTime     float64 // simulated seconds per cell update (e.g. 5e-9)
	TopTemp      float64 // fixed temperature of the top boundary (heat source)
	EdgeTemp     float64 // fixed temperature of the other boundaries
}

// DefaultConfig is a small, fast problem for tests and examples.
func DefaultConfig() Config {
	return Config{GridX: 64, GridY: 64, Iterations: 50, CellTime: 5e-9, TopTemp: 100}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.GridX < 3 || c.GridY < 3 {
		return fmt.Errorf("%w: grid %dx%d too small", ErrHeat, c.GridX, c.GridY)
	}
	if c.Iterations < 0 || c.CellTime < 0 {
		return fmt.Errorf("%w: iterations %d, cell time %g", ErrHeat, c.Iterations, c.CellTime)
	}
	return nil
}

// Solver is the per-rank state of the computation.
type Solver struct {
	cfg      Config
	rank     *mpisim.Rank
	rowLo    int       // first owned global row
	rowHi    int       // one past the last owned global row
	cur, nxt []float64 // (rows+2) × GridX including ghost rows
	iter     int
	residual float64

	// Per-iteration scratch: the one-element residual vector for the
	// Allreduce. The ghost exchange itself needs no solver-side buffers —
	// SendFloats/RecvFloatsInto encode and decode directly between the
	// grid and the runtime's pooled message buffers.
	resBuf [1]float64
}

// NewSolver initializes the rank-local state: interior at EdgeTemp, top
// boundary at TopTemp.
func NewSolver(r *mpisim.Rank, cfg Config) (*Solver, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.GridY < r.Size() {
		return nil, fmt.Errorf("%w: %d rows over %d ranks", ErrHeat, cfg.GridY, r.Size())
	}
	s := &Solver{cfg: cfg, rank: r}
	s.rowLo = r.ID() * cfg.GridY / r.Size()
	s.rowHi = (r.ID() + 1) * cfg.GridY / r.Size()
	n := (s.rows() + 2) * cfg.GridX
	s.cur = make([]float64, n)
	s.nxt = make([]float64, n)
	if cfg.EdgeTemp != 0 {
		for i := range s.cur {
			s.cur[i] = cfg.EdgeTemp
		}
	}
	// Top boundary (global row 0) is the heat source.
	if s.rowLo == 0 {
		for x := 0; x < cfg.GridX; x++ {
			s.cur[s.idx(0, x)] = cfg.TopTemp
			s.nxt[s.idx(0, x)] = cfg.TopTemp
		}
	}
	return s, nil
}

func (s *Solver) rows() int { return s.rowHi - s.rowLo }

// idx maps a local row (0-based within the owned band) and column to the
// flattened index, accounting for the leading ghost row.
func (s *Solver) idx(localRow, col int) int {
	return (localRow+1)*s.cfg.GridX + col
}

// Iteration returns the number of completed iterations.
func (s *Solver) Iteration() int { return s.iter }

// Rank returns the underlying mpisim rank (checkpoint drivers attach their
// toolkit through it).
func (s *Solver) Rank() *mpisim.Rank { return s.rank }

// Residual returns the global max-change of the last completed iteration.
func (s *Solver) Residual() float64 { return s.residual }

// Temperature returns the current value at a global coordinate owned by
// this rank.
func (s *Solver) Temperature(globalRow, col int) (float64, error) {
	if globalRow < s.rowLo || globalRow >= s.rowHi || col < 0 || col >= s.cfg.GridX {
		return 0, fmt.Errorf("%w: (%d,%d) not owned by rank %d", ErrHeat, globalRow, col, s.rank.ID())
	}
	return s.cur[s.idx(globalRow-s.rowLo, col)], nil
}

const (
	tagUp   = 101 // to the previous rank (my first row)
	tagDown = 102 // to the next rank (my last row)
)

// Step performs one Jacobi iteration: ghost exchange, stencil update,
// residual Allreduce. It charges the virtual clock for the cell updates.
func (s *Solver) Step() {
	r := s.rank
	gx := s.cfg.GridX
	rows := s.rows()

	// --- Ghost-row exchange ---
	// Same message flow and virtual-clock op order as the original
	// Irecv/Isend/Waitall shape (sends are eager, so the clock sequence is
	// Send↑, Send↓, Recv↑, Recv↓), but through the float-payload calls:
	// SendFloats encodes the boundary row straight into the runtime's
	// pooled message buffer and RecvFloatsInto decodes straight into the
	// ghost row — two memory passes per message instead of the four an
	// encode/Send/RecvInto/decode chain costs, same bytes on the wire.
	if s.rowLo > 0 {
		r.SendFloats(r.ID()-1, tagUp, s.cur[s.idx(0, 0):s.idx(0, gx)])
	}
	if s.rowHi < s.cfg.GridY {
		r.SendFloats(r.ID()+1, tagDown, s.cur[s.idx(rows-1, 0):s.idx(rows-1, gx)])
	}
	if s.rowLo > 0 {
		r.RecvFloatsInto(r.ID()-1, tagDown, s.cur[0:gx])
	}
	if s.rowHi < s.cfg.GridY {
		r.RecvFloatsInto(r.ID()+1, tagUp, s.cur[(rows+1)*gx:(rows+2)*gx])
	}

	// --- Stencil update ---
	// Row-sliced form of the per-cell loop: boundary handling hoisted out
	// of the inner loop and the interior span handed to the stencilRow
	// kernel. The update order and per-cell arithmetic are unchanged, and
	// the residual is a max of non-negative values (order-independent), so
	// the result is bit-identical to the cell-at-a-time original.
	localMax := 0.0
	for lr := 0; lr < rows; lr++ {
		globalRow := s.rowLo + lr
		base := s.idx(lr, 0)
		src := s.cur[base : base+gx]
		dst := s.nxt[base : base+gx]
		if globalRow == 0 || globalRow == s.cfg.GridY-1 {
			copy(dst, src) // fixed boundary row
			continue
		}
		dst[0], dst[gx-1] = src[0], src[gx-1] // fixed side walls
		up := s.cur[base-gx : base]
		down := s.cur[base+gx : base+2*gx]
		if m := stencilRow(dst[1:gx-1], up[1:gx-1], down[1:gx-1], src[:gx-2], src[2:], src[1:gx-1]); m > localMax {
			localMax = m
		}
	}
	r.Compute(float64(rows*gx) * s.cfg.CellTime)
	s.cur, s.nxt = s.nxt, s.cur

	// --- Residual monitoring, as the eddy_uv program does each step ---
	s.resBuf[0] = localMax
	s.residual = r.Allreduce(mpisim.Max, s.resBuf[:])[0]
	s.iter++
}

// RunResult summarizes a completed (segment of a) run.
type RunResult struct {
	Iterations int
	Residual   float64
	WallClock  float64 // final virtual clock of this rank
}

// Run advances the solver until cfg.Iterations are complete or hook
// returns false. The hook (may be nil) is called after every iteration —
// checkpoint drivers live there.
func (s *Solver) Run(hook func(s *Solver) bool) RunResult {
	for s.iter < s.cfg.Iterations {
		s.Step()
		if hook != nil && !hook(s) {
			break
		}
	}
	return RunResult{Iterations: s.iter, Residual: s.residual, WallClock: s.rank.Clock()}
}

// Serialize captures the rank's protected state (iteration counter + owned
// rows, not ghosts) for checkpointing.
func (s *Solver) Serialize() []byte {
	return s.SerializeInto(nil)
}

// SerializeInto is Serialize into a caller-owned buffer (grown when too
// small), so checkpoint loops can reuse one snapshot buffer per rank.
func (s *Solver) SerializeInto(buf []byte) []byte {
	gx := s.cfg.GridX
	rows := s.rows()
	n := 8 + 8*rows*gx
	if cap(buf) < n {
		buf = make([]byte, n)
	} else {
		buf = buf[:n]
	}
	binary.LittleEndian.PutUint64(buf, uint64(s.iter))
	// The owned band is contiguous past the leading ghost row, so the
	// whole payload is one bulk encode.
	enc.PutFloat64s(buf[8:], s.cur[gx:gx+rows*gx])
	return buf
}

// Restore reinstates a snapshot produced by Serialize on the same
// decomposition.
func (s *Solver) Restore(data []byte) error {
	gx := s.cfg.GridX
	rows := s.rows()
	want := 8 + 8*rows*gx
	if len(data) != want {
		return fmt.Errorf("%w: snapshot %d bytes, want %d", ErrHeat, len(data), want)
	}
	s.iter = int(binary.LittleEndian.Uint64(data))
	enc.GetFloat64s(s.cur[gx:gx+rows*gx], data[8:])
	return nil
}

// SerialTime returns the failure-free single-core time of the full problem
// under the cost model: cells × iterations × CellTime. It anchors measured
// speedups (Figure 2a).
func (c Config) SerialTime() float64 {
	return float64(c.GridX) * float64(c.GridY) * float64(c.Iterations) * c.CellTime
}

// MeasureSpeedup runs the problem at each scale and returns (scale,
// speedup) samples: speedup = serial time / measured parallel wall clock.
func MeasureSpeedup(cfg Config, cost mpisim.CostModel, scales []int) ([]Sample, error) {
	return MeasureSpeedupObs(cfg, cost, scales, nil, "")
}

// MeasureSpeedupObs is MeasureSpeedup with telemetry: each scale's run is
// observed through rec on track "<track>/p<scale>" (see mpisim.RunObserved).
// A nil recorder or empty track disables tracing.
func MeasureSpeedupObs(cfg Config, cost mpisim.CostModel, scales []int, rec obs.Recorder, track string) ([]Sample, error) {
	return measureSpeedup(cfg, cost, scales, rec, track, func(r *mpisim.Rank) {
		s, err := NewSolver(r, cfg)
		if err != nil {
			panic(err)
		}
		s.Run(nil)
	})
}

func measureSpeedup(cfg Config, cost mpisim.CostModel, scales []int, rec obs.Recorder, track string, fn func(*mpisim.Rank)) ([]Sample, error) {
	serial := cfg.SerialTime()
	out := make([]Sample, 0, len(scales))
	for _, p := range scales {
		t := ""
		if track != "" {
			t = fmt.Sprintf("%s/p%d", track, p)
		}
		wall, err := mpisim.RunObserved(p, cost, fn, rec, t)
		if err != nil {
			return nil, err
		}
		out = append(out, Sample{Scale: p, Speedup: serial / wall})
	}
	return out, nil
}

// Sample is one measured (scale, speedup) point.
type Sample struct {
	Scale   int
	Speedup float64
}

// MeasureSpeedupBlocks is MeasureSpeedup for the 2-D block decomposition:
// same problem, same cost model, but four smaller neighbor messages per
// iteration instead of two larger ones.
func MeasureSpeedupBlocks(cfg Config, cost mpisim.CostModel, scales []int) ([]Sample, error) {
	return MeasureSpeedupBlocksObs(cfg, cost, scales, nil, "")
}

// MeasureSpeedupBlocksObs is MeasureSpeedupBlocks with telemetry, mirroring
// MeasureSpeedupObs.
func MeasureSpeedupBlocksObs(cfg Config, cost mpisim.CostModel, scales []int, rec obs.Recorder, track string) ([]Sample, error) {
	return measureSpeedup(cfg, cost, scales, rec, track, func(r *mpisim.Rank) {
		s, err := NewBlockSolver(r, cfg)
		if err != nil {
			panic(err)
		}
		s.Run(nil)
	})
}
