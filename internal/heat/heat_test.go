package heat

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"mlckpt/internal/mpisim"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.GridX = 1
	if err := bad.Validate(); !errors.Is(err, ErrHeat) {
		t.Errorf("tiny grid: %v", err)
	}
	neg := DefaultConfig()
	neg.Iterations = -1
	if err := neg.Validate(); !errors.Is(err, ErrHeat) {
		t.Errorf("negative iterations: %v", err)
	}
}

func TestTooManyRanks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GridY = 4
	_, err := mpisim.Run(8, mpisim.DefaultCostModel(), func(r *mpisim.Rank) {
		if _, err := NewSolver(r, cfg); err == nil {
			panic("8 ranks on 4 rows accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// gatherGrid runs the solver on p ranks and returns the final global grid.
func gatherGrid(t *testing.T, cfg Config, p int) [][]float64 {
	t.Helper()
	grid := make([][]float64, cfg.GridY)
	done := make(chan struct{}, p)
	_, err := mpisim.Run(p, mpisim.DefaultCostModel(), func(r *mpisim.Rank) {
		s, err := NewSolver(r, cfg)
		if err != nil {
			panic(err)
		}
		s.Run(nil)
		for row := s.rowLo; row < s.rowHi; row++ {
			vals := make([]float64, cfg.GridX)
			for x := 0; x < cfg.GridX; x++ {
				v, err := s.Temperature(row, x)
				if err != nil {
					panic(err)
				}
				vals[x] = v
			}
			grid[row] = vals
		}
		done <- struct{}{}
	})
	if err != nil {
		t.Fatal(err)
	}
	return grid
}

func TestParallelMatchesSerialExactly(t *testing.T) {
	// Jacobi is order-independent: any decomposition must produce
	// bit-identical grids.
	cfg := Config{GridX: 24, GridY: 24, Iterations: 30, CellTime: 1e-9, TopTemp: 100}
	serial := gatherGrid(t, cfg, 1)
	for _, p := range []int{2, 3, 4, 8} {
		parallel := gatherGrid(t, cfg, p)
		for y := range serial {
			for x := range serial[y] {
				if serial[y][x] != parallel[y][x] {
					t.Fatalf("p=%d: grid differs at (%d,%d): %g vs %g",
						p, y, x, serial[y][x], parallel[y][x])
				}
			}
		}
	}
}

func TestHeatFlowsDownward(t *testing.T) {
	cfg := Config{GridX: 16, GridY: 16, Iterations: 200, CellTime: 1e-9, TopTemp: 100}
	grid := gatherGrid(t, cfg, 4)
	mid := cfg.GridX / 2
	// Top boundary stays at the source temperature.
	if grid[0][mid] != 100 {
		t.Errorf("top boundary = %g, want 100", grid[0][mid])
	}
	// Temperature decreases monotonically down the center column.
	for y := 1; y < cfg.GridY-1; y++ {
		if grid[y][mid] > grid[y-1][mid]+1e-12 {
			t.Errorf("temperature rising downward at row %d: %g > %g", y, grid[y][mid], grid[y-1][mid])
		}
	}
	// Interior is strictly warmer than the cold bottom boundary.
	if !(grid[1][mid] > 0 && grid[cfg.GridY-2][mid] >= 0) {
		t.Error("interior temperatures out of range")
	}
}

func TestResidualDecreases(t *testing.T) {
	cfg := Config{GridX: 16, GridY: 16, Iterations: 100, CellTime: 1e-9, TopTemp: 100}
	var early, late float64
	_, err := mpisim.Run(2, mpisim.DefaultCostModel(), func(r *mpisim.Rank) {
		s, err := NewSolver(r, cfg)
		if err != nil {
			panic(err)
		}
		s.Run(func(s *Solver) bool {
			if s.Iteration() == 5 && r.ID() == 0 {
				early = s.Residual()
			}
			return true
		})
		if r.ID() == 0 {
			late = s.Residual()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !(late < early) {
		t.Errorf("residual did not decrease: early %g, late %g", early, late)
	}
}

func TestSerializeRestoreRoundTrip(t *testing.T) {
	cfg := Config{GridX: 16, GridY: 16, Iterations: 40, CellTime: 1e-9, TopTemp: 100}
	_, err := mpisim.Run(4, mpisim.DefaultCostModel(), func(r *mpisim.Rank) {
		s, err := NewSolver(r, cfg)
		if err != nil {
			panic(err)
		}
		for i := 0; i < 10; i++ {
			s.Step()
		}
		snap := s.Serialize()
		ref := append([]byte(nil), snap...)
		for i := 0; i < 5; i++ {
			s.Step()
		}
		if bytes.Equal(s.Serialize(), ref) {
			panic("state did not change after more iterations")
		}
		if err := s.Restore(snap); err != nil {
			panic(err)
		}
		if s.Iteration() != 10 {
			panic("iteration counter not restored")
		}
		if !bytes.Equal(s.Serialize(), ref) {
			panic("restore did not reproduce the snapshot")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRestoreRejectsCorruptSnapshot(t *testing.T) {
	cfg := DefaultConfig()
	_, err := mpisim.Run(1, mpisim.DefaultCostModel(), func(r *mpisim.Rank) {
		s, err := NewSolver(r, cfg)
		if err != nil {
			panic(err)
		}
		if err := s.Restore([]byte{1, 2, 3}); err == nil {
			panic("short snapshot accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRestartEquivalence(t *testing.T) {
	// Checkpoint mid-run, restart in a NEW mpisim run from the snapshot,
	// and finish: the grid must match an uninterrupted run bitwise. This
	// is the core property the FTI recovery path depends on.
	cfg := Config{GridX: 20, GridY: 20, Iterations: 30, CellTime: 1e-9, TopTemp: 100}
	p := 4

	uninterrupted := gatherGrid(t, cfg, p)

	snaps := make([][]byte, p)
	_, err := mpisim.Run(p, mpisim.DefaultCostModel(), func(r *mpisim.Rank) {
		s, err := NewSolver(r, cfg)
		if err != nil {
			panic(err)
		}
		s.Run(func(s *Solver) bool { return s.Iteration() < 12 })
		snaps[r.ID()] = s.Serialize()
	})
	if err != nil {
		t.Fatal(err)
	}

	restarted := make([][]float64, cfg.GridY)
	_, err = mpisim.Run(p, mpisim.DefaultCostModel(), func(r *mpisim.Rank) {
		s, err := NewSolver(r, cfg)
		if err != nil {
			panic(err)
		}
		if err := s.Restore(snaps[r.ID()]); err != nil {
			panic(err)
		}
		s.Run(nil)
		for row := s.rowLo; row < s.rowHi; row++ {
			vals := make([]float64, cfg.GridX)
			for x := 0; x < cfg.GridX; x++ {
				v, _ := s.Temperature(row, x)
				vals[x] = v
			}
			restarted[row] = vals
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for y := range uninterrupted {
		for x := range uninterrupted[y] {
			if uninterrupted[y][x] != restarted[y][x] {
				t.Fatalf("restart diverged at (%d,%d): %g vs %g",
					y, x, uninterrupted[y][x], restarted[y][x])
			}
		}
	}
}

func TestTemperatureBounds(t *testing.T) {
	cfg := DefaultConfig()
	_, err := mpisim.Run(2, mpisim.DefaultCostModel(), func(r *mpisim.Rank) {
		s, err := NewSolver(r, cfg)
		if err != nil {
			panic(err)
		}
		if _, err := s.Temperature(-1, 0); err == nil {
			panic("negative row accepted")
		}
		if _, err := s.Temperature(0, 999); err == nil {
			panic("column out of range accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMeasureSpeedupRises(t *testing.T) {
	cfg := Config{GridX: 128, GridY: 128, Iterations: 10, CellTime: 1e-7, TopTemp: 100}
	samples, err := MeasureSpeedup(cfg, mpisim.DefaultCostModel(), []int{1, 2, 4, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 5 {
		t.Fatalf("%d samples", len(samples))
	}
	if math.Abs(samples[0].Speedup-1) > 0.2 {
		t.Errorf("single-rank speedup = %g, want ≈1", samples[0].Speedup)
	}
	if samples[4].Speedup <= samples[0].Speedup {
		t.Errorf("speedup did not rise: %v", samples)
	}
}

func TestSerialTimeFormula(t *testing.T) {
	cfg := Config{GridX: 10, GridY: 20, Iterations: 3, CellTime: 2}
	if got, want := cfg.SerialTime(), 10.0*20*3*2; got != want {
		t.Errorf("SerialTime = %g, want %g", got, want)
	}
}
