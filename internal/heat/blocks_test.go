package heat

import (
	"bytes"
	"testing"

	"mlckpt/internal/mpisim"
)

func TestProcessGrid(t *testing.T) {
	cases := []struct{ p, px, py int }{
		{1, 1, 1}, {2, 1, 2}, {4, 2, 2}, {6, 2, 3}, {8, 2, 4},
		{12, 3, 4}, {16, 4, 4}, {7, 1, 7}, {36, 6, 6},
	}
	for _, tc := range cases {
		px, py := ProcessGrid(tc.p)
		if px*py != tc.p {
			t.Errorf("ProcessGrid(%d) = %dx%d does not cover", tc.p, px, py)
		}
		if px != tc.px || py != tc.py {
			t.Errorf("ProcessGrid(%d) = %dx%d, want %dx%d", tc.p, px, py, tc.px, tc.py)
		}
	}
}

// gatherBlockGrid runs the block solver on p ranks and returns the global
// grid.
func gatherBlockGrid(t *testing.T, cfg Config, p int) [][]float64 {
	t.Helper()
	grid := make([][]float64, cfg.GridY)
	for i := range grid {
		grid[i] = make([]float64, cfg.GridX)
	}
	var mu chan struct{} = make(chan struct{}, 1)
	mu <- struct{}{}
	_, err := mpisim.Run(p, mpisim.DefaultCostModel(), func(r *mpisim.Rank) {
		s, err := NewBlockSolver(r, cfg)
		if err != nil {
			panic(err)
		}
		s.Run(nil)
		<-mu
		for row := s.rowLo; row < s.rowHi; row++ {
			for col := s.colLo; col < s.colHi; col++ {
				v, err := s.Temperature(row, col)
				if err != nil {
					panic(err)
				}
				grid[row][col] = v
			}
		}
		mu <- struct{}{}
	})
	if err != nil {
		t.Fatal(err)
	}
	return grid
}

func TestBlockMatchesRowDecomposition(t *testing.T) {
	// Jacobi is decomposition-independent: the 2-D block layout must
	// produce the exact same grid as the 1-D row layout.
	cfg := Config{GridX: 24, GridY: 24, Iterations: 25, CellTime: 1e-9, TopTemp: 100}
	rows := gatherGrid(t, cfg, 4)
	for _, p := range []int{1, 4, 6, 9} {
		blocks := gatherBlockGrid(t, cfg, p)
		for y := range rows {
			for x := range rows[y] {
				if rows[y][x] != blocks[y][x] {
					t.Fatalf("p=%d: block grid differs at (%d,%d): %g vs %g",
						p, y, x, rows[y][x], blocks[y][x])
				}
			}
		}
	}
}

func TestBlockSolverTooSmall(t *testing.T) {
	cfg := Config{GridX: 3, GridY: 3, Iterations: 1, CellTime: 1e-9, TopTemp: 100}
	_, err := mpisim.Run(16, mpisim.DefaultCostModel(), func(r *mpisim.Rank) {
		if _, err := NewBlockSolver(r, cfg); err == nil {
			panic("3x3 grid on a 4x4 process grid accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBlockSerializeRestore(t *testing.T) {
	cfg := Config{GridX: 20, GridY: 20, Iterations: 30, CellTime: 1e-9, TopTemp: 100}
	_, err := mpisim.Run(4, mpisim.DefaultCostModel(), func(r *mpisim.Rank) {
		s, err := NewBlockSolver(r, cfg)
		if err != nil {
			panic(err)
		}
		for i := 0; i < 10; i++ {
			s.Step()
		}
		snap := s.Serialize()
		for i := 0; i < 5; i++ {
			s.Step()
		}
		if err := s.Restore(snap); err != nil {
			panic(err)
		}
		if s.Iteration() != 10 {
			panic("iteration not restored")
		}
		if !bytes.Equal(s.Serialize(), snap) {
			panic("snapshot not reproduced")
		}
		if err := s.Restore([]byte{1}); err == nil {
			panic("short snapshot accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBlockRestartEquivalence(t *testing.T) {
	cfg := Config{GridX: 18, GridY: 18, Iterations: 24, CellTime: 1e-9, TopTemp: 100}
	p := 6
	uninterrupted := gatherBlockGrid(t, cfg, p)
	snaps := make([][]byte, p)
	_, err := mpisim.Run(p, mpisim.DefaultCostModel(), func(r *mpisim.Rank) {
		s, err := NewBlockSolver(r, cfg)
		if err != nil {
			panic(err)
		}
		s.Run(func(s *BlockSolver) bool { return s.Iteration() < 9 })
		snaps[r.ID()] = s.Serialize()
	})
	if err != nil {
		t.Fatal(err)
	}
	restarted := make([][]float64, cfg.GridY)
	for i := range restarted {
		restarted[i] = make([]float64, cfg.GridX)
	}
	_, err = mpisim.Run(p, mpisim.DefaultCostModel(), func(r *mpisim.Rank) {
		s, err := NewBlockSolver(r, cfg)
		if err != nil {
			panic(err)
		}
		if err := s.Restore(snaps[r.ID()]); err != nil {
			panic(err)
		}
		s.Run(nil)
		for row := s.rowLo; row < s.rowHi; row++ {
			for col := s.colLo; col < s.colHi; col++ {
				v, _ := s.Temperature(row, col)
				restarted[row][col] = v
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for y := range uninterrupted {
		for x := range uninterrupted[y] {
			if uninterrupted[y][x] != restarted[y][x] {
				t.Fatalf("restart diverged at (%d,%d)", y, x)
			}
		}
	}
}

func TestBlockResidualMatchesRowSolver(t *testing.T) {
	cfg := Config{GridX: 16, GridY: 16, Iterations: 40, CellTime: 1e-9, TopTemp: 100}
	var rowRes, blockRes float64
	_, err := mpisim.Run(4, mpisim.DefaultCostModel(), func(r *mpisim.Rank) {
		s, err := NewSolver(r, cfg)
		if err != nil {
			panic(err)
		}
		res := s.Run(nil)
		if r.ID() == 0 {
			rowRes = res.Residual
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = mpisim.Run(4, mpisim.DefaultCostModel(), func(r *mpisim.Rank) {
		s, err := NewBlockSolver(r, cfg)
		if err != nil {
			panic(err)
		}
		res := s.Run(nil)
		if r.ID() == 0 {
			blockRes = res.Residual
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rowRes != blockRes {
		t.Errorf("residuals differ: row %g vs block %g", rowRes, blockRes)
	}
}
