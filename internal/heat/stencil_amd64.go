package heat

import "mlckpt/internal/cpu"

// stencilAVX2 gates the vector kernel; tests flip it to cover both paths
// on one host.
var stencilAVX2 = cpu.X86.HasAVX2

// stencilRowAVX2 is the 4-wide AVX2 row kernel (stencil_amd64.s). n must
// be a multiple of 4; the pointers address at least n elements each.
//
//go:noescape
func stencilRowAVX2(dst, up, down, left, right, center *float64, n int) float64

// stencilRow dispatches one row's Jacobi update: the AVX2 kernel covers
// the 4-aligned prefix and the generic kernel sweeps the tail. The two
// halves combine through the same strict-greater max the scalar loop
// uses, so the returned residual is bit-identical either way.
//
//mlckpt:hotpath
func stencilRow(dst, up, down, left, right, center []float64) float64 {
	n := len(dst)
	if !stencilAVX2 || n < 4 {
		return stencilRowGeneric(dst, up, down, left, right, center)
	}
	nv := n &^ 3
	m := stencilRowAVX2(&dst[0], &up[0], &down[0], &left[0], &right[0], &center[0], nv)
	if nv < n {
		if t := stencilRowGeneric(dst[nv:], up[nv:n], down[nv:n], left[nv:n], right[nv:n], center[nv:n]); t > m {
			m = t
		}
	}
	return m
}
