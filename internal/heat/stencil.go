package heat

import "math"

// This file is the portable half of the stencil kernel layer. The Jacobi
// update of both decompositions funnels through stencilRow, which the
// amd64 build dispatches to an AVX2 kernel (stencil_amd64.s) and every
// other build routes straight here. The two implementations are bit-
// identical by construction: the vector kernel performs the exact same
// left-associated operation sequence per cell —
//
//	v = 0.25 * (((up + down) + left) + right)
//
// — and the residual reduction only ever maxes non-negative absolute
// differences, which makes the result independent of accumulation order
// (see TestStencilRowMatchesGeneric). That bit-exactness is what keeps
// the golden traces (TestHeatTraceByteStable) and the chaos-grid state
// digests valid across the dispatch boundary.

// stencilRowGeneric is the portable row kernel and the differential
// oracle for the vector path: dst[i] = 0.25·(((up[i]+down[i])+left[i])+
// right[i]), returning max_i |dst[i] − center[i]|. All six slices must
// have at least len(dst) elements; dst must not alias the inputs.
//
//mlckpt:hotpath
func stencilRowGeneric(dst, up, down, left, right, center []float64) float64 {
	localMax := 0.0
	n := len(dst)
	up, down = up[:n], down[:n]
	left, right, center = left[:n], right[:n], center[:n]
	for i := range dst {
		v := 0.25 * (((up[i] + down[i]) + left[i]) + right[i])
		dst[i] = v
		if d := math.Abs(v - center[i]); d > localMax {
			localMax = d
		}
	}
	return localMax
}
