package heat

import (
	"encoding/binary"
	"fmt"
	"math"

	"mlckpt/internal/enc"
	"mlckpt/internal/mpisim"
)

// BlockSolver is the 2-D block decomposition of the Heat Distribution
// program — the layout the paper describes ("splits a particular space
// into several blocks and computes the heat distribution for each of them
// in parallel with communicated messages on the shared edges"). Each rank
// owns a rectangular block and exchanges one ghost row/column with each of
// its four neighbors per iteration.
//
// The numerical result is identical to the row-decomposed Solver (Jacobi
// is order-independent); what changes is the communication pattern: four
// smaller messages instead of two larger ones, which matters for the
// speedup curves at scale.
type BlockSolver struct {
	cfg          Config
	rank         *mpisim.Rank
	px, py       int // process-grid dimensions (px·py = ranks)
	rx, ry       int // this rank's grid coordinates
	colLo, colHi int
	rowLo, rowHi int
	cur, nxt     []float64 // (rows+2) × (cols+2) with ghost border
	iter         int
	residual     float64
}

// ProcessGrid factors p into the most square px×py grid (px ≤ py).
func ProcessGrid(p int) (px, py int) {
	px = int(math.Sqrt(float64(p)))
	for px > 1 && p%px != 0 {
		px--
	}
	if px < 1 {
		px = 1
	}
	return px, p / px
}

// NewBlockSolver initializes the rank's block.
func NewBlockSolver(r *mpisim.Rank, cfg Config) (*BlockSolver, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	px, py := ProcessGrid(r.Size())
	if cfg.GridX < px || cfg.GridY < py {
		return nil, fmt.Errorf("%w: %dx%d grid over a %dx%d process grid", ErrHeat, cfg.GridX, cfg.GridY, px, py)
	}
	s := &BlockSolver{cfg: cfg, rank: r, px: px, py: py}
	s.rx = r.ID() % px
	s.ry = r.ID() / px
	s.colLo = s.rx * cfg.GridX / px
	s.colHi = (s.rx + 1) * cfg.GridX / px
	s.rowLo = s.ry * cfg.GridY / py
	s.rowHi = (s.ry + 1) * cfg.GridY / py
	n := (s.rows() + 2) * (s.cols() + 2)
	s.cur = make([]float64, n)
	s.nxt = make([]float64, n)
	if cfg.EdgeTemp != 0 {
		for i := range s.cur {
			s.cur[i] = cfg.EdgeTemp
		}
	}
	if s.rowLo == 0 {
		for c := 0; c < s.cols(); c++ {
			s.cur[s.at(0, c)] = cfg.TopTemp
			s.nxt[s.at(0, c)] = cfg.TopTemp
		}
	}
	return s, nil
}

func (s *BlockSolver) rows() int { return s.rowHi - s.rowLo }
func (s *BlockSolver) cols() int { return s.colHi - s.colLo }

// at maps local (row, col) within the owned block to the flattened index
// (ghost border excluded from the coordinates).
func (s *BlockSolver) at(row, col int) int {
	return (row+1)*(s.cols()+2) + col + 1
}

// Iteration returns the number of completed iterations.
func (s *BlockSolver) Iteration() int { return s.iter }

// Residual returns the last global residual.
func (s *BlockSolver) Residual() float64 { return s.residual }

// Temperature returns the value at a global coordinate owned by this rank.
func (s *BlockSolver) Temperature(globalRow, globalCol int) (float64, error) {
	if globalRow < s.rowLo || globalRow >= s.rowHi || globalCol < s.colLo || globalCol >= s.colHi {
		return 0, fmt.Errorf("%w: (%d,%d) not owned by rank %d", ErrHeat, globalRow, globalCol, s.rank.ID())
	}
	return s.cur[s.at(globalRow-s.rowLo, globalCol-s.colLo)], nil
}

const (
	tagN = 201 // to the north neighbor (my first row)
	tagS = 202 // to the south neighbor (my last row)
	tagW = 203 // to the west neighbor (my first column)
	tagE = 204 // to the east neighbor (my last column)
)

func (s *BlockSolver) neighbor(dx, dy int) (int, bool) {
	nx, ny := s.rx+dx, s.ry+dy
	if nx < 0 || nx >= s.px || ny < 0 || ny >= s.py {
		return 0, false
	}
	return ny*s.px + nx, true
}

func (s *BlockSolver) rowBytes(row int) []byte {
	out := make([]byte, 8*s.cols())
	enc.PutFloat64s(out, s.cur[s.at(row, 0):s.at(row, s.cols())])
	return out
}

func (s *BlockSolver) colBytes(col int) []byte {
	out := make([]byte, 8*s.rows())
	for r := 0; r < s.rows(); r++ {
		binary.LittleEndian.PutUint64(out[8*r:], math.Float64bits(s.cur[s.at(r, col)]))
	}
	return out
}

// Step performs one Jacobi iteration with 4-neighbor ghost exchange.
func (s *BlockSolver) Step() {
	r := s.rank
	cols, rows := s.cols(), s.rows()
	stride := cols + 2

	var reqs []*mpisim.Request
	type ghost struct {
		req *mpisim.Request
		set func(data []byte)
	}
	var ghosts []ghost
	if n, ok := s.neighbor(0, -1); ok { // north
		rq := r.Irecv(n, tagS)
		ghosts = append(ghosts, ghost{rq, func(d []byte) {
			for c := 0; c < cols; c++ {
				s.cur[s.at(-1, c)] = math.Float64frombits(binary.LittleEndian.Uint64(d[8*c:]))
			}
		}})
		reqs = append(reqs, rq, r.Isend(n, tagN, s.rowBytes(0)))
	}
	if n, ok := s.neighbor(0, 1); ok { // south
		rq := r.Irecv(n, tagN)
		ghosts = append(ghosts, ghost{rq, func(d []byte) {
			for c := 0; c < cols; c++ {
				s.cur[s.at(rows, c)] = math.Float64frombits(binary.LittleEndian.Uint64(d[8*c:]))
			}
		}})
		reqs = append(reqs, rq, r.Isend(n, tagS, s.rowBytes(rows-1)))
	}
	if n, ok := s.neighbor(-1, 0); ok { // west
		rq := r.Irecv(n, tagE)
		ghosts = append(ghosts, ghost{rq, func(d []byte) {
			for rr := 0; rr < rows; rr++ {
				s.cur[s.at(rr, -1)] = math.Float64frombits(binary.LittleEndian.Uint64(d[8*rr:]))
			}
		}})
		reqs = append(reqs, rq, r.Isend(n, tagW, s.colBytes(0)))
	}
	if n, ok := s.neighbor(1, 0); ok { // east
		rq := r.Irecv(n, tagW)
		ghosts = append(ghosts, ghost{rq, func(d []byte) {
			for rr := 0; rr < rows; rr++ {
				s.cur[s.at(rr, cols)] = math.Float64frombits(binary.LittleEndian.Uint64(d[8*rr:]))
			}
		}})
		reqs = append(reqs, rq, r.Isend(n, tagE, s.colBytes(cols-1)))
	}
	r.Waitall(reqs)
	for _, g := range ghosts {
		g.set(g.req.Wait())
	}

	// Row-sliced stencil: the block's interior columns are the contiguous
	// local span [lcLo, lcHi) (global columns 1..GridX−2), so each row is
	// one kernel call plus fixed-wall copies — bit-identical to the
	// cell-at-a-time loop (same per-cell arithmetic; residual max is
	// order-independent over non-negative values).
	lcLo, lcHi := 0, cols
	if s.colLo == 0 {
		lcLo = 1
	}
	if s.colHi == s.cfg.GridX {
		lcHi = cols - 1
	}
	localMax := 0.0
	for lr := 0; lr < rows; lr++ {
		gRow := s.rowLo + lr
		base := s.at(lr, 0)
		src := s.cur[base : base+cols]
		dst := s.nxt[base : base+cols]
		if gRow == 0 || gRow == s.cfg.GridY-1 {
			copy(dst, src) // fixed boundary row
			continue
		}
		for lc := 0; lc < lcLo; lc++ {
			dst[lc] = src[lc] // global west wall
		}
		for lc := lcHi; lc < cols; lc++ {
			dst[lc] = src[lc] // global east wall
		}
		if lcLo < lcHi {
			// Left/right neighbors may be ghost-column cells, so they
			// slice the full array rather than the owned row.
			up := s.cur[base-stride+lcLo : base-stride+lcHi]
			down := s.cur[base+stride+lcLo : base+stride+lcHi]
			left := s.cur[base+lcLo-1 : base+lcHi-1]
			right := s.cur[base+lcLo+1 : base+lcHi+1]
			if m := stencilRow(dst[lcLo:lcHi], up, down, left, right, src[lcLo:lcHi]); m > localMax {
				localMax = m
			}
		}
	}
	r.Compute(float64(rows*cols) * s.cfg.CellTime)
	s.cur, s.nxt = s.nxt, s.cur
	s.residual = r.Allreduce(mpisim.Max, []float64{localMax})[0]
	s.iter++
}

// Run advances until cfg.Iterations complete or hook returns false.
func (s *BlockSolver) Run(hook func(*BlockSolver) bool) RunResult {
	for s.iter < s.cfg.Iterations {
		s.Step()
		if hook != nil && !hook(s) {
			break
		}
	}
	return RunResult{Iterations: s.iter, Residual: s.residual, WallClock: s.rank.Clock()}
}

// Serialize captures the rank's block (iteration counter + interior).
func (s *BlockSolver) Serialize() []byte {
	return s.SerializeInto(nil)
}

// SerializeInto is Serialize into a caller-owned buffer (grown when too
// small), so checkpoint loops can reuse one snapshot buffer per rank.
func (s *BlockSolver) SerializeInto(buf []byte) []byte {
	rows, cols := s.rows(), s.cols()
	n := 8 + 8*rows*cols
	if cap(buf) < n {
		buf = make([]byte, n)
	} else {
		buf = buf[:n]
	}
	binary.LittleEndian.PutUint64(buf, uint64(s.iter))
	// Each owned row is contiguous (the ghost border has stride cols+2):
	// one bulk encode per row.
	for r := 0; r < rows; r++ {
		enc.PutFloat64s(buf[8+8*r*cols:], s.cur[s.at(r, 0):s.at(r, cols)])
	}
	return buf
}

// Restore reinstates a Serialize snapshot on the same decomposition.
func (s *BlockSolver) Restore(data []byte) error {
	rows, cols := s.rows(), s.cols()
	want := 8 + 8*rows*cols
	if len(data) != want {
		return fmt.Errorf("%w: snapshot %d bytes, want %d", ErrHeat, len(data), want)
	}
	s.iter = int(binary.LittleEndian.Uint64(data))
	for r := 0; r < rows; r++ {
		enc.GetFloat64s(s.cur[s.at(r, 0):s.at(r, cols)], data[8+8*r*cols:])
	}
	return nil
}
