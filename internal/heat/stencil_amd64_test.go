package heat

import "testing"

// stencilDispatchToggles reports whether this host actually dispatches to
// a vector kernel (so forcing the fallback is a meaningful comparison).
func stencilDispatchToggles(t *testing.T) bool {
	t.Helper()
	return stencilAVX2
}

// setStencilAVX2 overrides the dispatch flag for one test.
func setStencilAVX2(t *testing.T, v bool) {
	t.Helper()
	old := stencilAVX2
	stencilAVX2 = v
	t.Cleanup(func() { stencilAVX2 = old })
}
