package heat

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	"mlckpt/internal/mpisim"
	"mlckpt/internal/obs"
)

// heatTrace runs the heat app at N=64 ranks on the given engine with
// tracing and returns (trace bytes, stripped metrics bytes, wall). This
// mirrors what MeasureSpeedupObs does for one scale, with the engine made
// explicit so the goroutine oracle can be compared. It returns rather than
// fails so it can run on worker goroutines below.
func heatTrace(engine mpisim.Engine) ([]byte, []byte, float64, error) {
	cfg := Config{GridX: 32, GridY: 64, Iterations: 25, CellTime: 1e-9, TopTemp: 100}
	col := obs.NewCollector()
	wall, err := mpisim.RunObservedOn(engine, 64, mpisim.DefaultCostModel(), func(r *mpisim.Rank) {
		s, err := NewSolver(r, cfg)
		if err != nil {
			panic(err)
		}
		s.Run(nil)
	}, col, "heat/p64")
	if err != nil {
		return nil, nil, 0, err
	}
	trace, err := json.Marshal(col.Trace)
	if err != nil {
		return nil, nil, 0, err
	}
	snap := col.Registry.Snapshot()
	snap.StripVolatile()
	metrics, err := snap.MarshalIndent()
	if err != nil {
		return nil, nil, 0, err
	}
	return trace, metrics, wall, nil
}

// TestHeatTraceByteStable pins the golden-trace property of the event
// scheduler on the real application: the exported Chrome trace and the
// stripped metrics for the heat app at N=64 are byte-identical across
// runs, byte-identical under host-level concurrency (the sweep layer runs
// measurements from worker pools), and byte-identical to the goroutine
// oracle's output. No golden regeneration was needed for the scheduler
// rewrite: the event engine reproduces the old runtime's bytes exactly.
func TestHeatTraceByteStable(t *testing.T) {
	trace, metrics, wall, err := heatTrace(mpisim.EventEngine)
	if err != nil {
		t.Fatal(err)
	}
	if wall <= 0 {
		t.Fatalf("wall = %g, want > 0", wall)
	}

	// Across repeated runs.
	for i := 0; i < 3; i++ {
		tr, m, w, err := heatTrace(mpisim.EventEngine)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(tr, trace) {
			t.Fatalf("run %d: trace bytes differ", i)
		}
		if !bytes.Equal(m, metrics) {
			t.Fatalf("run %d: metrics bytes differ", i)
		}
		if w != wall {
			t.Fatalf("run %d: wall %g != %g", i, w, wall)
		}
	}

	// Across engines: the event scheduler reproduces the goroutine
	// runtime's telemetry bit for bit.
	tr, m, w, err := heatTrace(mpisim.GoroutineEngine)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tr, trace) {
		t.Fatalf("goroutine-engine trace differs:\nevent:     %s\ngoroutine: %s", trace, tr)
	}
	if !bytes.Equal(m, metrics) {
		t.Fatalf("goroutine-engine metrics differ")
	}
	if w != wall {
		t.Fatalf("goroutine-engine wall %g != %g", w, wall)
	}

	// Under host concurrency, as the sweep worker pools create: eight
	// simultaneous measurements, each with its own collector, all
	// byte-identical.
	const workers = 8
	traces := make([][]byte, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			traces[slot], _, _, errs[slot] = heatTrace(mpisim.EventEngine)
		}(i)
	}
	wg.Wait()
	for i, tr := range traces {
		if errs[i] != nil {
			t.Fatalf("concurrent run %d: %v", i, errs[i])
		}
		if !bytes.Equal(tr, trace) {
			t.Fatalf("concurrent run %d: trace bytes differ", i)
		}
	}
}
