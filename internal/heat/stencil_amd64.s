#include "textflag.h"

// The AVX2 Jacobi row kernel. Per lane it performs the exact operation
// sequence of the scalar update —
//
//	v = 0.25 * (((up + down) + left) + right)
//	d = |v - center|
//
// — with the same left-associated add chain (VADDPD's first source is
// the running sum, matching Go's evaluation order), so the stored row is
// bit-identical to the portable kernel.
//
// The residual accumulation exploits VMAXPD's asymmetric NaN rule: the
// result is src1 > src2 ? src1 : src2, so a NaN in src1 loses the
// compare and src2 (the accumulator) is kept — exactly the scalar
// `if d > acc` which drops NaN differences. The accumulator itself can
// therefore never become NaN, and since every accumulated value is an
// absolute difference (non-negative, −0 normalized by VANDPD), the max
// is order-independent and bit-exact for any accumulator count — which
// licenses the two interleaved accumulators below (they break the
// loop-carried VMAXPD latency chain) and the VMAXPD/VMAXSD horizontal
// reduction at the end.

DATA stencilQuarter<>+0(SB)/8, $0.25
GLOBL stencilQuarter<>(SB), RODATA, $8

DATA stencilAbsMask<>+0(SB)/8, $0x7FFFFFFFFFFFFFFF
GLOBL stencilAbsMask<>(SB), RODATA, $8

// func stencilRowAVX2(dst, up, down, left, right, center *float64, n int) float64
TEXT ·stencilRowAVX2(SB), NOSPLIT, $0-64
	MOVQ dst+0(FP), DI
	MOVQ up+8(FP), SI
	MOVQ down+16(FP), DX
	MOVQ left+24(FP), CX
	MOVQ right+32(FP), R8
	MOVQ center+40(FP), R9
	MOVQ n+48(FP), R10

	VXORPD       Y4, Y4, Y4                 // residual accumulator A
	VXORPD       Y7, Y7, Y7                 // residual accumulator B
	VBROADCASTSD stencilQuarter<>(SB), Y5
	VBROADCASTSD stencilAbsMask<>(SB), Y6

	XORQ AX, AX
	MOVQ R10, R11
	ANDQ $-8, R11                // 8-aligned prefix for the unrolled loop

loop8:
	CMPQ AX, R11
	JGE  loop4
	VMOVUPD (SI)(AX*8), Y0       // up
	VMOVUPD 32(SI)(AX*8), Y2
	VADDPD  (DX)(AX*8), Y0, Y0   // + down
	VADDPD  32(DX)(AX*8), Y2, Y2
	VADDPD  (CX)(AX*8), Y0, Y0   // + left
	VADDPD  32(CX)(AX*8), Y2, Y2
	VADDPD  (R8)(AX*8), Y0, Y0   // + right
	VADDPD  32(R8)(AX*8), Y2, Y2
	VMULPD  Y5, Y0, Y0           // × 0.25
	VMULPD  Y5, Y2, Y2
	VMOVUPD Y0, (DI)(AX*8)
	VMOVUPD Y2, 32(DI)(AX*8)
	VSUBPD  (R9)(AX*8), Y0, Y1   // v − center
	VSUBPD  32(R9)(AX*8), Y2, Y3
	VANDPD  Y6, Y1, Y1           // |d|
	VANDPD  Y6, Y3, Y3
	VMAXPD  Y4, Y1, Y4           // acc = d > acc ? d : acc (NaN d kept out)
	VMAXPD  Y7, Y3, Y7
	ADDQ    $8, AX
	JMP     loop8

loop4:
	CMPQ AX, R10
	JGE  done
	VMOVUPD (SI)(AX*8), Y0
	VADDPD  (DX)(AX*8), Y0, Y0
	VADDPD  (CX)(AX*8), Y0, Y0
	VADDPD  (R8)(AX*8), Y0, Y0
	VMULPD  Y5, Y0, Y0
	VMOVUPD Y0, (DI)(AX*8)
	VSUBPD  (R9)(AX*8), Y0, Y1
	VANDPD  Y6, Y1, Y1
	VMAXPD  Y4, Y1, Y4
	ADDQ    $4, AX
	JMP     loop4

done:
	VMAXPD       Y7, Y4, Y4      // combine the two accumulators
	VEXTRACTF128 $1, Y4, X1
	VMAXPD       X1, X4, X4
	VUNPCKHPD    X4, X4, X1
	VMAXSD       X1, X4, X4
	VZEROUPPER
	MOVSD        X4, ret+56(FP)
	RET
