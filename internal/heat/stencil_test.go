package heat

import (
	"math"
	"math/rand"
	"testing"
)

// naiveStencilRow is the cell-at-a-time reference the kernels must match
// bit for bit — the loop body Step used before the kernel extraction.
func naiveStencilRow(dst, up, down, left, right, center []float64) float64 {
	localMax := 0.0
	for i := range dst {
		v := 0.25 * (up[i] + down[i] + left[i] + right[i])
		dst[i] = v
		if d := math.Abs(v - center[i]); d > localMax {
			localMax = d
		}
	}
	return localMax
}

func randRow(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		switch rng.Intn(10) {
		case 0:
			out[i] = 0
		case 1:
			out[i] = -rng.Float64() * 100
		default:
			out[i] = rng.Float64() * 100
		}
	}
	return out
}

// TestStencilRowMatchesGeneric differentially tests the dispatched kernel
// (AVX2 on capable amd64 hosts) against the naive reference across widths
// that cover every tail-length case and the scalar-only small rows.
func TestStencilRowMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 62, 63, 64, 65, 254, 1022} {
		up, down := randRow(rng, n), randRow(rng, n)
		left, right, center := randRow(rng, n), randRow(rng, n), randRow(rng, n)
		want := make([]float64, n)
		got := make([]float64, n)
		wantMax := naiveStencilRow(want, up, down, left, right, center)
		gotMax := stencilRow(got, up, down, left, right, center)
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("n=%d: dst[%d] = %v, want %v", n, i, got[i], want[i])
			}
		}
		if math.Float64bits(gotMax) != math.Float64bits(wantMax) {
			t.Fatalf("n=%d: residual %v, want %v", n, gotMax, wantMax)
		}
	}
}

// TestStencilRowNaN pins the NaN semantics of the residual reduction: a
// NaN difference never wins the max (the scalar strict-greater test is
// false for NaN), and NaN cell values propagate into dst unchanged in
// position.
func TestStencilRowNaN(t *testing.T) {
	n := 16
	up := make([]float64, n)
	down := make([]float64, n)
	left := make([]float64, n)
	right := make([]float64, n)
	center := make([]float64, n)
	for i := range up {
		up[i], down[i], left[i], right[i], center[i] = 1, 2, 3, 4, 5
	}
	up[3] = math.NaN()   // vector lane
	up[13] = math.NaN()  // tail lane (n=16 has no tail; lane coverage anyway)
	center[7] = math.NaN()
	want := make([]float64, n)
	got := make([]float64, n)
	wantMax := naiveStencilRow(want, up, down, left, right, center)
	gotMax := stencilRow(got, up, down, left, right, center)
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("dst[%d] bits %x, want %x", i, math.Float64bits(got[i]), math.Float64bits(want[i]))
		}
	}
	if math.Float64bits(gotMax) != math.Float64bits(wantMax) {
		t.Fatalf("residual %v, want %v", gotMax, wantMax)
	}
}

// TestStencilRowFallback forces the generic path on hosts that normally
// dispatch to the vector kernel, so both sides of the dispatch stay
// covered by the solver-level tests wherever they run.
func TestStencilRowFallback(t *testing.T) {
	if !stencilDispatchToggles(t) {
		t.Skip("no vector kernel on this host")
	}
	rng := rand.New(rand.NewSource(8))
	n := 257
	up, down := randRow(rng, n), randRow(rng, n)
	left, right, center := randRow(rng, n), randRow(rng, n), randRow(rng, n)
	vec := make([]float64, n)
	gen := make([]float64, n)
	vecMax := stencilRow(vec, up, down, left, right, center)
	setStencilAVX2(t, false)
	genMax := stencilRow(gen, up, down, left, right, center)
	for i := range vec {
		if math.Float64bits(vec[i]) != math.Float64bits(gen[i]) {
			t.Fatalf("dst[%d]: vector %v, generic %v", i, vec[i], gen[i])
		}
	}
	if math.Float64bits(vecMax) != math.Float64bits(genMax) {
		t.Fatalf("residual: vector %v, generic %v", vecMax, genMax)
	}
}

// TestStencilRowZeroAlloc pins the kernels' zero-allocation contract.
func TestStencilRowZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 510
	up, down := randRow(rng, n), randRow(rng, n)
	left, right, center := randRow(rng, n), randRow(rng, n), randRow(rng, n)
	dst := make([]float64, n)
	if avg := testing.AllocsPerRun(50, func() {
		stencilRow(dst, up, down, left, right, center)
	}); avg != 0 {
		t.Errorf("stencilRow allocates %.1f times per row", avg)
	}
}

// The bulk float64 codec the serialization paths use lives in
// internal/enc together with its differential tests.
