//go:build !amd64

package heat

// stencilRow has no vector kernel off amd64: every row goes through the
// portable kernel.
//
//mlckpt:hotpath
func stencilRow(dst, up, down, left, right, center []float64) float64 {
	return stencilRowGeneric(dst, up, down, left, right, center)
}
