//go:build !amd64

package heat

import "testing"

func stencilDispatchToggles(t *testing.T) bool {
	t.Helper()
	return false
}

func setStencilAVX2(t *testing.T, v bool) {
	t.Helper()
}
