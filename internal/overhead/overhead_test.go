package overhead

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"mlckpt/internal/numopt"
)

func TestBaselineEval(t *testing.T) {
	cases := []struct {
		b    Baseline
		n    float64
		want float64
	}{
		{Zero, 1000, 0},
		{LinearN, 1000, 1000},
		{SqrtN, 100, 10},
		{LogN, math.E - 1, 1},
	}
	for _, tc := range cases {
		if got := tc.b.Eval(tc.n); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s.Eval(%g) = %g, want %g", tc.b, tc.n, got, tc.want)
		}
	}
	// All baselines pass through the origin, as Formula (19)/(20) require.
	for _, b := range []Baseline{Zero, LinearN, SqrtN, LogN} {
		if v := b.Eval(0); v != 0 {
			t.Errorf("%s.Eval(0) = %g, want 0", b, v)
		}
	}
}

func TestBaselineDerivativeMatchesNumeric(t *testing.T) {
	for _, b := range []Baseline{LinearN, SqrtN, LogN} {
		for _, n := range []float64{1, 100, 10000} {
			analytic := b.Derivative(n)
			numeric := numopt.Derivative(b.Eval, n)
			if math.Abs(analytic-numeric) > 1e-4*(1+math.Abs(analytic)) {
				t.Errorf("%s'(%g): analytic %g vs numeric %g", b, n, analytic, numeric)
			}
		}
	}
}

func TestCostAt(t *testing.T) {
	c := LinearCost(5.5, 0.0212)
	if got := c.At(1024); math.Abs(got-(5.5+0.0212*1024)) > 1e-12 {
		t.Errorf("At(1024) = %g", got)
	}
	if got := c.DerivativeAt(12345); got != 0.0212 {
		t.Errorf("DerivativeAt = %g", got)
	}
	k := Constant(3.886)
	if !k.IsConstant() || k.At(1e6) != 3.886 || k.DerivativeAt(1e6) != 0 {
		t.Errorf("constant cost misbehaves: %+v", k)
	}
}

func TestCostString(t *testing.T) {
	if s := Constant(5).String(); !strings.Contains(s, "5") {
		t.Errorf("String = %q", s)
	}
	if s := LinearCost(5.5, 0.02).String(); !strings.Contains(s, "N") {
		t.Errorf("String = %q", s)
	}
}

func TestCharacterizationValidate(t *testing.T) {
	good := FusionTableII()
	if err := good.Validate(); err != nil {
		t.Errorf("Table II invalid: %v", err)
	}
	bad := Characterization{Scales: []float64{1, 2}, Costs: [][]float64{{1}}}
	if err := bad.Validate(); !errors.Is(err, ErrCharacterize) {
		t.Errorf("err = %v", err)
	}
	ragged := Characterization{Scales: []float64{1, 2}, Costs: [][]float64{{1, 2}, {1}}}
	if err := ragged.Validate(); !errors.Is(err, ErrCharacterize) {
		t.Errorf("ragged err = %v", err)
	}
	negative := Characterization{Scales: []float64{1}, Costs: [][]float64{{-1}}}
	if err := negative.Validate(); !errors.Is(err, ErrCharacterize) {
		t.Errorf("negative err = %v", err)
	}
}

func TestFitTableII(t *testing.T) {
	// Fitting the paper's Table II must reproduce its qualitative reading:
	// levels 1–3 constant, level 4 growing roughly linearly with N, with
	// coefficients near the published (0.866,0) (2.586,0) (3.886,0)
	// (5.5, 0.0212).
	costs, err := Fit(FusionTableII(), FitOptions{})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if len(costs) != 4 {
		t.Fatalf("got %d levels", len(costs))
	}
	for i := 0; i < 3; i++ {
		if !costs[i].IsConstant() {
			t.Errorf("level %d fitted as scale-dependent: %v", i+1, costs[i])
		}
	}
	if costs[3].IsConstant() {
		t.Errorf("level 4 fitted as constant: %v", costs[3])
	}
	published := FusionFittedCosts()
	if math.Abs(costs[0].Const-published[0].Const) > 0.05 {
		t.Errorf("ε1 = %g, want ≈%g", costs[0].Const, published[0].Const)
	}
	if math.Abs(costs[1].Const-published[1].Const) > 0.05 {
		t.Errorf("ε2 = %g, want ≈%g", costs[1].Const, published[1].Const)
	}
	if math.Abs(costs[2].Const-published[2].Const) > 0.05 {
		t.Errorf("ε3 = %g, want ≈%g", costs[2].Const, published[2].Const)
	}
	if math.Abs(costs[3].Coeff-published[3].Coeff) > 0.005 {
		t.Errorf("α4 = %g, want ≈%g", costs[3].Coeff, published[3].Coeff)
	}
	if math.Abs(costs[3].Const-published[3].Const) > 1.5 {
		t.Errorf("ε4 = %g, want ≈%g", costs[3].Const, published[3].Const)
	}
}

func TestFitPreservesExactConstant(t *testing.T) {
	ch := Characterization{
		Scales: []float64{100, 200, 300},
		Costs:  [][]float64{{2}, {2}, {2}},
	}
	costs, err := Fit(ch, FitOptions{})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if !costs[0].IsConstant() || math.Abs(costs[0].Const-2) > 1e-12 {
		t.Errorf("constant data fit = %v", costs[0])
	}
}

func TestFitExactLinear(t *testing.T) {
	ch := Characterization{
		Scales: []float64{100, 200, 400, 800},
		Costs:  [][]float64{{1 + 0.01*100}, {1 + 0.01*200}, {1 + 0.01*400}, {1 + 0.01*800}},
	}
	costs, err := Fit(ch, FitOptions{})
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if costs[0].IsConstant() {
		t.Fatalf("linear data fit constant: %v", costs[0])
	}
	if math.Abs(costs[0].Const-1) > 1e-9 || math.Abs(costs[0].Coeff-0.01) > 1e-12 {
		t.Errorf("fit = %v, want 1 + 0.01·N", costs[0])
	}
}

func TestFitRejectsInvalid(t *testing.T) {
	if _, err := Fit(Characterization{}, FitOptions{}); !errors.Is(err, ErrCharacterize) {
		t.Errorf("err = %v", err)
	}
}

func TestFitMonotonicityWarning(t *testing.T) {
	// A table where level 2 is cheaper than level 1 at the top scale
	// violates the paper's C_1 <= ... <= C_L assumption; Fit must still
	// return the fits but flag the inversion.
	ch := Characterization{
		Scales: []float64{100, 200},
		Costs:  [][]float64{{5, 1}, {5, 1}},
	}
	costs, err := Fit(ch, FitOptions{})
	if err == nil {
		t.Error("expected a monotonicity warning error")
	}
	if len(costs) != 2 {
		t.Fatalf("fits not returned alongside warning")
	}
}

func TestSymmetricLevels(t *testing.T) {
	levels := SymmetricLevels(FusionFittedCosts(), 1.0)
	if len(levels) != 4 {
		t.Fatalf("got %d levels", len(levels))
	}
	for i, lv := range levels {
		if math.Abs(lv.Checkpoint.At(1000)-lv.Recovery.At(1000)) > 1e-12 {
			t.Errorf("level %d: recovery != checkpoint under factor 1", i+1)
		}
	}
	half := SymmetricLevels(FusionFittedCosts(), 0.5)
	if math.Abs(half[3].Recovery.At(1000)-0.5*half[3].Checkpoint.At(1000)) > 1e-12 {
		t.Error("factor 0.5 not applied to scale-dependent part")
	}
}

// Property: fitted cost is non-negative over the characterized scales for
// any non-negative input table.
func TestFitNonNegativeProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		base := float64(seed%100) / 10
		ch := Characterization{
			Scales: []float64{128, 256, 512, 1024},
			Costs: [][]float64{
				{base + 0.1}, {base + 0.3}, {base + 0.2}, {base + 0.4},
			},
		}
		costs, err := Fit(ch, FitOptions{})
		if err != nil {
			return false
		}
		for _, n := range ch.Scales {
			if costs[0].At(n) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
