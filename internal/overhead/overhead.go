// Package overhead models per-level checkpoint and recovery costs as
// functions of the execution scale, following Formulas (19)/(20) of the
// paper:
//
//	C_i(N) = ε_i + α_i·H_c(N)
//	R_i(N) = η_i + β_i·H_r(N)
//
// H_c and H_r are baseline functions through the origin: H(N)=0 models a
// constant overhead (local storage, partner copy, RS encoding on FTI), and
// H(N)=N models the linearly congesting parallel file system. The
// coefficients are obtained by least squares over characterization tables
// such as the paper's Table II.
package overhead

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"mlckpt/internal/numopt"
)

// ErrCharacterize is returned when a characterization table cannot be
// fitted.
var ErrCharacterize = errors.New("overhead: characterization failed")

// Baseline is a scale-dependence baseline function H(N). All baselines pass
// through the origin, per the paper's definition.
type Baseline int

// Baseline kinds.
const (
	Zero    Baseline = iota // H(N) = 0: scale-independent overhead
	LinearN                 // H(N) = N: linear congestion (PFS metadata+bandwidth)
	SqrtN                   // H(N) = √N: sublinear congestion
	LogN                    // H(N) = ln(1+N): metadata-dominated growth
)

// Eval returns H(N).
func (b Baseline) Eval(n float64) float64 {
	switch b {
	case Zero:
		return 0
	case LinearN:
		return n
	case SqrtN:
		return math.Sqrt(math.Max(n, 0))
	case LogN:
		return math.Log1p(math.Max(n, 0))
	default:
		return 0
	}
}

// Derivative returns dH/dN.
func (b Baseline) Derivative(n float64) float64 {
	switch b {
	case Zero:
		return 0
	case LinearN:
		return 1
	case SqrtN:
		if n <= 0 {
			return 0
		}
		return 0.5 / math.Sqrt(n)
	case LogN:
		return 1 / (1 + math.Max(n, 0))
	default:
		return 0
	}
}

func (b Baseline) String() string {
	switch b {
	case Zero:
		return "0"
	case LinearN:
		return "N"
	case SqrtN:
		return "sqrt(N)"
	case LogN:
		return "log(1+N)"
	default:
		return fmt.Sprintf("baseline(%d)", int(b))
	}
}

// Cost is a single-level cost model c(N) = Const + Coeff·H(min(N, Cap)),
// used for both checkpoint overheads (ε, α) and recovery overheads (η, β).
//
// Cap, when positive, saturates the scale-dependent term: beyond Cap cores
// the cost stops growing. This models a strong-scaling PFS checkpoint: the
// total checkpoint volume of a fixed problem is constant, so once the file
// system's client concurrency is saturated the write time plateaus, and
// only the per-file metadata term grew up to that point. Cap = 0 means no
// saturation (the pure Formula 19/20 form).
type Cost struct {
	Const float64  // ε_i or η_i, in seconds
	Coeff float64  // α_i or β_i
	H     Baseline // scale-dependence baseline
	Cap   float64  // saturation scale for the H term; 0 = none
}

// Constant builds a scale-independent cost of c seconds.
func Constant(c float64) Cost { return Cost{Const: c, H: Zero} }

// LinearCost builds c(N) = c0 + slope·N.
func LinearCost(c0, slope float64) Cost {
	return Cost{Const: c0, Coeff: slope, H: LinearN}
}

// At returns the cost in seconds at scale n.
func (c Cost) At(n float64) float64 {
	if c.Cap > 0 && n > c.Cap {
		n = c.Cap
	}
	return c.Const + c.Coeff*c.H.Eval(n)
}

// DerivativeAt returns dc/dN at scale n (C'_i and R'_i in Formula 24).
// Beyond a saturation cap the cost is flat, so the derivative is zero.
func (c Cost) DerivativeAt(n float64) float64 {
	if c.Cap > 0 && n > c.Cap {
		return 0
	}
	return c.Coeff * c.H.Derivative(n)
}

// IsConstant reports whether the cost does not vary with scale.
func (c Cost) IsConstant() bool { return c.Coeff == 0 || c.H == Zero }

func (c Cost) String() string {
	if c.IsConstant() {
		return fmt.Sprintf("%.4gs", c.Const)
	}
	return fmt.Sprintf("%.4g + %.4g·%s s", c.Const, c.Coeff, c.H)
}

// Level bundles the checkpoint and recovery cost models for one checkpoint
// level.
type Level struct {
	Checkpoint Cost
	Recovery   Cost
}

// Characterization is a measured overhead table: Scales[k] cores produced
// Costs[k][i] seconds of overhead at level i. The paper's Table II is an
// instance with scales {128, 256, 384, 512, 1024} and four levels.
type Characterization struct {
	Scales []float64
	Costs  [][]float64 // Costs[k][i]: overhead at Scales[k], level i
}

// Levels returns the number of characterized levels.
func (ch Characterization) Levels() int {
	if len(ch.Costs) == 0 {
		return 0
	}
	return len(ch.Costs[0])
}

// Validate checks shape consistency.
func (ch Characterization) Validate() error {
	if len(ch.Scales) == 0 || len(ch.Costs) != len(ch.Scales) {
		return fmt.Errorf("%w: %d scales vs %d cost rows", ErrCharacterize, len(ch.Scales), len(ch.Costs))
	}
	l := ch.Levels()
	if l == 0 {
		return fmt.Errorf("%w: empty cost rows", ErrCharacterize)
	}
	for k, row := range ch.Costs {
		if len(row) != l {
			return fmt.Errorf("%w: row %d has %d levels, want %d", ErrCharacterize, k, len(row), l)
		}
		for i, v := range row {
			if v < 0 || math.IsNaN(v) {
				return fmt.Errorf("%w: invalid cost %g at row %d level %d", ErrCharacterize, v, k, i)
			}
		}
	}
	return nil
}

// FitOptions tunes Fit.
type FitOptions struct {
	// Baselines to consider for the scale-dependent term. Defaults to
	// {Zero, LinearN}.
	Baselines []Baseline
	// FlatnessThreshold: if the best scale-dependent fit improves residual
	// sum of squares over the constant fit by less than this relative
	// factor, the level is declared constant (α=0), mirroring the paper's
	// reading of Table II ("the checkpoint overheads for the first three
	// levels look like constants"). Default 0.5. A scale-dependent model
	// must also explain at least 30% of the mean cost across the
	// characterized range, so measurement noise on a flat level cannot
	// masquerade as growth.
	FlatnessThreshold float64
}

// Fit derives a Cost model per level from a characterization table. For
// each level it compares a constant fit against each candidate baseline and
// keeps the scale-dependent model only when it reduces the residual
// substantially (see FitOptions.FlatnessThreshold).
func Fit(ch Characterization, opts FitOptions) ([]Cost, error) {
	if err := ch.Validate(); err != nil {
		return nil, err
	}
	if len(opts.Baselines) == 0 {
		opts.Baselines = []Baseline{Zero, LinearN}
	}
	if opts.FlatnessThreshold <= 0 {
		opts.FlatnessThreshold = 0.5
	}
	scaleSpan := ch.Scales[len(ch.Scales)-1] - ch.Scales[0]
	nLevels := ch.Levels()
	out := make([]Cost, nLevels)
	for i := 0; i < nLevels; i++ {
		ys := make([]float64, len(ch.Scales))
		for k := range ch.Scales {
			ys[k] = ch.Costs[k][i]
		}
		constFit := mean(ys)
		constRSS := 0.0
		for _, y := range ys {
			d := y - constFit
			constRSS += d * d
		}

		best := Cost{Const: constFit, H: Zero}
		bestRSS := constRSS
		for _, h := range opts.Baselines {
			if h == Zero {
				continue
			}
			hx := make([]float64, len(ch.Scales))
			for k, n := range ch.Scales {
				hx[k] = h.Eval(n)
			}
			c0, slope, err := numopt.FitLine(hx, ys)
			if err != nil {
				continue
			}
			cand := Cost{Const: c0, Coeff: slope, H: h}
			candRSS := 0.0
			for k, n := range ch.Scales {
				d := ys[k] - cand.At(n)
				candRSS += d * d
			}
			span := slope * (h.Eval(ch.Scales[0]+scaleSpan) - h.Eval(ch.Scales[0]))
			if candRSS < bestRSS*(1-opts.FlatnessThreshold) && slope > 0 && span > 0.3*constFit {
				best, bestRSS = cand, candRSS
			}
		}
		if best.Const < 0 {
			best.Const = 0
		}
		out[i] = best
	}
	// Enforce the paper's ordering assumption C_1 <= C_2 <= ... <= C_L at
	// the largest characterized scale; warn via error if violated.
	top := ch.Scales[len(ch.Scales)-1]
	vals := make([]float64, nLevels)
	for i, c := range out {
		vals[i] = c.At(top)
	}
	if !sort.Float64sAreSorted(vals) {
		return out, fmt.Errorf("%w: fitted costs not monotone across levels at N=%g: %v", ErrCharacterize, top, vals)
	}
	return out, nil
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// FusionTableII is the paper's Table II: FTI checkpoint overheads (seconds)
// on the Argonne Fusion cluster at levels 1–4 for 128–1024 cores.
func FusionTableII() Characterization {
	return Characterization{
		Scales: []float64{128, 256, 384, 512, 1024},
		Costs: [][]float64{
			{0.9, 2.53, 3.7, 7},
			{0.67, 2.54, 4.1, 8.1},
			{0.67, 2.25, 3.9, 14.3},
			{0.99, 3.05, 4.12, 21.3},
			{1.1, 2.56, 3.61, 25.15},
		},
	}
}

// FusionFittedCosts returns the paper's published least-squares coefficients
// for Table II: (ε_i, α_i) = (0.866, 0), (2.586, 0), (3.886, 0),
// (5.5, 0.0212) with H_c(N) = N for level 4. The evaluation section (Fig. 5,
// 6, 7, Table III) uses exactly these.
func FusionFittedCosts() []Cost {
	return []Cost{
		Constant(0.866),
		Constant(2.586),
		Constant(3.886),
		LinearCost(5.5, 0.0212),
	}
}

// ExascaleCosts is the exascale extrapolation of Table II used by the
// Figure 5/6/7 and Table III reproductions: levels 1–3 keep their fitted
// constants; level 4 keeps the fitted linear metadata growth but saturates
// at 256Ki clients (C4 tops out at ≈5,563 s).
//
// Rationale: extrapolating α4·N literally to 10^6 cores yields C4 ≈ 21,205 s
// ≈ the level-4 MTBF of the 16-12-8-4 scenario, at which point the paper's
// own fixed-point model diverges at N^(*) — yet the paper reports finite
// ML(ori-scale) results and calls Table IV's 2,000 s constant PFS cost
// "relatively large" compared to this setting. Under strong scaling the
// total checkpoint volume is fixed, so a saturating PFS cost is the
// physically consistent reading; see DESIGN.md for the full derivation.
func ExascaleCosts() []Cost {
	c := FusionFittedCosts()
	c[3].Cap = 262144
	return c
}

// SymmetricLevels builds Level specs whose recovery model equals the
// checkpoint model scaled by factor (the common R ≈ C assumption in the
// paper's numerical studies, e.g. C(N)=R(N)=5 in Figure 3).
func SymmetricLevels(costs []Cost, factor float64) []Level {
	out := make([]Level, len(costs))
	for i, c := range costs {
		out[i] = Level{
			Checkpoint: c,
			Recovery:   Cost{Const: c.Const * factor, Coeff: c.Coeff * factor, H: c.H, Cap: c.Cap},
		}
	}
	return out
}
