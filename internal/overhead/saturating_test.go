package overhead

import (
	"errors"
	"math"
	"testing"

	"mlckpt/internal/stats"
)

func TestFitSaturatingRecoversCap(t *testing.T) {
	// Synthetic characterization with a plateau at 512: the fit must find
	// the cap and the coefficients.
	truth := Cost{Const: 5.5, Coeff: 0.02, H: LinearN, Cap: 512}
	scales := []float64{64, 128, 256, 384, 512, 768, 1024, 2048}
	costs := make([]float64, len(scales))
	for i, s := range scales {
		costs[i] = truth.At(s)
	}
	got, err := FitSaturating(scales, costs)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cap != 512 {
		t.Errorf("cap = %g, want 512", got.Cap)
	}
	if math.Abs(got.Const-5.5) > 1e-6 || math.Abs(got.Coeff-0.02) > 1e-9 {
		t.Errorf("fit = %+v", got)
	}
	for _, s := range scales {
		if math.Abs(got.At(s)-truth.At(s)) > 1e-6 {
			t.Errorf("At(%g) = %g, want %g", s, got.At(s), truth.At(s))
		}
	}
}

func TestFitSaturatingPureLinear(t *testing.T) {
	// No plateau in the data: the best fit is the uncapped line.
	scales := []float64{128, 256, 384, 512, 1024}
	costs := make([]float64, len(scales))
	for i, s := range scales {
		costs[i] = 5.5 + 0.0212*s
	}
	got, err := FitSaturating(scales, costs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Coeff-0.0212) > 1e-9 || math.Abs(got.Const-5.5) > 1e-6 {
		t.Errorf("fit = %+v", got)
	}
	// An exact linear fit can also be achieved with cap = max scale; all
	// that matters is that the fit reproduces the data over its range.
	for _, s := range scales {
		if math.Abs(got.At(s)-(5.5+0.0212*s)) > 1e-6 {
			t.Errorf("At(%g) = %g", s, got.At(s))
		}
	}
}

func TestFitSaturatingConstantData(t *testing.T) {
	scales := []float64{128, 256, 512}
	costs := []float64{3, 3, 3}
	got, err := FitSaturating(scales, costs)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []float64{100, 1000, 1e6} {
		if math.Abs(got.At(s)-3) > 1e-9 {
			t.Errorf("constant fit At(%g) = %g", s, got.At(s))
		}
	}
}

func TestFitSaturatingNoisy(t *testing.T) {
	rng := stats.NewRNG(7)
	truth := Cost{Const: 10, Coeff: 0.05, H: LinearN, Cap: 1000}
	var scales, costs []float64
	for s := 100.0; s <= 4000; s += 100 {
		scales = append(scales, s)
		costs = append(costs, rng.Jitter(truth.At(s), 0.02))
	}
	got, err := FitSaturating(scales, costs)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cap < 500 || got.Cap > 2100 {
		t.Errorf("cap = %g, want near 1000", got.Cap)
	}
	// Prediction error over the range stays small.
	for _, s := range []float64{200, 1000, 3000} {
		if e := math.Abs(got.At(s)-truth.At(s)) / truth.At(s); e > 0.05 {
			t.Errorf("At(%g) off by %.1f%%", s, e*100)
		}
	}
}

func TestFitSaturatingErrors(t *testing.T) {
	if _, err := FitSaturating([]float64{1, 2}, []float64{1, 2}); !errors.Is(err, ErrCharacterize) {
		t.Errorf("too few samples: %v", err)
	}
	if _, err := FitSaturating([]float64{1, 2, 3}, []float64{1, 2}); !errors.Is(err, ErrCharacterize) {
		t.Errorf("length mismatch: %v", err)
	}
}

func TestFitSaturatingDecreasingCosts(t *testing.T) {
	// Strictly decreasing costs admit no non-negative-slope fit other than
	// a constant; the constant (alpha=0 via cap collapse) or an error is
	// acceptable — but never a negative slope.
	got, err := FitSaturating([]float64{100, 200, 300}, []float64{30, 20, 10})
	if err != nil {
		return // rejected outright: fine
	}
	if got.Coeff < 0 {
		t.Errorf("negative slope fit: %+v", got)
	}
}
