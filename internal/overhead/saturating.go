package overhead

import (
	"fmt"
	"math"
)

// FitSaturating fits a saturating-linear cost c(N) = ε + α·min(N, cap) to
// one level's characterization data by grid-searching the cap over the
// observed scales (and beyond) and least-squares fitting (ε, α) for each
// candidate. It returns the model with the smallest residual sum of
// squares.
//
// This is how a characterization that extends far enough to see the PFS
// plateau would be fitted; the paper's Table II stops at 1,024 cores, so
// the repository's ExascaleCosts sets the cap from physical reasoning
// instead (see DESIGN.md).
func FitSaturating(scales, costs []float64) (Cost, error) {
	if len(scales) != len(costs) || len(scales) < 3 {
		return Cost{}, fmt.Errorf("%w: need ≥3 matched samples, have %d/%d",
			ErrCharacterize, len(scales), len(costs))
	}
	maxScale := scales[0]
	for _, s := range scales {
		if s > maxScale {
			maxScale = s
		}
	}
	// Candidate caps: every observed scale plus "no cap" (beyond the data).
	candidates := append(append([]float64(nil), scales...), maxScale*2, math.Inf(1))
	best := Cost{}
	bestRSS := math.Inf(1)
	for _, cap := range candidates {
		// Design: y = ε + α·min(N, cap).
		sumX, sumY, sumXX, sumXY := 0.0, 0.0, 0.0, 0.0
		n := float64(len(scales))
		for i, s := range scales {
			x := s
			if x > cap {
				x = cap
			}
			sumX += x
			sumY += costs[i]
			sumXX += x * x
			sumXY += x * costs[i]
		}
		den := n*sumXX - sumX*sumX
		if math.Abs(den) < 1e-12 {
			continue
		}
		alpha := (n*sumXY - sumX*sumY) / den
		eps := (sumY - alpha*sumX) / n
		if alpha < 0 {
			continue // costs do not decrease with scale in this model
		}
		rss := 0.0
		for i, s := range scales {
			x := s
			if x > cap {
				x = cap
			}
			d := costs[i] - (eps + alpha*x)
			rss += d * d
		}
		if rss < bestRSS {
			bestRSS = rss
			c := Cost{Const: eps, Coeff: alpha, H: LinearN}
			if !math.IsInf(cap, 1) {
				c.Cap = cap
			}
			if alpha == 0 {
				c.H = Zero
			}
			best = c
		}
	}
	if math.IsInf(bestRSS, 1) {
		return Cost{}, fmt.Errorf("%w: no admissible saturating fit", ErrCharacterize)
	}
	return best, nil
}
