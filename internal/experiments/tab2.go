package experiments

import (
	"fmt"

	"mlckpt/internal/fti"
	"mlckpt/internal/heat"
	"mlckpt/internal/mpisim"
	"mlckpt/internal/overhead"
	"mlckpt/internal/sweep"
)

// Tab2Result reproduces Table II: FTI checkpoint overheads per level
// measured at several execution scales, plus the least-squares cost-model
// coefficients (ε_i, α_i) fitted from them.
type Tab2Result struct {
	Scales []int
	Costs  [][]float64 // [scale][level] seconds
	Fitted []overhead.Cost
	// Published is the paper's own fit for reference:
	// (0.866,0)(2.586,0)(3.886,0)(5.5,0.0212).
	Published []overhead.Cost
}

// Tab2 measures checkpoint overheads by running the Heat Distribution
// program under FTI on the simulated cluster at each scale and timing one
// checkpoint per level (strong scaling: fixed global problem).
func Tab2(scales []int) (Tab2Result, error) {
	return Tab2Grid(scales, Grid{})
}

// Tab2Grid is Tab2 with the per-scale measurement runs (each one a full
// heat+FTI execution) fanned across the sweep engine. Measurements are
// deterministic, so results are identical for any worker count.
func Tab2Grid(scales []int, g Grid) (Tab2Result, error) {
	if len(scales) == 0 {
		scales = []int{128, 256, 384, 512, 1024}
	}
	res := Tab2Result{Scales: scales, Published: overhead.FusionFittedCosts()}
	fcfg := fti.DefaultConfig()

	jobs := make([]sweep.Job, len(scales))
	for i, n := range scales {
		n := n
		jobs[i] = sweep.Job{
			Name:     fmt.Sprintf("tab2/%d-cores", n),
			SolveKey: sweep.MustKey("tab2.measure", n),
			Solve: func() (any, error) {
				hcfg := heat.Config{GridX: 1024, GridY: 1024, Iterations: 5, CellTime: 1e-7, TopTemp: 100}
				cluster, err := fti.NewCluster(n, fcfg)
				if err != nil {
					return nil, err
				}
				durs := make([]float64, fti.Levels)
				_, err = mpisim.Run(n, mpisim.DefaultCostModel(), func(r *mpisim.Rank) {
					s, err := heat.NewSolver(r, hcfg)
					if err != nil {
						panic(err)
					}
					agent := cluster.Attach(r)
					// The snapshot buffer circulates between this rank and
					// the cluster: CheckpointOwned takes the filled buffer
					// and hands back a recycled one — no payload copy.
					var snapBuf []byte
					s.Run(func(s *heat.Solver) bool {
						it := s.Iteration()
						if it >= 1 && it <= fti.Levels {
							filled := s.SerializeInto(snapBuf)
							recycled, d, err := agent.CheckpointOwned(it, filled)
							if err != nil {
								panic(err)
							}
							snapBuf = recycled
							if r.ID() == 0 {
								durs[it-1] = d
							}
						}
						return true
					})
				})
				if err != nil {
					return nil, err
				}
				return durs, nil
			},
		}
	}
	outs := sweep.Run(jobs, sweep.Options{Workers: g.Workers, Cache: g.Cache, Progress: g.Progress})
	for _, o := range outs {
		if o.Err != nil {
			return res, fmt.Errorf("%s: %w", o.Name, o.Err)
		}
		res.Costs = append(res.Costs, o.Solved.([]float64))
	}

	fitted, err := overhead.Fit(overhead.Characterization{
		Scales: toF(scales),
		Costs:  res.Costs,
	}, overhead.FitOptions{})
	if err != nil {
		return res, err
	}
	res.Fitted = fitted
	return res, nil
}

func toF(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		out[i] = float64(v)
	}
	return out
}

// Render prints the measured table and the fitted coefficients.
func (r Tab2Result) Render() string {
	t := NewTable("Table II: measured FTI checkpoint overhead (seconds)",
		"exe. scale", "L1", "L2", "L3", "L4")
	for i, n := range r.Scales {
		t.Add(fmt.Sprintf("%d cores", n), r.Costs[i][0], r.Costs[i][1], r.Costs[i][2], r.Costs[i][3])
	}
	out := t.String()
	f := NewTable("Fitted cost models C_i(N) = ε_i + α_i·H(N)", "level", "measured fit", "paper's fit")
	for i, c := range r.Fitted {
		f.Add(i+1, c.String(), r.Published[i].String())
	}
	return out + f.String()
}
