package experiments

import (
	"errors"
	"fmt"
	"math"

	"mlckpt/internal/core"
	"mlckpt/internal/failure"
	"mlckpt/internal/obs"
	"mlckpt/internal/obs/attrib"
	"mlckpt/internal/sim"
	"mlckpt/internal/sweep"
)

// AttribCell is one (failure case, policy) waste-attribution cell: a
// single fully traced simulation run decomposed into the paper's E(T_w)
// buckets by internal/obs/attrib, next to Formula 21's prediction for the
// same configuration.
type AttribCell struct {
	Spec   string
	Policy core.Policy
	N      float64 // solved scale
	Report *attrib.Report
	// ModelOK is false when Formula 21 has no finite fixed point for this
	// configuration (failure feedback over unity — the regime that
	// motivates multilevel checkpointing); Model is then zero and only the
	// measured columns are meaningful.
	ModelOK bool
	Model   attrib.ModelComparison
}

// AttribResult is the waste-attribution experiment: measured-vs-modeled
// wall-clock breakdowns across the evaluation failure cases.
type AttribResult struct {
	TeCoreDays float64
	Cells      []AttribCell
}

// attribPortionTol bounds the disagreement between the attribution
// engine's coarse portions and the simulator's own per-run accounting,
// as a fraction of the run's wall clock. The two are independent tallies
// of the same run (trace spans vs simulator counters), so anything beyond
// float rounding is a vocabulary bug and fails the experiment loudly.
const attribPortionTol = 1e-6

// AttribGrid runs the waste-attribution experiment at the given workload:
// for every evaluation failure case × {ML(opt-scale), SL(opt-scale)}, one
// simulation run is traced without an event budget, attributed exactly
// (the rational identity Σ buckets == wall clock must hold), cross-checked
// against the simulator's own accounting, and compared with Formula 21.
// quick restricts to the first two failure cases for smoke passes.
//
// The traced run is the same run 0 a SimulatePolicy batch would trace
// (same SimSeed stream), but it lands on a private collector teed with
// g.Obs, so attribution reads a complete private track even when the
// caller's recorder truncates or drops.
func AttribGrid(teCoreDays float64, quick bool, g Grid) (AttribResult, error) {
	cases := FailureCases
	if quick {
		cases = cases[:2]
	}
	policies := []core.Policy{core.MLOptScale, core.SLOptScale}
	res := AttribResult{TeCoreDays: teCoreDays}

	var jobs []sweep.Job
	for _, spec := range cases {
		for _, pol := range policies {
			sc, pol := EvalScenario(teCoreDays, spec), pol
			solveKey, err := sweep.Key("experiments.solve", sc.solveProblem(), int(pol))
			if err != nil {
				return res, fmt.Errorf("attrib cell %s/%v: %w", sc.Spec, pol, err)
			}
			postKey, err := sweep.Key("experiments.attrib", sc, int(pol))
			if err != nil {
				return res, fmt.Errorf("attrib cell %s/%v: %w", sc.Spec, pol, err)
			}
			solveTrack := fmt.Sprintf("opt/%s/%v#%s", sc.Spec, pol, keySuffix(solveKey))
			attribTrack := fmt.Sprintf("attrib/%s/%v#%s", sc.Spec, pol, keySuffix(postKey))
			jobs = append(jobs, sweep.Job{
				Name:     fmt.Sprintf("attrib/%s/%v", sc.Spec, pol),
				SolveKey: solveKey,
				Solve: func() (any, error) {
					sol, x, err := SolvePolicyObs(sc, pol, g.Obs, solveTrack)
					if err != nil {
						return nil, err
					}
					return solvedCell{Solution: sol, X: x}, nil
				},
				PostKey: postKey,
				Seed:    sc.SimSeed(pol),
				Post: func(solved any, seed uint64) (any, error) {
					sv := solved.(solvedCell)
					return attributeCell(sc, pol, sv, seed, g.Obs, attribTrack)
				},
			})
		}
	}
	outs := sweep.Run(jobs, sweep.Options{
		Workers: g.Workers, Cache: g.Cache, Progress: g.Progress,
		Obs: g.Obs, Clock: g.Clock,
	})
	for _, o := range outs {
		if o.Err != nil {
			return res, fmt.Errorf("%s: %w", o.Name, o.Err)
		}
		res.Cells = append(res.Cells, o.Result.(AttribCell))
	}
	return res, nil
}

// attributeCell runs one fully traced simulation and attributes it. The
// trace goes to a private collector (teed with the caller's recorder, so
// the cell's timeline still lands on the shared artifact) because the
// attribution identity needs every event: a shared recorder may impose an
// event budget, and a truncated track is refused by design.
func attributeCell(sc Scenario, pol core.Policy, sv solvedCell, seed uint64, rec obs.Recorder, track string) (AttribCell, error) {
	col := obs.NewCollector()
	cfg := sim.Config{
		Params:       sc.Params(),
		N:            sv.Solution.N,
		X:            sv.X,
		JitterRatio:  sc.Jitter,
		MaxWallClock: sc.MaxDays * failure.SecondsPerDay,
		Obs:          obs.Tee(col, rec),
		ObsTrack:     track,
		ObsMaxEvents: -1,
	}
	runs, err := sim.RunMany(cfg, 1, seed)
	if err != nil {
		return AttribCell{}, err
	}
	r := runs[0]
	rep, err := attrib.FromTrace(col.Trace, track)
	if err != nil {
		return AttribCell{}, err
	}
	if !rep.Exact {
		return AttribCell{}, fmt.Errorf("%w: %s: identity not exact (clipped %g s)", attrib.ErrAttrib, track, rep.Clipped)
	}
	// Cross-check the trace-derived portions against the simulator's own
	// accounting of the very same run: two independent tallies, one truth.
	p, tol := rep.Portions(), attribPortionTol*r.WallClock
	for _, c := range []struct {
		name      string
		got, want float64
	}{
		{"productive", p.Productive, r.Productive},
		{"checkpoint", p.Checkpoint, r.Checkpoint},
		{"restart", p.Restart, r.Restart},
		{"rollback", p.Rollback, r.Rollback},
	} {
		if math.Abs(c.got-c.want) > tol {
			return AttribCell{}, fmt.Errorf("%w: %s: %s portion %.9g disagrees with the simulator's %.9g (tol %g)",
				attrib.ErrAttrib, track, c.name, c.got, c.want, tol)
		}
	}
	if rep.TotalFailures() != r.TotalFailures() {
		return AttribCell{}, fmt.Errorf("%w: %s: %d failures attributed, simulator saw %d",
			attrib.ErrAttrib, track, rep.TotalFailures(), r.TotalFailures())
	}
	cell := AttribCell{Spec: sc.Spec, Policy: pol, N: sv.Solution.N, Report: rep}
	switch mc, err := rep.CompareModel(cfg.Params, sv.X, sv.Solution.N); {
	case err == nil:
		cell.ModelOK, cell.Model = true, mc
	case errors.Is(err, attrib.ErrModelDiverged):
		// A divergent expectation is a result, not a failure: the run
		// completed and its measured breakdown stands; the paper's point is
		// precisely that single-level policies hit this regime first.
	default:
		return AttribCell{}, err
	}
	return cell, nil
}

// Render prints the measured-vs-modeled breakdown, one row per cell. The
// measured columns are one run's exact attribution (fractions of its wall
// clock); the model columns are Formula 21's expectation. maxΔ is the
// largest per-portion discrepancy — a single run scatters around the
// expectation, so it reflects run-to-run variance, not model error.
func (r AttribResult) Render() string {
	t := NewTable(fmt.Sprintf("Waste attribution vs Formula 21: te = %.3g core-days, one traced run per cell (exact identity enforced)", r.TeCoreDays),
		"case", "policy", "n", "wall (d)", "fails",
		"work%", "ckpt%", "rest%", "roll%",
		"m:work%", "m:ckpt%", "m:rest%", "m:roll%", "maxΔ")
	pct := func(v float64) string { return fmt.Sprintf("%.2f", 100*v) }
	for _, c := range r.Cells {
		// Measured fractions come straight off the report so they render
		// even when the model comparison is unavailable.
		p, w := c.Report.Portions(), c.Report.WallClock
		mp := []string{"div", "div", "div", "div", "-"}
		if c.ModelOK {
			pr := c.Model.Predicted
			mp = []string{pct(pr.Productive), pct(pr.Checkpoint), pct(pr.Restart), pct(pr.Rollback),
				fmt.Sprintf("%.3f", c.Model.MaxAbsDelta)}
		}
		t.Add(
			c.Spec,
			fmt.Sprint(c.Policy),
			fmt.Sprintf("%.0f", c.N),
			fmt.Sprintf("%.2f", w/failure.SecondsPerDay),
			fmt.Sprintf("%d", c.Report.TotalFailures()),
			pct(p.Productive/w), pct(p.Checkpoint/w), pct(p.Restart/w), pct(p.Rollback/w),
			mp[0], mp[1], mp[2], mp[3], mp[4],
		)
	}
	return t.String()
}

// MaxModelDelta is the grid's worst per-portion model discrepancy over the
// cells whose Formula 21 fixed point exists.
func (r AttribResult) MaxModelDelta() float64 {
	max := 0.0
	for _, c := range r.Cells {
		if c.ModelOK && c.Model.MaxAbsDelta > max {
			max = c.Model.MaxAbsDelta
		}
	}
	return max
}
