package experiments

import (
	"strings"
	"testing"

	"mlckpt/internal/failure"
	"mlckpt/internal/inject"
	"mlckpt/internal/mpisim"
	"mlckpt/internal/obs"
	"mlckpt/internal/obs/attrib"
	"mlckpt/internal/sweep"
)

// chaosAttribution runs the chaos grid with telemetry and attributes every
// real-run track, returning track -> rendered report (or error text — the
// failure mode must be as deterministic as the success mode).
func chaosAttribution(t *testing.T, workers int) map[string]string {
	t.Helper()
	col := obs.NewCollector()
	if _, err := ChaosGrid(16, Grid{Workers: workers, Cache: sweep.NewCache(), Obs: col, Clock: fakeClock()}); err != nil {
		t.Fatalf("ChaosGrid(workers=%d): %v", workers, err)
	}
	out := map[string]string{}
	for _, track := range col.Trace.Tracks() {
		if !strings.HasPrefix(track, "real/") {
			continue
		}
		rep, err := attrib.FromTrace(col.Trace, track)
		if err != nil {
			out[track] = "error: " + err.Error()
			continue
		}
		if !rep.Exact {
			t.Errorf("workers=%d %s: attribution identity not exact (clipped %g)", workers, track, rep.Clipped)
		}
		out[track] = rep.Render()
	}
	if len(out) == 0 {
		t.Fatalf("workers=%d: no real-run tracks found in %v", workers, col.Trace.Tracks())
	}
	return out
}

// TestChaosAttributionWorkerDeterminism: the waste-attribution reports of
// every chaos cell (fault injection active) are byte-identical no matter
// how many workers race over the grid — the reports are pure functions of
// the trace bytes, which are pure functions of the cell content.
func TestChaosAttributionWorkerDeterminism(t *testing.T) {
	r1 := chaosAttribution(t, 1)
	r8 := chaosAttribution(t, 8)
	if len(r1) != len(r8) {
		t.Fatalf("track sets differ: %d vs %d", len(r1), len(r8))
	}
	for track, rep := range r1 {
		if r8[track] != rep {
			t.Errorf("%s: reports differ between workers=1 and workers=8:\n--- w1 ---\n%s\n--- w8 ---\n%s", track, rep, r8[track])
		}
	}
}

// TestChaosAttributionEngineIndependence: the attribution report of a
// fault-injected real run is byte-identical under the event-scheduler and
// goroutine mpisim engines.
func TestChaosAttributionEngineIndependence(t *testing.T) {
	run := func(engine mpisim.Engine) string {
		col := obs.NewCollector()
		cfg := chaosConfig(16, 4) // a seed with many failures and scratch restarts
		cfg.DisableScratch = false
		cfg.Engine = engine
		cfg.Inject = inject.MustCompile(chaosSpec(0.1, 0.5), chaosRootSeed, "chaos/engine-attrib")
		cfg.Obs = col
		cfg.ObsTrack = "real/engine-attrib"
		rr, err := RunReal(cfg)
		if err != nil {
			t.Fatalf("engine %v: %v", engine, err)
		}
		if !rr.Completed {
			t.Fatalf("engine %v: run did not complete", engine)
		}
		rep, err := attrib.FromTrace(col.Trace, "real/engine-attrib")
		if err != nil {
			t.Fatalf("engine %v: %v", engine, err)
		}
		if !rep.Exact {
			t.Fatalf("engine %v: identity not exact (clipped %g)", engine, rep.Clipped)
		}
		return rep.Render()
	}
	ev, gr := run(mpisim.EventEngine), run(mpisim.GoroutineEngine)
	if ev != gr {
		t.Errorf("attribution differs across engines:\n--- event ---\n%s\n--- goroutine ---\n%s", ev, gr)
	}
}

// TestRealRunAttributionZeroFailure: with no failures injected and zero
// rates, only the work and checkpoint buckets are populated.
func TestRealRunAttributionZeroFailure(t *testing.T) {
	col := obs.NewCollector()
	cfg := chaosConfig(16, 777)
	cfg.Rates = failure.MustParseRates("0-0-0-0", 16)
	cfg.Obs = col
	cfg.ObsTrack = "real/quiet"
	rr, err := RunReal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Completed {
		t.Fatal("zero-rate run did not complete")
	}
	rep, err := attrib.FromTrace(col.Trace, "real/quiet")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Exact {
		t.Fatalf("identity not exact (clipped %g)", rep.Clipped)
	}
	if rep.Redo != 0 || rep.Alloc != 0 || rep.Detection != 0 || len(rep.Recovery) != 0 ||
		rep.RecoveryAborted != 0 || rep.CkptAborted != 0 || rep.TotalFailures() != 0 {
		t.Fatalf("failure-free run has waste buckets: %+v", rep)
	}
	if rep.Work <= 0 || len(rep.Ckpt) == 0 {
		t.Fatalf("work %g, ckpt levels %d — expected both nonzero", rep.Work, len(rep.Ckpt))
	}
}
