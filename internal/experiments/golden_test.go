package experiments

import (
	"math"
	"os"
	"strconv"
	"strings"
	"testing"
)

// The golden regression suite pins every reproduced figure/table to
// docs_results_reference.txt so performance work cannot silently drift the
// paper numbers. All experiment pipelines are deterministic (fixed seeds,
// fixed-order reductions), so the tolerance can be tight: numeric tokens
// must agree within goldenRelTol relative error and everything else must
// match byte-for-byte. goldenRelTol lives in the race_{on,off}_test.go
// guard files: the race detector's instrumentation changes floating-point
// optimization enough to move last-digit roundings, so race builds get a
// loosened 1e-3 where regular builds demand 1e-9.

// goldenRef loads the reference file once per test binary.
func goldenRef(t *testing.T) []string {
	t.Helper()
	blob, err := os.ReadFile("../../docs_results_reference.txt")
	if err != nil {
		t.Fatalf("golden reference: %v", err)
	}
	return strings.Split(string(blob), "\n")
}

// compareGolden locates got's first line verbatim in the reference and
// compares the full rendered block against the reference lines that
// follow, token by token.
func compareGolden(t *testing.T, ref []string, got string) {
	t.Helper()
	gotLines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(gotLines) == 0 || gotLines[0] == "" {
		t.Fatal("empty render")
	}
	start := -1
	for i, l := range ref {
		if l == gotLines[0] {
			start = i
			break
		}
	}
	if start < 0 {
		t.Fatalf("title line not found in reference: %q", gotLines[0])
	}
	if start+len(gotLines) > len(ref) {
		t.Fatalf("rendered block (%d lines) overruns the reference", len(gotLines))
	}
	for i, gl := range gotLines {
		compareGoldenLine(t, ref[start+i], gl, start+i+1)
	}
}

func compareGoldenLine(t *testing.T, want, got string, refLine int) {
	t.Helper()
	if want == got {
		return
	}
	wt, gt := strings.Fields(want), strings.Fields(got)
	if len(wt) != len(gt) {
		t.Errorf("reference line %d:\nwant %q\n got %q", refLine, want, got)
		return
	}
	for i := range wt {
		if wt[i] == gt[i] {
			continue
		}
		wf, werr := strconv.ParseFloat(wt[i], 64)
		gf, gerr := strconv.ParseFloat(gt[i], 64)
		if werr != nil || gerr != nil {
			t.Errorf("reference line %d, token %q != %q:\nwant %q\n got %q", refLine, wt[i], gt[i], want, got)
			return
		}
		if relDiff(wf, gf) > goldenRelTol {
			t.Errorf("reference line %d: %v vs %v exceeds rel tol %g:\nwant %q\n got %q",
				refLine, wf, gf, goldenRelTol, want, got)
			return
		}
	}
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	return math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b))
}

func TestGoldenFig1(t *testing.T) {
	compareGolden(t, goldenRef(t), Fig1(50).Render())
}

func TestGoldenFig2(t *testing.T) {
	if testing.Short() {
		t.Skip("full 1024-rank measurement in -short mode")
	}
	r, err := Fig2(1024)
	if err != nil {
		t.Fatal(err)
	}
	ref := goldenRef(t)
	// Render emits three curve tables; pin each to its own section.
	for _, block := range strings.Split(strings.TrimRight(r.Render(), "\n"), "\n\n") {
		compareGolden(t, ref, block)
	}
}

func TestGoldenFig3(t *testing.T) {
	r, err := Fig3(9)
	if err != nil {
		t.Fatal(err)
	}
	ref := goldenRef(t)
	for _, block := range strings.Split(strings.TrimRight(r.Render(), "\n"), "\n\n") {
		compareGolden(t, ref, block)
	}
}

func TestGoldenFig4(t *testing.T) {
	if testing.Short() {
		t.Skip("10 heat+FTI executions per point in -short mode")
	}
	if raceEnabled {
		t.Skip("full fig4 reproduction is too slow under -race")
	}
	r, err := Fig4(32, 10, 400)
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, goldenRef(t), r.Render())
}

func TestGoldenTab2(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-rank FTI measurement in -short mode")
	}
	r, err := Tab2(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Render emits the measured table and the fitted-cost table.
	ref := goldenRef(t)
	for _, block := range strings.Split(strings.TrimRight(r.Render(), "\n"), "\n\n") {
		compareGolden(t, ref, block)
	}
}

func TestGoldenFig5Tab3(t *testing.T) {
	if testing.Short() {
		t.Skip("100-run evaluation sweep in -short mode")
	}
	r, err := Eval(3e6, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref := goldenRef(t)
	compareGolden(t, ref, r.Render())
	compareGolden(t, ref, r.RenderTab3())
	compareGolden(t, ref, r.RenderFig7())
}

func TestGoldenTab4(t *testing.T) {
	if testing.Short() {
		t.Skip("100-run Table IV sweep in -short mode")
	}
	r, err := Tab4(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, goldenRef(t), r.Render())
}
