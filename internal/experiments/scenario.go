// Package experiments defines one reproducible scenario per table and
// figure of the paper's evaluation (Section IV), shared by the
// cmd/experiments CLI and the repository's benchmark harness. Each
// experiment returns structured rows plus a text rendering that mirrors
// the paper's presentation.
//
// Scenario constants follow Section IV-A: quadratic Heat-Distribution
// speedup with κ = 0.46, ideal scale N^(*) (10^5 in the Figure 3 study,
// 10^6 in the evaluation), FTI overheads fitted from Table II, failure
// cases "r1-r2-r3-r4" at baseline N_b = N^(*), exponential interarrivals,
// ±30% overhead jitter, and means over 100 runs.
package experiments

import (
	"mlckpt/internal/core"
	"mlckpt/internal/failure"
	"mlckpt/internal/model"
	"mlckpt/internal/obs"
	"mlckpt/internal/overhead"
	"mlckpt/internal/sim"
	"mlckpt/internal/speedup"
)

// FailureCases are the six per-level failures-per-day scenarios of
// Figures 5–7 and Table III.
var FailureCases = []string{
	"16-12-8-4", "8-6-4-2", "4-3-2-1", "16-8-4-2", "8-4-2-1", "4-2-1-0.5",
}

// Tab4Cases are the three scenarios of Table IV.
var Tab4Cases = []string{"16-12-8-4", "8-6-4-2", "4-3-2-1"}

// Scenario bundles everything a sweep needs.
type Scenario struct {
	TeCoreDays float64 // workload in core-days
	NStar      float64 // ideal scale N^(*) and failure baseline N_b
	Kappa      float64 // speedup slope at the origin
	Costs      []overhead.Cost
	RecFactor  float64 // recovery cost = RecFactor × checkpoint cost
	Alloc      float64 // allocation period A, seconds
	Spec       string  // failure case, e.g. "16-12-8-4"
	Jitter     float64 // overhead jitter ratio for the simulator
	Runs       int     // simulation repetitions
	MaxDays    float64 // simulator truncation horizon, days
	Seed       uint64
}

// EvalScenario is the Figure 5/6/7 + Table III configuration for a given
// workload and failure case.
func EvalScenario(teCoreDays float64, spec string) Scenario {
	return Scenario{
		TeCoreDays: teCoreDays,
		NStar:      1e6,
		Kappa:      0.46,
		Costs:      overhead.ExascaleCosts(),
		RecFactor:  0.5,
		Alloc:      60,
		Spec:       spec,
		Jitter:     0.3,
		Runs:       100,
		MaxDays:    3000,
		Seed:       20140701,
	}
}

// Tab4Scenario is the constant-PFS-cost configuration of Table IV: level
// costs 50/100/200/2000 s, Te = 2M core-days. The paper prints two blocks
// without naming the second knob; we take recovery = checkpoint for block
// A and recovery = checkpoint/2 for block B (documented in EXPERIMENTS.md).
func Tab4Scenario(spec string, recFactor float64) Scenario {
	s := EvalScenario(2e6, spec)
	s.Costs = []overhead.Cost{
		overhead.Constant(50),
		overhead.Constant(100),
		overhead.Constant(200),
		overhead.Constant(2000),
	}
	s.RecFactor = recFactor
	return s
}

// Params materializes the analytic model parameters.
func (s Scenario) Params() *model.Params {
	return &model.Params{
		Te:      s.TeCoreDays * failure.SecondsPerDay,
		Speedup: speedup.Quadratic{Kappa: s.Kappa, NStar: s.NStar},
		Levels:  overhead.SymmetricLevels(s.Costs, s.RecFactor),
		Alloc:   s.Alloc,
		Rates:   failure.MustParseRates(s.Spec, s.NStar),
	}
}

// PolicyOutcome is one (policy, scenario) evaluation: the solver's plan and
// the simulated execution statistics.
type PolicyOutcome struct {
	Policy    core.Policy
	Solution  core.Solution
	X         []float64 // full per-level schedule fed to the simulator
	Aggregate sim.Aggregate
}

// WallClockDays returns the mean simulated wall clock in days.
func (o PolicyOutcome) WallClockDays() float64 {
	return o.Aggregate.WallClock.Mean / failure.SecondsPerDay
}

// Efficiency returns the paper's efficiency metric from the simulated mean.
func (o PolicyOutcome) Efficiency(teCoreDays float64) float64 {
	return model.Efficiency(teCoreDays*failure.SecondsPerDay, o.Aggregate.WallClock.Mean, o.Solution.N)
}

// SimSeed is the simulator stream for one (scenario, policy) cell. The
// derivation is a pure function of the scenario seed and the policy — never
// of execution order — so parallel sweeps stay bit-identical for any worker
// count, and it is kept bit-compatible with the original serial harness so
// docs_results_reference.txt remains reproducible.
func (s Scenario) SimSeed(pol core.Policy) uint64 {
	return s.Seed ^ uint64(pol+1)*0x9E37
}

// SolvePolicy runs the deterministic half of a (scenario, policy) cell:
// the Algorithm 1 solve and the expansion of its schedule to all levels.
// This is the memoizable stage of a sweep — it depends only on the
// scenario's model parameters and the policy.
func SolvePolicy(s Scenario, pol core.Policy) (core.Solution, []float64, error) {
	return SolvePolicyObs(s, pol, nil, "")
}

// SolvePolicyObs is SolvePolicy with telemetry: the optimizer records its
// convergence counters through rec and its per-outer-iteration spans on
// track (which must derive from the cell's content — see internal/obs).
// A nil recorder is equivalent to SolvePolicy.
func SolvePolicyObs(s Scenario, pol core.Policy, rec obs.Recorder, track string) (core.Solution, []float64, error) {
	p := s.Params()
	sol, err := pol.Solve(p, core.Options{Obs: rec, ObsLabel: track})
	if err != nil {
		return core.Solution{}, nil, err
	}
	return sol, pol.ExpandX(p, sol), nil
}

// SimulatePolicy runs the stochastic half of a cell with an explicit seed:
// the solved schedule played through the execution simulator.
func SimulatePolicy(s Scenario, pol core.Policy, sol core.Solution, x []float64, seed uint64) (PolicyOutcome, error) {
	return SimulatePolicyObs(s, pol, sol, x, seed, nil, "")
}

// SimulatePolicyObs is SimulatePolicy with telemetry: run counters record
// for every repetition, and the batch's first run traces checkpoint and
// recovery spans on track (empty disables tracing; see sim.Config.ObsTrack).
func SimulatePolicyObs(s Scenario, pol core.Policy, sol core.Solution, x []float64, seed uint64, rec obs.Recorder, track string) (PolicyOutcome, error) {
	cfg := sim.Config{
		Params:       s.Params(),
		N:            sol.N,
		X:            x,
		JitterRatio:  s.Jitter,
		MaxWallClock: s.MaxDays * failure.SecondsPerDay,
		Obs:          rec,
		ObsTrack:     track,
	}
	agg, err := sim.Simulate(cfg, s.Runs, seed)
	if err != nil {
		return PolicyOutcome{}, err
	}
	return PolicyOutcome{Policy: pol, Solution: sol, X: x, Aggregate: agg}, nil
}

// RunPolicy solves the policy on the scenario and simulates its schedule.
func RunPolicy(s Scenario, pol core.Policy) (PolicyOutcome, error) {
	sol, x, err := SolvePolicy(s, pol)
	if err != nil {
		return PolicyOutcome{}, err
	}
	return SimulatePolicy(s, pol, sol, x, s.SimSeed(pol))
}
