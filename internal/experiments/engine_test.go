package experiments

import (
	"fmt"
	"reflect"
	"testing"

	"mlckpt/internal/failure"
	"mlckpt/internal/inject"
	"mlckpt/internal/mpisim"
	"mlckpt/internal/stats"
)

// These tests pin the scheduler rewrite's contract at the top of the
// stack: the chaos harness (docs/FAULTS.md) must be *schedule*-independent,
// not just worker-count-independent. Every injection decision is keyed on
// content (plan seed, attempt ordinal, rank), never on execution order, so
// swapping the entire execution engine under the real-run driver — the
// cooperative event scheduler vs the preemptive goroutine runtime — must
// change nothing observable: same digests, same failure counts, same
// escalations, same loud errors.

// runBothEngines executes one RealConfig under both engines and asserts
// deep-equal results (or identical loud errors).
func runBothEngines(t *testing.T, label string, cfg RealConfig) {
	t.Helper()
	ev := cfg
	ev.Engine = mpisim.EventEngine
	evRes, evErr := RunReal(ev)

	or := cfg
	or.Engine = mpisim.GoroutineEngine
	orRes, orErr := RunReal(or)

	if (evErr == nil) != (orErr == nil) || (evErr != nil && evErr.Error() != orErr.Error()) {
		t.Fatalf("%s: error mismatch:\nevent:     %v\ngoroutine: %v", label, evErr, orErr)
	}
	if !reflect.DeepEqual(evRes, orRes) {
		t.Fatalf("%s: result mismatch:\nevent:     %+v\ngoroutine: %+v", label, evRes, orRes)
	}
}

// TestChaosEngineIndependence replays every ChaosGrid cell — same per-cell
// seeds and fault plans as chaosGridSeeded draws them — on both engines.
func TestChaosEngineIndependence(t *testing.T) {
	if testing.Short() {
		t.Skip("full grid on both engines is seconds-long")
	}
	const ranks = 16
	corrupts := []float64{0, 0.02, 0.1, 0.4}
	correlates := []float64{0, 0.5}

	rng := stats.NewRNG(chaosRootSeed)
	goldenSeed := rng.Uint64()
	seeds := make([]uint64, len(corrupts)*len(correlates))
	for i := range seeds {
		seeds[i] = rng.Uint64()
	}

	goldenCfg := chaosConfig(ranks, goldenSeed)
	goldenCfg.Rates = failure.MustParseRates("0-0-0-0", float64(ranks))
	goldenCfg.Inject = inject.MustCompile(inject.Spec{}, chaosRootSeed, "chaos/golden")
	runBothEngines(t, "golden", goldenCfg)

	ci := 0
	for _, corrupt := range corrupts {
		for _, correlate := range correlates {
			key := fmt.Sprintf("chaos/c%g-r%g", corrupt, correlate)
			cfg := chaosConfig(ranks, seeds[ci])
			cfg.Inject = inject.MustCompile(chaosSpec(corrupt, correlate), chaosRootSeed, key)
			ci++
			runBothEngines(t, key, cfg)
		}
	}
}

// TestInjectSweepEngineIndependence drives 50 randomly drawn fault plans
// through the real-run driver on both engines. A shorter heat run than the
// chaos grid keeps the sweep in CI budget while still crossing checkpoint,
// recovery, and PFS-retry windows.
func TestInjectSweepEngineIndependence(t *testing.T) {
	if testing.Short() {
		t.Skip("plan sweep on both engines is seconds-long")
	}
	base := chaosConfig(16, 7)
	base.Heat.Iterations = 150
	base.MaxWall = 150

	rng := stats.NewRNG(0xE9519E)
	const plans = 50
	for i := 0; i < plans; i++ {
		c := rng.Float64() * rng.Float64()
		spec := inject.Spec{
			CorruptRate:       []float64{c, c, c, c},
			TruncateFrac:      0.5 * rng.Float64(),
			PartnerPairRate:   rng.Float64() * rng.Float64(),
			ParityHolderRate:  rng.Float64() * rng.Float64(),
			CkptAbortRate:     0.2 * rng.Float64(),
			RecoveryCrashRate: 0.3 * rng.Float64(),
			PFSWriteFailRate:  0.4 * rng.Float64(),
			PFSReadFailRate:   0.4 * rng.Float64(),
		}
		cfg := base
		cfg.Seed = rng.Uint64()
		cfg.Inject = inject.MustCompile(spec, rng.Uint64(), "chaos/engines")
		runBothEngines(t, fmt.Sprintf("plan %d", i), cfg)
	}
}
