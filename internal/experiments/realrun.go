package experiments

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"

	"mlckpt/internal/failure"
	"mlckpt/internal/fti"
	"mlckpt/internal/heat"
	"mlckpt/internal/inject"
	"mlckpt/internal/mpisim"
	"mlckpt/internal/obs"
	"mlckpt/internal/stats"
	"mlckpt/internal/storage"
)

// ErrReal is returned by the real-execution driver.
var ErrReal = errors.New("experiments: real run failed")

// RealConfig drives one "real" execution: the Heat Distribution program on
// the mpisim cluster, checkpointed with the FTI toolkit at all four levels
// and struck by injected failures. It is the stand-in for the paper's
// Fusion-cluster experiments that validate the exascale simulator
// (Figure 4).
type RealConfig struct {
	Ranks     int
	Heat      heat.Config
	FTI       fti.Config
	Intervals [fti.Levels]int // x_i: interval counts per level over the run
	Rates     failure.Rates   // per-level failures/day (baseline = Ranks)
	Alloc     float64         // allocation period A, seconds
	Cost      mpisim.CostModel
	MaxWall   float64 // truncation horizon, seconds
	Seed      uint64
	// Engine selects the mpisim execution engine. The zero value is the
	// event scheduler; GoroutineEngine recovers the legacy runtime, kept
	// for differential testing (TestChaosEngineIndependence asserts the
	// choice is unobservable in results).
	Engine mpisim.Engine
	// UseBlocks switches the application to the paper's 2-D block
	// decomposition (heat.BlockSolver) instead of the 1-D row layout.
	UseBlocks bool

	// Inject, when non-nil, arms the deterministic chaos harness: committed
	// snapshots corrupt at rest (caught by fti's verify-on-restore, which
	// escalates through the hierarchy), failures land inside checkpoint and
	// recovery windows, and transient PFS errors are retried with Retry's
	// deterministic backoff on the virtual clock. Every decision is a pure
	// function of the compiled plan, so a chaos run is byte-reproducible at
	// any worker count. Nil disables all of it — a nil-Inject run is
	// byte-identical to the pre-harness driver.
	Inject *inject.Plan
	// Retry bounds transient-PFS retries; the zero value means
	// storage.DefaultRetryPolicy. Only consulted when Inject is non-nil.
	Retry storage.RetryPolicy
	// DisableScratch turns an exhausted recovery escalation into a loud
	// error (wrapping fti.ErrExhausted, naming the last rung tried) instead
	// of a silent from-scratch restart — the chaos-grid invariant.
	DisableScratch bool

	// Obs receives chaos counters (injected faults, escalations, PFS
	// retries, detection latency). All values are deterministic functions
	// of (config, plan); nil disables instrumentation.
	Obs obs.Recorder `json:"-"`
	// ObsTrack, when set alongside Obs, names the trace track receiving
	// the run's waste-attribution spans: one "segment" span per execution
	// attempt (with measured redo / per-level checkpoint / auxiliary
	// sub-splits as args), plus alloc/recovery spans and failure/complete
	// instants — the real-run counterpart of sim.Config.ObsTrack, consumed
	// by internal/obs/attrib. All timestamps are the run's virtual clock,
	// and every value is rank-0's deterministic measurement, so the track
	// is byte-identical across worker counts and engines. Empty suppresses
	// spans while keeping counters.
	ObsTrack string `json:"-"`
}

// segmentApp abstracts the two heat decompositions for the driver.
type segmentApp interface {
	Iteration() int
	Serialize() []byte
	SerializeInto([]byte) []byte
	Restore([]byte) error
}

func newApp(r *mpisim.Rank, cfg RealConfig) (segmentApp, func(hook func() bool) heat.RunResult, error) {
	if cfg.UseBlocks {
		s, err := heat.NewBlockSolver(r, cfg.Heat)
		if err != nil {
			return nil, nil, err
		}
		return s, func(hook func() bool) heat.RunResult {
			return s.Run(func(*heat.BlockSolver) bool { return hook() })
		}, nil
	}
	s, err := heat.NewSolver(r, cfg.Heat)
	if err != nil {
		return nil, nil, err
	}
	return s, func(hook func() bool) heat.RunResult {
		return s.Run(func(*heat.Solver) bool { return hook() })
	}, nil
}

// RealResult is the outcome of one real execution.
type RealResult struct {
	WallClock    float64
	Failures     []int               // per class
	Recoveries   []int               // recoveries per level that finally held
	FromScratch  int                 // restarts with no usable checkpoint
	CkptDuration [fti.Levels]float64 // last observed per-level checkpoint cost
	Completed    bool

	// Chaos telemetry, populated only when RealConfig.Inject is non-nil.
	StateDigest       uint64  // FNV-1a of the final per-rank states
	InjectedFaults    int     // snapshot corruptions applied at rest
	Escalations       int     // recoveries that fell past at least one rung
	DetectionLatency  float64 // seconds spent reading rungs that failed verification
	PFSRetries        int     // extra PFS attempts caused by transient faults
	CkptAborts        int     // checkpoints aborted by a failure inside the write window
	RecoveryCrashes   int     // failures injected inside recovery windows
	CorrelatedCrashes int     // single-node failures upgraded to correlated crash sets
}

// victims returns the crash pattern of a failure class (0-based level):
// class 0 is transient (no storage damage); class 1 kills one node; class
// 2 kills two partner-adjacent nodes (breaking level 2); class 3 kills
// parity+1 nodes of one group (breaking level 3).
func victims(class int, cfg RealConfig, rng *stats.RNG) []int {
	switch class {
	case 0:
		return nil
	case 1:
		// Avoid adjacency concerns: a single node always leaves level 2
		// recoverable.
		return []int{rng.Intn(cfg.Ranks)}
	case 2:
		n := rng.Intn(cfg.Ranks - 1)
		return []int{n, n + 1}
	default:
		// Enough losses inside one group to exceed its parity.
		g := rng.Intn(cfg.Ranks / cfg.FTI.GroupSize)
		base := g * cfg.FTI.GroupSize
		count := cfg.FTI.Parity + 1
		if count > cfg.FTI.GroupSize {
			count = cfg.FTI.GroupSize
		}
		out := make([]int, count)
		for i := range out {
			out[i] = base + i
		}
		return out
	}
}

// maxRecoveryCrashes caps injected failures per recovery episode so a
// rate-1 plan cannot loop forever; the cap is part of the deterministic
// semantics (crash decisions are indexed by attempt number).
const maxRecoveryCrashes = 4

// RunReal executes the application to completion under injected failures
// and multilevel recovery, returning the accumulated virtual wall clock.
func RunReal(cfg RealConfig) (RealResult, error) {
	if cfg.Ranks <= 0 || cfg.Ranks%cfg.FTI.GroupSize != 0 {
		return RealResult{}, fmt.Errorf("%w: ranks %d must be a positive multiple of the group size %d",
			ErrReal, cfg.Ranks, cfg.FTI.GroupSize)
	}
	if cfg.MaxWall <= 0 {
		cfg.MaxWall = 30 * failure.SecondsPerDay
	}
	res := RealResult{
		Failures:   make([]int, cfg.Rates.Levels()),
		Recoveries: make([]int, fti.Levels),
	}
	cluster, err := fti.NewCluster(cfg.Ranks, cfg.FTI)
	if err != nil {
		return res, err
	}
	plan := cfg.Inject
	retry := cfg.Retry
	if retry == (storage.RetryPolicy{}) {
		retry = storage.DefaultRetryPolicy()
	}
	if plan != nil {
		if err := retry.Validate(); err != nil {
			return res, err
		}
		cluster.SetInjector(plan)
	}
	rec := obs.OrNop(cfg.Obs)
	finish := func() {
		if plan == nil {
			return
		}
		res.InjectedFaults = cluster.InjectedFaults()
		counts := []struct {
			name string
			v    int
		}{
			{"real.injected_faults", res.InjectedFaults},
			{"real.escalations", res.Escalations},
			{"real.pfs_retries", res.PFSRetries},
			{"real.ckpt_aborts", res.CkptAborts},
			{"real.recovery_crashes", res.RecoveryCrashes},
			{"real.correlated_crashes", res.CorrelatedCrashes},
		}
		for _, c := range counts {
			if c.v > 0 {
				rec.Count(c.name, int64(c.v))
			}
		}
		if res.DetectionLatency > 0 {
			rec.Observe("real.detection_latency_s", res.DetectionLatency)
		}
	}
	rng := stats.NewRNG(cfg.Seed)
	proc := failure.NewProcess(cfg.Rates, float64(cfg.Ranks), failure.Exponential, 0, rng.Split())

	// Per-level checkpoint iteration steps; level i checkpoints at
	// iterations k·step_i (k ≥ 1), the highest due level winning ties.
	var steps [fti.Levels]int
	for i, x := range cfg.Intervals {
		if x < 1 {
			x = 1
		}
		steps[i] = int(math.Ceil(float64(cfg.Heat.Iterations) / float64(x)))
	}
	dueLevel := func(iter int) int {
		if iter <= 0 || iter >= cfg.Heat.Iterations {
			return 0
		}
		for lvl := fti.Levels; lvl >= 1; lvl-- {
			if cfg.Intervals[lvl-1] > 1 && iter%steps[lvl-1] == 0 {
				return lvl
			}
		}
		return 0
	}
	perNode := 8 * cfg.Heat.GridX * cfg.Heat.GridY / cfg.Ranks

	wall := 0.0
	episode := 0       // failure ordinal, keys recovery-window injections
	ckptSeqBase := 0   // checkpoint attempts in completed segments
	furthestIter := 0  // furthest completed iteration across segments
	var snaps [][]byte // recovered per-rank states; nil = fresh start
	nextFail, haveFail := proc.Next(0)

	tracing := cfg.Obs != nil && cfg.ObsTrack != ""
	span := func(name string, start, dur float64, args map[string]float64) {
		if tracing {
			rec.Span(cfg.ObsTrack, name, start, dur, args)
		}
	}
	instant := func(name string, ts float64, args map[string]float64) {
		if tracing {
			rec.Instant(cfg.ObsTrack, name, ts, args)
		}
	}

	for {
		if wall > cfg.MaxWall {
			res.WallClock = wall
			instant("complete", wall, map[string]float64{"truncated": 1})
			finish()
			return res, nil
		}
		type segOut struct {
			completed    bool
			failClass    int
			ckptAborted  bool
			pfsRetries   int
			ckptAttempts int
			wallLocal    float64
			digest       uint64
			loudErr      error // typed policy failure; ends the run loudly

			// Rank-0 measurements for the segment's attribution span: the
			// clock spent re-executing iterations already completed in an
			// earlier segment, first-time per-level checkpoint seconds, and
			// auxiliary overheads (aborted-write fractions, PFS retry
			// backoff) — all deterministic functions of (config, plan).
			endIter int
			redone  float64
			aux     float64
			segCkpt [fti.Levels]float64
		}
		out := segOut{failClass: -1}
		prevFurthest := furthestIter
		_, err := mpisim.RunOn(cfg.Engine, cfg.Ranks, cfg.Cost, func(r *mpisim.Rank) {
			s, runSeg, err := newApp(r, cfg)
			if err != nil {
				panic(err)
			}
			if snaps != nil {
				if err := s.Restore(snaps[r.ID()]); err != nil {
					panic(err)
				}
			}
			agent := cluster.Attach(r)
			stopped := false
			// Everything executed before the furthest previously completed
			// iteration is re-execution (the sim's Rollback portion); the
			// clocks are rank-synchronized, so the crossing is observed at
			// the same instant everywhere.
			crossed := s.Iteration() >= prevFurthest
			// Checkpoint-attempt ordinal, counted identically on every rank
			// and carried across segments via ckptSeqBase. Injection keys on
			// the ordinal, not the iteration: after a rollback the run
			// re-crosses the same iterations, and an iteration-keyed abort
			// would deterministically re-fire forever.
			seq := 0
			// One snapshot buffer per rank, circulating between the app and
			// the cluster: CheckpointOwned takes the filled buffer and hands
			// back a recycled one for the next round — no payload copy.
			var snapBuf []byte
			result := runSeg(func() bool {
				if !crossed && s.Iteration() >= prevFurthest {
					crossed = true
					if r.ID() == 0 {
						out.redone = r.Clock()
					}
				}
				// Clocks are synchronized by the per-iteration Allreduce,
				// so every rank sees the same wall time and failure
				// decision.
				if haveFail && wall+r.Clock() >= nextFail.Time {
					stopped = true
					if r.ID() == 0 {
						out.failClass = nextFail.Level
						out.wallLocal = r.Clock()
					}
					return false
				}
				if lvl := dueLevel(s.Iteration()); lvl > 0 {
					data := s.SerializeInto(snapBuf)
					ord := ckptSeqBase + seq
					seq++
					if r.ID() == 0 {
						out.ckptAttempts = seq
					}
					if plan != nil {
						if frac, abort := plan.CkptAbort(lvl, ord); abort {
							// Injected failure inside the write window: the
							// partial checkpoint is discarded, its elapsed
							// fraction wasted, and a transient (class-0)
							// failure strikes — no storage damage, but the
							// run must restore, exercising verification of
							// whatever corruption is already at rest.
							dur, cerr := cluster.CheckpointCost(lvl, len(data))
							if cerr != nil {
								panic(cerr)
							}
							r.Compute(frac * dur)
							stopped = true
							if r.ID() == 0 {
								out.failClass = 0
								out.ckptAborted = true
								out.wallLocal = r.Clock()
								if crossed {
									out.aux += frac * dur
								}
							}
							return false
						}
					}
					recycled, d, err := agent.CheckpointOwned(lvl, data)
					if err != nil {
						panic(err)
					}
					snapBuf = recycled
					if plan != nil && lvl == fti.Levels {
						// Transient PFS write faults: the data is intact
						// (the commit above is the eventual success); only
						// the virtual-time cost of the wasted attempts and
						// backoff is charged. Exhausting the budget means
						// the checkpoint never landed — fail loudly.
						elapsed, attempts, ok := retry.Retry(d, func(attempt int) bool {
							return plan.PFSWriteFails(ord, attempt)
						})
						if !ok {
							// Every rank stops here (the plan decision is
							// rank-uniform); the typed error must cross the
							// segment boundary intact, so it travels via out
							// rather than a panic mpisim would re-wrap.
							stopped = true
							if r.ID() == 0 {
								out.loudErr = fmt.Errorf("%w: level-4 checkpoint at iteration %d failed after %d attempts (transient PFS writes)",
									ErrReal, s.Iteration(), attempts)
								out.wallLocal = r.Clock()
							}
							return false
						}
						r.Compute(elapsed - d)
						if r.ID() == 0 {
							out.pfsRetries += attempts - 1
							if crossed {
								out.aux += elapsed - d
							}
						}
						// The retry cost scales with this rank's snapshot
						// size; on uneven decompositions that would drift
						// rank clocks apart and desynchronize the shared
						// failure decision above. Every rank takes this
						// branch (the plan is keyed on iteration, not rank),
						// so a barrier is safe.
						r.Barrier()
					}
					if r.ID() == 0 {
						res.CkptDuration[lvl-1] = d
						if crossed {
							out.segCkpt[lvl-1] += d
						}
					}
				}
				return true
			})
			if plan != nil && !stopped {
				// Digest the final application state (for the chaos-grid
				// invariant: a faulty run must finish byte-identical to the
				// fault-free golden run). The gather happens after the
				// run's wall clock is read, so it never perturbs timing.
				all := r.Gather(s.Serialize())
				if r.ID() == 0 {
					h := fnv.New64a()
					var lenBuf [8]byte
					for _, b := range all {
						binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(b)))
						h.Write(lenBuf[:])
						h.Write(b)
					}
					out.digest = h.Sum64()
				}
			}
			if r.ID() == 0 && out.failClass < 0 {
				out.completed = true
				out.wallLocal = result.WallClock
			}
			if r.ID() == 0 {
				out.endIter = s.Iteration()
				if !crossed {
					// The segment ended before reaching old ground: every
					// second of it was re-execution.
					out.redone = out.wallLocal
				}
			}
		})
		if err != nil {
			return res, err
		}
		if tracing && out.wallLocal > 0 {
			args := map[string]float64{"iters": float64(out.endIter)}
			if out.redone > 0 {
				args["redo"] = out.redone
			}
			for i, d := range out.segCkpt {
				if d > 0 {
					args[fmt.Sprintf("ckpt_l%d", i+1)] = d
				}
			}
			if out.aux > 0 {
				args["aux"] = out.aux
			}
			span("segment", wall, out.wallLocal, args)
		}
		wall += out.wallLocal
		if out.endIter > furthestIter {
			furthestIter = out.endIter
		}
		res.PFSRetries += out.pfsRetries
		ckptSeqBase += out.ckptAttempts
		if out.loudErr != nil {
			res.WallClock = wall
			finish()
			return res, out.loudErr
		}
		if out.completed {
			res.WallClock = wall
			res.Completed = true
			res.StateDigest = out.digest
			instant("complete", wall, map[string]float64{"iters": float64(out.endIter)})
			finish()
			return res, nil
		}

		// Failure handling: storage damage, recovery, resume.
		res.Failures[out.failClass]++
		instant("failure", wall, map[string]float64{"class": float64(out.failClass + 1)})
		if out.ckptAborted {
			res.CkptAborts++
		}
		vict := victims(out.failClass, cfg, rng)
		if plan != nil && out.failClass == 1 && len(vict) == 1 {
			// Correlated crash patterns: a single-node loss may take its
			// partner (breaking the level-2 copy) and/or the node holding
			// its group's first parity shard (eroding level 3) down with
			// it — the paper's footnote-1 correlated events, aimed at the
			// exact nodes whose redundancy protects the victim.
			n := vict[0]
			upgraded := false
			if plan.PairCrash(episode) {
				vict = append(vict, cluster.PartnerOf(n))
				upgraded = true
			}
			if plan.ParityCrash(episode) {
				if p := cluster.ParityHolderOf(n, 0); p != n && p != vict[len(vict)-1] {
					vict = append(vict, p)
				}
				upgraded = true
			}
			if upgraded {
				res.CorrelatedCrashes++
			}
		}
		if err := cluster.Crash(vict); err != nil {
			return res, err
		}
		span("alloc", wall, cfg.Alloc, nil)
		wall += cfg.Alloc
		if plan == nil {
			lvl, _, ok := cluster.BestRecovery()
			if ok {
				rc, err := cluster.RecoveryCost(lvl, perNode)
				if err != nil {
					return res, err
				}
				span("recovery", wall, rc, map[string]float64{"level": float64(lvl), "ok": 1})
				wall += rc
				snaps, err = cluster.Restore(lvl)
				if err != nil {
					return res, err
				}
				res.Recoveries[lvl-1]++
			} else {
				snaps = nil
				res.FromScratch++
			}
		} else {
			// Escalating recovery under injection: walk the hierarchy until
			// a rung verifies, charging every failed rung's read as
			// detection latency, with further failures landing inside the
			// recovery window itself.
			for recAttempt := 0; ; recAttempt++ {
				data, outcome, rerr := cluster.RestoreEscalating()
				for _, at := range outcome.Attempts {
					rc, cerr := cluster.RecoveryCost(at.Level, perNode)
					if cerr != nil {
						return res, cerr
					}
					if at.Level == fti.Levels {
						// Transient PFS read faults on the level-4 rung.
						elapsed, attempts, ok := retry.Retry(rc, func(attempt int) bool {
							return plan.PFSReadFails(episode*(maxRecoveryCrashes+1)+recAttempt, attempt)
						})
						if !ok {
							finish()
							return res, fmt.Errorf("%w: level-4 recovery read failed after %d attempts (transient PFS reads)",
								ErrReal, attempts)
						}
						res.PFSRetries += attempts - 1
						rc = elapsed
					}
					okArg := 0.0
					if at.OK {
						okArg = 1
					}
					span("recovery", wall, rc, map[string]float64{"level": float64(at.Level), "ok": okArg})
					wall += rc
					if !at.OK {
						res.DetectionLatency += rc
					}
				}
				if class, ok := plan.RecoveryCrash(episode, recAttempt); ok && recAttempt < maxRecoveryCrashes {
					// A further failure strikes before the restored state
					// is handed back: the read bytes are discarded, more
					// storage dies, and recovery restarts after a new
					// allocation period.
					res.RecoveryCrashes++
					res.Failures[class]++
					instant("failure", wall, map[string]float64{"class": float64(class + 1)})
					if err := cluster.Crash(victims(class, cfg, rng)); err != nil {
						return res, err
					}
					span("alloc", wall, cfg.Alloc, nil)
					wall += cfg.Alloc
					continue
				}
				if rerr != nil {
					// A from-scratch restart is always legitimate before the
					// first checkpoint ever committed — there is nothing the
					// hierarchy could have protected yet, so exhaustion there
					// says nothing about recovery integrity.
					if errors.Is(rerr, fti.ErrExhausted) && (!cfg.DisableScratch || !cluster.Committed()) {
						snaps = nil
						res.FromScratch++
						break
					}
					finish()
					return res, rerr
				}
				snaps = data
				res.Recoveries[outcome.Level-1]++
				if outcome.Escalated() {
					res.Escalations++
				}
				break
			}
		}
		episode++
		nextFail, haveFail = proc.Next(wall)
	}
}
