package experiments

import (
	"errors"
	"fmt"
	"math"

	"mlckpt/internal/failure"
	"mlckpt/internal/fti"
	"mlckpt/internal/heat"
	"mlckpt/internal/mpisim"
	"mlckpt/internal/stats"
)

// ErrReal is returned by the real-execution driver.
var ErrReal = errors.New("experiments: real run failed")

// RealConfig drives one "real" execution: the Heat Distribution program on
// the mpisim cluster, checkpointed with the FTI toolkit at all four levels
// and struck by injected failures. It is the stand-in for the paper's
// Fusion-cluster experiments that validate the exascale simulator
// (Figure 4).
type RealConfig struct {
	Ranks     int
	Heat      heat.Config
	FTI       fti.Config
	Intervals [fti.Levels]int // x_i: interval counts per level over the run
	Rates     failure.Rates   // per-level failures/day (baseline = Ranks)
	Alloc     float64         // allocation period A, seconds
	Cost      mpisim.CostModel
	MaxWall   float64 // truncation horizon, seconds
	Seed      uint64
	// UseBlocks switches the application to the paper's 2-D block
	// decomposition (heat.BlockSolver) instead of the 1-D row layout.
	UseBlocks bool
}

// segmentApp abstracts the two heat decompositions for the driver.
type segmentApp interface {
	Iteration() int
	Serialize() []byte
	Restore([]byte) error
}

func newApp(r *mpisim.Rank, cfg RealConfig) (segmentApp, func(hook func() bool) heat.RunResult, error) {
	if cfg.UseBlocks {
		s, err := heat.NewBlockSolver(r, cfg.Heat)
		if err != nil {
			return nil, nil, err
		}
		return s, func(hook func() bool) heat.RunResult {
			return s.Run(func(*heat.BlockSolver) bool { return hook() })
		}, nil
	}
	s, err := heat.NewSolver(r, cfg.Heat)
	if err != nil {
		return nil, nil, err
	}
	return s, func(hook func() bool) heat.RunResult {
		return s.Run(func(*heat.Solver) bool { return hook() })
	}, nil
}

// RealResult is the outcome of one real execution.
type RealResult struct {
	WallClock    float64
	Failures     []int               // per class
	Recoveries   []int               // recoveries per level used
	FromScratch  int                 // restarts with no usable checkpoint
	CkptDuration [fti.Levels]float64 // last observed per-level checkpoint cost
	Completed    bool
}

// victims returns the crash pattern of a failure class (0-based level):
// class 0 is transient (no storage damage); class 1 kills one node; class
// 2 kills two partner-adjacent nodes (breaking level 2); class 3 kills
// parity+1 nodes of one group (breaking level 3).
func victims(class int, cfg RealConfig, rng *stats.RNG) []int {
	switch class {
	case 0:
		return nil
	case 1:
		// Avoid adjacency concerns: a single node always leaves level 2
		// recoverable.
		return []int{rng.Intn(cfg.Ranks)}
	case 2:
		n := rng.Intn(cfg.Ranks - 1)
		return []int{n, n + 1}
	default:
		// Enough losses inside one group to exceed its parity.
		g := rng.Intn(cfg.Ranks / cfg.FTI.GroupSize)
		base := g * cfg.FTI.GroupSize
		count := cfg.FTI.Parity + 1
		if count > cfg.FTI.GroupSize {
			count = cfg.FTI.GroupSize
		}
		out := make([]int, count)
		for i := range out {
			out[i] = base + i
		}
		return out
	}
}

// RunReal executes the application to completion under injected failures
// and multilevel recovery, returning the accumulated virtual wall clock.
func RunReal(cfg RealConfig) (RealResult, error) {
	if cfg.Ranks <= 0 || cfg.Ranks%cfg.FTI.GroupSize != 0 {
		return RealResult{}, fmt.Errorf("%w: ranks %d must be a positive multiple of the group size %d",
			ErrReal, cfg.Ranks, cfg.FTI.GroupSize)
	}
	if cfg.MaxWall <= 0 {
		cfg.MaxWall = 30 * failure.SecondsPerDay
	}
	res := RealResult{
		Failures:   make([]int, cfg.Rates.Levels()),
		Recoveries: make([]int, fti.Levels),
	}
	cluster, err := fti.NewCluster(cfg.Ranks, cfg.FTI)
	if err != nil {
		return res, err
	}
	rng := stats.NewRNG(cfg.Seed)
	proc := failure.NewProcess(cfg.Rates, float64(cfg.Ranks), failure.Exponential, 0, rng.Split())

	// Per-level checkpoint iteration steps; level i checkpoints at
	// iterations k·step_i (k ≥ 1), the highest due level winning ties.
	var steps [fti.Levels]int
	for i, x := range cfg.Intervals {
		if x < 1 {
			x = 1
		}
		steps[i] = int(math.Ceil(float64(cfg.Heat.Iterations) / float64(x)))
	}
	dueLevel := func(iter int) int {
		if iter <= 0 || iter >= cfg.Heat.Iterations {
			return 0
		}
		for lvl := fti.Levels; lvl >= 1; lvl-- {
			if cfg.Intervals[lvl-1] > 1 && iter%steps[lvl-1] == 0 {
				return lvl
			}
		}
		return 0
	}

	wall := 0.0
	var snaps [][]byte // recovered per-rank states; nil = fresh start
	nextFail, haveFail := proc.Next(0)

	for {
		if wall > cfg.MaxWall {
			res.WallClock = wall
			return res, nil
		}
		type segOut struct {
			completed bool
			failClass int
			wallLocal float64
		}
		out := segOut{failClass: -1}
		_, err := mpisim.Run(cfg.Ranks, cfg.Cost, func(r *mpisim.Rank) {
			s, runSeg, err := newApp(r, cfg)
			if err != nil {
				panic(err)
			}
			if snaps != nil {
				if err := s.Restore(snaps[r.ID()]); err != nil {
					panic(err)
				}
			}
			agent := cluster.Attach(r)
			result := runSeg(func() bool {
				// Clocks are synchronized by the per-iteration Allreduce,
				// so every rank sees the same wall time and failure
				// decision.
				if haveFail && wall+r.Clock() >= nextFail.Time {
					if r.ID() == 0 {
						out.failClass = nextFail.Level
						out.wallLocal = r.Clock()
					}
					return false
				}
				if lvl := dueLevel(s.Iteration()); lvl > 0 {
					d, err := agent.Checkpoint(lvl, s.Serialize())
					if err != nil {
						panic(err)
					}
					if r.ID() == 0 {
						res.CkptDuration[lvl-1] = d
					}
				}
				return true
			})
			if r.ID() == 0 && out.failClass < 0 {
				out.completed = true
				out.wallLocal = result.WallClock
			}
		})
		if err != nil {
			return res, err
		}
		wall += out.wallLocal
		if out.completed {
			res.WallClock = wall
			res.Completed = true
			return res, nil
		}

		// Failure handling: storage damage, recovery, resume.
		res.Failures[out.failClass]++
		if err := cluster.Crash(victims(out.failClass, cfg, rng)); err != nil {
			return res, err
		}
		wall += cfg.Alloc
		lvl, _, ok := cluster.BestRecovery()
		if ok {
			perNode := 8 * cfg.Heat.GridX * cfg.Heat.GridY / cfg.Ranks
			rc, err := cluster.RecoveryCost(lvl, perNode)
			if err != nil {
				return res, err
			}
			wall += rc
			snaps, err = cluster.Restore(lvl)
			if err != nil {
				return res, err
			}
			res.Recoveries[lvl-1]++
		} else {
			snaps = nil
			res.FromScratch++
		}
		nextFail, haveFail = proc.Next(wall)
	}
}
