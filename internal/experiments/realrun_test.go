package experiments

import (
	"errors"
	"testing"

	"mlckpt/internal/failure"
	"mlckpt/internal/fti"
	"mlckpt/internal/heat"
	"mlckpt/internal/mpisim"
	"mlckpt/internal/storage"
)

func realCfg(_ bool, seed uint64) RealConfig {
	return RealConfig{
		Ranks:     16,
		Heat:      heat.Config{GridX: 64, GridY: 64, Iterations: 120, CellTime: 2e-4, TopTemp: 100},
		FTI:       fti.Config{GroupSize: 8, Parity: 2, Hierarchy: testHierarchy()},
		Intervals: [fti.Levels]int{24, 12, 6, 3},
		Rates:     failure.MustParseRates("200-100-50-25", 16),
		Alloc:     2,
		Cost:      mpisim.DefaultCostModel(),
		Seed:      seed,
	}
}

func testHierarchy() storage.Hierarchy { return storage.DefaultHierarchy() }

func TestRunRealCompletesWithFailures(t *testing.T) {
	for _, blocks := range []bool{false, true} {
		cfg := realCfg(blocks, 5)
		cfg.UseBlocks = blocks
		res, err := RunReal(cfg)
		if err != nil {
			t.Fatalf("blocks=%v: %v", blocks, err)
		}
		if !res.Completed {
			t.Fatalf("blocks=%v: run did not complete", blocks)
		}
		total := 0
		for _, c := range res.Failures {
			total += c
		}
		recov := res.FromScratch
		for _, c := range res.Recoveries {
			recov += c
		}
		if total > 0 && recov == 0 {
			t.Errorf("blocks=%v: %d failures but no recoveries", blocks, total)
		}
		if res.WallClock <= 0 {
			t.Errorf("blocks=%v: wall clock %g", blocks, res.WallClock)
		}
	}
}

func TestRunRealDeterministic(t *testing.T) {
	a, err := RunReal(realCfg(false, 9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunReal(realCfg(false, 9))
	if err != nil {
		t.Fatal(err)
	}
	if a.WallClock != b.WallClock {
		t.Errorf("same seed, different wall clocks: %g vs %g", a.WallClock, b.WallClock)
	}
}

func TestRunRealRejectsBadShape(t *testing.T) {
	cfg := realCfg(false, 1)
	cfg.Ranks = 10 // not a multiple of the group size 8
	if _, err := RunReal(cfg); !errors.Is(err, ErrReal) {
		t.Errorf("err = %v", err)
	}
}

func TestRunRealFailureFree(t *testing.T) {
	cfg := realCfg(false, 1)
	cfg.Rates = failure.MustParseRates("0-0-0-0", 16)
	res, err := RunReal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.FromScratch != 0 {
		t.Errorf("failure-free run: %+v", res)
	}
	for _, c := range res.Failures {
		if c != 0 {
			t.Errorf("phantom failures: %v", res.Failures)
		}
	}
	// Checkpoint durations observed for every level that has intervals > 1.
	for lvl, d := range res.CkptDuration {
		if cfg.Intervals[lvl] > 1 && d <= 0 {
			t.Errorf("level %d checkpoint never observed", lvl+1)
		}
	}
}
