package experiments

import (
	"mlckpt/internal/core"
)

// ConvRow reports Algorithm 1's convergence on one scenario.
type ConvRow struct {
	Spec            string
	OuterIterations int
	InnerIterations int
	Converged       bool
	FinalDeltaHist  []float64 // μ-delta per outer step
}

// ConvResult is the convergence study of Section IV-B: at δ = 1e-12 the
// paper reports 8, 7, and 15 iterations for the three Table IV cases.
type ConvResult struct {
	Rows []ConvRow
}

// Convergence runs Algorithm 1 at the paper's δ=1e-12 on the Table IV
// scenarios and records the iteration counts.
func Convergence(specs []string) (ConvResult, error) {
	return ConvergenceGrid(specs, Grid{})
}

// ConvergenceGrid is Convergence with the grid's telemetry sink: each
// scenario's optimizer run traces its outer iterations on track
// "opt/conv/<spec>". The study itself stays serial — three solves do not
// need a pool — so only Obs from g is consulted.
func ConvergenceGrid(specs []string, g Grid) (ConvResult, error) {
	if len(specs) == 0 {
		specs = Tab4Cases
	}
	res := ConvResult{}
	for _, spec := range specs {
		sc := Tab4Scenario(spec, 1.0)
		sol, err := core.Optimize(sc.Params(), core.Options{
			OuterTol: 1e-12,
			Obs:      g.Obs,
			ObsLabel: "opt/conv/" + spec,
		})
		if err != nil {
			return res, err
		}
		row := ConvRow{
			Spec:            spec,
			OuterIterations: sol.OuterIterations,
			InnerIterations: sol.InnerIterations,
			Converged:       sol.Converged,
		}
		for _, st := range sol.History {
			row.FinalDeltaHist = append(row.FinalDeltaHist, st.MuDelta)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the iteration counts.
func (r ConvResult) Render() string {
	t := NewTable("Algorithm 1 convergence (δ = 1e-12; paper: 8/7/15 iterations)",
		"case", "outer iters", "total inner iters", "converged")
	for _, row := range r.Rows {
		t.Add(row.Spec, row.OuterIterations, row.InnerIterations, row.Converged)
	}
	return t.String()
}
