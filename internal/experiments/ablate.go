package experiments

import (
	"fmt"

	"mlckpt/internal/core"
	"mlckpt/internal/failure"
	"mlckpt/internal/sim"
)

// ablationSeed pins every simulator run of the ablation studies so the
// rendered table is reproducible run to run.
const ablationSeed uint64 = 77

// AblateResult collects the design-choice studies of DESIGN.md §5 that are
// not covered by a paper table/figure: outer-loop acceleration, the
// analytic-vs-numeric scale gradient, level selection, the correlated
// failure window, and jitter sensitivity.
type AblateResult struct {
	Spec string

	// Algorithm 1 variants (outer iterations to δ=1e-12).
	PlainIters       int
	AcceleratedIters int
	NumericGradIters int
	WallClockDrift   float64 // max relative disagreement across variants

	// Level selection.
	SelectionEnabled []bool
	SelectionGain    float64 // relative E(T_w) gain over all-levels (≥ 0)

	// Simulator knobs (mean wall clock in days).
	SimBase       float64
	SimNoJitter   float64
	SimCorrelated float64 // 120 s correlation window
	AbsorbedMean  float64 // absorbed failures per run under the window
}

// Ablate runs the studies on one evaluation scenario.
func Ablate(spec string, runs int) (AblateResult, error) {
	if runs <= 0 {
		runs = 40
	}
	res := AblateResult{Spec: spec}
	sc := EvalScenario(3e6, spec)
	p := sc.Params()

	plain, err := core.Optimize(p, core.Options{OuterTol: 1e-12})
	if err != nil {
		return res, err
	}
	acc, err := core.Optimize(p, core.Options{OuterTol: 1e-12, Accelerate: true})
	if err != nil {
		return res, err
	}
	num, err := core.Optimize(p, core.Options{OuterTol: 1e-12, NumericGradN: true})
	if err != nil {
		return res, err
	}
	res.PlainIters = plain.OuterIterations
	res.AcceleratedIters = acc.OuterIterations
	res.NumericGradIters = num.OuterIterations
	for _, w := range []float64{acc.WallClock, num.WallClock} {
		if d := abs(w-plain.WallClock) / plain.WallClock; d > res.WallClockDrift {
			res.WallClockDrift = d
		}
	}

	sel, err := core.SelectLevels(p, core.Options{})
	if err != nil {
		return res, err
	}
	res.SelectionEnabled = sel.Enabled
	full, err := core.Optimize(p, core.Options{})
	if err != nil {
		return res, err
	}
	res.SelectionGain = 1 - sel.Solution.WallClock/full.WallClock

	base := sim.Config{
		Params: p, N: plain.N, X: plain.X,
		JitterRatio:  0.3,
		MaxWallClock: sc.MaxDays * failure.SecondsPerDay,
	}
	agg, err := sim.Simulate(base, runs, ablationSeed)
	if err != nil {
		return res, err
	}
	res.SimBase = agg.WallClock.Mean / failure.SecondsPerDay

	noJit := base
	noJit.JitterRatio = 0
	agg, err = sim.Simulate(noJit, runs, ablationSeed)
	if err != nil {
		return res, err
	}
	res.SimNoJitter = agg.WallClock.Mean / failure.SecondsPerDay

	corr := base
	corr.CorrelationWindow = 120
	agg, err = sim.Simulate(corr, runs, ablationSeed)
	if err != nil {
		return res, err
	}
	res.SimCorrelated = agg.WallClock.Mean / failure.SecondsPerDay
	// Absorbed failures need the per-run results.
	results, err := sim.RunMany(corr, runs, ablationSeed)
	if err != nil {
		return res, err
	}
	total := 0
	for _, r := range results {
		total += r.Absorbed
	}
	res.AbsorbedMean = float64(total) / float64(len(results))
	return res, nil
}

// Render prints the studies.
func (r AblateResult) Render() string {
	t := NewTable("Ablations ("+r.Spec+", Te=3m core-days)", "study", "value")
	t.Add("Algorithm 1 outer iterations (plain)", r.PlainIters)
	t.Add("  with Aitken acceleration", r.AcceleratedIters)
	t.Add("  with numeric scale gradient", r.NumericGradIters)
	t.Add("  max wall-clock drift across variants", fmt.Sprintf("%.2g", r.WallClockDrift))
	t.Add("level selection kept", fmt.Sprintf("%v", r.SelectionEnabled))
	t.Add("  gain over all-levels", fmt.Sprintf("%.2g%%", r.SelectionGain*100))
	t.Add("simulated WCT, jitter 30% (days)", r.SimBase)
	t.Add("simulated WCT, no jitter (days)", r.SimNoJitter)
	t.Add("simulated WCT, 120s correlated window (days)", r.SimCorrelated)
	t.Add("  failures absorbed per run", r.AbsorbedMean)
	return t.String()
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
