package experiments

import (
	"errors"
	"strings"
	"testing"

	"mlckpt/internal/failure"
	"mlckpt/internal/fti"
	"mlckpt/internal/inject"
	"mlckpt/internal/stats"
)

// TestChaosGridInvariant runs the full chaos grid and checks the
// escalation invariant held: every cell either completed with a state
// digest byte-identical to the fault-free golden run (ChaosGrid already
// errors out on a mismatch) or failed loudly naming what was exhausted.
func TestChaosGridInvariant(t *testing.T) {
	res, err := ChaosGrid(16, Grid{Workers: 1})
	if err != nil {
		t.Fatalf("ChaosGrid: %v", err)
	}
	if res.GoldenDigest == 0 {
		t.Fatal("golden digest not computed")
	}
	if len(res.Cells) != 8 {
		t.Fatalf("got %d cells, want 8", len(res.Cells))
	}
	identical, loud := 0, 0
	for _, c := range res.Cells {
		if c.Failed == "" {
			if c.Res.StateDigest != res.GoldenDigest {
				t.Fatalf("cell corrupt=%g correlate=%g: digest %016x != golden %016x",
					c.Corrupt, c.Correlate, c.Res.StateDigest, res.GoldenDigest)
			}
			identical++
			continue
		}
		loud++
		if !strings.Contains(c.Failed, "exhausted") && !strings.Contains(c.Failed, "horizon") &&
			!strings.Contains(c.Failed, "attempts") {
			t.Fatalf("cell corrupt=%g correlate=%g failed without naming a cause: %q",
				c.Corrupt, c.Correlate, c.Failed)
		}
	}
	// The grid axes are tuned so both outcomes appear: the benign corner
	// survives and the heavy-corruption corner exhausts.
	if identical == 0 || loud == 0 {
		t.Fatalf("degenerate grid: %d identical, %d loud", identical, loud)
	}
	// The benign corner (no at-rest corruption, no correlated crashes) must
	// complete: window and transient faults alone are always recoverable.
	if c := res.Cells[0]; c.Corrupt != 0 || c.Correlate != 0 || c.Failed != "" {
		t.Fatalf("benign corner did not complete: %+v failed=%q", c, c.Failed)
	}
}

// TestChaosGridWorkerIndependence pins the byte-level reproducibility
// claim: the rendered grid is identical at 1 and 8 sweep workers.
func TestChaosGridWorkerIndependence(t *testing.T) {
	serial, err := ChaosGrid(16, Grid{Workers: 1})
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	parallel, err := ChaosGrid(16, Grid{Workers: 8})
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if s, p := serial.Render(), parallel.Render(); s != p {
		t.Fatalf("worker-dependent chaos grid:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", s, p)
	}
}

// TestChaosSeedMatrix re-runs the grid under several fixed root seeds —
// the CI chaos-smoke matrix. Seeds live here, in code, because the lint
// gate (docs/LINT.md) bans environment reads in gated packages: a seed
// nobody can see in the source is a seed nobody can reproduce.
func TestChaosSeedMatrix(t *testing.T) {
	for _, seed := range []uint64{101, 20250806, 0xFA117} {
		res, err := chaosGridSeeded(16, Grid{Workers: 4}, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(res.Cells) != 8 || res.GoldenDigest == 0 {
			t.Fatalf("seed %d: malformed grid: %d cells, digest %016x", seed, len(res.Cells), res.GoldenDigest)
		}
	}
}

// TestChaosPlanProperty sweeps >100 randomly drawn fault plans through
// the real-execution driver and asserts the escalation invariant for
// every one: the run completes byte-identical to the fault-free golden
// run, truncates at the horizon, or fails loudly with a typed error —
// never a silent divergence.
func TestChaosPlanProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep is seconds-long")
	}
	base := chaosConfig(16, 7)
	base.Heat.Iterations = 200
	base.MaxWall = 200

	golden := base
	golden.Rates = failure.MustParseRates("0-0-0-0", 16)
	golden.Inject = inject.MustCompile(inject.Spec{}, 1, "chaos/property/golden")
	g, err := RunReal(golden)
	if err != nil || !g.Completed {
		t.Fatalf("golden: err=%v completed=%v", err, g.Completed)
	}

	rng := stats.NewRNG(0xC4A05)
	const plans = 120
	completed, louds := 0, 0
	for i := 0; i < plans; i++ {
		c := rng.Float64() * rng.Float64() // bias toward small rates
		spec := inject.Spec{
			CorruptRate:       []float64{c, c, c, c},
			TruncateFrac:      0.5 * rng.Float64(),
			PartnerPairRate:   rng.Float64() * rng.Float64(),
			ParityHolderRate:  rng.Float64() * rng.Float64(),
			CkptAbortRate:     0.2 * rng.Float64(),
			RecoveryCrashRate: 0.3 * rng.Float64(),
			PFSWriteFailRate:  0.4 * rng.Float64(),
			PFSReadFailRate:   0.4 * rng.Float64(),
		}
		cfg := base
		cfg.Seed = rng.Uint64()
		cfg.Inject = inject.MustCompile(spec, rng.Uint64(), "chaos/property")
		res, err := RunReal(cfg)
		switch {
		case err != nil:
			if !errors.Is(err, fti.ErrExhausted) && !errors.Is(err, ErrReal) {
				t.Fatalf("plan %d: untyped failure: %v", i, err)
			}
			louds++
		case res.Completed:
			if res.StateDigest != g.StateDigest {
				t.Fatalf("plan %d: silent divergence: digest %016x != golden %016x (spec %+v)",
					i, res.StateDigest, g.StateDigest, spec)
			}
			completed++
		default:
			// Truncated at the horizon: loud by construction.
		}
	}
	if completed == 0 || louds == 0 {
		t.Fatalf("degenerate sweep: %d completed, %d loud of %d", completed, louds, plans)
	}
}
