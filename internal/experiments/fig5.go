package experiments

import (
	"fmt"

	"mlckpt/internal/core"
	"mlckpt/internal/failure"
)

// EvalRow is one (failure case, policy) cell of the Figure 5/6 time
// analysis: the four wall-clock portions in days, plus the solved plan.
type EvalRow struct {
	Spec    string
	Outcome PolicyOutcome
}

// Portions returns productive, checkpoint, restart, and rollback means in
// days.
func (r EvalRow) Portions() [4]float64 {
	a := r.Outcome.Aggregate
	d := failure.SecondsPerDay
	return [4]float64{
		a.Productive.Mean / d,
		a.Checkpoint.Mean / d,
		a.Restart.Mean / d,
		a.Rollback.Mean / d,
	}
}

// EvalResult is the full sweep for one workload: Figure 5 (Te = 3M
// core-days) or Figure 6 (Te = 10M core-days), which also yields Table III
// (optimized scales) and Figure 7 (efficiencies).
type EvalResult struct {
	TeCoreDays float64
	Rows       []EvalRow // len = cases × policies, grouped by case
	Runs       int
}

// Eval runs the sweep on all CPUs. Overrides with runs > 0 reduce the
// repetition count (tests); specs defaults to the paper's six cases.
func Eval(teCoreDays float64, runs int, specs []string) (EvalResult, error) {
	return EvalGrid(teCoreDays, runs, specs, Grid{})
}

// EvalGrid is Eval routed through an explicit sweep grid (worker count,
// shared cache, progress). Results are identical for every Workers
// setting: each cell's simulator stream is a pure function of the
// scenario and policy.
func EvalGrid(teCoreDays float64, runs int, specs []string, g Grid) (EvalResult, error) {
	if len(specs) == 0 {
		specs = FailureCases
	}
	res := EvalResult{TeCoreDays: teCoreDays}
	var cells []Cell
	for _, spec := range specs {
		sc := EvalScenario(teCoreDays, spec)
		if runs > 0 {
			sc.Runs = runs
		}
		res.Runs = sc.Runs
		for _, pol := range core.Policies {
			cells = append(cells, Cell{Scenario: sc, Policy: pol})
		}
	}
	outs, err := RunGrid(cells, g)
	if err != nil {
		return res, fmt.Errorf("eval: %w", err)
	}
	for i, out := range outs {
		res.Rows = append(res.Rows, EvalRow{Spec: cells[i].Scenario.Spec, Outcome: out})
	}
	return res, nil
}

// Render prints the Figure 5/6 time analysis.
func (r EvalResult) Render() string {
	t := NewTable(fmt.Sprintf("Figure 5/6: time analysis (Te=%.3gm core-days, N^(*)=1m cores, mean of %d runs, days)",
		r.TeCoreDays/1e6, r.Runs),
		"case", "solution", "productive", "checkpoint", "restart", "rollback", "wall-clock", "trunc")
	for _, row := range r.Rows {
		p := row.Portions()
		t.Add(row.Spec, row.Outcome.Policy.String(), p[0], p[1], p[2], p[3],
			row.Outcome.WallClockDays(), row.Outcome.Aggregate.Truncated)
	}
	return t.String()
}

// RenderTab3 prints Table III: the optimized execution scales.
func (r EvalResult) RenderTab3() string {
	t := NewTable(fmt.Sprintf("Table III: optimized execution scales (Te=%.3gm core-days)", r.TeCoreDays/1e6),
		"solution", "case", "N* (k cores)", "x per level")
	for _, row := range r.Rows {
		if !row.Outcome.Policy.OptimizesScale() {
			continue
		}
		t.Add(row.Outcome.Policy.String(), row.Spec,
			row.Outcome.Solution.N/1000, fmt.Sprintf("%v", row.Outcome.Solution.Intervals()))
	}
	return t.String()
}

// RenderFig7 prints Figure 7: the efficiency of every solution.
func (r EvalResult) RenderFig7() string {
	t := NewTable(fmt.Sprintf("Figure 7: efficiency (Te=%.3gm core-days)", r.TeCoreDays/1e6),
		"case", "solution", "N (k cores)", "efficiency")
	for _, row := range r.Rows {
		t.Add(row.Spec, row.Outcome.Policy.String(),
			row.Outcome.Solution.N/1000, row.Outcome.Efficiency(r.TeCoreDays))
	}
	return t.String()
}

// Gains summarizes ML(opt-scale)'s wall-clock reduction against each other
// policy per case — the paper's headline 4.3–88% numbers.
func (r EvalResult) Gains() map[string]map[core.Policy]float64 {
	byCase := map[string]map[core.Policy]float64{}
	for _, row := range r.Rows {
		if byCase[row.Spec] == nil {
			byCase[row.Spec] = map[core.Policy]float64{}
		}
		byCase[row.Spec][row.Outcome.Policy] = row.Outcome.Aggregate.WallClock.Mean
	}
	out := map[string]map[core.Policy]float64{}
	for spec, m := range byCase {
		base := m[core.MLOptScale]
		out[spec] = map[core.Policy]float64{}
		for pol, wct := range m {
			if pol == core.MLOptScale || wct <= 0 {
				continue
			}
			out[spec][pol] = 1 - base/wct
		}
	}
	return out
}
