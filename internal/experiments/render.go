package experiments

import (
	"fmt"
	"strings"
)

// Table is a minimal text-table builder for experiment output.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable creates a titled table with the given column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// Add appends a row; values are formatted with %v unless already strings.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(widths) && len(c) < widths[i] {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		sb.WriteByte('\n')
	}
	line(t.Header)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	sb.WriteString(strings.Repeat("-", total))
	sb.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return sb.String()
}
