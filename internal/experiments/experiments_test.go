package experiments

import (
	"math"
	"strings"
	"testing"

	"mlckpt/internal/core"
	"mlckpt/internal/failure"
)

func TestFig1PeakShiftsLeft(t *testing.T) {
	r := Fig1(64)
	if len(r.Points) != 64 {
		t.Fatalf("%d points", len(r.Points))
	}
	// Figure 1's message: the optimum with checkpointing sits at a smaller
	// scale than the original optimum.
	if !(r.PeakWithCkpt < r.PeakOriginal) {
		t.Errorf("peak with ckpt %g not left of original %g", r.PeakWithCkpt, r.PeakOriginal)
	}
	if out := r.Render(); !strings.Contains(out, "Figure 1") {
		t.Error("render missing title")
	}
}

func TestFig2Shapes(t *testing.T) {
	r, err := Fig2(64)
	if err != nil {
		t.Fatal(err)
	}
	// Heat curve: rising over the measured range, good quadratic fit.
	if r.Heat.Fit.Kappa <= 0 {
		t.Errorf("heat κ = %g", r.Heat.Fit.Kappa)
	}
	if r.Heat.R2 < 0.95 {
		t.Errorf("heat fit R² = %g", r.Heat.R2)
	}
	// Eddy curve: the measured Jacobi speedup must rise and fall with an
	// interior peak, and the rising-range quadratic fit must place its
	// ideal scale in the same region as the empirical peak (the paper's
	// Figure 2(b) methodology), not be dragged down by the falling tail.
	peak := 0
	for i, s := range r.Eddy.Samples {
		if s.Speedup > r.Eddy.Samples[peak].Speedup {
			peak = i
		}
	}
	if peak == 0 || peak == len(r.Eddy.Samples)-1 {
		t.Errorf("eddy curve has no interior peak: %v", r.Eddy.Samples)
	}
	peakN := r.Eddy.Samples[peak].N
	if r.Eddy.Fit.NStar < 0.25*peakN || r.Eddy.Fit.NStar > 2*peakN {
		t.Errorf("eddy fit N* = %g far from empirical peak %g", r.Eddy.Fit.NStar, peakN)
	}
	if r.Eddy.R2 < 0.9 {
		t.Errorf("eddy rising-range R² = %g", r.Eddy.R2)
	}
	if out := r.Render(); !strings.Contains(out, "Figure 2") {
		t.Error("render missing title")
	}
}

func TestFig3PaperValues(t *testing.T) {
	r, err := Fig3(9)
	if err != nil {
		t.Fatal(err)
	}
	// Section III-C.2's published optima.
	if math.Abs(r.Constant.XStar-797) > 2 {
		t.Errorf("constant-cost x* = %g, want ≈797", r.Constant.XStar)
	}
	if math.Abs(r.Constant.NStar-81746) > 150 {
		t.Errorf("constant-cost N* = %g, want ≈81,746", r.Constant.NStar)
	}
	if math.Abs(r.Linear.XStar-140) > 2 {
		t.Errorf("linear-cost x* = %g, want ≈140", r.Linear.XStar)
	}
	if math.Abs(r.Linear.NStar-20215) > 150 {
		t.Errorf("linear-cost N* = %g, want ≈20,215", r.Linear.NStar)
	}
	// The sweeps must bottom out at the solved optimum.
	for _, c := range []Fig3Case{r.Constant, r.Linear} {
		for _, p := range c.XSweep {
			if p.WallClock < c.WallClock-1e-6 {
				t.Errorf("%s: x sweep found better point", c.Name)
			}
		}
		for _, p := range c.NSweep {
			if p.WallClock < c.WallClock-1e-6 {
				t.Errorf("%s: N sweep found better point", c.Name)
			}
		}
	}
	if out := r.Render(); !strings.Contains(out, "Figure 3") {
		t.Error("render missing title")
	}
}

func TestFig4SimulatorValidation(t *testing.T) {
	// Scaled-down Figure 4: the abstract simulator must track the real
	// heat+FTI executions. The paper reports <4% with 100-run means on a
	// real cluster; at this test's budget we accept <15%.
	r, err := Fig4(16, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) == 0 {
		t.Fatal("no sweep points")
	}
	for _, p := range r.Points {
		if p.RelErr > 0.15 {
			t.Errorf("intervals %v: real %g vs sim %g (%.1f%%)",
				p.Intervals, p.RealWCT, p.SimWCT, p.RelErr*100)
		}
	}
	if out := r.Render(); !strings.Contains(out, "Figure 4") {
		t.Error("render missing title")
	}
}

func TestTab2Shape(t *testing.T) {
	r, err := Tab2([]int{128, 256, 512})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Costs) != 3 {
		t.Fatalf("%d rows", len(r.Costs))
	}
	// Levels 1-3 flat, level 4 growing — the Table II reading.
	for lvl := 0; lvl < 3; lvl++ {
		if !r.Fitted[lvl].IsConstant() {
			t.Errorf("level %d fitted scale-dependent: %v", lvl+1, r.Fitted[lvl])
		}
	}
	if r.Fitted[3].IsConstant() {
		t.Errorf("level 4 fitted constant: %v", r.Fitted[3])
	}
	// Within each scale, cost increases with level.
	for i, row := range r.Costs {
		for lvl := 1; lvl < 4; lvl++ {
			if row[lvl] <= row[lvl-1] {
				t.Errorf("scale %d: level %d cost %g <= level %d cost %g",
					r.Scales[i], lvl+1, row[lvl], lvl, row[lvl-1])
			}
		}
	}
	if out := r.Render(); !strings.Contains(out, "Table II") {
		t.Error("render missing title")
	}
}

func TestEvalOrderingSmall(t *testing.T) {
	// Scaled-down Figure 5 on one case: the paper's ordering
	// ML(opt) < ML(ori) and both multilevel beat both single-level
	// solutions on simulated wall clock.
	r, err := Eval(3e6, 12, []string{"16-12-8-4"})
	if err != nil {
		t.Fatal(err)
	}
	wct := map[core.Policy]float64{}
	for _, row := range r.Rows {
		wct[row.Outcome.Policy] = row.Outcome.Aggregate.WallClock.Mean
	}
	if !(wct[core.MLOptScale] < wct[core.MLOriScale]) {
		t.Errorf("ML(opt) %g !< ML(ori) %g", wct[core.MLOptScale], wct[core.MLOriScale])
	}
	if !(wct[core.MLOptScale] < wct[core.SLOptScale]) {
		t.Errorf("ML(opt) %g !< SL(opt) %g", wct[core.MLOptScale], wct[core.SLOptScale])
	}
	if !(wct[core.MLOriScale] < wct[core.SLOriScale]) {
		t.Errorf("ML(ori) %g !< SL(ori) %g", wct[core.MLOriScale], wct[core.SLOriScale])
	}
	// SL(ori-scale) at full scale with PFS-only checkpoints must be
	// dramatically worse (the paper's 79-88% reduction headline).
	gain := 1 - wct[core.MLOptScale]/wct[core.SLOriScale]
	if gain < 0.5 {
		t.Errorf("ML(opt) gain over SL(ori) = %.1f%%, expected > 50%%", gain*100)
	}
	for _, s := range []string{r.Render(), r.RenderTab3(), r.RenderFig7()} {
		if s == "" {
			t.Error("empty render")
		}
	}
	gains := r.Gains()
	if len(gains["16-12-8-4"]) != 3 {
		t.Errorf("gains = %v", gains)
	}
}

func TestEvalEfficiencyOrdering(t *testing.T) {
	// Figure 7's message: SL(opt-scale) has the highest efficiency (it
	// uses very few cores) and SL(ori-scale) by far the lowest.
	r, err := Eval(3e6, 10, []string{"8-6-4-2"})
	if err != nil {
		t.Fatal(err)
	}
	eff := map[core.Policy]float64{}
	for _, row := range r.Rows {
		eff[row.Outcome.Policy] = row.Outcome.Efficiency(3e6)
	}
	if !(eff[core.SLOptScale] > eff[core.MLOptScale]) {
		t.Errorf("SL(opt) eff %g !> ML(opt) eff %g", eff[core.SLOptScale], eff[core.MLOptScale])
	}
	if !(eff[core.MLOptScale] > eff[core.SLOriScale]) {
		t.Errorf("ML(opt) eff %g !> SL(ori) eff %g", eff[core.MLOptScale], eff[core.SLOriScale])
	}
}

func TestTab3ScalesBelowIdeal(t *testing.T) {
	r, err := Eval(3e6, 6, []string{"16-12-8-4", "4-2-1-0.5"})
	if err != nil {
		t.Fatal(err)
	}
	var high, low float64
	for _, row := range r.Rows {
		if row.Outcome.Policy != core.MLOptScale {
			continue
		}
		n := row.Outcome.Solution.N
		if n >= 1e6 {
			t.Errorf("%s: ML(opt) scale %g not below N^(*)", row.Spec, n)
		}
		if row.Spec == "16-12-8-4" {
			high = n
		} else {
			low = n
		}
	}
	if !(high < low) {
		t.Errorf("higher failure rates should shrink the optimal scale: %g vs %g", high, low)
	}
}

func TestTab4Small(t *testing.T) {
	r, err := Tab4(8, []string{"16-12-8-4"})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 8 { // 2 blocks × 1 case × 4 policies
		t.Fatalf("%d rows", len(r.Rows))
	}
	wct := map[float64]map[core.Policy]float64{}
	for _, row := range r.Rows {
		if wct[row.RecFactor] == nil {
			wct[row.RecFactor] = map[core.Policy]float64{}
		}
		wct[row.RecFactor][row.Outcome.Policy] = row.WCTDays
		if row.Outcome.Policy == core.MLOptScale && row.WCTDays > 60 {
			t.Errorf("ML(opt) WCT = %.0f days; expected tens of days", row.WCTDays)
		}
	}
	// Table IV's claims: ML(opt-scale) always wins; its gain over
	// ML(ori-scale) is modest (paper: 3.6-6.5%); SL(ori-scale) at 1M cores
	// with 2,000 s PFS checkpoints collapses by a multiple (paper: 890 vs
	// 14.6 days).
	for rf, m := range wct {
		if !(m[core.MLOptScale] < m[core.MLOriScale]) {
			t.Errorf("rf=%.1f: ML(opt) %.1f !< ML(ori) %.1f days", rf, m[core.MLOptScale], m[core.MLOriScale])
		}
		if !(m[core.MLOptScale] < m[core.SLOptScale]) {
			t.Errorf("rf=%.1f: ML(opt) %.1f !< SL(opt) %.1f days", rf, m[core.MLOptScale], m[core.SLOptScale])
		}
		if m[core.SLOriScale] < 3*m[core.MLOptScale] {
			t.Errorf("rf=%.1f: SL(ori) %.0f days not catastrophic vs ML(opt) %.0f days",
				rf, m[core.SLOriScale], m[core.MLOptScale])
		}
	}
	if out := r.Render(); !strings.Contains(out, "Table IV") {
		t.Error("render missing title")
	}
}

func TestConvergenceCounts(t *testing.T) {
	r, err := Convergence(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		if !row.Converged {
			t.Errorf("%s did not converge", row.Spec)
		}
		// Paper: 7-15 outer iterations at δ=1e-12.
		if row.OuterIterations > 40 {
			t.Errorf("%s: %d outer iterations", row.Spec, row.OuterIterations)
		}
		// Residuals must shrink overall (compare first and last).
		h := row.FinalDeltaHist
		if len(h) >= 2 && h[len(h)-1] >= h[0] {
			t.Errorf("%s: μ delta did not shrink: %v", row.Spec, h)
		}
	}
	if out := r.Render(); !strings.Contains(out, "convergence") {
		t.Error("render missing title")
	}
}

func TestScenarioParams(t *testing.T) {
	sc := EvalScenario(3e6, "16-12-8-4")
	p := sc.Params()
	if err := p.Validate(); err != nil {
		t.Fatalf("scenario params invalid: %v", err)
	}
	if p.Te != 3e6*failure.SecondsPerDay {
		t.Errorf("Te = %g", p.Te)
	}
	if p.L() != 4 {
		t.Errorf("levels = %d", p.L())
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("demo", "a", "bb")
	tb.Add("x", 1.5)
	tb.Add("longer-cell", "y")
	s := tb.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "longer-cell") {
		t.Errorf("table render: %q", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 { // title, header, rule, 2 rows -> 5? title+header+rule+2 = 5
		if len(lines) != 5 {
			t.Errorf("unexpected line count %d: %q", len(lines), s)
		}
	}
}

func TestAblate(t *testing.T) {
	r, err := Ablate("16-12-8-4", 10)
	if err != nil {
		t.Fatal(err)
	}
	if r.AcceleratedIters >= r.PlainIters {
		t.Errorf("Aitken did not reduce iterations: %d vs %d", r.AcceleratedIters, r.PlainIters)
	}
	if r.WallClockDrift > 1e-6 {
		t.Errorf("solver variants disagree by %g", r.WallClockDrift)
	}
	if len(r.SelectionEnabled) != 4 || !r.SelectionEnabled[3] {
		t.Errorf("selection = %v", r.SelectionEnabled)
	}
	if r.SelectionGain < -1e-9 {
		t.Errorf("selection made things worse: %g", r.SelectionGain)
	}
	if r.SimBase <= 0 || r.SimNoJitter <= 0 || r.SimCorrelated <= 0 {
		t.Error("missing simulator results")
	}
	if r.AbsorbedMean <= 0 {
		t.Error("no failures absorbed under a 120s window at 40/day")
	}
	if out := r.Render(); !strings.Contains(out, "Ablations") {
		t.Error("render missing title")
	}
}

func TestFig2BlockDecomposition(t *testing.T) {
	r, err := Fig2(64)
	if err != nil {
		t.Fatal(err)
	}
	if r.Block.Fit.Kappa <= 0 || r.Block.R2 < 0.95 {
		t.Errorf("block curve fit: κ=%g R²=%g", r.Block.Fit.Kappa, r.Block.R2)
	}
	// Both decompositions solve the same problem with similar costs; their
	// fitted origin slopes should be close.
	if math.Abs(r.Block.Fit.Kappa-r.Heat.Fit.Kappa) > 0.2*r.Heat.Fit.Kappa {
		t.Errorf("decompositions disagree wildly: row κ=%g block κ=%g",
			r.Heat.Fit.Kappa, r.Block.Fit.Kappa)
	}
}

func TestSensitivity(t *testing.T) {
	r, err := Sensitivity("16-12-8-4")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 10 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.N <= 0 || row.N > 1e6 {
			t.Errorf("%s=%g: N=%g out of range", row.Knob, row.Value, row.N)
		}
		if row.WallClock <= 0 {
			t.Errorf("%s=%g: WCT=%g", row.Knob, row.Value, row.WallClock)
		}
	}
	// Larger allocation period should never increase the optimal scale
	// (failures become more expensive, the optimum retreats).
	var allocNs []float64
	for _, row := range r.Rows {
		if row.Knob == "alloc A (s)" {
			allocNs = append(allocNs, row.N)
		}
	}
	for i := 1; i < len(allocNs); i++ {
		if allocNs[i] > allocNs[i-1]*1.001 {
			t.Errorf("optimal scale grew with allocation period: %v", allocNs)
		}
	}
	if out := r.Render(); !strings.Contains(out, "Sensitivity") {
		t.Error("render missing title")
	}
}
