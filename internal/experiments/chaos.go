package experiments

import (
	"errors"
	"fmt"

	"mlckpt/internal/failure"
	"mlckpt/internal/fti"
	"mlckpt/internal/heat"
	"mlckpt/internal/inject"
	"mlckpt/internal/mpisim"
	"mlckpt/internal/stats"
	"mlckpt/internal/sweep"
)

// chaosRootSeed seeds every compiled fault plan (per-cell plans derive
// from it by canonical cell key, so the grid is byte-reproducible at any
// worker count).
const chaosRootSeed = 20140816 // SC'14 vintage

// ChaosCell is one cell of the chaos grid: a corruption rate and a
// correlated-crash rate, plus the fixed window/transient rates every cell
// shares, driven through a full heat+FTI execution.
type ChaosCell struct {
	Corrupt   float64 // per-snapshot at-rest corruption probability, all levels
	Correlate float64 // partner-pair and parity-holder correlated crash probability
	Res       RealResult
	Failed    string // loud failure text; empty when the run completed
}

// ChaosResult is the outcome of the chaos grid: the fault-free golden run
// plus every injected cell, with the escalation invariant already checked
// (ChaosGrid errors out on any violation).
type ChaosResult struct {
	Ranks        int
	GoldenWall   float64
	GoldenDigest uint64
	Cells        []ChaosCell
}

// chaosConfig is the shared execution: a longer heat run than the realrun
// tests (so several failures strike per execution) with rates chosen to
// keep the run stable — the mean failure interarrival (~5.8 s) comfortably
// exceeds the cost of one failure cycle (rollback + allocation +
// recovery), so injected chaos perturbs the run without collapsing it.
// MaxWall is a tight horizon: a cell that does thrash truncates loudly in
// bounded host time instead of crawling toward the 30-day default.
func chaosConfig(ranks int, seed uint64) RealConfig {
	return RealConfig{
		Ranks:     ranks,
		Heat:      heat.Config{GridX: 64, GridY: 64, Iterations: 600, CellTime: 2e-4, TopTemp: 100},
		FTI:       fti.DefaultConfig(),
		Intervals: [fti.Levels]int{48, 24, 12, 6},
		Rates:     failure.MustParseRates("8000-4000-800-400", float64(ranks)),
		Alloc:     0.5,
		Cost:      mpisim.DefaultCostModel(),
		MaxWall:   600,
		Seed:      seed,
		// Loud-by-construction: an exhausted escalation is an error naming
		// the last rung, never a silent from-scratch restart.
		DisableScratch: true,
	}
}

// chaosSpec builds one cell's fault plan: the two grid axes plus fixed
// window/transient rates shared by every cell (so even the corrupt=0,
// correlate=0 corner exercises checkpoint aborts, recovery-window crashes,
// and transient PFS faults).
func chaosSpec(corrupt, correlate float64) inject.Spec {
	return inject.Spec{
		CorruptRate:       []float64{corrupt, corrupt, corrupt, corrupt},
		TruncateFrac:      0.25,
		PartnerPairRate:   correlate,
		ParityHolderRate:  correlate,
		CkptAbortRate:     0.05,
		RecoveryCrashRate: 0.15,
		PFSWriteFailRate:  0.2,
		PFSReadFailRate:   0.2,
	}
}

// ChaosGrid runs the fault-injection chaos grid: a fault-free golden
// execution, then one cell per (corruption rate × correlated-crash rate)
// combination, each under a deterministically compiled fault plan. It
// enforces the escalation invariant — every cell either completes with a
// final state byte-identical to the golden run, or fails loudly naming
// the exhausted recovery rung — and returns an error on any violation.
// Results are bit-identical for every Grid.Workers setting.
func ChaosGrid(ranks int, g Grid) (ChaosResult, error) {
	return chaosGridSeeded(ranks, g, chaosRootSeed)
}

// chaosGridSeeded is ChaosGrid under an explicit root seed; the CI seed
// matrix (chaos_test.go) sweeps several fixed seeds through it.
func chaosGridSeeded(ranks int, g Grid, rootSeed uint64) (ChaosResult, error) {
	if ranks <= 0 || ranks%8 != 0 {
		ranks = 16
	}
	res := ChaosResult{Ranks: ranks}

	corrupts := []float64{0, 0.02, 0.1, 0.4}
	correlates := []float64{0, 0.5}

	// Per-cell seeds pre-drawn serially so the fan-out below is
	// order-independent.
	rng := stats.NewRNG(rootSeed)
	goldenSeed := rng.Uint64()
	seeds := make([]uint64, len(corrupts)*len(correlates))
	for i := range seeds {
		seeds[i] = rng.Uint64()
	}

	// Golden run: a zero plan (non-nil, so the state digest is computed)
	// injects nothing — byte-identical to a plain failure-free execution.
	goldenCfg := chaosConfig(ranks, goldenSeed)
	goldenCfg.Rates = failure.MustParseRates("0-0-0-0", float64(ranks))
	goldenCfg.Inject = inject.MustCompile(inject.Spec{}, rootSeed, "chaos/golden")
	golden, err := RunReal(goldenCfg)
	if err != nil {
		return res, fmt.Errorf("chaos golden run: %w", err)
	}
	if !golden.Completed {
		return res, fmt.Errorf("%w: chaos golden run did not complete", ErrReal)
	}
	res.GoldenWall = golden.WallClock
	res.GoldenDigest = golden.StateDigest

	var jobs []sweep.Job
	ci := 0
	for _, corrupt := range corrupts {
		for _, correlate := range correlates {
			corrupt, correlate := corrupt, correlate
			seed := seeds[ci]
			key := fmt.Sprintf("chaos/c%g-r%g", corrupt, correlate)
			ci++
			jobs = append(jobs, sweep.Job{
				Name: key,
				Solve: func() (any, error) {
					cfg := chaosConfig(ranks, seed)
					cfg.Inject = inject.MustCompile(chaosSpec(corrupt, correlate), rootSeed, key)
					cfg.Obs = g.Obs
					if g.Obs != nil {
						// Content-derived track name: the attribution spans
						// land on a per-cell timeline that is byte-identical
						// for every worker count.
						cfg.ObsTrack = "real/" + key
					}
					rr, rerr := RunReal(cfg)
					cell := ChaosCell{Corrupt: corrupt, Correlate: correlate, Res: rr}
					if rerr != nil {
						// A loud chaos failure (exhausted rung, PFS retry
						// budget) is an allowed outcome; anything else is a
						// driver bug and propagates.
						if errors.Is(rerr, fti.ErrExhausted) || errors.Is(rerr, ErrReal) {
							cell.Failed = rerr.Error()
							return cell, nil
						}
						return nil, rerr
					}
					if !rr.Completed {
						cell.Failed = "truncated at the wall-clock horizon"
					}
					return cell, nil
				},
			})
		}
	}
	outs := sweep.Run(jobs, sweep.Options{Workers: g.Workers, Cache: g.Cache, Progress: g.Progress})
	for _, o := range outs {
		if o.Err != nil {
			return res, fmt.Errorf("%s: %w", o.Name, o.Err)
		}
		cell := o.Solved.(ChaosCell)
		// The escalation invariant: completed ⇒ byte-identical to golden.
		if cell.Failed == "" && cell.Res.StateDigest != res.GoldenDigest {
			return res, fmt.Errorf("%w: chaos invariant violated: cell corrupt=%g correlate=%g digest %016x != golden %016x",
				ErrReal, cell.Corrupt, cell.Correlate, cell.Res.StateDigest, res.GoldenDigest)
		}
		res.Cells = append(res.Cells, cell)
	}
	return res, nil
}

// Render prints the grid.
func (r ChaosResult) Render() string {
	t := NewTable(fmt.Sprintf("Chaos grid: deterministic fault injection, %d ranks (golden wall %.2f s, digest %016x)",
		r.Ranks, r.GoldenWall, r.GoldenDigest),
		"corrupt", "correlate", "wall (s)", "fails", "recov", "escal", "detect (s)", "inject", "retries", "outcome")
	for _, c := range r.Cells {
		fails := 0
		for _, v := range c.Res.Failures {
			fails += v
		}
		recov := 0
		for _, v := range c.Res.Recoveries {
			recov += v
		}
		outcome := "identical"
		if c.Failed != "" {
			outcome = c.Failed
		}
		t.Add(
			fmt.Sprintf("%.2f", c.Corrupt),
			fmt.Sprintf("%.2f", c.Correlate),
			fmt.Sprintf("%.2f", c.Res.WallClock),
			fmt.Sprintf("%d", fails),
			fmt.Sprintf("%d", recov),
			fmt.Sprintf("%d", c.Res.Escalations),
			fmt.Sprintf("%.3f", c.Res.DetectionLatency),
			fmt.Sprintf("%d", c.Res.InjectedFaults),
			fmt.Sprintf("%d", c.Res.PFSRetries),
			outcome,
		)
	}
	return t.String()
}
