package experiments

import (
	"fmt"

	"mlckpt/internal/core"
	"mlckpt/internal/failure"
	"mlckpt/internal/overhead"
)

// SensRow is one knob setting of the sensitivity study.
type SensRow struct {
	Knob      string
	Value     float64
	N         float64 // optimized scale
	X4        int     // optimized PFS interval count
	WallClock float64 // model E(T_w), days
}

// SensResult studies how the optimum responds to the knobs the paper does
// not publish — the allocation period A, the recovery-cost factor, and the
// PFS saturation cap (DESIGN.md's documented assumptions). A robust
// reproduction should show the optimal scale moving smoothly and modestly
// across plausible settings.
type SensResult struct {
	Spec string
	Rows []SensRow
}

// Sensitivity runs the sweep on one failure case.
func Sensitivity(spec string) (SensResult, error) {
	res := SensResult{Spec: spec}
	run := func(knob string, value float64, mutate func(*Scenario)) error {
		sc := EvalScenario(3e6, spec)
		mutate(&sc)
		sol, err := core.MLOptScale.Solve(sc.Params(), core.Options{})
		if err != nil {
			return fmt.Errorf("%s=%g: %w", knob, value, err)
		}
		res.Rows = append(res.Rows, SensRow{
			Knob: knob, Value: value,
			N:         sol.N,
			X4:        sol.Intervals()[3],
			WallClock: sol.WallClock / failure.SecondsPerDay,
		})
		return nil
	}
	for _, a := range []float64{0, 60, 300, 600} {
		v := a
		if err := run("alloc A (s)", v, func(sc *Scenario) { sc.Alloc = v }); err != nil {
			return res, err
		}
	}
	for _, rf := range []float64{0.25, 0.5, 1.0} {
		v := rf
		if err := run("recovery factor", v, func(sc *Scenario) { sc.RecFactor = v }); err != nil {
			return res, err
		}
	}
	for _, cap := range []float64{131072, 262144, 524288} {
		v := cap
		if err := run("PFS saturation cap", v, func(sc *Scenario) {
			costs := overhead.FusionFittedCosts()
			costs[3].Cap = v
			sc.Costs = costs
		}); err != nil {
			return res, err
		}
	}
	return res, nil
}

// Render prints the sweep.
func (r SensResult) Render() string {
	t := NewTable("Sensitivity of the optimum to unpublished knobs ("+r.Spec+", Te=3m core-days)",
		"knob", "value", "N* (k cores)", "x4", "E(Tw) (days)")
	for _, row := range r.Rows {
		t.Add(row.Knob, row.Value, row.N/1000, row.X4, row.WallClock)
	}
	return t.String()
}
