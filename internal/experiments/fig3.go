package experiments

import (
	"fmt"

	"mlckpt/internal/core"
	"mlckpt/internal/failure"
	"mlckpt/internal/model"
	"mlckpt/internal/overhead"
	"mlckpt/internal/speedup"
)

// Fig3Case is one sub-figure of the Figure 3 confirmation study.
type Fig3Case struct {
	Name       string
	Cost       overhead.Cost
	XStar      float64 // solved optimal interval count (paper: 797 / 140)
	NStar      float64 // solved optimal scale (paper: 81,746 / 20,215)
	WallClock  float64 // E(T_w) at the optimum, seconds
	Iterations int
	// Sweeps confirming the optimum, as the figure plots:
	XSweep []SweepPoint // E(T_w) vs x at N = N*
	NSweep []SweepPoint // E(T_w) vs N at x = x*
}

// SweepPoint is one point of a 1-D objective sweep.
type SweepPoint struct {
	Value     float64
	WallClock float64
}

// Fig3Result holds both cost cases.
type Fig3Result struct {
	Constant Fig3Case // C(N)=R(N)=5 s
	Linear   Fig3Case // C(N)=R(N)=5+0.005N s
}

// Fig3 reproduces the numerical confirmation of Section III-C.2: Heat
// Distribution speedup (κ=0.46, N^(*)=10^5), 4,000 core-days, b=0.005,
// x⁰=100,000, tolerance 1e-6.
func Fig3(sweepPoints int) (Fig3Result, error) {
	if sweepPoints < 5 {
		sweepPoints = 5
	}
	g := speedup.Quadratic{Kappa: 0.46, NStar: 1e5}
	te := 4000.0 * failure.SecondsPerDay
	const b = 0.005
	run := func(name string, c overhead.Cost) (Fig3Case, error) {
		sol, err := core.SolveSingleLevelFixedB(te, g, c, c, 0, b, 100000, 1e-6, 10000)
		if err != nil {
			return Fig3Case{}, err
		}
		fc := Fig3Case{
			Name: name, Cost: c,
			XStar: sol.X, NStar: sol.N, WallClock: sol.WallClock,
			Iterations: sol.Iterations,
		}
		for i := 1; i <= sweepPoints; i++ {
			f := 0.25 + 1.5*float64(i)/float64(sweepPoints)
			x := sol.X * f
			fc.XSweep = append(fc.XSweep, SweepPoint{x,
				model.SingleLevelWallClock(te, g, c, c, 0, b, x, sol.N)})
			n := sol.N * f
			if n <= g.IdealScale() {
				fc.NSweep = append(fc.NSweep, SweepPoint{n,
					model.SingleLevelWallClock(te, g, c, c, 0, b, sol.X, n)})
			}
		}
		return fc, nil
	}
	var res Fig3Result
	var err error
	if res.Constant, err = run("constant cost C=R=5s", overhead.Constant(5)); err != nil {
		return res, err
	}
	if res.Linear, err = run("linear cost C=R=5+0.005N", overhead.LinearCost(5, 0.005)); err != nil {
		return res, err
	}
	return res, nil
}

// Render prints both cases.
func (r Fig3Result) Render() string {
	out := ""
	for _, c := range []Fig3Case{r.Constant, r.Linear} {
		t := NewTable("Figure 3: "+c.Name, "quantity", "value")
		t.Add("x*", c.XStar)
		t.Add("N*", c.NStar)
		t.Add("E(Tw) days", c.WallClock/failure.SecondsPerDay)
		t.Add("iterations", c.Iterations)
		out += t.String()
		s := NewTable("  sweep around the optimum", "x", "E(Tw)|N=N*", "N", "E(Tw)|x=x*")
		for i := range c.XSweep {
			nv, nw := "", ""
			if i < len(c.NSweep) {
				nv = fmt.Sprintf("%.4g", c.NSweep[i].Value)
				nw = fmt.Sprintf("%.4g", c.NSweep[i].WallClock)
			}
			s.Add(c.XSweep[i].Value, c.XSweep[i].WallClock, nv, nw)
		}
		out += s.String() + "\n"
	}
	return out
}
