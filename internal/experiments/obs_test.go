package experiments

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sync/atomic"
	"testing"

	"mlckpt/internal/core"
	"mlckpt/internal/obs"
	"mlckpt/internal/sweep"
)

// obsCells is a small grid exercising both the solver and the simulator:
// two failure cases x two policies, with few simulation repetitions and a
// deliberate duplicate cell so the memo cache and singleflight paths run.
func obsCells() []Cell {
	var cells []Cell
	for _, spec := range []string{"16-12-8-4", "8-6-4-2"} {
		sc := EvalScenario(3e6, spec)
		sc.Runs = 5
		for _, pol := range []core.Policy{core.MLOptScale, core.SLOptScale} {
			cells = append(cells, Cell{Scenario: sc, Policy: pol})
		}
	}
	return append(cells, cells[0]) // duplicate: must hit the cache
}

// fakeClock is an injected deterministic clock. Test files in this package
// are lint-gated against reading the wall clock directly, and the engine
// calls the clock from worker goroutines, so it must be race-free.
func fakeClock() func() float64 {
	var n atomic.Int64
	return func() float64 { return float64(n.Add(1)) * 1e-3 }
}

// gridTelemetry runs the standard grid with a fresh collector and private
// cache and returns (stripped metrics bytes, trace bytes, outcomes).
func gridTelemetry(t *testing.T, workers int) ([]byte, []byte, []PolicyOutcome) {
	t.Helper()
	col := obs.NewCollector()
	outs, err := RunGrid(obsCells(), Grid{
		Workers: workers,
		Cache:   sweep.NewCache(),
		Obs:     col,
		Clock:   fakeClock(),
	})
	if err != nil {
		t.Fatalf("RunGrid(workers=%d): %v", workers, err)
	}
	snap := col.Registry.Snapshot()
	snap.StripVolatile()
	metrics, err := snap.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	trace, err := json.Marshal(col.Trace)
	if err != nil {
		t.Fatal(err)
	}
	return metrics, trace, outs
}

// TestGridTelemetryDeterminism is the heart of the observability contract:
// the deterministic metrics section and the whole trace are byte-identical
// no matter how many workers race over the grid, because every track label
// and every timestamp derives from cell content and virtual time.
func TestGridTelemetryDeterminism(t *testing.T) {
	m1, t1, o1 := gridTelemetry(t, 1)
	m8, t8, o8 := gridTelemetry(t, 8)
	if !bytes.Equal(m1, m8) {
		t.Errorf("stripped metrics differ between workers=1 and workers=8:\n--- w1 ---\n%s\n--- w8 ---\n%s", m1, m8)
	}
	if !bytes.Equal(t1, t8) {
		t.Errorf("trace bytes differ between workers=1 and workers=8 (%d vs %d bytes)", len(t1), len(t8))
	}
	if !reflect.DeepEqual(o1, o8) {
		t.Error("grid outcomes differ between workers=1 and workers=8")
	}
}

// TestGridNilRecorderUnchanged: telemetry is strictly read-only — wiring a
// collector into a grid must not perturb any numeric outcome.
func TestGridNilRecorderUnchanged(t *testing.T) {
	plain, err := RunGrid(obsCells(), Grid{Workers: 4, Cache: sweep.NewCache()})
	if err != nil {
		t.Fatal(err)
	}
	_, _, observed := gridTelemetry(t, 4)
	if !reflect.DeepEqual(plain, observed) {
		t.Error("outcomes with a collector differ from outcomes with a nil Recorder")
	}
}

// TestGridTelemetryContent sanity-checks that all four instrumented layers
// actually reported: the sweep engine, the optimizer, and the simulator.
func TestGridTelemetryContent(t *testing.T) {
	col := obs.NewCollector()
	cells := obsCells()
	if _, err := RunGrid(cells, Grid{Workers: 2, Obs: col, Clock: fakeClock()}); err != nil {
		t.Fatal(err)
	}
	snap := col.Registry.Snapshot()
	if n, _ := snap.Counter("sweep.jobs"); n != int64(len(cells)) {
		t.Errorf("sweep.jobs = %d, want %d", n, len(cells))
	}
	// The duplicate cell must be answered by the cache, not recomputed:
	// 4 distinct (solve, post) pairs for 5 cells.
	if n, _ := snap.Counter("sweep.solve.computed"); n != 4 {
		t.Errorf("sweep.solve.computed = %d, want 4", n)
	}
	if n, _ := snap.Counter("sweep.solve.cache_hits"); n != 1 {
		t.Errorf("sweep.solve.cache_hits = %d, want 1", n)
	}
	if n, _ := snap.Counter("core.optimize.solves"); n != 4 {
		t.Errorf("core.optimize.solves = %d, want 4 (one per distinct cell)", n)
	}
	if n, _ := snap.Counter("sim.runs"); n != 4*5 {
		t.Errorf("sim.runs = %d, want 20", n)
	}
	if col.Trace.Len() == 0 {
		t.Error("trace is empty; expected optimizer and simulator spans")
	}
	for _, track := range col.Trace.Tracks() {
		if track == "" {
			t.Error("empty track name in trace")
		}
	}
}
