package experiments

import (
	"testing"

	"mlckpt/internal/core"
	"mlckpt/internal/obs"
	"mlckpt/internal/sweep"
)

// attribRender runs the quick waste-attribution grid and returns its
// rendered table (AttribGrid enforces the exact identity and the
// simulator cross-check internally, so a successful return already means
// every cell attributed exactly).
func attribRender(t *testing.T, workers int, cache *sweep.Cache, rec obs.Recorder) AttribResult {
	t.Helper()
	r, err := AttribGrid(3e6, true, Grid{Workers: workers, Cache: cache, Obs: rec, Clock: fakeClock()})
	if err != nil {
		t.Fatalf("AttribGrid(workers=%d): %v", workers, err)
	}
	return r
}

// TestAttribGridWorkerAndRecorderDeterminism: the rendered breakdown is
// byte-identical for any worker count, with or without a shared recorder
// attached, and a warm cache replays it unchanged.
func TestAttribGridWorkerAndRecorderDeterminism(t *testing.T) {
	cache := sweep.NewCache()
	base := attribRender(t, 1, cache, obs.NewCollector()).Render()
	if got := attribRender(t, 8, sweep.NewCache(), obs.NewCollector()).Render(); got != base {
		t.Errorf("workers=8 render differs:\n--- w1 ---\n%s\n--- w8 ---\n%s", base, got)
	}
	if got := attribRender(t, 4, sweep.NewCache(), nil).Render(); got != base {
		t.Errorf("nil-recorder render differs:\n--- rec ---\n%s\n--- nil ---\n%s", base, got)
	}
	// Warm cache: every post stage replays from memo, same bytes.
	if got := attribRender(t, 2, cache, obs.NewCollector()).Render(); got != base {
		t.Errorf("warm-cache render differs:\n--- cold ---\n%s\n--- warm ---\n%s", base, got)
	}
}

// TestAttribGridModelRegimes pins the science: multilevel cells have a
// finite Formula 21 fixed point and land within a documented tolerance of
// it, while single-level cells at the evaluation failure rates sit in the
// divergent-expectation regime the paper argues against.
func TestAttribGridModelRegimes(t *testing.T) {
	r := attribRender(t, 0, sweep.NewCache(), nil)
	if len(r.Cells) != 4 {
		t.Fatalf("quick grid has %d cells, want 4 (2 cases x 2 policies)", len(r.Cells))
	}
	for _, c := range r.Cells {
		if !c.Report.Exact {
			t.Errorf("%s/%v: identity not exact", c.Spec, c.Policy)
		}
		switch c.Policy {
		case core.MLOptScale:
			if !c.ModelOK {
				t.Errorf("%s/%v: Formula 21 diverged for the multilevel policy", c.Spec, c.Policy)
			}
			// One run scatters around the expectation; 0.2 of the wall clock
			// is far above observed deltas (~0.1) yet still catches a
			// vocabulary or portions-mapping regression.
			if c.Model.MaxAbsDelta > 0.2 {
				t.Errorf("%s/%v: model delta %.3f beyond tolerance 0.2", c.Spec, c.Policy, c.Model.MaxAbsDelta)
			}
		case core.SLOptScale:
			if c.ModelOK {
				t.Errorf("%s/%v: expected the divergent-expectation regime, got a finite fixed point", c.Spec, c.Policy)
			}
		}
	}
}
