package experiments

import (
	"fmt"
	"strings"
	"sync"

	"mlckpt/internal/core"
	"mlckpt/internal/obs"
	"mlckpt/internal/overhead"
	"mlckpt/internal/sweep"
)

// keySuffix shortens a sweep cache key ("scope:hexdigest") to its last 8
// hex digits — enough to disambiguate trace tracks without drowning the
// timeline in full digests.
func keySuffix(key string) string {
	if i := strings.LastIndexByte(key, ':'); i >= 0 {
		key = key[i+1:]
	}
	if len(key) > 8 {
		key = key[len(key)-8:]
	}
	return key
}

// Cell is one (scenario, policy) job of an evaluation grid.
type Cell struct {
	Scenario Scenario
	Policy   core.Policy
}

// Grid tunes how a sweep over cells executes. The zero value runs on all
// CPUs with a private cache — results are identical for every Workers
// setting, so parallelism is purely a wall-clock knob.
type Grid struct {
	// Workers bounds the worker pool; <= 0 means GOMAXPROCS.
	Workers int
	// Cache shares memoized solves and simulations across grids (Figure 5,
	// Table III, and Figure 7 reuse the same cells). Nil = private cache.
	Cache *sweep.Cache
	// Progress, when non-nil, receives one call per finished cell.
	Progress func(done, total int, name string)
	// Obs receives the sweep engine's counters plus each cell's optimizer
	// and simulator telemetry. Trace tracks are labeled by cell content
	// (spec, policy, and the cell's cache-key suffix), so a grid's trace is
	// byte-identical for every Workers setting. Nil disables telemetry.
	Obs obs.Recorder
	// Clock supplies wall-clock seconds for the engine's volatile latency
	// metrics (pass obs.WallClock from a CLI); nil disables them. It is
	// injected because this package is lint-gated against direct time.Now.
	Clock func() float64
}

// solveProblem is the canonical identity of a cell's Algorithm 1 run: the
// scenario fields that reach model.Params, and nothing else. Simulation
// knobs (runs, jitter, seed, horizon) deliberately stay out so cells that
// differ only in simulation settings share one solve.
type solveProblem struct {
	Te        float64
	NStar     float64
	Kappa     float64
	Costs     []overhead.Cost
	RecFactor float64
	Alloc     float64
	Rates     string
}

func (s Scenario) solveProblem() solveProblem {
	return solveProblem{
		Te:        s.TeCoreDays,
		NStar:     s.NStar,
		Kappa:     s.Kappa,
		Costs:     s.Costs,
		RecFactor: s.RecFactor,
		Alloc:     s.Alloc,
		Rates:     s.Spec,
	}
}

// solvedCell carries a solve result through the engine to the Post stage.
type solvedCell struct {
	Solution core.Solution
	X        []float64
}

// batchSolves is the lazily-fired batched Algorithm 1 phase of one RunGrid
// call: one core.OptimizeBatch lane per distinct solve key that the cache
// cannot already answer. The batch runs at most once, triggered by the
// first cell whose Solve stage actually computes, so the sweep engine's
// cache and telemetry contract is untouched — each distinct key still
// reports exactly one computed solve, duplicate cells still hit the cache,
// and a fully warmed cache fires no batch at all. Lane results are
// bit-identical to sequential Policy.Solve calls (the OptimizeBatch
// contract), so routing a grid through here changes wall-clock cost, never
// bytes.
type batchSolves struct {
	once     sync.Once
	lane     map[string]int // solve key → index into problems/cells/outs
	problems []core.Problem
	cells    []Cell // representative cell per lane, for ExpandX
	outs     []core.Outcome
}

// add registers a lane for key unless one exists or the cache already
// holds a completed answer.
func (b *batchSolves) add(key, track string, c Cell, cache *sweep.Cache, rec obs.Recorder) error {
	if _, ok := b.lane[key]; ok {
		return nil
	}
	if _, _, ok := cache.Lookup(key); ok {
		return nil
	}
	prob, err := c.Policy.BatchProblem(c.Scenario.Params(), core.Options{Obs: rec, ObsLabel: track})
	if err != nil {
		return err
	}
	if b.lane == nil {
		b.lane = map[string]int{}
	}
	b.lane[key] = len(b.problems)
	b.problems = append(b.problems, prob)
	b.cells = append(b.cells, c)
	return nil
}

// solve answers one cell's Solve stage from the batch, firing the batch on
// first use. A key without a lane (answered by the cache at construction
// time, then evicted — impossible today, the cache never evicts) falls
// back to the sequential solver so the grid stays correct regardless.
func (b *batchSolves) solve(key, track string, c Cell, rec obs.Recorder) (any, error) {
	i, ok := b.lane[key]
	if !ok {
		sol, x, err := SolvePolicyObs(c.Scenario, c.Policy, rec, track)
		if err != nil {
			return nil, err
		}
		return solvedCell{Solution: sol, X: x}, nil
	}
	b.once.Do(func() { b.outs = core.OptimizeBatch(b.problems) })
	out := b.outs[i]
	if out.Err != nil {
		return nil, out.Err
	}
	lane := b.cells[i]
	return solvedCell{Solution: out.Solution, X: lane.Policy.ExpandX(lane.Scenario.Params(), out.Solution)}, nil
}

// RunGrid fans the cells across the sweep engine and returns their
// outcomes in cell order. Equal solve problems are computed once (shared
// via the cache), every cell's simulator stream comes from
// Scenario.SimSeed, and the first failing cell aborts with its name.
//
// The deterministic halves of the cells — the Algorithm 1 solves — run as
// one batched lockstep call (core.OptimizeBatch) covering every distinct
// solve problem the cache cannot already answer; the sweep engine then
// distributes the lane results through its ordinary cache path. Outcomes
// are bit-identical to the historical cell-at-a-time solves.
func RunGrid(cells []Cell, g Grid) ([]PolicyOutcome, error) {
	// Materialize the cache up front: the batch phase peeks at it to skip
	// lanes that previous grids already solved.
	cache := g.Cache
	if cache == nil {
		cache = sweep.NewCache()
	}
	batch := &batchSolves{}
	jobs := make([]sweep.Job, len(cells))
	for i, c := range cells {
		c := c
		sc, pol := c.Scenario, c.Policy
		solveKey, err := sweep.Key("experiments.solve", sc.solveProblem(), int(pol))
		if err != nil {
			return nil, fmt.Errorf("grid cell %s/%v: %w", sc.Spec, pol, err)
		}
		postKey, err := sweep.Key("experiments.simulate", sc, int(pol))
		if err != nil {
			return nil, fmt.Errorf("grid cell %s/%v: %w", sc.Spec, pol, err)
		}
		// Track labels derive from the cell's cache keys, never the job
		// index: equal keys mean equal labels, so whichever duplicate cell
		// wins the singleflight race emits the same trace bytes.
		solveTrack := fmt.Sprintf("opt/%s/%v#%s", sc.Spec, pol, keySuffix(solveKey))
		simTrack := fmt.Sprintf("sim/%s/%v#%s", sc.Spec, pol, keySuffix(postKey))
		if err := batch.add(solveKey, solveTrack, c, cache, g.Obs); err != nil {
			return nil, fmt.Errorf("grid cell %s/%v: %w", sc.Spec, pol, err)
		}
		jobs[i] = sweep.Job{
			Name:     fmt.Sprintf("%s/%v", sc.Spec, pol),
			SolveKey: solveKey,
			Solve: func() (any, error) {
				return batch.solve(solveKey, solveTrack, c, g.Obs)
			},
			PostKey: postKey,
			Seed:    sc.SimSeed(pol),
			Post: func(solved any, seed uint64) (any, error) {
				sv := solved.(solvedCell)
				out, err := SimulatePolicyObs(sc, pol, sv.Solution, sv.X, seed, g.Obs, simTrack)
				if err != nil {
					return nil, err
				}
				return out, nil
			},
		}
	}
	outs := sweep.Run(jobs, sweep.Options{
		Workers: g.Workers, Cache: cache, Progress: g.Progress,
		Obs: g.Obs, Clock: g.Clock,
	})
	res := make([]PolicyOutcome, len(outs))
	for i, o := range outs {
		if o.Err != nil {
			return nil, fmt.Errorf("%s: %w", o.Name, o.Err)
		}
		res[i] = o.Result.(PolicyOutcome)
	}
	return res, nil
}
