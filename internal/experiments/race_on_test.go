//go:build race

package experiments

// raceEnabled lets the heaviest golden tests skip under the race detector
// (roughly a 10x slowdown on the mpisim executions).
const raceEnabled = true

const goldenRelTol = 1e-3
