package experiments

import (
	"reflect"
	"testing"

	"mlckpt/internal/core"
	"mlckpt/internal/sweep"
)

// TestGridBatchMatchesSequentialPolicies: the batched solve phase of
// RunGrid must be invisible in the results — every outcome equals what the
// historical cell-at-a-time RunPolicy path computes, bit for bit, across
// all four policies.
func TestGridBatchMatchesSequentialPolicies(t *testing.T) {
	sc := EvalScenario(3e6, "8-4-2-1")
	sc.Runs = 3
	var cells []Cell
	for _, pol := range core.Policies {
		cells = append(cells, Cell{Scenario: sc, Policy: pol})
	}
	got, err := RunGrid(cells, Grid{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cells {
		want, err := RunPolicy(c.Scenario, c.Policy)
		if err != nil {
			t.Fatalf("RunPolicy(%v): %v", c.Policy, err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("policy %v: batched grid outcome differs from sequential RunPolicy", c.Policy)
		}
	}
}

// TestGridBatchSkipsWarmCache: a grid whose every solve key is already
// cached must not re-solve anything — the batch phase peeks at the cache
// and lanes nothing, so the second run's misses only cover the simulate
// stages' keys (which Tab4-vs-Eval style reuse shares too; here the grids
// are identical, so there are no new misses at all).
func TestGridBatchSkipsWarmCache(t *testing.T) {
	sc := EvalScenario(3e6, "4-3-2-1")
	sc.Runs = 3
	cells := []Cell{{Scenario: sc, Policy: core.MLOptScale}, {Scenario: sc, Policy: core.SLOriScale}}
	cache := sweep.NewCache()
	first, err := RunGrid(cells, Grid{Workers: 1, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	_, misses := cache.Stats()
	second, err := RunGrid(cells, Grid{Workers: 1, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if _, m := cache.Stats(); m != misses {
		t.Errorf("warm-cache grid recomputed: misses %d -> %d", misses, m)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("warm-cache grid outcomes differ from the first run")
	}
}
