package experiments

import (
	"fmt"

	"mlckpt/internal/core"
	"mlckpt/internal/failure"
	"mlckpt/internal/sim"
	"mlckpt/internal/stats"
)

// ReplayResult is one deterministic re-execution of a recorded failure
// trace against the canonical evaluation scenario.
type ReplayResult struct {
	Spec  string
	Trace int // events in the input trace
	Res   sim.Result
}

// Replay runs the canonical evaluation scenario (Te = 3M core-days,
// 16-12-8-4 hierarchy) at its optimized scale and intervals, but with
// failures fed from the fixed trace instead of the stochastic process —
// replaying a recorded run or a real system's failure log. Jitter is
// disabled, so the wall clock is a pure function of the trace.
func Replay(trace []failure.Event) (ReplayResult, error) {
	const spec = "16-12-8-4"
	out := ReplayResult{Spec: spec, Trace: len(trace)}
	sc := EvalScenario(3e6, spec)
	p := sc.Params()
	opt, err := core.Optimize(p, core.Options{})
	if err != nil {
		return out, err
	}
	cfg := sim.Config{
		Params: p, N: opt.N, X: opt.X,
		MaxWallClock: sc.MaxDays * failure.SecondsPerDay,
		Replay:       trace,
		RecordEvents: true,
	}
	// The seed is irrelevant in replay mode with zero jitter; any fixed
	// value yields the identical run.
	const replaySeed uint64 = 1
	out.Res, err = sim.Run(cfg, stats.NewRNG(replaySeed))
	return out, err
}

// Render prints the replayed run: summary rows, then the execution trace
// (capped — a full exascale run takes tens of thousands of checkpoints).
func (r ReplayResult) Render() string {
	t := NewTable(fmt.Sprintf("Replay (%s, Te=3m core-days, %d trace events)", r.Spec, r.Trace),
		"quantity", "value")
	t.Add("wall clock (days)", fmt.Sprintf("%.3f", r.Res.WallClock/failure.SecondsPerDay))
	t.Add("failures replayed", fmt.Sprintf("%v", r.Res.Failures))
	t.Add("checkpoints taken", fmt.Sprintf("%v", r.Res.CheckpointsTaken))
	t.Add("restart time (s)", fmt.Sprintf("%.1f", r.Res.Restart))
	t.Add("rollback time (s)", fmt.Sprintf("%.1f", r.Res.Rollback))
	t.Add("truncated", fmt.Sprintf("%v", r.Res.Truncated))
	s := t.String()
	const maxEvents = 40
	shown := r.Res.Events
	// Failures and recoveries are the interesting rows of a replay;
	// checkpoint completions dominate the event count, so they are
	// filtered out of the listing.
	var kept []sim.TraceEvent
	for _, e := range shown {
		if e.Kind != sim.EvCheckpointDone {
			kept = append(kept, e)
		}
	}
	for i, e := range kept {
		if i == maxEvents {
			s += fmt.Sprintf("  ... %d more events\n", len(kept)-maxEvents)
			break
		}
		s += "  " + e.String() + "\n"
	}
	return s
}
