package experiments

import (
	"testing"

	"mlckpt/internal/sweep"
)

// The rendered output of every engine-routed experiment must be
// byte-identical for any worker count: seeds are a pure function of job
// identity and reductions happen in job order, never completion order.

func renderEval(t *testing.T, workers int) string {
	t.Helper()
	r, err := EvalGrid(3e6, 5, []string{"16-12-8-4", "8-6-4-2"}, Grid{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return r.Render() + r.RenderTab3() + r.RenderFig7()
}

func TestEvalGridDeterministicAcrossWorkers(t *testing.T) {
	want := renderEval(t, 1)
	for _, workers := range []int{2, 8} {
		if got := renderEval(t, workers); got != want {
			t.Errorf("EvalGrid workers=%d output differs from workers=1", workers)
		}
	}
}

func TestTab4GridDeterministicAcrossWorkers(t *testing.T) {
	render := func(workers int) string {
		r, err := Tab4Grid(5, []string{"16-12-8-4"}, Grid{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return r.Render()
	}
	want := render(1)
	if got := render(8); got != want {
		t.Error("Tab4Grid workers=8 output differs from workers=1")
	}
}

func TestFig4GridDeterministicAcrossWorkers(t *testing.T) {
	// Fig4 is the one experiment whose serial harness drew seeds from a
	// shared stream; the grid path pre-draws them in the serial order, so
	// the fan-out must not change a single byte.
	render := func(workers int) string {
		r, err := Fig4Grid(8, 2, 20, Grid{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return r.Render()
	}
	want := render(1)
	if got := render(8); got != want {
		t.Error("Fig4Grid workers=8 output differs from workers=1")
	}
}

func TestGridSharedCacheAcrossExperiments(t *testing.T) {
	// A shared cache turns a repeated evaluation sweep into pure hits —
	// the cmd/experiments binary relies on this for fig5/tab3/fig7.
	cache := sweep.NewCache()
	g := Grid{Workers: 2, Cache: cache}
	if _, err := EvalGrid(3e6, 5, []string{"16-12-8-4"}, g); err != nil {
		t.Fatal(err)
	}
	_, missesFirst := cache.Stats()
	a, err := EvalGrid(3e6, 5, []string{"16-12-8-4"}, g)
	if err != nil {
		t.Fatal(err)
	}
	_, missesSecond := cache.Stats()
	if missesSecond != missesFirst {
		t.Errorf("second identical sweep recomputed: misses %d -> %d", missesFirst, missesSecond)
	}
	b, err := EvalGrid(3e6, 5, []string{"16-12-8-4"}, Grid{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Error("cached sweep differs from a fresh one")
	}
}
