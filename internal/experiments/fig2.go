package experiments

import (
	"fmt"
	"math"
	"sort"

	"mlckpt/internal/heat"
	"mlckpt/internal/jacobi"
	"mlckpt/internal/mpisim"
	"mlckpt/internal/obs"
	"mlckpt/internal/speedup"
	"mlckpt/internal/sweep"
)

// Fig2Curve is one sub-figure: measured speedup samples plus the fitted
// quadratic (Formula 12).
type Fig2Curve struct {
	Name    string
	Samples []speedup.Sample
	Fit     speedup.Quadratic
	R2      float64
}

// Fig2Result reproduces Figure 2: (a) the Heat Distribution speedup curve
// measured by actually running the stencil on the mpisim substrate at
// 1–1024 ranks (both the 1-D row and the paper's 2-D block
// decomposition), and (b) an eddy_uv-style rise-and-fall curve where only
// the rising range is fitted.
type Fig2Result struct {
	Heat  Fig2Curve
	Block Fig2Curve
	Eddy  Fig2Curve
}

// Fig2 measures and fits both curves. maxScale caps the largest rank count
// for the heat runs (the paper uses 1,024; tests pass less).
func Fig2(maxScale int) (Fig2Result, error) {
	return Fig2Grid(maxScale, Grid{})
}

// Fig2Grid is Fig2 with the three curve measurements (heat row, heat
// block, Jacobi) fanned across the sweep engine. Every measurement is
// deterministic, so the parallel and serial paths produce identical
// curves.
func Fig2Grid(maxScale int, g Grid) (Fig2Result, error) {
	if maxScale < 8 {
		maxScale = 8
	}
	var res Fig2Result

	// (a) Heat Distribution, strong scaling on the simulated cluster —
	// the paper's row decomposition plus its 2-D block decomposition.
	cfg := heat.Config{GridX: 2048, GridY: 2048, Iterations: 4, CellTime: 2e-8, TopTemp: 100}
	var scales []int
	for p := 1; p <= maxScale; p *= 2 {
		scales = append(scales, p)
	}
	heatCurve := func(name, kind string, measure func(heat.Config, mpisim.CostModel, []int, obs.Recorder, string) ([]heat.Sample, error)) func() (any, error) {
		// Track derives from the curve's content (decomposition + cap), so
		// Figure 2 traces are identical for every worker count.
		track := fmt.Sprintf("mpisim/heat-%s-%d", kind, maxScale)
		return func() (any, error) {
			measured, err := measure(cfg, mpisim.DefaultCostModel(), scales, g.Obs, track)
			if err != nil {
				return nil, err
			}
			samples := make([]speedup.Sample, len(measured))
			for i, m := range measured {
				samples[i] = speedup.Sample{N: float64(m.Scale), Speedup: m.Speedup}
			}
			fit, err := speedup.FitQuadraticRising(samples)
			if err != nil {
				return nil, err
			}
			return Fig2Curve{
				Name:    name,
				Samples: samples,
				Fit:     fit,
				R2:      speedup.GoodnessOfFit(fit, samples),
			}, nil
		}
	}

	// (b) The eddy_uv stand-in: the paper's Nek5000 curve rises fast and
	// falls past ~100 cores because per-iteration communication does not
	// shrink with the process count. Our distributed Jacobi solver has the
	// same signature (an O(n) allgather every sweep), so we MEASURE its
	// rise-and-fall curve and fit only the rising range, as the paper does.
	eddyCurve := func() (any, error) {
		jcfg := jacobi.Config{N: 192, Iterations: 4, FlopTime: 1.5e-5, Seed: 2014}
		jcost := mpisim.CostModel{Overhead: 2e-4, Latency: 1e-3, ByteTime: 1e-8}
		var jscales []int
		for p := 1; p <= 192; p *= 2 {
			jscales = append(jscales, p)
		}
		jscales = append(jscales, 96, 160, 192)
		sort.Ints(jscales)
		measuredJ, err := jacobi.MeasureSpeedup(jcfg, jcost, jscales)
		if err != nil {
			return nil, err
		}
		var eddy []speedup.Sample
		for _, m := range measuredJ {
			eddy = append(eddy, speedup.Sample{N: float64(m.Scale), Speedup: m.Speedup})
		}
		eddyFit, err := speedup.FitQuadraticRising(eddy)
		if err != nil {
			return nil, err
		}
		return Fig2Curve{
			Name:    "eddy_uv-style (distributed Jacobi, measured; rising-range fit)",
			Samples: eddy,
			Fit:     eddyFit,
			R2:      risingR2(eddyFit, eddy),
		}, nil
	}

	jobs := []sweep.Job{
		{Name: "fig2/heat-row", SolveKey: sweep.MustKey("fig2.curve", "row", maxScale),
			Solve: heatCurve("Heat Distribution, row decomposition (measured on mpisim)", "row", heat.MeasureSpeedupObs)},
		{Name: "fig2/heat-block", SolveKey: sweep.MustKey("fig2.curve", "block", maxScale),
			Solve: heatCurve("Heat Distribution, 2-D block decomposition (measured on mpisim)", "block", heat.MeasureSpeedupBlocksObs)},
		{Name: "fig2/eddy", SolveKey: sweep.MustKey("fig2.curve", "eddy", 0), Solve: eddyCurve},
	}
	outs := sweep.Run(jobs, sweep.Options{
		Workers: g.Workers, Cache: g.Cache, Progress: g.Progress,
		Obs: g.Obs, Clock: g.Clock,
	})
	for _, o := range outs {
		if o.Err != nil {
			return res, fmt.Errorf("%s: %w", o.Name, o.Err)
		}
	}
	res.Heat = outs[0].Solved.(Fig2Curve)
	res.Block = outs[1].Solved.(Fig2Curve)
	res.Eddy = outs[2].Solved.(Fig2Curve)
	return res, nil
}

// risingR2 scores the fit only on the rising range (up to the peak), the
// range the paper fits.
func risingR2(fit speedup.Quadratic, samples []speedup.Sample) float64 {
	peak := 0
	for i, s := range samples {
		if s.Speedup > samples[peak].Speedup {
			peak = i
		}
	}
	return speedup.GoodnessOfFit(fit, samples[:peak+1])
}

// Render prints both curves with their fits.
func (r Fig2Result) Render() string {
	out := ""
	for _, c := range []Fig2Curve{r.Heat, r.Block, r.Eddy} {
		t := NewTable("Figure 2: "+c.Name, "N", "measured", "fit g(N)")
		for _, s := range c.Samples {
			t.Add(s.N, s.Speedup, c.Fit.Speedup(s.N))
		}
		t.Add("κ", c.Fit.Kappa, "")
		t.Add("N*", c.Fit.NStar, "")
		t.Add("R²(rising)", math.Round(c.R2*1e4)/1e4, "")
		out += t.String() + "\n"
	}
	return out
}
