package experiments

import (
	"strconv"

	"mlckpt/internal/failure"
	"mlckpt/internal/fti"
	"mlckpt/internal/heat"
	"mlckpt/internal/model"
	"mlckpt/internal/mpisim"
	"mlckpt/internal/overhead"
	"mlckpt/internal/sim"
	"mlckpt/internal/speedup"
	"mlckpt/internal/stats"
)

// Fig4Point is one interval configuration compared across the two engines.
type Fig4Point struct {
	Intervals [fti.Levels]int
	RealWCT   float64 // mean wall clock of the heat+FTI executions, seconds
	SimWCT    float64 // mean wall clock of the event-driven simulator, seconds
	RelErr    float64
}

// Fig4Result reproduces the simulator-validation study of Figure 4: the
// same application, checkpoint schedule, and failure rates are executed
// both as "real" runs (Heat Distribution + the FTI toolkit on the mpisim
// cluster, the stand-in for the paper's Fusion experiments) and on the
// abstract exascale simulator; the paper reports <4% discrepancy.
type Fig4Result struct {
	Ranks  int
	Spec   string
	Points []Fig4Point
	MaxErr float64
}

// Fig4 sweeps checkpoint-interval configurations on the four levels.
// realRuns/simRuns control the averaging (real runs are the expensive
// side).
func Fig4(ranks, realRuns, simRuns int) (Fig4Result, error) {
	if ranks <= 0 {
		ranks = 32
	}
	if realRuns <= 0 {
		realRuns = 8
	}
	if simRuns <= 0 {
		simRuns = 200
	}
	res := Fig4Result{Ranks: ranks, Spec: "48-24-12-6"}

	hcfg := heat.Config{GridX: 256, GridY: 256, Iterations: 400, CellTime: 4e-5, TopTemp: 100}
	fcfg := fti.DefaultConfig()
	fcfg.GroupSize = 8
	fcfg.Parity = 2
	rates := failure.MustParseRates(res.Spec, float64(ranks))
	cost := mpisim.DefaultCostModel()
	const alloc = 5.0

	// Failure-free calibration run: productive time and per-level
	// checkpoint costs as the simulator will see them.
	baseWall, err := mpisim.Run(ranks, cost, func(r *mpisim.Rank) {
		s, err := heat.NewSolver(r, hcfg)
		if err != nil {
			panic(err)
		}
		s.Run(nil)
	})
	if err != nil {
		return res, err
	}
	perNode := 8 * hcfg.GridX * hcfg.GridY / ranks
	costs := make([]overhead.Cost, fti.Levels)
	recs := make([]overhead.Cost, fti.Levels)
	for lvl := 1; lvl <= fti.Levels; lvl++ {
		c, err := fcfg.Hierarchy.CheckpointTime(lvl, perNode, ranks, fcfg.GroupSize)
		if err != nil {
			return res, err
		}
		r, err := fcfg.Hierarchy.RecoveryTime(lvl, perNode, ranks, fcfg.GroupSize)
		if err != nil {
			return res, err
		}
		costs[lvl-1] = overhead.Constant(c)
		recs[lvl-1] = overhead.Constant(r)
	}
	levels := make([]overhead.Level, fti.Levels)
	for i := range levels {
		levels[i] = overhead.Level{Checkpoint: costs[i], Recovery: recs[i]}
	}
	// A linear speedup model calibrated so that Te/g(ranks) equals the
	// measured failure-free wall clock.
	te := hcfg.SerialTime()
	params := &model.Params{
		Te:      te,
		Speedup: speedup.Linear{Kappa: te / baseWall / float64(ranks), MaxScale: float64(ranks)},
		Levels:  levels,
		Alloc:   alloc,
		Rates:   rates,
	}

	sweeps := [][fti.Levels]int{
		{16, 8, 4, 2},
		{32, 16, 8, 4},
		{64, 32, 16, 8},
		{24, 6, 3, 2},
	}
	rng := stats.NewRNG(4242)
	for _, iv := range sweeps {
		// Real side.
		var realSum float64
		for run := 0; run < realRuns; run++ {
			rr, err := RunReal(RealConfig{
				Ranks:     ranks,
				Heat:      hcfg,
				FTI:       fcfg,
				Intervals: iv,
				Rates:     rates,
				Alloc:     alloc,
				Cost:      cost,
				Seed:      rng.Uint64(),
			})
			if err != nil {
				return res, err
			}
			realSum += rr.WallClock
		}
		realMean := realSum / float64(realRuns)

		// Simulator side.
		x := make([]float64, fti.Levels)
		for i, v := range iv {
			x[i] = float64(v)
		}
		agg, err := sim.Simulate(sim.Config{
			Params: params,
			N:      float64(ranks),
			X:      x,
		}, simRuns, rng.Uint64())
		if err != nil {
			return res, err
		}
		p := Fig4Point{
			Intervals: iv,
			RealWCT:   realMean,
			SimWCT:    agg.WallClock.Mean,
			RelErr:    stats.RelErr(realMean, agg.WallClock.Mean),
		}
		res.Points = append(res.Points, p)
		if p.RelErr > res.MaxErr {
			res.MaxErr = p.RelErr
		}
	}
	return res, nil
}

// Render prints the comparison.
func (r Fig4Result) Render() string {
	t := NewTable("Figure 4: simulator validation against heat+FTI executions ("+r.Spec+" failures/day)",
		"intervals x1-x2-x3-x4", "real WCT (s)", "sim WCT (s)", "rel err")
	for _, p := range r.Points {
		t.Add(fmtIntervals(p.Intervals), p.RealWCT, p.SimWCT, p.RelErr)
	}
	t.Add("max rel err", "", "", r.MaxErr)
	return t.String()
}

func fmtIntervals(iv [fti.Levels]int) string {
	s := ""
	for i, v := range iv {
		if i > 0 {
			s += "-"
		}
		s += strconv.Itoa(v)
	}
	return s
}
