package experiments

import (
	"fmt"
	"strconv"

	"mlckpt/internal/failure"
	"mlckpt/internal/fti"
	"mlckpt/internal/heat"
	"mlckpt/internal/model"
	"mlckpt/internal/mpisim"
	"mlckpt/internal/overhead"
	"mlckpt/internal/sim"
	"mlckpt/internal/speedup"
	"mlckpt/internal/stats"
	"mlckpt/internal/sweep"
)

// Fig4Point is one interval configuration compared across the two engines.
type Fig4Point struct {
	Intervals [fti.Levels]int
	RealWCT   float64 // mean wall clock of the heat+FTI executions, seconds
	SimWCT    float64 // mean wall clock of the event-driven simulator, seconds
	RelErr    float64
}

// Fig4Result reproduces the simulator-validation study of Figure 4: the
// same application, checkpoint schedule, and failure rates are executed
// both as "real" runs (Heat Distribution + the FTI toolkit on the mpisim
// cluster, the stand-in for the paper's Fusion experiments) and on the
// abstract exascale simulator; the paper reports <4% discrepancy.
type Fig4Result struct {
	Ranks  int
	Spec   string
	Points []Fig4Point
	MaxErr float64
}

// fig4SeedRoot seeds the pre-drawn per-job seed schedule; the value is
// pinned by docs_results_reference.txt.
const fig4SeedRoot uint64 = 4242

// Fig4 sweeps checkpoint-interval configurations on the four levels.
// realRuns/simRuns control the averaging (real runs are the expensive
// side).
func Fig4(ranks, realRuns, simRuns int) (Fig4Result, error) {
	return Fig4Grid(ranks, realRuns, simRuns, Grid{})
}

// Fig4Grid is Fig4 with every real execution and every simulator batch
// fanned across the sweep engine. Seeds are pre-drawn in the serial
// order, so results are identical for any worker count.
func Fig4Grid(ranks, realRuns, simRuns int, g Grid) (Fig4Result, error) {
	if ranks <= 0 {
		ranks = 32
	}
	if realRuns <= 0 {
		realRuns = 8
	}
	if simRuns <= 0 {
		simRuns = 200
	}
	res := Fig4Result{Ranks: ranks, Spec: "48-24-12-6"}

	hcfg := heat.Config{GridX: 256, GridY: 256, Iterations: 400, CellTime: 4e-5, TopTemp: 100}
	fcfg := fti.DefaultConfig()
	fcfg.GroupSize = 8
	fcfg.Parity = 2
	rates := failure.MustParseRates(res.Spec, float64(ranks))
	cost := mpisim.DefaultCostModel()
	const alloc = 5.0

	// Failure-free calibration run: productive time and per-level
	// checkpoint costs as the simulator will see them.
	baseWall, err := mpisim.Run(ranks, cost, func(r *mpisim.Rank) {
		s, err := heat.NewSolver(r, hcfg)
		if err != nil {
			panic(err)
		}
		s.Run(nil)
	})
	if err != nil {
		return res, err
	}
	perNode := 8 * hcfg.GridX * hcfg.GridY / ranks
	costs := make([]overhead.Cost, fti.Levels)
	recs := make([]overhead.Cost, fti.Levels)
	for lvl := 1; lvl <= fti.Levels; lvl++ {
		c, err := fcfg.Hierarchy.CheckpointTime(lvl, perNode, ranks, fcfg.GroupSize)
		if err != nil {
			return res, err
		}
		r, err := fcfg.Hierarchy.RecoveryTime(lvl, perNode, ranks, fcfg.GroupSize)
		if err != nil {
			return res, err
		}
		costs[lvl-1] = overhead.Constant(c)
		recs[lvl-1] = overhead.Constant(r)
	}
	levels := make([]overhead.Level, fti.Levels)
	for i := range levels {
		levels[i] = overhead.Level{Checkpoint: costs[i], Recovery: recs[i]}
	}
	// A linear speedup model calibrated so that Te/g(ranks) equals the
	// measured failure-free wall clock.
	te := hcfg.SerialTime()
	params := &model.Params{
		Te:      te,
		Speedup: speedup.Linear{Kappa: te / baseWall / float64(ranks), MaxScale: float64(ranks)},
		Levels:  levels,
		Alloc:   alloc,
		Rates:   rates,
	}

	sweeps := [][fti.Levels]int{
		{16, 8, 4, 2},
		{32, 16, 8, 4},
		{64, 32, 16, 8},
		{24, 6, 3, 2},
	}
	// Pre-draw every seed in the exact order the serial harness consumed
	// them (realRuns real seeds then one simulator seed per point), so the
	// parallel fan-out below stays bit-identical to the historical serial
	// loop and to docs_results_reference.txt.
	rng := stats.NewRNG(fig4SeedRoot)
	realSeeds := make([][]uint64, len(sweeps))
	simSeeds := make([]uint64, len(sweeps))
	for pi := range sweeps {
		realSeeds[pi] = make([]uint64, realRuns)
		for run := range realSeeds[pi] {
			realSeeds[pi][run] = rng.Uint64()
		}
		simSeeds[pi] = rng.Uint64()
	}

	// One job per real execution (the expensive side) plus one simulator
	// batch per point: realRuns×points + points jobs in total.
	var jobs []sweep.Job
	for pi, iv := range sweeps {
		pi, iv := pi, iv
		for run := 0; run < realRuns; run++ {
			run := run
			jobs = append(jobs, sweep.Job{
				Name: fmt.Sprintf("fig4/%s/real-%d", fmtIntervals(iv), run),
				Solve: func() (any, error) {
					rr, err := RunReal(RealConfig{
						Ranks:     ranks,
						Heat:      hcfg,
						FTI:       fcfg,
						Intervals: iv,
						Rates:     rates,
						Alloc:     alloc,
						Cost:      cost,
						Seed:      realSeeds[pi][run],
					})
					if err != nil {
						return nil, err
					}
					return rr.WallClock, nil
				},
			})
		}
		jobs = append(jobs, sweep.Job{
			Name: fmt.Sprintf("fig4/%s/sim", fmtIntervals(iv)),
			Solve: func() (any, error) {
				x := make([]float64, fti.Levels)
				for i, v := range iv {
					x[i] = float64(v)
				}
				agg, err := sim.Simulate(sim.Config{
					Params: params,
					N:      float64(ranks),
					X:      x,
				}, simRuns, simSeeds[pi])
				if err != nil {
					return nil, err
				}
				return agg.WallClock.Mean, nil
			},
		})
	}
	outs := sweep.Run(jobs, sweep.Options{Workers: g.Workers, Cache: g.Cache, Progress: g.Progress})
	for _, o := range outs {
		if o.Err != nil {
			return res, fmt.Errorf("%s: %w", o.Name, o.Err)
		}
	}
	perPoint := realRuns + 1
	for pi, iv := range sweeps {
		var realSum float64
		for run := 0; run < realRuns; run++ {
			realSum += outs[pi*perPoint+run].Solved.(float64)
		}
		realMean := realSum / float64(realRuns)
		simMean := outs[pi*perPoint+realRuns].Solved.(float64)
		p := Fig4Point{
			Intervals: iv,
			RealWCT:   realMean,
			SimWCT:    simMean,
			RelErr:    stats.RelErr(realMean, simMean),
		}
		res.Points = append(res.Points, p)
		if p.RelErr > res.MaxErr {
			res.MaxErr = p.RelErr
		}
	}
	return res, nil
}

// Render prints the comparison.
func (r Fig4Result) Render() string {
	t := NewTable("Figure 4: simulator validation against heat+FTI executions ("+r.Spec+" failures/day)",
		"intervals x1-x2-x3-x4", "real WCT (s)", "sim WCT (s)", "rel err")
	for _, p := range r.Points {
		t.Add(fmtIntervals(p.Intervals), p.RealWCT, p.SimWCT, p.RelErr)
	}
	t.Add("max rel err", "", "", r.MaxErr)
	return t.String()
}

func fmtIntervals(iv [fti.Levels]int) string {
	s := ""
	for i, v := range iv {
		if i > 0 {
			s += "-"
		}
		s += strconv.Itoa(v)
	}
	return s
}
