package experiments

import (
	"fmt"

	"mlckpt/internal/core"
)

// Tab4Row is one (block, case, policy) cell of Table IV.
type Tab4Row struct {
	RecFactor float64
	Spec      string
	Outcome   PolicyOutcome
	WCTDays   float64
	Eff       float64
}

// Tab4Result reproduces Table IV: the constant-PFS-cost study (levels cost
// 50/100/200/2000 s, Te = 2M core-days) with wall-clock time in days and
// efficiency per solution, in two blocks (recovery factor 1.0 and 0.5 —
// the paper prints two blocks without naming the knob; see EXPERIMENTS.md).
type Tab4Result struct {
	Rows []Tab4Row
	Runs int
}

// Tab4 runs the study on all CPUs. runs > 0 overrides the 100-run default.
func Tab4(runs int, specs []string) (Tab4Result, error) {
	return Tab4Grid(runs, specs, Grid{})
}

// Tab4Grid is Tab4 routed through an explicit sweep grid.
func Tab4Grid(runs int, specs []string, g Grid) (Tab4Result, error) {
	if len(specs) == 0 {
		specs = Tab4Cases
	}
	res := Tab4Result{}
	var cells []Cell
	for _, recFactor := range []float64{1.0, 0.5} {
		for _, spec := range specs {
			sc := Tab4Scenario(spec, recFactor)
			if runs > 0 {
				sc.Runs = runs
			}
			res.Runs = sc.Runs
			for _, pol := range core.Policies {
				cells = append(cells, Cell{Scenario: sc, Policy: pol})
			}
		}
	}
	outs, err := RunGrid(cells, g)
	if err != nil {
		return res, fmt.Errorf("tab4: %w", err)
	}
	for i, out := range outs {
		sc := cells[i].Scenario
		res.Rows = append(res.Rows, Tab4Row{
			RecFactor: sc.RecFactor,
			Spec:      sc.Spec,
			Outcome:   out,
			WCTDays:   out.WallClockDays(),
			Eff:       out.Efficiency(sc.TeCoreDays),
		})
	}
	return res, nil
}

// Render prints the table in the paper's two-block layout.
func (r Tab4Result) Render() string {
	t := NewTable(fmt.Sprintf("Table IV: constant PFS cost (50/100/200/2000 s), Te=2m core-days, %d runs", r.Runs),
		"block", "case", "solution", "WCT (days)", "efficiency", "N (k)")
	for _, row := range r.Rows {
		t.Add(fmt.Sprintf("R=%.1fC", row.RecFactor), row.Spec,
			row.Outcome.Policy.String(), row.WCTDays, row.Eff, row.Outcome.Solution.N/1000)
	}
	return t.String()
}
