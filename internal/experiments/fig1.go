package experiments

import (
	"math"

	"mlckpt/internal/failure"
	"mlckpt/internal/model"
	"mlckpt/internal/overhead"
	"mlckpt/internal/speedup"
)

// Fig1Point is one abscissa of the Figure 1 tradeoff plot.
type Fig1Point struct {
	N                float64
	OriginalSpeedup  float64 // g(N), no failures or checkpoints
	EffectiveSpeedup float64 // T_e / E(T_w)(N): with checkpoints + failures
}

// Fig1Result is the Figure 1 reproduction: the conceptual tradeoff between
// execution speedup and checkpoint overhead — the effective performance
// curve peaks at a smaller scale than the original speedup curve.
type Fig1Result struct {
	Points       []Fig1Point
	PeakOriginal float64 // argmax N of the original speedup
	PeakWithCkpt float64 // argmax N of the effective speedup
}

// Fig1 sweeps the scale for a representative single-level configuration
// (κ=0.46, N^(*)=10^5, C=R=5 s, b=0.005) and locates both peaks.
func Fig1(points int) Fig1Result {
	if points < 8 {
		points = 8
	}
	g := speedup.Quadratic{Kappa: 0.46, NStar: 1e5}
	te := 4000.0 * failure.SecondsPerDay
	const b = 0.005
	res := Fig1Result{}
	bestEff, bestOrig := 0.0, 0.0
	for i := 1; i <= points; i++ {
		n := g.NStar * float64(i) / float64(points)
		// Young-style interval at this scale, then the single-level model.
		mu := b * n
		pt := te / g.Speedup(n)
		x := math.Sqrt(mu * pt / (2 * 5))
		if x < 1 {
			x = 1
		}
		wct := model.SingleLevelWallClock(te, g, overhead.Constant(5), overhead.Constant(5), 0, b, x, n)
		p := Fig1Point{
			N:                n,
			OriginalSpeedup:  g.Speedup(n),
			EffectiveSpeedup: te / wct,
		}
		res.Points = append(res.Points, p)
		if p.OriginalSpeedup > bestOrig {
			bestOrig, res.PeakOriginal = p.OriginalSpeedup, n
		}
		if p.EffectiveSpeedup > bestEff {
			bestEff, res.PeakWithCkpt = p.EffectiveSpeedup, n
		}
	}
	return res
}

// Render prints the Figure 1 series.
func (r Fig1Result) Render() string {
	t := NewTable("Figure 1: speedup vs effective performance under the checkpoint model",
		"N", "g(N)", "Te/E(Tw)")
	for _, p := range r.Points {
		t.Add(p.N, p.OriginalSpeedup, p.EffectiveSpeedup)
	}
	t.Add("peak(original)", r.PeakOriginal, "")
	t.Add("peak(with ckpt)", r.PeakWithCkpt, "")
	return t.String()
}
