package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"sync"
)

// TraceSchema identifies the trace JSON format. The file is a standard
// Chrome trace-event JSON object (load it in chrome://tracing or
// https://ui.perfetto.dev) with this extra top-level key, which viewers
// ignore.
const TraceSchema = "mlckpt.trace/v1"

const (
	phaseComplete = "X" // complete event: ts + dur
	phaseInstant  = "i" // instant event
	phaseMeta     = "M" // metadata (thread names)
)

// Trace buffers virtual-time events grouped by track. A track is one
// timeline — a simulated execution, one Algorithm 1 solve, one mpisim
// world — and is only ever appended to by a single computation at a time,
// so per-track order is the deterministic program order. Timestamps are
// virtual seconds (simulator clocks, solver iteration counts), never the
// wall clock, which is what makes an exported trace byte-identical across
// runs and worker counts.
type Trace struct {
	mu     sync.Mutex
	tracks map[string][]traceEvent
}

type traceEvent struct {
	name  string
	phase string
	ts    float64 // virtual seconds
	dur   float64 // virtual seconds (complete events)
	args  map[string]float64
}

// NewTrace returns an empty trace buffer.
func NewTrace() *Trace {
	return &Trace{tracks: map[string][]traceEvent{}}
}

func (t *Trace) add(track, name, phase string, ts, dur float64, args map[string]float64) {
	if math.IsNaN(ts) || math.IsInf(ts, 0) || math.IsNaN(dur) || math.IsInf(dur, 0) {
		return
	}
	var copied map[string]float64
	if len(args) > 0 {
		copied = make(map[string]float64, len(args))
		for k, v := range args {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				copied[k] = v
			}
		}
	}
	t.mu.Lock()
	t.tracks[track] = append(t.tracks[track], traceEvent{name: name, phase: phase, ts: ts, dur: dur, args: copied})
	t.mu.Unlock()
}

// TrackEvent is the exported view of one buffered event, used by trace
// consumers (the waste-attribution engine, cmd/obstool) that walk a track
// in append order. Phase is "X" for complete spans and "i" for instants.
type TrackEvent struct {
	Track string
	Name  string
	Phase string
	TS    float64 // virtual seconds
	Dur   float64 // virtual seconds; 0 for instants
	Args  map[string]float64
}

// Span reports whether the event is a complete span (as opposed to an
// instant).
func (e TrackEvent) Span() bool { return e.Phase == phaseComplete }

// Arg returns a named argument (0 when absent).
func (e TrackEvent) Arg(name string) float64 { return e.Args[name] }

// Events returns a copy of one track's events in append order — the
// deterministic program order of the computation that owned the track.
// Args maps are shared read-only with the buffer; callers must not mutate
// them.
func (t *Trace) Events(track string) []TrackEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	evs := t.tracks[track]
	out := make([]TrackEvent, len(evs))
	for i, ev := range evs {
		out[i] = TrackEvent{Track: track, Name: ev.name, Phase: ev.phase, TS: ev.ts, Dur: ev.dur, Args: ev.args}
	}
	return out
}

// DecodeTraceJSON parses an exported Chrome trace (the MarshalJSON format)
// back into a Trace, so tools can consume artifact files with the same
// accessors they use in-process. Timestamps round-trip through the file's
// microsecond encoding, which costs at most one ulp of virtual time; the
// attribution identity is insensitive to that (see internal/obs/attrib).
func DecodeTraceJSON(data []byte) (*Trace, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var ct chromeTrace
	if err := dec.Decode(&ct); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	if ct.Schema != TraceSchema {
		return nil, fmt.Errorf("%w: schema %q, want %q", ErrInvalid, ct.Schema, TraceSchema)
	}
	names := map[int]string{}
	tr := NewTrace()
	for _, ev := range ct.TraceEvents {
		if ev.Ph == phaseMeta {
			if name, ok := ev.Args["name"].(string); ok && ev.Name == "thread_name" {
				names[ev.TID] = name
			}
			continue
		}
		if ev.Ph != phaseComplete && ev.Ph != phaseInstant {
			return nil, fmt.Errorf("%w: event %q: unknown phase %q", ErrInvalid, ev.Name, ev.Ph)
		}
		track, ok := names[ev.TID]
		if !ok {
			return nil, fmt.Errorf("%w: event %q: tid %d has no thread_name metadata", ErrInvalid, ev.Name, ev.TID)
		}
		var args map[string]float64
		for k, v := range ev.Args {
			f, ok := v.(float64)
			if !ok {
				return nil, fmt.Errorf("%w: event %q: non-numeric arg %q", ErrInvalid, ev.Name, k)
			}
			if args == nil {
				args = make(map[string]float64, len(ev.Args))
			}
			args[k] = f
		}
		dur := 0.0
		if ev.Dur != nil {
			dur = *ev.Dur / 1e6
		}
		tr.add(track, ev.Name, ev.Ph, ev.TS/1e6, dur, args)
	}
	return tr, nil
}

// Len reports the number of buffered events across all tracks.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, evs := range t.tracks {
		n += len(evs)
	}
	return n
}

// Tracks returns the track names, sorted.
func (t *Trace) Tracks() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	names := make([]string, 0, len(t.tracks))
	for name := range t.tracks {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// chromeEvent is one trace-event JSON entry. Field order is fixed by the
// struct; args maps marshal with sorted keys — the whole file is a pure
// function of the buffered events.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds of virtual time
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	Schema          string        `json:"schema"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

// MarshalJSON exports the buffer as Chrome trace-event JSON: tracks are
// sorted by name and assigned thread ids in that order (with thread_name
// metadata records), and each track's events appear in append order.
func (t *Trace) MarshalJSON() ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	names := make([]string, 0, len(t.tracks))
	for name := range t.tracks {
		names = append(names, name)
	}
	sort.Strings(names)

	var events []chromeEvent
	for tid, name := range names {
		events = append(events, chromeEvent{
			Name: "thread_name",
			Ph:   phaseMeta,
			PID:  0,
			TID:  tid,
			Args: map[string]any{"name": name},
		})
	}
	for tid, name := range names {
		for _, ev := range t.tracks[name] {
			ce := chromeEvent{
				Name: ev.name,
				Ph:   ev.phase,
				TS:   ev.ts * 1e6,
				PID:  0,
				TID:  tid,
			}
			if ev.phase == phaseComplete {
				dur := ev.dur * 1e6
				ce.Dur = &dur
			}
			if ev.phase == phaseInstant {
				ce.S = "t"
			}
			if len(ev.args) > 0 {
				args := make(map[string]any, len(ev.args))
				for k, v := range ev.args {
					args[k] = v
				}
				ce.Args = args
			}
			events = append(events, ce)
		}
	}
	if events == nil {
		events = []chromeEvent{}
	}
	b, err := json.MarshalIndent(chromeTrace{
		Schema:          TraceSchema,
		DisplayTimeUnit: "ms",
		TraceEvents:     events,
	}, "", " ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
