// Package obs is the deterministic observability layer: a registry of
// counters/gauges/histograms with stable snapshot ordering, and a trace
// buffer that exports a Chrome trace-event timeline keyed on *virtual*
// time (simulator clocks, solver iteration counts) rather than the wall
// clock, so traces are bit-identical across runs and worker counts.
//
// The package is dependency-free (standard library only) and is safe to
// import from the lint-gated model packages (internal/sim, internal/sweep,
// ...): nothing on the Recorder path reads the wall clock, the
// environment, or the global RNG. The one sanctioned wall-clock entry
// point, WallClock, exists so the CLIs can *inject* a clock into layers
// that are forbidden from reading one themselves (see
// docs/OBSERVABILITY.md); measurements taken through an injected clock
// land in the snapshot's volatile section, never the deterministic one.
//
// Determinism contract. Metrics recorded through the deterministic
// methods (Count, Observe) must be pure functions of the work content:
// integer counters are exact and commutative, and histograms accumulate
// their sums in integer microunits, so concurrent recording from any
// number of workers yields byte-identical snapshots. Anything that
// depends on scheduling or the wall clock (latencies, queue depths,
// cache coalescing) goes through the *Volatile methods and is segregated
// in the snapshot, where tools and tests can zero it (Snapshot.StripVolatile).
package obs

// Recorder is the instrumentation sink threaded through the hot layers
// (optimizer, sweep engine, simulators). A nil Recorder is the universal
// "off switch": instrumented packages normalize with OrNop and every call
// becomes a no-op, so golden outputs and determinism tests are unaffected
// by the plumbing.
//
// Deterministic vs volatile: Count/Observe feed the snapshot's
// deterministic section and must only record content-derived values;
// CountVolatile/ObserveVolatile/MaxVolatile feed the volatile section and
// are the only methods allowed to carry wall-clock or
// scheduling-dependent measurements.
//
// Span/Instant append events to the virtual-time trace. The track names a
// timeline (one writer at a time appends to a given track) and must be
// derived from the work's content — a cache key, a scenario label — never
// from which worker happened to execute it.
type Recorder interface {
	// Count adds delta to the named deterministic counter.
	Count(name string, delta int64)
	// Observe records v into the named deterministic histogram.
	// Non-finite values are dropped.
	Observe(name string, v float64)
	// CountVolatile adds delta to the named volatile counter.
	CountVolatile(name string, delta int64)
	// ObserveVolatile records v into the named volatile histogram.
	ObserveVolatile(name string, v float64)
	// MaxVolatile raises the named volatile gauge to at least v.
	MaxVolatile(name string, v float64)
	// Span appends a complete trace event: [start, start+dur) in virtual
	// seconds on the named track.
	Span(track, name string, start, dur float64, args map[string]float64)
	// Instant appends an instantaneous trace event at ts virtual seconds.
	Instant(track, name string, ts float64, args map[string]float64)
}

// nop is the no-op Recorder behind OrNop.
type nop struct{}

func (nop) Count(string, int64)                                       {}
func (nop) Observe(string, float64)                                   {}
func (nop) CountVolatile(string, int64)                               {}
func (nop) ObserveVolatile(string, float64)                           {}
func (nop) MaxVolatile(string, float64)                               {}
func (nop) Span(string, string, float64, float64, map[string]float64) {}
func (nop) Instant(string, string, float64, map[string]float64)       {}

// Nop returns the shared no-op Recorder.
func Nop() Recorder { return nop{} }

// OrNop normalizes a possibly-nil Recorder: instrumented packages call it
// once on entry and then record unconditionally.
func OrNop(r Recorder) Recorder {
	if r == nil {
		return nop{}
	}
	return r
}

// Collector is the standard Recorder implementation: a Registry for
// metrics plus a Trace for the virtual-time timeline. Both halves are
// exported so callers can snapshot and serialize them independently.
type Collector struct {
	Registry *Registry
	Trace    *Trace
}

// NewCollector returns a Collector with a fresh Registry and Trace.
func NewCollector() *Collector {
	return &Collector{Registry: NewRegistry(), Trace: NewTrace()}
}

// Count implements Recorder.
func (c *Collector) Count(name string, delta int64) { c.Registry.count(name, delta, false) }

// Observe implements Recorder.
func (c *Collector) Observe(name string, v float64) { c.Registry.observe(name, v, false) }

// CountVolatile implements Recorder.
func (c *Collector) CountVolatile(name string, delta int64) { c.Registry.count(name, delta, true) }

// ObserveVolatile implements Recorder.
func (c *Collector) ObserveVolatile(name string, v float64) { c.Registry.observe(name, v, true) }

// MaxVolatile implements Recorder.
func (c *Collector) MaxVolatile(name string, v float64) { c.Registry.gaugeMax(name, v) }

// Span implements Recorder. An empty track means "no timeline assigned"
// (e.g. core.Optimize with no ObsLabel): counters still accumulate, but
// the event is dropped rather than filed under a nameless track.
func (c *Collector) Span(track, name string, start, dur float64, args map[string]float64) {
	if track == "" {
		return
	}
	c.Trace.add(track, name, phaseComplete, start, dur, args)
}

// Instant implements Recorder. Empty tracks are dropped; see Span.
func (c *Collector) Instant(track, name string, ts float64, args map[string]float64) {
	if track == "" {
		return
	}
	c.Trace.add(track, name, phaseInstant, ts, 0, args)
}
