package obs

import (
	"encoding/json"
	"math"
	"sort"
	"sync"
)

// MetricsSchema identifies the metrics snapshot JSON format.
const MetricsSchema = "mlckpt.metrics/v1"

// bucketBounds are the histogram upper bounds (inclusive), one per decade
// from a microsecond to a gigasecond; observations above the last bound
// land in the overflow bucket. A fixed global layout keeps snapshots from
// different runs directly comparable.
var bucketBounds = []float64{
	1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9,
}

// Registry holds named metrics in two sections: deterministic (pure
// functions of the work content — identical for every worker count) and
// volatile (wall-clock or scheduling-dependent). Snapshots order metrics
// by name within each section, so serialized snapshots are byte-stable.
type Registry struct {
	mu       sync.Mutex
	metrics  map[string]*metric // deterministic section
	volatile map[string]*metric // volatile section
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

type metric struct {
	kind metricKind

	counter int64

	gauge    float64
	gaugeSet bool

	count     int64
	sumMicros int64 // Σ round(v·1e6): exact, order-independent
	min, max  float64
	buckets   []int64 // parallel to bucketBounds
	overflow  int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]*metric{}, volatile: map[string]*metric{}}
}

func (r *Registry) section(volatile bool) map[string]*metric {
	if volatile {
		return r.volatile
	}
	return r.metrics
}

func (r *Registry) get(name string, volatile bool, kind metricKind) *metric {
	sec := r.section(volatile)
	m, ok := sec[name]
	if !ok {
		m = &metric{kind: kind, min: math.Inf(1), max: math.Inf(-1)}
		sec[name] = m
	}
	return m
}

func (r *Registry) count(name string, delta int64, volatile bool) {
	r.mu.Lock()
	r.get(name, volatile, kindCounter).counter += delta
	r.mu.Unlock()
}

// maxObsMicros caps one observation's contribution to a histogram sum at
// ±1e15 microunits (1e9 natural units — the top bucket bound). Two hazards
// force the cap: converting an out-of-int64-range float is
// implementation-specific in Go (silent, platform-dependent garbage), and
// an unchecked += can wrap int64 silently. Both would corrupt the
// deterministic section without a trace. A clamped observation instead
// increments the adjacent "<name>_saturated" counter in the same section —
// loud, exact, and order-independent (the clamp is per value, so the
// counter and the sum are commutative over any observation order).
const maxObsMicros = 1e15

// satAddInt64 adds b to a, saturating at the int64 range instead of
// wrapping. Reaching the rails takes ~9.2e3 already-clamped observations,
// far beyond any simulated quantity; the saturation is a backstop, not an
// expected path.
func satAddInt64(a, b int64) int64 {
	s := a + b
	if b > 0 && s < a {
		return math.MaxInt64
	}
	if b < 0 && s > a {
		return math.MinInt64
	}
	return s
}

func (r *Registry) observe(name string, v float64, volatile bool) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	micros := math.Round(v * 1e6)
	saturated := false
	if micros > maxObsMicros {
		micros, saturated = maxObsMicros, true
	} else if micros < -maxObsMicros {
		micros, saturated = -maxObsMicros, true
	}
	r.mu.Lock()
	if saturated {
		r.get(name+"_saturated", volatile, kindCounter).counter++
	}
	m := r.get(name, volatile, kindHistogram)
	m.count++
	m.sumMicros = satAddInt64(m.sumMicros, int64(micros))
	if v < m.min {
		m.min = v
	}
	if v > m.max {
		m.max = v
	}
	if m.buckets == nil {
		m.buckets = make([]int64, len(bucketBounds))
	}
	placed := false
	for i, b := range bucketBounds {
		if v <= b {
			m.buckets[i]++
			placed = true
			break
		}
	}
	if !placed {
		m.overflow++
	}
	r.mu.Unlock()
}

func (r *Registry) gaugeMax(name string, v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	r.mu.Lock()
	m := r.get(name, true, kindGauge)
	if !m.gaugeSet || v > m.gauge {
		m.gauge = v
		m.gaugeSet = true
	}
	r.mu.Unlock()
}

// Bucket is one non-empty histogram bucket: the count of observations at
// or below the upper bound LE (and above the previous bound).
type Bucket struct {
	LE float64 `json:"le"`
	N  int64   `json:"n"`
}

// Metric is one serialized metric. Counter metrics carry Value; gauges
// carry Gauge; histograms carry Count/SumMicros/Min/Max/Buckets/Overflow.
// Histogram sums are reported in integer microunits so they are exact and
// independent of observation order.
type Metric struct {
	Name      string   `json:"name"`
	Type      string   `json:"type"`
	Value     int64    `json:"value,omitempty"`
	Gauge     float64  `json:"gauge,omitempty"`
	Count     int64    `json:"count,omitempty"`
	SumMicros int64    `json:"sum_micros,omitempty"`
	Min       float64  `json:"min,omitempty"`
	Max       float64  `json:"max,omitempty"`
	Buckets   []Bucket `json:"buckets,omitempty"`
	Overflow  int64    `json:"overflow,omitempty"`
}

// Sum returns a histogram metric's sum in natural units.
func (m Metric) Sum() float64 { return float64(m.SumMicros) / 1e6 }

// Mean returns a histogram metric's mean in natural units (0 when empty).
func (m Metric) Mean() float64 {
	if m.Count == 0 {
		return 0
	}
	return m.Sum() / float64(m.Count)
}

// Snapshot is a point-in-time serialization of a Registry.
type Snapshot struct {
	Schema string `json:"schema"`
	// CapturedUnixNS is a wall-clock stamp set by the exporting CLI (the
	// registry itself never reads the clock); 0 when unstamped. Tools
	// comparing snapshots across runs should zero it (StripVolatile).
	CapturedUnixNS int64 `json:"captured_unix_ns"`
	// Metrics is the deterministic section: byte-identical for every
	// worker count given the same work.
	Metrics []Metric `json:"metrics"`
	// Volatile is the wall-clock / scheduling-dependent section.
	Volatile []Metric `json:"volatile"`
}

// Snapshot captures the registry with stable (name-sorted) ordering.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Snapshot{
		Schema:   MetricsSchema,
		Metrics:  exportSection(r.metrics),
		Volatile: exportSection(r.volatile),
	}
}

func exportSection(sec map[string]*metric) []Metric {
	names := make([]string, 0, len(sec))
	for name := range sec {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]Metric, 0, len(names))
	for _, name := range names {
		m := sec[name]
		e := Metric{Name: name}
		switch m.kind {
		case kindCounter:
			e.Type = "counter"
			e.Value = m.counter
		case kindGauge:
			e.Type = "gauge"
			e.Gauge = m.gauge
		case kindHistogram:
			e.Type = "histogram"
			e.Count = m.count
			e.SumMicros = m.sumMicros
			if m.count > 0 {
				e.Min = m.min
				e.Max = m.max
			}
			for i, n := range m.buckets {
				if n > 0 {
					e.Buckets = append(e.Buckets, Bucket{LE: bucketBounds[i], N: n})
				}
			}
			e.Overflow = m.overflow
		}
		out = append(out, e)
	}
	return out
}

// Counter returns the value of a named counter in the deterministic
// section (false when absent or not a counter).
func (s Snapshot) Counter(name string) (int64, bool) {
	for _, m := range s.Metrics {
		if m.Name == name && m.Type == "counter" {
			return m.Value, true
		}
	}
	return 0, false
}

// VolatileCounter returns the value of a named counter in the volatile
// section (false when absent or not a counter).
func (s Snapshot) VolatileCounter(name string) (int64, bool) {
	for _, m := range s.Volatile {
		if m.Name == name && m.Type == "counter" {
			return m.Value, true
		}
	}
	return 0, false
}

// StripVolatile zeroes everything a wall clock or the scheduler can
// influence — the volatile section and the capture stamp — leaving only
// the deterministic metrics. Tools diffing snapshots across runs or
// worker counts call this first.
func (s *Snapshot) StripVolatile() {
	s.CapturedUnixNS = 0
	s.Volatile = []Metric{}
}

// MarshalIndent serializes the snapshot as stable, human-diffable JSON.
func (s Snapshot) MarshalIndent() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
