package obs

import (
	"reflect"
	"testing"
)

func TestTraceEventsAccessor(t *testing.T) {
	tr := NewTrace()
	tr.add("sim/a", "checkpoint", phaseComplete, 1.5, 0.25, map[string]float64{"level": 2})
	tr.add("sim/a", "failure", phaseInstant, 3, 0, map[string]float64{"class": 1})
	tr.add("sim/b", "complete", phaseInstant, 9, 0, nil)

	evs := tr.Events("sim/a")
	want := []TrackEvent{
		{Track: "sim/a", Name: "checkpoint", Phase: "X", TS: 1.5, Dur: 0.25, Args: map[string]float64{"level": 2}},
		{Track: "sim/a", Name: "failure", Phase: "i", TS: 3, Args: map[string]float64{"class": 1}},
	}
	if !reflect.DeepEqual(evs, want) {
		t.Fatalf("Events = %+v, want %+v", evs, want)
	}
	if !evs[0].Span() || evs[1].Span() {
		t.Fatal("Span() misclassifies phases")
	}
	if evs[0].Arg("level") != 2 || evs[0].Arg("absent") != 0 {
		t.Fatal("Arg() lookup broken")
	}
	if got := tr.Events("sim/none"); len(got) != 0 {
		t.Fatalf("unknown track returned %d events", len(got))
	}
}

func TestDecodeTraceJSONRoundTrip(t *testing.T) {
	tr := NewTrace()
	tr.add("sim/a", "checkpoint", phaseComplete, 0.5, 1.25, map[string]float64{"level": 1, "progress": 3})
	tr.add("sim/a", "complete", phaseInstant, 2.5, 0, map[string]float64{"progress": 5})
	tr.add("mpisim/w", "barrier", phaseComplete, 0, 0.125, map[string]float64{"seq": 0})

	data, err := tr.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeTraceJSON(data)
	if err != nil {
		t.Fatalf("DecodeTraceJSON: %v", err)
	}
	if !reflect.DeepEqual(back.Tracks(), tr.Tracks()) {
		t.Fatalf("tracks = %v, want %v", back.Tracks(), tr.Tracks())
	}
	for _, track := range tr.Tracks() {
		if !reflect.DeepEqual(back.Events(track), tr.Events(track)) {
			t.Fatalf("track %s: %+v != %+v", track, back.Events(track), tr.Events(track))
		}
	}
	// Re-encoding the decoded trace must reproduce the file bit-for-bit:
	// the ts*1e6 / 1e6 round-trip is exact for these values, and encoding
	// is a pure function of the buffer.
	again, err := back.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(data) {
		t.Fatal("decode/encode round-trip changed the file")
	}
}

func TestDecodeTraceJSONRejects(t *testing.T) {
	cases := map[string]string{
		"not JSON":      "]",
		"wrong schema":  `{"schema":"other/v1","displayTimeUnit":"ms","traceEvents":[]}`,
		"unknown field": `{"schema":"mlckpt.trace/v1","displayTimeUnit":"ms","traceEvents":[],"extra":1}`,
		"orphan tid": `{"schema":"mlckpt.trace/v1","displayTimeUnit":"ms","traceEvents":[
			{"name":"x","ph":"i","ts":0,"pid":0,"tid":7,"s":"t"}]}`,
		"unknown phase": `{"schema":"mlckpt.trace/v1","displayTimeUnit":"ms","traceEvents":[
			{"name":"thread_name","ph":"M","ts":0,"pid":0,"tid":0,"args":{"name":"a"}},
			{"name":"x","ph":"B","ts":0,"pid":0,"tid":0}]}`,
		"non-numeric arg": `{"schema":"mlckpt.trace/v1","displayTimeUnit":"ms","traceEvents":[
			{"name":"thread_name","ph":"M","ts":0,"pid":0,"tid":0,"args":{"name":"a"}},
			{"name":"x","ph":"i","ts":0,"pid":0,"tid":0,"s":"t","args":{"k":"v"}}]}`,
	}
	for name, doc := range cases {
		if _, err := DecodeTraceJSON([]byte(doc)); err == nil {
			t.Errorf("%s: decoder accepted:\n%s", name, doc)
		}
	}
}
