package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestTraceExportShape(t *testing.T) {
	c := NewCollector()
	c.Span("sim/a", "checkpoint", 10, 2.5, map[string]float64{"level": 3})
	c.Instant("sim/a", "failure", 14, map[string]float64{"class": 1})
	c.Span("opt/b", "outer-1", 0, 30, nil)

	b, err := c.Trace.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateTraceJSON(b); err != nil {
		t.Fatalf("own export rejected: %v", err)
	}
	var doc struct {
		Schema      string `json:"schema"`
		TraceEvents []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			TS   float64         `json:"ts"`
			Dur  float64         `json:"dur"`
			TID  int             `json:"tid"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != TraceSchema {
		t.Fatalf("schema = %q", doc.Schema)
	}
	// 2 thread_name metadata records + 3 events.
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("got %d events", len(doc.TraceEvents))
	}
	// Tracks sorted: opt/b gets tid 0, sim/a tid 1.
	if doc.TraceEvents[0].Name != "thread_name" || doc.TraceEvents[0].TID != 0 ||
		!strings.Contains(string(doc.TraceEvents[0].Args), "opt/b") {
		t.Errorf("first metadata record wrong: %+v", doc.TraceEvents[0])
	}
	var ckpt bool
	for _, ev := range doc.TraceEvents {
		if ev.Name == "checkpoint" {
			ckpt = true
			if ev.TS != 10e6 || ev.Dur != 2.5e6 {
				t.Errorf("checkpoint ts/dur = %g/%g µs", ev.TS, ev.Dur)
			}
		}
	}
	if !ckpt {
		t.Error("checkpoint span missing")
	}
}

// TestTraceDeterminism: tracks written concurrently (each by one
// goroutine, as the engine guarantees) export byte-identically no matter
// how the writers interleave.
func TestTraceDeterminism(t *testing.T) {
	build := func(workers int) []byte {
		c := NewCollector()
		tracks := []string{"t/0", "t/1", "t/2", "t/3", "t/4", "t/5"}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for ti := w; ti < len(tracks); ti += workers {
					for i := 0; i < 20; i++ {
						c.Span(tracks[ti], "step", float64(i), 0.5, map[string]float64{"i": float64(i)})
					}
				}
			}(w)
		}
		wg.Wait()
		b, err := c.Trace.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if !bytes.Equal(build(1), build(6)) {
		t.Fatal("trace export depends on writer scheduling")
	}
}

func TestTraceDropsNonFinite(t *testing.T) {
	c := NewCollector()
	c.Span("t", "bad", math.NaN(), 1, nil)
	c.Instant("t", "bad2", math.Inf(1), nil)
	c.Span("t", "good", 1, math.Inf(-1), nil)
	c.Span("t", "kept", 1, 1, map[string]float64{"ok": 2, "nan": math.NaN()})
	if c.Trace.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Trace.Len())
	}
	b, err := c.Trace.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateTraceJSON(b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "nan") {
		t.Error("non-finite arg survived into export")
	}
}

func TestValidateTraceRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":     "[",
		"wrong schema": `{"schema":"x","displayTimeUnit":"ms","traceEvents":[]}`,
		"bad phase":    `{"schema":"mlckpt.trace/v1","displayTimeUnit":"ms","traceEvents":[{"name":"e","ph":"Q","ts":0,"pid":0,"tid":0}]}`,
		"orphan tid":   `{"schema":"mlckpt.trace/v1","displayTimeUnit":"ms","traceEvents":[{"name":"e","ph":"i","s":"t","ts":0,"pid":0,"tid":3}]}`,
		"negative ts":  `{"schema":"mlckpt.trace/v1","displayTimeUnit":"ms","traceEvents":[{"name":"thread_name","ph":"M","ts":0,"pid":0,"tid":0,"args":{"name":"t"}},{"name":"e","ph":"i","s":"t","ts":-5,"pid":0,"tid":0}]}`,
	}
	for name, doc := range cases {
		if _, err := ValidateTraceJSON([]byte(doc)); err == nil {
			t.Errorf("%s: validation passed, want error", name)
		}
	}
	if _, err := ValidateTraceJSON([]byte(`{"schema":"mlckpt.trace/v1","displayTimeUnit":"ms","traceEvents":[]}`)); err != nil {
		t.Errorf("empty trace rejected: %v", err)
	}
}

func TestWallClockAdvances(t *testing.T) {
	a := WallClock()
	b := WallClock()
	if b < a || a <= 0 {
		t.Fatalf("WallClock not monotone-ish: %g then %g", a, b)
	}
}
