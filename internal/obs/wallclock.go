package obs

import "time"

// WallClock returns the current wall-clock time as seconds since the Unix
// epoch. It is the repository's one sanctioned wall-clock entry point for
// observability: the lint-gated model packages (internal/sim,
// internal/sweep, ...) must never call time.Now themselves — they accept
// an injected `func() float64` clock instead, and the CLIs pass this one.
// Everything measured through an injected clock is recorded via the
// *Volatile Recorder methods, so the deterministic snapshot section and
// the virtual-time trace stay byte-identical across runs.
func WallClock() float64 {
	return float64(time.Now().UnixNano()) / 1e9
}
