package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrInvalid is returned when a serialized snapshot or trace does not
// conform to the exporter schema.
var ErrInvalid = errors.New("obs: invalid document")

// ValidateMetricsJSON checks that data is a well-formed metrics snapshot:
// the exporter schema, known metric types, name-sorted sections, and
// internally consistent histograms. On success it returns the parsed
// snapshot. CI runs it over the artifacts a real experiment produced.
func ValidateMetricsJSON(data []byte) (Snapshot, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Snapshot
	if err := dec.Decode(&s); err != nil {
		return Snapshot{}, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	if s.Schema != MetricsSchema {
		return Snapshot{}, fmt.Errorf("%w: schema %q, want %q", ErrInvalid, s.Schema, MetricsSchema)
	}
	if s.Metrics == nil || s.Volatile == nil {
		return Snapshot{}, fmt.Errorf("%w: missing metrics/volatile section", ErrInvalid)
	}
	for _, sec := range [][]Metric{s.Metrics, s.Volatile} {
		if !sort.SliceIsSorted(sec, func(i, j int) bool { return sec[i].Name < sec[j].Name }) {
			return Snapshot{}, fmt.Errorf("%w: metrics not sorted by name", ErrInvalid)
		}
		for _, m := range sec {
			if err := validateMetric(m); err != nil {
				return Snapshot{}, err
			}
		}
	}
	return s, nil
}

func validateMetric(m Metric) error {
	if m.Name == "" {
		return fmt.Errorf("%w: metric with empty name", ErrInvalid)
	}
	switch m.Type {
	case "counter", "gauge":
	case "histogram":
		total := m.Overflow
		for _, b := range m.Buckets {
			if b.N < 0 {
				return fmt.Errorf("%w: %s: negative bucket count", ErrInvalid, m.Name)
			}
			total += b.N
		}
		if total != m.Count {
			return fmt.Errorf("%w: %s: bucket counts sum to %d, count is %d", ErrInvalid, m.Name, total, m.Count)
		}
		if m.Count > 0 && m.Min > m.Max {
			return fmt.Errorf("%w: %s: min %g > max %g", ErrInvalid, m.Name, m.Min, m.Max)
		}
	default:
		return fmt.Errorf("%w: %s: unknown metric type %q", ErrInvalid, m.Name, m.Type)
	}
	return nil
}

// ValidateTraceJSON checks that data is a well-formed virtual-time trace:
// the exporter schema, known event phases, finite non-negative
// timestamps, and thread_name metadata covering every referenced tid. On
// success it returns the number of non-metadata events.
func ValidateTraceJSON(data []byte) (int, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var t chromeTrace
	if err := dec.Decode(&t); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	if t.Schema != TraceSchema {
		return 0, fmt.Errorf("%w: schema %q, want %q", ErrInvalid, t.Schema, TraceSchema)
	}
	if t.TraceEvents == nil {
		return 0, fmt.Errorf("%w: missing traceEvents", ErrInvalid)
	}
	named := map[int]bool{}
	events := 0
	for _, ev := range t.TraceEvents {
		if ev.Name == "" {
			return 0, fmt.Errorf("%w: event with empty name", ErrInvalid)
		}
		switch ev.Ph {
		case phaseMeta:
			named[ev.TID] = true
			continue
		case phaseComplete, phaseInstant:
		default:
			return 0, fmt.Errorf("%w: event %q: unknown phase %q", ErrInvalid, ev.Name, ev.Ph)
		}
		if math.IsNaN(ev.TS) || math.IsInf(ev.TS, 0) || ev.TS < 0 {
			return 0, fmt.Errorf("%w: event %q: bad timestamp %g", ErrInvalid, ev.Name, ev.TS)
		}
		if ev.Dur != nil && (math.IsNaN(*ev.Dur) || math.IsInf(*ev.Dur, 0) || *ev.Dur < 0) {
			return 0, fmt.Errorf("%w: event %q: bad duration %g", ErrInvalid, ev.Name, *ev.Dur)
		}
		if !named[ev.TID] {
			return 0, fmt.Errorf("%w: event %q: tid %d has no thread_name metadata", ErrInvalid, ev.Name, ev.TID)
		}
		events++
	}
	return events, nil
}
