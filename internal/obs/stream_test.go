package obs

import (
	"reflect"
	"testing"
)

func collectReady(sub *Subscription) []StreamEvent {
	var out []StreamEvent
	for {
		select {
		case ev := <-sub.Events():
			out = append(out, ev)
		default:
			return out
		}
	}
}

func TestStreamRingRotation(t *testing.T) {
	s := NewStream(3)
	for i := 1; i <= 5; i++ {
		s.Count("sim.n", int64(i))
	}
	evs := s.SnapshotEvents()
	if len(evs) != 3 {
		t.Fatalf("ring holds %d events, want 3", len(evs))
	}
	for i, ev := range evs {
		wantSeq := uint64(i + 3) // oldest surviving event is seq 3
		if ev.Seq != wantSeq || ev.Kind != "count" || ev.Delta != int64(wantSeq) {
			t.Fatalf("event %d = %+v, want seq %d delta %d", i, ev, wantSeq, wantSeq)
		}
	}
	if got := s.Seq(); got != 5 {
		t.Fatalf("Seq() = %d, want 5", got)
	}
}

func TestStreamSubscribeReplayAndLive(t *testing.T) {
	s := NewStream(8)
	s.Observe("a", 1)
	s.Observe("a", 2)
	sub := s.Subscribe(16, true)
	defer s.Unsubscribe(sub)
	s.Observe("a", 3)
	evs := collectReady(sub)
	if len(evs) != 3 {
		t.Fatalf("subscriber got %d events, want 3 (2 replayed + 1 live)", len(evs))
	}
	for i, ev := range evs {
		if ev.Kind != "observe" || ev.Value != float64(i+1) {
			t.Fatalf("event %d = %+v, want observe value %d", i, ev, i+1)
		}
	}
}

func TestStreamDropWithMarkerNeverBlocks(t *testing.T) {
	s := NewStream(64)
	sub := s.Subscribe(2, false)
	defer s.Unsubscribe(sub)
	// Publish more than the buffer without draining: must not block, and
	// the loss must surface as a marker once room frees up.
	for i := 1; i <= 6; i++ {
		s.Count("sim.n", int64(i))
	}
	evs := collectReady(sub)
	if len(evs) != 2 || evs[0].Delta != 1 || evs[1].Delta != 2 {
		t.Fatalf("pre-drain events = %+v, want deltas 1,2", evs)
	}
	if s.Dropped() != 4 {
		t.Fatalf("Dropped() = %d, want 4", s.Dropped())
	}
	s.Count("sim.n", 7)
	evs = collectReady(sub)
	if len(evs) != 2 {
		t.Fatalf("post-drain events = %+v, want marker + event", evs)
	}
	if evs[0].Kind != "dropped" || evs[0].Dropped != 4 {
		t.Fatalf("first post-drain event = %+v, want dropped marker with count 4", evs[0])
	}
	if evs[1].Kind != "count" || evs[1].Delta != 7 {
		t.Fatalf("second post-drain event = %+v, want count delta 7", evs[1])
	}
}

func TestStreamUnsubscribeClosesChannel(t *testing.T) {
	s := NewStream(4)
	sub := s.Subscribe(1, false)
	s.Unsubscribe(sub)
	if _, open := <-sub.Events(); open {
		t.Fatal("channel still open after Unsubscribe")
	}
	s.Count("sim.n", 1) // must not panic on the removed subscriber
}

func TestStreamEmptyTrackDropped(t *testing.T) {
	s := NewStream(4)
	s.Span("", "checkpoint", 0, 1, nil)
	s.Instant("", "failure", 0, nil)
	if got := s.Seq(); got != 0 {
		t.Fatalf("empty-track events published: Seq() = %d, want 0", got)
	}
}

func TestTeeFansOutAndCollapses(t *testing.T) {
	if Tee() != Nop() {
		t.Fatal("Tee() should collapse to Nop")
	}
	c := NewCollector()
	if Tee(nil, c) != Recorder(c) {
		t.Fatal("Tee(nil, c) should unwrap to c")
	}

	a, b := NewCollector(), NewCollector()
	r := Tee(a, b)
	r.Count("sim.n", 2)
	r.Observe("sim.d", 0.5)
	r.CountVolatile("v.n", 1)
	r.ObserveVolatile("v.d", 0.25)
	r.MaxVolatile("v.m", 9)
	r.Span("t", "checkpoint", 0, 1, map[string]float64{"level": 2})
	r.Instant("t", "failure", 1, nil)

	sa, sb := a.Registry.Snapshot(), b.Registry.Snapshot()
	if !reflect.DeepEqual(sa, sb) {
		t.Fatalf("teed registries diverge:\n%+v\n%+v", sa, sb)
	}
	if n, _ := sa.Counter("sim.n"); n != 2 {
		t.Fatalf("sim.n = %d, want 2", n)
	}
	ea, eb := a.Trace.Events("t"), b.Trace.Events("t")
	if !reflect.DeepEqual(ea, eb) || len(ea) != 2 {
		t.Fatalf("teed traces diverge or wrong length: %v vs %v", ea, eb)
	}
}

func TestStreamBesideCollectorLeavesArtifactsUnchanged(t *testing.T) {
	run := func(rec Recorder) *Collector {
		c := NewCollector()
		r := Tee(c, rec)
		r.Count("sim.failures", 3)
		r.Observe("sim.wall", 123.5)
		r.Span("sim/x", "checkpoint", 0, 1.5, map[string]float64{"level": 1})
		r.Instant("sim/x", "complete", 2, map[string]float64{"progress": 2})
		return c
	}
	plain := run(nil)
	st := NewStream(0)
	sub := st.Subscribe(4, false) // deliberately too small: forces drops
	defer st.Unsubscribe(sub)
	teed := run(st)

	mp, _ := plain.Registry.Snapshot().MarshalIndent()
	mt, _ := teed.Registry.Snapshot().MarshalIndent()
	if string(mp) != string(mt) {
		t.Fatal("attaching a Stream changed the metrics bytes")
	}
	tp, _ := plain.Trace.MarshalJSON()
	tt, _ := teed.Trace.MarshalJSON()
	if string(tp) != string(tt) {
		t.Fatal("attaching a Stream changed the trace bytes")
	}
	if st.Seq() != 4 {
		t.Fatalf("stream saw %d events, want 4", st.Seq())
	}
}
