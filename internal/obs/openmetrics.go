package obs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// This file renders Registry snapshots in the OpenMetrics text exposition
// format (the Prometheus wire format), for the serving layer's /metrics
// endpoint. The mapping is mechanical and collision-free:
//
//   - deterministic metrics  ->  mlckpt_<name>
//   - volatile metrics       ->  mlckpt_volatile_<name>
//
// with metric names sanitized to the [a-zA-Z_][a-zA-Z0-9_]* charset
// (dots and dashes become underscores). Counters render as a single
// _total sample, gauges as a bare sample, histograms as cumulative
// _bucket{le=...} samples over the registry's fixed decade bounds plus
// _sum/_count. Rendering is a pure function of the snapshot: families are
// name-sorted and floats use the shortest round-trip encoding, so equal
// snapshots produce byte-identical expositions.

// openMetricsContentType is the content type of the rendered exposition.
const openMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// OpenMetricsContentType returns the HTTP content type for OpenMetrics.
func OpenMetricsContentType() string { return openMetricsContentType }

// sanitizeMetricName maps a registry name to the OpenMetrics charset.
func sanitizeMetricName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func formatOMFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// OpenMetrics renders the snapshot as an OpenMetrics text exposition,
// terminated by the mandatory "# EOF" line.
func (s Snapshot) OpenMetrics() []byte {
	var b strings.Builder
	writeSection := func(prefix string, metrics []Metric) {
		for _, m := range metrics {
			fam := prefix + sanitizeMetricName(m.Name)
			switch m.Type {
			case "counter":
				fmt.Fprintf(&b, "# TYPE %s counter\n", fam)
				fmt.Fprintf(&b, "%s_total %s\n", fam, strconv.FormatInt(m.Value, 10))
			case "gauge":
				fmt.Fprintf(&b, "# TYPE %s gauge\n", fam)
				fmt.Fprintf(&b, "%s %s\n", fam, formatOMFloat(m.Gauge))
			case "histogram":
				fmt.Fprintf(&b, "# TYPE %s histogram\n", fam)
				cum := int64(0)
				for _, bk := range m.Buckets {
					cum += bk.N
					fmt.Fprintf(&b, "%s_bucket{le=\"%s\"} %d\n", fam, formatOMFloat(bk.LE), cum)
				}
				cum += m.Overflow
				fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", fam, cum)
				fmt.Fprintf(&b, "%s_sum %s\n", fam, formatOMFloat(m.Sum()))
				fmt.Fprintf(&b, "%s_count %d\n", fam, m.Count)
			}
		}
	}
	writeSection("mlckpt_", s.Metrics)
	writeSection("mlckpt_volatile_", s.Volatile)
	b.WriteString("# EOF\n")
	return []byte(b.String())
}

// ValidateOpenMetrics checks an OpenMetrics text exposition for the
// structural rules the renderer guarantees: every sample belongs to a
// family declared by a preceding # TYPE line of a known type, suffixes
// match the family type (_total for counters; _bucket/_sum/_count for
// histograms, with an le label and non-decreasing cumulative counts ending
// at +Inf), values parse as numbers, and the document ends with # EOF.
// CI's /metrics smoke test runs it against a live serve.
func ValidateOpenMetrics(data []byte) error {
	lines := strings.Split(string(data), "\n")
	if len(lines) < 2 || lines[len(lines)-1] != "" || lines[len(lines)-2] != "# EOF" {
		return fmt.Errorf("%w: exposition must end with \"# EOF\\n\"", ErrInvalid)
	}
	types := map[string]string{}
	lastBucket := map[string]int64{}
	sawInf := map[string]bool{}
	for i, line := range lines[:len(lines)-2] {
		if line == "" {
			return fmt.Errorf("%w: line %d: empty line", ErrInvalid, i+1)
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) == 4 && fields[1] == "TYPE" {
				switch fields[3] {
				case "counter", "gauge", "histogram":
				default:
					return fmt.Errorf("%w: line %d: unknown type %q", ErrInvalid, i+1, fields[3])
				}
				if _, dup := types[fields[2]]; dup {
					return fmt.Errorf("%w: line %d: duplicate family %q", ErrInvalid, i+1, fields[2])
				}
				types[fields[2]] = fields[3]
			}
			continue
		}
		name, labels, value, err := parseOMSample(line)
		if err != nil {
			return fmt.Errorf("%w: line %d: %v", ErrInvalid, i+1, err)
		}
		fam, suffix := name, ""
		for _, s := range []string{"_total", "_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, s) {
				if t, ok := types[strings.TrimSuffix(name, s)]; ok && t != "gauge" {
					fam, suffix = strings.TrimSuffix(name, s), s
					break
				}
			}
		}
		typ, ok := types[fam]
		if !ok {
			return fmt.Errorf("%w: line %d: sample %q has no # TYPE declaration", ErrInvalid, i+1, name)
		}
		switch typ {
		case "counter":
			if suffix != "_total" {
				return fmt.Errorf("%w: line %d: counter sample %q must use the _total suffix", ErrInvalid, i+1, name)
			}
			if value < 0 {
				return fmt.Errorf("%w: line %d: negative counter %q", ErrInvalid, i+1, name)
			}
		case "gauge":
			if suffix != "" {
				return fmt.Errorf("%w: line %d: gauge sample %q carries suffix %q", ErrInvalid, i+1, name, suffix)
			}
		case "histogram":
			switch suffix {
			case "_bucket":
				le, ok := labels["le"]
				if !ok {
					return fmt.Errorf("%w: line %d: histogram bucket %q lacks an le label", ErrInvalid, i+1, name)
				}
				n := int64(value)
				if n < lastBucket[fam] {
					return fmt.Errorf("%w: line %d: %s: cumulative bucket counts decrease", ErrInvalid, i+1, fam)
				}
				lastBucket[fam] = n
				if le == "+Inf" {
					sawInf[fam] = true
				} else if sawInf[fam] {
					return fmt.Errorf("%w: line %d: %s: bucket after le=\"+Inf\"", ErrInvalid, i+1, fam)
				}
			case "_sum", "_count":
				if !sawInf[fam] {
					return fmt.Errorf("%w: line %d: %s: %s before the +Inf bucket", ErrInvalid, i+1, fam, suffix)
				}
			default:
				return fmt.Errorf("%w: line %d: histogram sample %q has suffix %q", ErrInvalid, i+1, name, suffix)
			}
		}
	}
	return nil
}

// parseOMSample splits one sample line into name, labels, and value.
func parseOMSample(line string) (string, map[string]string, float64, error) {
	name := line
	labels := map[string]string{}
	rest := ""
	if i := strings.IndexByte(line, '{'); i >= 0 {
		name = line[:i]
		j := strings.IndexByte(line[i:], '}')
		if j < 0 {
			return "", nil, 0, fmt.Errorf("unterminated label set")
		}
		for _, pair := range strings.Split(line[i+1:i+j], ",") {
			if pair == "" {
				continue
			}
			k, v, ok := strings.Cut(pair, "=")
			if !ok || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				return "", nil, 0, fmt.Errorf("malformed label %q", pair)
			}
			labels[k] = v[1 : len(v)-1]
		}
		rest = strings.TrimSpace(line[i+j+1:])
	} else {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return "", nil, 0, fmt.Errorf("sample needs a name and a value")
		}
		name, rest = fields[0], strings.Join(fields[1:], " ")
	}
	valField := strings.Fields(rest)
	if len(valField) == 0 {
		return "", nil, 0, fmt.Errorf("sample %q has no value", name)
	}
	v, err := strconv.ParseFloat(valField[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("sample %q: bad value %q", name, valField[0])
	}
	if name == "" {
		return "", nil, 0, fmt.Errorf("sample with empty name")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
		}
	}
	return name, labels, v, nil
}

// sortedFamilyNames is a test helper surface: the family names declared in
// an exposition, sorted.
func sortedFamilyNames(data []byte) []string {
	var names []string
	for _, line := range strings.Split(string(data), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 4 && fields[0] == "#" && fields[1] == "TYPE" {
			names = append(names, fields[2])
		}
	}
	sort.Strings(names)
	return names
}
