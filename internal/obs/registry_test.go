package obs

import (
	"bytes"
	"fmt"
	"math"
	"sync"
	"testing"
)

func TestSnapshotStableOrdering(t *testing.T) {
	c := NewCollector()
	c.Count("z.last", 1)
	c.Count("a.first", 2)
	c.Observe("m.middle", 3.5)
	c.CountVolatile("v.counter", 7)
	c.MaxVolatile("v.gauge", 4)

	s := c.Registry.Snapshot()
	if len(s.Metrics) != 3 || len(s.Volatile) != 2 {
		t.Fatalf("sections: %d deterministic, %d volatile", len(s.Metrics), len(s.Volatile))
	}
	for i, want := range []string{"a.first", "m.middle", "z.last"} {
		if s.Metrics[i].Name != want {
			t.Errorf("metrics[%d] = %q, want %q", i, s.Metrics[i].Name, want)
		}
	}
	if v, ok := s.Counter("a.first"); !ok || v != 2 {
		t.Errorf("Counter(a.first) = %d, %v", v, ok)
	}
	if _, ok := s.Counter("v.counter"); ok {
		t.Error("volatile counter visible through deterministic lookup")
	}
}

func TestHistogramExactSums(t *testing.T) {
	c := NewCollector()
	for i := 0; i < 1000; i++ {
		c.Observe("h", 0.1)
	}
	s := c.Registry.Snapshot()
	m := s.Metrics[0]
	if m.Count != 1000 {
		t.Fatalf("count = %d", m.Count)
	}
	// 1000 × round(0.1e6) is exactly 1e8 microunits — no float drift.
	if m.SumMicros != 100000000 {
		t.Errorf("sum_micros = %d, want 100000000", m.SumMicros)
	}
	if m.Min != 0.1 || m.Max != 0.1 {
		t.Errorf("min/max = %g/%g", m.Min, m.Max)
	}
	if m.Mean() != 0.1 {
		t.Errorf("mean = %g", m.Mean())
	}
	total := m.Overflow
	for _, b := range m.Buckets {
		total += b.N
	}
	if total != m.Count {
		t.Errorf("bucket total %d != count %d", total, m.Count)
	}
}

// TestConcurrentDeterminism is the layer's core guarantee: recording the
// same multiset of deterministic observations from 1 or 8 goroutines
// yields byte-identical snapshots.
func TestConcurrentDeterminism(t *testing.T) {
	record := func(workers int) []byte {
		c := NewCollector()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < 960; i += workers {
					c.Count("jobs", 1)
					c.Observe("latency_virtual", float64(i%7)*0.25)
					c.ObserveVolatile("latency_wall", float64(i))
				}
			}(w)
		}
		wg.Wait()
		s := c.Registry.Snapshot()
		s.StripVolatile()
		b, err := s.MarshalIndent()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if !bytes.Equal(record(1), record(8)) {
		t.Fatal("stripped snapshots differ between 1 and 8 recording goroutines")
	}
}

func TestNonFiniteObservationsDropped(t *testing.T) {
	c := NewCollector()
	c.Observe("h", math.Inf(1))
	c.Observe("h", math.NaN())
	c.MaxVolatile("g", math.Inf(1))
	c.Observe("h", 2)
	s := c.Registry.Snapshot()
	if s.Metrics[0].Count != 1 {
		t.Errorf("count = %d, want 1 (non-finite dropped)", s.Metrics[0].Count)
	}
	b, err := s.MarshalIndent()
	if err != nil {
		t.Fatalf("snapshot with non-finite inputs failed to marshal: %v", err)
	}
	if _, err := ValidateMetricsJSON(b); err != nil {
		t.Fatal(err)
	}
}

func TestNopRecorderIsInert(t *testing.T) {
	var r Recorder // nil
	rec := OrNop(r)
	rec.Count("x", 1)
	rec.Observe("x", 1)
	rec.CountVolatile("x", 1)
	rec.ObserveVolatile("x", 1)
	rec.MaxVolatile("x", 1)
	rec.Span("t", "s", 0, 1, map[string]float64{"a": 1})
	rec.Instant("t", "i", 0, nil)
	if rec != OrNop(nil) {
		t.Error("OrNop(nil) not the shared nop")
	}
	c := NewCollector()
	if OrNop(c) != Recorder(c) {
		t.Error("OrNop must pass a non-nil recorder through")
	}
}

func TestValidateMetricsRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":      "{",
		"wrong schema":  `{"schema":"other/v9","captured_unix_ns":0,"metrics":[],"volatile":[]}`,
		"unsorted":      `{"schema":"mlckpt.metrics/v1","captured_unix_ns":0,"metrics":[{"name":"b","type":"counter"},{"name":"a","type":"counter"}],"volatile":[]}`,
		"unknown type":  `{"schema":"mlckpt.metrics/v1","captured_unix_ns":0,"metrics":[{"name":"a","type":"widget"}],"volatile":[]}`,
		"unknown field": `{"schema":"mlckpt.metrics/v1","captured_unix_ns":0,"metrics":[],"volatile":[],"extra":1}`,
		"bad buckets":   `{"schema":"mlckpt.metrics/v1","captured_unix_ns":0,"metrics":[{"name":"a","type":"histogram","count":3,"buckets":[{"le":1,"n":1}]}],"volatile":[]}`,
	}
	for name, doc := range cases {
		if _, err := ValidateMetricsJSON([]byte(doc)); err == nil {
			t.Errorf("%s: validation passed, want error", name)
		}
	}
	good := NewRegistry()
	good.count("ok", 1, false)
	b, err := good.Snapshot().MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateMetricsJSON(b); err != nil {
		t.Errorf("own snapshot rejected: %v", err)
	}
}

func ExampleRegistry_Snapshot() {
	c := NewCollector()
	c.Count("sweep.jobs", 3)
	s := c.Registry.Snapshot()
	v, _ := s.Counter("sweep.jobs")
	fmt.Println(v)
	// Output: 3
}
