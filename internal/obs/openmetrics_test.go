package obs

import (
	"reflect"
	"strings"
	"testing"
)

func TestOpenMetricsRendering(t *testing.T) {
	r := NewRegistry()
	c := &Collector{Registry: r, Trace: NewTrace()}
	c.Count("sim.failures", 4)
	c.Observe("sim.wall-clock", 1.5)
	c.Observe("sim.wall-clock", 0.25)
	c.CountVolatile("runs", 2)
	c.MaxVolatile("workers", 8)

	out := string(r.Snapshot().OpenMetrics())
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Fatalf("missing # EOF terminator:\n%s", out)
	}
	for _, want := range []string{
		"# TYPE mlckpt_sim_failures counter\n",
		"mlckpt_sim_failures_total 4\n",
		"# TYPE mlckpt_sim_wall_clock histogram\n",
		"mlckpt_sim_wall_clock_bucket{le=\"+Inf\"} 2\n",
		"mlckpt_sim_wall_clock_sum 1.75\n",
		"mlckpt_sim_wall_clock_count 2\n",
		"# TYPE mlckpt_volatile_runs counter\n",
		"mlckpt_volatile_runs_total 2\n",
		"# TYPE mlckpt_volatile_workers gauge\n",
		"mlckpt_volatile_workers 8\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if err := ValidateOpenMetrics([]byte(out)); err != nil {
		t.Fatalf("renderer output fails its own validator: %v\n%s", err, out)
	}
}

func TestOpenMetricsHistogramCumulative(t *testing.T) {
	r := NewRegistry()
	r.observe("d", 0.5e-6, false) // first bucket (le=1e-6)
	r.observe("d", 0.05, false)   // le=0.1
	r.observe("d", 2, false)      // le=10
	r.observe("d", 5e9, false)    // beyond the top bound -> overflow
	out := string(r.Snapshot().OpenMetrics())
	for _, want := range []string{
		"mlckpt_d_bucket{le=\"1e-06\"} 1\n",
		"mlckpt_d_bucket{le=\"0.1\"} 2\n",
		"mlckpt_d_bucket{le=\"10\"} 3\n",
		"mlckpt_d_bucket{le=\"+Inf\"} 4\n",
		"mlckpt_d_count 4\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if err := ValidateOpenMetrics([]byte(out)); err != nil {
		t.Fatalf("validator rejects cumulative histogram: %v", err)
	}
}

func TestOpenMetricsDeterministic(t *testing.T) {
	build := func() []byte {
		r := NewRegistry()
		r.count("b", 1, false)
		r.count("a", 2, false)
		r.observe("h", 3, true)
		return r.Snapshot().OpenMetrics()
	}
	if string(build()) != string(build()) {
		t.Fatal("equal registries render different expositions")
	}
	fams := sortedFamilyNames(build())
	want := []string{"mlckpt_a", "mlckpt_b", "mlckpt_volatile_h"}
	if !reflect.DeepEqual(fams, want) {
		t.Fatalf("families = %v, want %v", fams, want)
	}
}

func TestValidateOpenMetricsRejects(t *testing.T) {
	cases := map[string]string{
		"no EOF":               "# TYPE mlckpt_a counter\nmlckpt_a_total 1\n",
		"undeclared sample":    "mlckpt_a_total 1\n# EOF\n",
		"bad type":             "# TYPE mlckpt_a summary\n# EOF\n",
		"counter w/o total":    "# TYPE mlckpt_a counter\nmlckpt_a 1\n# EOF\n",
		"negative counter":     "# TYPE mlckpt_a counter\nmlckpt_a_total -1\n# EOF\n",
		"gauge with suffix":    "# TYPE mlckpt_a gauge\nmlckpt_a_total 1\n# EOF\n",
		"bucket w/o le":        "# TYPE mlckpt_h histogram\nmlckpt_h_bucket 1\n# EOF\n",
		"decreasing buckets":   "# TYPE mlckpt_h histogram\nmlckpt_h_bucket{le=\"1\"} 2\nmlckpt_h_bucket{le=\"+Inf\"} 1\n# EOF\n",
		"sum before +Inf":      "# TYPE mlckpt_h histogram\nmlckpt_h_sum 1\n# EOF\n",
		"duplicate family":     "# TYPE mlckpt_a counter\n# TYPE mlckpt_a counter\nmlckpt_a_total 1\n# EOF\n",
		"non-numeric value":    "# TYPE mlckpt_a gauge\nmlckpt_a zebra\n# EOF\n",
		"bad metric name char": "# TYPE mlckpt_a gauge\nmlckpt-a 1\n# EOF\n",
	}
	for name, doc := range cases {
		if err := ValidateOpenMetrics([]byte(doc)); err == nil {
			t.Errorf("%s: validator accepted:\n%s", name, doc)
		}
	}
}
