package obs

import (
	"math"
	"testing"
)

func TestObserveSaturationIsLoud(t *testing.T) {
	r := NewRegistry()
	rec := &Collector{Registry: r, Trace: NewTrace()}
	rec.Observe("sim.huge", 1e300)
	rec.Observe("sim.huge", 42)

	s := r.Snapshot()
	if n, ok := s.Counter("sim.huge_saturated"); !ok || n != 1 {
		t.Fatalf("sim.huge_saturated = %d (present=%v), want 1", n, ok)
	}
	var m Metric
	for _, c := range s.Metrics {
		if c.Name == "sim.huge" {
			m = c
		}
	}
	wantSum := int64(maxObsMicros) + 42_000_000
	if m.Count != 2 || m.SumMicros != wantSum {
		t.Fatalf("sim.huge count=%d sum=%d, want count=2 sum=%d", m.Count, m.SumMicros, wantSum)
	}
	if m.Overflow != 1 {
		t.Fatalf("overflow = %d, want 1 (1e300 is beyond the top bucket)", m.Overflow)
	}
}

func TestObserveSaturationNegative(t *testing.T) {
	r := NewRegistry()
	(&Collector{Registry: r, Trace: NewTrace()}).Observe("sim.neg", -1e300)
	s := r.Snapshot()
	if n, _ := s.Counter("sim.neg_saturated"); n != 1 {
		t.Fatalf("sim.neg_saturated = %d, want 1", n)
	}
	for _, m := range s.Metrics {
		if m.Name == "sim.neg" && m.SumMicros != -int64(maxObsMicros) {
			t.Fatalf("sum = %d, want %d", m.SumMicros, -int64(maxObsMicros))
		}
	}
}

func TestObserveSaturationOrderIndependent(t *testing.T) {
	vals := []float64{1e300, 3.5, -1e200, 7, 1e18}
	fwd, rev := NewRegistry(), NewRegistry()
	for _, v := range vals {
		fwd.observe("x", v, false)
	}
	for i := len(vals) - 1; i >= 0; i-- {
		rev.observe("x", vals[i], false)
	}
	a, _ := fwd.Snapshot().MarshalIndent()
	b, _ := rev.Snapshot().MarshalIndent()
	if string(a) != string(b) {
		t.Fatalf("saturation accounting is order-dependent:\n%s\nvs\n%s", a, b)
	}
	if n, _ := fwd.Snapshot().Counter("x_saturated"); n != 3 {
		t.Fatalf("x_saturated = %d, want 3 (1e300, -1e200, 1e18 all clamp)", n)
	}
}

func TestSatAddInt64Rails(t *testing.T) {
	if got := satAddInt64(math.MaxInt64-1, 5); got != math.MaxInt64 {
		t.Fatalf("positive rail: got %d", got)
	}
	if got := satAddInt64(math.MinInt64+1, -5); got != math.MinInt64 {
		t.Fatalf("negative rail: got %d", got)
	}
	if got := satAddInt64(10, -3); got != 7 {
		t.Fatalf("plain add: got %d", got)
	}
}

func TestObserveInRangeUnaffected(t *testing.T) {
	r := NewRegistry()
	r.observe("y", 123.456789, false)
	s := r.Snapshot()
	if _, ok := s.Counter("y_saturated"); ok {
		t.Fatal("in-range observation created a _saturated counter")
	}
	for _, m := range s.Metrics {
		if m.Name == "y" && m.SumMicros != 123456789 {
			t.Fatalf("sum = %d, want 123456789", m.SumMicros)
		}
	}
}
