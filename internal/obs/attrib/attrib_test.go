package attrib

import (
	"math"
	"strings"
	"testing"

	"mlckpt/internal/failure"
	"mlckpt/internal/model"
	"mlckpt/internal/obs"
	"mlckpt/internal/overhead"
	"mlckpt/internal/sim"
	"mlckpt/internal/speedup"
	"mlckpt/internal/stats"
)

// testParams mirrors the sim package's small fast scenario: 100 core-days
// of work, ideal scale 10k cores, four levels with modest constant costs.
func testParams(spec string) *model.Params {
	return &model.Params{
		Te:      100 * failure.SecondsPerDay,
		Speedup: speedup.Quadratic{Kappa: 0.5, NStar: 1e4},
		Levels: overhead.SymmetricLevels([]overhead.Cost{
			overhead.Constant(1),
			overhead.Constant(3),
			overhead.Constant(5),
			overhead.Constant(20),
		}, 0.5),
		Alloc: 10,
		Rates: failure.MustParseRates(spec, 1e4),
	}
}

func runTraced(t *testing.T, spec string, seed uint64, mutate func(*sim.Config)) (*obs.Collector, sim.Result) {
	t.Helper()
	col := obs.NewCollector()
	cfg := sim.Config{
		Params:       testParams(spec),
		N:            5000,
		X:            []float64{40, 20, 10, 5},
		Obs:          col,
		ObsTrack:     "sim/attrib-test",
		ObsMaxEvents: -1,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	res, err := sim.Run(cfg, stats.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return col, res
}

func TestIdentityExactOnFailingRun(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		col, res := runTraced(t, "40-20-10-5", seed, func(c *sim.Config) {
			c.JitterRatio = 0.3
		})
		rep, err := FromTrace(col.Trace, "sim/attrib-test")
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !rep.Exact {
			t.Fatalf("seed %d: identity not exact (clipped %g)", seed, rep.Clipped)
		}
		if rep.WallClock != res.WallClock {
			t.Fatalf("seed %d: wall %g != sim %g", seed, rep.WallClock, res.WallClock)
		}
		if rep.Clipped > 1e-6 {
			t.Fatalf("seed %d: clipped %g beyond rounding scale", seed, rep.Clipped)
		}
		// The coarse portions must agree with the simulator's own
		// accounting: same buckets, independently tallied.
		p := rep.Portions()
		tol := 1e-6 * res.WallClock
		for _, c := range []struct {
			name       string
			got, want float64
		}{
			{"productive", p.Productive, res.Productive},
			{"checkpoint", p.Checkpoint, res.Checkpoint},
			{"restart", p.Restart, res.Restart},
			{"rollback", p.Rollback, res.Rollback},
		} {
			if math.Abs(c.got-c.want) > tol {
				t.Errorf("seed %d: %s = %.9g, sim says %.9g (tol %g)", seed, c.name, c.got, c.want, tol)
			}
		}
		if rep.TotalFailures() != res.TotalFailures() {
			t.Errorf("seed %d: %d failures attributed, sim saw %d", seed, rep.TotalFailures(), res.TotalFailures())
		}
	}
}

func TestZeroFailurePropertyOnlyWorkAndCheckpoints(t *testing.T) {
	col, res := runTraced(t, "0-0-0-0", 3, nil)
	rep, err := FromTrace(col.Trace, "sim/attrib-test")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Exact {
		t.Fatal("identity not exact on failure-free run")
	}
	if rep.Redo != 0 || rep.CkptRedo != 0 || rep.CkptAborted != 0 || rep.CkptAbortedRedo != 0 ||
		rep.RecoveryAborted != 0 || rep.Alloc != 0 || rep.Detection != 0 || len(rep.Recovery) != 0 {
		t.Fatalf("failure-free run has waste buckets: %+v", rep)
	}
	if rep.TotalFailures() != 0 || rep.Absorbed != 0 {
		t.Fatalf("failure-free run attributed failures: %+v", rep.Failures)
	}
	if rep.Work <= 0 || len(rep.Ckpt) == 0 {
		t.Fatalf("work %g, ckpt levels %d — expected both nonzero", rep.Work, len(rep.Ckpt))
	}
	ckptSum := 0.0
	for _, lvl := range sortedKeys(rep.Ckpt) {
		ckptSum += rep.Ckpt[lvl]
	}
	if math.Abs(rep.Work-res.Productive) > 1e-9 || math.Abs(ckptSum-res.Checkpoint) > 1e-9 {
		t.Fatalf("work %g / ckpt %g, sim says %g / %g", rep.Work, ckptSum, res.Productive, res.Checkpoint)
	}
}

func TestSilentCorruptionFillsDetection(t *testing.T) {
	var rep *Report
	for seed := uint64(1); seed <= 50; seed++ {
		col, res := runTraced(t, "40-20-10-5", seed, func(c *sim.Config) {
			c.SilentCorruptionProb = 0.3
		})
		if res.SilentDetected == 0 {
			continue
		}
		r, err := FromTrace(col.Trace, "sim/attrib-test")
		if err != nil {
			t.Fatal(err)
		}
		rep = r
		break
	}
	if rep == nil {
		t.Fatal("no seed produced a detected silent corruption")
	}
	if rep.Detection <= 0 {
		t.Fatalf("detection bucket empty despite detected corruption: %+v", rep)
	}
	if !rep.Exact {
		t.Fatal("identity not exact with silent-detect spans")
	}
}

func TestCorrelatedAbsorptionCounted(t *testing.T) {
	var rep *Report
	for seed := uint64(1); seed <= 80; seed++ {
		col, res := runTraced(t, "200-100-50-25", seed, func(c *sim.Config) {
			c.CorrelationWindow = 120
		})
		if res.Absorbed == 0 {
			continue
		}
		r, err := FromTrace(col.Trace, "sim/attrib-test")
		if err != nil {
			t.Fatal(err)
		}
		if r.Absorbed != res.Absorbed {
			t.Fatalf("seed %d: absorbed %d, sim says %d", seed, r.Absorbed, res.Absorbed)
		}
		rep = r
		break
	}
	if rep == nil {
		t.Fatal("no seed produced an absorbed failure")
	}
	if !rep.Exact {
		t.Fatal("identity not exact with absorbed-failure instants")
	}
}

func TestJSONRoundTripPreservesReport(t *testing.T) {
	col, _ := runTraced(t, "40-20-10-5", 11, func(c *sim.Config) { c.JitterRatio = 0.3 })
	direct, err := FromTrace(col.Trace, "sim/attrib-test")
	if err != nil {
		t.Fatal(err)
	}
	data, err := col.Trace.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := obs.DecodeTraceJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	fromFile, err := FromTrace(decoded, "sim/attrib-test")
	if err != nil {
		t.Fatal(err)
	}
	if !fromFile.Exact {
		t.Fatal("identity lost through the JSON round-trip")
	}
	if direct.Render() != fromFile.Render() {
		t.Fatalf("report changed through the JSON round-trip:\n%s\nvs\n%s", direct.Render(), fromFile.Render())
	}
}

func TestTruncatedTraceRefused(t *testing.T) {
	col, _ := runTraced(t, "40-20-10-5", 5, func(c *sim.Config) { c.ObsMaxEvents = 10 })
	if _, err := FromTrace(col.Trace, "sim/attrib-test"); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("truncated trace accepted: %v", err)
	}
}

func TestForeignTrackRefused(t *testing.T) {
	col := obs.NewCollector()
	col.Span("mpisim/w", "barrier", 0, 1, map[string]float64{"seq": 0})
	if _, err := FromTrace(col.Trace, "mpisim/w"); err == nil {
		t.Fatal("mpisim track accepted as a run track")
	}
	if _, err := FromTrace(col.Trace, "absent"); err == nil {
		t.Fatal("empty track accepted")
	}
}

func TestCompareModelCloseOnGentleScenario(t *testing.T) {
	// Average many seeds so the measured fractions approach Formula 21's
	// expectation; on a gentle failure scenario the per-portion fractions
	// should land within a few percent.
	p := testParams("40-20-10-5")
	x := []float64{40, 20, 10, 5}
	agg := model.Portions{}
	wall := 0.0
	const runs = 40
	for seed := uint64(1); seed <= runs; seed++ {
		col, _ := runTraced(t, "40-20-10-5", seed, nil)
		rep, err := FromTrace(col.Trace, "sim/attrib-test")
		if err != nil {
			t.Fatal(err)
		}
		pr := rep.Portions()
		agg.Productive += pr.Productive
		agg.Checkpoint += pr.Checkpoint
		agg.Restart += pr.Restart
		agg.Rollback += pr.Rollback
		wall += rep.WallClock
	}
	mean := &Report{WallClock: wall, Work: agg.Productive}
	mc, err := mean.CompareModel(p, x, 5000)
	if err != nil {
		t.Fatal(err)
	}
	measured := model.Portions{
		Productive: agg.Productive / wall,
		Checkpoint: agg.Checkpoint / wall,
		Restart:    agg.Restart / wall,
		Rollback:   agg.Rollback / wall,
	}
	for _, c := range []struct {
		name           string
		got, predicted float64
	}{
		{"productive", measured.Productive, mc.Predicted.Productive},
		{"checkpoint", measured.Checkpoint, mc.Predicted.Checkpoint},
		{"restart", measured.Restart, mc.Predicted.Restart},
		{"rollback", measured.Rollback, mc.Predicted.Rollback},
	} {
		if math.Abs(c.got-c.predicted) > 0.05 {
			t.Errorf("%s: measured fraction %.4f vs model %.4f (tol 0.05)", c.name, c.got, c.predicted)
		}
	}
}
