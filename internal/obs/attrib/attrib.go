// Package attrib is the waste-attribution engine: it decomposes a
// simulated (or fault-injected real) run's virtual wall clock into the
// paper's E(T_w) buckets — productive work, per-level checkpoint overhead
// C_i, per-level recovery R_i, re-executed lost work, and detection
// latency — from the spans the run emitted on its obs trace track
// (Formula 21 measured instead of modeled).
//
// The engine walks one track's events in append order, which is the
// deterministic program order of the simulator: event start times are
// non-decreasing, and the wall clock advances either inside an emitted
// span (checkpoint, recovery, ...) or in the gaps between spans
// (productive or re-executed work). All accounting is exact rational
// arithmetic (math/big.Rat) over the trace's float64 timestamps, so the
// buckets sum to the run's wall clock EXACTLY — not approximately — and
// the whole report is a pure function of the trace bytes: byte-identical
// across worker counts and across the mpisim event/goroutine engines,
// because the traces themselves are.
//
// One subtlety makes the exact identity possible: the simulator advances
// its float64 clock with `wall += dur`, and fl(wall+dur) can round below
// wall+dur, so a span's rational duration may overhang the next event's
// start by an ulp. The engine charges min(dur, next_start − cursor) to the
// span's bucket and records the overhang in Report.Clipped; an overhang
// beyond ClipTolerance means the trace is structurally broken (overlapping
// spans), not rounded, and attribution fails loudly.
package attrib

import (
	"errors"
	"fmt"
	"math"
	"math/big"
	"sort"
	"strings"

	"mlckpt/internal/model"
	"mlckpt/internal/obs"
)

// ErrAttrib is wrapped by all attribution failures.
var ErrAttrib = errors.New("attrib: trace not attributable")

// ErrTruncated marks a track cut short by the run's ObsMaxEvents budget:
// the buckets cannot reach the wall clock, so attribution refuses.
var ErrTruncated = fmt.Errorf("%w: trace truncated (raise sim.Config.ObsMaxEvents)", ErrAttrib)

// ErrModelDiverged marks a configuration whose Formula 21 fixed point does
// not exist: the failure feedback exceeds unity, so E(T_w) is infinite
// even though individual runs may still complete. The measured attribution
// stands on its own; only the model comparison is unavailable.
var ErrModelDiverged = fmt.Errorf("%w: model wall clock diverged (no finite E(T_w) fixed point)", ErrAttrib)

// ClipTolerance is the largest span-over-next-event overhang (seconds)
// still explained by float64 clock rounding. Beyond it the track has
// genuinely overlapping spans.
const ClipTolerance = 1e-3

// Report is the decomposition of one run's wall clock. All buckets are in
// virtual (simulated) seconds; level keys are 1-based like the paper's
// C_i/R_i, with Recovery[0] meaning restart-from-scratch. The exact
// rational identity Σ buckets == WallClock is checked during construction;
// the float64 fields shown here are the rounded views of those rationals.
type Report struct {
	Track     string  `json:"track"`
	WallClock float64 `json:"wall_clock"` // the run's complete timestamp

	Work float64 `json:"work"` // first-time productive work
	Redo float64 `json:"redo"` // re-executed lost work

	Ckpt            map[int]float64 `json:"ckpt"`      // first-time checkpoints per level
	CkptRedo        float64         `json:"ckpt_redo"` // re-taken checkpoints after rollback
	CkptAborted     float64         `json:"ckpt_aborted"`
	CkptAbortedRedo float64         `json:"ckpt_aborted_redo"`

	Recovery        map[int]float64 `json:"recovery"` // per restore level; 0 = scratch
	RecoveryAborted float64         `json:"recovery_aborted"`
	Alloc           float64         `json:"alloc"`     // allocation spans (real runs)
	Detection       float64         `json:"detection"` // silent-error detection latency

	Failures map[int]int `json:"failures"` // failures per class (1-based)
	Absorbed int         `json:"absorbed"` // correlated-window merged failures

	Complete bool    `json:"complete"` // a "complete" instant closed the track
	Clipped  float64 `json:"clipped"`  // Σ rounding overhang absorbed (diagnostic)
	Exact    bool    `json:"exact"`    // rational identity Σ buckets == WallClock held
}

// rat converts a trace float64 to an exact rational.
func rat(v float64) *big.Rat { return new(big.Rat).SetFloat64(v) }

// builder accumulates the rational buckets while walking a track.
type builder struct {
	cursor   *big.Rat // how much wall clock the buckets explain so far
	work     *big.Rat
	redo     *big.Rat
	buckets  map[string]*big.Rat // keyed bucket name, e.g. "ckpt/2"
	progress *big.Rat            // resynced execution progress (parallel seconds)
	furthest *big.Rat            // furthest progress ever resynced
	clipped  *big.Rat
	rep      *Report
}

func newBuilder(track string) *builder {
	return &builder{
		cursor:   new(big.Rat),
		work:     new(big.Rat),
		redo:     new(big.Rat),
		buckets:  map[string]*big.Rat{},
		progress: new(big.Rat),
		furthest: new(big.Rat),
		clipped:  new(big.Rat),
		rep: &Report{
			Track:    track,
			Ckpt:     map[int]float64{},
			Recovery: map[int]float64{},
			Failures: map[int]int{},
		},
	}
}

func (b *builder) charge(key string, amount *big.Rat) {
	r, ok := b.buckets[key]
	if !ok {
		r = new(big.Rat)
		b.buckets[key] = r
	}
	r.Add(r, amount)
	b.cursor.Add(b.cursor, amount)
}

// gap attributes un-spanned wall clock [cursor, upTo) to work or redo:
// the slice below the furthest progress ever reached is re-execution.
func (b *builder) gap(upTo *big.Rat) error {
	d := new(big.Rat).Sub(upTo, b.cursor)
	if d.Sign() < 0 {
		return fmt.Errorf("%w: event at %s starts before the clock cursor %s",
			ErrAttrib, upTo.FloatString(9), b.cursor.FloatString(9))
	}
	if d.Sign() == 0 {
		return nil
	}
	redoPart := new(big.Rat).Sub(b.furthest, b.progress)
	if redoPart.Sign() < 0 {
		redoPart.SetInt64(0)
	}
	if redoPart.Cmp(d) > 0 {
		redoPart.Set(d)
	}
	b.redo.Add(b.redo, redoPart)
	b.work.Add(b.work, new(big.Rat).Sub(d, redoPart))
	b.progress.Add(b.progress, d)
	b.cursor.Set(upTo)
	return nil
}

// resync pins progress to an authoritative value carried on an event.
func (b *builder) resync(v float64) {
	b.progress = rat(v)
	if b.progress.Cmp(b.furthest) > 0 {
		b.furthest.Set(b.progress)
	}
}

// span charges a span's duration, clipped to the next cursor-advancing
// event's start (float rounding absorbs at most ClipTolerance).
func (b *builder) span(ev obs.TrackEvent, key string, nextStart *big.Rat) error {
	dur := rat(ev.Dur)
	if dur.Sign() < 0 {
		return fmt.Errorf("%w: span %q at %g has negative duration %g", ErrAttrib, ev.Name, ev.TS, ev.Dur)
	}
	avail := new(big.Rat).Sub(nextStart, b.cursor)
	if dur.Cmp(avail) > 0 {
		clip := new(big.Rat).Sub(dur, avail)
		if f, _ := clip.Float64(); f > ClipTolerance {
			return fmt.Errorf("%w: span %q at %g overlaps the next event by %g s (beyond rounding)",
				ErrAttrib, ev.Name, ev.TS, f)
		}
		b.clipped.Add(b.clipped, clip)
		dur = avail
	}
	b.charge(key, dur)
	return nil
}

// FromTrace attributes one track of a trace. The track must be a complete
// run track (simulator or fault-injected real run); solver and mpisim
// tracks are rejected with an error identifying the unrecognized event.
func FromTrace(tr *obs.Trace, track string) (*Report, error) {
	evs := tr.Events(track)
	if len(evs) == 0 {
		return nil, fmt.Errorf("%w: track %q has no events", ErrAttrib, track)
	}
	b := newBuilder(track)
	real := false
	for _, ev := range evs {
		if ev.Name == "segment" {
			real = true
			break
		}
	}

	// nextStart returns the start of the next cursor-advancing event,
	// skipping instants that deliberately carry off-cursor timestamps.
	nextStart := func(k int) (*big.Rat, error) {
		for _, ev := range evs[k+1:] {
			if ev.Name == "failure-absorbed" {
				continue
			}
			return rat(ev.TS), nil
		}
		return nil, fmt.Errorf("%w: span %q at %g is the track's last event (no \"complete\")",
			ErrAttrib, evs[k].Name, evs[k].TS)
	}

	for k, ev := range evs {
		switch ev.Name {
		case "trace-truncated":
			return nil, ErrTruncated
		case "failure-absorbed":
			// Timestamped at the absorbed event's own arrival, which may
			// lie beyond the current wall clock: no cursor movement.
			b.rep.Absorbed++
			continue
		}
		if err := b.gap(rat(ev.TS)); err != nil {
			return nil, err
		}
		var ns *big.Rat
		if ev.Span() {
			var err error
			if ns, err = nextStart(k); err != nil {
				return nil, err
			}
		}
		var err error
		if real {
			err = b.realEvent(ev, ns)
		} else {
			err = b.simEvent(ev, ns)
		}
		if err != nil {
			return nil, err
		}
	}
	if !b.rep.Complete {
		return nil, fmt.Errorf("%w: track %q never completed", ErrAttrib, track)
	}
	b.finish()
	return b.rep, nil
}

// simEvent handles the internal/sim vocabulary.
func (b *builder) simEvent(ev obs.TrackEvent, ns *big.Rat) error {
	switch ev.Name {
	case "checkpoint":
		b.resync(ev.Arg("progress"))
		key := fmt.Sprintf("ckpt/%d", int(ev.Arg("level")))
		if ev.Arg("redo") != 0 {
			key = "ckpt-redo"
		}
		return b.span(ev, key, ns)
	case "checkpoint-abort":
		b.resync(ev.Arg("progress"))
		key := "ckpt-aborted"
		if ev.Arg("redo") != 0 {
			key = "ckpt-aborted-redo"
		}
		return b.span(ev, key, ns)
	case "recovery":
		return b.span(ev, fmt.Sprintf("recovery/%d", int(ev.Arg("restore_level"))), ns)
	case "recovery-abort":
		return b.span(ev, "recovery-aborted", ns)
	case "silent-detect":
		return b.span(ev, "detection", ns)
	case "failure":
		b.rep.Failures[int(ev.Arg("class"))]++
		b.resync(ev.Arg("progress"))
		return nil
	case "rollback":
		b.resync(ev.Arg("to"))
		return nil
	case "complete":
		b.rep.Complete = true
		b.rep.WallClock = ev.TS
		b.resync(ev.Arg("progress"))
		return nil
	}
	return fmt.Errorf("%w: unrecognized sim event %q at %g", ErrAttrib, ev.Name, ev.TS)
}

// realEvent handles the fault-injected real-run vocabulary emitted by
// internal/experiments (fti + mpisim underneath). A segment span carries
// its own measured sub-splits as args; the work part is the exact
// remainder, so the identity telescopes the same way.
func (b *builder) realEvent(ev obs.TrackEvent, ns *big.Rat) error {
	switch ev.Name {
	case "segment":
		dur := rat(ev.Dur)
		avail := new(big.Rat).Sub(ns, b.cursor)
		if dur.Cmp(avail) > 0 {
			clip := new(big.Rat).Sub(dur, avail)
			if f, _ := clip.Float64(); f > ClipTolerance {
				return fmt.Errorf("%w: segment at %g overlaps the next event by %g s", ErrAttrib, ev.TS, f)
			}
			b.clipped.Add(b.clipped, clip)
			dur = avail
		}
		// The measured sub-splits (redo, per-level checkpoint seconds, aux
		// overheads) are charged against a remaining budget of the span's
		// duration; the exact remainder is work. Cumulative clipping keeps
		// the cursor advance equal to dur, preserving the telescoped
		// identity even when the float sub-splits overhang by rounding.
		remaining := new(big.Rat).Set(dur)
		chargePart := func(key string, v float64) error {
			if v == 0 {
				return nil
			}
			r := rat(v)
			if r.Sign() < 0 {
				return fmt.Errorf("%w: segment at %g: negative %s %g", ErrAttrib, ev.TS, key, v)
			}
			if r.Cmp(remaining) > 0 {
				clip := new(big.Rat).Sub(r, remaining)
				if f, _ := clip.Float64(); f > ClipTolerance {
					return fmt.Errorf("%w: segment at %g: %s exceeds the remaining duration by %g s",
						ErrAttrib, ev.TS, key, f)
				}
				b.clipped.Add(b.clipped, clip)
				r.Set(remaining)
			}
			b.charge(key, r)
			remaining.Sub(remaining, r)
			return nil
		}
		if err := chargePart("redo-part", ev.Arg("redo")); err != nil {
			return err
		}
		// Sort the ckpt_l* args for a deterministic charge order (the clip,
		// if any, must land on the same part every time).
		var ckptArgs []string
		for k := range ev.Args {
			if strings.HasPrefix(k, "ckpt_l") {
				ckptArgs = append(ckptArgs, k)
			}
		}
		sort.Strings(ckptArgs)
		for _, k := range ckptArgs {
			var lvl int
			if _, err := fmt.Sscanf(k, "ckpt_l%d", &lvl); err != nil {
				return fmt.Errorf("%w: segment at %g: bad arg %q", ErrAttrib, ev.TS, k)
			}
			if err := chargePart(fmt.Sprintf("ckpt/%d", lvl), ev.Args[k]); err != nil {
				return err
			}
		}
		if err := chargePart("ckpt-aborted", ev.Arg("aux")); err != nil {
			return err
		}
		b.charge("work", remaining)
		return nil
	case "alloc":
		return b.span(ev, "alloc", ns)
	case "recovery":
		if ev.Arg("ok") != 0 {
			return b.span(ev, fmt.Sprintf("recovery/%d", int(ev.Arg("level"))), ns)
		}
		return b.span(ev, "detection", ns)
	case "failure":
		b.rep.Failures[int(ev.Arg("class"))]++
		return nil
	case "complete":
		b.rep.Complete = true
		b.rep.WallClock = ev.TS
		return nil
	}
	return fmt.Errorf("%w: unrecognized real-run event %q at %g", ErrAttrib, ev.Name, ev.TS)
}

// finish folds the gap accumulators into the keyed buckets, converts the
// rationals to their float views, and checks the exact identity.
func (b *builder) finish() {
	sum := new(big.Rat).Add(b.work, b.redo)
	for _, r := range b.buckets {
		sum.Add(sum, r)
	}
	rep := b.rep
	rep.Exact = sum.Cmp(rat(rep.WallClock)) == 0
	rep.Clipped, _ = b.clipped.Float64()

	f := func(r *big.Rat) float64 { v, _ := r.Float64(); return v }
	rep.Work = f(b.work)
	rep.Redo = f(b.redo)
	keys := make([]string, 0, len(b.buckets))
	for key := range b.buckets {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		r := b.buckets[key]
		switch {
		case strings.HasPrefix(key, "ckpt/"):
			var lvl int
			fmt.Sscanf(key, "ckpt/%d", &lvl)
			rep.Ckpt[lvl] += f(r)
		case key == "ckpt-redo":
			rep.CkptRedo = f(r)
		case key == "ckpt-aborted":
			rep.CkptAborted = f(r)
		case key == "ckpt-aborted-redo":
			rep.CkptAbortedRedo = f(r)
		case strings.HasPrefix(key, "recovery/"):
			var lvl int
			fmt.Sscanf(key, "recovery/%d", &lvl)
			rep.Recovery[lvl] += f(r)
		case key == "recovery-aborted":
			rep.RecoveryAborted = f(r)
		case key == "alloc":
			rep.Alloc = f(r)
		case key == "detection":
			rep.Detection = f(r)
		case key == "work":
			rep.Work += f(r)
		case key == "redo-part":
			rep.Redo += f(r)
		}
	}
}

// Portions folds the fine-grained buckets into the paper's four Figure 5
// portions, matching internal/sim.Result's accounting exactly: first-time
// checkpoints (completed or aborted) are Checkpoint, everything re-executed
// or re-taken is Rollback, and allocation + recovery + detection is
// Restart.
func (r *Report) Portions() model.Portions {
	p := model.Portions{Productive: r.Work, Rollback: r.Redo + r.CkptRedo + r.CkptAbortedRedo}
	p.Checkpoint = r.CkptAborted
	for _, lvl := range sortedKeys(r.Ckpt) {
		p.Checkpoint += r.Ckpt[lvl]
	}
	p.Restart = r.RecoveryAborted + r.Alloc + r.Detection
	for _, lvl := range sortedKeys(r.Recovery) {
		p.Restart += r.Recovery[lvl]
	}
	return p
}

// Sum returns the float view of the bucket total (== WallClock up to float
// rounding of the individual buckets; the rational identity is Exact).
func (r *Report) Sum() float64 {
	s := r.Work + r.Redo + r.CkptRedo + r.CkptAborted + r.CkptAbortedRedo +
		r.RecoveryAborted + r.Alloc + r.Detection
	for _, lvl := range sortedKeys(r.Ckpt) {
		s += r.Ckpt[lvl]
	}
	for _, lvl := range sortedKeys(r.Recovery) {
		s += r.Recovery[lvl]
	}
	return s
}

// TotalFailures sums the per-class failure counts.
func (r *Report) TotalFailures() int {
	t := 0
	for _, n := range r.Failures {
		t += n
	}
	return t
}

// Render formats the report as a deterministic text table.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "track %s\n", r.Track)
	status := "exact"
	if !r.Exact {
		status = "INEXACT"
	}
	fmt.Fprintf(&b, "wall-clock %.6f s  (identity %s, clipped %.3g s)\n", r.WallClock, status, r.Clipped)
	row := func(label string, v float64) {
		if v == 0 {
			return
		}
		pct := 0.0
		if r.WallClock > 0 {
			pct = 100 * v / r.WallClock
		}
		fmt.Fprintf(&b, "  %-22s %16.6f s  %6.2f%%\n", label, v, pct)
	}
	row("work", r.Work)
	row("redo (lost work)", r.Redo)
	for _, lvl := range sortedKeys(r.Ckpt) {
		row(fmt.Sprintf("checkpoint L%d", lvl), r.Ckpt[lvl])
	}
	row("checkpoint redo", r.CkptRedo)
	row("checkpoint aborted", r.CkptAborted)
	row("ckpt aborted (redo)", r.CkptAbortedRedo)
	for _, lvl := range sortedKeys(r.Recovery) {
		label := fmt.Sprintf("recovery L%d", lvl)
		if lvl == 0 {
			label = "recovery (scratch)"
		}
		row(label, r.Recovery[lvl])
	}
	row("recovery aborted", r.RecoveryAborted)
	row("allocation", r.Alloc)
	row("detection latency", r.Detection)
	if r.TotalFailures() > 0 || r.Absorbed > 0 {
		fmt.Fprintf(&b, "  failures:")
		for _, cls := range sortedKeys(r.Failures) {
			fmt.Fprintf(&b, " class%d=%d", cls, r.Failures[cls])
		}
		if r.Absorbed > 0 {
			fmt.Fprintf(&b, " absorbed=%d", r.Absorbed)
		}
		b.WriteString("\n")
	}
	return b.String()
}

func sortedKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// CompareModel puts a measured portion breakdown next to the analytic
// model's Formula 21 expectation for the same configuration, as fractions
// of the respective wall clocks. MaxAbsDelta is the largest fraction
// discrepancy — single runs scatter around the expectation, so callers
// compare against a tolerance reflecting the run count.
type ModelComparison struct {
	Measured  model.Portions `json:"measured"`  // fractions of the measured wall clock
	Predicted model.Portions `json:"predicted"` // fractions of the model's E(T_w)
	MeasuredWall, PredictedWall float64
	MaxAbsDelta float64 `json:"max_abs_delta"`
}

// CompareModel evaluates Formula 21 for (p, x, n) and compares the
// measured report against it.
func (r *Report) CompareModel(p *model.Params, x []float64, n float64) (ModelComparison, error) {
	wct, _, ok := p.SelfConsistentWallClock(x, n, 0, 0)
	if !ok {
		return ModelComparison{}, fmt.Errorf("%w (n=%g)", ErrModelDiverged, n)
	}
	mu := p.MuOfN(n, wct)
	pred := p.WallClockPortions(x, n, mu)
	meas := r.Portions()
	mc := ModelComparison{MeasuredWall: r.WallClock, PredictedWall: wct}
	mc.Measured = fractions(meas, r.WallClock)
	mc.Predicted = fractions(pred, wct)
	for _, d := range []float64{
		mc.Measured.Productive - mc.Predicted.Productive,
		mc.Measured.Checkpoint - mc.Predicted.Checkpoint,
		mc.Measured.Restart - mc.Predicted.Restart,
		mc.Measured.Rollback - mc.Predicted.Rollback,
	} {
		if a := math.Abs(d); a > mc.MaxAbsDelta {
			mc.MaxAbsDelta = a
		}
	}
	return mc, nil
}

func fractions(p model.Portions, wall float64) model.Portions {
	if wall <= 0 {
		return model.Portions{}
	}
	return model.Portions{
		Productive: p.Productive / wall,
		Checkpoint: p.Checkpoint / wall,
		Restart:    p.Restart / wall,
		Rollback:   p.Rollback / wall,
	}
}
