package obs

import "sync"

// Stream is the streaming flight recorder: a Recorder that publishes every
// recorded event into a bounded ring buffer and fans it out to live
// subscribers. It is the substrate for live exposition (the /events SSE
// endpoint of the serving layer, and eventually ckptd's job streams) —
// composed next to a Collector with Tee, it observes a run without owning
// its artifacts.
//
// The stream is strictly volatile territory: event sequence numbers and
// interleaving across tracks depend on scheduling, so nothing read from a
// Stream may ever feed a deterministic artifact. The deterministic
// metrics/trace files stay the Collector's job; the determinism tests pin
// that attaching a Stream (or a subscriber) leaves those bytes unchanged.
//
// Back-pressure: the simulation is never blocked. Publishing is a
// non-blocking send per subscriber; a subscriber that falls behind loses
// events, and the loss is loud — the next event it does receive is
// preceded by a synthetic "dropped" marker carrying the count of lost
// events. The ring keeps the most recent events for late subscribers
// (Subscribe with replay) and post-mortem inspection (SnapshotEvents).
type Stream struct {
	mu   sync.Mutex
	ring []StreamEvent
	next int // ring index of the oldest event once full
	full bool
	seq  uint64
	subs map[*Subscription]struct{}
	drop uint64 // events lost across all subscribers (diagnostic)
}

// StreamEvent is one published recorder call. Kind names the Recorder
// method ("count", "observe", "count_volatile", "observe_volatile",
// "max_volatile", "span", "instant") or the synthetic "dropped" marker,
// whose Dropped field counts the events lost before it.
type StreamEvent struct {
	Seq     uint64             `json:"seq"`
	Kind    string             `json:"kind"`
	Name    string             `json:"name,omitempty"`
	Track   string             `json:"track,omitempty"`
	TS      float64            `json:"ts,omitempty"`    // virtual seconds (span/instant)
	Dur     float64            `json:"dur,omitempty"`   // virtual seconds (span)
	Delta   int64              `json:"delta,omitempty"` // count kinds
	Value   float64            `json:"value,omitempty"` // observe/max kinds
	Args    map[string]float64 `json:"args,omitempty"`
	Dropped uint64             `json:"dropped,omitempty"`
}

// DefaultStreamRing is the ring capacity when NewStream is given n <= 0.
const DefaultStreamRing = 4096

// NewStream returns a Stream keeping the most recent n events (n <= 0
// means DefaultStreamRing).
func NewStream(n int) *Stream {
	if n <= 0 {
		n = DefaultStreamRing
	}
	return &Stream{ring: make([]StreamEvent, 0, n), subs: map[*Subscription]struct{}{}}
}

// Subscription is one live reader of a Stream. Receive from Events() and
// call Close when done; a closed subscription's channel is closed.
type Subscription struct {
	ch      chan StreamEvent
	pending uint64 // events lost since the last successful send
}

// Events is the subscription's delivery channel.
func (s *Subscription) Events() <-chan StreamEvent { return s.ch }

// offer delivers ev without blocking, surfacing any preceding loss as a
// "dropped" marker. Called with the stream lock held.
//
//mlckpt:baton never blocks: both selects carry a default — a full subscriber loses the event (recorded in pending) and the caller continues immediately
func (s *Subscription) offer(ev StreamEvent) {
	if s.pending > 0 {
		marker := StreamEvent{Seq: ev.Seq, Kind: "dropped", Dropped: s.pending}
		select {
		case s.ch <- marker:
			s.pending = 0
		default:
			// No room even for the marker: this event is lost too.
			s.pending++
			return
		}
	}
	select {
	case s.ch <- ev:
	default:
		s.pending++
	}
}

// Subscribe registers a reader with the given channel buffer (<= 0 means
// 256). With replay, the ring's buffered history is delivered first —
// subject to the same drop-with-marker rule when it exceeds the buffer.
func (s *Stream) Subscribe(buffer int, replay bool) *Subscription {
	if buffer <= 0 {
		buffer = 256
	}
	sub := &Subscription{ch: make(chan StreamEvent, buffer)}
	s.mu.Lock()
	if replay {
		for _, ev := range s.snapshotLocked() {
			sub.offer(ev)
		}
	}
	s.subs[sub] = struct{}{}
	s.mu.Unlock()
	return sub
}

// Unsubscribe removes the subscription and closes its channel. Safe to
// call once per subscription.
func (s *Stream) Unsubscribe(sub *Subscription) {
	s.mu.Lock()
	_, ok := s.subs[sub]
	delete(s.subs, sub)
	s.mu.Unlock()
	if ok {
		close(sub.ch)
	}
}

// SnapshotEvents returns the ring contents, oldest first.
func (s *Stream) SnapshotEvents() []StreamEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotLocked()
}

func (s *Stream) snapshotLocked() []StreamEvent {
	if !s.full {
		return append([]StreamEvent(nil), s.ring...)
	}
	out := make([]StreamEvent, 0, cap(s.ring))
	out = append(out, s.ring[s.next:]...)
	return append(out, s.ring[:s.next]...)
}

// Dropped returns the total events lost across all subscribers so far.
func (s *Stream) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.drop
}

// Seq returns the number of events published so far.
func (s *Stream) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

func (s *Stream) publish(ev StreamEvent) {
	s.mu.Lock()
	s.seq++
	ev.Seq = s.seq
	if len(s.ring) < cap(s.ring) {
		s.ring = append(s.ring, ev)
	} else {
		s.full = true
		s.ring[s.next] = ev
		s.next++
		if s.next == cap(s.ring) {
			s.next = 0
		}
	}
	for sub := range s.subs {
		before := sub.pending
		sub.offer(ev)
		if sub.pending > before {
			s.drop++
		}
	}
	s.mu.Unlock()
}

// Count implements Recorder.
func (s *Stream) Count(name string, delta int64) {
	s.publish(StreamEvent{Kind: "count", Name: name, Delta: delta})
}

// Observe implements Recorder.
func (s *Stream) Observe(name string, v float64) {
	s.publish(StreamEvent{Kind: "observe", Name: name, Value: v})
}

// CountVolatile implements Recorder.
func (s *Stream) CountVolatile(name string, delta int64) {
	s.publish(StreamEvent{Kind: "count_volatile", Name: name, Delta: delta})
}

// ObserveVolatile implements Recorder.
func (s *Stream) ObserveVolatile(name string, v float64) {
	s.publish(StreamEvent{Kind: "observe_volatile", Name: name, Value: v})
}

// MaxVolatile implements Recorder.
func (s *Stream) MaxVolatile(name string, v float64) {
	s.publish(StreamEvent{Kind: "max_volatile", Name: name, Value: v})
}

// Span implements Recorder. The args map is referenced, not copied; all
// in-repo emitters build a fresh map per call.
func (s *Stream) Span(track, name string, start, dur float64, args map[string]float64) {
	if track == "" {
		return
	}
	s.publish(StreamEvent{Kind: "span", Track: track, Name: name, TS: start, Dur: dur, Args: args})
}

// Instant implements Recorder.
func (s *Stream) Instant(track, name string, ts float64, args map[string]float64) {
	if track == "" {
		return
	}
	s.publish(StreamEvent{Kind: "instant", Track: track, Name: name, TS: ts, Args: args})
}

// tee fans every Recorder call out to multiple sinks.
type tee struct{ sinks []Recorder }

// Tee composes Recorders: every call is forwarded to each non-nil sink in
// order. It is how a CLI attaches the flight recorder next to the
// artifact-owning Collector, or an experiment keeps a private collector
// while forwarding to a shared one. Nil sinks are dropped; zero sinks
// yield the no-op Recorder, one sink is returned unwrapped.
func Tee(sinks ...Recorder) Recorder {
	kept := make([]Recorder, 0, len(sinks))
	for _, r := range sinks {
		if r != nil {
			kept = append(kept, r)
		}
	}
	switch len(kept) {
	case 0:
		return Nop()
	case 1:
		return kept[0]
	}
	return tee{sinks: kept}
}

func (t tee) Count(name string, delta int64) {
	for _, r := range t.sinks {
		r.Count(name, delta)
	}
}

func (t tee) Observe(name string, v float64) {
	for _, r := range t.sinks {
		r.Observe(name, v)
	}
}

func (t tee) CountVolatile(name string, delta int64) {
	for _, r := range t.sinks {
		r.CountVolatile(name, delta)
	}
}

func (t tee) ObserveVolatile(name string, v float64) {
	for _, r := range t.sinks {
		r.ObserveVolatile(name, v)
	}
}

func (t tee) MaxVolatile(name string, v float64) {
	for _, r := range t.sinks {
		r.MaxVolatile(name, v)
	}
}

func (t tee) Span(track, name string, start, dur float64, args map[string]float64) {
	for _, r := range t.sinks {
		r.Span(track, name, start, dur, args)
	}
}

func (t tee) Instant(track, name string, ts float64, args map[string]float64) {
	for _, r := range t.sinks {
		r.Instant(track, name, ts, args)
	}
}
