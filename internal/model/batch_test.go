package model

import (
	"math"
	"math/rand"
	"testing"

	"mlckpt/internal/failure"
	"mlckpt/internal/overhead"
	"mlckpt/internal/speedup"
)

// randParams draws a structurally valid Params with randomized speedup
// kind, cost baselines, saturation caps, and failure rates — wide enough to
// exercise every branch of the slab fill.
func randParams(rng *rand.Rand) *Params {
	L := 1 + rng.Intn(5)
	levels := make([]overhead.Level, L)
	baselines := []overhead.Baseline{overhead.Zero, overhead.LinearN, overhead.SqrtN, overhead.LogN}
	randCost := func() overhead.Cost {
		c := overhead.Cost{
			Const: rng.Float64() * 10,
			Coeff: rng.Float64() * 0.05,
			H:     baselines[rng.Intn(len(baselines))],
		}
		if rng.Intn(3) == 0 {
			c.Cap = 1e3 + rng.Float64()*1e5
		}
		return c
	}
	for i := range levels {
		levels[i] = overhead.Level{Checkpoint: randCost(), Recovery: randCost()}
	}
	var g speedup.Model
	switch rng.Intn(4) {
	case 0:
		g = speedup.Quadratic{Kappa: 0.1 + rng.Float64(), NStar: 1e4 + rng.Float64()*1e6}
	case 1:
		g = speedup.Linear{Kappa: 0.1 + rng.Float64(), MaxScale: 1e4 + rng.Float64()*1e6}
	case 2:
		g = speedup.Amdahl{SerialFraction: rng.Float64() * 1e-4, MaxScale: 1e4 + rng.Float64()*1e6}
	default:
		g = speedup.Gustafson{SerialFraction: rng.Float64() * 0.5, MaxScale: 1e4 + rng.Float64()*1e6}
	}
	perDay := make([]float64, L)
	for i := range perDay {
		perDay[i] = rng.Float64() * 20
	}
	return &Params{
		Te:      (1 + rng.Float64()*9e5) * failure.SecondsPerDay,
		Speedup: g,
		Levels:  levels,
		Alloc:   rng.Float64() * 120,
		Rates:   failure.Rates{PerDay: perDay, Baseline: 1e6},
	}
}

// randGrid draws scales across the whole plausible range, including the
// degenerate edges the scalar path special-cases (0, beyond the ideal
// scale, saturation caps).
func randGrid(rng *rand.Rand, p *Params, pts int) []float64 {
	ns := make([]float64, pts)
	ceiling := p.Speedup.IdealScale()
	for i := range ns {
		switch rng.Intn(8) {
		case 0:
			ns[i] = 0
		case 1:
			ns[i] = ceiling
		case 2:
			ns[i] = ceiling * (1 + rng.Float64()) // beyond the peak: g may go <= 0
		default:
			ns[i] = 1 + rng.Float64()*ceiling
		}
	}
	return ns
}

func bitsEqual(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// TestSlabMatchesScalarBitExact is the oracle contract: every batch kernel
// must reproduce its scalar counterpart bit for bit on randomized params,
// grids, and iterates.
func TestSlabMatchesScalarBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		p := randParams(rng)
		L := p.L()
		pts := 1 + rng.Intn(97)
		ns := randGrid(rng, p, pts)
		s := p.NewSlab(pts)
		s.SetScales(ns)
		stride := s.Stride()

		xs := make([]float64, L*stride)
		mus := make([]float64, L*stride)
		bs := make([]float64, L*stride)
		for i := 0; i < L; i++ {
			for pt := 0; pt < pts; pt++ {
				xs[i*stride+pt] = 1 + rng.Float64()*200
				mus[i*stride+pt] = rng.Float64() * 50
				bs[i*stride+pt] = rng.Float64() * 1e-3
			}
		}
		dst := make([]float64, pts)
		x1 := make([]float64, L)
		mu1 := make([]float64, L)
		b1 := make([]float64, L)
		readPoint := func(pt int) {
			for i := 0; i < L; i++ {
				x1[i] = xs[i*stride+pt]
				mu1[i] = mus[i*stride+pt]
				b1[i] = bs[i*stride+pt]
			}
		}

		s.WallClock(dst, xs, mus)
		for pt := 0; pt < pts; pt++ {
			readPoint(pt)
			if want := p.WallClock(x1, ns[pt], mu1); !bitsEqual(dst[pt], want) {
				t.Fatalf("trial %d WallClock[%d]: batch %v scalar %v (n=%v)", trial, pt, dst[pt], want, ns[pt])
			}
		}
		s.GradN(dst, xs, bs)
		for pt := 0; pt < pts; pt++ {
			readPoint(pt)
			if want := p.GradN(x1, ns[pt], b1); !bitsEqual(dst[pt], want) {
				t.Fatalf("trial %d GradN[%d]: batch %v scalar %v (n=%v)", trial, pt, dst[pt], want, ns[pt])
			}
		}
		for i := 0; i < L; i++ {
			s.GradX(dst, xs, mus, i)
			for pt := 0; pt < pts; pt++ {
				readPoint(pt)
				if want := p.GradX(x1, ns[pt], mu1, i); !bitsEqual(dst[pt], want) {
					t.Fatalf("trial %d GradX[%d][%d]: batch %v scalar %v", trial, i, pt, dst[pt], want)
				}
			}
			s.ExpectedRollback(dst, xs, i)
			for pt := 0; pt < pts; pt++ {
				readPoint(pt)
				if want := p.ExpectedRollback(x1, ns[pt], i); !bitsEqual(dst[pt], want) {
					t.Fatalf("trial %d ExpectedRollback[%d][%d]: batch %v scalar %v", trial, i, pt, dst[pt], want)
				}
			}
			s.YoungX(dst, mus, i)
			for pt := 0; pt < pts; pt++ {
				readPoint(pt)
				if want := p.YoungX(ns[pt], mu1, i); !bitsEqual(dst[pt], want) {
					t.Fatalf("trial %d YoungX[%d][%d]: batch %v scalar %v", trial, i, pt, dst[pt], want)
				}
			}
		}

		wct := 1 + rng.Float64()*1e7
		muSlab := make([]float64, L*stride)
		s.MuOfN(muSlab, wct)
		for pt := 0; pt < pts; pt++ {
			want := p.MuOfN(ns[pt], wct)
			for i := 0; i < L; i++ {
				if !bitsEqual(muSlab[i*stride+pt], want[i]) {
					t.Fatalf("trial %d MuOfN[%d][%d]: batch %v scalar %v", trial, i, pt, muSlab[i*stride+pt], want[i])
				}
			}
		}

		// Fixed-x kernels: one iterate against the whole scale grid.
		readPoint(0)
		s.GradNFixedX(dst, x1, b1)
		for pt := 0; pt < pts; pt++ {
			if want := p.GradN(x1, ns[pt], b1); !bitsEqual(dst[pt], want) {
				t.Fatalf("trial %d GradNFixedX[%d]: batch %v scalar %v (n=%v)", trial, pt, dst[pt], want, ns[pt])
			}
		}
		s.WallClockFixedX(dst, x1, b1)
		for pt := 0; pt < pts; pt++ {
			for i := 0; i < L; i++ {
				mu1[i] = b1[i] * ns[pt]
			}
			if want := p.WallClock(x1, ns[pt], mu1); !bitsEqual(dst[pt], want) {
				t.Fatalf("trial %d WallClockFixedX[%d]: batch %v scalar %v (n=%v)", trial, pt, dst[pt], want, ns[pt])
			}
		}
	}
}

// TestIntoVariantsMatch pins the allocation-free scalar helpers against the
// allocating originals.
func TestIntoVariantsMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		p := randParams(rng)
		n := rng.Float64() * 2e6
		wct := rng.Float64() * 1e7
		dst := make([]float64, p.L())
		p.MuOfNInto(dst, n, wct)
		for i, want := range p.MuOfN(n, wct) {
			if !bitsEqual(dst[i], want) {
				t.Fatalf("MuOfNInto[%d] = %v, want %v", i, dst[i], want)
			}
		}
		p.BOfTInto(dst, wct)
		for i, want := range p.BOfT(wct) {
			if !bitsEqual(dst[i], want) {
				t.Fatalf("BOfTInto[%d] = %v, want %v", i, dst[i], want)
			}
		}
	}
}

// TestSlabReuse verifies that shrinking and regrowing a slab between
// SetScales calls keeps results correct (rows are re-strided on growth).
func TestSlabReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := randParams(rng)
	s := p.NewSlab(4)
	for _, pts := range []int{4, 2, 64, 1, 33} {
		ns := randGrid(rng, p, pts)
		s.SetScales(ns)
		if s.Len() != pts {
			t.Fatalf("Len = %d, want %d", s.Len(), pts)
		}
		dst := make([]float64, pts)
		x1 := make([]float64, p.L())
		b1 := make([]float64, p.L())
		for i := range x1 {
			x1[i] = 1 + rng.Float64()*50
			b1[i] = rng.Float64() * 1e-4
		}
		s.GradNFixedX(dst, x1, b1)
		for pt := range ns {
			if want := p.GradN(x1, ns[pt], b1); !bitsEqual(dst[pt], want) {
				t.Fatalf("pts=%d GradNFixedX[%d]: batch %v scalar %v", pts, pt, dst[pt], want)
			}
		}
	}
}

// TestSlabKernelsZeroAlloc is the steady-state allocation gate: once the
// slab has grown to its working size, refills and every kernel must not
// allocate (the compiler half of this contract is cmd/allocgate).
func TestSlabKernelsZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := randParams(rng)
	L := p.L()
	const pts = 65
	ns := randGrid(rng, p, pts)
	s := p.NewSlab(pts)
	s.SetScales(ns)
	stride := s.Stride()
	xs := make([]float64, L*stride)
	mus := make([]float64, L*stride)
	bs := make([]float64, L*stride)
	for i := range xs {
		xs[i] = 1 + rng.Float64()*10
		mus[i] = rng.Float64()
		bs[i] = rng.Float64() * 1e-4
	}
	dst := make([]float64, pts)
	x1 := make([]float64, L)
	b1 := make([]float64, L)
	for i := range x1 {
		x1[i] = 1 + rng.Float64()*10
		b1[i] = rng.Float64() * 1e-4
	}
	steps := map[string]func(){
		"SetScales":        func() { s.SetScales(ns) },
		"WallClock":        func() { s.WallClock(dst, xs, mus) },
		"GradX":            func() { s.GradX(dst, xs, mus, L-1) },
		"GradN":            func() { s.GradN(dst, xs, bs) },
		"ExpectedRollback": func() { s.ExpectedRollback(dst, xs, L-1) },
		"YoungX":           func() { s.YoungX(dst, mus, L-1) },
		"MuOfN":            func() { s.MuOfN(mus, 1e6) },
		"GradNFixedX":      func() { s.GradNFixedX(dst, x1, b1) },
		"WallClockFixedX":  func() { s.WallClockFixedX(dst, x1, b1) },
		"MuOfNInto":        func() { p.MuOfNInto(b1, 1e5, 1e6) },
		"BOfTInto":         func() { p.BOfTInto(b1, 1e6) },
	}
	for name, fn := range steps {
		if avg := testing.AllocsPerRun(100, fn); avg != 0 {
			t.Errorf("%s allocates %.1f times per call in steady state", name, avg)
		}
	}
}

// FuzzBatchMatchesScalar drives the two highest-traffic kernels with
// fuzzer-chosen parameters and requires bit-identical scalar agreement.
func FuzzBatchMatchesScalar(f *testing.F) {
	f.Add(int64(1), 3.0e6, 0.46, 1e6, 60.0, 1e5)
	f.Add(int64(7), 1.0, 0.01, 10.0, 0.0, 0.5)
	f.Add(int64(42), 9e5, 1.4, 5e5, 120.0, 2e6)
	f.Fuzz(func(t *testing.T, seed int64, teDays, kappa, nstar, alloc, n0 float64) {
		if !(teDays > 0) || !(kappa > 0) || !(nstar > 1) || math.IsInf(teDays, 0) ||
			math.IsInf(nstar, 0) || alloc < 0 || math.IsNaN(alloc) || math.IsNaN(n0) || math.IsInf(n0, 0) {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		p := randParams(rng)
		p.Te = teDays * failure.SecondsPerDay
		p.Speedup = speedup.Quadratic{Kappa: kappa, NStar: nstar}
		p.Alloc = alloc
		L := p.L()
		ns := randGrid(rng, p, 17)
		ns[0] = n0
		s := p.NewSlab(len(ns))
		s.SetScales(ns)
		x1 := make([]float64, L)
		b1 := make([]float64, L)
		mu1 := make([]float64, L)
		for i := range x1 {
			x1[i] = 1 + rng.Float64()*100
			b1[i] = rng.Float64() * 1e-3
		}
		dst := make([]float64, len(ns))
		s.GradNFixedX(dst, x1, b1)
		for pt, n := range ns {
			if want := p.GradN(x1, n, b1); !bitsEqual(dst[pt], want) {
				t.Fatalf("GradNFixedX[%d]: batch %v scalar %v (n=%v)", pt, dst[pt], want, n)
			}
		}
		s.WallClockFixedX(dst, x1, b1)
		for pt, n := range ns {
			for i := range mu1 {
				mu1[i] = b1[i] * n
			}
			if want := p.WallClock(x1, n, mu1); !bitsEqual(dst[pt], want) {
				t.Fatalf("WallClockFixedX[%d]: batch %v scalar %v (n=%v)", pt, dst[pt], want, n)
			}
		}
	})
}
