package model

import (
	"math"
	"testing"

	"mlckpt/internal/failure"
)

func TestPortionsSumEqualsWallClock(t *testing.T) {
	p := paperParams(3e6, "16-12-8-4")
	n := 5e5
	x := []float64{3000, 900, 300, 60}
	mu := p.MuOfN(n, 20*failure.SecondsPerDay)
	portions := p.WallClockPortions(x, n, mu)
	if got, want := portions.Total(), p.WallClock(x, n, mu); math.Abs(got-want) > 1e-6*want {
		t.Errorf("portions total %g != wall clock %g", got, want)
	}
	if portions.Productive != p.ProductiveTime(n) {
		t.Errorf("productive portion %g", portions.Productive)
	}
	for _, v := range []float64{portions.Checkpoint, portions.Restart, portions.Rollback} {
		if v <= 0 {
			t.Errorf("non-positive portion in %+v", portions)
		}
	}
}

func TestPortionsZeroFailures(t *testing.T) {
	p := paperParams(3e6, "16-12-8-4")
	x := []float64{100, 50, 20, 10}
	portions := p.WallClockPortions(x, 5e5, []float64{0, 0, 0, 0})
	if portions.Restart != 0 || portions.Rollback != 0 {
		t.Errorf("failure-free portions have restart/rollback: %+v", portions)
	}
}

func TestSelfConsistentWallClock(t *testing.T) {
	p := paperParams(3e6, "16-12-8-4")
	n := 5e5
	x := []float64{3000, 900, 300, 60}
	wct, iters, ok := p.SelfConsistentWallClock(x, n, 1e-10, 500)
	if !ok {
		t.Fatal("did not converge")
	}
	if iters <= 1 {
		t.Errorf("suspiciously fast: %d iterations", iters)
	}
	// Fixed point: plugging wct's μ back reproduces wct.
	again := p.WallClock(x, n, p.MuOfN(n, wct))
	if math.Abs(again-wct) > 1e-6*wct {
		t.Errorf("not a fixed point: %g vs %g", again, wct)
	}
}

func TestSelfConsistentDivergesAtHopelessRates(t *testing.T) {
	// Single-level at full scale with a PFS cost comparable to the MTBF:
	// the feedback exceeds unity and no finite fixed point exists.
	p := paperParams(3e6, "16-12-8-4")
	x := []float64{1, 1, 1, 50}
	_, _, ok := p.SelfConsistentWallClock(x, 1e6, 1e-9, 300)
	if ok {
		t.Skip("converged at this configuration; acceptable (boundary regime)")
	}
}
