package model

import (
	"math"

	"mlckpt/internal/overhead"
	"mlckpt/internal/speedup"
)

// Slab is a structure-of-arrays evaluation workspace bound to one Params
// value: it evaluates the model formulas across a whole grid of scales in
// contiguous float64 slices instead of one scalar call per point.
//
// SetScales precomputes, per grid point, everything that depends only on
// the scale — g(N), g'(N), the productive time T_e/g(N), and the per-level
// checkpoint/recovery costs and their derivatives — with the speedup model
// devirtualized once per fill instead of two interface calls per scalar
// evaluation. The kernels then run branch-free passes over the slabs.
//
// Bit-exactness contract: every kernel performs, per point, the same
// floating-point operations in the same order as the scalar method it
// mirrors (WallClock, GradX, GradN, ExpectedRollback, MuOfN, YoungX), so
// batch results are identical to the scalar oracle bit for bit — the
// differential tests in batch_test.go and the solver golden outputs both
// pin this. The scalar methods stay untouched as that oracle.
//
// Layout: per-level slabs are level-major with a fixed row stride equal to
// the slab capacity, so row i of a quantity q is q[i*cap : i*cap+P] for the
// current point count P. Kernel arguments that carry an (x, mu) pair per
// point use the same layout. A Slab is not safe for concurrent use.
type Slab struct {
	p *Params
	L int

	pn   int // current point count P
	capn int // row stride / allocated points per row

	n, g, gp, pt []float64 // per-point scale, speedup, g', productive time
	c, cp, r, rp []float64 // level-major L×cap cost slabs (C, C', R, R')

	roll, accA, accB []float64 // kernel scratch rows
}

// NewSlab returns a Slab bound to p with initial capacity for the given
// number of grid points. The capacity grows automatically on SetScales.
func (p *Params) NewSlab(capacity int) *Slab {
	s := &Slab{p: p, L: p.L()}
	if capacity < 1 {
		capacity = 1
	}
	s.grow(capacity)
	return s
}

// Len returns the number of points loaded by the last SetScales.
func (s *Slab) Len() int { return s.pn }

// Params returns the bound parameter set.
func (s *Slab) Params() *Params { return s.p }

func (s *Slab) grow(capacity int) {
	if capacity <= s.capn {
		return
	}
	if c := 2 * s.capn; capacity < c {
		capacity = c
	}
	s.capn = capacity
	s.n = make([]float64, capacity)
	s.g = make([]float64, capacity)
	s.gp = make([]float64, capacity)
	s.pt = make([]float64, capacity)
	s.c = make([]float64, s.L*capacity)
	s.cp = make([]float64, s.L*capacity)
	s.r = make([]float64, s.L*capacity)
	s.rp = make([]float64, s.L*capacity)
	s.roll = make([]float64, capacity)
	s.accA = make([]float64, capacity)
	s.accB = make([]float64, capacity)
}

// row returns level i of a level-major slab, trimmed to the current point
// count.
func (s *Slab) row(buf []float64, i int) []float64 {
	return buf[i*s.capn : i*s.capn+s.pn]
}

// Row returns level i of a caller-provided level-major slab laid out with
// this Slab's stride (use Stride to build one).
func (s *Slab) Row(buf []float64, i int) []float64 { return s.row(buf, i) }

// Stride returns the row stride for level-major kernel arguments: a slab
// holding one value per (level, point) must have length L*Stride().
func (s *Slab) Stride() int { return s.capn }

// SetScales loads a grid of scales and precomputes the per-point slabs.
// Growth allocates; steady-state refills with an unchanged capacity do not.
func (s *Slab) SetScales(ns []float64) {
	s.grow(len(ns))
	s.pn = len(ns)
	n := s.n[:s.pn]
	copy(n, ns)

	g := s.g[:s.pn]
	gp := s.gp[:s.pn]
	// Devirtualize the speedup model once per fill: the concrete methods
	// compute exactly what the interface calls would, so the slabs match
	// the scalar path bit for bit.
	switch m := s.p.Speedup.(type) {
	case speedup.Quadratic:
		for p, v := range n {
			g[p] = m.Speedup(v)
			gp[p] = m.Derivative(v)
		}
	case speedup.Linear:
		for p, v := range n {
			g[p] = m.Speedup(v)
			gp[p] = m.Derivative(v)
		}
	case speedup.Amdahl:
		for p, v := range n {
			g[p] = m.Speedup(v)
			gp[p] = m.Derivative(v)
		}
	case speedup.Gustafson:
		for p, v := range n {
			g[p] = m.Speedup(v)
			gp[p] = m.Derivative(v)
		}
	default:
		for p, v := range n {
			g[p] = m.Speedup(v)
			gp[p] = m.Derivative(v)
		}
	}
	pt := s.pt[:s.pn]
	te := s.p.Te
	for p, gv := range g {
		// speedup.ParallelTime: non-positive speedup means no progress.
		if gv <= 0 {
			pt[p] = math.Inf(1)
		} else {
			pt[p] = te / gv
		}
	}
	for i := 0; i < s.L; i++ {
		lv := &s.p.Levels[i]
		fillCostAt(s.row(s.c, i), lv.Checkpoint, n)
		fillCostDerivativeAt(s.row(s.cp, i), lv.Checkpoint, n)
		fillCostAt(s.row(s.r, i), lv.Recovery, n)
		fillCostDerivativeAt(s.row(s.rp, i), lv.Recovery, n)
	}
}

// fillCostAt evaluates overhead.Cost.At across a slice of scales with the
// baseline switch hoisted out of the loop. Each branch performs the exact
// arithmetic of Cost.At for that baseline.
func fillCostAt(dst []float64, c overhead.Cost, ns []float64) {
	switch c.H {
	case overhead.Zero:
		v := c.Const + c.Coeff*0
		for p := range dst {
			dst[p] = v
		}
	case overhead.LinearN:
		for p, n := range ns {
			if c.Cap > 0 && n > c.Cap {
				n = c.Cap
			}
			dst[p] = c.Const + c.Coeff*n
		}
	case overhead.SqrtN:
		for p, n := range ns {
			if c.Cap > 0 && n > c.Cap {
				n = c.Cap
			}
			dst[p] = c.Const + c.Coeff*math.Sqrt(math.Max(n, 0))
		}
	case overhead.LogN:
		for p, n := range ns {
			if c.Cap > 0 && n > c.Cap {
				n = c.Cap
			}
			dst[p] = c.Const + c.Coeff*math.Log1p(math.Max(n, 0))
		}
	default:
		for p, n := range ns {
			dst[p] = c.At(n)
		}
	}
}

// fillCostDerivativeAt is fillCostAt for overhead.Cost.DerivativeAt.
func fillCostDerivativeAt(dst []float64, c overhead.Cost, ns []float64) {
	switch c.H {
	case overhead.Zero:
		v := c.Coeff * 0
		for p, n := range ns {
			if c.Cap > 0 && n > c.Cap {
				dst[p] = 0
			} else {
				dst[p] = v
			}
		}
	case overhead.LinearN:
		for p, n := range ns {
			if c.Cap > 0 && n > c.Cap {
				dst[p] = 0
			} else {
				dst[p] = c.Coeff * 1
			}
		}
	default:
		for p, n := range ns {
			dst[p] = c.DerivativeAt(n)
		}
	}
}

// ProductiveTimes returns the precomputed T_e/g(N) row (aliased, valid
// until the next SetScales).
func (s *Slab) ProductiveTimes() []float64 { return s.pt[:s.pn] }

// CheckpointCosts returns the precomputed C_i(N) row for level i (aliased).
func (s *Slab) CheckpointCosts(i int) []float64 { return s.row(s.c, i) }

// MuOfN fills the level-major dst with μ_i(N_p) = λ_i(N_p)·T for the frozen
// wall-clock estimate T, mirroring Params.MuOfN per point.
//
//mlckpt:hotpath
func (s *Slab) MuOfN(dst []float64, wallClockSec float64) {
	s.checkSlab(dst, "MuOfN dst")
	rates := s.p.Rates
	for i := 0; i < s.L; i++ {
		row := s.row(dst, i)
		n := s.n[:s.pn]
		for p, v := range n {
			row[p] = rates.ExpectedFailures(i, v, wallClockSec)
		}
	}
}

// ExpectedRollback fills dst with E(Γ_ij) (Formula 18) at level i for the
// level-major interval counts xs, mirroring Params.ExpectedRollback.
//
//mlckpt:hotpath
func (s *Slab) ExpectedRollback(dst, xs []float64, i int) {
	s.checkRow(dst, "ExpectedRollback dst")
	s.checkSlab(xs, "ExpectedRollback xs")
	pt := s.pt[:s.pn]
	xi := s.row(xs, i)
	for p := range dst {
		dst[p] = pt[p] / (2 * xi[p])
	}
	for k := 0; k <= i; k++ {
		ck := s.row(s.c, k)
		xk := s.row(xs, k)
		for p := range dst {
			dst[p] += ck[p] * xk[p] / (2 * xi[p])
		}
	}
}

// WallClock fills dst with E(T_w) (Formula 21) at the level-major interval
// counts xs and frozen failure counts mus, mirroring Params.WallClock.
//
//mlckpt:hotpath
func (s *Slab) WallClock(dst, xs, mus []float64) {
	s.checkRow(dst, "WallClock dst")
	s.checkSlab(xs, "WallClock xs")
	s.checkSlab(mus, "WallClock mus")
	copy(dst, s.pt[:s.pn])
	for i := 0; i < s.L; i++ {
		ci := s.row(s.c, i)
		xi := s.row(xs, i)
		for p := range dst {
			dst[p] += ci[p] * (xi[p] - 1)
		}
	}
	alloc := s.p.Alloc
	roll := s.roll[:s.pn]
	for i := 0; i < s.L; i++ {
		s.ExpectedRollback(roll, xs, i)
		mi := s.row(mus, i)
		ri := s.row(s.r, i)
		for p := range dst {
			dst[p] += mi[p] * (roll[p] + alloc + ri[p])
		}
	}
}

// GradX fills dst with ∂E(T_w)/∂x_i (Formula 23) at the level-major xs and
// mus, mirroring Params.GradX.
//
//mlckpt:hotpath
func (s *Slab) GradX(dst, xs, mus []float64, i int) {
	s.checkRow(dst, "GradX dst")
	s.checkSlab(xs, "GradX xs")
	s.checkSlab(mus, "GradX mus")
	inner := s.accA[:s.pn]
	copy(inner, s.pt[:s.pn])
	for j := 0; j < i; j++ {
		cj := s.row(s.c, j)
		xj := s.row(xs, j)
		for p := range inner {
			inner[p] += cj[p] * xj[p]
		}
	}
	ci := s.row(s.c, i)
	xi := s.row(xs, i)
	mi := s.row(mus, i)
	for p := range dst {
		dst[p] = ci[p] - mi[p]/(2*xi[p]*xi[p])*inner[p]
	}
	higher := s.accB[:s.pn]
	for p := range higher {
		higher[p] = 0
	}
	for j := i + 1; j < s.L; j++ {
		mj := s.row(mus, j)
		xj := s.row(xs, j)
		for p := range higher {
			higher[p] += mj[p] / xj[p]
		}
	}
	for p := range dst {
		dst[p] += ci[p] / 2 * higher[p]
	}
}

// YoungX fills dst with the Young initialization (Formula 25) for level i
// at the level-major mus, mirroring Params.YoungX.
//
//mlckpt:hotpath
func (s *Slab) YoungX(dst, mus []float64, i int) {
	s.checkRow(dst, "YoungX dst")
	s.checkSlab(mus, "YoungX mus")
	ci := s.row(s.c, i)
	mi := s.row(mus, i)
	pt := s.pt[:s.pn]
	for p := range dst {
		c := ci[p]
		if c <= 0 {
			dst[p] = 1
			continue
		}
		x := math.Sqrt(mi[p] * pt[p] / (2 * c))
		if x < 1 || math.IsNaN(x) {
			x = 1
		}
		dst[p] = x
	}
}

// GradN fills dst with ∂E(T_w)/∂N (Formula 24) at the level-major xs and
// per-level linear failure coefficients bs (also level-major: b may vary
// per point), mirroring Params.GradN.
//
//mlckpt:hotpath
func (s *Slab) GradN(dst, xs, bs []float64) {
	s.checkRow(dst, "GradN dst")
	s.checkSlab(xs, "GradN xs")
	s.checkSlab(bs, "GradN bs")
	s.gradN(dst, func(i int) []float64 { return s.row(xs, i) }, func(i int) []float64 { return s.row(bs, i) })
}

// GradNFixedX fills dst with ∂E(T_w)/∂N at a single interval vector x and
// coefficient vector b (both of length L) shared by every point — the shape
// the inner solver's scale search evaluates: one (x, b) iterate against a
// whole grid of candidate scales. Bit-identical to calling Params.GradN per
// point.
//
//mlckpt:hotpath
func (s *Slab) GradNFixedX(dst, x, b []float64) {
	s.checkRow(dst, "GradNFixedX dst")
	s.checkVec(x, "GradNFixedX x")
	s.checkVec(b, "GradNFixedX b")
	n := s.n[:s.pn]
	g := s.g[:s.pn]
	gp := s.gp[:s.pn]
	te := s.p.Te
	alloc := s.p.Alloc

	// sumBp is scale-independent for a fixed (x, b); sumMu accumulates per
	// point in the same level order as the scalar loop.
	sumBp := 0.0
	sumMu := s.accA[:s.pn]
	for p := range sumMu {
		sumMu[p] = 0
	}
	for i := 0; i < s.L; i++ {
		sumBp += b[i] / (2 * x[i])
		bi, xi2 := b[i], 2*x[i]
		for p := range sumMu {
			sumMu[p] += bi * n[p] / xi2
		}
	}
	for p := range dst {
		dst[p] = te / (g[p] * g[p]) * (sumBp*g[p] - (1+sumMu[p])*gp[p])
	}
	for i := 0; i < s.L; i++ {
		cpi := s.row(s.cp, i)
		xi := x[i]
		for p := range dst {
			dst[p] += cpi[p] * (xi - 1)
		}
	}
	sumCk := s.accA[:s.pn]
	sumCkPrime := s.accB[:s.pn]
	for i := 0; i < s.L; i++ {
		for p := range sumCk {
			sumCk[p] = 0
			sumCkPrime[p] = 0
		}
		for k := 0; k <= i; k++ {
			ck := s.row(s.c, k)
			cpk := s.row(s.cp, k)
			xk, xi2 := x[k], 2*x[i]
			for p := range sumCk {
				sumCk[p] += ck[p] * xk / xi2
				sumCkPrime[p] += cpk[p] * xk / xi2
			}
		}
		ri := s.row(s.r, i)
		rpi := s.row(s.rp, i)
		bi := b[i]
		for p := range dst {
			dst[p] += bi * (sumCk[p] + alloc + ri[p])
			dst[p] += bi * n[p] * (sumCkPrime[p] + rpi[p])
		}
	}
}

// WallClockFixedX fills dst with E(T_w) at a single interval vector x and
// coefficient vector b shared by every point, with μ_i = b_i·N_p — the
// argmin evaluation of the scale search. Bit-identical to
// Params.WallClock(x, n, mu) with mu[i] = b[i]*n per point.
//
//mlckpt:hotpath
func (s *Slab) WallClockFixedX(dst, x, b []float64) {
	s.checkRow(dst, "WallClockFixedX dst")
	s.checkVec(x, "WallClockFixedX x")
	s.checkVec(b, "WallClockFixedX b")
	n := s.n[:s.pn]
	alloc := s.p.Alloc
	copy(dst, s.pt[:s.pn])
	for i := 0; i < s.L; i++ {
		ci := s.row(s.c, i)
		xi := x[i]
		for p := range dst {
			dst[p] += ci[p] * (xi - 1)
		}
	}
	roll := s.roll[:s.pn]
	pt := s.pt[:s.pn]
	for i := 0; i < s.L; i++ {
		xi2 := 2 * x[i]
		for p := range roll {
			roll[p] = pt[p] / xi2
		}
		for k := 0; k <= i; k++ {
			ck := s.row(s.c, k)
			xk := x[k]
			for p := range roll {
				roll[p] += ck[p] * xk / xi2
			}
		}
		ri := s.row(s.r, i)
		bi := b[i]
		for p := range dst {
			dst[p] += bi * n[p] * (roll[p] + alloc + ri[p])
		}
	}
}

// gradN is the shared Formula 24 pass over per-level row accessors.
func (s *Slab) gradN(dst []float64, xRow, bRow func(int) []float64) {
	n := s.n[:s.pn]
	g := s.g[:s.pn]
	gp := s.gp[:s.pn]
	te := s.p.Te
	alloc := s.p.Alloc

	sumBp := s.roll[:s.pn]
	sumMu := s.accA[:s.pn]
	for p := range sumBp {
		sumBp[p] = 0
		sumMu[p] = 0
	}
	for i := 0; i < s.L; i++ {
		bi := bRow(i)
		xi := xRow(i)
		for p := range sumBp {
			sumBp[p] += bi[p] / (2 * xi[p])
			sumMu[p] += bi[p] * n[p] / (2 * xi[p])
		}
	}
	for p := range dst {
		dst[p] = te / (g[p] * g[p]) * (sumBp[p]*g[p] - (1+sumMu[p])*gp[p])
	}
	for i := 0; i < s.L; i++ {
		cpi := s.row(s.cp, i)
		xi := xRow(i)
		for p := range dst {
			dst[p] += cpi[p] * (xi[p] - 1)
		}
	}
	sumCk := s.accA[:s.pn]
	sumCkPrime := s.accB[:s.pn]
	for i := 0; i < s.L; i++ {
		xi := xRow(i)
		for p := range sumCk {
			sumCk[p] = 0
			sumCkPrime[p] = 0
		}
		for k := 0; k <= i; k++ {
			ck := s.row(s.c, k)
			cpk := s.row(s.cp, k)
			xk := xRow(k)
			for p := range sumCk {
				sumCk[p] += ck[p] * xk[p] / (2 * xi[p])
				sumCkPrime[p] += cpk[p] * xk[p] / (2 * xi[p])
			}
		}
		ri := s.row(s.r, i)
		rpi := s.row(s.rp, i)
		bi := bRow(i)
		for p := range dst {
			dst[p] += bi[p] * (sumCk[p] + alloc + ri[p])
			dst[p] += bi[p] * n[p] * (sumCkPrime[p] + rpi[p])
		}
	}
}

// The argument checks run once per kernel call (never per point) and are
// outlined so their panic-message concatenation stays out of the compiled
// bodies of the //mlckpt:hotpath kernels — allocgate verifies those stay
// escape-free.
//
//go:noinline
func (s *Slab) checkRow(buf []float64, what string) {
	if len(buf) != s.pn {
		panic("model: " + what + " length does not match Slab point count")
	}
}

//go:noinline
func (s *Slab) checkVec(buf []float64, what string) {
	if len(buf) != s.L {
		panic("model: " + what + " length does not match level count")
	}
}

//go:noinline
func (s *Slab) checkSlab(buf []float64, what string) {
	if len(buf) < s.L*s.capn {
		panic("model: " + what + " shorter than L×Stride")
	}
}

// MuOfNInto is the allocation-free Params.MuOfN: it fills dst (length L)
// with μ_i(N) = λ_i(N)·T.
//
//mlckpt:hotpath
func (p *Params) MuOfNInto(dst []float64, n, wallClockSec float64) {
	for i := range dst {
		dst[i] = p.Rates.ExpectedFailures(i, n, wallClockSec)
	}
}

// BOfTInto is the allocation-free Params.BOfT: it fills dst (length L) with
// b_i = λ_i(1)·T.
//
//mlckpt:hotpath
func (p *Params) BOfTInto(dst []float64, wallClockSec float64) {
	for i := range dst {
		dst[i] = p.Rates.PerSecondAt(i, 1) * wallClockSec
	}
}
