package model

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"mlckpt/internal/failure"
	"mlckpt/internal/numopt"
	"mlckpt/internal/overhead"
	"mlckpt/internal/speedup"
)

// paperParams builds the evaluation setup of Section IV: quadratic speedup
// with κ=0.46, N^(*)=1e6, Table II FTI costs, rates 16-12-8-4 at baseline
// 1e6, Te in core-days.
func paperParams(teCoreDays float64, spec string) *Params {
	return &Params{
		Te:      teCoreDays * failure.SecondsPerDay,
		Speedup: speedup.Quadratic{Kappa: 0.46, NStar: 1e6},
		Levels:  overhead.SymmetricLevels(overhead.FusionFittedCosts(), 1.0),
		Alloc:   60,
		Rates:   failure.MustParseRates(spec, 1e6),
	}
}

func TestValidate(t *testing.T) {
	p := paperParams(3e6, "16-12-8-4")
	if err := p.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := *p
	bad.Te = 0
	if err := bad.Validate(); !errors.Is(err, ErrParams) {
		t.Errorf("zero Te: %v", err)
	}
	bad = *p
	bad.Speedup = nil
	if err := bad.Validate(); !errors.Is(err, ErrParams) {
		t.Errorf("nil speedup: %v", err)
	}
	bad = *p
	bad.Levels = nil
	if err := bad.Validate(); !errors.Is(err, ErrParams) {
		t.Errorf("no levels: %v", err)
	}
	bad = *p
	bad.Alloc = -1
	if err := bad.Validate(); !errors.Is(err, ErrParams) {
		t.Errorf("negative alloc: %v", err)
	}
	bad = *p
	bad.Rates = failure.MustParseRates("1-2", 1e6)
	if err := bad.Validate(); !errors.Is(err, ErrParams) {
		t.Errorf("level mismatch: %v", err)
	}
}

func TestMuAndB(t *testing.T) {
	p := paperParams(3e6, "16-12-8-4")
	day := failure.SecondsPerDay
	mu := p.MuOfN(1e6, day)
	want := []float64{16, 12, 8, 4}
	for i := range mu {
		if math.Abs(mu[i]-want[i]) > 1e-9 {
			t.Errorf("μ_%d = %g, want %g", i+1, mu[i], want[i])
		}
	}
	b := p.BOfT(day)
	// μ_i(N) = b_i·N must reproduce mu at N=1e6.
	for i := range b {
		if math.Abs(b[i]*1e6-mu[i]) > 1e-9 {
			t.Errorf("b_%d·N = %g, want μ=%g", i+1, b[i]*1e6, mu[i])
		}
	}
}

func TestExpectedRollbackStructure(t *testing.T) {
	p := paperParams(3e6, "16-12-8-4")
	n := 5e5
	x := []float64{400, 200, 100, 50}
	// Level 1 rollback: f/(2x_1) + C_1/2.
	want := p.ProductiveTime(n)/(2*x[0]) + p.Levels[0].Checkpoint.At(n)/2
	if got := p.ExpectedRollback(x, n, 0); math.Abs(got-want) > 1e-9 {
		t.Errorf("level-1 rollback = %g, want %g", got, want)
	}
	// Higher levels include all lower-level checkpoint overheads, so for
	// equal x the loss must increase with level.
	eq := []float64{100, 100, 100, 100}
	prev := 0.0
	for i := 0; i < 4; i++ {
		cur := p.ExpectedRollback(eq, n, i)
		if cur <= prev {
			t.Errorf("rollback not increasing with level at i=%d: %g <= %g", i, cur, prev)
		}
		prev = cur
	}
}

func TestWallClockReducesToPieces(t *testing.T) {
	p := paperParams(3e6, "16-12-8-4")
	n := 5e5
	x := []float64{400, 200, 100, 50}
	mu := []float64{0, 0, 0, 0}
	// With no failures, E(T_w) = productive + Σ C_i(x_i−1).
	want := p.ProductiveTime(n)
	for i := range x {
		want += p.Levels[i].Checkpoint.At(n) * (x[i] - 1)
	}
	if got := p.WallClock(x, n, mu); math.Abs(got-want) > 1e-6 {
		t.Errorf("failure-free wall clock = %g, want %g", got, want)
	}
	// Adding failures strictly increases the wall clock.
	mu2 := []float64{10, 5, 2, 1}
	if p.WallClock(x, n, mu2) <= want {
		t.Error("failures did not increase expected wall clock")
	}
}

func TestGradXMatchesFiniteDifference(t *testing.T) {
	p := paperParams(3e6, "16-12-8-4")
	n := 472000.0
	mu := p.MuOfN(n, 20*failure.SecondsPerDay)
	x := []float64{3000, 900, 300, 60}
	for i := 0; i < 4; i++ {
		analytic := p.GradX(x, n, mu, i)
		xi := i
		numeric := numopt.PartialDerivative(func(v []float64) float64 {
			return p.WallClock(v, n, mu)
		}, x, xi)
		if math.Abs(analytic-numeric) > 1e-3*(1+math.Abs(analytic)) {
			t.Errorf("∂E/∂x_%d: analytic %g vs numeric %g", i+1, analytic, numeric)
		}
	}
}

func TestGradNMatchesFiniteDifference(t *testing.T) {
	p := paperParams(3e6, "16-12-8-4")
	wct := 20 * failure.SecondsPerDay
	b := p.BOfT(wct)
	x := []float64{3000, 900, 300, 60}
	f := func(n float64) float64 {
		mu := make([]float64, len(b))
		for i := range b {
			mu[i] = b[i] * n
		}
		return p.WallClock(x, n, mu)
	}
	for _, n := range []float64{2e5, 5e5, 8e5} {
		analytic := p.GradN(x, n, b)
		numeric := numopt.DerivativeStep(f, n, 1.0)
		if math.Abs(analytic-numeric) > 1e-3*(1+math.Abs(analytic)) {
			t.Errorf("∂E/∂N at %g: analytic %g vs numeric %g", n, analytic, numeric)
		}
	}
}

func TestConvexityUnderFixedMuCondition(t *testing.T) {
	// Under μ_i(N)=b_i·N (Algorithm 1's condition), E(T_w) is convex in
	// each x_i and in N on (0, N^(*)].
	p := paperParams(3e6, "16-12-8-4")
	wct := 20 * failure.SecondsPerDay
	b := p.BOfT(wct)
	x := []float64{3000, 900, 300, 60}
	fN := func(n float64) float64 {
		mu := make([]float64, len(b))
		for i := range b {
			mu[i] = b[i] * n
		}
		return p.WallClock(x, n, mu)
	}
	if ok, lo, hi := numopt.IsConvexOn(fN, 1e4, 1e6, 60, 1e-3); !ok {
		t.Errorf("E(T_w) nonconvex in N on [%g, %g]", lo, hi)
	}
	for i := 0; i < 4; i++ {
		xi := i
		fx := func(v float64) float64 {
			xx := append([]float64(nil), x...)
			xx[xi] = v
			mu := make([]float64, len(b))
			for j := range b {
				mu[j] = b[j] * 5e5
			}
			return p.WallClock(xx, 5e5, mu)
		}
		if ok, lo, hi := numopt.IsConvexOn(fx, 1, 5000, 60, 1e-3); !ok {
			t.Errorf("E(T_w) nonconvex in x_%d on [%g, %g]", i+1, lo, hi)
		}
	}
}

func TestSelfConsistentNonconvexity(t *testing.T) {
	// Section III-A: the unconditioned Formula (6) is NOT convex in N in
	// some regimes. Exhibit one: high failure rate, linear-in-N recovery.
	te := 4000.0 * failure.SecondsPerDay
	c := overhead.LinearCost(5, 0.005)
	r := overhead.LinearCost(5, 0.005)
	lambda := 40.0 / failure.SecondsPerDay / 2 // high failure rate per second
	f := func(n float64) float64 {
		return SelfConsistentSingleLevel(te, 0.46, c, r, 60, lambda, 200, n)
	}
	ok, _, _ := numopt.IsConvexOn(f, 1e3, 4e5, 80, 1e-6)
	if ok {
		t.Skip("nonconvexity not exhibited at this setting (acceptable: paper only claims existence)")
	}
	// Also confirm the denominator guard.
	if v := SelfConsistentSingleLevel(te, 0.46, c, r, 60, 1.0, 1, 10); !math.IsInf(v, 1) {
		t.Errorf("non-positive denominator should yield +Inf, got %g", v)
	}
}

func TestYoungX(t *testing.T) {
	p := paperParams(3e6, "16-12-8-4")
	n := 1e6
	mu := p.MuOfN(n, 10*failure.SecondsPerDay)
	for i := 0; i < 4; i++ {
		x := p.YoungX(n, mu, i)
		want := math.Sqrt(mu[i] * p.ProductiveTime(n) / (2 * p.Levels[i].Checkpoint.At(n)))
		if want < 1 {
			want = 1
		}
		if math.Abs(x-want) > 1e-9 {
			t.Errorf("Young x_%d = %g, want %g", i+1, x, want)
		}
	}
	// Zero failures clamp at 1.
	if x := p.YoungX(n, []float64{0, 0, 0, 0}, 0); x != 1 {
		t.Errorf("zero-μ Young x = %g, want 1", x)
	}
}

func TestSingleLevelWallClockMatchesFormula7(t *testing.T) {
	// Linear speedup, constant costs: Formula (7) exactly.
	te := 4000.0 * failure.SecondsPerDay
	kappa := 0.46
	g := speedup.Linear{Kappa: kappa, MaxScale: 1e6}
	c := overhead.Constant(5)
	r := overhead.Constant(5)
	alloc := 0.0
	bCoef := 5e-6
	x, n := 500.0, 1e5
	got := SingleLevelWallClock(te, g, c, r, alloc, bCoef, x, n)
	want := te/(kappa*n) + 5*(x-1) + bCoef*n*(te/(kappa*n)/(2*x)+5+0)
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("Formula 7 mismatch: %g vs %g", got, want)
	}
}

func TestEfficiency(t *testing.T) {
	// Table IV cross-check: Te=2e6 core-days, WCT=14.6 days, N=866k
	// should give efficiency ≈ 0.158.
	te := 2e6 * failure.SecondsPerDay
	wct := 14.6 * failure.SecondsPerDay
	eff := Efficiency(te, wct, 866000)
	if math.Abs(eff-0.158) > 0.002 {
		t.Errorf("efficiency = %g, want ≈0.158", eff)
	}
	if !math.IsNaN(Efficiency(te, 0, 100)) || !math.IsNaN(Efficiency(te, 100, 0)) {
		t.Error("degenerate inputs should yield NaN")
	}
}

// Property: wall clock is monotone in every μ component.
func TestWallClockMonotoneInMuProperty(t *testing.T) {
	p := paperParams(3e6, "16-12-8-4")
	prop := func(seed uint64) bool {
		n := 1e5 + float64(seed%9)*1e5
		x := []float64{1000, 500, 200, 50}
		base := []float64{5, 4, 3, 2}
		w0 := p.WallClock(x, n, base)
		for i := range base {
			bumped := append([]float64(nil), base...)
			bumped[i] *= 2
			if p.WallClock(x, n, bumped) <= w0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: at the analytic stationary point of x_i (GradX = 0), small
// perturbations of x_i never decrease E(T_w) (local optimality under
// convexity).
func TestStationaryPointLocalOptimalityProperty(t *testing.T) {
	p := paperParams(3e6, "16-12-8-4")
	n := 5e5
	mu := p.MuOfN(n, 15*failure.SecondsPerDay)
	// Solve level 0's stationary x by bisection on GradX.
	x := []float64{1000, 500, 200, 50}
	res, err := numopt.Bisect(func(v float64) float64 {
		xx := append([]float64(nil), x...)
		xx[0] = v
		return p.GradX(xx, n, mu, 0)
	}, 1, 1e7, 1e-9, 400)
	if err != nil {
		t.Fatalf("no stationary point: %v", err)
	}
	x0 := res.Root
	eval := func(v float64) float64 {
		xx := append([]float64(nil), x...)
		xx[0] = v
		return p.WallClock(xx, n, mu)
	}
	base := eval(x0)
	for _, d := range []float64{-0.2, -0.05, 0.05, 0.2} {
		if eval(x0*(1+d)) < base-1e-9 {
			t.Errorf("perturbation %+.0f%% decreased E(T_w)", d*100)
		}
	}
}
