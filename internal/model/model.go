// Package model implements the analytic expected-wall-clock model of the
// paper: the multilevel objective E(T_w) (Formula 21) with its expected
// rollback loss (Formula 18), the single-level specializations (Formulas
// 5–7 and 13), the self-consistent closed form used in the difficulty
// analysis (Formula 6), Young's initialization (Formula 25), and the
// analytic first-order conditions (Formulas 23/24).
//
// Everything here is deterministic algebra over a Params value; the solvers
// in internal/core search these functions, and internal/sim validates them
// stochastically.
package model

import (
	"errors"
	"fmt"
	"math"

	"mlckpt/internal/failure"
	"mlckpt/internal/overhead"
	"mlckpt/internal/speedup"
)

// ErrParams is returned when a Params value is structurally invalid.
var ErrParams = errors.New("model: invalid parameters")

// Params bundles everything the analytic model needs. All times are in
// seconds; Te is the single-core productive time (the paper quotes it in
// core-days; multiply by failure.SecondsPerDay).
type Params struct {
	Te      float64          // single-core productive time, seconds
	Speedup speedup.Model    // g(N)
	Levels  []overhead.Level // per-level checkpoint/recovery cost models
	Alloc   float64          // A: resource (re)allocation period, seconds
	Rates   failure.Rates    // per-level failure rates vs scale
}

// L returns the number of checkpoint levels.
func (p *Params) L() int { return len(p.Levels) }

// Validate checks structural consistency.
func (p *Params) Validate() error {
	if p.Te <= 0 {
		return fmt.Errorf("%w: Te = %g", ErrParams, p.Te)
	}
	if p.Speedup == nil {
		return fmt.Errorf("%w: nil speedup model", ErrParams)
	}
	if len(p.Levels) == 0 {
		return fmt.Errorf("%w: no checkpoint levels", ErrParams)
	}
	if p.Alloc < 0 {
		return fmt.Errorf("%w: negative allocation period", ErrParams)
	}
	if p.Rates.Levels() != len(p.Levels) {
		return fmt.Errorf("%w: %d failure levels vs %d checkpoint levels",
			ErrParams, p.Rates.Levels(), len(p.Levels))
	}
	return nil
}

// ProductiveTime returns f(T_e, N) = T_e/g(N) in seconds.
func (p *Params) ProductiveTime(n float64) float64 {
	return speedup.ParallelTime(p.Speedup, p.Te, n)
}

// MuOfN returns the per-level expected failure counts μ_i(N) = λ_i(N)·T for
// a frozen wall-clock estimate T (seconds). This is the extra condition of
// Algorithm 1: within one inner solve, μ depends on N only.
func (p *Params) MuOfN(n, wallClockSec float64) []float64 {
	mu := make([]float64, p.L())
	for i := range mu {
		mu[i] = p.Rates.ExpectedFailures(i, n, wallClockSec)
	}
	return mu
}

// BOfT returns the linear coefficients b_i such that μ_i(N) = b_i·N for a
// frozen wall-clock estimate T: b_i = λ_i(1)·T = r_i·T/(N_b·86400). These
// are the μ'_i(N) values in Formula (24).
func (p *Params) BOfT(wallClockSec float64) []float64 {
	b := make([]float64, p.L())
	for i := range b {
		b[i] = p.Rates.PerSecondAt(i, 1) * wallClockSec
	}
	return b
}

// ExpectedRollback returns E(Γ_ij), the expected per-failure rollback loss
// at level i (0-indexed), Formula (18):
//
//	E(Γ_ij) = f(T_e,N)/(2x_i) + Σ_{k=1..i} C_k(N)·x_k/(2x_i)
//
// The sum counts the lower-level checkpoint work that must be redone plus
// half of the level's own checkpoint overhead.
func (p *Params) ExpectedRollback(x []float64, n float64, i int) float64 {
	loss := p.ProductiveTime(n) / (2 * x[i])
	for k := 0; k <= i; k++ {
		loss += p.Levels[k].Checkpoint.At(n) * x[k] / (2 * x[i])
	}
	return loss
}

// WallClock evaluates the multilevel objective E(T_w) (Formula 21) at
// checkpoint-interval counts x (len L), scale n, and frozen expected
// failure counts mu (len L).
func (p *Params) WallClock(x []float64, n float64, mu []float64) float64 {
	total := p.ProductiveTime(n)
	for i := range p.Levels {
		total += p.Levels[i].Checkpoint.At(n) * (x[i] - 1)
	}
	for i := range p.Levels {
		total += mu[i] * (p.ExpectedRollback(x, n, i) + p.Alloc + p.Levels[i].Recovery.At(n))
	}
	return total
}

// GradX returns ∂E(T_w)/∂x_i (Formula 23):
//
//	C_i − μ_i/(2x_i²)·(T_e/g(N) + Σ_{j<i} C_j·x_j) + (C_i/2)·Σ_{j>i} μ_j/x_j
func (p *Params) GradX(x []float64, n float64, mu []float64, i int) float64 {
	ci := p.Levels[i].Checkpoint.At(n)
	inner := p.ProductiveTime(n)
	for j := 0; j < i; j++ {
		inner += p.Levels[j].Checkpoint.At(n) * x[j]
	}
	grad := ci - mu[i]/(2*x[i]*x[i])*inner
	higher := 0.0
	for j := i + 1; j < p.L(); j++ {
		higher += mu[j] / x[j]
	}
	return grad + ci/2*higher
}

// GradN returns ∂E(T_w)/∂N (Formula 24) under μ_i(N) = b_i·N (so μ'_i = b_i
// and μ_i = b_i·n):
//
//	T_e/g² [ Σ b_i/(2x_i)·g − (1 + Σ μ_i/(2x_i))·g' ]
//	+ Σ C'_i(x_i−1)
//	+ Σ [ b_i(Σ_{k≤i} C_k x_k/(2x_i) + A + R_i) + μ_i(Σ_{k≤i} C'_k x_k/(2x_i) + R'_i) ]
func (p *Params) GradN(x []float64, n float64, b []float64) float64 {
	g := p.Speedup.Speedup(n)
	gp := p.Speedup.Derivative(n)
	sumBp, sumMu := 0.0, 0.0
	for i := range p.Levels {
		sumBp += b[i] / (2 * x[i])
		sumMu += b[i] * n / (2 * x[i])
	}
	grad := p.Te / (g * g) * (sumBp*g - (1+sumMu)*gp)
	for i := range p.Levels {
		grad += p.Levels[i].Checkpoint.DerivativeAt(n) * (x[i] - 1)
	}
	for i := range p.Levels {
		sumCk, sumCkPrime := 0.0, 0.0
		for k := 0; k <= i; k++ {
			sumCk += p.Levels[k].Checkpoint.At(n) * x[k] / (2 * x[i])
			sumCkPrime += p.Levels[k].Checkpoint.DerivativeAt(n) * x[k] / (2 * x[i])
		}
		grad += b[i] * (sumCk + p.Alloc + p.Levels[i].Recovery.At(n))
		grad += b[i] * n * (sumCkPrime + p.Levels[i].Recovery.DerivativeAt(n))
	}
	return grad
}

// YoungX returns the Young-formula initialization for level i (Formula 25):
//
//	x_i = sqrt( μ_i(N)·(T_e/g(N)) / (2·C_i(N)) )
//
// clamped below at 1 (at least one interval).
func (p *Params) YoungX(n float64, mu []float64, i int) float64 {
	c := p.Levels[i].Checkpoint.At(n)
	if c <= 0 {
		return 1
	}
	x := math.Sqrt(mu[i] * p.ProductiveTime(n) / (2 * c))
	if x < 1 || math.IsNaN(x) {
		return 1
	}
	return x
}

// SingleLevelWallClock evaluates the paper's single-level objective
// (Formula 7 generalized to Formula 13's nonlinear g and non-constant
// costs):
//
//	E(T_w) = T_e/g(N) + C(N)(x−1) + μ(N)·( T_e/g(N)/(2x) + R(N) + A )
//
// where μ(N) = b·N. The single-level derivation omits the C/2 rollback term
// present in the multilevel Formula (18); keep that in mind when comparing
// with WallClock at L=1.
func SingleLevelWallClock(te float64, g speedup.Model, c, r overhead.Cost, alloc, b, x, n float64) float64 {
	pt := speedup.ParallelTime(g, te, n)
	return pt + c.At(n)*(x-1) + b*n*(pt/(2*x)+r.At(n)+alloc)
}

// SelfConsistentSingleLevel evaluates Formula (6): the closed form obtained
// by eliminating E(Y) = λ(N)·E(T_w), used in the difficulty analysis of
// Section III-A. λ is the failure rate per second at scale N; the
// denominator going non-positive means the model predicts a never-ending
// execution (failure faster than progress), reported as +Inf.
func SelfConsistentSingleLevel(te, kappa float64, c, r overhead.Cost, alloc, lambda, x, n float64) float64 {
	num := te/(kappa*n) + c.At(n)*(x-1)
	den := 1 - lambda*(te/(2*x*kappa*n)+r.At(n)+alloc)
	if den <= 0 {
		return math.Inf(1)
	}
	return num / den
}

// Efficiency returns the paper's efficiency (processor utilization) metric:
// the wall-clock-based speedup T_e/T_w divided by the number of cores.
func Efficiency(te, wallClock, n float64) float64 {
	if wallClock <= 0 || n <= 0 {
		return math.NaN()
	}
	return te / wallClock / n
}
