package model

// Portions is the analytic decomposition of E(T_w) into the four
// wall-clock portions the paper plots in Figures 5/6. It mirrors the
// simulator's accounting: Productive is the failure-free parallel time,
// Checkpoint the first-time checkpoint overhead, Restart the allocation
// plus recovery time, and Rollback the expected re-executed work
// (including the re-taken checkpoint overheads of Formula 18).
type Portions struct {
	Productive float64
	Checkpoint float64
	Restart    float64
	Rollback   float64
}

// Total returns the sum of the portions (= the Formula 21 wall clock).
func (p Portions) Total() float64 {
	return p.Productive + p.Checkpoint + p.Restart + p.Rollback
}

// WallClockPortions splits the Formula 21 objective into its portions at
// checkpoint counts x, scale n, and expected failure counts mu.
func (p *Params) WallClockPortions(x []float64, n float64, mu []float64) Portions {
	out := Portions{Productive: p.ProductiveTime(n)}
	for i := range p.Levels {
		out.Checkpoint += p.Levels[i].Checkpoint.At(n) * (x[i] - 1)
	}
	for i := range p.Levels {
		out.Rollback += mu[i] * p.ExpectedRollback(x, n, i)
		out.Restart += mu[i] * (p.Alloc + p.Levels[i].Recovery.At(n))
	}
	return out
}

// SelfConsistentWallClock iterates T = E(T_w | μ(T)) to its fixed point:
// the wall clock at which the expected failure counts are consistent with
// the wall clock itself. It returns the converged value and the iteration
// count; ok is false when the feedback exceeds unity and no finite fixed
// point exists (execution that never completes in expectation — the
// regime the simulator reports as hundreds of days or truncation).
func (p *Params) SelfConsistentWallClock(x []float64, n float64, tol float64, maxIter int) (wct float64, iters int, ok bool) {
	if tol <= 0 {
		tol = 1e-9
	}
	if maxIter <= 0 {
		maxIter = 500
	}
	t := p.ProductiveTime(n)
	for k := 1; k <= maxIter; k++ {
		next := p.WallClock(x, n, p.MuOfN(n, t))
		if next <= 0 || next > 1e18 {
			return t, k, false
		}
		if abs(next-t) <= tol*t {
			return next, k, true
		}
		t = next
	}
	return t, maxIter, false
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
