// Package eventq is the deterministic virtual-time event queue shared by
// the discrete-event engines in this repository: the mpisim rank scheduler
// (internal/mpisim, which resumes the runnable rank with the smallest
// virtual clock) and the tick-quantized simulator twin (internal/sim
// RunTicks, which jumps between interesting tick boundaries instead of
// iterating every tick).
//
// The queue is a binary min-heap ordered by (time, insertion sequence):
// ties on virtual time pop in insertion order, so the processing order is
// a pure function of the push sequence — never of map iteration, hashing,
// or goroutine scheduling. That property is what lets both engines promise
// byte-identical outputs across hosts and worker counts.
package eventq

// Item is one scheduled entry: an opaque integer payload due at a virtual
// time. Payloads are integers (rank ids, event kinds) rather than
// interfaces so a million-entry queue costs one slab and zero boxing.
type Item struct {
	Time    float64
	Payload int64
	seq     uint64
}

// Queue is a deterministic min-heap of Items. The zero value is ready to
// use.
type Queue struct {
	heap []Item
	seq  uint64
}

// Len returns the number of queued items.
func (q *Queue) Len() int { return len(q.heap) }

// Reset empties the queue while keeping its backing storage.
func (q *Queue) Reset() {
	q.heap = q.heap[:0]
	q.seq = 0
}

// Push schedules payload at time t.
//
//mlckpt:hotpath
func (q *Queue) Push(t float64, payload int64) {
	q.heap = append(q.heap, Item{Time: t, Payload: payload, seq: q.seq})
	q.seq++
	q.up(len(q.heap) - 1)
}

// Min returns the earliest item without removing it. It panics on an
// empty queue (callers gate on Len).
func (q *Queue) Min() Item { return q.heap[0] }

// Pop removes and returns the earliest item: smallest time, then smallest
// insertion sequence. It panics on an empty queue.
//
//mlckpt:hotpath
func (q *Queue) Pop() Item {
	top := q.heap[0]
	last := len(q.heap) - 1
	q.heap[0] = q.heap[last]
	q.heap = q.heap[:last]
	if last > 0 {
		q.down(0)
	}
	return top
}

// less orders by time, breaking ties by insertion sequence so equal-time
// items pop first-in first-out.
func (q *Queue) less(i, j int) bool {
	//lint:allow floateq heap ordering needs exact identity: any two distinct stored times must order by time, and only bit-identical times fall through to the sequence tie-break
	if q.heap[i].Time != q.heap[j].Time {
		return q.heap[i].Time < q.heap[j].Time
	}
	return q.heap[i].seq < q.heap[j].seq
}

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.heap[i], q.heap[parent] = q.heap[parent], q.heap[i]
		i = parent
	}
}

func (q *Queue) down(i int) {
	n := len(q.heap)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && q.less(l, min) {
			min = l
		}
		if r < n && q.less(r, min) {
			min = r
		}
		if min == i {
			return
		}
		q.heap[i], q.heap[min] = q.heap[min], q.heap[i]
		i = min
	}
}
