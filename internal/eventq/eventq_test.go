package eventq

import (
	"math/rand"
	"sort"
	"testing"
)

func TestQueueOrdersByTime(t *testing.T) {
	var q Queue
	q.Push(3, 30)
	q.Push(1, 10)
	q.Push(2, 20)
	for _, want := range []int64{10, 20, 30} {
		if got := q.Min().Payload; got != want {
			t.Fatalf("Min payload = %d, want %d", got, want)
		}
		if got := q.Pop().Payload; got != want {
			t.Fatalf("Pop payload = %d, want %d", got, want)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d after draining, want 0", q.Len())
	}
}

// Ties on virtual time must pop in insertion order — the property both
// engines rely on for schedule-independent output.
func TestQueueTiesPopInInsertionOrder(t *testing.T) {
	var q Queue
	for i := int64(0); i < 100; i++ {
		q.Push(7, i)
	}
	for i := int64(0); i < 100; i++ {
		if got := q.Pop().Payload; got != i {
			t.Fatalf("tie %d popped payload %d, want insertion order", i, got)
		}
	}
}

// Reset must restore the zero-value behavior, including the insertion
// sequence counter, so a reused queue pops identically to a fresh one.
func TestQueueResetRestoresDeterminism(t *testing.T) {
	run := func(q *Queue) []int64 {
		q.Push(5, 1)
		q.Push(5, 2)
		q.Push(4, 3)
		var out []int64
		for q.Len() > 0 {
			out = append(out, q.Pop().Payload)
		}
		return out
	}
	var fresh Queue
	want := run(&fresh)
	var reused Queue
	reused.Push(9, 99)
	reused.Reset()
	got := run(&reused)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("reused queue popped %v, fresh popped %v", got, want)
		}
	}
}

// Property: against a stable sort oracle over random (time, payload)
// pushes, the heap pops the exact same sequence.
func TestQueueMatchesStableSort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		var q Queue
		n := 1 + rng.Intn(200)
		type entry struct {
			time    float64
			payload int64
		}
		entries := make([]entry, n)
		for i := range entries {
			// Coarse times force plenty of ties.
			entries[i] = entry{float64(rng.Intn(10)), int64(i)}
			q.Push(entries[i].time, entries[i].payload)
		}
		sort.SliceStable(entries, func(a, b int) bool {
			return entries[a].time < entries[b].time
		})
		for i, want := range entries {
			got := q.Pop()
			if got.Time != want.time || got.Payload != want.payload {
				t.Fatalf("trial %d pop %d: got (%g,%d), want (%g,%d)",
					trial, i, got.Time, got.Payload, want.time, want.payload)
			}
		}
	}
}
