package cpu

// cpuid executes the CPUID instruction with the given leaf/subleaf.
func cpuid(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (the XCR0 state mask).
func xgetbv() (eax, edx uint32)

func init() {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return
	}
	_, _, ecx1, _ := cpuid(1, 0)
	hasOSXSAVE := ecx1&(1<<27) != 0
	hasAVX := ecx1&(1<<28) != 0
	if !hasOSXSAVE || !hasAVX {
		return
	}
	// The OS must have enabled XMM (bit 1) and YMM (bit 2) state saving,
	// or AVX registers are silently clobbered across context switches.
	xcr0, _ := xgetbv()
	if xcr0&0x6 != 0x6 {
		return
	}
	_, ebx7, _, _ := cpuid(7, 0)
	X86.HasAVX2 = ebx7&(1<<5) != 0
}
