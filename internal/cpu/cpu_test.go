package cpu

import (
	"runtime"
	"testing"
)

func TestFlagsConsistent(t *testing.T) {
	// On non-amd64 hosts every flag must stay false (there is no detector).
	if runtime.GOARCH != "amd64" && X86.HasAVX2 {
		t.Fatalf("HasAVX2 = true on %s, want false", runtime.GOARCH)
	}
	t.Logf("GOARCH=%s HasAVX2=%v", runtime.GOARCH, X86.HasAVX2)
}
