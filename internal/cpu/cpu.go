// Package cpu detects the host's SIMD capabilities so accelerated kernels
// (the heat stencil, the bulk snapshot codecs) can pick a vector path at
// startup. Detection is one-shot at init; the exported flags never change
// afterwards, so hot loops can read them through a package-level bool
// without synchronization.
//
// The package deliberately mirrors the shape of golang.org/x/sys/cpu
// without importing it: the repo builds with the standard library only.
// On architectures without a detector (everything but amd64 here) the
// flags stay false and callers fall through to their portable kernels,
// which are the differential oracle for the vector paths anyway.
package cpu

// X86 reports the availability of the x86 ISA extensions the repo's
// kernels use. All flags include the OS-support check (XSAVE-enabled YMM
// state), not just the CPUID feature bit: a kernel may only look at the
// flag, never at CPUID directly.
var X86 struct {
	// HasAVX2 reports VEX-encoded 256-bit integer and float vector
	// support with OS-managed YMM state.
	HasAVX2 bool
}
