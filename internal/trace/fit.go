package trace

import (
	"fmt"
	"math"
	"sort"

	"mlckpt/internal/failure"
	"mlckpt/internal/stats"
)

// MTBF returns the mean time between failures of a trace over the horizon:
// horizon / count. It returns +Inf for an empty trace.
func MTBF(events []failure.Event, horizon float64) float64 {
	if len(events) == 0 || horizon <= 0 {
		return math.Inf(1)
	}
	return horizon / float64(len(events))
}

// WeibullFit holds method-of-moments estimates of a Weibull interarrival
// law.
type WeibullFit struct {
	Shape float64 // k: < 1 infant mortality, 1 exponential, > 1 wear-out
	Scale float64 // λ
	CV    float64 // observed coefficient of variation
}

// FitWeibull estimates Weibull parameters from a trace's interarrival
// times by matching the coefficient of variation:
//
//	CV² = Γ(1+2/k)/Γ(1+1/k)² − 1
//
// solved for the shape k by bisection, then the scale from the mean. It
// needs at least 10 interarrivals.
func FitWeibull(events []failure.Event, level int) (WeibullFit, error) {
	var ts []float64
	for _, e := range events {
		if e.Level == level {
			ts = append(ts, e.Time)
		}
	}
	sort.Float64s(ts)
	if len(ts) < 11 {
		return WeibullFit{}, fmt.Errorf("%w: %d events at level %d", ErrTrace, len(ts), level)
	}
	gaps := make([]float64, len(ts)-1)
	for i := 1; i < len(ts); i++ {
		gaps[i-1] = ts[i] - ts[i-1]
	}
	s := stats.Summarize(gaps)
	if s.Mean <= 0 || s.StdDev <= 0 {
		return WeibullFit{}, fmt.Errorf("%w: degenerate interarrivals", ErrTrace)
	}
	cv := s.StdDev / s.Mean
	targetCV2 := cv * cv

	cv2OfShape := func(k float64) float64 {
		g1 := math.Gamma(1 + 1/k)
		g2 := math.Gamma(1 + 2/k)
		return g2/(g1*g1) - 1
	}
	// CV² is strictly decreasing in k: bracket and bisect.
	lo, hi := 0.05, 20.0
	if targetCV2 >= cv2OfShape(lo) {
		return WeibullFit{Shape: lo, Scale: s.Mean / math.Gamma(1+1/lo), CV: cv}, nil
	}
	if targetCV2 <= cv2OfShape(hi) {
		return WeibullFit{Shape: hi, Scale: s.Mean / math.Gamma(1+1/hi), CV: cv}, nil
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if cv2OfShape(mid) > targetCV2 {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-9 {
			break
		}
	}
	k := (lo + hi) / 2
	return WeibullFit{Shape: k, Scale: s.Mean / math.Gamma(1+1/k), CV: cv}, nil
}
