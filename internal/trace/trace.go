// Package trace analyzes failure traces: per-level rate estimation,
// interarrival distribution diagnostics, and correlated-failure-window
// statistics (the paper's footnote 1: multiple nodes failing within a 1–2
// minute window count as one simultaneous failure event).
package trace

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"mlckpt/internal/failure"
	"mlckpt/internal/stats"
)

// ErrTrace is returned for degenerate traces.
var ErrTrace = errors.New("trace: insufficient data")

// LevelStats summarizes one level's failure stream.
type LevelStats struct {
	Level        int
	Count        int
	RatePerDay   float64 // events per day over the horizon
	MeanInterval float64 // mean interarrival, seconds
	CV           float64 // coefficient of variation of interarrivals
}

// Analyze computes per-level statistics of a trace observed over the given
// horizon (seconds). levels is the number of checkpoint levels.
func Analyze(events []failure.Event, levels int, horizon float64) ([]LevelStats, error) {
	if horizon <= 0 {
		return nil, fmt.Errorf("%w: horizon %g", ErrTrace, horizon)
	}
	out := make([]LevelStats, levels)
	perLevel := make([][]float64, levels)
	for _, e := range events {
		if e.Level < 0 || e.Level >= levels {
			return nil, fmt.Errorf("%w: event level %d out of range", ErrTrace, e.Level)
		}
		perLevel[e.Level] = append(perLevel[e.Level], e.Time)
	}
	for lvl := range out {
		ts := perLevel[lvl]
		sort.Float64s(ts)
		st := LevelStats{Level: lvl + 1, Count: len(ts)}
		st.RatePerDay = float64(len(ts)) / (horizon / failure.SecondsPerDay)
		if len(ts) >= 2 {
			gaps := make([]float64, len(ts)-1)
			for i := 1; i < len(ts); i++ {
				gaps[i-1] = ts[i] - ts[i-1]
			}
			s := stats.Summarize(gaps)
			st.MeanInterval = s.Mean
			if s.Mean > 0 {
				st.CV = s.StdDev / s.Mean
			}
		}
		out[lvl] = st
	}
	return out, nil
}

// LooksExponential reports whether a level's interarrivals are consistent
// with an exponential law via the coefficient of variation (CV ≈ 1 for
// exponential; CV << 1 periodic; CV >> 1 bursty). tol is the accepted
// deviation from 1 (e.g. 0.2).
func (s LevelStats) LooksExponential(tol float64) bool {
	if s.Count < 30 {
		return false // not enough evidence either way
	}
	return math.Abs(s.CV-1) <= tol
}

// WindowStats summarizes correlated-failure clustering for one window
// length.
type WindowStats struct {
	Window        float64 // seconds
	Clusters      int     // windows containing ≥ 2 events
	LargestSize   int
	EventsInside  int // events covered by multi-event windows
	FractionMulti float64
}

// Windows computes clustering statistics over a sorted-by-construction
// trace for the given window length (seconds).
func Windows(events []failure.Event, window float64) WindowStats {
	sizes := failure.CorrelatedWindows(events, window)
	ws := WindowStats{Window: window, Clusters: len(sizes)}
	for _, s := range sizes {
		ws.EventsInside += s
		if s > ws.LargestSize {
			ws.LargestSize = s
		}
	}
	if len(events) > 0 {
		ws.FractionMulti = float64(ws.EventsInside) / float64(len(events))
	}
	return ws
}

// EstimateRates fits a failure.Rates from an observed trace at a known
// scale: the per-level per-day rates are scaled back to the baseline.
func EstimateRates(events []failure.Event, levels int, horizon, scale, baseline float64) (failure.Rates, error) {
	st, err := Analyze(events, levels, horizon)
	if err != nil {
		return failure.Rates{}, err
	}
	if scale <= 0 || baseline <= 0 {
		return failure.Rates{}, fmt.Errorf("%w: scale %g baseline %g", ErrTrace, scale, baseline)
	}
	per := make([]float64, levels)
	for i, s := range st {
		per[i] = s.RatePerDay * baseline / scale
	}
	return failure.Rates{PerDay: per, Baseline: baseline}, nil
}
