package trace

import (
	"errors"
	"math"
	"testing"

	"mlckpt/internal/failure"
	"mlckpt/internal/stats"
)

func TestMTBF(t *testing.T) {
	events := []failure.Event{{Time: 1}, {Time: 2}, {Time: 3}, {Time: 4}}
	if m := MTBF(events, 400); m != 100 {
		t.Errorf("MTBF = %g, want 100", m)
	}
	if !math.IsInf(MTBF(nil, 100), 1) {
		t.Error("empty trace should have infinite MTBF")
	}
}

func TestFitWeibullRecoversExponential(t *testing.T) {
	r := failure.MustParseRates("48", 1e6)
	events := failure.Trace(r, 1e6, 400*failure.SecondsPerDay, failure.Exponential, 0, stats.NewRNG(3))
	fit, err := FitWeibull(events, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Shape-1) > 0.1 {
		t.Errorf("exponential trace fitted shape %g, want ≈1", fit.Shape)
	}
	// Scale ≈ mean interarrival = 1800 s (48/day).
	if math.Abs(fit.Scale-1800) > 150 {
		t.Errorf("scale = %g, want ≈1800", fit.Scale)
	}
}

func TestFitWeibullRecoversShape(t *testing.T) {
	for _, shape := range []float64{0.6, 1.5} {
		r := failure.MustParseRates("48", 1e6)
		events := failure.Trace(r, 1e6, 600*failure.SecondsPerDay, failure.Weibull, shape, stats.NewRNG(7))
		fit, err := FitWeibull(events, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fit.Shape-shape)/shape > 0.15 {
			t.Errorf("true shape %g fitted as %g", shape, fit.Shape)
		}
	}
}

func TestFitWeibullNeedsData(t *testing.T) {
	events := []failure.Event{{Time: 1}, {Time: 2}}
	if _, err := FitWeibull(events, 0); !errors.Is(err, ErrTrace) {
		t.Errorf("err = %v", err)
	}
	// Wrong level: no events there.
	if _, err := FitWeibull(events, 3); !errors.Is(err, ErrTrace) {
		t.Errorf("err = %v", err)
	}
}
