package trace

import (
	"errors"
	"math"
	"testing"

	"mlckpt/internal/failure"
	"mlckpt/internal/stats"
)

func sampleTrace(spec string, days float64, seed uint64) []failure.Event {
	r := failure.MustParseRates(spec, 1e6)
	return failure.Trace(r, 1e6, days*failure.SecondsPerDay, failure.Exponential, 0, stats.NewRNG(seed))
}

func TestAnalyzeRates(t *testing.T) {
	horizon := 100 * failure.SecondsPerDay
	events := sampleTrace("16-8-4-2", 100, 1)
	st, err := Analyze(events, 4, horizon)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{16, 8, 4, 2} {
		if math.Abs(st[i].RatePerDay-want) > 0.2*want {
			t.Errorf("level %d rate %.2f, want ≈%g", i+1, st[i].RatePerDay, want)
		}
		if st[i].Level != i+1 {
			t.Errorf("level label %d", st[i].Level)
		}
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := Analyze(nil, 2, 0); !errors.Is(err, ErrTrace) {
		t.Errorf("zero horizon: %v", err)
	}
	bad := []failure.Event{{Time: 1, Level: 7}}
	if _, err := Analyze(bad, 2, 100); !errors.Is(err, ErrTrace) {
		t.Errorf("bad level: %v", err)
	}
}

func TestExponentialDiagnostic(t *testing.T) {
	events := sampleTrace("24", 200, 3)
	st, err := Analyze(events, 1, 200*failure.SecondsPerDay)
	if err != nil {
		t.Fatal(err)
	}
	if !st[0].LooksExponential(0.2) {
		t.Errorf("exponential trace flagged non-exponential: CV = %g", st[0].CV)
	}
	// A perfectly periodic trace must be flagged.
	var periodic []failure.Event
	for i := 1; i <= 200; i++ {
		periodic = append(periodic, failure.Event{Time: float64(i) * 1000})
	}
	pst, err := Analyze(periodic, 1, 201000)
	if err != nil {
		t.Fatal(err)
	}
	if pst[0].LooksExponential(0.2) {
		t.Errorf("periodic trace flagged exponential: CV = %g", pst[0].CV)
	}
	// Too little data: undecidable.
	small, _ := Analyze(periodic[:5], 1, 6000)
	if small[0].LooksExponential(0.2) {
		t.Error("five events should not certify exponentiality")
	}
}

func TestWindows(t *testing.T) {
	events := []failure.Event{
		{Time: 0}, {Time: 30}, {Time: 50},
		{Time: 10000},
		{Time: 20000}, {Time: 20040},
	}
	ws := Windows(events, 60)
	if ws.Clusters != 2 || ws.LargestSize != 3 || ws.EventsInside != 5 {
		t.Errorf("window stats: %+v", ws)
	}
	if math.Abs(ws.FractionMulti-5.0/6.0) > 1e-12 {
		t.Errorf("fraction = %g", ws.FractionMulti)
	}
	empty := Windows(nil, 60)
	if empty.Clusters != 0 || empty.FractionMulti != 0 {
		t.Errorf("empty stats: %+v", empty)
	}
}

func TestEstimateRatesRoundTrip(t *testing.T) {
	// Sample at half the baseline scale; rates at scale are halved, and
	// the estimator must scale them back up.
	r := failure.MustParseRates("8-4", 1e6)
	horizon := 400 * failure.SecondsPerDay
	events := failure.Trace(r, 5e5, horizon, failure.Exponential, 0, stats.NewRNG(9))
	got, err := EstimateRates(events, 2, horizon, 5e5, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{8, 4} {
		if math.Abs(got.PerDay[i]-want) > 0.2*want {
			t.Errorf("level %d estimated %g, want ≈%g", i+1, got.PerDay[i], want)
		}
	}
	if _, err := EstimateRates(events, 2, horizon, 0, 1e6); !errors.Is(err, ErrTrace) {
		t.Errorf("zero scale: %v", err)
	}
}
