// Package sweep is the parallel parameter-sweep engine behind the paper
// reproduction and the public mlckpt.Sweep facade. The paper's entire
// evaluation (Figures 1-7, Tables II-IV) is a grid of independent
// Optimize+Simulate cells over scales, failure rates, policies, and level
// configurations; this package fans such grids across a bounded worker
// pool while keeping three guarantees:
//
//   - Determinism: every job's stochastic half receives an RNG stream
//     derived from the job's identity (stats.DeriveSeed), never from
//     execution order, so a sweep's results are bit-identical for any
//     worker count — workers=1 and workers=8 produce the same bytes.
//   - Memoization: jobs carry canonical content keys (Key) for their
//     solve and post stages; a concurrency-safe singleflight cache
//     (Cache) computes each distinct key once, so repeated inner solves
//     (Algorithm 1 fixed-point runs shared between Figure 5, Table III,
//     and Figure 7) are paid for once per process.
//   - Order independence: Run returns outcomes indexed by job position,
//     so callers read results as if the sweep had run serially.
//
// Run spawns its own pool per call and therefore composes: a top-level
// sweep over experiments may itself contain jobs that run nested sweeps
// over policy grids, all sharing one Cache, without deadlock.
package sweep

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"mlckpt/internal/obs"
	"mlckpt/internal/stats"
)

// Job is one cell of a sweep: a deterministic Solve stage (typically an
// Algorithm 1 run) and an optional stochastic Post stage (typically a
// batch of simulations) that consumes the solve result and a seed.
type Job struct {
	// Name labels the job in progress reports and errors.
	Name string

	// SolveKey, when non-empty, memoizes Solve results in the run's Cache
	// under this key. Build it with Key so equal problems share one solve.
	SolveKey string
	// Solve computes the deterministic half of the job. Required.
	Solve func() (any, error)

	// PostKey, when non-empty, memoizes Post results under this key. It
	// must cover everything Post depends on (including run counts and
	// seed inputs), not just the solve identity.
	PostKey string
	// Post, when non-nil, consumes the solve result with a deterministic
	// per-job seed (see Seed).
	Post func(solved any, seed uint64) (any, error)

	// Seed, when non-zero, is passed to Post verbatim. When zero, the
	// engine derives one as stats.DeriveSeed(Options.RootSeed, identity)
	// where identity is PostKey, else SolveKey, else Name — a pure
	// function of the job, independent of scheduling.
	Seed uint64
}

// identity is the substream name used for seed derivation.
func (j Job) identity() string {
	switch {
	case j.PostKey != "":
		return j.PostKey
	case j.SolveKey != "":
		return j.SolveKey
	default:
		return j.Name
	}
}

// Outcome is the result of one job, reported at the job's input position.
type Outcome struct {
	Index int
	Name  string

	Solved any // Solve result (possibly shared via the cache — treat as read-only)
	Result any // Post result, nil when the job has no Post stage
	Err    error

	Seed        uint64 // seed handed to Post (0 when no Post stage ran)
	SolveCached bool   // Solve was answered by the cache
	PostCached  bool   // Post was answered by the cache
}

// Options tunes one Run call.
type Options struct {
	// Workers bounds the pool; <= 0 means GOMAXPROCS.
	Workers int
	// RootSeed feeds per-job seed derivation for jobs without an explicit
	// Seed. Zero is a valid root.
	RootSeed uint64
	// Cache memoizes Solve/Post stages across jobs and across Run calls.
	// Nil gives the run a private cache.
	Cache *Cache
	// Progress, when non-nil, is called after every finished job with the
	// completion count, the total, and the job's name. Calls arrive from
	// worker goroutines but are serialized by the engine.
	Progress func(done, total int, name string)
	// Obs receives engine telemetry: job and cache-outcome counters in
	// the deterministic section, and — when Clock is also set — per-job
	// latencies and the peak in-flight depth in the volatile section.
	// Nil disables instrumentation.
	Obs obs.Recorder
	// Clock supplies wall-clock seconds for latency measurements (the
	// CLIs inject obs.WallClock). It is a parameter rather than a direct
	// time.Now call because this package is lint-gated: nothing here may
	// read the wall clock itself (see docs/OBSERVABILITY.md). Nil
	// disables latency metrics; everything else still records.
	Clock func() float64
}

// Run executes the jobs on a bounded worker pool and returns their
// outcomes in job order. It never fails as a whole: per-job errors are
// reported in the corresponding Outcome so a sweep survives isolated
// divergent cells.
func Run(jobs []Job, opts Options) []Outcome {
	outcomes := make([]Outcome, len(jobs))
	if len(jobs) == 0 {
		return outcomes
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	cache := opts.Cache
	if cache == nil {
		cache = NewCache()
	}

	var progressMu sync.Mutex
	done := 0
	report := func(name string) {
		if opts.Progress == nil {
			return
		}
		progressMu.Lock()
		done++
		opts.Progress(done, len(jobs), name)
		progressMu.Unlock()
	}

	rec := obs.OrNop(opts.Obs)
	var inflight atomic.Int64
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				rec.MaxVolatile("sweep.jobs.inflight_max", float64(inflight.Add(1)))
				start := 0.0
				if opts.Clock != nil {
					start = opts.Clock()
				}
				outcomes[i] = runJob(i, jobs[i], cache, opts.RootSeed)
				if opts.Clock != nil {
					rec.ObserveVolatile("sweep.job.latency_s", opts.Clock()-start)
				}
				inflight.Add(-1)
				recordJobObs(rec, jobs[i], outcomes[i])
				report(jobs[i].Name)
			}
		}()
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()
	return outcomes
}

// recordJobObs records one finished job's deterministic telemetry. Every
// count is a pure function of the job set: which job of a duplicate pair
// computes and which coalesces varies with scheduling, but the *number*
// of cached answers per stage does not.
func recordJobObs(rec obs.Recorder, j Job, o Outcome) {
	rec.Count("sweep.jobs", 1)
	if o.Err != nil {
		rec.Count("sweep.jobs.errors", 1)
		return
	}
	if j.SolveKey != "" {
		if o.SolveCached {
			rec.Count("sweep.solve.cache_hits", 1)
		} else {
			rec.Count("sweep.solve.computed", 1)
		}
	}
	if j.Post != nil && j.PostKey != "" {
		if o.PostCached {
			rec.Count("sweep.post.cache_hits", 1)
		} else {
			rec.Count("sweep.post.computed", 1)
		}
	}
}

func runJob(i int, j Job, cache *Cache, root uint64) Outcome {
	out := Outcome{Index: i, Name: j.Name}
	if j.Solve == nil {
		out.Err = fmt.Errorf("sweep: job %q has no Solve stage", j.Name)
		return out
	}
	if j.SolveKey != "" {
		out.Solved, out.Err, out.SolveCached = cache.Do(j.SolveKey, j.Solve)
	} else {
		out.Solved, out.Err = j.Solve()
	}
	if out.Err != nil || j.Post == nil {
		return out
	}
	out.Seed = j.Seed
	if out.Seed == 0 {
		out.Seed = stats.DeriveSeed(root, j.identity())
	}
	solved, seed := out.Solved, out.Seed
	if j.PostKey != "" {
		out.Result, out.Err, out.PostCached = cache.Do(j.PostKey, func() (any, error) {
			return j.Post(solved, seed)
		})
	} else {
		out.Result, out.Err = j.Post(solved, seed)
	}
	return out
}
