package sweep

import (
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"mlckpt/internal/stats"
)

// runStochasticGrid runs a grid whose Post stages draw from their seeds,
// returning the drawn values in job order. Used to prove worker-count
// independence.
func runStochasticGrid(t *testing.T, workers int) []uint64 {
	t.Helper()
	jobs := make([]Job, 40)
	for i := range jobs {
		i := i
		jobs[i] = Job{
			Name:  fmt.Sprintf("job-%d", i),
			Solve: func() (any, error) { return i * i, nil },
			Post: func(solved any, seed uint64) (any, error) {
				rng := stats.NewRNG(seed)
				v := rng.Uint64() ^ uint64(solved.(int))
				return v, nil
			},
		}
	}
	outs := Run(jobs, Options{Workers: workers, RootSeed: 99})
	vals := make([]uint64, len(outs))
	for i, o := range outs {
		if o.Err != nil {
			t.Fatalf("job %d: %v", i, o.Err)
		}
		if o.Index != i {
			t.Fatalf("outcome %d carries index %d", i, o.Index)
		}
		vals[i] = o.Result.(uint64)
	}
	return vals
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	serial := runStochasticGrid(t, 1)
	for _, workers := range []int{2, 8, 64} {
		got := runStochasticGrid(t, workers)
		if !reflect.DeepEqual(serial, got) {
			t.Errorf("workers=%d diverged from workers=1", workers)
		}
	}
}

func TestRunReturnsOutcomesInJobOrder(t *testing.T) {
	jobs := make([]Job, 10)
	for i := range jobs {
		i := i
		jobs[i] = Job{Name: fmt.Sprintf("j%d", i), Solve: func() (any, error) { return i, nil }}
	}
	outs := Run(jobs, Options{Workers: 4})
	for i, o := range outs {
		if o.Solved.(int) != i {
			t.Errorf("slot %d holds result %v", i, o.Solved)
		}
	}
}

func TestRunMemoizesEqualSolveKeys(t *testing.T) {
	var computes atomic.Int32
	jobs := make([]Job, 16)
	for i := range jobs {
		jobs[i] = Job{
			Name:     fmt.Sprintf("dup-%d", i),
			SolveKey: "shared-problem",
			Solve: func() (any, error) {
				computes.Add(1)
				return "solved", nil
			},
		}
	}
	cache := NewCache()
	outs := Run(jobs, Options{Workers: 8, Cache: cache})
	if got := computes.Load(); got != 1 {
		t.Errorf("shared problem solved %d times", got)
	}
	cached := 0
	for _, o := range outs {
		if o.Err != nil {
			t.Fatal(o.Err)
		}
		if o.Solved.(string) != "solved" {
			t.Errorf("job %s: solved = %v", o.Name, o.Solved)
		}
		if o.SolveCached {
			cached++
		}
	}
	if cached != len(jobs)-1 {
		t.Errorf("%d of %d jobs hit the cache", cached, len(jobs))
	}
	if hits, misses := cache.Stats(); hits != uint64(len(jobs)-1) || misses != 1 {
		t.Errorf("cache stats hits=%d misses=%d", hits, misses)
	}
}

func TestRunCacheSharedAcrossCalls(t *testing.T) {
	var computes atomic.Int32
	job := Job{
		Name:     "cell",
		SolveKey: "cell-key",
		Solve: func() (any, error) {
			computes.Add(1)
			return 7, nil
		},
	}
	cache := NewCache()
	Run([]Job{job}, Options{Cache: cache})
	outs := Run([]Job{job}, Options{Cache: cache})
	if computes.Load() != 1 {
		t.Errorf("computed %d times across two runs", computes.Load())
	}
	if !outs[0].SolveCached {
		t.Error("second run did not hit the cache")
	}
}

func TestRunIsolatesJobErrors(t *testing.T) {
	boom := errors.New("diverged")
	jobs := []Job{
		{Name: "bad", Solve: func() (any, error) { return nil, boom }},
		{Name: "good", Solve: func() (any, error) { return 1, nil }},
		{Name: "bad-post", Solve: func() (any, error) { return 1, nil },
			Post: func(any, uint64) (any, error) { return nil, boom }},
	}
	outs := Run(jobs, Options{Workers: 2})
	if !errors.Is(outs[0].Err, boom) || !errors.Is(outs[2].Err, boom) {
		t.Errorf("errors not reported: %v / %v", outs[0].Err, outs[2].Err)
	}
	if outs[1].Err != nil || outs[1].Solved.(int) != 1 {
		t.Errorf("healthy job contaminated: %+v", outs[1])
	}
}

func TestRunMissingSolveIsAnError(t *testing.T) {
	outs := Run([]Job{{Name: "empty"}}, Options{})
	if outs[0].Err == nil {
		t.Error("nil Solve accepted")
	}
}

func TestRunProgressCoversEveryJob(t *testing.T) {
	var calls atomic.Int32
	lastDone := atomic.Int32{}
	jobs := make([]Job, 12)
	for i := range jobs {
		jobs[i] = Job{Name: "p", Solve: func() (any, error) { return nil, nil }}
	}
	Run(jobs, Options{Workers: 4, Progress: func(done, total int, name string) {
		calls.Add(1)
		lastDone.Store(int32(done))
		if total != 12 || name != "p" {
			t.Errorf("progress(%d, %d, %q)", done, total, name)
		}
	}})
	if calls.Load() != 12 || lastDone.Load() != 12 {
		t.Errorf("progress called %d times, final done %d", calls.Load(), lastDone.Load())
	}
}

func TestRunNestedSweepsDoNotDeadlock(t *testing.T) {
	// A top-level sweep whose jobs each run their own inner sweep on the
	// same cache — the cmd/experiments composition pattern.
	cache := NewCache()
	outer := make([]Job, 4)
	for i := range outer {
		i := i
		outer[i] = Job{
			Name: fmt.Sprintf("outer-%d", i),
			Solve: func() (any, error) {
				inner := make([]Job, 8)
				for k := range inner {
					k := k
					inner[k] = Job{
						Name:     fmt.Sprintf("inner-%d", k),
						SolveKey: MustKey("nested", k),
						Solve:    func() (any, error) { return k, nil },
					}
				}
				outs := Run(inner, Options{Workers: 2, Cache: cache})
				sum := 0
				for _, o := range outs {
					sum += o.Solved.(int)
				}
				return sum, nil
			},
		}
	}
	outs := Run(outer, Options{Workers: 4, Cache: cache})
	for _, o := range outs {
		if o.Err != nil || o.Solved.(int) != 28 {
			t.Errorf("%s: %v %v", o.Name, o.Solved, o.Err)
		}
	}
	// 8 distinct inner problems across 4 outer jobs → 8 computes, 24 hits.
	if hits, misses := cache.Stats(); misses != 8 || hits != 24 {
		t.Errorf("nested cache stats hits=%d misses=%d", hits, misses)
	}
}

func TestExplicitSeedWinsOverDerivation(t *testing.T) {
	job := Job{
		Name:  "pinned",
		Solve: func() (any, error) { return nil, nil },
		Post:  func(_ any, seed uint64) (any, error) { return seed, nil },
		Seed:  12345,
	}
	outs := Run([]Job{job}, Options{RootSeed: 777})
	if outs[0].Result.(uint64) != 12345 || outs[0].Seed != 12345 {
		t.Errorf("seed not honored: %+v", outs[0])
	}
}

func TestDerivedSeedIndependentOfJobPosition(t *testing.T) {
	mk := func(name string) Job {
		return Job{
			Name:  name,
			Solve: func() (any, error) { return nil, nil },
			Post:  func(_ any, seed uint64) (any, error) { return seed, nil },
		}
	}
	a := Run([]Job{mk("x"), mk("y")}, Options{RootSeed: 5})
	b := Run([]Job{mk("y"), mk("x")}, Options{RootSeed: 5})
	if a[0].Seed != b[1].Seed || a[1].Seed != b[0].Seed {
		t.Errorf("seeds moved with position: %v vs %v", a, b)
	}
	if a[0].Seed == a[1].Seed {
		t.Error("distinct jobs share a seed")
	}
}
