package sweep

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Cache is a concurrency-safe memoization table with singleflight
// semantics: the first caller of a key computes it while concurrent
// callers of the same key block until that computation finishes, so a
// grid with repeated cells (the same Spec+Policy solved for several
// figures) pays for each distinct solve exactly once even when the
// duplicates are in flight simultaneously. Errors are cached alongside
// values — the solvers are deterministic, so a diverged cell would
// diverge again on retry.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry

	hits      atomic.Uint64
	misses    atomic.Uint64
	coalesced atomic.Uint64
}

type cacheEntry struct {
	ready chan struct{}
	val   any
	err   error
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{entries: map[string]*cacheEntry{}}
}

// Do returns the cached value for key, computing it with compute on the
// first call. The third return reports whether the value came from the
// cache (including waiting on another goroutine's in-flight computation).
func (c *Cache) Do(key string, compute func() (any, error)) (any, error, bool) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		select {
		case <-e.ready:
			// Completed entry: a plain hit.
		default:
			// Still computing on another goroutine: this caller coalesces
			// onto the in-flight computation. (Scheduling-dependent by
			// nature — reported as volatile telemetry, never compared
			// across runs.)
			c.coalesced.Add(1)
		}
		<-e.ready
		c.hits.Add(1)
		return e.val, e.err, true
	}
	e := &cacheEntry{ready: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()
	c.misses.Add(1)

	// A panicking compute must not leave waiters blocked on e.ready
	// forever: record it as an error, release them, then re-panic.
	defer func() {
		if r := recover(); r != nil {
			e.err = fmt.Errorf("sweep: compute for key %q panicked: %v", key, r)
			close(e.ready)
			panic(r)
		}
	}()
	e.val, e.err = compute()
	close(e.ready)
	return e.val, e.err, false
}

// Lookup returns the completed entry for key without computing or
// blocking. In-flight entries report !ok: the caller cannot use them yet,
// and waiting here would defeat the point of a non-blocking peek. Grid
// drivers use this to decide which solves still need computing before
// batching them into one lockstep call.
func (c *Cache) Lookup(key string) (any, error, bool) {
	c.mu.Lock()
	e, ok := c.entries[key]
	c.mu.Unlock()
	if !ok {
		return nil, nil, false
	}
	select {
	case <-e.ready:
		return e.val, e.err, true
	default:
		return nil, nil, false
	}
}

// Len reports the number of distinct keys (including in-flight ones).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats reports how many Do calls were answered from the cache (hits)
// and how many ran their computation (misses).
func (c *Cache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// Coalesced reports how many of the hits blocked on an in-flight
// computation of the same key (singleflight coalescing) rather than
// reading a completed entry. Unlike Stats, this depends on scheduling:
// serial sweeps coalesce nothing, parallel sweeps coalesce whenever
// duplicate cells are simultaneously in flight.
func (c *Cache) Coalesced() uint64 {
	return c.coalesced.Load()
}
