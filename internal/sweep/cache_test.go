package sweep

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCacheSingleflight(t *testing.T) {
	c := NewCache()
	var computes atomic.Int32
	var wg sync.WaitGroup
	start := make(chan struct{})
	const callers = 32
	vals := make([]any, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			v, err, _ := c.Do("k", func() (any, error) {
				computes.Add(1)
				time.Sleep(5 * time.Millisecond) // widen the in-flight window
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			vals[i] = v
		}(i)
	}
	close(start)
	wg.Wait()
	if computes.Load() != 1 {
		t.Errorf("computed %d times under contention", computes.Load())
	}
	for i, v := range vals {
		if v.(int) != 42 {
			t.Errorf("caller %d got %v", i, v)
		}
	}
}

func TestCacheCachesErrors(t *testing.T) {
	c := NewCache()
	boom := errors.New("diverged")
	var computes atomic.Int32
	for i := 0; i < 3; i++ {
		_, err, _ := c.Do("bad", func() (any, error) {
			computes.Add(1)
			return nil, boom
		})
		if !errors.Is(err, boom) {
			t.Fatalf("call %d: err = %v", i, err)
		}
	}
	if computes.Load() != 1 {
		t.Errorf("error recomputed %d times", computes.Load())
	}
}

func TestCacheDistinctKeys(t *testing.T) {
	c := NewCache()
	for _, k := range []string{"a", "b", "c"} {
		k := k
		v, _, _ := c.Do(k, func() (any, error) { return k + "!", nil })
		if v.(string) != k+"!" {
			t.Errorf("key %q returned %v", k, v)
		}
	}
	if c.Len() != 3 {
		t.Errorf("len = %d", c.Len())
	}
}

// TestCacheLookup: Lookup answers completed entries (values and errors),
// reports absent keys, and refuses in-flight entries without blocking.
func TestCacheLookup(t *testing.T) {
	c := NewCache()
	if _, _, ok := c.Lookup("missing"); ok {
		t.Error("Lookup reported a value for an absent key")
	}
	c.Do("k", func() (any, error) { return 42, nil })
	if v, err, ok := c.Lookup("k"); !ok || err != nil || v.(int) != 42 {
		t.Errorf("Lookup(k) = (%v, %v, %v), want (42, nil, true)", v, err, ok)
	}
	boom := errors.New("boom")
	c.Do("bad", func() (any, error) { return nil, boom })
	if _, err, ok := c.Lookup("bad"); !ok || !errors.Is(err, boom) {
		t.Errorf("Lookup(bad) = (err=%v, ok=%v), want the cached error", err, ok)
	}

	// An in-flight computation must not be visible (and must not block).
	entered := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Do("slow", func() (any, error) {
			close(entered)
			<-release
			return "late", nil
		})
	}()
	<-entered
	if _, _, ok := c.Lookup("slow"); ok {
		t.Error("Lookup returned an in-flight entry")
	}
	close(release)
	<-done
	if v, _, ok := c.Lookup("slow"); !ok || v.(string) != "late" {
		t.Errorf("Lookup(slow) after completion = (%v, %v)", v, ok)
	}
}

func TestCachePanicReleasesWaiters(t *testing.T) {
	c := NewCache()
	var wg sync.WaitGroup
	inFlight := make(chan struct{})
	// First caller panics mid-compute.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() { recover() }()
		c.Do("p", func() (any, error) {
			close(inFlight)
			time.Sleep(5 * time.Millisecond)
			panic("solver bug")
		})
	}()
	<-inFlight
	// Second caller must be released with an error, not deadlock.
	done := make(chan error, 1)
	go func() {
		_, err, _ := c.Do("p", func() (any, error) { return nil, nil })
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Error("waiter got no error from panicked compute")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter deadlocked behind a panicked compute")
	}
	wg.Wait()
}
