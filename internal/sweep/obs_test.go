package sweep

import (
	"errors"
	"sync/atomic"
	"testing"

	"mlckpt/internal/obs"
)

// obsClock is an injected monotonic fake: this package is lint-gated
// against reading the wall clock, and the engine calls the clock from
// worker goroutines, so it must be race-free.
func obsClock() func() float64 {
	var n atomic.Int64
	return func() float64 { return float64(n.Add(1)) }
}

func TestRunRecordsEngineTelemetry(t *testing.T) {
	jobs := []Job{
		{Name: "a", SolveKey: "k:1", Solve: func() (any, error) { return 1, nil }},
		{Name: "b", SolveKey: "k:1", Solve: func() (any, error) { return 1, nil }},
		{
			Name: "c", SolveKey: "k:2", Solve: func() (any, error) { return 2, nil },
			PostKey: "p:1", Post: func(any, uint64) (any, error) { return 3, nil },
		},
		{Name: "d", Solve: func() (any, error) { return nil, errors.New("boom") }},
	}
	col := obs.NewCollector()
	outs := Run(jobs, Options{Workers: 4, Obs: col, Clock: obsClock()})
	if len(outs) != len(jobs) {
		t.Fatalf("got %d outcomes, want %d", len(outs), len(jobs))
	}
	snap := col.Registry.Snapshot()
	want := map[string]int64{
		"sweep.jobs":             4,
		"sweep.jobs.errors":      1,
		"sweep.solve.computed":   2, // k:1 once (shared by a and b), k:2 once
		"sweep.solve.cache_hits": 1, // whichever of a/b lost the race
		"sweep.post.computed":    1,
	}
	for name, w := range want {
		got, ok := snap.Counter(name)
		if !ok || got != w {
			t.Errorf("%s = %d (present=%v), want %d", name, got, ok, w)
		}
	}
	// With a clock injected, per-job latency lands in the volatile section.
	found := false
	for _, m := range snap.Volatile {
		if m.Name == "sweep.job.latency_s" {
			found = true
			if m.Count != 4 {
				t.Errorf("sweep.job.latency_s count = %d, want 4", m.Count)
			}
		}
	}
	if !found {
		t.Error("sweep.job.latency_s missing from volatile section")
	}
}

func TestRunNilClockSkipsLatency(t *testing.T) {
	col := obs.NewCollector()
	Run([]Job{{Name: "x", Solve: func() (any, error) { return nil, nil }}},
		Options{Workers: 1, Obs: col})
	snap := col.Registry.Snapshot()
	for _, m := range snap.Volatile {
		if m.Name == "sweep.job.latency_s" {
			t.Error("latency recorded despite nil Clock")
		}
	}
	if n, _ := snap.Counter("sweep.jobs"); n != 1 {
		t.Errorf("sweep.jobs = %d, want 1 (counters must not depend on Clock)", n)
	}
}
