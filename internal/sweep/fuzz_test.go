package sweep

import (
	"math"
	"testing"
)

// fuzzSpec mirrors the shape of the problem descriptions hashed by the
// sweep layer: scalars, a slice, and a string label.
type fuzzSpec struct {
	Te, Kappa, NStar, Alloc float64
	Rates                   []float64
	Label                   string
	Policy                  int
}

// FuzzKeyEquality is the cache-key correctness gate: for any inputs, two
// independently constructed equal specs must hash to the same key, the
// hash must be stable across calls, and non-marshalable specs must fail
// cleanly instead of colliding or panicking.
func FuzzKeyEquality(f *testing.F) {
	f.Add(3e6, 0.46, 1e6, 60.0, 16.0, 12.0, 8.0, 4.0, "16-12-8-4", 0)
	f.Add(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, "", 0)
	f.Add(-1.5, math.MaxFloat64, 1e-300, 1.0, 0.5, 0.25, 0.125, 0.0625, "tiny", 3)
	f.Add(math.NaN(), 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, "nan", 1)
	f.Add(math.Inf(1), 1.0, math.Inf(-1), 1.0, 1.0, 1.0, 1.0, 1.0, "inf", 2)
	f.Fuzz(func(t *testing.T, te, kappa, nstar, alloc, r1, r2, r3, r4 float64, label string, policy int) {
		mk := func() fuzzSpec {
			return fuzzSpec{
				Te: te, Kappa: kappa, NStar: nstar, Alloc: alloc,
				Rates:  []float64{r1, r2, r3, r4},
				Label:  label,
				Policy: policy,
			}
		}
		a, errA := Key("fuzz", mk())
		b, errB := Key("fuzz", mk())
		if (errA == nil) != (errB == nil) {
			t.Fatalf("equal specs split on error: %v vs %v", errA, errB)
		}
		if errA != nil {
			// Non-finite floats are rejected; that must be the only reason.
			for _, v := range []float64{te, kappa, nstar, alloc, r1, r2, r3, r4} {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return
				}
			}
			t.Fatalf("finite spec rejected: %v", errA)
		}
		if a != b {
			t.Fatalf("equal specs hashed differently: %s vs %s", a, b)
		}
		// Stability under re-hashing.
		if c := MustKey("fuzz", mk()); c != a {
			t.Fatalf("key not stable: %s vs %s", c, a)
		}
		// A changed policy must move the key (SHA-256 collision odds are
		// far below any realistic flake rate).
		other := mk()
		other.Policy = policy + 1
		if MustKey("fuzz", other) == a {
			t.Fatal("policy change did not change the key")
		}
	})
}
