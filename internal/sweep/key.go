package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
)

// Key builds a canonical cache key from a scope label and the values that
// define a computation. Two deeply-equal values always produce the same
// key: Go's JSON encoder is canonical for a fixed type — struct fields
// marshal in declaration order and maps with sorted keys — so equality of
// values implies equality of bytes, and the bytes are hashed. The scope
// label keeps unrelated computations over coincidentally-equal inputs
// (e.g. a solve and a simulation of the same spec) in separate key spaces.
//
// Values containing NaN/Inf floats or other non-marshalable content
// return an error; callers should then skip memoization for that job
// rather than risk a collision.
func Key(scope string, parts ...any) (string, error) {
	h := sha256.New()
	io.WriteString(h, scope)
	h.Write([]byte{0})
	enc := json.NewEncoder(h)
	for _, p := range parts {
		if err := enc.Encode(p); err != nil {
			return "", fmt.Errorf("sweep: key for scope %q: %w", scope, err)
		}
	}
	return scope + ":" + hex.EncodeToString(h.Sum(nil)[:16]), nil
}

// MustKey is Key for values statically known to be marshalable; it panics
// on error and exists for literal grid definitions.
func MustKey(scope string, parts ...any) string {
	k, err := Key(scope, parts...)
	if err != nil {
		panic(err)
	}
	return k
}
