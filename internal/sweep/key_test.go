package sweep

import (
	"math"
	"strings"
	"testing"
)

type keySpec struct {
	Te     float64
	Rates  []float64
	Levels []keyLevel
	Label  string
}

type keyLevel struct {
	Const, Coeff float64
}

func TestKeyEqualValuesEqualKeys(t *testing.T) {
	mk := func() keySpec {
		return keySpec{
			Te:     3e6,
			Rates:  []float64{16, 12, 8, 4},
			Levels: []keyLevel{{0.866, 0}, {2.586, 0}, {3.886, 0}, {5.5, 0.0212}},
			Label:  "16-12-8-4",
		}
	}
	a, err := Key("solve", mk(), 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Key("solve", mk(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("equal specs hashed differently: %s vs %s", a, b)
	}
}

func TestKeySensitivity(t *testing.T) {
	base := keySpec{Te: 3e6, Rates: []float64{16, 12, 8, 4}}
	ref := MustKey("solve", base)
	perturbed := base
	perturbed.Te = 3e6 + 1
	if MustKey("solve", perturbed) == ref {
		t.Error("Te change not reflected in key")
	}
	if MustKey("simulate", base) == ref {
		t.Error("scope change not reflected in key")
	}
	if MustKey("solve", base, 1) == ref {
		t.Error("extra part not reflected in key")
	}
	if !strings.HasPrefix(ref, "solve:") {
		t.Errorf("key %q not scope-prefixed", ref)
	}
}

func TestKeyRejectsNonFiniteFloats(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := Key("solve", keySpec{Te: v}); err == nil {
			t.Errorf("Key accepted %v", v)
		}
	}
}

func TestMustKeyPanicsOnBadValue(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustKey did not panic on NaN")
		}
	}()
	MustKey("solve", math.NaN())
}
