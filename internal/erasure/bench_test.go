package erasure

import (
	"fmt"
	"testing"
)

func benchShards(k, size int) [][]byte {
	return makeShards(k, size, 42)
}

func BenchmarkEncode(b *testing.B) {
	for _, size := range []int{4 << 10, 256 << 10, 4 << 20} {
		b.Run(fmt.Sprintf("8+2/%dKiB", size>>10), func(b *testing.B) {
			c, err := New(8, 2)
			if err != nil {
				b.Fatal(err)
			}
			data := benchShards(8, size)
			b.SetBytes(int64(8 * size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Encode(data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkReconstruct(b *testing.B) {
	c, err := New(8, 2)
	if err != nil {
		b.Fatal(err)
	}
	size := 256 << 10
	data := benchShards(8, size)
	parity, err := c.Encode(data)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(8 * size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shards := make([][]byte, 10)
		for j := range data {
			shards[j] = data[j]
		}
		for j := range parity {
			shards[8+j] = parity[j]
		}
		shards[1], shards[5] = nil, nil // two erasures
		if err := c.Reconstruct(shards); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGFMul(b *testing.B) {
	var acc byte
	for i := 0; i < b.N; i++ {
		acc ^= Mul(byte(i), byte(i>>8))
	}
	_ = acc
}

// FuzzReconstruct drives random loss patterns through encode/reconstruct
// and checks the data shards always round-trip when recovery is claimed.
func FuzzReconstruct(f *testing.F) {
	f.Add(uint64(1), uint8(2))
	f.Add(uint64(99), uint8(7))
	f.Fuzz(func(t *testing.T, seed uint64, lossMask uint8) {
		c, err := New(6, 2)
		if err != nil {
			t.Fatal(err)
		}
		data := makeShards(6, 64, seed)
		parity, err := c.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		shards := append(append([][]byte{}, data...), parity...)
		lost := 0
		for i := 0; i < 8 && lost < 8; i++ {
			if lossMask&(1<<i) != 0 {
				shards[i] = nil
				lost++
			}
		}
		err = c.Reconstruct(shards)
		if lost > 2 {
			if err == nil {
				t.Fatalf("recovered from %d losses with 2 parity", lost)
			}
			return
		}
		if err != nil {
			t.Fatalf("failed with %d losses: %v", lost, err)
		}
		for i := 0; i < 6; i++ {
			for j := range data[i] {
				if shards[i][j] != data[i][j] {
					t.Fatalf("shard %d corrupted", i)
				}
			}
		}
	})
}
