//go:build amd64

package erasure

// AVX2 entry points implemented in kernel_amd64.s. Each requires n > 0
// and n ≡ 0 (mod 32); the dispatch in kernel.go guarantees that and
// finishes tails with the portable word-lane kernels.

//go:noescape
func gfMulXorAVX2(tab *mulTable, src, dst *byte, n int)

//go:noescape
func gfMulSetAVX2(tab *mulTable, src, dst *byte, n int)

//go:noescape
func gfXorAVX2(src, dst *byte, n int)

//go:noescape
func gfMul4SetGFNI(tabs *mulTable, src0, src1, src2, src3, dst *byte, n int)

//go:noescape
func gfMul4XorGFNI(tabs *mulTable, src0, src1, src2, src3, dst *byte, n int)

func cpuidex(op, sub uint32) (eax, ebx, ecx, edx uint32)

func xgetbv0() (eax, edx uint32)

// hasAVX2 gates the assembly fast path: AVX2 in CPUID and YMM state
// enabled by the OS (OSXSAVE + XCR0 xmm/ymm bits). Kernel outputs are
// byte-identical with and without it — only throughput differs — so the
// differential tests in kernel_test.go cover whichever path the host
// runs.
var hasAVX2 = detectAVX2()

// hasGFNI additionally gates the fused four-source kernels: GFNI with
// the VEX (256-bit) encoding, which requires AVX2 support as well. The
// fused drivers fall back to the single-source AVX2 kernels for
// leftover matrix cells, so hasGFNI must imply hasAVX2.
var hasGFNI = hasAVX2 && detectGFNI()

func detectAVX2() bool {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuidex(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx1&osxsave == 0 || ecx1&avx == 0 {
		return false
	}
	if xlo, _ := xgetbv0(); xlo&6 != 6 {
		return false
	}
	_, ebx7, _, _ := cpuidex(7, 0)
	return ebx7&(1<<5) != 0
}

func detectGFNI() bool {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx7, _ := cpuidex(7, 0)
	return ecx7&(1<<8) != 0
}
