package erasure

import (
	"errors"
	"fmt"
)

// Errors reported by the codec.
var (
	ErrShape       = errors.New("erasure: invalid code shape")
	ErrTooManyLost = errors.New("erasure: more shards lost than parity can recover")
	ErrShardSize   = errors.New("erasure: inconsistent shard sizes")
	ErrReconstruct = errors.New("erasure: reconstruction failed")
)

// Code is a Reed–Solomon erasure code with K data shards and M parity
// shards over GF(2⁸).
type Code struct {
	K, M   int
	matrix [][]byte // M×K Cauchy encoding matrix
}

// New creates a code with k data and m parity shards. k+m must not exceed
// 256 (the field size limits distinct Cauchy points).
func New(k, m int) (*Code, error) {
	if k <= 0 || m < 0 || k+m > 256 {
		return nil, fmt.Errorf("%w: k=%d, m=%d", ErrShape, k, m)
	}
	c := &Code{K: k, M: m}
	// Cauchy matrix: rows indexed by x_i = k+i, columns by y_j = j, with
	// entry 1/(x_i ⊕ y_j). All points distinct, so every square submatrix
	// of the stacked [I; C] generator is invertible.
	c.matrix = make([][]byte, m)
	for i := 0; i < m; i++ {
		row := make([]byte, k)
		for j := 0; j < k; j++ {
			row[j] = Inv(byte(k+i) ^ byte(j))
		}
		c.matrix[i] = row
	}
	return c, nil
}

// Encode computes the m parity shards for the given k data shards. All data
// shards must be the same length. The returned parity shards have that
// length too.
func (c *Code) Encode(data [][]byte) ([][]byte, error) {
	if len(data) != c.K {
		return nil, fmt.Errorf("%w: %d data shards, want %d", ErrShape, len(data), c.K)
	}
	size := -1
	for _, d := range data {
		if size == -1 {
			size = len(d)
		} else if len(d) != size {
			return nil, ErrShardSize
		}
	}
	parity := make([][]byte, c.M)
	for i := range parity {
		parity[i] = make([]byte, size)
		for j := 0; j < c.K; j++ {
			mulSliceXor(c.matrix[i][j], data[j], parity[i])
		}
	}
	return parity, nil
}

// Reconstruct rebuilds missing shards in place. shards must have length
// K+M: the first K entries are data shards, the rest parity. A nil entry
// marks a lost shard. On success every entry is non-nil and the data
// shards contain the original content.
func (c *Code) Reconstruct(shards [][]byte) error {
	if len(shards) != c.K+c.M {
		return fmt.Errorf("%w: %d shards, want %d", ErrShape, len(shards), c.K+c.M)
	}
	size := -1
	present := 0
	for _, s := range shards {
		if s != nil {
			present++
			if size == -1 {
				size = len(s)
			} else if len(s) != size {
				return ErrShardSize
			}
		}
	}
	if present == c.K+c.M {
		return nil // nothing to do
	}
	if present < c.K {
		return fmt.Errorf("%w: only %d of %d shards present", ErrTooManyLost, present, c.K)
	}

	// Build the system: pick K available rows of the generator [I; C] and
	// invert the corresponding K×K submatrix to recover the data shards.
	rows := make([][]byte, 0, c.K)
	rhs := make([][]byte, 0, c.K)
	for i := 0; i < c.K+c.M && len(rows) < c.K; i++ {
		if shards[i] == nil {
			continue
		}
		var row []byte
		if i < c.K {
			row = make([]byte, c.K)
			row[i] = 1
		} else {
			row = append([]byte(nil), c.matrix[i-c.K]...)
		}
		rows = append(rows, row)
		rhs = append(rhs, shards[i])
	}

	inv, err := invertMatrix(rows)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrReconstruct, err)
	}

	// Recover missing data shards: data[j] = Σ inv[j][r]·rhs[r].
	for j := 0; j < c.K; j++ {
		if shards[j] != nil {
			continue
		}
		out := make([]byte, size)
		for r := 0; r < c.K; r++ {
			mulSliceXor(inv[j][r], rhs[r], out)
		}
		shards[j] = out
	}
	// Recompute missing parity shards from the (now complete) data.
	for i := 0; i < c.M; i++ {
		if shards[c.K+i] != nil {
			continue
		}
		out := make([]byte, size)
		for j := 0; j < c.K; j++ {
			mulSliceXor(c.matrix[i][j], shards[j], out)
		}
		shards[c.K+i] = out
	}
	return nil
}

// Verify checks that the parity shards are consistent with the data shards.
func (c *Code) Verify(shards [][]byte) (bool, error) {
	if len(shards) != c.K+c.M {
		return false, fmt.Errorf("%w: %d shards, want %d", ErrShape, len(shards), c.K+c.M)
	}
	for _, s := range shards {
		if s == nil {
			return false, fmt.Errorf("%w: nil shard", ErrShardSize)
		}
	}
	parity, err := c.Encode(shards[:c.K])
	if err != nil {
		return false, err
	}
	for i := range parity {
		got := shards[c.K+i]
		for j := range parity[i] {
			if parity[i][j] != got[j] {
				return false, nil
			}
		}
	}
	return true, nil
}

// invertMatrix inverts a square matrix over GF(2⁸) by Gauss–Jordan
// elimination.
func invertMatrix(m [][]byte) ([][]byte, error) {
	n := len(m)
	// Augment with identity.
	work := make([][]byte, n)
	for i := range work {
		if len(m[i]) != n {
			return nil, fmt.Errorf("row %d has %d entries, want %d", i, len(m[i]), n)
		}
		work[i] = make([]byte, 2*n)
		copy(work[i], m[i])
		work[i][n+i] = 1
	}
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if work[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, errors.New("singular matrix")
		}
		work[col], work[pivot] = work[pivot], work[col]
		// Normalize pivot row.
		invP := Inv(work[col][col])
		for j := 0; j < 2*n; j++ {
			work[col][j] = Mul(work[col][j], invP)
		}
		// Eliminate the column elsewhere.
		for r := 0; r < n; r++ {
			if r == col || work[r][col] == 0 {
				continue
			}
			f := work[r][col]
			for j := 0; j < 2*n; j++ {
				work[r][j] ^= Mul(f, work[col][j])
			}
		}
	}
	inv := make([][]byte, n)
	for i := range inv {
		inv[i] = work[i][n:]
	}
	return inv, nil
}
