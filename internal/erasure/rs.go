package erasure

import (
	"errors"
	"fmt"
)

// Errors reported by the codec.
var (
	ErrShape       = errors.New("erasure: invalid code shape")
	ErrTooManyLost = errors.New("erasure: more shards lost than parity can recover")
	ErrShardSize   = errors.New("erasure: inconsistent shard sizes")
	ErrReconstruct = errors.New("erasure: reconstruction failed")
)

// Code is a Reed–Solomon erasure code with K data shards and M parity
// shards over GF(2⁸).
type Code struct {
	K, M    int
	matrix  [][]byte     // M×K Cauchy encoding matrix
	tables  [][]mulTable // split-nibble tables per matrix cell, built once
	workers int          // striping fan-out; 0 = GOMAXPROCS at encode time
}

// New creates a code with k data and m parity shards. k+m must not exceed
// 256 (the field size limits distinct Cauchy points).
func New(k, m int) (*Code, error) {
	if k <= 0 || m < 0 || k+m > 256 {
		return nil, fmt.Errorf("%w: k=%d, m=%d", ErrShape, k, m)
	}
	c := &Code{K: k, M: m}
	// Cauchy matrix: rows indexed by x_i = k+i, columns by y_j = j, with
	// entry 1/(x_i ⊕ y_j). All points distinct, so every square submatrix
	// of the stacked [I; C] generator is invertible.
	c.matrix = make([][]byte, m)
	c.tables = make([][]mulTable, m)
	for i := 0; i < m; i++ {
		row := make([]byte, k)
		for j := 0; j < k; j++ {
			row[j] = Inv(byte(k+i) ^ byte(j))
		}
		c.matrix[i] = row
		c.tables[i] = makeMulTables(row)
	}
	return c, nil
}

// SetWorkers bounds the worker pool of the striped encode/reconstruct
// kernels: n ≤ 0 restores the default (GOMAXPROCS at call time), n == 1
// forces single-goroutine operation. Outputs are byte-identical for every
// setting; only throughput changes. Not safe to call concurrently with
// Encode/Reconstruct on the same Code.
func (c *Code) SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	c.workers = n
}

// shardSize validates that every non-nil shard has one common length and
// returns it (-1 when all shards are nil).
func shardSize(shards [][]byte) (int, error) {
	size := -1
	for _, s := range shards {
		if s == nil {
			continue
		}
		if size == -1 {
			size = len(s)
		} else if len(s) != size {
			return 0, ErrShardSize
		}
	}
	return size, nil
}

// Encode computes the m parity shards for the given k data shards. All data
// shards must be the same length. The returned parity shards have that
// length too (sharing one backing allocation; use EncodeInto to reuse
// caller-owned buffers instead).
func (c *Code) Encode(data [][]byte) ([][]byte, error) {
	if len(data) != c.K {
		return nil, fmt.Errorf("%w: %d data shards, want %d", ErrShape, len(data), c.K)
	}
	size, err := shardSize(data)
	if err != nil {
		return nil, err
	}
	if size < 0 {
		size = 0
	}
	parity := make([][]byte, c.M)
	backing := make([]byte, c.M*size)
	for i := range parity {
		parity[i] = backing[i*size : (i+1)*size : (i+1)*size]
	}
	if err := c.EncodeInto(data, parity); err != nil {
		return nil, err
	}
	return parity, nil
}

// EncodeInto computes the parity of data into the caller-owned parity
// shards, overwriting their contents: no allocations on the steady-state
// path. parity must hold exactly M shards of the common data shard length.
//
//mlckpt:hotpath
func (c *Code) EncodeInto(data, parity [][]byte) error {
	if len(data) != c.K || len(parity) != c.M {
		return fmt.Errorf("%w: %d data + %d parity shards, want %d + %d",
			ErrShape, len(data), len(parity), c.K, c.M)
	}
	size, err := shardSize(data)
	if err != nil {
		return err
	}
	if size < 0 {
		size = 0
	}
	for _, d := range data {
		if len(d) != size {
			return ErrShardSize // nil (length-0) shards in a non-empty encode
		}
	}
	for _, p := range parity {
		if len(p) != size {
			return ErrShardSize
		}
	}
	c.mulRows(c.tables, data, parity, size)
	return nil
}

// Arena is a reusable pool of shard buffers for ReconstructInto: rebuilt
// shards are carved from its buffers instead of fresh allocations, so a
// caller that reconstructs repeatedly (e.g. the FTI cluster restoring
// group after group) reaches a zero-allocation steady state. The zero
// value is ready to use; Reset recycles every buffer for the next call.
type Arena struct {
	bufs []([]byte)
	used int
}

// Reset makes all of the arena's buffers available again. The shards
// returned by earlier ReconstructInto calls alias them, so only call Reset
// once those results are no longer needed.
func (a *Arena) Reset() { a.used = 0 }

// take returns a zeroed-length buffer of the given size, reusing pooled
// capacity when available.
func (a *Arena) take(size int) []byte {
	if a.used < len(a.bufs) && cap(a.bufs[a.used]) >= size {
		b := a.bufs[a.used][:size]
		a.used++
		return b
	}
	b := make([]byte, size)
	if a.used < len(a.bufs) {
		a.bufs[a.used] = b
	} else {
		a.bufs = append(a.bufs, b)
	}
	a.used++
	return b
}

// Reconstruct rebuilds missing shards in place. shards must have length
// K+M: the first K entries are data shards, the rest parity. A nil entry
// marks a lost shard. On success every entry is non-nil and the data
// shards contain the original content.
func (c *Code) Reconstruct(shards [][]byte) error {
	return c.ReconstructInto(shards, nil)
}

// ReconstructInto is Reconstruct with caller-owned storage: buffers for
// the rebuilt shards come from arena (nil behaves like Reconstruct and
// allocates fresh ones). The rebuilt entries of shards alias the arena's
// buffers until its next Reset.
//
//mlckpt:hotpath
func (c *Code) ReconstructInto(shards [][]byte, arena *Arena) error {
	if len(shards) != c.K+c.M {
		return fmt.Errorf("%w: %d shards, want %d", ErrShape, len(shards), c.K+c.M)
	}
	size, err := shardSize(shards)
	if err != nil {
		return err
	}
	present := 0
	for _, s := range shards {
		if s != nil {
			present++
		}
	}
	if present == c.K+c.M {
		return nil // nothing to do
	}
	if present < c.K {
		return fmt.Errorf("%w: only %d of %d shards present", ErrTooManyLost, present, c.K)
	}
	if arena == nil {
		arena = &Arena{}
	}

	// Build the system: pick K available rows of the generator [I; C] and
	// invert the corresponding K×K submatrix to recover the data shards.
	rows := make([][]byte, 0, c.K)
	rhs := make([][]byte, 0, c.K)
	for i := 0; i < c.K+c.M && len(rows) < c.K; i++ {
		if shards[i] == nil {
			continue
		}
		var row []byte
		if i < c.K {
			//lint:allow hotpath per-reconstruct decode-matrix setup, O(K^2) bytes once per call, not per byte; the striped mulRows pass dominates
			row = make([]byte, c.K)
			row[i] = 1
		} else {
			//lint:allow hotpath per-reconstruct decode-matrix setup; the generator row must be copied because invertMatrix mutates it
			row = append([]byte(nil), c.matrix[i-c.K]...)
		}
		rows = append(rows, row)
		rhs = append(rhs, shards[i])
	}

	inv, err := invertMatrix(rows)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrReconstruct, err)
	}

	// Recover missing data shards: data[j] = Σ inv[j][r]·rhs[r], all rows
	// in one striped pass over the rhs shards.
	var tabs [][]mulTable
	var outs [][]byte
	var slots []int
	for j := 0; j < c.K; j++ {
		if shards[j] != nil {
			continue
		}
		tabs = append(tabs, makeMulTables(inv[j]))
		outs = append(outs, arena.take(size))
		slots = append(slots, j)
	}
	c.mulRows(tabs, rhs, outs, size)
	for i, j := range slots {
		shards[j] = outs[i]
	}
	// Recompute missing parity shards from the (now complete) data.
	tabs, outs, slots = tabs[:0], outs[:0], slots[:0]
	for i := 0; i < c.M; i++ {
		if shards[c.K+i] != nil {
			continue
		}
		tabs = append(tabs, c.tables[i])
		outs = append(outs, arena.take(size))
		slots = append(slots, c.K+i)
	}
	c.mulRows(tabs, shards[:c.K], outs, size)
	for i, j := range slots {
		shards[j] = outs[i]
	}
	return nil
}

// Verify checks that the parity shards are consistent with the data shards.
func (c *Code) Verify(shards [][]byte) (bool, error) {
	if len(shards) != c.K+c.M {
		return false, fmt.Errorf("%w: %d shards, want %d", ErrShape, len(shards), c.K+c.M)
	}
	for _, s := range shards {
		if s == nil {
			return false, fmt.Errorf("%w: nil shard", ErrShardSize)
		}
	}
	parity, err := c.Encode(shards[:c.K])
	if err != nil {
		return false, err
	}
	for i := range parity {
		got := shards[c.K+i]
		for j := range parity[i] {
			if parity[i][j] != got[j] {
				return false, nil
			}
		}
	}
	return true, nil
}

// invertMatrix inverts a square matrix over GF(2⁸) by Gauss–Jordan
// elimination.
func invertMatrix(m [][]byte) ([][]byte, error) {
	n := len(m)
	// Augment with identity.
	work := make([][]byte, n)
	for i := range work {
		if len(m[i]) != n {
			return nil, fmt.Errorf("row %d has %d entries, want %d", i, len(m[i]), n)
		}
		work[i] = make([]byte, 2*n)
		copy(work[i], m[i])
		work[i][n+i] = 1
	}
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if work[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, errors.New("singular matrix")
		}
		work[col], work[pivot] = work[pivot], work[col]
		// Normalize pivot row.
		invP := Inv(work[col][col])
		for j := 0; j < 2*n; j++ {
			work[col][j] = Mul(work[col][j], invP)
		}
		// Eliminate the column elsewhere.
		for r := 0; r < n; r++ {
			if r == col || work[r][col] == 0 {
				continue
			}
			f := work[r][col]
			for j := 0; j < 2*n; j++ {
				work[r][j] ^= Mul(f, work[col][j])
			}
		}
	}
	inv := make([][]byte, n)
	for i := range inv {
		inv[i] = work[i][n:]
	}
	return inv, nil
}
