package erasure

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"mlckpt/internal/stats"
)

// encodeRef computes parity with the scalar log/exp reference kernel
// (mulSliceXor), bypassing the table-driven fast paths entirely. The
// differential tests below hold the optimized codec to byte-identity
// with this implementation.
func encodeRef(c *Code, data [][]byte) [][]byte {
	size := 0
	if len(data) > 0 {
		size = len(data[0])
	}
	parity := make([][]byte, c.M)
	for i := range parity {
		parity[i] = make([]byte, size)
		for j := 0; j < c.K; j++ {
			mulSliceXor(c.matrix[i][j], data[j], parity[i])
		}
	}
	return parity
}

func TestMulTableMatchesMul(t *testing.T) {
	for c := 0; c < 256; c++ {
		tab := makeMulTable(byte(c))
		for b := 0; b < 256; b++ {
			want := Mul(byte(c), byte(b))
			got := tab.lo[b&0x0F] ^ tab.hi[b>>4]
			if got != want {
				t.Fatalf("table %d·%d = %d, scalar %d", c, b, got, want)
			}
		}
		if tab.lo[1] != byte(c) {
			t.Fatalf("lo[1] = %d, want coefficient %d", tab.lo[1], c)
		}
	}
}

// TestKernelSlicesMatchScalar drives the word-lane kernels against the
// scalar reference on lengths that exercise the 8-byte lanes, the byte
// tail, and both together.
func TestKernelSlicesMatchScalar(t *testing.T) {
	rng := stats.NewRNG(77)
	for _, n := range []int{0, 1, 3, 7, 8, 9, 15, 16, 17, 63, 64, 65, 1000, 4096, 4099} {
		src := make([]byte, n)
		for i := range src {
			src[i] = byte(rng.Uint64())
		}
		init := make([]byte, n)
		for i := range init {
			init[i] = byte(rng.Uint64())
		}
		for _, c := range []byte{0, 1, 2, 29, 76, 142, 255} {
			tab := makeMulTable(c)

			want := append([]byte(nil), init...)
			mulSliceXor(c, src, want)
			got := append([]byte(nil), init...)
			mulSliceXorTab(&tab, src, got)
			if !bytes.Equal(got, want) {
				t.Fatalf("mulSliceXorTab(c=%d, n=%d) diverges from scalar", c, n)
			}

			wantSet := make([]byte, n)
			mulSliceXor(c, src, wantSet) // onto zeros: XOR == set
			gotSet := append([]byte(nil), init...)
			mulSliceSetTab(&tab, src, gotSet)
			if !bytes.Equal(gotSet, wantSet) {
				t.Fatalf("mulSliceSetTab(c=%d, n=%d) diverges from scalar", c, n)
			}
		}
		wantX := append([]byte(nil), init...)
		mulSliceXor(1, src, wantX)
		gotX := append([]byte(nil), init...)
		xorSlice(src, gotX)
		if !bytes.Equal(gotX, wantX) {
			t.Fatalf("xorSlice(n=%d) diverges from scalar c=1", n)
		}
	}
}

func TestKernelLengthContractPanics(t *testing.T) {
	tab := makeMulTable(5)
	for name, f := range map[string]func(){
		"mulSliceXor":    func() { mulSliceXor(5, make([]byte, 4), make([]byte, 3)) },
		"mulSliceXorTab": func() { mulSliceXorTab(&tab, make([]byte, 4), make([]byte, 3)) },
		"mulSliceSetTab": func() { mulSliceSetTab(&tab, make([]byte, 3), make([]byte, 4)) },
		"xorSlice":       func() { xorSlice(make([]byte, 4), make([]byte, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: mismatched lengths must panic", name)
				}
			}()
			f()
		}()
	}
}

// TestEncodeMatchesScalarProperty holds the optimized Encode to
// byte-identity with the scalar reference across random shapes and shard
// sizes, including lengths not divisible by 8 and sizes large enough to
// engage the striped worker pool.
func TestEncodeMatchesScalarProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		k := 1 + rng.Intn(10)
		m := rng.Intn(5)
		size := rng.Intn(3 * stripeChunk) // crosses the striping threshold
		c, err := New(k, m)
		if err != nil {
			return false
		}
		data := makeShards(k, size, seed^0x5EED)
		got, err := c.Encode(data)
		if err != nil {
			return false
		}
		want := encodeRef(c, data)
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestEncodeStripedDeterministic pins the striping invariant: outputs are
// byte-identical for every worker count. make race runs this under the
// race detector, which doubles as the striped pool's race gate.
func TestEncodeStripedDeterministic(t *testing.T) {
	const size = 5*stripeChunk + 13 // several chunks plus a ragged tail
	data := makeShards(8, size, 99)
	var want [][]byte
	for _, workers := range []int{1, 2, 3, 8, 0} {
		c, err := New(8, 2)
		if err != nil {
			t.Fatal(err)
		}
		c.SetWorkers(workers)
		got, err := c.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			ref := encodeRef(c, data)
			for i := range ref {
				if !bytes.Equal(got[i], ref[i]) {
					t.Fatalf("workers=%d: parity %d diverges from scalar reference", workers, i)
				}
			}
			continue
		}
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("workers=%d: parity %d differs from workers=1", workers, i)
			}
		}
	}
}

// TestReconstructRandomErasures drives random loss patterns through the
// table-driven reconstruct on random (incl. non-multiple-of-8) sizes and
// checks the round trip against the original shards.
func TestReconstructRandomErasures(t *testing.T) {
	rng := stats.NewRNG(4242)
	arena := &Arena{}
	for trial := 0; trial < 60; trial++ {
		k := 2 + rng.Intn(8)
		m := 1 + rng.Intn(4)
		size := 1 + rng.Intn(2000)
		c, err := New(k, m)
		if err != nil {
			t.Fatal(err)
		}
		data := makeShards(k, size, rng.Uint64())
		parity, err := c.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		shards := append(append([][]byte{}, data...), parity...)
		lost := rng.Intn(m + 1)
		for i := 0; i < lost; i++ {
			shards[rng.Intn(k+m)] = nil
		}
		arena.Reset()
		if err := c.ReconstructInto(shards, arena); err != nil {
			t.Fatalf("k=%d m=%d size=%d lost≤%d: %v", k, m, size, lost, err)
		}
		for i := 0; i < k; i++ {
			if !bytes.Equal(shards[i], data[i]) {
				t.Fatalf("k=%d m=%d size=%d: data shard %d corrupted", k, m, size, i)
			}
		}
		want := encodeRef(c, data)
		for i := range want {
			if !bytes.Equal(shards[k+i], want[i]) {
				t.Fatalf("k=%d m=%d size=%d: parity shard %d diverges from scalar", k, m, size, i)
			}
		}
	}
}

// TestEncodeIntoSteadyStateAllocs pins the zero-allocation contract of the
// buffer-reusing API on the single-goroutine path (the striped path
// allocates its worker pool, which is the point of SetWorkers(1) for
// allocation-sensitive callers).
func TestEncodeIntoSteadyStateAllocs(t *testing.T) {
	c, err := New(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	c.SetWorkers(1)
	data := makeShards(8, 4096, 7)
	parity := make([][]byte, 2)
	for i := range parity {
		parity[i] = make([]byte, 4096)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := c.EncodeInto(data, parity); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("EncodeInto allocates %.1f objects/op, want 0", allocs)
	}
}

func TestEncodeIntoShapeErrors(t *testing.T) {
	c, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := makeShards(4, 64, 3)
	parity := [][]byte{make([]byte, 64), make([]byte, 64)}
	if err := c.EncodeInto(data[:3], parity); err == nil {
		t.Error("short data accepted")
	}
	if err := c.EncodeInto(data, parity[:1]); err == nil {
		t.Error("short parity accepted")
	}
	if err := c.EncodeInto(data, [][]byte{make([]byte, 64), make([]byte, 63)}); err == nil {
		t.Error("ragged parity accepted")
	}
	bad := append([][]byte{}, data...)
	bad[2] = nil
	if err := c.EncodeInto(bad, parity); err == nil {
		t.Error("nil data shard accepted")
	}
}

// FuzzEncodeKernelMatchesScalar fuzzes shard contents and sizes through
// both the optimized and the scalar encoders and requires byte-identity,
// then reconstructs after two erasures as a round-trip check.
func FuzzEncodeKernelMatchesScalar(f *testing.F) {
	f.Add(uint64(1), 17)
	f.Add(uint64(99), 4096)
	f.Add(uint64(7), 0)
	f.Fuzz(func(t *testing.T, seed uint64, size int) {
		if size < 0 || size > 1<<16 {
			t.Skip()
		}
		c, err := New(6, 2)
		if err != nil {
			t.Fatal(err)
		}
		data := makeShards(6, size, seed)
		got, err := c.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		want := encodeRef(c, data)
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("parity %d diverges from scalar reference", i)
			}
		}
		shards := append(append([][]byte{}, data...), got...)
		shards[1], shards[4] = nil, nil
		if err := c.Reconstruct(shards); err != nil {
			t.Fatal(err)
		}
		for i := range data {
			if !bytes.Equal(shards[i], data[i]) {
				t.Fatalf("data shard %d corrupted after reconstruct", i)
			}
		}
	})
}

// --- benchmarks for the Into APIs (the allocation-free steady state) ---

func BenchmarkEncodeInto(b *testing.B) {
	for _, size := range []int{4 << 10, 4 << 20} {
		b.Run(fmt.Sprintf("8+2/%dKiB", size>>10), func(b *testing.B) {
			c, err := New(8, 2)
			if err != nil {
				b.Fatal(err)
			}
			data := benchShards(8, size)
			parity := make([][]byte, 2)
			for i := range parity {
				parity[i] = make([]byte, size)
			}
			b.SetBytes(int64(8 * size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.EncodeInto(data, parity); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEncodeSerial(b *testing.B) {
	// The single-goroutine kernel, isolating table/lane throughput from
	// the striped fan-out.
	c, err := New(8, 2)
	if err != nil {
		b.Fatal(err)
	}
	c.SetWorkers(1)
	size := 4 << 20
	data := benchShards(8, size)
	parity := make([][]byte, 2)
	for i := range parity {
		parity[i] = make([]byte, size)
	}
	b.SetBytes(int64(8 * size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.EncodeInto(data, parity); err != nil {
			b.Fatal(err)
		}
	}
}
