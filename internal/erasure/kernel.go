// High-throughput GF(2⁸) kernels: split-nibble lookup tables and 64-bit
// word lanes replace the branchy per-byte log/exp arithmetic of gf256.go
// on the encode/decode hot path, and large shards are striped across a
// bounded worker pool. Outputs are bit-identical to the scalar reference
// (Mul / mulSliceXor) for every input and every worker count — the
// differential tests in kernel_test.go pin that equivalence.
//
// Why split-nibble tables: a full product table per coefficient would be
// 256 bytes per matrix cell; splitting the operand byte into nibbles needs
// only two 16-entry tables (c·x and c·(x<<4)) per cell, 32 bytes that stay
// resident in L1 for the whole encode. Each output byte is then two loads
// and one XOR, branch-free: c·b = lo[b&0x0F] ^ hi[b>>4].
//
// Why 64-bit lanes: the inner loop loads 8 source bytes as one word,
// translates the 16 nibbles through the tables, packs the 8 product bytes
// back into a word, and XORs it into the destination with a single store —
// amortizing the loads/stores and keeping the loop free of per-byte
// bounds checks.
//
// Why striping: shards are split into cache-sized chunks and fanned across
// at most SetWorkers goroutines. Every output byte is computed by exactly
// one worker using the same arithmetic, so the result is byte-identical
// for any worker count — the same invariant the sweep engine enforces.
package erasure

import (
	"encoding/binary"
	"runtime"
	"sync"
)

// mulTable holds the split-nibble product tables of one GF(2⁸)
// coefficient c: lo[x] = c·x for x in [0,16) and hi[x] = c·(x<<4).
// lo[1] recovers the coefficient itself (c·1 = c), which the row drivers
// use to skip zero cells and fast-path identity cells. gfni is the same
// linear map packed as the 8×8 bit matrix GF2P8AFFINEQB consumes on
// hosts with Galois Field New Instructions; the layout (lo, hi at fixed
// offsets 0/16, matrix at 32) is relied on by kernel_amd64.s.
type mulTable struct {
	lo, hi [16]byte
	gfni   uint64
}

// makeMulTable builds the split-nibble tables of a coefficient with the
// scalar reference arithmetic (so the kernels inherit its correctness).
func makeMulTable(c byte) mulTable {
	var t mulTable
	for x := 1; x < 16; x++ {
		t.lo[x] = Mul(c, byte(x))
		t.hi[x] = Mul(c, byte(x<<4))
	}
	t.gfni = gfniMatrix(c)
	return t
}

// gfniMatrix packs multiplication by c — a linear map over the GF(2)
// vector space of field elements — into the bit-matrix operand of
// GF2P8AFFINEQB: result bit i of each byte is parity(matrix.byte[7-i] &
// src byte), so matrix.byte[7-i].bit[k] must be bit i of c·2^k. Built
// from the scalar reference like the nibble tables; computed on every
// architecture (it is just a uint64) and only consumed by the amd64
// assembly.
func gfniMatrix(c byte) uint64 {
	var m uint64
	for k := 0; k < 8; k++ {
		p := Mul(c, 1<<k) // column k: the image of basis element 2^k
		for i := 0; i < 8; i++ {
			if p&(1<<i) != 0 {
				m |= 1 << ((7-i)*8 + k)
			}
		}
	}
	return m
}

// makeMulTables builds one table per coefficient of a matrix row.
func makeMulTables(row []byte) []mulTable {
	out := make([]mulTable, len(row))
	for j, c := range row {
		out[j] = makeMulTable(c)
	}
	return out
}

// mulWord translates the 8 bytes of s through t's nibble tables.
func mulWord(t *mulTable, s uint64) uint64 {
	r := uint64(t.lo[s&15] ^ t.hi[s>>4&15])
	r |= uint64(t.lo[s>>8&15]^t.hi[s>>12&15]) << 8
	r |= uint64(t.lo[s>>16&15]^t.hi[s>>20&15]) << 16
	r |= uint64(t.lo[s>>24&15]^t.hi[s>>28&15]) << 24
	r |= uint64(t.lo[s>>32&15]^t.hi[s>>36&15]) << 32
	r |= uint64(t.lo[s>>40&15]^t.hi[s>>44&15]) << 40
	r |= uint64(t.lo[s>>48&15]^t.hi[s>>52&15]) << 48
	r |= uint64(t.lo[s>>56&15]^t.hi[s>>60&15]) << 56
	return r
}

// mulSliceXorTab computes dst[i] ^= c·src[i] with t's tables: AVX2 when
// the host has it (32 bytes per iteration), 64-bit word lanes otherwise
// and for tails. Both slices must have the same length (see mulSliceXor).
func mulSliceXorTab(t *mulTable, src, dst []byte) {
	if len(src) != len(dst) {
		panic("erasure: mulSliceXorTab: src and dst lengths differ")
	}
	i := 0
	if hasAVX2 {
		if v := len(src) &^ 31; v > 0 {
			gfMulXorAVX2(t, &src[0], &dst[0], v)
			i = v
		}
	}
	n := len(src) &^ 7
	for ; i < n; i += 8 {
		w := binary.LittleEndian.Uint64(dst[i:]) ^ mulWord(t, binary.LittleEndian.Uint64(src[i:]))
		binary.LittleEndian.PutUint64(dst[i:], w)
	}
	for i := n; i < len(src); i++ {
		dst[i] ^= t.lo[src[i]&15] ^ t.hi[src[i]>>4]
	}
}

// mulSliceSetTab computes dst[i] = c·src[i] (overwriting dst), so row
// drivers can skip zero-filling destination buffers before accumulating.
func mulSliceSetTab(t *mulTable, src, dst []byte) {
	if len(src) != len(dst) {
		panic("erasure: mulSliceSetTab: src and dst lengths differ")
	}
	i := 0
	if hasAVX2 {
		if v := len(src) &^ 31; v > 0 {
			gfMulSetAVX2(t, &src[0], &dst[0], v)
			i = v
		}
	}
	n := len(src) &^ 7
	for ; i < n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:], mulWord(t, binary.LittleEndian.Uint64(src[i:])))
	}
	for i := n; i < len(src); i++ {
		dst[i] = t.lo[src[i]&15] ^ t.hi[src[i]>>4]
	}
}

// xorSlice computes dst[i] ^= src[i] — the c == 1 fast path, a plain word
// XOR with no table translation.
func xorSlice(src, dst []byte) {
	if len(src) != len(dst) {
		panic("erasure: xorSlice: src and dst lengths differ")
	}
	i := 0
	if hasAVX2 {
		if v := len(src) &^ 31; v > 0 {
			gfXorAVX2(&src[0], &dst[0], v)
			i = v
		}
	}
	n := len(src) &^ 7
	for ; i < n; i += 8 {
		w := binary.LittleEndian.Uint64(dst[i:]) ^ binary.LittleEndian.Uint64(src[i:])
		binary.LittleEndian.PutUint64(dst[i:], w)
	}
	for i := n; i < len(src); i++ {
		dst[i] ^= src[i]
	}
}

// mulRowsRange computes dst[r][lo:hi] = Σ_j tabs[r][j]·src[j][lo:hi] for
// every row r. Zero coefficients are skipped, the first nonzero cell of a
// row overwrites (no pre-zeroing needed), and identity cells degrade to
// copy/XOR. All-zero rows zero-fill their destination range.
func mulRowsRange(tabs [][]mulTable, src, dst [][]byte, lo, hi int) {
	if hasGFNI && len(src) >= 4 && hi-lo >= 32 {
		w := (hi - lo) &^ 31
		mulRowsFusedGFNI(tabs, src, dst, lo, lo+w)
		if w == hi-lo {
			return
		}
		lo += w // byte tail continues on the generic path below
	}
	for r := range dst {
		d := dst[r][lo:hi]
		wrote := false
		for j := range src {
			t := &tabs[r][j]
			c := t.lo[1] // c·1 = c
			if c == 0 {
				continue
			}
			s := src[j][lo:hi]
			switch {
			case !wrote && c == 1:
				copy(d, s)
			case !wrote:
				mulSliceSetTab(t, s, d)
			case c == 1:
				xorSlice(s, d)
			default:
				mulSliceXorTab(t, s, d)
			}
			wrote = true
		}
		if !wrote {
			for i := range d {
				d[i] = 0
			}
		}
	}
}

// mulRowsFusedGFNI is the GFNI fast path of mulRowsRange: four source
// shards per assembly call, destination accumulated in registers.
// Requires hi-lo > 0 and ≡ 0 (mod 32), at least 4 sources, and hasGFNI
// (which implies hasAVX2 for the leftover single-source cells). Zero
// coefficients multiply to zero inside the fused call, so no skip logic
// is needed; the result is byte-for-byte the arithmetic of the generic
// path.
func mulRowsFusedGFNI(tabs [][]mulTable, src, dst [][]byte, lo, hi int) {
	n := hi - lo
	for r := range dst {
		row := tabs[r]
		d := &dst[r][lo]
		gfMul4SetGFNI(&row[0], &src[0][lo], &src[1][lo], &src[2][lo], &src[3][lo], d, n)
		j := 4
		for ; j+4 <= len(src); j += 4 {
			gfMul4XorGFNI(&row[j], &src[j][lo], &src[j+1][lo], &src[j+2][lo], &src[j+3][lo], d, n)
		}
		for ; j < len(src); j++ {
			t := &row[j]
			if t.lo[1] == 0 { // c·1 = c: zero coefficient, no contribution
				continue
			}
			gfMulXorAVX2(t, &src[j][lo], d, n)
		}
	}
}

const (
	// stripeChunk is the per-task byte range of the striped drivers: with
	// an FTI-typical 8+2 group the per-chunk working set is ~10 chunks,
	// sized to stay inside a per-core L2 slice.
	stripeChunk = 16 << 10
	// stripeMin is the shard size below which striping is not worth the
	// goroutine fan-out and the encode stays on the calling goroutine.
	stripeMin = 2 * stripeChunk
)

// mulRows runs mulRowsRange over [0, size), striping cache-sized chunks
// across a bounded worker pool when the shards are large enough. Each
// chunk of each output row is written by exactly one worker with the same
// arithmetic, so the result is byte-identical for every worker count.
func (c *Code) mulRows(tabs [][]mulTable, src, dst [][]byte, size int) {
	if len(dst) == 0 || size == 0 {
		return
	}
	workers := c.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	chunks := (size + stripeChunk - 1) / stripeChunk
	if workers > chunks {
		workers = chunks
	}
	if workers <= 1 || size < stripeMin {
		// Serial path still walks chunk by chunk: the destination chunk
		// stays cache-resident across all K accumulation passes, so large
		// shards stream from memory once instead of once per matrix cell.
		for lo := 0; lo < size; lo += stripeChunk {
			hi := lo + stripeChunk
			if hi > size {
				hi = size
			}
			mulRowsRange(tabs, src, dst, lo, hi)
		}
		return
	}
	// Striped-chunk worker pattern: workers pull chunk indexes from a
	// channel and write disjoint [lo, hi) ranges of the shared destination
	// shards — the per-range sibling of the per-slot idiom the
	// goroutine-capture linter exempts (see internal/lint/gocapture.go).
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ci := range next {
				lo := ci * stripeChunk
				hi := lo + stripeChunk
				if hi > size {
					hi = size
				}
				mulRowsRange(tabs, src, dst, lo, hi)
			}
		}()
	}
	for ci := 0; ci < chunks; ci++ {
		next <- ci
	}
	close(next)
	wg.Wait()
}
