//go:build !amd64

package erasure

// Non-amd64 builds run the portable word-lane kernels only; the stubs
// below are never reached (hasAVX2 is constant false, so the dispatch
// in kernel.go compiles them away).

const (
	hasAVX2 = false
	hasGFNI = false
)

func gfMulXorAVX2(tab *mulTable, src, dst *byte, n int) {
	panic("erasure: AVX2 kernel called on non-amd64 build")
}

func gfMul4SetGFNI(tabs *mulTable, src0, src1, src2, src3, dst *byte, n int) {
	panic("erasure: GFNI kernel called on non-amd64 build")
}

func gfMul4XorGFNI(tabs *mulTable, src0, src1, src2, src3, dst *byte, n int) {
	panic("erasure: GFNI kernel called on non-amd64 build")
}

func gfMulSetAVX2(tab *mulTable, src, dst *byte, n int) {
	panic("erasure: AVX2 kernel called on non-amd64 build")
}

func gfXorAVX2(src, dst *byte, n int) {
	panic("erasure: AVX2 kernel called on non-amd64 build")
}
