package erasure_test

import (
	"bytes"
	"fmt"

	"mlckpt/internal/erasure"
)

// Example encodes four node checkpoints with two parity shards, loses two
// nodes, and reconstructs everything — the level-3 story of the paper.
func Example() {
	code, err := erasure.New(4, 2)
	if err != nil {
		panic(err)
	}
	data := [][]byte{
		[]byte("rank-0 state"),
		[]byte("rank-1 state"),
		[]byte("rank-2 state"),
		[]byte("rank-3 state"),
	}
	parity, err := code.Encode(data)
	if err != nil {
		panic(err)
	}

	shards := append(append([][]byte{}, data...), parity...)
	shards[1], shards[3] = nil, nil // two simultaneous node losses

	if err := code.Reconstruct(shards); err != nil {
		panic(err)
	}
	fmt.Println(bytes.Equal(shards[1], data[1]) && bytes.Equal(shards[3], data[3]))
	// Output: true
}
