// AVX2 split-nibble GF(2⁸) kernels. The two 16-entry tables of a
// mulTable are exactly the shuffle tables VPSHUFB consumes: broadcast
// lo/hi into a YMM register each, then every 32-byte block of src is
// multiplied by the coefficient with two shuffles and one XOR —
// identical arithmetic to the pure-Go word-lane kernels in kernel.go,
// 32 bytes per iteration instead of 8.
//
// All three loops require n > 0 and n ≡ 0 (mod 32); the Go wrappers
// enforce that and handle tails.

#include "textflag.h"

DATA nibbleMask<>+0(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibbleMask<>+8(SB)/8, $0x0f0f0f0f0f0f0f0f
GLOBL nibbleMask<>(SB), RODATA|NOPTR, $16

// func gfMulXorAVX2(tab *mulTable, src, dst *byte, n int)
// dst[i] ^= c·src[i] for i in [0, n)
TEXT ·gfMulXorAVX2(SB), NOSPLIT, $0-32
	MOVQ tab+0(FP), AX
	MOVQ src+8(FP), SI
	MOVQ dst+16(FP), DI
	MOVQ n+24(FP), CX
	VBROADCASTI128 (AX), Y0           // lo nibble table
	VBROADCASTI128 16(AX), Y1         // hi nibble table
	VBROADCASTI128 nibbleMask<>(SB), Y2

	CMPQ    CX, $64
	JB      mulxor_tail32

mulxor_loop64:                            // two independent 32-byte lanes
	VMOVDQU (SI), Y3
	VMOVDQU 32(SI), Y5
	VPSRLQ  $4, Y3, Y4
	VPSRLQ  $4, Y5, Y6
	VPAND   Y2, Y3, Y3                // low nibbles
	VPAND   Y2, Y5, Y5
	VPAND   Y2, Y4, Y4                // high nibbles
	VPAND   Y2, Y6, Y6
	VPSHUFB Y3, Y0, Y3                // lo[b & 0x0F]
	VPSHUFB Y5, Y0, Y5
	VPSHUFB Y4, Y1, Y4                // hi[b >> 4]
	VPSHUFB Y6, Y1, Y6
	VPXOR   Y3, Y4, Y3                // c·b
	VPXOR   Y5, Y6, Y5
	VPXOR   (DI), Y3, Y3
	VPXOR   32(DI), Y5, Y5
	VMOVDQU Y3, (DI)
	VMOVDQU Y5, 32(DI)
	ADDQ    $64, SI
	ADDQ    $64, DI
	SUBQ    $64, CX
	CMPQ    CX, $64
	JAE     mulxor_loop64
	TESTQ   CX, CX
	JZ      mulxor_done

mulxor_tail32:
	VMOVDQU (SI), Y3
	VPSRLQ  $4, Y3, Y4
	VPAND   Y2, Y3, Y3
	VPAND   Y2, Y4, Y4
	VPSHUFB Y3, Y0, Y3
	VPSHUFB Y4, Y1, Y4
	VPXOR   Y3, Y4, Y3
	VPXOR   (DI), Y3, Y3
	VMOVDQU Y3, (DI)

mulxor_done:
	VZEROUPPER
	RET

// func gfMulSetAVX2(tab *mulTable, src, dst *byte, n int)
// dst[i] = c·src[i] for i in [0, n)
TEXT ·gfMulSetAVX2(SB), NOSPLIT, $0-32
	MOVQ tab+0(FP), AX
	MOVQ src+8(FP), SI
	MOVQ dst+16(FP), DI
	MOVQ n+24(FP), CX
	VBROADCASTI128 (AX), Y0
	VBROADCASTI128 16(AX), Y1
	VBROADCASTI128 nibbleMask<>(SB), Y2

	CMPQ    CX, $64
	JB      mulset_tail32

mulset_loop64:
	VMOVDQU (SI), Y3
	VMOVDQU 32(SI), Y5
	VPSRLQ  $4, Y3, Y4
	VPSRLQ  $4, Y5, Y6
	VPAND   Y2, Y3, Y3
	VPAND   Y2, Y5, Y5
	VPAND   Y2, Y4, Y4
	VPAND   Y2, Y6, Y6
	VPSHUFB Y3, Y0, Y3
	VPSHUFB Y5, Y0, Y5
	VPSHUFB Y4, Y1, Y4
	VPSHUFB Y6, Y1, Y6
	VPXOR   Y3, Y4, Y3
	VPXOR   Y5, Y6, Y5
	VMOVDQU Y3, (DI)
	VMOVDQU Y5, 32(DI)
	ADDQ    $64, SI
	ADDQ    $64, DI
	SUBQ    $64, CX
	CMPQ    CX, $64
	JAE     mulset_loop64
	TESTQ   CX, CX
	JZ      mulset_done

mulset_tail32:
	VMOVDQU (SI), Y3
	VPSRLQ  $4, Y3, Y4
	VPAND   Y2, Y3, Y3
	VPAND   Y2, Y4, Y4
	VPSHUFB Y3, Y0, Y3
	VPSHUFB Y4, Y1, Y4
	VPXOR   Y3, Y4, Y3
	VMOVDQU Y3, (DI)

mulset_done:
	VZEROUPPER
	RET

// func gfXorAVX2(src, dst *byte, n int)
// dst[i] ^= src[i] for i in [0, n) — the c == 1 fast path.
TEXT ·gfXorAVX2(SB), NOSPLIT, $0-24
	MOVQ src+0(FP), SI
	MOVQ dst+8(FP), DI
	MOVQ n+16(FP), CX

xor_loop:
	VMOVDQU (SI), Y0
	VPXOR   (DI), Y0, Y0
	VMOVDQU Y0, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $32, CX
	JNZ     xor_loop
	VZEROUPPER
	RET

// func cpuidex(op, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL op+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// GFNI fused kernels: VGF2P8AFFINEQB multiplies 32 bytes by a constant
// in one instruction (the mulTable.gfni bit matrix, broadcast per qword
// lane), so four source shards accumulate into one destination with four
// loads, four affines and a handful of XORs per 32-byte block. The
// matrix lives at offset 32 of each mulTable; tabs points at four
// consecutive tables (stride 40 bytes).

// func gfMul4SetGFNI(tabs *mulTable, src0, src1, src2, src3, dst *byte, n int)
// dst[i] = c0·src0[i] ^ c1·src1[i] ^ c2·src2[i] ^ c3·src3[i]
TEXT ·gfMul4SetGFNI(SB), NOSPLIT, $0-56
	MOVQ tabs+0(FP), AX
	MOVQ src0+8(FP), SI
	MOVQ src1+16(FP), BX
	MOVQ src2+24(FP), R8
	MOVQ src3+32(FP), R9
	MOVQ dst+40(FP), DI
	MOVQ n+48(FP), CX
	VPBROADCASTQ 32(AX), Y0           // matrix c0
	VPBROADCASTQ 72(AX), Y1           // matrix c1
	VPBROADCASTQ 112(AX), Y2          // matrix c2
	VPBROADCASTQ 152(AX), Y3          // matrix c3

mul4set_loop:
	VMOVDQU (SI), Y4
	VGF2P8AFFINEQB $0, Y0, Y4, Y4
	VMOVDQU (BX), Y5
	VGF2P8AFFINEQB $0, Y1, Y5, Y5
	VPXOR   Y5, Y4, Y4
	VMOVDQU (R8), Y5
	VGF2P8AFFINEQB $0, Y2, Y5, Y5
	VPXOR   Y5, Y4, Y4
	VMOVDQU (R9), Y5
	VGF2P8AFFINEQB $0, Y3, Y5, Y5
	VPXOR   Y5, Y4, Y4
	VMOVDQU Y4, (DI)
	ADDQ    $32, SI
	ADDQ    $32, BX
	ADDQ    $32, R8
	ADDQ    $32, R9
	ADDQ    $32, DI
	SUBQ    $32, CX
	JNZ     mul4set_loop
	VZEROUPPER
	RET

// func gfMul4XorGFNI(tabs *mulTable, src0, src1, src2, src3, dst *byte, n int)
// dst[i] ^= c0·src0[i] ^ c1·src1[i] ^ c2·src2[i] ^ c3·src3[i]
TEXT ·gfMul4XorGFNI(SB), NOSPLIT, $0-56
	MOVQ tabs+0(FP), AX
	MOVQ src0+8(FP), SI
	MOVQ src1+16(FP), BX
	MOVQ src2+24(FP), R8
	MOVQ src3+32(FP), R9
	MOVQ dst+40(FP), DI
	MOVQ n+48(FP), CX
	VPBROADCASTQ 32(AX), Y0
	VPBROADCASTQ 72(AX), Y1
	VPBROADCASTQ 112(AX), Y2
	VPBROADCASTQ 152(AX), Y3

mul4xor_loop:
	VMOVDQU (SI), Y4
	VGF2P8AFFINEQB $0, Y0, Y4, Y4
	VMOVDQU (BX), Y5
	VGF2P8AFFINEQB $0, Y1, Y5, Y5
	VPXOR   Y5, Y4, Y4
	VMOVDQU (R8), Y5
	VGF2P8AFFINEQB $0, Y2, Y5, Y5
	VPXOR   Y5, Y4, Y4
	VMOVDQU (R9), Y5
	VGF2P8AFFINEQB $0, Y3, Y5, Y5
	VPXOR   Y5, Y4, Y4
	VPXOR   (DI), Y4, Y4
	VMOVDQU Y4, (DI)
	ADDQ    $32, SI
	ADDQ    $32, BX
	ADDQ    $32, R8
	ADDQ    $32, R9
	ADDQ    $32, DI
	SUBQ    $32, CX
	JNZ     mul4xor_loop
	VZEROUPPER
	RET
