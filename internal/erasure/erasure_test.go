package erasure

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"mlckpt/internal/stats"
)

func TestGFFieldAxioms(t *testing.T) {
	// Multiplicative identity and inverse over the whole field.
	for a := 1; a < 256; a++ {
		b := byte(a)
		if Mul(b, 1) != b {
			t.Fatalf("%d·1 != %d", a, a)
		}
		if Mul(b, Inv(b)) != 1 {
			t.Fatalf("%d·%d⁻¹ != 1", a, a)
		}
		if Div(b, b) != 1 {
			t.Fatalf("%d/%d != 1", a, a)
		}
	}
	// Distributivity spot checks across a sample grid.
	for a := 0; a < 256; a += 7 {
		for b := 0; b < 256; b += 11 {
			for c := 0; c < 256; c += 13 {
				left := Mul(byte(a), Add(byte(b), byte(c)))
				right := Add(Mul(byte(a), byte(b)), Mul(byte(a), byte(c)))
				if left != right {
					t.Fatalf("distributivity fails at (%d,%d,%d)", a, b, c)
				}
			}
		}
	}
}

func TestGFMulCommutativeAssociative(t *testing.T) {
	for a := 0; a < 256; a += 5 {
		for b := 0; b < 256; b += 9 {
			if Mul(byte(a), byte(b)) != Mul(byte(b), byte(a)) {
				t.Fatalf("commutativity fails at (%d,%d)", a, b)
			}
			for c := 0; c < 256; c += 37 {
				l := Mul(Mul(byte(a), byte(b)), byte(c))
				r := Mul(byte(a), Mul(byte(b), byte(c)))
				if l != r {
					t.Fatalf("associativity fails at (%d,%d,%d)", a, b, c)
				}
			}
		}
	}
}

func TestGFPow(t *testing.T) {
	if Pow(2, 0) != 1 || Pow(0, 5) != 0 {
		t.Error("Pow edge cases wrong")
	}
	// a^255 = 1 for all non-zero a.
	for a := 1; a < 256; a++ {
		if Pow(byte(a), 255) != 1 {
			t.Fatalf("%d^255 != 1", a)
		}
	}
	// Pow matches repeated Mul.
	v := byte(1)
	for n := 0; n < 20; n++ {
		if Pow(3, n) != v {
			t.Fatalf("Pow(3,%d) mismatch", n)
		}
		v = Mul(v, 3)
	}
}

func TestDivInvPanics(t *testing.T) {
	for _, f := range []func(){
		func() { Div(5, 0) },
		func() { Inv(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestNewShapeErrors(t *testing.T) {
	if _, err := New(0, 2); !errors.Is(err, ErrShape) {
		t.Errorf("k=0: %v", err)
	}
	if _, err := New(-1, 2); !errors.Is(err, ErrShape) {
		t.Errorf("k<0: %v", err)
	}
	if _, err := New(200, 100); !errors.Is(err, ErrShape) {
		t.Errorf("k+m>256: %v", err)
	}
	if _, err := New(4, 0); err != nil {
		t.Errorf("m=0 should be legal (no parity): %v", err)
	}
}

func makeShards(k, size int, seed uint64) [][]byte {
	rng := stats.NewRNG(seed)
	out := make([][]byte, k)
	for i := range out {
		out[i] = make([]byte, size)
		for j := range out[i] {
			out[i][j] = byte(rng.Uint64())
		}
	}
	return out
}

func TestEncodeReconstructAllPatterns(t *testing.T) {
	// FTI-style group: 4 data + 2 parity. Every loss pattern of up to 2
	// shards must reconstruct exactly.
	c, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := makeShards(4, 128, 3)
	parity, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	full := append(append([][]byte{}, data...), parity...)
	for a := 0; a < 6; a++ {
		for b := a; b < 6; b++ {
			shards := make([][]byte, 6)
			for i := range shards {
				shards[i] = append([]byte(nil), full[i]...)
			}
			shards[a] = nil
			shards[b] = nil // a==b: single loss
			if err := c.Reconstruct(shards); err != nil {
				t.Fatalf("loss (%d,%d): %v", a, b, err)
			}
			for i := 0; i < 4; i++ {
				if !bytes.Equal(shards[i], data[i]) {
					t.Fatalf("loss (%d,%d): data shard %d corrupted", a, b, i)
				}
			}
			ok, err := c.Verify(shards)
			if err != nil || !ok {
				t.Fatalf("loss (%d,%d): verify failed: %v %v", a, b, ok, err)
			}
		}
	}
}

func TestReconstructTooManyLost(t *testing.T) {
	c, _ := New(4, 2)
	data := makeShards(4, 64, 5)
	parity, _ := c.Encode(data)
	shards := append(append([][]byte{}, data...), parity...)
	shards[0], shards[1], shards[2] = nil, nil, nil
	if err := c.Reconstruct(shards); !errors.Is(err, ErrTooManyLost) {
		t.Errorf("err = %v, want ErrTooManyLost", err)
	}
}

func TestEncodeErrors(t *testing.T) {
	c, _ := New(3, 2)
	if _, err := c.Encode(makeShards(2, 16, 1)); !errors.Is(err, ErrShape) {
		t.Errorf("wrong shard count: %v", err)
	}
	bad := makeShards(3, 16, 1)
	bad[1] = bad[1][:8]
	if _, err := c.Encode(bad); !errors.Is(err, ErrShardSize) {
		t.Errorf("ragged shards: %v", err)
	}
}

func TestReconstructNoOpWhenComplete(t *testing.T) {
	c, _ := New(3, 2)
	data := makeShards(3, 32, 9)
	parity, _ := c.Encode(data)
	shards := append(append([][]byte{}, data...), parity...)
	if err := c.Reconstruct(shards); err != nil {
		t.Fatalf("complete set: %v", err)
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	c, _ := New(4, 2)
	data := makeShards(4, 64, 11)
	parity, _ := c.Encode(data)
	shards := append(append([][]byte{}, data...), parity...)
	ok, err := c.Verify(shards)
	if err != nil || !ok {
		t.Fatalf("clean verify failed: %v %v", ok, err)
	}
	shards[2][10] ^= 0x55
	ok, err = c.Verify(shards)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("corruption not detected")
	}
}

func TestZeroParityCode(t *testing.T) {
	c, _ := New(4, 0)
	data := makeShards(4, 16, 13)
	parity, err := c.Encode(data)
	if err != nil || len(parity) != 0 {
		t.Fatalf("m=0 encode: %v, %d parity", err, len(parity))
	}
	shards := append([][]byte{}, data...)
	if err := c.Reconstruct(shards); err != nil {
		t.Fatalf("m=0 complete reconstruct: %v", err)
	}
	shards[0] = nil
	if err := c.Reconstruct(shards); !errors.Is(err, ErrTooManyLost) {
		t.Errorf("m=0 any loss must fail: %v", err)
	}
}

// Property: random (k, m) codes with random loss patterns up to m shards
// always round-trip.
func TestReconstructProperty(t *testing.T) {
	prop := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		k := 2 + rng.Intn(8)
		m := 1 + rng.Intn(4)
		c, err := New(k, m)
		if err != nil {
			return false
		}
		data := makeShards(k, 32, seed^0xABCD)
		parity, err := c.Encode(data)
		if err != nil {
			return false
		}
		shards := append(append([][]byte{}, data...), parity...)
		lost := rng.Intn(m + 1)
		for i := 0; i < lost; i++ {
			shards[rng.Intn(k+m)] = nil
		}
		if err := c.Reconstruct(shards); err != nil {
			return false
		}
		for i := 0; i < k; i++ {
			if !bytes.Equal(shards[i], data[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestLargeGroupCode(t *testing.T) {
	// FTI commonly groups 16 nodes with 4 parity.
	c, err := New(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	data := makeShards(16, 1024, 21)
	parity, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	shards := append(append([][]byte{}, data...), parity...)
	for _, i := range []int{0, 5, 17, 19} {
		shards[i] = nil
	}
	if err := c.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if !bytes.Equal(shards[i], data[i]) {
			t.Fatalf("shard %d corrupted", i)
		}
	}
}
