package mpisim

import (
	"bytes"
	"testing"
)

func TestReduceRootOnly(t *testing.T) {
	_, err := Run(6, DefaultCostModel(), func(r *Rank) {
		got := r.Reduce(2, Sum, []float64{float64(r.ID())})
		if r.ID() == 2 {
			if got == nil || got[0] != 15 { // 0+1+...+5
				panic("root result wrong")
			}
		} else if got != nil {
			panic("non-root received a result")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceMaxMin(t *testing.T) {
	_, err := Run(4, DefaultCostModel(), func(r *Rank) {
		if got := r.Reduce(0, Max, []float64{float64(r.ID() * 7)}); r.ID() == 0 && got[0] != 21 {
			panic("max wrong")
		}
		if got := r.Reduce(0, Min, []float64{float64(r.ID() + 3)}); r.ID() == 0 && got[0] != 3 {
			panic("min wrong")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatter(t *testing.T) {
	_, err := Run(4, DefaultCostModel(), func(r *Rank) {
		var chunks [][]byte
		if r.ID() == 1 {
			chunks = [][]byte{{0}, {11}, {22}, {33}}
		}
		got := r.Scatter(1, chunks)
		if len(got) != 1 || got[0] != byte(r.ID()*11) {
			panic("scatter chunk wrong")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatterWrongChunkCount(t *testing.T) {
	_, err := Run(2, DefaultCostModel(), func(r *Rank) {
		var chunks [][]byte
		if r.ID() == 0 {
			chunks = [][]byte{{1}} // one chunk for two ranks
		}
		r.Scatter(0, chunks)
	})
	if err == nil {
		t.Fatal("bad chunk count accepted")
	}
}

func TestSendRecvRing(t *testing.T) {
	// Classic shift-around-the-ring exchange, deadlock-free.
	_, err := Run(5, DefaultCostModel(), func(r *Rank) {
		right := (r.ID() + 1) % 5
		left := (r.ID() + 4) % 5
		got := r.SendRecv(right, 9, []byte{byte(r.ID())}, left, 9)
		if !bytes.Equal(got, []byte{byte(left)}) {
			panic("ring exchange wrong")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceInvalidRoot(t *testing.T) {
	_, err := Run(2, DefaultCostModel(), func(r *Rank) {
		r.Reduce(5, Sum, []float64{1})
	})
	if err == nil {
		t.Fatal("invalid root accepted")
	}
}
