package mpisim

import (
	"fmt"
	"sync"

	"mlckpt/internal/obs"
)

// goRuntime is the original goroutine-per-rank engine: every rank runs on
// its own goroutine, point-to-point messages travel over buffered channels
// keyed by (src, dst, tag), and collectives rendezvous under a mutex with
// the last arriver computing the result. It is kept as the differential
// oracle for the event engine (differential_test.go): a runtime with real
// preemptive concurrency, whose virtual times must nevertheless match the
// cooperative scheduler bit for bit because all cost arithmetic lives in
// the shared ops layer.
type goRuntime struct {
	nranks int
	cm     CostModel

	// rec/track carry the run's telemetry sink (see RunObserved). Spans
	// ride the virtual clock, so the exported trace depends only on the
	// program and cost model, never on goroutine scheduling.
	rec   obs.Recorder
	track string

	mu    sync.Mutex
	mail  map[mailKey]chan message
	colls map[collKey]*collOp
	ranks []Rank // contiguous slab; rank i is &ranks[i]

	// bufPool recycles message payload buffers: Send copies into a pooled
	// buffer and RecvInto returns it to the pool after copying out, so the
	// steady-state exchange path allocates nothing. Only buffer identity
	// depends on scheduling; contents, arrival times, and clocks do not.
	bufPool sync.Pool

	abortCh   chan struct{} // closed when any rank panics
	abortOnce sync.Once
}

type collOp struct {
	arrived  int
	entries  []float64
	payloads []any
	exit     float64
	result   any
	done     chan struct{}
}

// runGoroutine executes fn as size concurrent rank goroutines. A panic in
// any rank aborts the run with an error (the other ranks may be leaked if
// they are blocked on the panicking rank — acceptable for a simulator
// driven by tests and benches).
func runGoroutine(size int, cost CostModel, fn func(*Rank), rec obs.Recorder, track string) (float64, error) {
	rt := &goRuntime{
		nranks:  size,
		cm:      cost,
		rec:     rec,
		track:   track,
		mail:    make(map[mailKey]chan message),
		colls:   make(map[collKey]*collOp),
		abortCh: make(chan struct{}),
	}
	rt.ranks = make([]Rank, size)
	for i := range rt.ranks {
		rt.ranks[i].id = i
		rt.ranks[i].rt = rt
	}
	var wg sync.WaitGroup
	panics := make([]any, size)
	for i := 0; i < size; i++ {
		wg.Add(1)
		go func(r *Rank) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics[r.id] = p
					rt.abortOnce.Do(func() { close(rt.abortCh) })
				}
			}()
			fn(r)
		}(&rt.ranks[i])
	}
	wg.Wait()
	for id, p := range panics {
		if _, aborted := p.(abortSentinel); p != nil && !aborted {
			return 0, fmt.Errorf("%w: rank %d panicked: %v", ErrRuntime, id, p)
		}
	}
	// All recorded panics were abort sentinels triggered by... impossible
	// without an original panic, but guard anyway.
	for id, p := range panics {
		if p != nil {
			return 0, fmt.Errorf("%w: rank %d aborted", ErrRuntime, id)
		}
	}
	wall := finishRun(rec, track, size, func(i int) float64 { return rt.ranks[i].clock })
	return wall, nil
}

func (rt *goRuntime) size() int       { return rt.nranks }
func (rt *goRuntime) cost() CostModel { return rt.cm }

func (rt *goRuntime) box(k mailKey) chan message {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if ch, ok := rt.mail[k]; ok {
		return ch
	}
	ch := make(chan message, 1024)
	rt.mail[k] = ch
	return ch
}

// copyBuf copies data into a pooled buffer of the right length (allocating
// when the pool is empty or its buffer is too small). The pool traffics in
// *[]byte so that Get/Put move a pointer, not a boxed slice header —
// Put([]byte) would heap-allocate the header on every recycle.
func (rt *goRuntime) copyBuf(data []byte) ([]byte, *[]byte) {
	buf, p := rt.getBuf(len(data))
	copy(buf, data)
	return buf, p
}

// getBuf returns an uninitialized pooled buffer of length n for a caller
// that fills it in place (see evRuntime.getBuf).
func (rt *goRuntime) getBuf(n int) ([]byte, *[]byte) {
	p, _ := rt.bufPool.Get().(*[]byte)
	if p == nil || cap(*p) < n {
		b := make([]byte, n)
		p = &b
	} else {
		*p = (*p)[:n]
	}
	return *p, p
}

func (rt *goRuntime) recycle(p *[]byte) {
	rt.bufPool.Put(p)
}

//mlckpt:baton oracle engine blocks on real channels by design; every select pairs with abortCh so a wedged run unwinds
func (rt *goRuntime) deliver(r *Rank, dst, tag int, m message) {
	select {
	case rt.box(mailKey{r.id, dst, tag}) <- m:
	case <-rt.abortCh:
		panic(abortSentinel{})
	}
}

//mlckpt:baton oracle engine blocks on real channels by design; every select pairs with abortCh so a wedged run unwinds
func (rt *goRuntime) await(r *Rank, src, tag int) message {
	select {
	case msg := <-rt.box(mailKey{src, r.id, tag}):
		return msg
	case <-rt.abortCh:
		panic(abortSentinel{})
	}
}

//mlckpt:baton oracle engine blocks on real channels by design; the op.done wait pairs with abortCh so a wedged run unwinds
func (rt *goRuntime) rendezvous(r *Rank, key collKey, payload any, compute collCompute) (any, float64) {
	rt.mu.Lock()
	op, ok := rt.colls[key]
	if !ok {
		op = &collOp{
			entries:  make([]float64, rt.nranks),
			payloads: make([]any, rt.nranks),
			done:     make(chan struct{}),
		}
		rt.colls[key] = op
	}
	op.entries[r.id] = r.clock
	op.payloads[r.id] = payload
	op.arrived++
	if op.arrived == rt.nranks {
		op.result, op.exit = compute(op.entries, op.payloads)
		delete(rt.colls, key) // slot is complete; free it
		// The span covers first entry to common exit. Emitting under rt.mu
		// keeps per-track event order equal to collective completion order,
		// which program order fixes regardless of which goroutine arrives
		// last (all collectives here are global, hence totally ordered).
		emitCollSpan(rt.rec, rt.track, key, op.entries, op.exit)
		close(op.done)
	}
	rt.mu.Unlock()

	select {
	case <-op.done:
	case <-rt.abortCh:
		panic(abortSentinel{})
	}
	return op.result, op.exit
}
