package mpisim

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"testing"

	"mlckpt/internal/obs"
)

// This file is the differential harness between the two execution engines:
// randomized SPMD programs run on both the event scheduler and the
// goroutine oracle, and everything observable must match bit for bit —
// virtual wall clock, per-rank final clocks, an FNV-1a digest of every
// byte each rank received (in program order), the stripped metrics
// snapshot, and the exported trace bytes. The engines share the cost
// arithmetic by construction (the ops layer in mpisim.go), so any
// divergence found here is a scheduler bug: lost or reordered messages,
// wrong rendezvous membership, a wake at the wrong virtual time.

// phaseKind enumerates the operations the program generator mixes.
type phaseKind int

const (
	phCompute phaseKind = iota
	phRingShift
	phPairwise
	phBcast
	phScatter
	phGather
	phAllreduce
	phReduce
	phBarrier
	phMesh
	numPhaseKinds
)

// diffPhase is one step of a generated program. All ranks execute every
// phase (collectives here are global); per-rank asymmetry comes from the
// sizes/secs slices.
type diffPhase struct {
	kind   phaseKind
	root   int       // bcast/scatter/reduce root
	stride int       // ring/mesh shift distance
	tag    int       // point-to-point tag
	op     ReduceOp  // allreduce/reduce operator
	width  int       // allreduce/reduce vector width
	sizes  []int     // per-rank payload sizes (uneven on purpose)
	secs   []float64 // per-rank compute durations
}

// genProgram draws a random program of n phases for p ranks. Everything is
// derived from the seeded rng, so a (seed, p, n) triple names one program.
func genProgram(rng *rand.Rand, p, n int) []diffPhase {
	phases := make([]diffPhase, n)
	for i := range phases {
		ph := diffPhase{
			kind:   phaseKind(rng.Intn(int(numPhaseKinds))),
			root:   rng.Intn(p),
			stride: 1 + rng.Intn(p),
			tag:    rng.Intn(3),
			op:     ReduceOp(rng.Intn(3)),
			width:  1 + rng.Intn(4),
			sizes:  make([]int, p),
			secs:   make([]float64, p),
		}
		for r := 0; r < p; r++ {
			ph.sizes[r] = rng.Intn(200) // uneven, sometimes zero
			ph.secs[r] = float64(rng.Intn(1000)) * 1e-6
		}
		phases[i] = ph
	}
	return phases
}

// payload builds the deterministic message body for (phase, rank).
func payload(phase, rank, size int) []byte {
	b := make([]byte, size)
	for j := range b {
		b[j] = byte(phase*31 + rank*7 + j)
	}
	return b
}

// vector builds the deterministic reduction contribution for (phase, rank).
func vector(phase, rank, width int) []float64 {
	v := make([]float64, width)
	for j := range v {
		v[j] = float64((phase+1)*(rank+3)*(j+1)%97) - 48
	}
	return v
}

func hashBytes(h *uint64, data []byte) {
	f := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], *h)
	f.Write(buf[:])
	f.Write(data)
	*h = f.Sum64()
}

func hashFloats(h *uint64, data []float64) {
	buf := make([]byte, 8*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	hashBytes(h, buf)
}

// diffOutcome is everything one engine run exposes for comparison.
type diffOutcome struct {
	wall    float64
	err     error
	clocks  []float64
	digests []uint64
	metrics []byte
	trace   []byte
}

// runProgram executes the generated program on the given engine and
// collects the outcome. Per-rank results land in rank-indexed slice slots,
// the one shared-write idiom that is race-free under both engines.
func runProgram(t *testing.T, engine Engine, p int, phases []diffPhase) diffOutcome {
	t.Helper()
	out := diffOutcome{
		clocks:  make([]float64, p),
		digests: make([]uint64, p),
	}
	col := obs.NewCollector()
	fn := func(r *Rank) {
		id := r.ID()
		h := &out.digests[id]
		for i, ph := range phases {
			switch ph.kind {
			case phCompute:
				r.Compute(ph.secs[id])
			case phRingShift:
				dst := (id + ph.stride) % p
				src := (id - ph.stride%p + p) % p
				rq := r.Irecv(src, ph.tag)
				r.Send(dst, ph.tag, payload(i, id, ph.sizes[id]))
				hashBytes(h, rq.Wait())
			case phPairwise:
				partner := id ^ 1
				if partner < p {
					hashBytes(h, r.SendRecv(partner, ph.tag, payload(i, id, ph.sizes[id]), partner, ph.tag))
				} else {
					r.Compute(ph.secs[id])
				}
			case phBcast:
				var data []byte
				if id == ph.root {
					data = payload(i, id, ph.sizes[ph.root])
				}
				hashBytes(h, r.Bcast(ph.root, data))
			case phScatter:
				var chunks [][]byte
				if id == ph.root {
					chunks = make([][]byte, p)
					for k := range chunks {
						chunks[k] = payload(i, k, ph.sizes[k])
					}
				}
				hashBytes(h, r.Scatter(ph.root, chunks))
			case phGather:
				for _, part := range r.Gather(payload(i, id, ph.sizes[id])) {
					hashBytes(h, part)
				}
			case phAllreduce:
				hashFloats(h, r.Allreduce(ph.op, vector(i, id, ph.width)))
			case phReduce:
				if res := r.Reduce(ph.root, ph.op, vector(i, id, ph.width)); id == ph.root {
					hashFloats(h, res)
				}
			case phBarrier:
				r.Barrier()
			case phMesh:
				// Every rank posts its receive, then sends — a full shift
				// permutation completed with Waitall.
				rq := r.Irecv((id-ph.stride%p+p)%p, ph.tag)
				r.Send((id+ph.stride)%p, ph.tag, payload(i, id, ph.sizes[id]))
				r.Waitall([]*Request{rq})
				hashBytes(h, rq.data)
			}
		}
		out.clocks[id] = r.Clock()
	}
	out.wall, out.err = RunObservedOn(engine, p, DefaultCostModel(), fn, col, "mpisim/diff")
	snap := col.Registry.Snapshot()
	snap.StripVolatile()
	metrics, err := snap.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	trace, err := json.Marshal(col.Trace)
	if err != nil {
		t.Fatal(err)
	}
	out.metrics, out.trace = metrics, trace
	return out
}

// compareOutcomes asserts every observable of the two engines matches
// exactly.
func compareOutcomes(t *testing.T, label string, ev, or diffOutcome) {
	t.Helper()
	if (ev.err == nil) != (or.err == nil) {
		t.Fatalf("%s: error mismatch: event=%v goroutine=%v", label, ev.err, or.err)
	}
	if ev.err != nil {
		return // both failed; per-rank state after an abort is unspecified
	}
	if ev.wall != or.wall {
		t.Errorf("%s: wall clock: event=%g goroutine=%g", label, ev.wall, or.wall)
	}
	for i := range ev.clocks {
		if ev.clocks[i] != or.clocks[i] {
			t.Errorf("%s: rank %d clock: event=%g goroutine=%g", label, i, ev.clocks[i], or.clocks[i])
		}
		if ev.digests[i] != or.digests[i] {
			t.Errorf("%s: rank %d payload digest: event=%#x goroutine=%#x", label, i, ev.digests[i], or.digests[i])
		}
	}
	if !bytes.Equal(ev.metrics, or.metrics) {
		t.Errorf("%s: stripped metrics differ:\nevent:\n%s\ngoroutine:\n%s", label, ev.metrics, or.metrics)
	}
	if !bytes.Equal(ev.trace, or.trace) {
		t.Errorf("%s: trace bytes differ:\nevent:\n%s\ngoroutine:\n%s", label, ev.trace, or.trace)
	}
}

// TestSchedulerDifferential is the main randomized sweep: programs over
// the full operation mix, uneven payloads, rank counts from 2 to 1024.
func TestSchedulerDifferential(t *testing.T) {
	ranks := []int{2, 3, 7, 64, 1024}
	for _, p := range ranks {
		seeds := 4
		phaseCount := 14
		if p >= 64 {
			seeds = 2
		}
		if p >= 1024 {
			if testing.Short() {
				continue
			}
			seeds, phaseCount = 1, 8
		}
		for s := 0; s < seeds; s++ {
			seed := int64(1000*p + s)
			t.Run(fmt.Sprintf("ranks=%d/seed=%d", p, seed), func(t *testing.T) {
				phases := genProgram(rand.New(rand.NewSource(seed)), p, phaseCount)
				ev := runProgram(t, EventEngine, p, phases)
				or := runProgram(t, GoroutineEngine, p, phases)
				compareOutcomes(t, fmt.Sprintf("p=%d seed=%d", p, seed), ev, or)
			})
		}
	}
}

// TestSchedulerDifferentialRepeated pins run-to-run determinism of the
// event engine itself: the same program yields byte-identical outcomes on
// every execution, not just outcomes equal to the oracle's.
func TestSchedulerDifferentialRepeated(t *testing.T) {
	phases := genProgram(rand.New(rand.NewSource(42)), 7, 14)
	first := runProgram(t, EventEngine, 7, phases)
	for i := 0; i < 10; i++ {
		again := runProgram(t, EventEngine, 7, phases)
		compareOutcomes(t, fmt.Sprintf("repeat %d", i), first, again)
	}
}

// TestSchedulerPanicParity: a rank panic aborts both engines with the same
// error text.
func TestSchedulerPanicParity(t *testing.T) {
	fn := func(r *Rank) {
		r.Barrier()
		if r.ID() == 2 {
			panic("rank 2 exploded")
		}
		r.Barrier() // never completes: rank 2 is gone
	}
	_, evErr := RunOn(EventEngine, 5, DefaultCostModel(), fn)
	_, orErr := RunOn(GoroutineEngine, 5, DefaultCostModel(), fn)
	if evErr == nil || orErr == nil {
		t.Fatalf("expected both engines to fail: event=%v goroutine=%v", evErr, orErr)
	}
	if !errors.Is(evErr, ErrRuntime) || evErr.Error() != orErr.Error() {
		t.Errorf("error mismatch:\nevent:     %v\ngoroutine: %v", evErr, orErr)
	}
}

// TestSchedulerDeadlockIsError: under the event engine, a program in which
// every rank blocks on a message that can never arrive fails loudly
// instead of wedging the test binary. (The goroutine oracle would hang
// here, which is exactly why the event engine is the default.)
func TestSchedulerDeadlockIsError(t *testing.T) {
	_, err := Run(4, DefaultCostModel(), func(r *Rank) {
		r.Recv((r.ID()+1)%4, 9) // nobody ever sends
	})
	if !errors.Is(err, ErrRuntime) {
		t.Fatalf("deadlocked program returned %v, want ErrRuntime", err)
	}
}

// FuzzSchedulerEquivalence lets the fuzzer search for scheduler
// divergence: any (seed, rank count, phase count) whose program runs
// cleanly must produce identical outcomes on both engines.
func FuzzSchedulerEquivalence(f *testing.F) {
	f.Add(int64(7), uint8(2), uint8(6))
	f.Add(int64(42), uint8(3), uint8(10))
	f.Add(int64(1001), uint8(7), uint8(14))
	f.Add(int64(64064), uint8(16), uint8(12))
	f.Fuzz(func(t *testing.T, seed int64, pRaw, nRaw uint8) {
		p := 2 + int(pRaw)%15 // 2..16 ranks
		n := 1 + int(nRaw)%16 // 1..16 phases
		phases := genProgram(rand.New(rand.NewSource(seed)), p, n)
		ev := runProgram(t, EventEngine, p, phases)
		or := runProgram(t, GoroutineEngine, p, phases)
		compareOutcomes(t, fmt.Sprintf("seed=%d p=%d n=%d", seed, p, n), ev, or)
	})
}
