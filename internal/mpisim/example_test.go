package mpisim_test

import (
	"fmt"

	"mlckpt/internal/mpisim"
)

// Example runs a tiny SPMD program: every rank contributes its ID to an
// all-reduce while virtual time advances per the communication cost model.
func Example() {
	wall, err := mpisim.Run(8, mpisim.DefaultCostModel(), func(r *mpisim.Rank) {
		r.Compute(0.001) // one millisecond of "work"
		sum := r.Allreduce(mpisim.Sum, []float64{float64(r.ID())})
		if r.ID() == 0 {
			fmt.Printf("sum of ranks: %.0f\n", sum[0])
		}
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("virtual wall clock past the compute phase: %v\n", wall > 0.001)
	// Output:
	// sum of ranks: 28
	// virtual wall clock past the compute phase: true
}
