package mpisim

import (
	"fmt"

	"mlckpt/internal/obs"
)

// World is the vectorized face of the event engine: the same virtual-time
// and cost semantics as Run, over contiguous per-rank state, with no rank
// programs at all. A collective over 10^6 ranks is one pass over a clock
// slab plus one reduction sweep — no goroutines, no channels, no parking —
// which is what lets the simulated substrate reach the exascale
// N ≈ 10^6 regime the paper extrapolates to (TestAllreduceMillionRanks
// pins the budget).
//
// Use World when the program is collective-dominated and expressible as
// "advance clocks, then reduce": speedup-curve style workloads. Use Run
// when ranks need real point-to-point message flow or per-rank control
// flow; the two produce identical clocks, results, and telemetry for
// equivalent programs (TestWorldMatchesRun).
type World struct {
	size  int
	cm    CostModel
	rec   obs.Recorder
	track string

	clocks []float64 // clocks[i] is rank i's virtual time
	seq    [numCollKinds]int

	// acc/scratch are the reduction slabs, reused across Allreduce calls
	// so the steady-state path allocates nothing.
	acc, scratch []float64
}

// NewWorld creates a size-rank world with all clocks at zero.
func NewWorld(size int, cost CostModel) *World {
	return NewWorldObserved(size, cost, nil, "")
}

// NewWorldObserved is NewWorld with telemetry, mirroring RunObserved:
// collectives are counted and (with a non-empty track) emitted as virtual-
// time spans; Finish emits the enclosing run span.
func NewWorldObserved(size int, cost CostModel, rec obs.Recorder, track string) *World {
	if size <= 0 {
		panic(fmt.Sprintf("mpisim: NewWorld with size %d", size))
	}
	return &World{
		size:   size,
		cm:     cost,
		rec:    obs.OrNop(rec),
		track:  track,
		clocks: make([]float64, size),
	}
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Clock returns rank's current virtual time in seconds.
func (w *World) Clock(rank int) float64 { return w.clocks[rank] }

// Compute advances one rank's clock, like Rank.Compute.
func (w *World) Compute(rank int, seconds float64) {
	if seconds > 0 {
		w.clocks[rank] += seconds
	}
}

// ComputeAll advances every rank's clock by seconds(rank) in one sweep.
func (w *World) ComputeAll(seconds func(rank int) float64) {
	for i := range w.clocks {
		if s := seconds(i); s > 0 {
			w.clocks[i] += s
		}
	}
}

// AdvanceTo raises rank's clock to at least t, like Rank.AdvanceTo.
func (w *World) AdvanceTo(rank int, t float64) {
	if t > w.clocks[rank] {
		w.clocks[rank] = t
	}
}

// Barrier synchronizes every clock to the latest participant plus the tree
// latency — identical arithmetic to Rank.Barrier.
func (w *World) Barrier() {
	exit := maxOf(w.clocks) + w.cm.treeCost(w.size, 0)
	w.finishColl(collBarrier, exit)
}

// Allreduce reduces width-wide per-rank vectors elementwise with op and
// returns the reduced vector; contrib must fill out (length width) with
// rank's contribution. The cost model, reduction order, and telemetry are
// identical to Rank.Allreduce — one vectorized computation instead of a
// size-rank rendezvous. The returned slice is reused by the next
// Allreduce call; copy it to keep it.
//
//mlckpt:hotpath
func (w *World) Allreduce(op ReduceOp, width int, contrib func(rank int, out []float64)) []float64 {
	if cap(w.acc) < width {
		w.acc = make([]float64, width)
		w.scratch = make([]float64, width)
	}
	w.acc, w.scratch = w.acc[:width], w.scratch[:width]
	contrib(0, w.acc)
	for r := 1; r < w.size; r++ {
		contrib(r, w.scratch)
		op.apply(w.acc, w.scratch)
	}
	exit := maxOf(w.clocks) + w.cm.treeCost(w.size, 8*width)*2 // reduce + broadcast phases
	w.finishColl(collAllreduce, exit)
	return w.acc
}

// finishColl emits the collective's telemetry (entry clocks are the
// current slab, read before the update) and advances every clock to the
// common exit.
func (w *World) finishColl(kind collKind, exit float64) {
	key := collKey{kind: kind, seq: w.seq[kind]}
	w.seq[kind]++
	emitCollSpan(w.rec, w.track, key, w.clocks, exit)
	for i := range w.clocks {
		w.clocks[i] = exit
	}
}

// Wall returns the maximum clock across ranks.
func (w *World) Wall() float64 { return maxOf(w.clocks) }

// Finish emits the end-of-run telemetry (run count, virtual seconds, run
// span) exactly as Run does and returns the wall clock. Call it once.
func (w *World) Finish() float64 {
	return finishRun(w.rec, w.track, w.size, func(i int) float64 { return w.clocks[i] })
}
