package mpisim

import (
	"bytes"
	"math"
	"sync/atomic"
	"testing"

	"mlckpt/internal/enc"
)

func TestRunBasics(t *testing.T) {
	var count int64
	wall, err := Run(8, DefaultCostModel(), func(r *Rank) {
		atomic.AddInt64(&count, 1)
		r.Compute(0.5)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != 8 {
		t.Errorf("ran %d ranks, want 8", count)
	}
	if math.Abs(wall-0.5) > 1e-12 {
		t.Errorf("wall = %g, want 0.5", wall)
	}
}

func TestRunInvalidSize(t *testing.T) {
	if _, err := Run(0, DefaultCostModel(), func(*Rank) {}); err == nil {
		t.Error("size 0 accepted")
	}
}

func TestRunPanicPropagates(t *testing.T) {
	_, err := Run(2, DefaultCostModel(), func(r *Rank) {
		if r.ID() == 1 {
			panic("boom")
		}
		r.Recv(1, 0) // would deadlock without the panic short-circuit...
	})
	if err == nil {
		t.Fatal("rank panic not reported")
	}
}

func TestSendRecvData(t *testing.T) {
	payload := []byte("ghost-cells")
	_, err := Run(2, DefaultCostModel(), func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 7, payload)
		} else {
			got := r.Recv(0, 7)
			if !bytes.Equal(got, payload) {
				panic("payload corrupted")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvTiming(t *testing.T) {
	cost := CostModel{Overhead: 1, Latency: 10, ByteTime: 0.001}
	n := 1000 // bytes -> 1 s wire time
	var recvClock float64
	_, err := Run(2, cost, func(r *Rank) {
		if r.ID() == 0 {
			r.Compute(5)
			r.Send(1, 0, make([]byte, n))
		} else {
			r.Recv(0, 0)
			recvClock = r.Clock()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sender: 5 (compute) + 1 (overhead) = departs at 6. Arrival = 6 + 10 +
	// 1 = 17. Receiver: max(0, 17) + 1 = 18.
	if math.Abs(recvClock-18) > 1e-9 {
		t.Errorf("receiver clock = %g, want 18", recvClock)
	}
}

func TestRecvWaitsForLateSender(t *testing.T) {
	cost := CostModel{Overhead: 0, Latency: 1, ByteTime: 0}
	var recvClock float64
	_, err := Run(2, cost, func(r *Rank) {
		if r.ID() == 0 {
			r.Compute(100)
			r.Send(1, 0, nil)
		} else {
			r.Compute(1)
			r.Recv(0, 0)
			recvClock = r.Clock()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(recvClock-101) > 1e-9 {
		t.Errorf("receiver clock = %g, want 101", recvClock)
	}
}

func TestMessageOrderingPerChannel(t *testing.T) {
	_, err := Run(2, DefaultCostModel(), func(r *Rank) {
		if r.ID() == 0 {
			for i := 0; i < 10; i++ {
				r.Send(1, 3, []byte{byte(i)})
			}
		} else {
			for i := 0; i < 10; i++ {
				got := r.Recv(0, 3)
				if got[0] != byte(i) {
					panic("out-of-order delivery on one channel")
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTagsAreIndependent(t *testing.T) {
	_, err := Run(2, DefaultCostModel(), func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 1, []byte("one"))
			r.Send(1, 2, []byte("two"))
		} else {
			// Receive in the opposite tag order.
			if string(r.Recv(0, 2)) != "two" {
				panic("tag 2 wrong")
			}
			if string(r.Recv(0, 1)) != "one" {
				panic("tag 1 wrong")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIsendIrecvWaitall(t *testing.T) {
	// The heat app's exchange pattern: post Irecvs, Isends, then Waitall.
	_, err := Run(4, DefaultCostModel(), func(r *Rank) {
		left := (r.ID() + 3) % 4
		right := (r.ID() + 1) % 4
		reqs := []*Request{
			r.Irecv(left, 0),
			r.Irecv(right, 1),
			r.Isend(right, 0, []byte{byte(r.ID())}),
			r.Isend(left, 1, []byte{byte(r.ID())}),
		}
		r.Waitall(reqs)
		if reqs[0].Wait()[0] != byte(left) {
			panic("left neighbor data wrong")
		}
		if reqs[1].Wait()[0] != byte(right) {
			panic("right neighbor data wrong")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	cost := CostModel{Overhead: 0, Latency: 1, ByteTime: 0}
	clocks := make([]float64, 4)
	_, err := Run(4, cost, func(r *Rank) {
		r.Compute(float64(r.ID()) * 10) // ranks arrive at 0, 10, 20, 30
		r.Barrier()
		clocks[r.ID()] = r.Clock()
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 30 + 2.0 // max entry + ceil(log2(4)) rounds × 1 s latency
	for i, c := range clocks {
		if math.Abs(c-want) > 1e-9 {
			t.Errorf("rank %d clock = %g, want %g", i, c, want)
		}
	}
}

func TestBcast(t *testing.T) {
	data := []byte("model-parameters")
	_, err := Run(8, DefaultCostModel(), func(r *Rank) {
		var in []byte
		if r.ID() == 3 {
			in = data
		}
		got := r.Bcast(3, in)
		if !bytes.Equal(got, data) {
			panic("bcast payload wrong")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceSum(t *testing.T) {
	_, err := Run(8, DefaultCostModel(), func(r *Rank) {
		v := r.Allreduce(Sum, []float64{1, float64(r.ID())})
		if v[0] != 8 {
			panic("sum of ones wrong")
		}
		if v[1] != 28 { // 0+1+...+7
			panic("sum of ids wrong")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceMaxMin(t *testing.T) {
	_, err := Run(5, DefaultCostModel(), func(r *Rank) {
		mx := r.Allreduce(Max, []float64{float64(r.ID())})
		if mx[0] != 4 {
			panic("max wrong")
		}
		mn := r.Allreduce(Min, []float64{float64(r.ID())})
		if mn[0] != 0 {
			panic("min wrong")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGather(t *testing.T) {
	_, err := Run(4, DefaultCostModel(), func(r *Rank) {
		all := r.Gather([]byte{byte(r.ID() * 11)})
		for i, b := range all {
			if b[0] != byte(i*11) {
				panic("gather content wrong")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRepeatedCollectives(t *testing.T) {
	// Sequence numbers must keep repeated collectives of the same kind
	// separate.
	_, err := Run(3, DefaultCostModel(), func(r *Rank) {
		for i := 0; i < 50; i++ {
			v := r.Allreduce(Sum, []float64{float64(i)})
			if v[0] != float64(3*i) {
				panic("collective generations mixed up")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommDominatedScalingShape(t *testing.T) {
	// A fixed-size workload split across P ranks with per-iteration
	// collectives: speedup must rise at small P and fall once communication
	// dominates — the Figure 2(b) shape the quadratic fit targets.
	serial := 1.0 // seconds of total compute per iteration
	cost := CostModel{Overhead: 1e-4, Latency: 1e-3, ByteTime: 1e-9}
	wallAt := func(p int) float64 {
		wall, err := Run(p, cost, func(r *Rank) {
			for it := 0; it < 5; it++ {
				r.Compute(serial / float64(p))
				r.Allreduce(Sum, []float64{1})
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return wall
	}
	base := wallAt(1)
	s16 := base / wallAt(16)
	s256 := base / wallAt(256)
	s1024 := base / wallAt(1024)
	if s16 <= 1 {
		t.Errorf("no speedup at 16 ranks: %g", s16)
	}
	if s256 <= s16 {
		t.Errorf("speedup not rising: s16=%g s256=%g", s16, s256)
	}
	if s1024 >= s256 {
		t.Errorf("speedup did not fall in the comm-dominated regime: s256=%g s1024=%g", s256, s1024)
	}
}

func TestAdvanceTo(t *testing.T) {
	_, err := Run(1, DefaultCostModel(), func(r *Rank) {
		r.AdvanceTo(42)
		if r.Clock() != 42 {
			panic("AdvanceTo failed")
		}
		r.AdvanceTo(10) // never goes backward
		if r.Clock() != 42 {
			panic("AdvanceTo went backward")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicWallClock(t *testing.T) {
	prog := func(r *Rank) {
		for i := 0; i < 20; i++ {
			r.Compute(0.001 * float64(r.ID()+1))
			r.Allreduce(Max, []float64{float64(i)})
		}
	}
	w1, err := Run(16, DefaultCostModel(), prog)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Run(16, DefaultCostModel(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if w1 != w2 {
		t.Errorf("wall clock not deterministic: %g vs %g", w1, w2)
	}
}

// TestFloatMessagingMatchesBytes pins the contract of the float-payload
// fast path: SendFloats/RecvFloatsInto must produce the same receiver
// clocks and the same values as encoding the row by hand and shipping it
// through Send/RecvInto, on both engines. It also crosses the two APIs in
// both directions, since the wire format is shared.
func TestFloatMessagingMatchesBytes(t *testing.T) {
	cost := CostModel{Overhead: 0.25, Latency: 3, ByteTime: 0.01}
	row := make([]float64, 37)
	for i := range row {
		row[i] = float64(i)*1.5 - 7 // includes negatives and zero
	}
	run := func(engine Engine, floats bool) (clock float64, got []float64) {
		got = make([]float64, len(row))
		_, err := RunOn(engine, 2, cost, func(r *Rank) {
			if r.ID() == 0 {
				if floats {
					r.SendFloats(1, 9, row)
				} else {
					buf := make([]byte, 8*len(row))
					enc.PutFloat64s(buf, row)
					r.Send(1, 9, buf)
				}
			} else {
				if floats {
					r.RecvFloatsInto(0, 9, got)
				} else {
					buf := r.RecvInto(0, 9, nil)
					enc.GetFloat64s(got, buf)
				}
				clock = r.Clock()
			}
		})
		if err != nil {
			t.Fatalf("RunOn: %v", err)
		}
		return clock, got
	}
	for _, engine := range []Engine{EventEngine, GoroutineEngine} {
		byteClock, byteGot := run(engine, false)
		floatClock, floatGot := run(engine, true)
		if math.Float64bits(byteClock) != math.Float64bits(floatClock) {
			t.Errorf("engine %v: float-path clock %v, byte-path clock %v", engine, floatClock, byteClock)
		}
		for i := range row {
			if math.Float64bits(floatGot[i]) != math.Float64bits(row[i]) {
				t.Fatalf("engine %v: floatGot[%d] = %v, want %v", engine, i, floatGot[i], row[i])
			}
			if math.Float64bits(byteGot[i]) != math.Float64bits(row[i]) {
				t.Fatalf("engine %v: byteGot[%d] = %v, want %v", engine, i, byteGot[i], row[i])
			}
		}
	}

	// Cross the APIs: SendFloats -> Recv bytes, Send bytes -> RecvFloatsInto.
	_, err := Run(2, cost, func(r *Rank) {
		if r.ID() == 0 {
			r.SendFloats(1, 1, row)
			buf := make([]byte, 8*len(row))
			enc.PutFloat64s(buf, row)
			r.Send(1, 2, buf)
		} else {
			raw := r.Recv(0, 1)
			want := make([]byte, 8*len(row))
			enc.PutFloat64s(want, row)
			if !bytes.Equal(raw, want) {
				panic("SendFloats wire bytes differ from hand-encoded row")
			}
			got := make([]float64, len(row))
			r.RecvFloatsInto(0, 2, got)
			for i := range row {
				if math.Float64bits(got[i]) != math.Float64bits(row[i]) {
					panic("RecvFloatsInto decoded wrong values from a byte Send")
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRecvFloatsIntoSizeMismatch pins the panic on a length mismatch.
func TestRecvFloatsIntoSizeMismatch(t *testing.T) {
	_, err := Run(2, DefaultCostModel(), func(r *Rank) {
		if r.ID() == 0 {
			r.SendFloats(1, 0, make([]float64, 4))
		} else {
			r.RecvFloatsInto(0, 0, make([]float64, 3))
		}
	})
	if err == nil {
		t.Fatal("size-mismatched RecvFloatsInto not reported")
	}
}
