package mpisim

import (
	"fmt"

	"mlckpt/internal/eventq"
	"mlckpt/internal/obs"
)

// evRuntime is the run-to-completion event engine, the default since the
// scheduler rewrite (docs/SCHEDULER.md).
//
// The engine maintains one invariant: exactly one goroutine is ever
// executing — either a rank's program or the scheduler loop. Control moves
// by explicit baton handoff (a send on a fiber's buffered resume channel,
// or spawning a fresh scheduler loop), never by preemption. Consequences:
//
//   - No locks. Every field of evRuntime is mutated only by the goroutine
//     holding the baton, and every handoff is a channel send or a go
//     statement, both of which publish those writes (happens-before), so
//     the engine is race-detector-clean without a single mutex.
//   - Deterministic execution order. The next rank to run is chosen from
//     an eventq ordered by (virtual resume time, rank id) — a pure
//     function of the program, never of the Go scheduler.
//   - Lazy stacks. A rank that never blocks runs inline on the current
//     goroutine's stack; goroutines are created only when a blocked rank
//     forces the scheduler onto a fresh stack (passBaton). A program whose
//     ranks never block — or a collective-free segment — spawns none.
//   - Deadlocks are errors, not hangs. If every live rank is blocked the
//     run aborts with ErrRuntime instead of wedging the test binary, and
//     unlike the goroutine engine no rank goroutines are leaked: every
//     fiber is unwound before Run returns.
//
// Rank programs inherit one obligation from the cooperative discipline:
// they may block only through mpisim operations (Recv, Wait, collectives).
// Blocking on external synchronization that another rank must release
// mid-segment (an unbuffered channel handshake, a held mutex) stalls the
// whole engine, because the rank that would release it is not scheduled
// until the current one yields. See docs/SCHEDULER.md for the contract.
type evRuntime struct {
	nranks int
	cm     CostModel
	rec    obs.Recorder
	track  string
	fn     func(*Rank)

	ranks  []Rank  // contiguous slab; rank i is &ranks[i]
	fibers []fiber // contiguous slab; fiber i is &fibers[i]

	// q holds runnable fibers keyed by the virtual time at which they
	// resume (0 for unstarted fibers): the engine always runs the
	// runnable rank with the smallest clock, ties in rank order.
	q eventq.Queue

	mail  map[mailKey]*mailbox // FIFO per channel, matching the oracle's buffered chans
	colls map[collKey]*evColl

	// free recycles message payload buffers like the goroutine engine's
	// sync.Pool, but as a plain stack: with one goroutine active there is
	// nothing to synchronize, and buffer identity becomes deterministic
	// too (not just buffer contents).
	free []*[]byte

	live     int // fibers not yet done
	aborted  bool
	panicID  int
	panicVal any
	abortErr error
	done     chan struct{} // closed by the last active goroutine
}

type fiberState uint8

const (
	fibNew     fiberState = iota // never run; queued at time 0
	fibRunning                   // holds the baton
	fibBlocked                   // parked in park(), waiting for an event
	fibReady                     // event arrived; queued for resumption
	fibDone
)

// fiber is the scheduling state of one rank. A fiber's continuation lives
// on whichever goroutine first ran it inline; resume is how the baton
// reaches it (buffered so the resumer never blocks, even if the fiber has
// not yet reached its receive).
type fiber struct {
	id      int
	state   fiberState
	resume  chan struct{}
	wantMsg mailKey // receive the fiber is blocked on (valid when waitMsg)
	waitMsg bool
}

// evColl is one in-flight collective: arrival slots plus the fibers parked
// in it, woken together (in arrival order) by the last arriver.
type evColl struct {
	arrived  int
	entries  []float64
	payloads []any
	exit     float64
	result   any
	waiters  []*fiber
}

// runEvent executes fn as size ranks under the event engine. The calling
// goroutine becomes the first scheduler; it may end up hosting a fiber's
// continuation, so completion is signalled on rt.done by whichever
// goroutine is active last.
func runEvent(size int, cost CostModel, fn func(*Rank), rec obs.Recorder, track string) (float64, error) {
	rt := &evRuntime{
		nranks: size,
		cm:     cost,
		rec:    rec,
		track:  track,
		fn:     fn,
		mail:   make(map[mailKey]*mailbox),
		colls:  make(map[collKey]*evColl),
		live:   size,
		done:   make(chan struct{}),
	}
	rt.ranks = make([]Rank, size)
	rt.fibers = make([]fiber, size)
	for i := range rt.ranks {
		rt.ranks[i].id = i
		rt.ranks[i].rt = rt
		rt.ranks[i].fib = &rt.fibers[i]
		rt.fibers[i].id = i
		rt.q.Push(0, int64(i))
	}
	rt.schedule()
	<-rt.done
	if rt.panicVal != nil {
		return 0, fmt.Errorf("%w: rank %d panicked: %v", ErrRuntime, rt.panicID, rt.panicVal)
	}
	if rt.abortErr != nil {
		return 0, rt.abortErr
	}
	wall := finishRun(rec, track, size, func(i int) float64 { return rt.ranks[i].clock })
	return wall, nil
}

// schedule is the baton loop: run by whichever goroutine is active, it
// executes runnable fibers until it hands the baton to a parked fiber
// (return after resume) or the run completes (close done, return).
func (rt *evRuntime) schedule() {
	for {
		if rt.aborted {
			rt.drainAborted()
			return
		}
		if rt.q.Len() == 0 {
			if rt.live > 0 {
				// No fiber is runnable, none is active (we hold the
				// baton), and live fibers remain: every one of them is
				// parked on an event that can no longer occur.
				rt.aborted = true
				rt.abortErr = fmt.Errorf("%w: deadlock: all ranks blocked", ErrRuntime)
				continue
			}
			close(rt.done)
			return
		}
		f := &rt.fibers[rt.q.Pop().Payload]
		switch f.state {
		case fibNew:
			f.state = fibRunning
			rt.runFiber(f)
			// runFiber returns when f's program completes, however many
			// park/resume cycles that takes; this goroutine is the active
			// one again, so keep scheduling.
		case fibReady:
			f.state = fibRunning
			f.resume <- struct{}{}
			return
		}
	}
}

// runFiber executes one rank's program inline and absorbs its termination:
// normal return, a real panic (recorded, aborts the run), or an
// abortSentinel unwind (already accounted for by whoever aborted).
func (rt *evRuntime) runFiber(f *fiber) {
	defer func() {
		if p := recover(); p != nil {
			if _, sentinel := p.(abortSentinel); !sentinel && !rt.aborted {
				rt.aborted = true
				rt.panicID = f.id
				rt.panicVal = p
			}
		}
		f.state = fibDone
		rt.live--
	}()
	rt.fn(&rt.ranks[f.id])
}

// park blocks the current fiber until an event resumes it. The baton is
// passed first — to the next runnable fiber directly, or to a fresh
// scheduler goroutine when the next runnable has never started (an
// unstarted program needs a stack of its own, and ours is occupied).
//
//mlckpt:baton the engine's one sanctioned block: the baton is passed before the receive, and a failed pass aborts instead of wedging
func (rt *evRuntime) park(f *fiber) {
	if f.resume == nil {
		f.resume = make(chan struct{}, 1)
	}
	f.state = fibBlocked
	if !rt.passBaton() {
		// Nothing runnable anywhere: this fiber blocking would wedge the
		// run. Turn the would-be hang into an error and unwind.
		rt.aborted = true
		rt.abortErr = fmt.Errorf("%w: deadlock: all ranks blocked", ErrRuntime)
		f.state = fibRunning
		panic(abortSentinel{})
	}
	<-f.resume
	if rt.aborted {
		panic(abortSentinel{})
	}
}

// passBaton activates the next runnable fiber and reports whether there
// was one. Called only from a fiber about to park, so an unstarted next
// fiber cannot run on this stack — that is the single place the event
// engine creates a goroutine.
func (rt *evRuntime) passBaton() bool {
	if rt.q.Len() == 0 {
		return false
	}
	next := &rt.fibers[rt.q.Min().Payload]
	if next.state == fibReady {
		rt.q.Pop()
		next.state = fibRunning
		next.resume <- struct{}{}
		return true
	}
	go rt.schedule()
	return true
}

// drainAborted unwinds the remaining fibers after an abort, one at a time
// to preserve the single-active-goroutine invariant: resume one parked
// fiber (it panics abortSentinel out of its program, and its host
// goroutine's schedule loop re-enters this drain), discard unstarted ones.
// The goroutine that finds nothing left signals completion.
func (rt *evRuntime) drainAborted() {
	for i := range rt.fibers {
		f := &rt.fibers[i]
		switch f.state {
		case fibNew:
			f.state = fibDone
			rt.live--
		case fibBlocked, fibReady:
			f.state = fibRunning
			f.resume <- struct{}{}
			return
		}
	}
	close(rt.done)
}

func (rt *evRuntime) size() int       { return rt.nranks }
func (rt *evRuntime) cost() CostModel { return rt.cm }

// copyBuf mirrors the goroutine engine's pool discipline: pop one
// candidate buffer; reuse it if large enough, otherwise allocate (the
// too-small candidate is dropped, as sync.Pool drops unsuitable gets).
func (rt *evRuntime) copyBuf(data []byte) ([]byte, *[]byte) {
	buf, p := rt.getBuf(len(data))
	copy(buf, data)
	return buf, p
}

// getBuf returns an uninitialized pooled buffer of length n for a caller
// that fills it in place (the float-payload send path encodes directly
// into it, skipping the intermediate byte staging a copyBuf send needs).
func (rt *evRuntime) getBuf(n int) ([]byte, *[]byte) {
	if len(rt.free) > 0 {
		cand := rt.free[len(rt.free)-1]
		rt.free = rt.free[:len(rt.free)-1]
		if cap(*cand) >= n {
			*cand = (*cand)[:n]
			return *cand, cand
		}
	}
	b := make([]byte, n)
	return b, &b
}

func (rt *evRuntime) recycle(p *[]byte) {
	rt.free = append(rt.free, p)
}

// mailbox is one (src, dst, tag) channel's FIFO. Draining advances head
// instead of re-slicing so the backing array is reused once the box
// empties — the event-engine analogue of the oracle's long-lived
// buffered channels (a re-sliced queue reallocates on every message).
type mailbox struct {
	msgs []message
	head int
}

func (mb *mailbox) push(m message) {
	if mb.head == len(mb.msgs) {
		mb.msgs, mb.head = mb.msgs[:0], 0
	}
	mb.msgs = append(mb.msgs, m)
}

func (mb *mailbox) pop() (message, bool) {
	if mb.head == len(mb.msgs) {
		return message{}, false
	}
	m := mb.msgs[mb.head]
	mb.msgs[mb.head] = message{} // release payload references for reuse
	mb.head++
	return m, true
}

// deliver appends the message to its channel queue and, if the receiver is
// parked on exactly this channel, marks it runnable at the virtual time
// the receive will complete: max(receiver clock, arrival).
//
//mlckpt:hotpath
func (rt *evRuntime) deliver(r *Rank, dst, tag int, m message) {
	k := mailKey{r.id, dst, tag}
	mb := rt.mail[k]
	if mb == nil {
		mb = &mailbox{}
		rt.mail[k] = mb
	}
	mb.push(m)
	df := &rt.fibers[dst]
	if df.state == fibBlocked && df.waitMsg && df.wantMsg == k {
		df.waitMsg = false
		df.state = fibReady
		wake := rt.ranks[dst].clock
		if m.arrival > wake {
			wake = m.arrival
		}
		rt.q.Push(wake, int64(dst))
	}
}

// await returns the next message on (src, tag), parking until one is
// delivered. FIFO per channel, matching the oracle's buffered chans.
//
//mlckpt:hotpath
func (rt *evRuntime) await(r *Rank, src, tag int) message {
	f := r.fib
	k := mailKey{src, r.id, tag}
	for {
		if mb := rt.mail[k]; mb != nil {
			if m, ok := mb.pop(); ok {
				return m
			}
		}
		f.wantMsg, f.waitMsg = k, true
		rt.park(f)
	}
}

// rendezvous implements the collective protocol: arrivals deposit entry
// clock and payload; the last arriver runs compute, emits the span, and
// wakes every parked participant at the common exit time.
func (rt *evRuntime) rendezvous(r *Rank, key collKey, payload any, compute collCompute) (any, float64) {
	op, ok := rt.colls[key]
	if !ok {
		op = &evColl{
			entries:  make([]float64, rt.nranks),
			payloads: make([]any, rt.nranks),
		}
		rt.colls[key] = op
	}
	op.entries[r.id] = r.clock
	op.payloads[r.id] = payload
	op.arrived++
	if op.arrived == rt.nranks {
		op.result, op.exit = compute(op.entries, op.payloads)
		delete(rt.colls, key) // slot is complete; free it
		emitCollSpan(rt.rec, rt.track, key, op.entries, op.exit)
		for _, w := range op.waiters {
			w.state = fibReady
			rt.q.Push(op.exit, int64(w.id))
		}
		return op.result, op.exit
	}
	op.waiters = append(op.waiters, r.fib)
	rt.park(r.fib)
	return op.result, op.exit
}
