package mpisim

import (
	"fmt"
	"testing"
)

func BenchmarkAllreduce(b *testing.B) {
	for _, p := range []int{8, 64, 256} {
		b.Run(fmt.Sprintf("ranks=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := Run(p, DefaultCostModel(), func(r *Rank) {
					for k := 0; k < 10; k++ {
						r.Allreduce(Sum, []float64{1, 2, 3})
					}
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPointToPointRing(b *testing.B) {
	const p = 64
	payload := make([]byte, 4096)
	for i := 0; i < b.N; i++ {
		_, err := Run(p, DefaultCostModel(), func(r *Rank) {
			right := (r.ID() + 1) % p
			left := (r.ID() + p - 1) % p
			for k := 0; k < 10; k++ {
				rq := r.Irecv(left, 1)
				r.Send(right, 1, payload)
				rq.Wait()
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRuntimeSpawn(b *testing.B) {
	// Cost of spinning an SPMD world up and down.
	for i := 0; i < b.N; i++ {
		if _, err := Run(128, DefaultCostModel(), func(r *Rank) {}); err != nil {
			b.Fatal(err)
		}
	}
}
