package mpisim

import (
	"fmt"
	"testing"
)

// BenchmarkAllreduce measures the collective fast path: the World
// vectorized surface (the face of the event engine built for
// collective-dominated programs — TestWorldMatchesRun pins its equivalence
// to Run). The ranks=1048576 case is the paper's exascale N ≈ 10^6 regime;
// TestAllreduceMillionRanks pins its wall/alloc budget.
func BenchmarkAllreduce(b *testing.B) {
	for _, p := range []int{8, 64, 256, 1 << 20} {
		b.Run(fmt.Sprintf("ranks=%d", p), func(b *testing.B) {
			w := NewWorld(p, DefaultCostModel())
			contrib := func(rank int, out []float64) {
				out[0], out[1], out[2] = 1, 2, 3
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for k := 0; k < 10; k++ {
					w.Allreduce(Sum, 3, contrib)
				}
			}
		})
	}
}

// BenchmarkAllreduceRanks measures the same 10-Allreduce program as full
// rank programs on each engine — the cost of running arbitrary blocking
// continuations, as opposed to the vectorized World path above.
func BenchmarkAllreduceRanks(b *testing.B) {
	for _, engine := range []Engine{EventEngine, GoroutineEngine} {
		for _, p := range []int{8, 64, 256} {
			b.Run(fmt.Sprintf("%s/ranks=%d", engine, p), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					_, err := RunOn(engine, p, DefaultCostModel(), func(r *Rank) {
						for k := 0; k < 10; k++ {
							r.Allreduce(Sum, []float64{1, 2, 3})
						}
					})
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkPointToPointRing(b *testing.B) {
	const p = 64
	payload := make([]byte, 4096)
	for i := 0; i < b.N; i++ {
		_, err := Run(p, DefaultCostModel(), func(r *Rank) {
			right := (r.ID() + 1) % p
			left := (r.ID() + p - 1) % p
			for k := 0; k < 10; k++ {
				rq := r.Irecv(left, 1)
				r.Send(right, 1, payload)
				rq.Wait()
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRuntimeSpawn(b *testing.B) {
	// Cost of spinning an SPMD world up and down. Under the event engine a
	// program that never blocks runs entirely inline on the caller's
	// goroutine — this benchmark spawns nothing.
	for i := 0; i < b.N; i++ {
		if _, err := Run(128, DefaultCostModel(), func(r *Rank) {}); err != nil {
			b.Fatal(err)
		}
	}
}
