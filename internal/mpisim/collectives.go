package mpisim

import "fmt"

// Reduce reduces the per-rank vectors elementwise with op; only the root
// receives the result (others get nil). Cost: one tree phase (half an
// Allreduce).
func (r *Rank) Reduce(root int, op ReduceOp, data []float64) []float64 {
	if root < 0 || root >= r.rt.size() {
		panic(fmt.Sprintf("mpisim: Reduce with invalid root %d", root))
	}
	local := append([]float64(nil), data...)
	cost := r.rt.cost().treeCost(r.rt.size(), 8*len(data))
	out := r.collective(collReduce, local, func(entries []float64, payloads []any) (any, float64) {
		acc := append([]float64(nil), payloads[0].([]float64)...)
		for i := 1; i < len(payloads); i++ {
			v := payloads[i].([]float64)
			if len(v) != len(acc) {
				panic(fmt.Sprintf("mpisim: Reduce length mismatch: %d vs %d", len(v), len(acc)))
			}
			op.apply(acc, v)
		}
		return acc, maxOf(entries) + cost
	})
	if r.id != root {
		return nil
	}
	return out.([]float64)
}

// Scatter distributes root's per-rank chunks: rank i receives chunks[i].
// Non-root ranks pass nil. Cost: one tree phase over the total volume.
func (r *Rank) Scatter(root int, chunks [][]byte) []byte {
	if root < 0 || root >= r.rt.size() {
		panic(fmt.Sprintf("mpisim: Scatter with invalid root %d", root))
	}
	var payload any
	if r.id == root {
		if len(chunks) != r.rt.size() {
			panic(fmt.Sprintf("mpisim: Scatter with %d chunks for %d ranks", len(chunks), r.rt.size()))
		}
		cp := make([][]byte, len(chunks))
		for i, c := range chunks {
			cp[i] = append([]byte(nil), c...)
		}
		payload = cp
	}
	// The cost must come from the gathered payloads, not from any one
	// caller's arguments: the closure runs on whichever rank arrives last,
	// and per-rank argument sizes may differ. Virtual time has to be a
	// pure function of the communicated data, never of rank execution
	// order.
	cm, size := r.rt.cost(), r.rt.size()
	out := r.collective(collScatter, payload, func(entries []float64, payloads []any) (any, float64) {
		total := 0
		for _, c := range payloads[root].([][]byte) {
			total += len(c)
		}
		return payloads[root], maxOf(entries) + cm.treeCost(size, total)
	})
	all := out.([][]byte)
	return all[r.id]
}

// SendRecv performs a combined blocking exchange with two (possibly
// different) partners, deadlock-free: the send is injected eagerly before
// the receive blocks.
func (r *Rank) SendRecv(dst, sendTag int, data []byte, src, recvTag int) []byte {
	r.Send(dst, sendTag, data)
	return r.Recv(src, recvTag)
}
