package mpisim

import (
	"bytes"
	"encoding/json"
	"testing"

	"mlckpt/internal/obs"
)

// worldProgramWidth is the vector width shared by the World/Run
// equivalence program below.
const worldProgramWidth = 3

// runWorldProgram executes the reference collective-dominated program —
// per-rank compute, barrier, two Allreduces — on the World surface.
func runWorldProgram(rec obs.Recorder, track string, p int) (wall float64, clocks []float64, result []float64) {
	w := NewWorldObserved(p, DefaultCostModel(), rec, track)
	w.ComputeAll(func(rank int) float64 { return float64(rank) * 1e-4 })
	w.Barrier()
	contrib := func(rank int, out []float64) {
		for j := range out {
			out[j] = float64(rank*(j+2)%13) - 6
		}
	}
	res := append([]float64(nil), w.Allreduce(Sum, worldProgramWidth, contrib)...)
	res = append(res, w.Allreduce(Max, worldProgramWidth, contrib)...)
	clocks = make([]float64, p)
	for i := range clocks {
		clocks[i] = w.Clock(i)
	}
	return w.Finish(), clocks, res
}

// runRankProgram executes the same program as full rank programs.
func runRankProgram(t *testing.T, engine Engine, rec obs.Recorder, track string, p int) (wall float64, clocks, result []float64) {
	t.Helper()
	clocks = make([]float64, p)
	results := make([][]float64, p)
	wall, err := RunObservedOn(engine, p, DefaultCostModel(), func(r *Rank) {
		id := r.ID()
		r.Compute(float64(id) * 1e-4)
		r.Barrier()
		vec := make([]float64, worldProgramWidth)
		for j := range vec {
			vec[j] = float64(id*(j+2)%13) - 6
		}
		res := append([]float64(nil), r.Allreduce(Sum, vec)...)
		res = append(res, r.Allreduce(Max, vec)...)
		results[id] = res
		clocks[id] = r.Clock()
	}, rec, track)
	if err != nil {
		t.Fatal(err)
	}
	return wall, clocks, results[0]
}

// TestWorldMatchesRun pins the equivalence of the vectorized surface to
// the rank-program path on both engines: identical wall, per-rank clocks,
// reduction results, stripped metrics, and trace bytes.
func TestWorldMatchesRun(t *testing.T) {
	for _, p := range []int{1, 2, 7, 64} {
		wCol := obs.NewCollector()
		wWall, wClocks, wRes := runWorldProgram(wCol, "mpisim/world", p)
		for _, engine := range []Engine{EventEngine, GoroutineEngine} {
			rCol := obs.NewCollector()
			rWall, rClocks, rRes := runRankProgram(t, engine, rCol, "mpisim/world", p)
			if wWall != rWall {
				t.Errorf("p=%d %s: wall: world=%g run=%g", p, engine, wWall, rWall)
			}
			for i := range wClocks {
				if wClocks[i] != rClocks[i] {
					t.Errorf("p=%d %s: rank %d clock: world=%g run=%g", p, engine, i, wClocks[i], rClocks[i])
				}
			}
			if len(wRes) != len(rRes) {
				t.Fatalf("p=%d %s: result width: world=%d run=%d", p, engine, len(wRes), len(rRes))
			}
			for j := range wRes {
				if wRes[j] != rRes[j] {
					t.Errorf("p=%d %s: result[%d]: world=%g run=%g", p, engine, j, wRes[j], rRes[j])
				}
			}
			wTrace, _ := json.Marshal(wCol.Trace)
			rTrace, _ := json.Marshal(rCol.Trace)
			if !bytes.Equal(wTrace, rTrace) {
				t.Errorf("p=%d %s: trace bytes differ:\nworld: %s\nrun:   %s", p, engine, wTrace, rTrace)
			}
			wSnap, rSnap := wCol.Registry.Snapshot(), rCol.Registry.Snapshot()
			wSnap.StripVolatile()
			rSnap.StripVolatile()
			wm, _ := wSnap.MarshalIndent()
			rm, _ := rSnap.MarshalIndent()
			if !bytes.Equal(wm, rm) {
				t.Errorf("p=%d %s: metrics differ:\nworld:\n%s\nrun:\n%s", p, engine, wm, rm)
			}
		}
	}
}

// TestAllreduceMillionRanks pins the scaling fix the scheduler rewrite
// exists for: a 10^6-rank Allreduce — the paper's exascale N ≈ 10^6
// extrapolation regime — completes in well under a second of host time and
// allocates nothing in steady state. Before the rewrite a collective at
// this scale meant 10^6 goroutines in one rendezvous.
func TestAllreduceMillionRanks(t *testing.T) {
	if testing.Short() {
		t.Skip("allocates an 8 MB clock slab and sweeps it repeatedly")
	}
	const p = 1 << 20
	w := NewWorld(p, DefaultCostModel())
	contrib := func(rank int, out []float64) {
		out[0], out[1], out[2] = 1, float64(rank), float64(rank%7)
	}

	start := obs.WallClock()
	res := w.Allreduce(Sum, 3, contrib)
	elapsed := obs.WallClock() - start
	if elapsed >= 1.0 {
		t.Errorf("10^6-rank Allreduce took %.3fs host time, want < 1s", elapsed)
	}

	// Correctness at scale: sum over 2^20 ranks of each component.
	if want := float64(p); res[0] != want {
		t.Errorf("res[0] = %g, want %g", res[0], want)
	}
	if want := float64(p) * float64(p-1) / 2; res[1] != want {
		t.Errorf("res[1] = %g, want %g", res[1], want)
	}

	// Virtual time matches the shared tree-cost formula exactly.
	wantExit := DefaultCostModel().treeCost(p, 8*3) * 2
	if got := w.Clock(0); got != wantExit {
		t.Errorf("clock after Allreduce = %g, want %g", got, wantExit)
	}

	// Steady state allocates nothing: the clock slab and reduction
	// scratch are reused across calls.
	if allocs := testing.AllocsPerRun(3, func() {
		w.Allreduce(Sum, 3, contrib)
	}); allocs != 0 {
		t.Errorf("steady-state Allreduce allocates %.0f objects/op, want 0", allocs)
	}
}
