package mpisim

import (
	"bytes"
	"encoding/json"
	"testing"

	"mlckpt/internal/obs"
)

// obsProgram runs a short mix of collectives so the trace has a few spans.
func obsProgram(r *Rank) {
	r.Barrier()
	r.Compute(float64(r.ID()) * 0.5)
	r.Allreduce(Sum, []float64{float64(r.ID())})
	r.Barrier()
}

func runObserved(t *testing.T) (*obs.Collector, float64) {
	t.Helper()
	col := obs.NewCollector()
	wall, err := RunObserved(8, DefaultCostModel(), obsProgram, col, "mpisim/test")
	if err != nil {
		t.Fatal(err)
	}
	return col, wall
}

// TestRunObservedDeterministicTrace: collective spans are emitted by the
// last arriver while it holds the runtime lock, and every collective is
// global, so the event order is program order — the trace bytes cannot
// depend on goroutine scheduling.
func TestRunObservedDeterministicTrace(t *testing.T) {
	marshal := func() []byte {
		col, _ := runObserved(t)
		data, err := json.Marshal(col.Trace)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	if a, b := marshal(), marshal(); !bytes.Equal(a, b) {
		t.Error("trace bytes differ across identical runs")
	}
}

func TestRunObservedTelemetry(t *testing.T) {
	col, wall := runObserved(t)
	snap := col.Registry.Snapshot()
	if n, _ := snap.Counter("mpisim.runs"); n != 1 {
		t.Errorf("mpisim.runs = %d, want 1", n)
	}
	// obsProgram performs 3 collectives: barrier, allreduce, barrier.
	if n, _ := snap.Counter("mpisim.collectives"); n != 3 {
		t.Errorf("mpisim.collectives = %d, want 3", n)
	}
	// 3 collective spans + the whole-run span.
	if got := col.Trace.Len(); got != 4 {
		t.Errorf("trace has %d events, want 4", got)
	}
	if wall <= 0 {
		t.Errorf("virtual wall clock = %g, want > 0", wall)
	}
}

func TestRunObservedMatchesRun(t *testing.T) {
	plain, err := Run(8, DefaultCostModel(), obsProgram)
	if err != nil {
		t.Fatal(err)
	}
	_, wall := runObserved(t)
	if plain != wall {
		t.Errorf("virtual time differs with a Recorder attached: %g vs %g", wall, plain)
	}
}
