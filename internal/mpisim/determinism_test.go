package mpisim

import (
	"bytes"
	"testing"
)

// Virtual time must be a pure function of the program, never of goroutine
// scheduling. The collectives' cost used to be priced off the closure
// runner's (i.e. the last arriver's) local arguments, which made wall
// clocks flap under the race detector whenever per-rank payload sizes
// differed — uneven Gather blocks, nil non-root Bcast/Scatter arguments.
// These tests pin the fix by replaying scheduling-sensitive programs and
// demanding identical clocks every time.

func unevenGatherWall(t *testing.T) float64 {
	t.Helper()
	// 7 ranks, rank i contributes i+1 bytes: every rank sees a different
	// local size, so the old cost depended on who arrived last.
	wall, err := Run(7, DefaultCostModel(), func(r *Rank) {
		for iter := 0; iter < 50; iter++ {
			r.Compute(float64(r.ID()+1) * 1e-6) // desynchronize arrivals
			blob := bytes.Repeat([]byte{byte(r.ID())}, r.ID()+1)
			all := r.Gather(blob)
			if len(all[r.ID()]) != r.ID()+1 {
				panic("gather payload corrupted")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return wall
}

func TestGatherWallClockSchedulingIndependent(t *testing.T) {
	want := unevenGatherWall(t)
	for rep := 0; rep < 20; rep++ {
		if got := unevenGatherWall(t); got != want {
			t.Fatalf("rep %d: wall %.17g != %.17g — virtual time depends on scheduling", rep, got, want)
		}
	}
}

func rootOnlyPayloadWall(t *testing.T) float64 {
	t.Helper()
	wall, err := Run(5, DefaultCostModel(), func(r *Rank) {
		for iter := 0; iter < 30; iter++ {
			r.Compute(float64(5-r.ID()) * 1e-6)
			var msg []byte
			if r.ID() == 2 {
				msg = bytes.Repeat([]byte{7}, 1000)
			}
			got := r.Bcast(2, msg)
			if len(got) != 1000 {
				panic("bcast payload corrupted")
			}
			var chunks [][]byte
			if r.ID() == 0 {
				chunks = make([][]byte, 5)
				for i := range chunks {
					chunks[i] = bytes.Repeat([]byte{byte(i)}, 100*(i+1))
				}
			}
			mine := r.Scatter(0, chunks)
			if len(mine) != 100*(r.ID()+1) {
				panic("scatter payload corrupted")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return wall
}

func TestBcastScatterWallClockSchedulingIndependent(t *testing.T) {
	want := rootOnlyPayloadWall(t)
	for rep := 0; rep < 20; rep++ {
		if got := rootOnlyPayloadWall(t); got != want {
			t.Fatalf("rep %d: wall %.17g != %.17g — virtual time depends on scheduling", rep, got, want)
		}
	}
}

// TestWallClockEngineIndependent extends the scheduling-independence pin
// across the engine boundary: the scheduling-sensitive programs above
// yield the same wall clock whether ranks are cooperative continuations
// (event engine, used by the helpers via Run) or preemptive goroutines.
func TestWallClockEngineIndependent(t *testing.T) {
	for name, prog := range map[string]func(*Rank){
		"unevenGather": func(r *Rank) {
			for iter := 0; iter < 50; iter++ {
				r.Compute(float64(r.ID()+1) * 1e-6)
				r.Gather(bytes.Repeat([]byte{byte(r.ID())}, r.ID()+1))
			}
		},
		"rootOnlyPayload": func(r *Rank) {
			for iter := 0; iter < 30; iter++ {
				r.Compute(float64(5-r.ID()) * 1e-6)
				var msg []byte
				if r.ID() == 2 {
					msg = bytes.Repeat([]byte{7}, 1000)
				}
				r.Bcast(2, msg)
			}
		},
	} {
		ev, err := RunOn(EventEngine, 5, DefaultCostModel(), prog)
		if err != nil {
			t.Fatalf("%s: event: %v", name, err)
		}
		or, err := RunOn(GoroutineEngine, 5, DefaultCostModel(), prog)
		if err != nil {
			t.Fatalf("%s: goroutine: %v", name, err)
		}
		if ev != or {
			t.Errorf("%s: wall %.17g (event) != %.17g (goroutine)", name, ev, or)
		}
	}
}
