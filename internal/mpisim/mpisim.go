// Package mpisim is a simulated message-passing runtime: it executes SPMD
// programs written against an MPI-like API — one goroutine per rank, real
// data movement between ranks — while advancing per-rank *virtual clocks*
// according to a LogP-style communication cost model instead of measuring
// host time.
//
// It stands in for the paper's real-cluster substrate (the Argonne Fusion
// runs of Section IV): the Heat Distribution program in internal/heat runs
// on it with genuine ghost-cell exchanges and reductions, producing the
// speedup curves of Figure 2 and exercising the FTI-style checkpoint
// toolkit in internal/fti end to end. Because time is virtual, a
// 1,024-rank execution simulates in milliseconds, deterministically.
//
// Timing semantics (cost model fields in parentheses):
//
//   - Compute(s): the rank's clock advances by s seconds.
//   - Send/Isend: the sender is charged the injection overhead (Overhead);
//     the message departs at that point and arrives Latency + len·ByteTime
//     later.
//   - Recv/Wait: the receiver's clock becomes max(own clock, arrival) +
//     Overhead.
//   - Collectives (Barrier, Bcast, Allreduce): all ranks synchronize to the
//     latest participant, plus a binary-tree cost of ceil(log2 P) rounds.
package mpisim

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"mlckpt/internal/obs"
)

// ErrRuntime is returned when an SPMD program fails (rank panic, bad rank
// arguments, mismatched collectives).
var ErrRuntime = errors.New("mpisim: runtime error")

// CostModel parameterizes communication timing, all in seconds (ByteTime in
// seconds per byte).
type CostModel struct {
	Overhead float64 // per-message CPU injection/extraction cost (o)
	Latency  float64 // network transit latency (L)
	ByteTime float64 // inverse bandwidth (1/B), seconds per byte
}

// DefaultCostModel approximates a commodity InfiniBand cluster of the
// paper's era: ~1 µs overhead, ~1.5 µs latency, ~3 GB/s links.
func DefaultCostModel() CostModel {
	return CostModel{Overhead: 1e-6, Latency: 1.5e-6, ByteTime: 1.0 / 3e9}
}

// transferTime returns the wire time of an n-byte message.
func (c CostModel) transferTime(n int) float64 {
	return c.Latency + float64(n)*c.ByteTime
}

// treeCost returns the cost of a binary-tree collective over p ranks moving
// n bytes per round.
func (c CostModel) treeCost(p, n int) float64 {
	if p <= 1 {
		return 0
	}
	rounds := math.Ceil(math.Log2(float64(p)))
	return rounds * (c.Overhead + c.transferTime(n))
}

type mailKey struct {
	src, dst, tag int
}

// collKind indexes the fixed set of collective operations. Using a dense
// enum (rather than the operation name) lets each rank keep its per-kind
// sequence counters in a flat array instead of a map, which is what keeps
// world spawn at O(ranks) small allocations.
type collKind uint8

// Collective kinds, in span-name order (see collNames).
const (
	collBarrier collKind = iota
	collBcast
	collAllreduce
	collGather
	collReduce
	collScatter
	numCollKinds
)

var collNames = [numCollKinds]string{"barrier", "bcast", "allreduce", "gather", "reduce", "scatter"}

// collKey names one instance of a collective: the operation kind plus the
// per-rank sequence number. A comparable struct (rather than a formatted
// string) keeps the per-rank hot path allocation-free.
type collKey struct {
	kind collKind
	seq  int
}

type message struct {
	data    []byte
	pooled  *[]byte // pool wrapper for data: recycled by RecvInto, dropped by Recv
	arrival float64 // virtual time the message is available at the receiver
}

// Runtime hosts one SPMD execution.
type Runtime struct {
	size int
	cost CostModel

	// rec/track carry the run's telemetry sink (see RunObserved). Spans
	// ride the virtual clock, so the exported trace depends only on the
	// program and cost model, never on goroutine scheduling.
	rec   obs.Recorder
	track string

	mu    sync.Mutex
	mail  map[mailKey]chan message
	colls map[collKey]*collOp
	ranks []Rank // contiguous slab; rank i is &ranks[i]

	// bufPool recycles message payload buffers: Send copies into a pooled
	// buffer and RecvInto returns it to the pool after copying out, so the
	// steady-state exchange path allocates nothing. Only buffer identity
	// depends on scheduling; contents, arrival times, and clocks do not.
	bufPool sync.Pool

	abort     chan struct{} // closed when any rank panics
	abortOnce sync.Once
}

// abortSentinel marks the secondary panics used to unblock ranks stuck in
// Recv or collectives after another rank failed.
type abortSentinel struct{}

type collOp struct {
	arrived  int
	entries  []float64
	payloads []any
	exit     float64
	result   any
	done     chan struct{}
}

// Rank is the per-goroutine handle an SPMD function receives.
type Rank struct {
	id    int
	rt    *Runtime
	clock float64
	seq   [numCollKinds]int // per-kind collective sequence numbers
}

// Run executes fn as size concurrent ranks and returns the wall-clock time
// of the execution: the maximum final virtual clock across ranks. A panic
// in any rank aborts the run with an error (the other ranks may be leaked
// if they are blocked on the panicking rank — acceptable for a simulator
// driven by tests and benches).
func Run(size int, cost CostModel, fn func(*Rank)) (float64, error) {
	return RunObserved(size, cost, fn, nil, "")
}

// RunObserved is Run with telemetry: collective operations are counted
// and — when track is non-empty — emitted as spans on the virtual clock
// (entry of the earliest rank to exit), plus one enclosing "run" span.
// Track names must derive from the program's content (kernel name, scale)
// so traces are byte-identical across hosts and schedules. A nil recorder
// makes this identical to Run.
func RunObserved(size int, cost CostModel, fn func(*Rank), rec obs.Recorder, track string) (float64, error) {
	if size <= 0 {
		return 0, fmt.Errorf("%w: size %d", ErrRuntime, size)
	}
	rt := &Runtime{
		size:  size,
		cost:  cost,
		rec:   obs.OrNop(rec),
		track: track,
		mail:  make(map[mailKey]chan message),
		colls: make(map[collKey]*collOp),
		abort: make(chan struct{}),
	}
	rt.ranks = make([]Rank, size)
	for i := range rt.ranks {
		rt.ranks[i].id = i
		rt.ranks[i].rt = rt
	}
	var wg sync.WaitGroup
	panics := make([]any, size)
	for i := 0; i < size; i++ {
		wg.Add(1)
		go func(r *Rank) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics[r.id] = p
					rt.abortOnce.Do(func() { close(rt.abort) })
				}
			}()
			fn(r)
		}(&rt.ranks[i])
	}
	wg.Wait()
	for id, p := range panics {
		if _, aborted := p.(abortSentinel); p != nil && !aborted {
			return 0, fmt.Errorf("%w: rank %d panicked: %v", ErrRuntime, id, p)
		}
	}
	// All recorded panics were abort sentinels triggered by... impossible
	// without an original panic, but guard anyway.
	for id, p := range panics {
		if p != nil {
			return 0, fmt.Errorf("%w: rank %d aborted", ErrRuntime, id)
		}
	}
	wall := 0.0
	for i := range rt.ranks {
		if c := rt.ranks[i].clock; c > wall {
			wall = c
		}
	}
	rt.rec.Count("mpisim.runs", 1)
	rt.rec.Observe("mpisim.run.virtual_s", wall)
	if rt.track != "" {
		rt.rec.Span(rt.track, "run", 0, wall, map[string]float64{
			"ranks": float64(size),
		})
	}
	return wall, nil
}

// ID returns the rank index in [0, Size).
func (r *Rank) ID() int { return r.id }

// Size returns the number of ranks.
func (r *Rank) Size() int { return r.rt.size }

// Clock returns the rank's current virtual time in seconds.
func (r *Rank) Clock() float64 { return r.clock }

// Compute advances the rank's clock by the given computation time.
func (r *Rank) Compute(seconds float64) {
	if seconds > 0 {
		r.clock += seconds
	}
}

func (rt *Runtime) box(k mailKey) chan message {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if ch, ok := rt.mail[k]; ok {
		return ch
	}
	ch := make(chan message, 1024)
	rt.mail[k] = ch
	return ch
}

// getBuf returns a pooled buffer of length n (allocating when the pool is
// empty or its buffer is too small). The pool traffics in *[]byte so that
// Get/Put move a pointer, not a boxed slice header — Put([]byte) would
// heap-allocate the header on every recycle.
func (rt *Runtime) getBuf(n int) *[]byte {
	if p, _ := rt.bufPool.Get().(*[]byte); p != nil && cap(*p) >= n {
		*p = (*p)[:n]
		return p
	}
	b := make([]byte, n)
	return &b
}

// Send transmits data to rank dst with the given tag (eager semantics: the
// sender does not wait for the matching receive). The payload is copied,
// so the caller may reuse data immediately.
func (r *Rank) Send(dst, tag int, data []byte) {
	if dst < 0 || dst >= r.rt.size {
		panic(fmt.Sprintf("mpisim: Send to invalid rank %d", dst))
	}
	r.clock += r.rt.cost.Overhead
	p := r.rt.getBuf(len(data))
	copy(*p, data)
	msg := message{
		data:    *p,
		pooled:  p,
		arrival: r.clock + r.rt.cost.transferTime(len(data)),
	}
	select {
	case r.rt.box(mailKey{r.id, dst, tag}) <- msg:
	case <-r.rt.abort:
		panic(abortSentinel{})
	}
}

// Recv blocks until a message from src with the given tag arrives and
// returns its payload.
func (r *Rank) Recv(src, tag int) []byte {
	if src < 0 || src >= r.rt.size {
		panic(fmt.Sprintf("mpisim: Recv from invalid rank %d", src))
	}
	var msg message
	select {
	case msg = <-r.rt.box(mailKey{src, r.id, tag}):
	case <-r.rt.abort:
		panic(abortSentinel{})
	}
	if msg.arrival > r.clock {
		r.clock = msg.arrival
	}
	r.clock += r.rt.cost.Overhead
	return msg.data
}

// RecvInto is Recv with a caller-owned destination: the payload is copied
// into buf (grown if too small) and the internal message buffer returns
// to the runtime's pool, so a steady-state exchange loop allocates
// nothing. Clock semantics are identical to Recv.
func (r *Rank) RecvInto(src, tag int, buf []byte) []byte {
	if src < 0 || src >= r.rt.size {
		panic(fmt.Sprintf("mpisim: RecvInto from invalid rank %d", src))
	}
	var msg message
	select {
	case msg = <-r.rt.box(mailKey{src, r.id, tag}):
	case <-r.rt.abort:
		panic(abortSentinel{})
	}
	if msg.arrival > r.clock {
		r.clock = msg.arrival
	}
	r.clock += r.rt.cost.Overhead
	if cap(buf) < len(msg.data) {
		buf = make([]byte, len(msg.data))
	} else {
		buf = buf[:len(msg.data)]
	}
	copy(buf, msg.data)
	r.rt.bufPool.Put(msg.pooled)
	return buf
}

// Request is a pending nonblocking operation.
type Request struct {
	rank     *Rank
	recv     bool
	src, tag int
	done     bool
	data     []byte
}

// doneRequest is the shared completed-send request: Wait on a done
// request only reads, so one immutable instance serves every Isend.
var doneRequest = &Request{done: true}

// Isend starts a nonblocking send. The message is injected immediately
// (eager); Wait is a no-op kept for MPI-shaped code.
func (r *Rank) Isend(dst, tag int, data []byte) *Request {
	r.Send(dst, tag, data)
	return doneRequest
}

// Irecv posts a nonblocking receive; the match happens at Wait.
func (r *Rank) Irecv(src, tag int) *Request {
	return &Request{rank: r, recv: true, src: src, tag: tag}
}

// Wait completes the request and returns the received payload (nil for
// sends).
func (q *Request) Wait() []byte {
	if q.done {
		return q.data
	}
	q.done = true
	if q.recv {
		q.data = q.rank.Recv(q.src, q.tag)
	}
	return q.data
}

// Waitall completes all requests in order.
func (r *Rank) Waitall(reqs []*Request) {
	for _, q := range reqs {
		q.Wait()
	}
}

// collective synchronizes all ranks on a named operation. compute runs once
// (on the last arriver) over the gathered payloads and entry clocks and
// returns (result, exitClock).
func (r *Rank) collective(kind collKind, payload any,
	compute func(entries []float64, payloads []any) (any, float64)) any {

	rt := r.rt
	seq := r.seq[kind]
	r.seq[kind] = seq + 1
	key := collKey{kind: kind, seq: seq}

	rt.mu.Lock()
	op, ok := rt.colls[key]
	if !ok {
		op = &collOp{
			entries:  make([]float64, rt.size),
			payloads: make([]any, rt.size),
			done:     make(chan struct{}),
		}
		rt.colls[key] = op
	}
	op.entries[r.id] = r.clock
	op.payloads[r.id] = payload
	op.arrived++
	if op.arrived == rt.size {
		op.result, op.exit = compute(op.entries, op.payloads)
		delete(rt.colls, key) // slot is complete; free it
		// The span covers first entry to common exit. Emitting under rt.mu
		// keeps per-track event order equal to collective completion order,
		// which program order fixes regardless of which goroutine arrives
		// last (all collectives here are global, hence totally ordered).
		rt.rec.Count("mpisim.collectives", 1)
		if rt.track != "" {
			entry := minOf(op.entries)
			rt.rec.Span(rt.track, collNames[kind], entry, op.exit-entry, map[string]float64{
				"seq": float64(seq),
			})
		}
		close(op.done)
	}
	rt.mu.Unlock()

	select {
	case <-op.done:
	case <-rt.abort:
		panic(abortSentinel{})
	}
	r.clock = op.exit
	return op.result
}

// Barrier blocks until every rank reaches it; all clocks synchronize to the
// latest participant plus a tree latency.
func (r *Rank) Barrier() {
	cost := r.rt.cost.treeCost(r.rt.size, 0)
	r.collective(collBarrier, nil, func(entries []float64, _ []any) (any, float64) {
		return nil, maxOf(entries) + cost
	})
}

// Bcast broadcasts root's payload to every rank and returns it.
func (r *Rank) Bcast(root int, data []byte) []byte {
	if root < 0 || root >= r.rt.size {
		panic(fmt.Sprintf("mpisim: Bcast with invalid root %d", root))
	}
	var payload any
	if r.id == root {
		payload = append([]byte(nil), data...)
	}
	// Cost from the root's payload, not the caller's argument: the closure
	// runs on whichever rank arrives last, and non-root callers may pass
	// nil or differently-sized buffers. Virtual time has to be a pure
	// function of the communicated data, never of goroutine order.
	rt := r.rt
	out := r.collective(collBcast, payload, func(entries []float64, payloads []any) (any, float64) {
		n := 0
		if b, ok := payloads[root].([]byte); ok {
			n = len(b)
		}
		return payloads[root], maxOf(entries) + rt.cost.treeCost(rt.size, n)
	})
	if out == nil {
		return nil
	}
	return out.([]byte)
}

// ReduceOp is a reduction operator for Allreduce.
type ReduceOp int

// Supported reduction operators.
const (
	Sum ReduceOp = iota
	Max
	Min
)

// Allreduce reduces the per-rank vectors elementwise with op and returns
// the reduced vector to every rank.
func (r *Rank) Allreduce(op ReduceOp, data []float64) []float64 {
	// No defensive copy of data: every rank is blocked inside the
	// collective until the last arriver has run the reduction, so no
	// caller can mutate its argument while another rank's closure reads
	// it. (The reduced vector is a fresh allocation shared by all ranks.)
	cost := r.rt.cost.treeCost(r.rt.size, 8*len(data)) * 2 // reduce + broadcast phases
	out := r.collective(collAllreduce, data, func(entries []float64, payloads []any) (any, float64) {
		acc := append([]float64(nil), payloads[0].([]float64)...)
		for i := 1; i < len(payloads); i++ {
			v := payloads[i].([]float64)
			if len(v) != len(acc) {
				panic(fmt.Sprintf("mpisim: Allreduce length mismatch: %d vs %d", len(v), len(acc)))
			}
			for j := range acc {
				switch op {
				case Sum:
					acc[j] += v[j]
				case Max:
					if v[j] > acc[j] {
						acc[j] = v[j]
					}
				case Min:
					if v[j] < acc[j] {
						acc[j] = v[j]
					}
				}
			}
		}
		return acc, maxOf(entries) + cost
	})
	return out.([]float64)
}

// Gather collects every rank's payload at all ranks (an allgather; the
// checkpoint toolkit uses it for group coordination).
func (r *Rank) Gather(data []byte) [][]byte {
	payload := append([]byte(nil), data...)
	// Cost from the total gathered volume: per-rank contributions may have
	// different sizes (uneven block partitions), and the closure runs on
	// whichever rank arrives last, so it must not price the operation off
	// any single caller's argument. Virtual time has to be a pure function
	// of the communicated data, never of goroutine order.
	rt := r.rt
	out := r.collective(collGather, payload, func(entries []float64, payloads []any) (any, float64) {
		all := make([][]byte, len(payloads))
		total := 0
		for i, p := range payloads {
			all[i] = p.([]byte)
			total += len(all[i])
		}
		return all, maxOf(entries) + rt.cost.treeCost(rt.size, total)
	})
	return out.([][]byte)
}

// AdvanceTo raises the rank's clock to at least t (used by I/O substrates
// that compute completion times themselves).
func (r *Rank) AdvanceTo(t float64) {
	if t > r.clock {
		r.clock = t
	}
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, v := range xs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, v := range xs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}
