// Package mpisim is a simulated message-passing runtime: it executes SPMD
// programs written against an MPI-like API — real data movement between
// ranks — while advancing per-rank *virtual clocks* according to a
// LogP-style communication cost model instead of measuring host time.
//
// It stands in for the paper's real-cluster substrate (the Argonne Fusion
// runs of Section IV): the Heat Distribution program in internal/heat runs
// on it with genuine ghost-cell exchanges and reductions, producing the
// speedup curves of Figure 2 and exercising the FTI-style checkpoint
// toolkit in internal/fti end to end. Because time is virtual, a
// 1,024-rank execution simulates in milliseconds, deterministically.
//
// Two execution engines share one operation layer (see docs/SCHEDULER.md):
//
//   - EventEngine (the default): a run-to-completion scheduler. Rank
//     programs run as cooperative continuations — exactly one rank executes
//     at a time, from one blocking operation to the next, and the scheduler
//     resumes the runnable rank with the smallest virtual clock. Goroutines
//     are created lazily, only for ranks that actually block, so a program
//     that never blocks spawns none. The vectorized World surface
//     (world.go) extends this engine to 10^6-rank collectives.
//   - GoroutineEngine: the original goroutine-per-rank runtime with channel
//     rendezvous, kept as the differential-testing oracle. The two engines
//     share every cost formula, so any divergence in clocks, payloads, or
//     traces is a scheduler bug by construction — differential_test.go
//     hunts for exactly that.
//
// Timing semantics (cost model fields in parentheses):
//
//   - Compute(s): the rank's clock advances by s seconds.
//   - Send/Isend: the sender is charged the injection overhead (Overhead);
//     the message departs at that point and arrives Latency + len·ByteTime
//     later.
//   - Recv/Wait: the receiver's clock becomes max(own clock, arrival) +
//     Overhead.
//   - Collectives (Barrier, Bcast, Allreduce): all ranks synchronize to the
//     latest participant, plus a binary-tree cost of ceil(log2 P) rounds.
package mpisim

import (
	"errors"
	"fmt"
	"math"

	"mlckpt/internal/enc"
	"mlckpt/internal/obs"
)

// ErrRuntime is returned when an SPMD program fails (rank panic, bad rank
// arguments, mismatched collectives, an all-ranks-blocked deadlock under
// the event engine).
var ErrRuntime = errors.New("mpisim: runtime error")

// Engine selects the execution engine for an SPMD run.
type Engine int

// Available engines. EventEngine is the zero value and the default
// everywhere; GoroutineEngine is the legacy runtime kept as the
// differential-testing oracle.
const (
	EventEngine Engine = iota
	GoroutineEngine
)

func (e Engine) String() string {
	switch e {
	case EventEngine:
		return "event"
	case GoroutineEngine:
		return "goroutine"
	default:
		return fmt.Sprintf("engine(%d)", int(e))
	}
}

// CostModel parameterizes communication timing, all in seconds (ByteTime in
// seconds per byte).
type CostModel struct {
	Overhead float64 // per-message CPU injection/extraction cost (o)
	Latency  float64 // network transit latency (L)
	ByteTime float64 // inverse bandwidth (1/B), seconds per byte
}

// DefaultCostModel approximates a commodity InfiniBand cluster of the
// paper's era: ~1 µs overhead, ~1.5 µs latency, ~3 GB/s links.
func DefaultCostModel() CostModel {
	return CostModel{Overhead: 1e-6, Latency: 1.5e-6, ByteTime: 1.0 / 3e9}
}

// transferTime returns the wire time of an n-byte message.
func (c CostModel) transferTime(n int) float64 {
	return c.Latency + float64(n)*c.ByteTime
}

// treeCost returns the cost of a binary-tree collective over p ranks moving
// n bytes per round.
func (c CostModel) treeCost(p, n int) float64 {
	if p <= 1 {
		return 0
	}
	rounds := math.Ceil(math.Log2(float64(p)))
	return rounds * (c.Overhead + c.transferTime(n))
}

type mailKey struct {
	src, dst, tag int
}

// collKind indexes the fixed set of collective operations. Using a dense
// enum (rather than the operation name) lets each rank keep its per-kind
// sequence counters in a flat array instead of a map, which is what keeps
// world spawn at O(ranks) small allocations.
type collKind uint8

// Collective kinds, in span-name order (see collNames).
const (
	collBarrier collKind = iota
	collBcast
	collAllreduce
	collGather
	collReduce
	collScatter
	numCollKinds
)

var collNames = [numCollKinds]string{"barrier", "bcast", "allreduce", "gather", "reduce", "scatter"}

// collKey names one instance of a collective: the operation kind plus the
// per-rank sequence number. A comparable struct (rather than a formatted
// string) keeps the per-rank hot path allocation-free.
type collKey struct {
	kind collKind
	seq  int
}

type message struct {
	data    []byte
	pooled  *[]byte // pool wrapper for data: recycled by RecvInto, dropped by Recv
	arrival float64 // virtual time the message is available at the receiver
}

// collCompute runs once per collective, on the last arriver, over the
// gathered payloads and entry clocks; it returns (result, exitClock). Both
// engines invoke the same closures, so virtual time is engine-independent
// by construction.
type collCompute func(entries []float64, payloads []any) (any, float64)

// backend is the engine-specific half of the runtime: message transport,
// blocking, and collective rendezvous. All clock arithmetic and cost
// computation lives in the shared Rank operation layer below, so both
// engines produce bit-identical virtual times for the same program.
type backend interface {
	size() int
	cost() CostModel

	// deliver transports a message (already charged to the sender's clock)
	// to (dst, tag). The payload has been copied into an engine-owned
	// buffer by the caller via copyBuf.
	deliver(r *Rank, dst, tag int, m message)
	// await blocks the rank until a message from (src, tag) is available
	// and returns it.
	await(r *Rank, src, tag int) message
	// copyBuf copies data into an engine-pooled buffer.
	copyBuf(data []byte) ([]byte, *[]byte)
	// getBuf returns an uninitialized engine-pooled buffer of length n;
	// the caller fills it before handing it to deliver.
	getBuf(n int) ([]byte, *[]byte)
	// recycle returns a pooled message buffer after RecvInto copied it out.
	recycle(p *[]byte)
	// rendezvous blocks the rank in the keyed collective; the last arriver
	// runs compute over all entry clocks and payloads. Every participant
	// receives (result, exit).
	rendezvous(r *Rank, key collKey, payload any, compute collCompute) (any, float64)
}

// abortSentinel marks the secondary panics used to unblock ranks stuck in
// Recv or collectives after another rank failed.
type abortSentinel struct{}

// Rank is the per-rank handle an SPMD function receives.
type Rank struct {
	id    int
	rt    backend
	clock float64
	seq   [numCollKinds]int // per-kind collective sequence numbers

	// Event-engine fiber state (nil under the goroutine engine). Keeping
	// the pointer here lets the shared ops layer stay engine-agnostic while
	// the event backend reaches its scheduling state in O(1).
	fib *fiber
}

// Run executes fn as size ranks on the default event engine and returns
// the wall-clock time of the execution: the maximum final virtual clock
// across ranks. A panic in any rank aborts the run with an error.
func Run(size int, cost CostModel, fn func(*Rank)) (float64, error) {
	return RunObservedOn(EventEngine, size, cost, fn, nil, "")
}

// RunOn is Run on an explicit engine. GoroutineEngine is the legacy
// goroutine-per-rank runtime, kept as the differential-testing oracle.
func RunOn(engine Engine, size int, cost CostModel, fn func(*Rank)) (float64, error) {
	return RunObservedOn(engine, size, cost, fn, nil, "")
}

// RunObserved is Run with telemetry: collective operations are counted
// and — when track is non-empty — emitted as spans on the virtual clock
// (entry of the earliest rank to exit), plus one enclosing "run" span.
// Track names must derive from the program's content (kernel name, scale)
// so traces are byte-identical across hosts and schedules. A nil recorder
// makes this identical to Run.
func RunObserved(size int, cost CostModel, fn func(*Rank), rec obs.Recorder, track string) (float64, error) {
	return RunObservedOn(EventEngine, size, cost, fn, rec, track)
}

// RunObservedOn is RunObserved on an explicit engine.
func RunObservedOn(engine Engine, size int, cost CostModel, fn func(*Rank), rec obs.Recorder, track string) (float64, error) {
	if size <= 0 {
		return 0, fmt.Errorf("%w: size %d", ErrRuntime, size)
	}
	switch engine {
	case EventEngine:
		return runEvent(size, cost, fn, obs.OrNop(rec), track)
	case GoroutineEngine:
		return runGoroutine(size, cost, fn, obs.OrNop(rec), track)
	default:
		return 0, fmt.Errorf("%w: unknown engine %d", ErrRuntime, int(engine))
	}
}

// finishRun emits the end-of-run telemetry shared by both engines and
// returns the wall clock: the maximum final virtual clock across ranks.
func finishRun(rec obs.Recorder, track string, size int, clocks func(i int) float64) float64 {
	wall := 0.0
	for i := 0; i < size; i++ {
		if c := clocks(i); c > wall {
			wall = c
		}
	}
	rec.Count("mpisim.runs", 1)
	rec.Observe("mpisim.run.virtual_s", wall)
	if track != "" {
		rec.Span(track, "run", 0, wall, map[string]float64{
			"ranks": float64(size),
		})
	}
	return wall
}

// emitCollSpan records one completed collective. Both engines call it from
// the last arriver at completion, so per-track event order equals
// collective completion order — which program order fixes (all collectives
// here are global, hence totally ordered).
func emitCollSpan(rec obs.Recorder, track string, key collKey, entries []float64, exit float64) {
	rec.Count("mpisim.collectives", 1)
	if track != "" {
		entry := minOf(entries)
		rec.Span(track, collNames[key.kind], entry, exit-entry, map[string]float64{
			"seq": float64(key.seq),
		})
	}
}

// ID returns the rank index in [0, Size).
func (r *Rank) ID() int { return r.id }

// Size returns the number of ranks.
func (r *Rank) Size() int { return r.rt.size() }

// Clock returns the rank's current virtual time in seconds.
func (r *Rank) Clock() float64 { return r.clock }

// Compute advances the rank's clock by the given computation time.
func (r *Rank) Compute(seconds float64) {
	if seconds > 0 {
		r.clock += seconds
	}
}

// AdvanceTo raises the rank's clock to at least t (used by I/O substrates
// that compute completion times themselves).
func (r *Rank) AdvanceTo(t float64) {
	if t > r.clock {
		r.clock = t
	}
}

// Send transmits data to rank dst with the given tag (eager semantics: the
// sender does not wait for the matching receive). The payload is copied,
// so the caller may reuse data immediately.
//
//mlckpt:fiber
func (r *Rank) Send(dst, tag int, data []byte) {
	if dst < 0 || dst >= r.rt.size() {
		panic(fmt.Sprintf("mpisim: Send to invalid rank %d", dst))
	}
	r.clock += r.rt.cost().Overhead
	buf, pooled := r.rt.copyBuf(data)
	r.rt.deliver(r, dst, tag, message{
		data:    buf,
		pooled:  pooled,
		arrival: r.clock + r.rt.cost().transferTime(len(data)),
	})
}

// SendFloats is Send for a float64 payload: the row is encoded (the
// little-endian wire format of internal/enc) directly into the engine's
// pooled message buffer, skipping the byte staging buffer a
// Send(encode(row)) pair needs. Clock arithmetic, message bytes, and
// matching are identical to Send of the encoded row — a receiver may use
// Recv/RecvInto or RecvFloatsInto interchangeably.
//
//mlckpt:fiber
func (r *Rank) SendFloats(dst, tag int, row []float64) {
	if dst < 0 || dst >= r.rt.size() {
		panic(fmt.Sprintf("mpisim: Send to invalid rank %d", dst))
	}
	r.clock += r.rt.cost().Overhead
	n := 8 * len(row)
	buf, pooled := r.rt.getBuf(n)
	enc.PutFloat64s(buf, row)
	r.rt.deliver(r, dst, tag, message{
		data:    buf,
		pooled:  pooled,
		arrival: r.clock + r.rt.cost().transferTime(n),
	})
}

// Recv blocks until a message from src with the given tag arrives and
// returns its payload.
//
//mlckpt:fiber
func (r *Rank) Recv(src, tag int) []byte {
	msg := r.awaitFrom(src, tag)
	return msg.data
}

// RecvInto is Recv with a caller-owned destination: the payload is copied
// into buf (grown if too small) and the internal message buffer returns
// to the runtime's pool, so a steady-state exchange loop allocates
// nothing. Clock semantics are identical to Recv.
//
//mlckpt:fiber
func (r *Rank) RecvInto(src, tag int, buf []byte) []byte {
	msg := r.awaitFrom(src, tag)
	if cap(buf) < len(msg.data) {
		buf = make([]byte, len(msg.data))
	} else {
		buf = buf[:len(msg.data)]
	}
	copy(buf, msg.data)
	r.rt.recycle(msg.pooled)
	return buf
}

// RecvFloatsInto is RecvInto for a float64 payload: the message is
// decoded directly into dst (whose length must match the payload's word
// count) and the message buffer returns to the runtime's pool — the
// inverse of SendFloats, with no intermediate byte buffer on either side.
// Clock semantics are identical to Recv.
//
//mlckpt:fiber
func (r *Rank) RecvFloatsInto(src, tag int, dst []float64) {
	msg := r.awaitFrom(src, tag)
	if 8*len(dst) != len(msg.data) {
		panic(fmt.Sprintf("mpisim: RecvFloatsInto of a %d-byte message into %d words", len(msg.data), len(dst)))
	}
	enc.GetFloat64s(dst, msg.data)
	r.rt.recycle(msg.pooled)
}

func (r *Rank) awaitFrom(src, tag int) message {
	if src < 0 || src >= r.rt.size() {
		panic(fmt.Sprintf("mpisim: Recv from invalid rank %d", src))
	}
	msg := r.rt.await(r, src, tag)
	if msg.arrival > r.clock {
		r.clock = msg.arrival
	}
	r.clock += r.rt.cost().Overhead
	return msg
}

// Request is a pending nonblocking operation.
type Request struct {
	rank     *Rank
	recv     bool
	src, tag int
	done     bool
	data     []byte
}

// doneRequest is the shared completed-send request: Wait on a done
// request only reads, so one immutable instance serves every Isend.
var doneRequest = &Request{done: true}

// Isend starts a nonblocking send. The message is injected immediately
// (eager); Wait is a no-op kept for MPI-shaped code.
//
//mlckpt:fiber
func (r *Rank) Isend(dst, tag int, data []byte) *Request {
	r.Send(dst, tag, data)
	return doneRequest
}

// Irecv posts a nonblocking receive; the match happens at Wait.
func (r *Rank) Irecv(src, tag int) *Request {
	return &Request{rank: r, recv: true, src: src, tag: tag}
}

// Wait completes the request and returns the received payload (nil for
// sends).
//
//mlckpt:fiber
func (q *Request) Wait() []byte {
	if q.done {
		return q.data
	}
	q.done = true
	if q.recv {
		q.data = q.rank.Recv(q.src, q.tag)
	}
	return q.data
}

// Waitall completes all requests in order.
//
//mlckpt:fiber
func (r *Rank) Waitall(reqs []*Request) {
	for _, q := range reqs {
		q.Wait()
	}
}

// collective synchronizes all ranks on a kinded operation. compute runs
// once (on the last arriver) over the gathered payloads and entry clocks
// and returns (result, exitClock).
//
//mlckpt:fiber
func (r *Rank) collective(kind collKind, payload any, compute collCompute) any {
	seq := r.seq[kind]
	r.seq[kind] = seq + 1
	key := collKey{kind: kind, seq: seq}
	// Devirtualized per engine: through the backend interface the compute
	// closure (and its captures) would heap-escape on every rank at every
	// collective; with a concrete callee escape analysis proves the
	// closure never outlives the call and leaves it on the stack. The
	// switch is exhaustive — backend is unexported and has exactly these
	// two implementations (an interface fallback arm would put the
	// escape back on every path: escape analysis is flow-insensitive).
	var result any
	var exit float64
	switch rt := r.rt.(type) {
	case *evRuntime:
		result, exit = rt.rendezvous(r, key, payload, compute)
	case *goRuntime:
		result, exit = rt.rendezvous(r, key, payload, compute)
	default:
		panic("mpisim: unknown backend")
	}
	r.clock = exit
	return result
}

// Barrier blocks until every rank reaches it; all clocks synchronize to the
// latest participant plus a tree latency.
//
//mlckpt:fiber
func (r *Rank) Barrier() {
	cost := r.rt.cost().treeCost(r.rt.size(), 0)
	r.collective(collBarrier, nil, func(entries []float64, _ []any) (any, float64) {
		return nil, maxOf(entries) + cost
	})
}

// Bcast broadcasts root's payload to every rank and returns it.
//
//mlckpt:fiber
func (r *Rank) Bcast(root int, data []byte) []byte {
	if root < 0 || root >= r.rt.size() {
		panic(fmt.Sprintf("mpisim: Bcast with invalid root %d", root))
	}
	var payload any
	if r.id == root {
		payload = append([]byte(nil), data...)
	}
	// Cost from the root's payload, not the caller's argument: the closure
	// runs on whichever rank arrives last, and non-root callers may pass
	// nil or differently-sized buffers. Virtual time has to be a pure
	// function of the communicated data, never of rank execution order.
	cm, size := r.rt.cost(), r.rt.size()
	out := r.collective(collBcast, payload, func(entries []float64, payloads []any) (any, float64) {
		n := 0
		if b, ok := payloads[root].([]byte); ok {
			n = len(b)
		}
		return payloads[root], maxOf(entries) + cm.treeCost(size, n)
	})
	if out == nil {
		return nil
	}
	return out.([]byte)
}

// ReduceOp is a reduction operator for Allreduce.
type ReduceOp int

// Supported reduction operators.
const (
	Sum ReduceOp = iota
	Max
	Min
)

// apply folds v into acc elementwise. Shared by the rank collectives and
// the vectorized World surface so every path reduces with the exact same
// float operations.
func (op ReduceOp) apply(acc, v []float64) {
	for j := range acc {
		switch op {
		case Sum:
			acc[j] += v[j]
		case Max:
			if v[j] > acc[j] {
				acc[j] = v[j]
			}
		case Min:
			if v[j] < acc[j] {
				acc[j] = v[j]
			}
		}
	}
}

// Allreduce reduces the per-rank vectors elementwise with op and returns
// the reduced vector to every rank.
//
//mlckpt:fiber
func (r *Rank) Allreduce(op ReduceOp, data []float64) []float64 {
	// No defensive copy of data: every rank is blocked inside the
	// collective until the last arriver has run the reduction, so no
	// caller can mutate its argument while another rank's closure reads
	// it. (The reduced vector is a fresh allocation shared by all ranks.)
	cost := r.rt.cost().treeCost(r.rt.size(), 8*len(data)) * 2 // reduce + broadcast phases
	out := r.collective(collAllreduce, data, func(entries []float64, payloads []any) (any, float64) {
		acc := append([]float64(nil), payloads[0].([]float64)...)
		for i := 1; i < len(payloads); i++ {
			v := payloads[i].([]float64)
			if len(v) != len(acc) {
				panic(fmt.Sprintf("mpisim: Allreduce length mismatch: %d vs %d", len(v), len(acc)))
			}
			op.apply(acc, v)
		}
		return acc, maxOf(entries) + cost
	})
	return out.([]float64)
}

// Gather collects every rank's payload at all ranks (an allgather; the
// checkpoint toolkit uses it for group coordination).
//
//mlckpt:fiber
func (r *Rank) Gather(data []byte) [][]byte {
	payload := append([]byte(nil), data...)
	// Cost from the total gathered volume: per-rank contributions may have
	// different sizes (uneven block partitions), and the closure runs on
	// whichever rank arrives last, so it must not price the operation off
	// any single caller's argument. Virtual time has to be a pure function
	// of the communicated data, never of rank execution order.
	cm, size := r.rt.cost(), r.rt.size()
	out := r.collective(collGather, payload, func(entries []float64, payloads []any) (any, float64) {
		all := make([][]byte, len(payloads))
		total := 0
		for i, p := range payloads {
			all[i] = p.([]byte)
			total += len(all[i])
		}
		return all, maxOf(entries) + cm.treeCost(size, total)
	})
	return out.([][]byte)
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, v := range xs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, v := range xs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}
