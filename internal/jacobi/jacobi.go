// Package jacobi implements a distributed Jacobi iterative solver for
// dense linear systems Ax = b on the mpisim runtime — the second
// application class the paper leans on (its reference [35]; the Nek5000
// eddy_uv program it profiles has the same communication signature:
// per-iteration global exchanges whose cost does not shrink with the
// process count).
//
// Rows of A are block-partitioned across ranks; every iteration each rank
// updates its block of x and then allgathers the full vector. Compute per
// rank shrinks as 1/P while the allgather volume stays O(n), so the
// measured speedup rises, saturates, and falls — exactly the Figure 2(b)
// shape that motivates fitting only the rising range.
package jacobi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"mlckpt/internal/mpisim"
	"mlckpt/internal/stats"
)

// ErrJacobi is returned for invalid configurations or snapshots.
var ErrJacobi = errors.New("jacobi: error")

// Config describes the system.
type Config struct {
	N          int     // unknowns
	Iterations int     // Jacobi sweeps
	FlopTime   float64 // simulated seconds per multiply-add
	Seed       uint64  // system generator seed (diagonally dominant A)
}

// DefaultConfig is a small, fast system.
func DefaultConfig() Config {
	return Config{N: 128, Iterations: 40, FlopTime: 1e-9, Seed: 7}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.N < 2 {
		return fmt.Errorf("%w: n = %d", ErrJacobi, c.N)
	}
	if c.Iterations < 0 || c.FlopTime < 0 {
		return fmt.Errorf("%w: iterations %d, flop time %g", ErrJacobi, c.Iterations, c.FlopTime)
	}
	return nil
}

// System holds the dense problem; every rank generates it deterministically
// from the seed (as an MPI code would read it from a shared input).
type System struct {
	A []float64 // n×n row-major
	B []float64
}

// GenerateSystem builds a strictly diagonally dominant system (guaranteed
// Jacobi convergence) from the seed.
func GenerateSystem(cfg Config) *System {
	rng := stats.NewRNG(cfg.Seed)
	n := cfg.N
	s := &System{A: make([]float64, n*n), B: make([]float64, n)}
	for i := 0; i < n; i++ {
		rowSum := 0.0
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := rng.Uniform(-1, 1)
			s.A[i*n+j] = v
			rowSum += math.Abs(v)
		}
		s.A[i*n+i] = rowSum + 1 + rng.Float64() // strict dominance
		s.B[i] = rng.Uniform(-10, 10)
	}
	return s
}

// Solver is the per-rank state.
type Solver struct {
	cfg   Config
	rank  *mpisim.Rank
	sys   *System
	rowLo int
	rowHi int
	x     []float64 // full current iterate (all n entries)
	iter  int
	resid float64
}

// NewSolver initializes the rank's partition with x = 0.
func NewSolver(r *mpisim.Rank, cfg Config, sys *System) (*Solver, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.N < r.Size() {
		return nil, fmt.Errorf("%w: %d rows over %d ranks", ErrJacobi, cfg.N, r.Size())
	}
	s := &Solver{cfg: cfg, rank: r, sys: sys}
	s.rowLo = r.ID() * cfg.N / r.Size()
	s.rowHi = (r.ID() + 1) * cfg.N / r.Size()
	s.x = make([]float64, cfg.N)
	return s, nil
}

// Iteration returns the completed sweep count.
func (s *Solver) Iteration() int { return s.iter }

// Residual returns ‖b − A·x‖_∞ of the last sweep (computed on owned rows,
// reduced globally).
func (s *Solver) Residual() float64 { return s.resid }

// Solution returns a copy of the current full iterate.
func (s *Solver) Solution() []float64 { return append([]float64(nil), s.x...) }

// Step performs one Jacobi sweep: local row updates, residual Allreduce,
// and an allgather of the updated blocks (via the runtime's Gather).
func (s *Solver) Step() {
	n := s.cfg.N
	rows := s.rowHi - s.rowLo
	local := make([]float64, rows)
	localRes := 0.0
	for i := s.rowLo; i < s.rowHi; i++ {
		sum := 0.0
		for j := 0; j < n; j++ {
			if j != i {
				sum += s.sys.A[i*n+j] * s.x[j]
			}
		}
		xi := (s.sys.B[i] - sum) / s.sys.A[i*n+i]
		local[i-s.rowLo] = xi
		// Residual of the OLD iterate on this row.
		if r := math.Abs(s.sys.B[i] - sum - s.sys.A[i*n+i]*s.x[i]); r > localRes {
			localRes = r
		}
	}
	s.rank.Compute(float64(rows*n) * s.cfg.FlopTime)

	// Allgather the updated blocks (real data through the runtime).
	blob := make([]byte, 8*rows)
	for k, v := range local {
		binary.LittleEndian.PutUint64(blob[8*k:], math.Float64bits(v))
	}
	all := s.rank.Gather(blob)
	for rk, b := range all {
		lo := rk * n / s.rank.Size()
		for k := 0; k+8 <= len(b); k += 8 {
			s.x[lo+k/8] = math.Float64frombits(binary.LittleEndian.Uint64(b[k:]))
		}
	}
	s.resid = s.rank.Allreduce(mpisim.Max, []float64{localRes})[0]
	s.iter++
}

// Run advances until cfg.Iterations complete or hook returns false.
func (s *Solver) Run(hook func(*Solver) bool) (iterations int, residual, wallClock float64) {
	for s.iter < s.cfg.Iterations {
		s.Step()
		if hook != nil && !hook(s) {
			break
		}
	}
	return s.iter, s.resid, s.rank.Clock()
}

// Serialize captures the protected state: iteration counter + the full
// iterate (each rank holds a consistent copy after the allgather).
func (s *Solver) Serialize() []byte {
	buf := make([]byte, 8+8*s.cfg.N)
	binary.LittleEndian.PutUint64(buf, uint64(s.iter))
	for i, v := range s.x {
		binary.LittleEndian.PutUint64(buf[8+8*i:], math.Float64bits(v))
	}
	return buf
}

// Restore reinstates a Serialize snapshot.
func (s *Solver) Restore(data []byte) error {
	want := 8 + 8*s.cfg.N
	if len(data) != want {
		return fmt.Errorf("%w: snapshot %d bytes, want %d", ErrJacobi, len(data), want)
	}
	s.iter = int(binary.LittleEndian.Uint64(data))
	for i := range s.x {
		s.x[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8+8*i:]))
	}
	return nil
}

// SerialTime returns the single-core time per the cost model.
func (c Config) SerialTime() float64 {
	return float64(c.N) * float64(c.N) * float64(c.Iterations) * c.FlopTime
}

// MeasureSpeedup runs the solver at each scale and returns (scale, speedup)
// samples. With the allgather volume fixed at O(n), the curve rises and
// then falls — the eddy_uv shape of Figure 2(b).
func MeasureSpeedup(cfg Config, cost mpisim.CostModel, scales []int) (out []Sample, err error) {
	sys := GenerateSystem(cfg)
	serial := cfg.SerialTime()
	for _, p := range scales {
		wall, err := mpisim.Run(p, cost, func(r *mpisim.Rank) {
			s, err := NewSolver(r, cfg, sys)
			if err != nil {
				panic(err)
			}
			s.Run(nil)
		})
		if err != nil {
			return nil, err
		}
		out = append(out, Sample{Scale: p, Speedup: serial / wall})
	}
	return out, nil
}

// Sample is one measured (scale, speedup) point.
type Sample struct {
	Scale   int
	Speedup float64
}
