package jacobi

import (
	"bytes"
	"math"
	"testing"

	"mlckpt/internal/mpisim"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.N = 1
	if err := bad.Validate(); err == nil {
		t.Error("n=1 accepted")
	}
	neg := DefaultConfig()
	neg.FlopTime = -1
	if err := neg.Validate(); err == nil {
		t.Error("negative flop time accepted")
	}
}

func TestSystemDiagonalDominance(t *testing.T) {
	cfg := DefaultConfig()
	sys := GenerateSystem(cfg)
	n := cfg.N
	for i := 0; i < n; i++ {
		off := 0.0
		for j := 0; j < n; j++ {
			if j != i {
				off += math.Abs(sys.A[i*n+j])
			}
		}
		if math.Abs(sys.A[i*n+i]) <= off {
			t.Fatalf("row %d not strictly dominant", i)
		}
	}
}

func TestConvergesToTrueSolution(t *testing.T) {
	cfg := Config{N: 64, Iterations: 200, FlopTime: 1e-9, Seed: 3}
	sys := GenerateSystem(cfg)
	var x []float64
	_, err := mpisim.Run(4, mpisim.DefaultCostModel(), func(r *mpisim.Rank) {
		s, err := NewSolver(r, cfg, sys)
		if err != nil {
			panic(err)
		}
		_, resid, _ := s.Run(nil)
		if r.ID() == 0 {
			x = s.Solution()
			if resid > 1e-8 {
				panic("residual did not converge")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Verify A·x ≈ b directly.
	n := cfg.N
	for i := 0; i < n; i++ {
		sum := 0.0
		for j := 0; j < n; j++ {
			sum += sys.A[i*n+j] * x[j]
		}
		if math.Abs(sum-sys.B[i]) > 1e-6 {
			t.Fatalf("row %d: A·x = %g, b = %g", i, sum, sys.B[i])
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	cfg := Config{N: 48, Iterations: 30, FlopTime: 1e-9, Seed: 5}
	sys := GenerateSystem(cfg)
	gather := func(p int) []float64 {
		var x []float64
		_, err := mpisim.Run(p, mpisim.DefaultCostModel(), func(r *mpisim.Rank) {
			s, err := NewSolver(r, cfg, sys)
			if err != nil {
				panic(err)
			}
			s.Run(nil)
			if r.ID() == 0 {
				x = s.Solution()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return x
	}
	serial := gather(1)
	for _, p := range []int{2, 3, 6, 8} {
		parallel := gather(p)
		for i := range serial {
			if serial[i] != parallel[i] {
				t.Fatalf("p=%d: x[%d] = %g vs serial %g", p, i, parallel[i], serial[i])
			}
		}
	}
}

func TestSerializeRestore(t *testing.T) {
	cfg := Config{N: 32, Iterations: 30, FlopTime: 1e-9, Seed: 9}
	sys := GenerateSystem(cfg)
	_, err := mpisim.Run(4, mpisim.DefaultCostModel(), func(r *mpisim.Rank) {
		s, err := NewSolver(r, cfg, sys)
		if err != nil {
			panic(err)
		}
		for i := 0; i < 10; i++ {
			s.Step()
		}
		snap := s.Serialize()
		for i := 0; i < 5; i++ {
			s.Step()
		}
		if err := s.Restore(snap); err != nil {
			panic(err)
		}
		if s.Iteration() != 10 || !bytes.Equal(s.Serialize(), snap) {
			panic("restore mismatch")
		}
		if err := s.Restore([]byte{1, 2}); err == nil {
			panic("short snapshot accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTooManyRanks(t *testing.T) {
	cfg := Config{N: 4, Iterations: 1, FlopTime: 1e-9, Seed: 1}
	sys := GenerateSystem(cfg)
	_, err := mpisim.Run(8, mpisim.DefaultCostModel(), func(r *mpisim.Rank) {
		if _, err := NewSolver(r, cfg, sys); err == nil {
			panic("4 rows over 8 ranks accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRiseAndFallSpeedupShape(t *testing.T) {
	// The communication-bound regime must bend the curve: speedup rises at
	// small P and falls once the O(n) allgather dominates the 1/P compute.
	cfg := Config{N: 256, Iterations: 4, FlopTime: 1e-6, Seed: 11}
	cost := mpisim.CostModel{Overhead: 2e-4, Latency: 1e-3, ByteTime: 1e-8}
	samples, err := MeasureSpeedup(cfg, cost, []int{1, 2, 4, 8, 16, 32, 64, 128, 256})
	if err != nil {
		t.Fatal(err)
	}
	peak := 0
	for i, s := range samples {
		if s.Speedup > samples[peak].Speedup {
			peak = i
		}
	}
	if peak == 0 {
		t.Fatalf("no speedup at all: %v", samples)
	}
	if peak == len(samples)-1 {
		t.Fatalf("speedup never fell: %v", samples)
	}
	if samples[peak].Speedup < 2 {
		t.Errorf("peak speedup %g too small", samples[peak].Speedup)
	}
}
