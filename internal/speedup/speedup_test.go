package speedup

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"mlckpt/internal/numopt"
)

func TestQuadraticShape(t *testing.T) {
	q := Quadratic{Kappa: 0.46, NStar: 1e5}
	if g := q.Speedup(0); g != 0 {
		t.Errorf("g(0) = %g, want 0 (curve passes through origin)", g)
	}
	// Peak at N* with value κN*/2.
	peak := q.Speedup(q.NStar)
	if math.Abs(peak-q.PeakSpeedup()) > 1e-9 {
		t.Errorf("g(N*) = %g, want %g", peak, q.PeakSpeedup())
	}
	if math.Abs(peak-0.46*1e5/2) > 1e-9 {
		t.Errorf("peak = %g, want %g", peak, 0.46*1e5/2)
	}
	// Derivative is zero at the peak, positive below it.
	if d := q.Derivative(q.NStar); math.Abs(d) > 1e-12 {
		t.Errorf("g'(N*) = %g, want 0", d)
	}
	if d := q.Derivative(q.NStar / 2); d <= 0 {
		t.Errorf("g'(N*/2) = %g, want > 0", d)
	}
}

func TestQuadraticDerivativeMatchesNumeric(t *testing.T) {
	q := Quadratic{Kappa: 0.46, NStar: 1e5}
	for _, n := range []float64{100, 5000, 50000, 99999} {
		analytic := q.Derivative(n)
		numeric := numopt.Derivative(q.Speedup, n)
		if math.Abs(analytic-numeric) > 1e-4*(1+math.Abs(analytic)) {
			t.Errorf("at N=%g: analytic %g vs numeric %g", n, analytic, numeric)
		}
	}
}

func TestLinearModel(t *testing.T) {
	l := Linear{Kappa: 0.9, MaxScale: 1e6}
	if g := l.Speedup(1000); g != 900 {
		t.Errorf("g(1000) = %g", g)
	}
	if d := l.Derivative(12345); d != 0.9 {
		t.Errorf("g' = %g", d)
	}
	if l.IdealScale() != 1e6 {
		t.Errorf("IdealScale = %g", l.IdealScale())
	}
}

func TestAmdahlBoundedSpeedup(t *testing.T) {
	a := Amdahl{SerialFraction: 0.01, MaxScale: 1e6}
	if g := a.Speedup(1); math.Abs(g-1) > 1e-12 {
		t.Errorf("g(1) = %g, want 1", g)
	}
	limit := 1 / a.SerialFraction
	if g := a.Speedup(1e9); g > limit {
		t.Errorf("g exceeded Amdahl bound: %g > %g", g, limit)
	}
	// Monotone increasing.
	prev := 0.0
	for n := 1.0; n <= 1e6; n *= 10 {
		g := a.Speedup(n)
		if g <= prev {
			t.Errorf("Amdahl speedup not increasing at N=%g", n)
		}
		prev = g
	}
	for _, n := range []float64{10, 1000, 1e5} {
		analytic := a.Derivative(n)
		numeric := numopt.Derivative(a.Speedup, n)
		if math.Abs(analytic-numeric) > 1e-4*(1+math.Abs(analytic)) {
			t.Errorf("Amdahl derivative mismatch at %g: %g vs %g", n, analytic, numeric)
		}
	}
}

func TestGustafson(t *testing.T) {
	g := Gustafson{SerialFraction: 0.05, MaxScale: 1e6}
	if v := g.Speedup(1); math.Abs(v-1) > 1e-12 {
		t.Errorf("g(1) = %g, want 1", v)
	}
	if v := g.Speedup(100); math.Abs(v-(100-0.05*99)) > 1e-12 {
		t.Errorf("g(100) = %g", v)
	}
	if d := g.Derivative(42); d != 0.95 {
		t.Errorf("g' = %g", d)
	}
}

func TestParallelTime(t *testing.T) {
	q := Quadratic{Kappa: 0.46, NStar: 1e5}
	te := 4000.0 * 86400 // 4000 core-days in seconds
	pt := ParallelTime(q, te, 81746)
	if pt <= 0 || math.IsInf(pt, 0) {
		t.Fatalf("parallel time = %g", pt)
	}
	// g(81746) ≈ 22234, so pt ≈ te/22234.
	if math.Abs(pt-te/q.Speedup(81746)) > 1e-9 {
		t.Errorf("ParallelTime inconsistent")
	}
	if !math.IsInf(ParallelTime(q, te, 0), 1) {
		t.Error("zero scale should give infinite time")
	}
}

func TestFitQuadraticRecovery(t *testing.T) {
	want := Quadratic{Kappa: 0.46, NStar: 1e5}
	var samples []Sample
	for n := 1000.0; n <= 90000; n += 2000 {
		samples = append(samples, Sample{N: n, Speedup: want.Speedup(n)})
	}
	got, err := FitQuadratic(samples)
	if err != nil {
		t.Fatalf("FitQuadratic: %v", err)
	}
	if math.Abs(got.Kappa-want.Kappa) > 1e-6 {
		t.Errorf("κ = %g, want %g", got.Kappa, want.Kappa)
	}
	if math.Abs(got.NStar-want.NStar) > 1 {
		t.Errorf("N* = %g, want %g", got.NStar, want.NStar)
	}
	if r2 := GoodnessOfFit(got, samples); r2 < 0.999999 {
		t.Errorf("R² = %g", r2)
	}
}

func TestFitQuadraticLinearData(t *testing.T) {
	// Pure linear data should not produce a bogus nearby peak.
	var samples []Sample
	for n := 1.0; n <= 100; n++ {
		samples = append(samples, Sample{N: n, Speedup: 0.8 * n})
	}
	got, err := FitQuadratic(samples)
	if err != nil {
		t.Fatalf("FitQuadratic: %v", err)
	}
	if got.NStar < 1000 {
		t.Errorf("linear data produced close peak N* = %g", got.NStar)
	}
}

func TestFitQuadraticErrors(t *testing.T) {
	if _, err := FitQuadratic(nil); !errors.Is(err, ErrFit) {
		t.Errorf("err = %v", err)
	}
	// Negative slope data.
	samples := []Sample{{1, -1}, {2, -2}, {3, -3}}
	if _, err := FitQuadratic(samples); !errors.Is(err, ErrFit) {
		t.Errorf("negative-slope fit err = %v", err)
	}
}

func TestFitQuadraticRisingTruncatesAtPeak(t *testing.T) {
	// Eddy_uv-like curve: rises to a peak near N=100, then decays. Fitting
	// the full range would be skewed by the falling tail; the rising fit
	// must place N* near the true peak.
	truth := Quadratic{Kappa: 1.2, NStar: 100}
	var samples []Sample
	for n := 5.0; n <= 100; n += 5 {
		samples = append(samples, Sample{N: n, Speedup: truth.Speedup(n)})
	}
	// Falling tail beyond the peak (communication collapse, steeper than
	// the parabola).
	for n := 110.0; n <= 300; n += 10 {
		samples = append(samples, Sample{N: n, Speedup: truth.Speedup(100) * 100 / n})
	}
	got, err := FitQuadraticRising(samples)
	if err != nil {
		t.Fatalf("FitQuadraticRising: %v", err)
	}
	if math.Abs(got.NStar-100) > 10 {
		t.Errorf("N* = %g, want ≈100", got.NStar)
	}
}

func TestKarpFlatt(t *testing.T) {
	// Perfect linear speedup -> serial fraction 0.
	if e := KarpFlatt(64, 64); math.Abs(e) > 1e-12 {
		t.Errorf("e = %g, want 0", e)
	}
	// Amdahl with σ=0.02 must be recovered exactly.
	a := Amdahl{SerialFraction: 0.02, MaxScale: 1e6}
	e := KarpFlatt(a.Speedup(256), 256)
	if math.Abs(e-0.02) > 1e-9 {
		t.Errorf("e = %g, want 0.02", e)
	}
	if !math.IsNaN(KarpFlatt(10, 1)) || !math.IsNaN(KarpFlatt(0, 8)) {
		t.Error("degenerate inputs should yield NaN")
	}
}

func TestEstimateKappa(t *testing.T) {
	// The paper's shortcut: speedup 77 at 160 cores -> κ ≈ 0.48.
	k := EstimateKappa(77, 160)
	if math.Abs(k-0.48125) > 1e-9 {
		t.Errorf("κ = %g", k)
	}
	if !math.IsNaN(EstimateKappa(1, 0)) {
		t.Error("zero scale should yield NaN")
	}
}

func TestModelStrings(t *testing.T) {
	models := []Model{
		Linear{0.5, 1e6},
		Quadratic{0.46, 1e5},
		Amdahl{0.01, 1e6},
		Gustafson{0.05, 1e6},
	}
	for _, m := range models {
		if m.String() == "" {
			t.Errorf("%T has empty String()", m)
		}
	}
}

// Property: fitted quadratic reproduces samples generated from any valid
// quadratic (κ in (0, 2], N* in [1e3, 1e7]).
func TestFitQuadraticProperty(t *testing.T) {
	prop := func(rawKappa, rawNStar float64) bool {
		kappa := 0.05 + math.Abs(math.Mod(rawKappa, 2))
		nstar := 1e3 + math.Abs(math.Mod(rawNStar, 1e7))
		truth := Quadratic{Kappa: kappa, NStar: nstar}
		var samples []Sample
		for i := 1; i <= 20; i++ {
			n := nstar * float64(i) / 22
			samples = append(samples, Sample{N: n, Speedup: truth.Speedup(n)})
		}
		got, err := FitQuadratic(samples)
		if err != nil {
			return false
		}
		return math.Abs(got.Kappa-kappa) < 1e-4*kappa && math.Abs(got.NStar-nstar) < 1e-3*nstar
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the quadratic speedup is concave — midpoint value above chord.
func TestQuadraticConcaveProperty(t *testing.T) {
	prop := func(a, b float64) bool {
		q := Quadratic{Kappa: 0.46, NStar: 1e5}
		x := math.Abs(math.Mod(a, 1e5))
		y := math.Abs(math.Mod(b, 1e5))
		mid := (x + y) / 2
		return q.Speedup(mid) >= (q.Speedup(x)+q.Speedup(y))/2-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
