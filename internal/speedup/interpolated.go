package speedup

import (
	"fmt"
	"sort"
)

// Interpolated is a piecewise-linear speedup model built directly from
// measured (scale, speedup) samples — for applications whose curves fit
// neither the quadratic Formula (12) nor the classical laws. Between
// samples it interpolates linearly; below the first sample it draws a line
// through the origin; above the last sample it holds the last value flat
// (never extrapolating optimism).
type Interpolated struct {
	ns []float64
	gs []float64
}

// NewInterpolated builds the model from samples. At least two samples with
// distinct, positive scales are required; duplicates are rejected.
func NewInterpolated(samples []Sample) (*Interpolated, error) {
	if len(samples) < 2 {
		return nil, fmt.Errorf("%w: need at least 2 samples, have %d", ErrFit, len(samples))
	}
	sorted := append([]Sample(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].N < sorted[j].N })
	m := &Interpolated{}
	for _, s := range sorted {
		if s.N <= 0 {
			return nil, fmt.Errorf("%w: non-positive scale %g", ErrFit, s.N)
		}
		if s.Speedup < 0 {
			return nil, fmt.Errorf("%w: negative speedup %g", ErrFit, s.Speedup)
		}
		//lint:allow floateq rejecting exact duplicate sample scales is the point; nearby-but-distinct scales are valid interpolation knots
		if len(m.ns) > 0 && s.N == m.ns[len(m.ns)-1] {
			return nil, fmt.Errorf("%w: duplicate scale %g", ErrFit, s.N)
		}
		m.ns = append(m.ns, s.N)
		m.gs = append(m.gs, s.Speedup)
	}
	return m, nil
}

// Speedup implements Model.
func (m *Interpolated) Speedup(n float64) float64 {
	if n <= 0 {
		return 0
	}
	if n <= m.ns[0] {
		return m.gs[0] * n / m.ns[0] // line through the origin
	}
	last := len(m.ns) - 1
	if n >= m.ns[last] {
		return m.gs[last] // flat beyond the data
	}
	i := sort.SearchFloat64s(m.ns, n)
	// ns[i-1] < n < ns[i]
	frac := (n - m.ns[i-1]) / (m.ns[i] - m.ns[i-1])
	return m.gs[i-1] + frac*(m.gs[i]-m.gs[i-1])
}

// Derivative implements Model (the slope of the active segment; zero
// beyond the last sample).
func (m *Interpolated) Derivative(n float64) float64 {
	if n <= 0 || n >= m.ns[len(m.ns)-1] {
		return 0
	}
	if n <= m.ns[0] {
		return m.gs[0] / m.ns[0]
	}
	i := sort.SearchFloat64s(m.ns, n)
	return (m.gs[i] - m.gs[i-1]) / (m.ns[i] - m.ns[i-1])
}

// IdealScale implements Model: the scale of the maximal sample.
func (m *Interpolated) IdealScale() float64 {
	best := 0
	for i, g := range m.gs {
		if g > m.gs[best] {
			best = i
		}
	}
	return m.ns[best]
}

func (m *Interpolated) String() string {
	return fmt.Sprintf("interpolated(%d samples, peak %.4g at N=%.4g)",
		len(m.ns), m.gs[argmax(m.gs)], m.IdealScale())
}

func argmax(xs []float64) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}
