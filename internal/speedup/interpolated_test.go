package speedup

import (
	"errors"
	"math"
	"testing"
)

func interpSamples() []Sample {
	return []Sample{
		{N: 10, Speedup: 9},
		{N: 100, Speedup: 80},
		{N: 1000, Speedup: 500},
		{N: 2000, Speedup: 450}, // falls past the peak
	}
}

func TestInterpolatedConstruction(t *testing.T) {
	if _, err := NewInterpolated(nil); !errors.Is(err, ErrFit) {
		t.Errorf("empty: %v", err)
	}
	if _, err := NewInterpolated([]Sample{{1, 1}}); !errors.Is(err, ErrFit) {
		t.Errorf("single: %v", err)
	}
	if _, err := NewInterpolated([]Sample{{1, 1}, {1, 2}}); !errors.Is(err, ErrFit) {
		t.Errorf("duplicate: %v", err)
	}
	if _, err := NewInterpolated([]Sample{{-1, 1}, {2, 2}}); !errors.Is(err, ErrFit) {
		t.Errorf("negative scale: %v", err)
	}
	if _, err := NewInterpolated([]Sample{{1, -1}, {2, 2}}); !errors.Is(err, ErrFit) {
		t.Errorf("negative speedup: %v", err)
	}
}

func TestInterpolatedUnsortedInput(t *testing.T) {
	m, err := NewInterpolated([]Sample{{1000, 500}, {10, 9}, {100, 80}})
	if err != nil {
		t.Fatal(err)
	}
	if g := m.Speedup(100); g != 80 {
		t.Errorf("g(100) = %g", g)
	}
}

func TestInterpolatedValues(t *testing.T) {
	m, err := NewInterpolated(interpSamples())
	if err != nil {
		t.Fatal(err)
	}
	// Exact at knots.
	for _, s := range interpSamples() {
		if g := m.Speedup(s.N); math.Abs(g-s.Speedup) > 1e-12 {
			t.Errorf("g(%g) = %g, want %g", s.N, g, s.Speedup)
		}
	}
	// Midpoint between (10,9) and (100,80): 55 -> 44.5.
	if g := m.Speedup(55); math.Abs(g-44.5) > 1e-12 {
		t.Errorf("g(55) = %g, want 44.5", g)
	}
	// Below the first sample: through the origin.
	if g := m.Speedup(5); math.Abs(g-4.5) > 1e-12 {
		t.Errorf("g(5) = %g, want 4.5", g)
	}
	if g := m.Speedup(0); g != 0 {
		t.Errorf("g(0) = %g", g)
	}
	// Beyond the last: flat.
	if g := m.Speedup(5000); g != 450 {
		t.Errorf("g(5000) = %g, want 450", g)
	}
}

func TestInterpolatedDerivative(t *testing.T) {
	m, _ := NewInterpolated(interpSamples())
	// Segment (10,9)-(100,80): slope (80-9)/90.
	want := (80.0 - 9) / 90
	if d := m.Derivative(50); math.Abs(d-want) > 1e-12 {
		t.Errorf("g'(50) = %g, want %g", d, want)
	}
	// Falling segment has negative slope.
	if d := m.Derivative(1500); d >= 0 {
		t.Errorf("g'(1500) = %g, want < 0", d)
	}
	// Beyond data: zero.
	if d := m.Derivative(5000); d != 0 {
		t.Errorf("g'(5000) = %g", d)
	}
}

func TestInterpolatedIdealScale(t *testing.T) {
	m, _ := NewInterpolated(interpSamples())
	if s := m.IdealScale(); s != 1000 {
		t.Errorf("IdealScale = %g, want 1000 (the peak sample)", s)
	}
	if m.String() == "" {
		t.Error("empty String()")
	}
}

func TestInterpolatedAsModelInterface(t *testing.T) {
	var m Model
	im, err := NewInterpolated(interpSamples())
	if err != nil {
		t.Fatal(err)
	}
	m = im
	if pt := ParallelTime(m, 1000, 100); math.Abs(pt-1000.0/80) > 1e-12 {
		t.Errorf("ParallelTime = %g", pt)
	}
}
