// Package speedup models application speedup g(N) as a function of the
// execution scale N (processes/cores), plus the fitting and diagnostic
// machinery the paper uses around it (Section III-C.2, Figure 2).
//
// The central form is the paper's quadratic curve through the origin
// (Formula 12):
//
//	g(N) = -κ/(2·N^(*))·N² + κ·N
//
// where κ is the slope at the origin and N^(*) is both the symmetry axis of
// the parabola and the "ideal" scale at which the original speedup peaks.
// Amdahl and Gustafson forms are provided as alternatives, and arbitrary
// measured curves can be fitted with FitQuadratic.
package speedup

import (
	"errors"
	"fmt"
	"math"

	"mlckpt/internal/numopt"
)

// ErrFit is returned when a speedup curve cannot be fitted to samples.
var ErrFit = errors.New("speedup: fit failed")

// Model is a differentiable speedup curve.
type Model interface {
	// Speedup returns g(N) for a scale of n cores. g must pass through the
	// origin and be positive on (0, IdealScale].
	Speedup(n float64) float64
	// Derivative returns g'(N).
	Derivative(n float64) float64
	// IdealScale returns N^(*), the scale with maximal original speedup.
	// Optimal scales under the checkpoint model never exceed it
	// (Section III-C.2). Models without an interior maximum return the
	// configured ceiling.
	IdealScale() float64
	// String describes the model for experiment logs.
	String() string
}

// ParallelTime returns f(T_e, N) = T_e / g(N), the failure-free parallel
// productive time for a single-core workload of te time units.
func ParallelTime(m Model, te, n float64) float64 {
	g := m.Speedup(n)
	if g <= 0 {
		return math.Inf(1)
	}
	return te / g
}

// Linear is g(N) = κ·N, the linear-speedup application of Section III-C.1.
// MaxScale bounds the search range (linear speedup has no interior optimum).
type Linear struct {
	Kappa    float64
	MaxScale float64
}

// Speedup implements Model.
func (l Linear) Speedup(n float64) float64 { return l.Kappa * n }

// Derivative implements Model.
func (l Linear) Derivative(float64) float64 { return l.Kappa }

// IdealScale implements Model.
func (l Linear) IdealScale() float64 { return l.MaxScale }

func (l Linear) String() string {
	return fmt.Sprintf("linear(κ=%.4g, max=%.4g)", l.Kappa, l.MaxScale)
}

// Quadratic is the paper's Formula (12): g(N) = -κ/(2N*)·N² + κN.
type Quadratic struct {
	Kappa float64 // slope at the origin
	NStar float64 // symmetry axis N^(*): the ideal scale
}

// Speedup implements Model.
func (q Quadratic) Speedup(n float64) float64 {
	return -q.Kappa/(2*q.NStar)*n*n + q.Kappa*n
}

// Derivative implements Model.
func (q Quadratic) Derivative(n float64) float64 {
	return q.Kappa * (1 - n/q.NStar)
}

// IdealScale implements Model.
func (q Quadratic) IdealScale() float64 { return q.NStar }

func (q Quadratic) String() string {
	return fmt.Sprintf("quadratic(κ=%.4g, N*=%.4g)", q.Kappa, q.NStar)
}

// PeakSpeedup returns g(N^(*)) = κ·N^(*)/2, the maximum of the parabola.
func (q Quadratic) PeakSpeedup() float64 { return q.Kappa * q.NStar / 2 }

// Amdahl is g(N) = N / (1 + σ·(N-1)) with serial fraction σ — Amdahl's law
// [31], one of the estimation routes the paper names for Formula (12)'s
// coefficients. Its speedup is increasing and bounded by 1/σ; IdealScale
// returns the configured ceiling.
type Amdahl struct {
	SerialFraction float64
	MaxScale       float64
}

// Speedup implements Model.
func (a Amdahl) Speedup(n float64) float64 {
	if n <= 0 {
		return 0
	}
	return n / (1 + a.SerialFraction*(n-1))
}

// Derivative implements Model.
func (a Amdahl) Derivative(n float64) float64 {
	den := 1 + a.SerialFraction*(n-1)
	return (1 - a.SerialFraction) / (den * den)
}

// IdealScale implements Model.
func (a Amdahl) IdealScale() float64 { return a.MaxScale }

func (a Amdahl) String() string {
	return fmt.Sprintf("amdahl(σ=%.4g, max=%.4g)", a.SerialFraction, a.MaxScale)
}

// Gustafson is scaled speedup g(N) = N - σ·(N-1) — Gustafson–Barsis's law
// [32] for weak-scaling workloads.
type Gustafson struct {
	SerialFraction float64
	MaxScale       float64
}

// Speedup implements Model.
func (g Gustafson) Speedup(n float64) float64 {
	if n <= 0 {
		return 0
	}
	return n - g.SerialFraction*(n-1)
}

// Derivative implements Model.
func (g Gustafson) Derivative(float64) float64 { return 1 - g.SerialFraction }

// IdealScale implements Model.
func (g Gustafson) IdealScale() float64 { return g.MaxScale }

func (g Gustafson) String() string {
	return fmt.Sprintf("gustafson(σ=%.4g, max=%.4g)", g.SerialFraction, g.MaxScale)
}

// Sample is a measured (scale, speedup) pair.
type Sample struct {
	N       float64
	Speedup float64
}

// FitQuadratic fits Formula (12) to measured samples by least squares
// through the origin and returns the resulting model. Following the paper's
// treatment of the Nek5000 eddy_uv curve (Figure 2b), callers should
// restrict samples to the rising range of the curve; FitQuadraticRising
// does that automatically.
func FitQuadratic(samples []Sample) (Quadratic, error) {
	if len(samples) < 2 {
		return Quadratic{}, fmt.Errorf("%w: need at least 2 samples, have %d", ErrFit, len(samples))
	}
	xs := make([]float64, len(samples))
	ys := make([]float64, len(samples))
	for i, s := range samples {
		xs[i], ys[i] = s.N, s.Speedup
	}
	a, b, err := numopt.FitQuadraticThroughOrigin(xs, ys)
	if err != nil {
		return Quadratic{}, fmt.Errorf("%w: %v", ErrFit, err)
	}
	if b <= 0 {
		return Quadratic{}, fmt.Errorf("%w: non-positive origin slope κ=%g", ErrFit, b)
	}
	if a >= 0 {
		// Concave-up fit: the data is effectively linear on this range.
		// Place the symmetry axis far beyond the data so the curve is
		// near-linear over the observed scales.
		maxN := xs[0]
		for _, x := range xs {
			if x > maxN {
				maxN = x
			}
		}
		return Quadratic{Kappa: b, NStar: maxN * 1e3}, nil
	}
	return Quadratic{Kappa: b, NStar: -b / (2 * a)}, nil
}

// FitQuadraticRising truncates the sample set at the empirical speedup peak
// (inclusive) before fitting, matching the paper's guidance that only the
// initial scale range up to the maximum original speedup matters for the
// optimization (the optimum under checkpointing cannot exceed it).
func FitQuadraticRising(samples []Sample) (Quadratic, error) {
	if len(samples) == 0 {
		return Quadratic{}, fmt.Errorf("%w: no samples", ErrFit)
	}
	peak := 0
	for i, s := range samples {
		if s.Speedup > samples[peak].Speedup {
			peak = i
		}
	}
	return FitQuadratic(samples[:peak+1])
}

// GoodnessOfFit returns R² of a model against samples.
func GoodnessOfFit(m Model, samples []Sample) float64 {
	ys := make([]float64, len(samples))
	pred := make([]float64, len(samples))
	for i, s := range samples {
		ys[i] = s.Speedup
		pred[i] = m.Speedup(s.N)
	}
	return numopt.RSquared(ys, pred)
}

// KarpFlatt returns the Karp–Flatt experimentally determined serial
// fraction e = (1/ψ - 1/N) / (1 - 1/N) for a measured speedup ψ at scale N
// [33]. A growing e across scales indicates growing parallel overhead.
func KarpFlatt(speedup, n float64) float64 {
	if n <= 1 || speedup <= 0 {
		return math.NaN()
	}
	return (1/speedup - 1/n) / (1 - 1/n)
}

// EstimateKappa approximates κ from a single small/medium-scale probe, the
// shortcut the paper demonstrates for the Heat Distribution program
// (speedup 77 at 160 cores → κ ≈ 0.48): κ ≈ speedup/N on the near-linear
// initial range.
func EstimateKappa(speedup, n float64) float64 {
	if n <= 0 {
		return math.NaN()
	}
	return speedup / n
}
