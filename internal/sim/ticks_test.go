package sim

import (
	"testing"

	"mlckpt/internal/stats"
)

func TestRunTicksFailureFree(t *testing.T) {
	cfg := testConfig("0-0-0-0", 5000, []float64{40, 20, 10, 5})
	ev, err := Run(cfg, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	tk, err := RunTicks(cfg, 1, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	// Tick quantization rounds each duration up to whole ticks; with a few
	// hundred state transitions the drift stays far below 1%.
	if stats.RelErr(ev.WallClock, tk.WallClock) > 0.01 {
		t.Errorf("event %g vs tick %g wall clock", ev.WallClock, tk.WallClock)
	}
	if tk.TotalFailures() != 0 || tk.Restart != 0 {
		t.Errorf("failure-free tick run has failures/restart: %+v", tk)
	}
	if tk.CheckpointsTaken[3] != ev.CheckpointsTaken[3] {
		t.Errorf("checkpoint counts differ: %v vs %v", tk.CheckpointsTaken, ev.CheckpointsTaken)
	}
}

// TestEventTickEquivalence is the ablation behind Figure 4's simulator
// validation methodology: the event-driven engine and the paper-style
// 1-second tick engine must agree statistically (< 4% on mean wall clock,
// the same bound the paper reports between its simulator and the real
// cluster).
func TestEventTickEquivalence(t *testing.T) {
	cfg := testConfig("16-8-4-2", 8000, []float64{60, 30, 12, 6})
	const runs = 60
	root := stats.NewRNG(99)
	var evSum, tkSum float64
	for i := 0; i < runs; i++ {
		r1, err := Run(cfg, root.Split())
		if err != nil {
			t.Fatal(err)
		}
		r2, err := RunTicks(cfg, 1, root.Split())
		if err != nil {
			t.Fatal(err)
		}
		evSum += r1.WallClock
		tkSum += r2.WallClock
	}
	evMean, tkMean := evSum/runs, tkSum/runs
	if stats.RelErr(evMean, tkMean) > 0.04 {
		t.Errorf("event mean %g vs tick mean %g differ by %.1f%% (>4%%)",
			evMean, tkMean, 100*stats.RelErr(evMean, tkMean))
	}
}

func TestRunTicksPortionsSum(t *testing.T) {
	cfg := testConfig("16-8-4-2", 8000, []float64{60, 30, 12, 6})
	r, err := RunTicks(cfg, 1, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	sum := r.Productive + r.Checkpoint + r.Restart + r.Rollback
	// Tick accounting quantizes: productive slices are exact, overhead
	// slices are whole ticks; the sum may undercount idle tick remainders
	// by at most one tick per transition.
	if sum > r.WallClock*1.001 {
		t.Errorf("portions %g exceed wall clock %g", sum, r.WallClock)
	}
	if sum < r.WallClock*0.9 {
		t.Errorf("portions %g far below wall clock %g", sum, r.WallClock)
	}
}

func TestRunTicksValidation(t *testing.T) {
	bad := testConfig("8-4-2-1", 0, []float64{1, 1, 1, 1})
	if _, err := RunTicks(bad, 1, stats.NewRNG(1)); err == nil {
		t.Error("invalid config accepted")
	}
}
