package sim

import (
	"strconv"
	"testing"

	"mlckpt/internal/stats"
)

func TestRunTicksFailureFree(t *testing.T) {
	cfg := testConfig("0-0-0-0", 5000, []float64{40, 20, 10, 5})
	ev, err := Run(cfg, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	tk, err := RunTicks(cfg, 1, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	// Tick quantization rounds each duration up to whole ticks; with a few
	// hundred state transitions the drift stays far below 1%.
	if stats.RelErr(ev.WallClock, tk.WallClock) > 0.01 {
		t.Errorf("event %g vs tick %g wall clock", ev.WallClock, tk.WallClock)
	}
	if tk.TotalFailures() != 0 || tk.Restart != 0 {
		t.Errorf("failure-free tick run has failures/restart: %+v", tk)
	}
	if tk.CheckpointsTaken[3] != ev.CheckpointsTaken[3] {
		t.Errorf("checkpoint counts differ: %v vs %v", tk.CheckpointsTaken, ev.CheckpointsTaken)
	}
}

// TestEventTickEquivalence is the ablation behind Figure 4's simulator
// validation methodology: the event-driven engine and the paper-style
// 1-second tick engine must agree statistically (< 4% on mean wall clock,
// the same bound the paper reports between its simulator and the real
// cluster).
func TestEventTickEquivalence(t *testing.T) {
	cfg := testConfig("16-8-4-2", 8000, []float64{60, 30, 12, 6})
	const runs = 60
	root := stats.NewRNG(99)
	var evSum, tkSum float64
	for i := 0; i < runs; i++ {
		r1, err := Run(cfg, root.Split())
		if err != nil {
			t.Fatal(err)
		}
		r2, err := RunTicks(cfg, 1, root.Split())
		if err != nil {
			t.Fatal(err)
		}
		evSum += r1.WallClock
		tkSum += r2.WallClock
	}
	evMean, tkMean := evSum/runs, tkSum/runs
	if stats.RelErr(evMean, tkMean) > 0.04 {
		t.Errorf("event mean %g vs tick mean %g differ by %.1f%% (>4%%)",
			evMean, tkMean, 100*stats.RelErr(evMean, tkMean))
	}
}

func TestRunTicksPortionsSum(t *testing.T) {
	cfg := testConfig("16-8-4-2", 8000, []float64{60, 30, 12, 6})
	r, err := RunTicks(cfg, 1, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	sum := r.Productive + r.Checkpoint + r.Restart + r.Rollback
	// Tick accounting quantizes: productive slices are exact, overhead
	// slices are whole ticks; the sum may undercount idle tick remainders
	// by at most one tick per transition.
	if sum > r.WallClock*1.001 {
		t.Errorf("portions %g exceed wall clock %g", sum, r.WallClock)
	}
	if sum < r.WallClock*0.9 {
		t.Errorf("portions %g far below wall clock %g", sum, r.WallClock)
	}
}

func TestRunTicksValidation(t *testing.T) {
	bad := testConfig("8-4-2-1", 0, []float64{1, 1, 1, 1})
	if _, err := RunTicks(bad, 1, stats.NewRNG(1)); err == nil {
		t.Error("invalid config accepted")
	}
	if _, err := runTicksDense(bad, 1, stats.NewRNG(1)); err == nil {
		t.Error("dense oracle: invalid config accepted")
	}
	silent := testConfig("8-4-2-1", 5000, []float64{8, 4, 2, 1})
	silent.SilentCorruptionProb = 0.1
	if _, err := RunTicks(silent, 1, stats.NewRNG(1)); err == nil {
		t.Error("silent-error config accepted")
	}
	if _, err := runTicksDense(silent, 1, stats.NewRNG(1)); err == nil {
		t.Error("dense oracle: silent-error config accepted")
	}
}

// tickDiffConfigs are the scenarios the jump engine is differentially
// tested on: failure-free, failure-heavy, jittered durations, suppressed
// failure windows, and a horizon-truncated run.
func tickDiffConfigs() map[string]Config {
	base := testConfig("16-8-4-2", 8000, []float64{60, 30, 12, 6})
	jitter := base
	jitter.JitterRatio = 0.3
	suppress := base
	suppress.DisableFailuresDuringCkpt = true
	suppress.DisableFailuresDuringRecovery = true
	truncated := testConfig("200-100-50-25", 8000, []float64{60, 30, 12, 6})
	truncated.MaxWallClock = 900
	return map[string]Config{
		"failureFree": testConfig("0-0-0-0", 5000, []float64{40, 20, 10, 5}),
		"failures":    base,
		"jitter":      jitter,
		"suppressed":  suppress,
		"truncated":   truncated,
	}
}

// TestTickJumpMatchesDense is the differential gate for the tick jump
// engine: RunTicks (eventq-driven, skips boring tick runs) against
// runTicksDense (the verbatim per-tick loop), over shared seeds. Every
// skip stops short of the tick in which an event can fire, so both
// engines consume the failure stream and draw jitter at identical ticks.
// For ticks whose multiples are exactly representable — 1 s (the paper's
// quantum), power-of-two fractions, whole seconds — the wall clock,
// failure counts, checkpoint counts, and truncation flag must match
// exactly. The float work portions are allowed one rounding per jump (the
// jump replaces k float additions with one), bounded at 1e-9 relative.
func TestTickJumpMatchesDense(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 10
	}
	for name, cfg := range tickDiffConfigs() {
		for _, tick := range []float64{1, 0.5, 3} {
			for s := 0; s < seeds; s++ {
				seed := uint64(s + 1)
				jump, err := RunTicks(cfg, tick, stats.NewRNG(seed))
				if err != nil {
					t.Fatalf("%s tick=%g seed=%d: jump: %v", name, tick, s, err)
				}
				dense, err := runTicksDense(cfg, tick, stats.NewRNG(seed))
				if err != nil {
					t.Fatalf("%s tick=%g seed=%d: dense: %v", name, tick, s, err)
				}
				label := func(field string) string {
					return name + " tick=" + strconv.FormatFloat(tick, 'g', -1, 64) +
						" seed=" + strconv.Itoa(s) + ": " + field
				}
				if jump.WallClock != dense.WallClock {
					t.Errorf("%s: jump %.17g != dense %.17g", label("WallClock"),
						jump.WallClock, dense.WallClock)
				}
				if jump.Truncated != dense.Truncated {
					t.Errorf("%s: jump %v != dense %v", label("Truncated"),
						jump.Truncated, dense.Truncated)
				}
				for i := range dense.Failures {
					if jump.Failures[i] != dense.Failures[i] {
						t.Errorf("%s: jump %v != dense %v", label("Failures"),
							jump.Failures, dense.Failures)
						break
					}
				}
				for i := range dense.CheckpointsTaken {
					if jump.CheckpointsTaken[i] != dense.CheckpointsTaken[i] {
						t.Errorf("%s: jump %v != dense %v", label("CheckpointsTaken"),
							jump.CheckpointsTaken, dense.CheckpointsTaken)
						break
					}
				}
				for _, f := range []struct {
					field       string
					jump, dense float64
				}{
					{"Productive", jump.Productive, dense.Productive},
					{"Checkpoint", jump.Checkpoint, dense.Checkpoint},
					{"Restart", jump.Restart, dense.Restart},
					{"Rollback", jump.Rollback, dense.Rollback},
				} {
					if stats.RelErr(f.dense, f.jump) > 1e-9 {
						t.Errorf("%s: jump %.17g != dense %.17g", label(f.field),
							f.jump, f.dense)
					}
				}
			}
		}
	}
}

// BenchmarkTickEngine pins the point of the jump rewrite: the eventq jump
// engine against the dense per-tick oracle on the standard failure-heavy
// ablation scenario.
func BenchmarkTickEngine(b *testing.B) {
	cfg := testConfig("16-8-4-2", 8000, []float64{60, 30, 12, 6})
	b.Run("jump", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := RunTicks(cfg, 1, stats.NewRNG(42)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dense", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := runTicksDense(cfg, 1, stats.NewRNG(42)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
